// Golden end-to-end test: the quickstart campaign (README and
// examples/quickstart) run from scratch must render the exact analysis
// report stored in testdata/. Any change to planning, injection,
// simulation, logging or analysis that shifts a single outcome shows up
// as a diff here. Regenerate with
//
//	go test . -run TestQuickstartReportGolden -update
package goofi_test

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"goofi/internal/analysis"
	"goofi/internal/campaign"
	"goofi/internal/core"
	"goofi/internal/faultmodel"
	"goofi/internal/scifi"
	"goofi/internal/sqldb"
	"goofi/internal/thor"
	"goofi/internal/trigger"
	"goofi/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// quickstartCampaign mirrors examples/quickstart/main.go exactly.
func quickstartCampaign() *campaign.Campaign {
	return &campaign.Campaign{
		Name:           "quickstart",
		TargetName:     "thor-board",
		ChainName:      "internal",
		Locations:      []string{"cpu"},
		FaultModel:     faultmodel.Spec{Kind: faultmodel.Transient},
		Trigger:        trigger.Spec{Kind: "cycle"},
		RandomWindow:   [2]uint64{10, 1600},
		NumExperiments: 100,
		Seed:           2026,
		Termination:    campaign.Termination{TimeoutCycles: 100_000},
		Workload:       workload.Sort(),
		LogMode:        campaign.LogNormal,
	}
}

func TestQuickstartReportGolden(t *testing.T) {
	store, err := campaign.NewStore(sqldb.Open())
	if err != nil {
		t.Fatal(err)
	}
	tsd := scifi.TargetSystemData("thor-board")
	if err := store.PutTargetSystem(tsd); err != nil {
		t.Fatal(err)
	}
	camp := quickstartCampaign()
	if err := store.PutCampaign(camp); err != nil {
		t.Fatal(err)
	}
	runner, err := core.NewRunner(scifi.New(thor.DefaultConfig()), core.SCIFI, camp, tsd,
		core.WithSink(store))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := runner.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Experiments != camp.NumExperiments {
		t.Fatalf("ran %d experiments, want %d", sum.Experiments, camp.NumExperiments)
	}
	rep, err := analysis.AnalyzeAndStore(store, camp.Name)
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Render()

	golden := filepath.Join("testdata", "quickstart_report.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Errorf("quickstart report drifted from golden file.\n got:\n%s\nwant:\n%s\n(run with -update if the change is intended)",
			got, want)
	}
}
