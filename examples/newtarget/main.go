// Newtarget walks through porting GOOFI to a new target system, the
// paper's Fig 3 workflow: embed the Framework template, run the chosen
// algorithm to see exactly which abstract methods it still needs, and
// implement only those.
//
// The target here is deliberately tiny: a "pulse counter" peripheral with
// a 16-bit counter and an 8-bit threshold register, reachable through a
// 24-bit scan chain. Its only error detection mechanism is a range check
// (counter must not exceed the threshold * 256).
package main

import (
	"context"
	"errors"
	"fmt"
	"os"

	"goofi/internal/analysis"
	"goofi/internal/bitvec"
	"goofi/internal/campaign"
	"goofi/internal/core"
	"goofi/internal/faultmodel"
	"goofi/internal/scanchain"
	"goofi/internal/sqldb"
	"goofi/internal/trigger"
)

// pulseCounter is the simulated device: it counts pulses each "run" and
// detects counter overflow beyond its configured threshold.
type pulseCounter struct {
	counter   uint16
	threshold uint8
}

func (d *pulseCounter) scanRead() *bitvec.Vector {
	v := bitvec.New(24)
	v.SetUint64(0, 16, uint64(d.counter))
	v.SetUint64(16, 8, uint64(d.threshold))
	return v
}

func (d *pulseCounter) scanWrite(v *bitvec.Vector) {
	d.counter = uint16(v.Uint64(0, 16))
	d.threshold = uint8(v.Uint64(16, 8))
}

// step advances the device by one pulse; ok=false is the range-check EDM.
func (d *pulseCounter) step() (ok bool) {
	d.counter++
	return uint32(d.counter) <= uint32(d.threshold)*256
}

// --- The port: start from the Framework template (paper Fig 3) ---------

// counterTarget is the TargetSystemInterface for the pulse counter.
// Embedding core.Framework supplies "not implemented" stubs for every
// abstract method; the port below fills in the seven the SCIFI algorithm
// uses.
type counterTarget struct {
	core.Framework
	dev    *pulseCounter
	pulses int
}

func newCounterTarget() *counterTarget {
	return &counterTarget{
		Framework: core.Framework{TargetName: "pulse-counter"},
		dev:       &pulseCounter{},
	}
}

func (t *counterTarget) InitTestCard(ex *core.Experiment) error {
	t.dev = &pulseCounter{threshold: 16} // allows 4096 pulses
	t.pulses = 0
	return nil
}

func (t *counterTarget) LoadWorkload(ex *core.Experiment) error { return nil } // nothing to assemble

func (t *counterTarget) WriteMemory(ex *core.Experiment) error { return nil } // no memory

func (t *counterTarget) RunWorkload(ex *core.Experiment) error { return nil } // demand-driven

// WaitForBreakpoint advances until the campaign's cycle trigger.
func (t *counterTarget) WaitForBreakpoint(ex *core.Experiment) error {
	for uint64(t.pulses) < ex.Trigger.Cycle {
		if ok := t.dev.step(); !ok {
			return nil // detected before injection point
		}
		t.pulses++
	}
	ex.InjectionCycle = uint64(t.pulses)
	return nil
}

func (t *counterTarget) ReadScanChain(ex *core.Experiment) error {
	ex.ScanVector = t.dev.scanRead()
	return nil
}

// InjectFault is inherited from Framework: it flips ex.Fault's bits in
// ex.ScanVector. Nothing to write here — that is the point of the
// template.

func (t *counterTarget) WriteScanChain(ex *core.Experiment) error {
	t.dev.scanWrite(ex.ScanVector)
	return nil
}

func (t *counterTarget) WaitForTermination(ex *core.Experiment) error {
	const workloadPulses = 2048
	for t.pulses < workloadPulses {
		if ok := t.dev.step(); !ok {
			ex.Result.Outcome = campaign.Outcome{
				Status:    campaign.OutcomeDetected,
				Mechanism: "range-check",
				Cycles:    uint64(t.pulses),
			}
			return nil
		}
		t.pulses++
	}
	ex.Result.Outcome = campaign.Outcome{
		Status: campaign.OutcomeCompleted,
		Cycles: uint64(t.pulses),
	}
	return nil
}

func (t *counterTarget) ReadMemory(ex *core.Experiment) error {
	// Expose the final counter value as the observable result.
	c := t.dev.counter
	ex.Result.Memory = map[string][]byte{"counter": {byte(c >> 8), byte(c)}}
	ex.Result.FinalScan = t.dev.scanRead()
	return nil
}

// ------------------------------------------------------------------------

func targetData() *campaign.TargetSystemData {
	return &campaign.TargetSystemData{
		Name:         "pulse-counter",
		TestCardName: "sim",
		Chains: []scanchain.Map{{
			Chain:  "internal",
			Length: 24,
			Locations: []scanchain.Location{
				{Name: "dev.counter", Offset: 0, Width: 16},
				{Name: "dev.threshold", Offset: 16, Width: 8},
			},
		}},
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "newtarget:", err)
		os.Exit(1)
	}
}

func run() error {
	// Step 1 of a port: run the algorithm against the bare template and
	// let it tell you what to implement.
	bare := &core.Framework{TargetName: "pulse-counter"}
	ex := &core.Experiment{Campaign: &campaign.Campaign{Name: "probe"}, Seq: -1, Name: "probe"}
	err := core.SCIFI.Run(bare, ex)
	var nie *core.NotImplementedError
	if errors.As(err, &nie) {
		fmt.Printf("template says: implement %s first\n", nie.Method)
	}

	// Step 2: the finished port runs a real campaign.
	store, err := campaign.NewStore(sqldb.Open())
	if err != nil {
		return err
	}
	tsd := targetData()
	if err := store.PutTargetSystem(tsd); err != nil {
		return err
	}
	camp := &campaign.Campaign{
		Name:           "counter-flips",
		TargetName:     "pulse-counter",
		ChainName:      "internal",
		Locations:      []string{"dev"},
		FaultModel:     faultmodel.Spec{Kind: faultmodel.Transient},
		Trigger:        trigger.Spec{Kind: "cycle"},
		RandomWindow:   [2]uint64{1, 2000},
		NumExperiments: 200,
		Seed:           5,
		Termination:    campaign.Termination{TimeoutCycles: 10_000},
		Workload:       campaign.WorkloadSpec{Name: "pulses", Source: "; device has no program"},
		LogMode:        campaign.LogNormal,
	}
	if err := store.PutCampaign(camp); err != nil {
		return err
	}
	runner, err := core.NewRunner(newCounterTarget(), core.SCIFI, camp, tsd, core.WithSink(store))
	if err != nil {
		return err
	}
	if _, err := runner.Run(context.Background()); err != nil {
		return err
	}
	rep, err := analysis.AnalyzeAndStore(store, camp.Name)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(rep.Render())
	fmt.Println("\n=> a complete port: seven small methods on top of the Framework template.")
	return nil
}
