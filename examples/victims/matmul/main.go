// matmul is a proctarget victim: a dense integer matrix multiply whose
// result is folded into an FNV hash and printed. Its output is a pure
// function of its inputs, so any surviving bit-flip in the working set
// shows up as silent data corruption against the reference capture.
//
// The //go:noinline workload function is where proctarget plants its
// injection breakpoint; the global arrays are the "memory" fault chain.
package main

import "fmt"

const n = 24

var (
	gA [n * n]int64
	gB [n * n]int64
	gC [n * n]int64
)

//go:noinline
func workload() {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s int64
			for k := 0; k < n; k++ {
				s += gA[i*n+k] * gB[k*n+j]
			}
			gC[i*n+j] = s
		}
	}
}

func main() {
	for i := range gA {
		gA[i] = int64(i%97) - 48
		gB[i] = int64((i*7)%89) - 44
	}
	workload()
	var h uint64 = 1469598103934665603
	for _, v := range gC {
		h ^= uint64(v)
		h *= 1099511628211
	}
	fmt.Printf("matmul n=%d hash=%016x c0=%d cN=%d\n", n, h, gC[0], gC[len(gC)-1])
}
