// loop is a proctarget victim built for the hang path: its iteration
// bound lives in a writable global (main.gEnd on the "memory" chain),
// so flipping a high value bit turns a microsecond spin into an
// effectively infinite loop that only the campaign watchdog ends.
//
// The bound is re-read through atomic.LoadInt64 every iteration; a
// plain load would let the compiler hoist it out of the loop and the
// injected value would never be observed.
package main

import (
	"fmt"
	"sync/atomic"
)

var gEnd int64 = 4096

//go:noinline
func workload() int64 {
	var spins int64
	for i := int64(0); i < atomic.LoadInt64(&gEnd); i++ {
		spins++
	}
	return spins
}

func main() {
	fmt.Printf("loop done spins=%d\n", workload())
}
