// Preinjection demonstrates the paper's §4 efficiency extension:
// pre-injection analysis determines when registers hold live data, so
// injections guaranteed to be overwritten are skipped before any target
// time is spent on them.
//
// Two identical register-targeted campaigns run against the sort workload;
// the second uses the liveness filter. The filtered campaign skips dead
// draws for free and spends every experiment on live state, raising the
// effective-error yield per experiment.
package main

import (
	"context"
	"fmt"
	"os"

	"goofi/internal/analysis"
	"goofi/internal/campaign"
	"goofi/internal/core"
	"goofi/internal/faultmodel"
	"goofi/internal/preinject"
	"goofi/internal/scifi"
	"goofi/internal/sqldb"
	"goofi/internal/thor"
	"goofi/internal/trigger"
	"goofi/internal/workload"
)

const experiments = 120

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "preinjection:", err)
		os.Exit(1)
	}
}

func registerLocations() []string {
	locs := make([]string, 0, thor.NumRegs)
	for i := 0; i < thor.NumRegs; i++ {
		locs = append(locs, fmt.Sprintf("cpu.r%d", i))
	}
	return locs
}

func buildCampaign(name string) *campaign.Campaign {
	return &campaign.Campaign{
		Name:           name,
		TargetName:     "thor-board",
		ChainName:      "internal",
		Locations:      registerLocations(),
		FaultModel:     faultmodel.Spec{Kind: faultmodel.Transient},
		Trigger:        trigger.Spec{Kind: "cycle"},
		RandomWindow:   [2]uint64{10, 1600},
		NumExperiments: experiments,
		Seed:           7,
		Termination:    campaign.Termination{TimeoutCycles: 100_000},
		Workload:       workload.Sort(),
		LogMode:        campaign.LogNormal,
	}
}

func run() error {
	store, err := campaign.NewStore(sqldb.Open())
	if err != nil {
		return err
	}
	tsd := scifi.TargetSystemData("thor-board")
	if err := store.PutTargetSystem(tsd); err != nil {
		return err
	}

	// The analysis itself: one traced reference execution.
	liveness, err := preinject.AnalyzeWorkload(thor.DefaultConfig(), buildCampaign("probe"))
	if err != nil {
		return err
	}
	fmt.Printf("pre-injection analysis: %d instructions traced, %.0f%% of (register, time) pairs live\n\n",
		liveness.Instrs, 100*liveness.LiveFraction(50))

	runOne := func(name string, filtered bool) (*core.Summary, *analysis.Report, error) {
		camp := buildCampaign(name)
		if err := store.PutCampaign(camp); err != nil {
			return nil, nil, err
		}
		opts := []core.RunnerOption{core.WithSink(store)}
		if filtered {
			opts = append(opts, core.WithInjectionFilter(liveness.Filter()))
		}
		runner, err := core.NewRunner(scifi.New(thor.DefaultConfig()), core.SCIFI, camp, tsd, opts...)
		if err != nil {
			return nil, nil, err
		}
		sum, err := runner.Run(context.Background())
		if err != nil {
			return nil, nil, err
		}
		rep, err := analysis.AnalyzeAndStore(store, name)
		return sum, rep, err
	}

	plainSum, plain, err := runOne("plain", false)
	if err != nil {
		return err
	}
	filtSum, filt, err := runOne("filtered", true)
	if err != nil {
		return err
	}

	fmt.Println("                          plain   pre-injection")
	row := func(label string, a, b int) { fmt.Printf("  %-22s %5d %10d\n", label, a, b) }
	row("experiments", plainSum.Experiments, filtSum.Experiments)
	row("skipped draws", plainSum.Skipped, filtSum.Skipped)
	row("detected", plain.Counts[analysis.ClassDetected], filt.Counts[analysis.ClassDetected])
	row("escaped", plain.Counts[analysis.ClassEscaped], filt.Counts[analysis.ClassEscaped])
	row("latent", plain.Counts[analysis.ClassLatent], filt.Counts[analysis.ClassLatent])
	row("overwritten", plain.Counts[analysis.ClassOverwritten], filt.Counts[analysis.ClassOverwritten])
	fmt.Printf("\n  effective rate:  plain    %s\n", plain.EffectiveRate)
	fmt.Printf("                   filtered %s\n", filt.EffectiveRate)
	fmt.Printf("\n=> the filter rejected %d dead draws at zero target cost; every remaining\n", filtSum.Skipped)
	fmt.Println("   experiment hits live state, so fewer injections are wasted as overwritten.")
	return nil
}
