// Controlapp reproduces the shape of the companion study [12] ("Reducing
// Critical Failures for Control Algorithms Using Executable Assertions and
// Best Effort Recovery", DSN 2001), the application GOOFI was used on:
//
// A PI speed controller runs in a closed loop with an engine model,
// exchanging sensor/actuator data with the environment simulator at every
// iteration (paper §3.2). Two versions are subjected to identical SCIFI
// bit-flip campaigns:
//
//   - bare:      the plain controller
//   - hardened:  the controller with executable assertions and
//     best-effort recovery
//
// Critical failures are escaped errors — wrong actuator commands or
// timeliness violations that no mechanism caught. The hardened controller
// converts a large share of them into recovered assertions.
package main

import (
	"context"
	"fmt"
	"os"

	"goofi/internal/analysis"
	"goofi/internal/campaign"
	"goofi/internal/core"
	"goofi/internal/faultmodel"
	"goofi/internal/scifi"
	"goofi/internal/sqldb"
	"goofi/internal/thor"
	"goofi/internal/trigger"
	"goofi/internal/workload"
)

const experiments = 150

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "controlapp:", err)
		os.Exit(1)
	}
}

func buildCampaign(name string, wl campaign.WorkloadSpec) *campaign.Campaign {
	// Critical-failure criterion of [12]: a run fails when the control
	// system has not recovered by the end of the mission — the last 10
	// actuator commands deviate by more than 2.0 (Q8.8) from the
	// reference — or when it misses its deadline. Transient deviations
	// the controller rides out are not critical.
	wl.OutputTail = 10
	wl.OutputTolerance = 512
	wl.ResultTolerance = 512
	return &campaign.Campaign{
		Name:           name,
		TargetName:     "thor-board",
		ChainName:      "internal",
		Locations:      []string{"cpu"},
		FaultModel:     faultmodel.Spec{Kind: faultmodel.Transient},
		Trigger:        trigger.Spec{Kind: "cycle"},
		RandomWindow:   [2]uint64{500, 8_000},
		NumExperiments: experiments,
		Seed:           42,
		Termination:    campaign.Termination{TimeoutCycles: 400_000, MaxIterations: 100},
		Workload:       wl,
		EnvSim:         &campaign.EnvSimSpec{Name: "engine"},
		LogMode:        campaign.LogNormal,
	}
}

func runCampaign(store *campaign.Store, camp *campaign.Campaign) (*analysis.Report, error) {
	if err := store.PutCampaign(camp); err != nil {
		return nil, err
	}
	tsd := scifi.TargetSystemData("thor-board")
	runner, err := core.NewRunner(scifi.New(thor.DefaultConfig()), core.SCIFI, camp, tsd,
		core.WithSink(store))
	if err != nil {
		return nil, err
	}
	if _, err := runner.Run(context.Background()); err != nil {
		return nil, err
	}
	return analysis.AnalyzeAndStore(store, camp.Name)
}

func run() error {
	store, err := campaign.NewStore(sqldb.Open())
	if err != nil {
		return err
	}
	if err := store.PutTargetSystem(scifi.TargetSystemData("thor-board")); err != nil {
		return err
	}

	fmt.Printf("running %d-experiment SCIFI campaigns on the engine controller...\n\n", experiments)
	bare, err := runCampaign(store, buildCampaign("engine-bare", workload.PID()))
	if err != nil {
		return err
	}
	hardened, err := runCampaign(store, buildCampaign("engine-hardened", workload.PIDAssert()))
	if err != nil {
		return err
	}

	fmt.Println("                        bare    hardened")
	row := func(label string, a, b int) {
		fmt.Printf("  %-20s %5d %10d\n", label, a, b)
	}
	row("detected", bare.Counts[analysis.ClassDetected], hardened.Counts[analysis.ClassDetected])
	row("escaped (critical)", bare.Counts[analysis.ClassEscaped], hardened.Counts[analysis.ClassEscaped])
	row("  wrong value", bare.EscapedValue, hardened.EscapedValue)
	row("  timeliness", bare.EscapedTiming, hardened.EscapedTiming)
	row("latent", bare.Counts[analysis.ClassLatent], hardened.Counts[analysis.ClassLatent])
	row("overwritten", bare.Counts[analysis.ClassOverwritten], hardened.Counts[analysis.ClassOverwritten])
	row("assertion recoveries", bare.Recovered, hardened.Recovered)
	fmt.Printf("\n  detection coverage: bare %s\n", bare.Coverage)
	fmt.Printf("                      hardened %s\n", hardened.Coverage)

	if hardened.Counts[analysis.ClassEscaped] < bare.Counts[analysis.ClassEscaped] {
		fmt.Println("\n=> executable assertions + best-effort recovery reduced critical failures,")
		fmt.Println("   matching the qualitative result of [12].")
	} else {
		fmt.Println("\n=> warning: hardened version did not reduce critical failures in this sample")
	}
	return nil
}
