// Quickstart: run a complete GOOFI fault injection campaign in ~50 lines.
//
// It configures the built-in THOR-S SCIFI target, defines a campaign of
// 100 transient bit-flips into the CPU registers while the sort workload
// runs, executes it with a live progress line, and prints the analysis
// report (paper §3.4 taxonomy).
package main

import (
	"context"
	"fmt"
	"os"

	"goofi/internal/analysis"
	"goofi/internal/campaign"
	"goofi/internal/core"
	"goofi/internal/faultmodel"
	"goofi/internal/scifi"
	"goofi/internal/sqldb"
	"goofi/internal/thor"
	"goofi/internal/trigger"
	"goofi/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// Configuration phase (Fig 5): store the target system.
	store, err := campaign.NewStore(sqldb.Open())
	if err != nil {
		return err
	}
	tsd := scifi.TargetSystemData("thor-board")
	if err := store.PutTargetSystem(tsd); err != nil {
		return err
	}

	// Set-up phase (Fig 6): define the campaign.
	camp := &campaign.Campaign{
		Name:           "quickstart",
		TargetName:     "thor-board",
		ChainName:      "internal",
		Locations:      []string{"cpu"}, // all registers, PC, flags
		FaultModel:     faultmodel.Spec{Kind: faultmodel.Transient},
		Trigger:        trigger.Spec{Kind: "cycle"},
		RandomWindow:   [2]uint64{10, 1600}, // uniform injection time
		NumExperiments: 100,
		Seed:           2026,
		Termination:    campaign.Termination{TimeoutCycles: 100_000},
		Workload:       workload.Sort(),
		LogMode:        campaign.LogNormal,
	}
	if err := store.PutCampaign(camp); err != nil {
		return err
	}

	// Fault injection phase (Fig 2 algorithm, Fig 7 progress).
	runner, err := core.NewRunner(
		scifi.New(thor.DefaultConfig()), core.SCIFI, camp, tsd,
		core.WithSink(store),
		core.WithProgress(func(ev core.ProgressEvent) {
			if ev.Phase == "experiment" && ev.Done%20 == 0 {
				fmt.Printf("  %d/%d experiments done\n", ev.Done, ev.Total)
			}
		}),
	)
	if err != nil {
		return err
	}
	sum, err := runner.Run(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("campaign finished: %d experiments\n\n", sum.Experiments)

	// Analysis phase (§3.4): classify against the reference run.
	rep, err := analysis.AnalyzeAndStore(store, camp.Name)
	if err != nil {
		return err
	}
	fmt.Print(rep.Render())
	return nil
}
