// Differential regression tests for the fault-tolerance layer: a
// campaign run against a chaos-wrapped (deterministically flaky) harness
// must, after retries, log byte-identical LoggedSystemState records and
// an identical analysis report to a healthy run — retry recovery may
// cost attempts, never change results. A silently-corrupting run is the
// negative control proving the comparison can see real corruption, and
// the quarantine test shows a persistently broken board being fenced off
// while the surviving boards complete the plan.
package goofi_test

import (
	"encoding/json"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"goofi/internal/analysis"
	"goofi/internal/campaign"
	"goofi/internal/chaos"
	"goofi/internal/core"
	"goofi/internal/scifi"
	"goofi/internal/thor"
)

// chaosRun executes camp on a fresh store against factory-built boards,
// returning the summary, analysis report, and JSON record rows.
func chaosRun(t *testing.T, camp *campaign.Campaign, boards int,
	factory func() core.TargetSystem, opts ...core.RunnerOption) (*core.Summary, *analysis.Report, []string) {
	t.Helper()
	st, tsd := benchStore(t)
	opts = append(opts, core.WithBoards(boards, factory))
	sum, rep := runCampaign(t, st, tsd, nil, core.SCIFI, camp, opts...)
	recs, err := st.Experiments(camp.Name)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]string, 0, len(recs))
	for _, rec := range recs {
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, string(b))
	}
	return sum, rep, rows
}

func healthyFactory() core.TargetSystem { return scifi.New(thor.DefaultConfig()) }

// TestChaosDifferential: seeded transient harness faults — detected scan
// corruption on every fired read — are fully absorbed by the retry
// layer: the flaky campaign converges to the healthy campaign's exact
// records and report, with the retries visible only in the summary.
func TestChaosDifferential(t *testing.T) {
	mkCamp := func() *campaign.Campaign { return sortCampaign("chaos-diff", 9, 31, []string{"cpu"}) }

	healthySum, healthyRep, healthyRows := chaosRun(t, mkCamp(), 1, healthyFactory)

	cfg := chaos.Config{Seed: 99, ScanReadCorruption: 0.4, MaxFaults: 5}
	flakySum, flakyRep, flakyRows := chaosRun(t, mkCamp(), 1,
		func() core.TargetSystem { return chaos.Wrap(healthyFactory(), cfg) },
		core.WithRetryPolicy(core.RetryPolicy{MaxRetries: 7, BackoffBase: time.Microsecond}))

	if flakySum.Retried == 0 {
		t.Error("chaos run retried nothing — the fault model never fired")
	}
	if flakySum.InvalidRuns != 0 {
		t.Errorf("chaos run recorded %d invalid runs, want 0 (faults are transient)", flakySum.InvalidRuns)
	}
	if flakySum.Experiments != healthySum.Experiments {
		t.Errorf("experiments: chaos %d, healthy %d", flakySum.Experiments, healthySum.Experiments)
	}
	if len(healthyRows) != len(flakyRows) {
		t.Fatalf("record counts differ: healthy %d, chaos %d", len(healthyRows), len(flakyRows))
	}
	for i := range healthyRows {
		if healthyRows[i] != flakyRows[i] {
			t.Errorf("record %d differs\nhealthy %s\nchaos   %s", i, healthyRows[i], flakyRows[i])
		}
	}
	if !reflect.DeepEqual(healthyRep, flakyRep) {
		t.Errorf("analysis reports differ\nhealthy %+v\nchaos   %+v", healthyRep, flakyRep)
	}
	t.Logf("chaos run: %d retries absorbed, records byte-identical", flakySum.Retried)
}

// TestChaosSilentCorruptionDetected is the self-test of the differential
// comparison: with Silent set the chaos harness corrupts scan captures
// WITHOUT reporting an error, so nothing is retried and the corruption
// must show up as differing records. If this test ever finds identical
// records, the differential test above has lost its teeth.
func TestChaosSilentCorruptionDetected(t *testing.T) {
	mkCamp := func() *campaign.Campaign { return sortCampaign("chaos-silent", 9, 31, []string{"cpu"}) }

	_, _, healthyRows := chaosRun(t, mkCamp(), 1, healthyFactory)

	cfg := chaos.Config{Seed: 7, ScanReadCorruption: 1, Silent: true}
	silentSum, _, silentRows := chaosRun(t, mkCamp(), 1,
		func() core.TargetSystem { return chaos.Wrap(healthyFactory(), cfg) })

	if silentSum.Retried != 0 {
		t.Errorf("silent corruption triggered %d retries — it was not silent", silentSum.Retried)
	}
	if len(healthyRows) != len(silentRows) {
		return // already a detected difference
	}
	for i := range healthyRows {
		if healthyRows[i] != silentRows[i] {
			return // corruption detected, comparison works
		}
	}
	t.Error("silently corrupted campaign logged records byte-identical to a healthy one")
}

// gatedTarget delays each board's first experiment at InitTestCard until
// every board has started one, so the fast queue provably hands work to
// the broken board. It forwards checkpoints like the target it wraps.
type gatedTarget struct {
	core.TargetSystem
	once    sync.Once
	started *int32
	n       int32
	gate    chan struct{}
}

func (g *gatedTarget) InitTestCard(ex *core.Experiment) error {
	g.once.Do(func() {
		if atomic.AddInt32(g.started, 1) == g.n {
			close(g.gate)
		}
		<-g.gate
	})
	return g.TargetSystem.InitTestCard(ex)
}

func (g *gatedTarget) ArmForwardRecording(plan *core.ForwardPlan) {
	if fw, ok := g.TargetSystem.(core.Forwarder); ok {
		fw.ArmForwardRecording(plan)
	}
}

func (g *gatedTarget) TakeForwardSet() *core.ForwardSet {
	if fw, ok := g.TargetSystem.(core.Forwarder); ok {
		return fw.TakeForwardSet()
	}
	return nil
}

func (g *gatedTarget) SetForwardSet(set *core.ForwardSet) {
	if fw, ok := g.TargetSystem.(core.Forwarder); ok {
		fw.SetForwardSet(set)
	}
}

// TestChaosQuarantine: one of three boards is persistently broken —
// every scan read fails. The circuit breaker quarantines it and the two
// healthy boards complete the campaign with records identical to a
// healthy single-board run.
func TestChaosQuarantine(t *testing.T) {
	mkCamp := func() *campaign.Campaign { return sortCampaign("chaos-quar", 9, 31, []string{"cpu"}) }

	_, healthyRep, healthyRows := chaosRun(t, mkCamp(), 1, healthyFactory)

	var calls, started int32
	gate := make(chan struct{})
	factory := func() core.TargetSystem {
		n := atomic.AddInt32(&calls, 1)
		inner := healthyFactory()
		if n == 1 { // reference board, runs before the worker pool exists
			return inner
		}
		var tgt core.TargetSystem = inner
		if n == 3 {
			tgt = chaos.Wrap(inner, chaos.Config{Seed: 5, ScanReadCorruption: 1})
		}
		return &gatedTarget{TargetSystem: tgt, started: &started, n: 3, gate: gate}
	}
	sum, rep, rows := chaosRun(t, mkCamp(), 3, factory,
		core.WithRetryPolicy(core.RetryPolicy{
			MaxRetries:            3,
			BoardFailureThreshold: 2,
			BackoffBase:           time.Microsecond,
		}))

	if sum.QuarantinedBoards != 1 {
		t.Errorf("quarantined boards = %d, want 1", sum.QuarantinedBoards)
	}
	if sum.InvalidRuns != 0 {
		t.Errorf("invalid runs = %d, want 0 (failures were the board's fault)", sum.InvalidRuns)
	}
	if len(rows) != len(healthyRows) {
		t.Fatalf("record counts differ: quarantine run %d, healthy %d", len(rows), len(healthyRows))
	}
	for i := range healthyRows {
		if rows[i] != healthyRows[i] {
			t.Errorf("record %d differs\nhealthy    %s\nquarantine %s", i, healthyRows[i], rows[i])
		}
	}
	if !reflect.DeepEqual(healthyRep, rep) {
		t.Errorf("analysis reports differ\nhealthy    %+v\nquarantine %+v", healthyRep, rep)
	}
}
