package shard

// The ingest batcher: worker reports fan in through a bounded queue to
// a single writer goroutine, which is the only thing that touches the
// coordinator's store. The bounded queue is the backpressure: when the
// merge falls behind, Report handlers block in submit, the HTTP responses
// stall, and the workers slow down — no unbounded buffering, no writer
// contention on the WAL.

import (
	"fmt"
	"sync"

	"goofi/internal/campaign"
)

type batcher struct {
	store *campaign.Store
	ch    chan []*campaign.ExperimentRecord
	flush chan chan error
	quit  chan struct{} // closed by Close: writer drains and exits
	done  chan struct{} // closed when the writer has exited

	stop sync.Once

	mu  sync.Mutex
	err error // first write error; poisons subsequent submits
}

func newBatcher(store *campaign.Store, depth int) *batcher {
	if depth <= 0 {
		depth = 8
	}
	b := &batcher{
		store: store,
		ch:    make(chan []*campaign.ExperimentRecord, depth),
		flush: make(chan chan error),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go b.writer()
	return b
}

func (b *batcher) writer() {
	defer close(b.done)
	for {
		select {
		case recs := <-b.ch:
			b.write(recs)
		case ack := <-b.flush:
			// Drain everything queued ahead of the flush request, then
			// raise a durability barrier so the accepted sequences
			// survive a coordinator crash.
			b.drain()
			ack <- b.barrier()
		case <-b.quit:
			b.drain()
			return
		}
	}
}

func (b *batcher) drain() {
	for {
		select {
		case recs := <-b.ch:
			b.write(recs)
		default:
			return
		}
	}
}

func (b *batcher) write(recs []*campaign.ExperimentRecord) {
	if len(recs) == 0 || b.firstErr() != nil {
		return
	}
	if err := b.store.LogExperimentBatch(recs); err != nil {
		b.setErr(err)
	}
}

func (b *batcher) barrier() error {
	if err := b.firstErr(); err != nil {
		return err
	}
	if err := b.store.DB().Barrier(); err != nil {
		b.setErr(err)
	}
	return b.firstErr()
}

func (b *batcher) setErr(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
}

func (b *batcher) firstErr() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// submit queues a batch for the writer, blocking when the queue is full.
// This block is the protocol's backpressure point.
func (b *batcher) submit(recs []*campaign.ExperimentRecord) error {
	if err := b.firstErr(); err != nil {
		return err
	}
	select {
	case b.ch <- recs:
		return nil
	case <-b.done:
		return fmt.Errorf("shard: ingest batcher closed")
	}
}

// Flush waits until everything submitted so far is durable.
func (b *batcher) Flush() error {
	ack := make(chan error, 1)
	select {
	case b.flush <- ack:
		return <-ack
	case <-b.done:
		return b.firstErr()
	}
}

// Close drains what is queued, raises a final barrier, and stops the
// writer. Safe to call more than once and concurrently with submit.
func (b *batcher) Close() error {
	b.stop.Do(func() { close(b.quit) })
	<-b.done
	return b.barrier()
}
