package shard

// The coordinator: owns the canonical campaign store, partitions the
// plan, leases ranges, expires dead shards, and merges reported records
// through the ingest batcher. It never executes an experiment itself.
//
// Lease state machine (DESIGN.md §10):
//
//	pending range --Lease--> leased --Report(final)--> retired
//	      ^                   |
//	      |                   | heartbeat lapse (Sweep)
//	      +---- requeue <-----+
//
// A requeued lease re-enters pending as the coalesced runs of its
// still-unaccepted sequences, so work already merged from non-final
// reports is never redone. Acceptance is tracked per sequence number;
// a sequence is merged exactly once no matter how many leases ever
// covered it, which is what the partition property test pins.

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"goofi/internal/campaign"
)

// DefaultHeartbeat is the lease heartbeat period when the config leaves
// it zero; a lease lapses after three missed beats.
const DefaultHeartbeat = 500 * time.Millisecond

// DefaultMaxWorkerFailures quarantines a worker after this many expired
// leases (the PR 4 board-failure threshold lifted to shard level).
const DefaultMaxWorkerFailures = 3

// maxDeliveries bounds the report-delivery idempotency cache. Entries
// evict FIFO; 4096 covers every in-flight batch of any plausible fleet
// many times over (a worker holds at most a handful of unacked batches).
const maxDeliveries = 4096

// CoordinatorConfig wires a coordinator to a campaign.
type CoordinatorConfig struct {
	// Store is the canonical (merged) campaign store. The campaign and
	// target definitions must already be in it.
	Store    *campaign.Store
	Campaign *campaign.Campaign
	Target   *campaign.TargetSystemData
	// Technique selects the injection algorithm workers run.
	Technique string
	// TargetKind names the registered target system workers construct
	// (empty: derived from Technique).
	TargetKind string
	// TargetParams carries target-specific key=value configuration
	// handed out with every lease.
	TargetParams map[string]string
	// ImageBytes sizes swifi workload images on the workers.
	ImageBytes int
	// Shards is how many ranges the plan is partitioned into.
	Shards int
	// Checkpoint is the worker durable-cursor interval handed out with
	// every lease (0 defaults worker-side, -1 disables).
	Checkpoint int
	// HeartbeatEvery is the lease liveness cadence (default
	// DefaultHeartbeat); a lease expires after LeaseTTL without a beat
	// (default 3×HeartbeatEvery).
	HeartbeatEvery time.Duration
	LeaseTTL       time.Duration
	// MaxWorkerFailures quarantines a worker after this many expired
	// leases (default DefaultMaxWorkerFailures).
	MaxWorkerFailures int
	// MinTTLRatio is the validated floor of LeaseTTL/HeartbeatEvery
	// (default 2). A TTL under two beats means a single delayed or
	// dropped heartbeat expires a healthy lease — a misconfiguration on
	// any real network — so NewCoordinator rejects it outright instead
	// of letting the deployment discover it as spurious requeues.
	MinTTLRatio int
	// QueueDepth bounds the ingest batcher (default 8 batches).
	QueueDepth int
	// NowFunc is the clock (test hook; default time.Now).
	NowFunc func() time.Time
}

type lease struct {
	id      string
	worker  string
	rng     Range
	expires time.Time
}

// workerInfo is what the coordinator remembers about a fleet member:
// when it appeared, when it last proved liveness, and where it came
// from. Liveness updates on every hello, lease, heartbeat and report.
type workerInfo struct {
	host       string
	registered time.Time
	lastBeat   time.Time
}

// Coordinator runs the shard protocol for one campaign. All methods are
// safe for concurrent use.
type Coordinator struct {
	cfg CoordinatorConfig
	bat *batcher

	mu       sync.Mutex
	pending  []Range
	leases   map[string]*lease
	accepted map[int]bool // sequences merged (or queued for merge)
	haveRef  bool
	failures map[string]int
	quarant  map[string]bool
	workers  map[string]*workerInfo
	leaseSeq int
	closed   bool
	doneCh   chan struct{}
	stopCh   chan struct{}

	// deliveries caches the acknowledgement of every keyed report batch
	// (FIFO-evicted at maxDeliveries) so a retried delivery is re-acked,
	// not re-processed. delivOrder tracks insertion for eviction.
	deliveries map[string]ReportResponse
	delivOrder []string

	sweeper sync.WaitGroup
}

// NewCoordinator builds a coordinator and recovers its progress from the
// store: sequences whose end records are already durable (a previous
// coordinator's merges) are treated as accepted, and only the holes are
// queued — a coordinator restart resumes the campaign instead of
// redoing it.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Store == nil || cfg.Campaign == nil || cfg.Target == nil {
		return nil, fmt.Errorf("shard: coordinator needs a store, campaign and target")
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d < 1", cfg.Shards)
	}
	if cfg.Technique == "" {
		cfg.Technique = "scifi"
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = DefaultHeartbeat
	}
	if cfg.MinTTLRatio <= 0 {
		cfg.MinTTLRatio = 2
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 3 * cfg.HeartbeatEvery
	}
	if cfg.LeaseTTL < time.Duration(cfg.MinTTLRatio)*cfg.HeartbeatEvery {
		return nil, fmt.Errorf("shard: lease TTL %v < %d heartbeats of %v — one lost beat would expire healthy leases",
			cfg.LeaseTTL, cfg.MinTTLRatio, cfg.HeartbeatEvery)
	}
	if cfg.MaxWorkerFailures <= 0 {
		cfg.MaxWorkerFailures = DefaultMaxWorkerFailures
	}
	if cfg.NowFunc == nil {
		cfg.NowFunc = time.Now
	}
	cp, err := cfg.Store.RecoverCursor(cfg.Campaign.Name)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:        cfg,
		bat:        newBatcher(cfg.Store, cfg.QueueDepth),
		leases:     make(map[string]*lease),
		accepted:   make(map[int]bool),
		failures:   make(map[string]int),
		quarant:    make(map[string]bool),
		workers:    make(map[string]*workerInfo),
		deliveries: make(map[string]ReportResponse),
		doneCh:     make(chan struct{}),
		stopCh:     make(chan struct{}),
	}
	for _, seq := range cp.Completed {
		c.accepted[seq] = true
	}
	c.haveRef = cp.Reference
	// Queue the holes: the full plan on a fresh campaign, the coalesced
	// remainder after a restart. Runs are re-split to the partition
	// granularity so a restart still spreads across the fleet.
	per := (cfg.Campaign.NumExperiments + cfg.Shards - 1) / cfg.Shards
	var missing []int
	for seq := 0; seq < cfg.Campaign.NumExperiments; seq++ {
		if !c.accepted[seq] {
			missing = append(missing, seq)
		}
	}
	for _, run := range coalesce(missing) {
		for lo := run.Lo; lo < run.Hi; lo += per {
			hi := lo + per
			if hi > run.Hi {
				hi = run.Hi
			}
			c.pending = append(c.pending, Range{Lo: lo, Hi: hi})
		}
	}
	if c.complete() {
		close(c.doneCh)
	}
	// Background sweeper: expires dead leases even when no worker is
	// calling in (all workers dead must still requeue their ranges).
	c.sweeper.Add(1)
	go func() {
		defer c.sweeper.Done()
		t := time.NewTicker(cfg.LeaseTTL / 2)
		defer t.Stop()
		for {
			select {
			case <-c.stopCh:
				return
			case <-t.C:
				c.Sweep()
			}
		}
	}()
	return c, nil
}

// complete reports whether every sequence and the reference are merged.
// Callers hold c.mu.
func (c *Coordinator) complete() bool {
	return c.haveRef && len(c.accepted) >= c.cfg.Campaign.NumExperiments &&
		len(c.pending) == 0 && len(c.leases) == 0
}

// touchWorker records liveness for a worker, creating its fleet entry
// on first contact. Callers hold c.mu.
func (c *Coordinator) touchWorker(name string, now time.Time) *workerInfo {
	w := c.workers[name]
	if w == nil {
		w = &workerInfo{registered: now}
		c.workers[name] = w
	}
	w.lastBeat = now
	return w
}

// Hello registers a worker with the fleet before it leases any work.
// Registration is advisory for the lease protocol but it is the call on
// which an external worker discovers a bad token, and it makes the
// fleet visible in /progress from the first connection.
func (c *Coordinator) Hello(req HelloRequest) HelloResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.touchWorker(req.Worker, c.cfg.NowFunc())
	if req.Host != "" {
		w.host = req.Host
	}
	return HelloResponse{Status: "ok", Workers: len(c.workers)}
}

// WorkerStatus is one fleet member's view in Fleet().
type WorkerStatus struct {
	Name        string  `json:"name"`
	Host        string  `json:"host,omitempty"`
	Quarantined bool    `json:"quarantined"`
	Leases      int     `json:"leases"`
	Failures    int     `json:"failures"`
	LastBeatAge float64 `json:"last_beat_seconds"`
}

// Fleet reports every worker the coordinator has heard from, sorted by
// name, with its live lease count, expiry tally and heartbeat age —
// the membership view /progress serves for a sharded job.
func (c *Coordinator) Fleet() []WorkerStatus {
	now := c.cfg.NowFunc()
	c.mu.Lock()
	defer c.mu.Unlock()
	held := make(map[string]int, len(c.leases))
	for _, l := range c.leases {
		held[l.worker]++
	}
	out := make([]WorkerStatus, 0, len(c.workers))
	for name, w := range c.workers {
		out = append(out, WorkerStatus{
			Name:        name,
			Host:        w.host,
			Quarantined: c.quarant[name],
			Leases:      held[name],
			Failures:    c.failures[name],
			LastBeatAge: now.Sub(w.lastBeat).Seconds(),
		})
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Name < out[k].Name })
	return out
}

// Lease grants the next pending range to a worker.
func (c *Coordinator) Lease(req LeaseRequest) LeaseResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorker(req.Worker, c.cfg.NowFunc())
	c.sweepLocked(c.cfg.NowFunc())
	if c.closed || c.quarant[req.Worker] {
		// A quarantined worker is retired exactly like a failed board:
		// it gets no more work, the fleet shrinks by one.
		return LeaseResponse{Status: LeaseDone}
	}
	if len(c.pending) == 0 {
		if c.complete() {
			return LeaseResponse{Status: LeaseDone}
		}
		return LeaseResponse{Status: LeaseWait, HeartbeatEvery: c.cfg.HeartbeatEvery}
	}
	rng := c.pending[0]
	c.pending = c.pending[1:]
	c.leaseSeq++
	l := &lease{
		id:      fmt.Sprintf("l%04d", c.leaseSeq),
		worker:  req.Worker,
		rng:     rng,
		expires: c.cfg.NowFunc().Add(c.cfg.LeaseTTL),
	}
	c.leases[l.id] = l
	return LeaseResponse{
		Status:         LeaseRange,
		LeaseID:        l.id,
		Range:          rng,
		Campaign:       c.cfg.Campaign,
		Target:         c.cfg.Target,
		Technique:      c.cfg.Technique,
		TargetKind:     c.cfg.TargetKind,
		TargetParams:   c.cfg.TargetParams,
		ImageBytes:     c.cfg.ImageBytes,
		Checkpoint:     c.cfg.Checkpoint,
		HeartbeatEvery: c.cfg.HeartbeatEvery,
	}
}

// Heartbeat extends a lease; ErrBadLease tells the worker its lease is
// gone (expired and requeued, or lost to a coordinator restart) and the
// range should be abandoned.
func (c *Coordinator) Heartbeat(req HeartbeatRequest) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.NowFunc()
	c.touchWorker(req.Worker, now)
	l := c.leases[req.LeaseID]
	if l == nil || l.worker != req.Worker {
		return ErrBadLease
	}
	l.expires = now.Add(c.cfg.LeaseTTL)
	return nil
}

// Report merges a batch of records for a lease. Only records the lease
// covers and that have not been merged before are accepted: end records
// by sequence number, the reference once per campaign, and detail-mode
// trace rows with their parent. The write happens through the batcher;
// a final report flushes it so retiring a range implies durability.
func (c *Coordinator) Report(req ReportRequest) (ReportResponse, error) {
	c.mu.Lock()
	now := c.cfg.NowFunc()
	c.touchWorker(req.Worker, now)
	if req.Delivery != "" {
		if resp, ok := c.deliveries[req.Delivery]; ok {
			// A retried delivery of a batch that already landed: the
			// response was lost (timeout, reset, asymmetric partition),
			// not the request. Acknowledge from the cache — even when the
			// lease is gone, because a retried *final* report retired it
			// the first time through — and count it as a beat when the
			// lease still lives.
			if l := c.leases[req.LeaseID]; l != nil && l.worker == req.Worker {
				l.expires = now.Add(c.cfg.LeaseTTL)
			}
			c.mu.Unlock()
			mDelivDeduped.Inc()
			return resp, nil
		}
	}
	l := c.leases[req.LeaseID]
	if l == nil || l.worker != req.Worker {
		c.mu.Unlock()
		return ReportResponse{}, ErrBadLease
	}
	l.expires = now.Add(c.cfg.LeaseTTL) // a report is a heartbeat
	name := c.cfg.Campaign.Name
	refName := campaign.ReferenceName(name)
	// takenNames are end records accepted from this batch; trace rows
	// ride along with their parent. Two passes, so a batch may carry a
	// group's trace rows before or after its end record.
	taken := make(map[string]bool)
	var ingest []*campaign.ExperimentRecord
	for _, rec := range req.Records {
		if rec == nil || rec.Campaign != name || rec.Step >= 0 {
			continue
		}
		if rec.Name == refName {
			if !c.haveRef {
				c.haveRef = true
				taken[rec.Name] = true
				ingest = append(ingest, rec)
			}
			continue
		}
		seq := rec.Data.Seq
		if seq < l.rng.Lo || seq >= l.rng.Hi || c.accepted[seq] {
			continue
		}
		c.accepted[seq] = true
		taken[rec.Name] = true
		ingest = append(ingest, rec)
	}
	for _, rec := range req.Records {
		if rec != nil && rec.Campaign == name && rec.Step >= 0 && taken[rec.Parent] {
			ingest = append(ingest, rec)
		}
	}
	final := req.Final
	if final {
		delete(c.leases, req.LeaseID)
		// Anything the range did not deliver goes back in the queue.
		c.requeueLocked(l)
	}
	done := final && c.complete()
	c.mu.Unlock()

	// The batcher write happens outside the lock so backpressure stalls
	// only reporters, never leases or heartbeats.
	if err := c.bat.submit(ingest); err != nil {
		return ReportResponse{}, err
	}
	if final {
		if err := c.bat.Flush(); err != nil {
			return ReportResponse{}, err
		}
	} else {
		// The submit may have stalled on backpressure — time spent queued
		// in the merge is the coordinator's, not the worker's, so it must
		// not count against the lease.
		c.mu.Lock()
		if l := c.leases[req.LeaseID]; l != nil && l.worker == req.Worker {
			l.expires = c.cfg.NowFunc().Add(c.cfg.LeaseTTL)
		}
		c.mu.Unlock()
	}
	resp := ReportResponse{Accepted: len(ingest)}
	if req.Delivery != "" {
		// Only a fully processed (and, for final reports, durably
		// flushed) delivery is cached; an errored one must re-process.
		c.mu.Lock()
		c.cacheDeliveryLocked(req.Delivery, resp)
		c.mu.Unlock()
	}
	if done {
		c.finish()
	}
	return resp, nil
}

// cacheDeliveryLocked remembers a delivery's acknowledgement, evicting
// the oldest entry past maxDeliveries. Callers hold c.mu.
func (c *Coordinator) cacheDeliveryLocked(key string, resp ReportResponse) {
	if _, ok := c.deliveries[key]; !ok {
		c.delivOrder = append(c.delivOrder, key)
		if len(c.delivOrder) > maxDeliveries {
			delete(c.deliveries, c.delivOrder[0])
			c.delivOrder = c.delivOrder[1:]
		}
	}
	c.deliveries[key] = resp
}

// requeueLocked returns a lease's unmerged sequences to the pending
// queue as coalesced runs. Callers hold c.mu.
func (c *Coordinator) requeueLocked(l *lease) {
	var left []int
	for seq := l.rng.Lo; seq < l.rng.Hi; seq++ {
		if !c.accepted[seq] {
			left = append(left, seq)
		}
	}
	c.pending = append(c.pending, coalesce(left)...)
}

// Sweep expires every lease whose heartbeat lapsed, requeues its
// unmerged sequences, and quarantines workers that keep dying. It runs
// from the background ticker and at the top of every Lease call.
func (c *Coordinator) Sweep() {
	c.mu.Lock()
	done := false
	c.sweepLocked(c.cfg.NowFunc())
	// Expiring the last outstanding lease can complete the campaign
	// (its sequences may all have been merged by non-final reports).
	done = c.complete() && !c.closed
	c.mu.Unlock()
	if done {
		c.finish()
	}
}

func (c *Coordinator) sweepLocked(now time.Time) {
	for id, l := range c.leases {
		if now.Before(l.expires) {
			continue
		}
		delete(c.leases, id)
		c.requeueLocked(l)
		c.failures[l.worker]++
		if c.failures[l.worker] >= c.cfg.MaxWorkerFailures {
			c.quarant[l.worker] = true
		}
	}
}

// finish flushes the batcher and signals Done exactly once.
func (c *Coordinator) finish() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	select {
	case <-c.doneCh:
		c.mu.Unlock()
		return
	default:
	}
	close(c.doneCh)
	c.mu.Unlock()
}

// Done is closed once every sequence and the reference are durably
// merged.
func (c *Coordinator) Done() <-chan struct{} { return c.doneCh }

// Err surfaces the first merge error (store write failures poison the
// ingest path).
func (c *Coordinator) Err() error { return c.bat.firstErr() }

// Progress reports merged experiments out of the plan total.
func (c *Coordinator) Progress() (done, total int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.accepted), c.cfg.Campaign.NumExperiments
}

// Complete reports whether the campaign fully merged.
func (c *Coordinator) Complete() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.haveRef && len(c.accepted) >= c.cfg.Campaign.NumExperiments
}

// Close stops the sweeper and drains the ingest batcher. The store stays
// open (the coordinator never owned it).
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.stopCh)
	}
	c.mu.Unlock()
	c.sweeper.Wait()
	return c.bat.Close()
}
