package shard

// Transport-layer pins: every failure mode a worker can see maps to the
// right retryable-vs-terminal classification, retries actually happen
// (and stop) where they should, and a retried report delivery merges
// exactly once.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"goofi/internal/campaign"
	"goofi/internal/faultmodel"
	"goofi/internal/scifi"
	"goofi/internal/sqldb"
	"goofi/internal/trigger"
	"goofi/internal/workload"
)

// fastTransport builds a client against base with a fast, deterministic
// retry policy so the tests spend no real time backing off.
func fastTransport(base string, retries int) *HTTPTransport {
	return &HTTPTransport{
		Base: base, Tenant: "t", Campaign: "c",
		Retry: RetryPolicy{
			MaxRetries:  retries,
			BackoffBase: time.Millisecond,
			BackoffMax:  2 * time.Millisecond,
			Seed:        1,
		},
	}
}

func TestTransportErrorClassification(t *testing.T) {
	okBody := `{"status":"wait"}`
	cases := []struct {
		name    string
		status  []int // per-attempt response status; last repeats
		body    string
		retries int
		// expectations
		wantErrIs     error  // sentinel matched with errors.Is (nil: none)
		wantRetryable bool   // Retryable(err) for a non-nil error
		wantClass     string // TransportError class ("" skips)
		wantCalls     int32
		wantOK        bool
	}{
		{name: "401-terminal", status: []int{401}, retries: 3,
			wantErrIs: ErrUnauthorized, wantCalls: 1},
		{name: "409-bad-lease", status: []int{409}, retries: 3,
			wantErrIs: ErrBadLease, wantCalls: 1},
		{name: "404-bad-lease", status: []int{404}, retries: 3,
			wantErrIs: ErrBadLease, wantCalls: 1},
		{name: "400-terminal", status: []int{400}, body: `{"error":"bad plan"}`, retries: 3,
			wantClass: ClassStatus, wantCalls: 1},
		{name: "500-retry-then-success", status: []int{500, 500, 200}, retries: 3,
			wantOK: true, wantCalls: 3},
		{name: "500-exhausted", status: []int{500}, retries: 2,
			wantRetryable: true, wantClass: ClassStatus, wantCalls: 3},
		{name: "truncated-json-retries", status: []int{200}, body: `{"status":`, retries: 1,
			wantRetryable: true, wantClass: ClassDecode, wantCalls: 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var calls atomic.Int32
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				n := int(calls.Add(1))
				status := tc.status[len(tc.status)-1]
				if n <= len(tc.status) {
					status = tc.status[n-1]
				}
				w.WriteHeader(status)
				body := tc.body
				if body == "" && status == 200 {
					body = okBody
				}
				fmt.Fprint(w, body)
			}))
			defer ts.Close()
			tr := fastTransport(ts.URL, tc.retries)
			_, err := tr.Lease(context.Background(), LeaseRequest{Worker: "w"})
			if tc.wantOK {
				if err != nil {
					t.Fatalf("want success, got %v", err)
				}
			} else if err == nil {
				t.Fatal("want an error, got success")
			}
			if tc.wantErrIs != nil && !errors.Is(err, tc.wantErrIs) {
				t.Fatalf("err = %v, want %v", err, tc.wantErrIs)
			}
			if err != nil && tc.wantErrIs == nil {
				if got := Retryable(err); got != tc.wantRetryable {
					t.Fatalf("Retryable(%v) = %v, want %v", err, got, tc.wantRetryable)
				}
				var te *TransportError
				if tc.wantClass != "" {
					if !errors.As(err, &te) {
						t.Fatalf("err %v is not a TransportError", err)
					}
					if te.Class != tc.wantClass {
						t.Fatalf("class = %q, want %q", te.Class, tc.wantClass)
					}
				}
			}
			if got := calls.Load(); got != tc.wantCalls {
				t.Fatalf("server saw %d calls, want %d", got, tc.wantCalls)
			}
		})
	}
}

func TestTransportTimeoutClassified(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer ts.Close()
	defer close(release) // unblock the handler before Close waits on it
	tr := fastTransport(ts.URL, -1) // no retries: one classified attempt
	tr.CallTimeout = 20 * time.Millisecond
	_, err := tr.Lease(context.Background(), LeaseRequest{Worker: "w"})
	if err == nil {
		t.Fatal("want a timeout error, got success")
	}
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("err %v is not a TransportError", err)
	}
	if te.Class != ClassTimeout || !te.Timeout() {
		t.Fatalf("class = %q (Timeout()=%v), want %q", te.Class, te.Timeout(), ClassTimeout)
	}
	if !Retryable(err) {
		t.Fatal("a per-call timeout must be retryable")
	}
}

func TestTransportConnRefusedRetryable(t *testing.T) {
	ts := httptest.NewServer(http.NewServeMux())
	ts.Close() // the address is now guaranteed dead
	tr := fastTransport(ts.URL, -1)
	_, err := tr.Lease(context.Background(), LeaseRequest{Worker: "w"})
	if err == nil {
		t.Fatal("want a connection error, got success")
	}
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("err %v is not a TransportError", err)
	}
	if te.Class != ClassConn || !te.Retryable {
		t.Fatalf("class = %q retryable=%v, want %q retryable", te.Class, te.Retryable, ClassConn)
	}
}

func TestTransportErrorSnippet(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"bad plan:   too\nmany  shards"}`)
	}))
	defer ts.Close()
	tr := fastTransport(ts.URL, 0)
	_, err := tr.Lease(context.Background(), LeaseRequest{Worker: "w"})
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("err %v is not a TransportError", err)
	}
	if !strings.Contains(te.Snippet, "bad plan") || strings.ContainsAny(te.Snippet, "\n") {
		t.Fatalf("snippet %q should carry the flattened response body", te.Snippet)
	}
	if !strings.Contains(err.Error(), "bad plan") {
		t.Fatalf("error text %q should surface the snippet", err.Error())
	}
}

func TestTransportBearerToken(t *testing.T) {
	var got atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get("Authorization"))
		fmt.Fprint(w, `{"status":"wait"}`)
	}))
	defer ts.Close()
	tr := fastTransport(ts.URL, 0)
	tr.Token = "s3cret"
	if _, err := tr.Lease(context.Background(), LeaseRequest{Worker: "w"}); err != nil {
		t.Fatal(err)
	}
	if h, _ := got.Load().(string); h != "Bearer s3cret" {
		t.Fatalf("Authorization = %q, want the bearer token", h)
	}
}

// simCoordinator builds a coordinator over a throwaway store, for
// protocol-level tests that fabricate records.
func simCoordinator(t *testing.T, n, shards int) (*Coordinator, *campaign.Store, string) {
	t.Helper()
	name := "deliv"
	db, err := sqldb.OpenAt(filepath.Join(t.TempDir(), "deliv.db"), sqldb.SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	st, err := campaign.NewStore(db)
	if err != nil {
		t.Fatal(err)
	}
	tsd := scifi.TargetSystemData("thor-board")
	if err := st.PutTargetSystem(tsd); err != nil {
		t.Fatal(err)
	}
	camp := &campaign.Campaign{
		Name:           name,
		TargetName:     "thor-board",
		ChainName:      "internal",
		Locations:      []string{"cpu"},
		FaultModel:     faultmodel.Spec{Kind: faultmodel.Transient, Multiplicity: 1},
		Trigger:        trigger.Spec{Kind: "cycle", Occurrence: 1},
		RandomWindow:   [2]uint64{10, 100},
		NumExperiments: n,
		Seed:           1,
		Termination:    campaign.Termination{TimeoutCycles: 1000},
		Workload:       workload.All()["sort16"],
		LogMode:        campaign.LogNormal,
	}
	if err := st.PutCampaign(camp); err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		Store: st, Campaign: camp, Target: tsd, Shards: shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	return coord, st, name
}

// TestReportDeliveryIdempotent pins the idempotency-key contract: a
// retried delivery — same key, same payload — is acknowledged with the
// first response and merged exactly once, including a retried final
// report whose first copy already retired the lease.
func TestReportDeliveryIdempotent(t *testing.T) {
	const n = 6
	coord, st, name := simCoordinator(t, n, 1)
	lease := coord.Lease(LeaseRequest{Worker: "w"})
	if lease.Status != LeaseRange {
		t.Fatalf("lease status = %q", lease.Status)
	}

	stream := ReportRequest{
		Worker: "w", LeaseID: lease.LeaseID, Delivery: "w/l/1",
		Records: []*campaign.ExperimentRecord{
			simRecord(name, -1), simRecord(name, 0), simRecord(name, 1),
		},
	}
	first, err := coord.Report(stream)
	if err != nil {
		t.Fatal(err)
	}
	if first.Accepted != 3 {
		t.Fatalf("first delivery accepted %d, want 3", first.Accepted)
	}
	mergedBefore, _ := coord.Progress()
	retried, err := coord.Report(stream)
	if err != nil {
		t.Fatalf("retried delivery: %v", err)
	}
	if retried != first {
		t.Fatalf("retried ack %+v differs from original %+v", retried, first)
	}
	if merged, _ := coord.Progress(); merged != mergedBefore {
		t.Fatalf("retried delivery advanced the merge: %d -> %d", mergedBefore, merged)
	}

	// A re-send WITHOUT a key must also merge nothing (the two-pass
	// filter), though its ack counts zero fresh records.
	unkeyed := stream
	unkeyed.Delivery = ""
	resp, err := coord.Report(unkeyed)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 0 {
		t.Fatalf("unkeyed duplicate accepted %d records, want 0", resp.Accepted)
	}

	final := ReportRequest{
		Worker: "w", LeaseID: lease.LeaseID, Final: true, Delivery: "w/l/2",
		Records: []*campaign.ExperimentRecord{
			simRecord(name, 2), simRecord(name, 3), simRecord(name, 4), simRecord(name, 5),
		},
	}
	finResp, err := coord.Report(final)
	if err != nil {
		t.Fatal(err)
	}
	// The lease is retired now; an unkeyed retry would get ErrBadLease.
	// The keyed retry must be re-acked from the cache instead.
	finRetry, err := coord.Report(final)
	if err != nil {
		t.Fatalf("retried final delivery after lease retirement: %v", err)
	}
	if finRetry != finResp {
		t.Fatalf("retried final ack %+v differs from original %+v", finRetry, finResp)
	}
	select {
	case <-coord.Done():
	default:
		t.Fatal("campaign should be complete")
	}
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := st.Experiments(name)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n+1 {
		t.Fatalf("store has %d records, want %d (+reference): duplicates merged?", len(recs), n+1)
	}
}
