package shard_test

// The partition-tolerance pin: a sharded campaign whose every
// coordinator/worker call crosses a deterministically hostile network —
// dropped requests, lost acknowledgements, delays, duplicated
// deliveries, truncated responses, full and asymmetric partitions —
// must still merge LoggedSystemState records and an analysis report
// byte-identical to a solo run. The chaos.Net engine draws faults from
// its own seeded RNG, so the experiment plan is untouched; everything
// the network breaks, the lease/requeue/idempotency machinery must
// absorb. These tests are part of tier 1 and run under -race.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"goofi/internal/campaign"
	"goofi/internal/chaos"
	"goofi/internal/scifi"
	"goofi/internal/server"
	"goofi/internal/shard"
	"goofi/internal/sqldb"
)

// chaosFleet runs camp to completion through a coordinator and one
// in-process worker per net, every transport call crossing that
// worker's chaos.Net. Returns the merged canonical store. script, when
// set, runs alongside the fleet with the live coordinator (partition
// scheduling); it must return before the campaign can be considered
// stuck.
func chaosFleet(t *testing.T, camp *campaign.Campaign, hb, ttl time.Duration,
	nets []*chaos.Net, onRecord []func(*campaign.ExperimentRecord),
	script func(coord *shard.Coordinator)) *campaign.Store {
	t.Helper()
	db, err := sqldb.OpenAt(filepath.Join(t.TempDir(), "merged.db"), sqldb.SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	st, err := campaign.NewStore(db)
	if err != nil {
		t.Fatal(err)
	}
	tsd := scifi.TargetSystemData(camp.TargetName)
	if err := st.PutTargetSystem(tsd); err != nil {
		t.Fatal(err)
	}
	if err := st.PutCampaign(camp); err != nil {
		t.Fatal(err)
	}
	coord, err := shard.NewCoordinator(shard.CoordinatorConfig{
		Store: st, Campaign: camp, Target: tsd,
		Shards:         len(nets),
		HeartbeatEvery: hb,
		LeaseTTL:       ttl,
	})
	if err != nil {
		t.Fatal(err)
	}

	wctx, wcancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer wcancel()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	workerDir := t.TempDir()
	for i, net := range nets {
		var hook func(*campaign.ExperimentRecord)
		if i < len(onRecord) {
			hook = onRecord[i]
		}
		w, err := shard.NewWorker(shard.WorkerConfig{
			Name:      fmt.Sprintf("cw%d", i),
			Dir:       filepath.Join(workerDir, fmt.Sprintf("w%d", i)),
			Boards:    1,
			Transport: net.Transport(shard.Direct{C: coord}),
			Poll:      10 * time.Millisecond,
			OnRecord:  hook,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(wctx); err != nil && wctx.Err() == nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}()
	}
	if script != nil {
		script(coord)
	}
	select {
	case <-coord.Done():
	case <-wctx.Done():
		merged, total := coord.Progress()
		t.Fatalf("campaign stuck: %d/%d merged", merged, total)
	}
	wcancel()
	wg.Wait()
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	if err := coord.Err(); err != nil {
		t.Fatalf("merge error: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		t.Fatalf("worker error: %v", firstErr)
	}
	return st
}

// waitCoord polls cond every 5ms until it holds or the coordinator
// finishes; the bool reports whether cond ever held.
func waitCoord(coord *shard.Coordinator, cond func() bool, limit time.Duration) bool {
	deadline := time.Now().Add(limit)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		select {
		case <-coord.Done():
			return false
		case <-time.After(5 * time.Millisecond):
		}
	}
	return false
}

// TestNetChaosConformanceDropDelayDuplicate is the broad-spectrum
// schedule: every fault kind at once, two seeds, each worker on its own
// seeded fault stream.
func TestNetChaosConformanceDropDelayDuplicate(t *testing.T) {
	const n = 40
	camp := conformanceCampaign("chaosnet", n)
	solo := soloRun(t, camp)
	wantRecs := recordBytes(t, solo, "chaosnet")
	wantReport := reportText(t, solo, "chaosnet")

	for _, seed := range []int64{101, 202} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			nets := []*chaos.Net{
				chaos.NewNet(chaos.NetConfig{Seed: seed, DropRequestProb: 0.15,
					DropResponseProb: 0.10, DelayProb: 0.2, Delay: 2 * time.Millisecond,
					DuplicateProb: 0.15, TruncateProb: 0.10}),
				chaos.NewNet(chaos.NetConfig{Seed: seed + 1, DropRequestProb: 0.15,
					DropResponseProb: 0.10, DelayProb: 0.2, Delay: 2 * time.Millisecond,
					DuplicateProb: 0.15, TruncateProb: 0.10}),
			}
			st := chaosFleet(t, camp, 50*time.Millisecond, 150*time.Millisecond, nets, nil, nil)
			assertIdentical(t, st, "chaosnet", wantRecs, wantReport)
			if nets[0].Faults()+nets[1].Faults() == 0 {
				t.Fatal("no network faults fired; the schedule is vacuous")
			}
		})
	}
}

// TestNetChaosConformanceAckLoss drowns the report path in lost and
// truncated acknowledgements: half the responses vanish after the
// coordinator has already processed the call — the exact scenario the
// delivery idempotency key exists for.
func TestNetChaosConformanceAckLoss(t *testing.T) {
	const n = 40
	camp := conformanceCampaign("chaosack", n)
	solo := soloRun(t, camp)
	wantRecs := recordBytes(t, solo, "chaosack")
	wantReport := reportText(t, solo, "chaosack")

	nets := []*chaos.Net{
		chaos.NewNet(chaos.NetConfig{Seed: 7, DropResponseProb: 0.5, TruncateProb: 0.25}),
		chaos.NewNet(chaos.NetConfig{Seed: 8, DropResponseProb: 0.5, TruncateProb: 0.25}),
	}
	st := chaosFleet(t, camp, 50*time.Millisecond, 150*time.Millisecond, nets, nil, nil)
	assertIdentical(t, st, "chaosack", wantRecs, wantReport)
	if nets[0].Faults()+nets[1].Faults() == 0 {
		t.Fatal("no network faults fired; the schedule is vacuous")
	}
}

// TestNetChaosConformanceFullPartitionHeal cuts one worker off
// completely until its lease provably expired (heartbeat loss), then
// heals; the survivor absorbs the requeued range, the healed worker
// rejoins, and the merge still matches the solo run.
func TestNetChaosConformanceFullPartitionHeal(t *testing.T) {
	const n = 120
	camp := conformanceCampaign("chaospart", n)
	solo := soloRun(t, camp)
	wantRecs := recordBytes(t, solo, "chaospart")
	wantReport := reportText(t, solo, "chaospart")

	nets := []*chaos.Net{chaos.NewNet(chaos.NetConfig{}), chaos.NewNet(chaos.NetConfig{})}
	// Partition worker 0 from inside its own record stream: three records
	// into its range — mid-lease, with most of the range still pending —
	// its network goes dark. Gating on the worker's OnRecord hook (rather
	// than on wall-clock or coordinator progress) guarantees the schedule
	// engages before the campaign can finish.
	var recs atomic.Int64
	partitioned := make(chan struct{})
	hook := func(*campaign.ExperimentRecord) {
		if recs.Add(1) == 3 {
			nets[0].PartitionFull()
			close(partitioned)
		}
	}
	script := func(coord *shard.Coordinator) {
		go func() {
			select {
			case <-partitioned:
			case <-coord.Done():
				return
			}
			// Hold the partition until the coordinator has actually reaped
			// a lease from the cut-off worker — the heartbeat-loss moment —
			// or the survivor finished the campaign without it.
			waitCoord(coord, func() bool {
				for _, w := range coord.Fleet() {
					if w.Name == "cw0" && w.Failures >= 1 {
						return true
					}
				}
				return false
			}, 60*time.Second)
			nets[0].Heal()
		}()
	}
	st := chaosFleet(t, camp, 50*time.Millisecond, 150*time.Millisecond, nets,
		[]func(*campaign.ExperimentRecord){hook}, script)
	select {
	case <-partitioned:
	default:
		t.Fatal("partition never engaged; the schedule is vacuous")
	}
	assertIdentical(t, st, "chaospart", wantRecs, wantReport)
}

// TestNetChaosConformanceAsymmetricPartition opens the nastier window:
// both workers' requests keep landing — leases grant, heartbeats count,
// reports merge — but every response vanishes. Stranded leases must
// expire and requeue, keyed report retries must be re-acked instead of
// re-merged, and after healing the result is still byte-identical.
func TestNetChaosConformanceAsymmetricPartition(t *testing.T) {
	const n = 120
	camp := conformanceCampaign("chaosasym", n)
	solo := soloRun(t, camp)
	wantRecs := recordBytes(t, solo, "chaosasym")
	wantReport := reportText(t, solo, "chaosasym")

	net := chaos.NewNet(chaos.NetConfig{})
	// Trip the asymmetric partition from worker 0's record stream so it is
	// guaranteed to open while ranges are still in flight.
	var recs atomic.Int64
	partitioned := make(chan struct{})
	hook := func(*campaign.ExperimentRecord) {
		if recs.Add(1) == 3 {
			net.PartitionAsym()
			close(partitioned)
		}
	}
	script := func(coord *shard.Coordinator) {
		go func() {
			select {
			case <-partitioned:
			case <-coord.Done():
				return
			}
			time.Sleep(400 * time.Millisecond)
			net.Heal()
		}()
	}
	// Both workers share the partitioned network.
	st := chaosFleet(t, camp, 50*time.Millisecond, 150*time.Millisecond,
		[]*chaos.Net{net, net},
		[]func(*campaign.ExperimentRecord){hook}, script)
	select {
	case <-partitioned:
	default:
		t.Fatal("partition never engaged; the schedule is vacuous")
	}
	assertIdentical(t, st, "chaosasym", wantRecs, wantReport)
}

// TestShardWorkerUnauthorized locks the daemon's shard surface behind a
// token: a worker with the right token carries the campaign to the end,
// a worker with the wrong token is turned away terminally (no retry
// storm, no effect on the in-flight campaign), and a bare request with
// no token at all gets 401.
func TestShardWorkerUnauthorized(t *testing.T) {
	const n = 30
	camp := conformanceCampaign("confauth", n)
	solo := soloRun(t, camp)
	wantRecs := recordBytes(t, solo, "confauth")
	wantReport := reportText(t, solo, "confauth")

	dir := t.TempDir()
	s, err := server.New(server.Config{
		DataDir: dir, Boards: 4, MaxConcurrent: 1,
		ShardToken: "sekrit",
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := postJSON(t, ts.URL+"/api/v1/campaigns", server.SubmitRequest{
		Tenant: "alice", Campaign: camp, Shards: 1, ExternalWorkers: true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}

	// A tokenless request bounces at the door with 401 — before any
	// campaign lookup.
	resp, body = postJSON(t, ts.URL+"/api/v1/shards/alice/confauth/lease",
		shard.LeaseRequest{Worker: "stranger"})
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless lease = %d (%s), want 401", resp.StatusCode, body)
	}

	workerDir := t.TempDir()
	// The impostor: wrong token, must exit with ErrUnauthorized instead
	// of retrying.
	bad, err := shard.NewWorker(shard.WorkerConfig{
		Name: "impostor", Dir: filepath.Join(workerDir, "bad"), Boards: 1,
		Poll: 10 * time.Millisecond,
		Transport: &shard.HTTPTransport{
			Base: ts.URL, Tenant: "alice", Campaign: "confauth", Token: "wrong",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	badErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		badErr <- bad.Run(ctx)
	}()

	good, err := shard.NewWorker(shard.WorkerConfig{
		Name: "legit", Dir: filepath.Join(workerDir, "good"), Boards: 1,
		Poll: 10 * time.Millisecond,
		Transport: &shard.HTTPTransport{
			Base: ts.URL, Tenant: "alice", Campaign: "confauth", Token: "sekrit",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	goodErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		goodErr <- good.Run(ctx)
	}()

	if err := <-badErr; err != shard.ErrUnauthorized {
		t.Fatalf("impostor worker returned %v, want ErrUnauthorized", err)
	}
	if st := waitState(t, ts.URL, "alice", "confauth"); st.State != server.StateDone {
		t.Fatalf("state = %s (err %q)", st.State, st.Error)
	}
	if err := <-goodErr; err != nil {
		t.Fatalf("authorized worker: %v", err)
	}
	shutdownServer(t, s)
	assertIdentical(t, tenantStore(t, dir, "alice"), "confauth", wantRecs, wantReport)
}
