package shard_test

// The sharding correctness pin: a campaign executed as N shards — by the
// daemon's in-process workers, by external workers over HTTP, with a
// worker killed mid-range, and across a coordinator kill/restart — must
// produce LoggedSystemState records and an analysis report byte-identical
// to a solo `goofi run` of the same definition. These tests are part of
// tier 1 and run under -race.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"goofi/internal/analysis"
	"goofi/internal/campaign"
	"goofi/internal/core"
	"goofi/internal/faultmodel"
	"goofi/internal/scifi"
	"goofi/internal/server"
	"goofi/internal/shard"
	"goofi/internal/sqldb"
	"goofi/internal/thor"
	"goofi/internal/trigger"
	"goofi/internal/workload"
)

// conformanceCampaign is the quickstart campaign scaled to n
// experiments — the same definition the server differential tests use.
func conformanceCampaign(name string, n int) *campaign.Campaign {
	return &campaign.Campaign{
		Name:           name,
		TargetName:     "thor-board",
		ChainName:      "internal",
		Locations:      []string{"cpu"},
		FaultModel:     faultmodel.Spec{Kind: faultmodel.Transient, Multiplicity: 1},
		Trigger:        trigger.Spec{Kind: "cycle", Occurrence: 1},
		RandomWindow:   [2]uint64{10, 1600},
		NumExperiments: n,
		Seed:           2026,
		Termination:    campaign.Termination{TimeoutCycles: 100_000},
		Workload:       workload.All()["sort16"],
		LogMode:        campaign.LogNormal,
	}
}

// soloRun executes camp exactly the way `goofi run` does and returns the
// store holding the ground-truth results.
func soloRun(t *testing.T, camp *campaign.Campaign) *campaign.Store {
	t.Helper()
	db, err := sqldb.OpenAt(filepath.Join(t.TempDir(), "solo.db"), sqldb.SyncBarrier)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	st, err := campaign.NewStore(db)
	if err != nil {
		t.Fatal(err)
	}
	tsd := scifi.TargetSystemData(camp.TargetName)
	if err := st.PutTargetSystem(tsd); err != nil {
		t.Fatal(err)
	}
	if err := st.PutCampaign(camp); err != nil {
		t.Fatal(err)
	}
	factory := func() core.TargetSystem { return scifi.New(thor.DefaultConfig()) }
	sink := campaign.NewBatchingSink(st, 0)
	r, err := core.NewRunner(factory(), core.SCIFI, camp, tsd,
		core.WithSink(sink),
		core.WithBoards(2, factory),
		core.WithCheckpoints(core.DefaultCheckpointInterval))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.DeleteCheckpoint(camp.Name); err != nil {
		t.Fatal(err)
	}
	return st
}

// recordBytes renders every end-of-experiment record to canonical JSON
// in sequence order.
func recordBytes(t *testing.T, st *campaign.Store, name string) []string {
	t.Helper()
	recs, err := st.Experiments(name)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(recs))
	for i, rec := range recs {
		blob, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = string(blob)
	}
	return out
}

func reportText(t *testing.T, st *campaign.Store, name string) string {
	t.Helper()
	rep, err := analysis.AnalyzeAndStore(st, name)
	if err != nil {
		t.Fatal(err)
	}
	return rep.Render()
}

// assertIdentical fails unless st's records and report match the solo
// ground truth byte for byte.
func assertIdentical(t *testing.T, st *campaign.Store, name string, wantRecs []string, wantReport string) {
	t.Helper()
	got := recordBytes(t, st, name)
	if len(got) != len(wantRecs) {
		t.Fatalf("sharded run has %d records, solo run has %d", len(got), len(wantRecs))
	}
	for i := range got {
		if got[i] != wantRecs[i] {
			t.Fatalf("record %d differs\n sharded: %s\n    solo: %s", i, got[i], wantRecs[i])
		}
	}
	if gotRep := reportText(t, st, name); gotRep != wantReport {
		t.Fatalf("analysis report differs\n sharded:\n%s\n solo:\n%s", gotRep, wantReport)
	}
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// waitState polls a job until it reaches a terminal state.
func waitState(t *testing.T, base, tenant, name string) server.JobStatus {
	t.Helper()
	url := fmt.Sprintf("%s/api/v1/campaigns/%s/%s", base, tenant, name)
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		var st server.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case server.StateDone, server.StateFailed, server.StateCancelled:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s/%s stuck in state %s", tenant, name, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// tenantStore opens a tenant database read-side after the daemon shut
// down, for the byte comparison.
func tenantStore(t *testing.T, dataDir, tenant string) *campaign.Store {
	t.Helper()
	db, err := sqldb.OpenAt(filepath.Join(dataDir, tenant+".db"), sqldb.SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	st, err := campaign.NewStore(db)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestShardConformanceCounts is the table-driven core of the suite:
// shards ∈ {1, 2, 4} through the daemon's sharded path (in-process
// workers over the Direct transport) against the solo ground truth.
func TestShardConformanceCounts(t *testing.T) {
	const n = 40
	camp := conformanceCampaign("conf", n)
	solo := soloRun(t, camp)
	wantRecs := recordBytes(t, solo, "conf")
	wantReport := reportText(t, solo, "conf")

	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			s, err := server.New(server.Config{DataDir: dir, Boards: 4, MaxConcurrent: 1})
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()
			resp, body := postJSON(t, ts.URL+"/api/v1/campaigns", server.SubmitRequest{
				Tenant: "alice", Campaign: camp, Shards: shards,
			})
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit = %d: %s", resp.StatusCode, body)
			}
			if st := waitState(t, ts.URL, "alice", "conf"); st.State != server.StateDone {
				t.Fatalf("state = %s (err %q)", st.State, st.Error)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := s.Shutdown(ctx); err != nil {
				t.Fatal(err)
			}
			assertIdentical(t, tenantStore(t, dir, "alice"), "conf", wantRecs, wantReport)
		})
	}
}

// traceBytes renders every detail-mode trace row, grouped under its
// parent in sequence order, to canonical JSON.
func traceBytes(t *testing.T, st *campaign.Store, name string) []string {
	t.Helper()
	recs, err := st.Experiments(name)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, rec := range recs {
		trace, err := st.Trace(rec.Name)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range trace {
			blob, err := json.Marshal(row)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, string(blob))
		}
	}
	return out
}

// TestShardConformanceDetailTrace shards a detail-mode campaign, whose
// per-instruction trace rows must ride with their parent end record
// through streamed and final reports alike, and checks the full trace —
// not just the end records — against the solo run byte for byte.
func TestShardConformanceDetailTrace(t *testing.T) {
	const n = 8
	camp := conformanceCampaign("confdet", n)
	camp.LogMode = campaign.LogDetail
	camp.RandomWindow = [2]uint64{10, 400}
	solo := soloRun(t, camp)
	wantRecs := recordBytes(t, solo, "confdet")
	wantReport := reportText(t, solo, "confdet")
	wantTrace := traceBytes(t, solo, "confdet")
	if len(wantTrace) == 0 {
		t.Fatal("detail campaign produced no trace rows; the test is vacuous")
	}

	dir := t.TempDir()
	// The default heartbeat: mid-range streaming is driven by the
	// reportBatch kick (every experiment's trace group is far larger than
	// one batch), not by the ticker, so no tight cadence is needed.
	s, err := server.New(server.Config{DataDir: dir, Boards: 4, MaxConcurrent: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := postJSON(t, ts.URL+"/api/v1/campaigns", server.SubmitRequest{
		Tenant: "alice", Campaign: camp, Shards: 2,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	if st := waitState(t, ts.URL, "alice", "confdet"); st.State != server.StateDone {
		t.Fatalf("state = %s (err %q)", st.State, st.Error)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	st := tenantStore(t, dir, "alice")
	assertIdentical(t, st, "confdet", wantRecs, wantReport)
	gotTrace := traceBytes(t, st, "confdet")
	if len(gotTrace) != len(wantTrace) {
		t.Fatalf("sharded run has %d trace rows, solo run has %d", len(gotTrace), len(wantTrace))
	}
	for i := range gotTrace {
		if gotTrace[i] != wantTrace[i] {
			t.Fatalf("trace row %d differs\n sharded: %s\n    solo: %s", i, gotTrace[i], wantTrace[i])
		}
	}
}

// TestShardConformanceWorkerKilled runs two external workers over the
// real HTTP transport and kills one mid-range; the survivor picks up the
// requeued lease and the merged result still matches the solo run byte
// for byte.
func TestShardConformanceWorkerKilled(t *testing.T) {
	const n = 60
	camp := conformanceCampaign("confkill", n)
	solo := soloRun(t, camp)
	wantRecs := recordBytes(t, solo, "confkill")
	wantReport := reportText(t, solo, "confkill")

	dir := t.TempDir()
	s, err := server.New(server.Config{
		DataDir: dir, Boards: 4, MaxConcurrent: 1,
		// A fast heartbeat so the killed worker's lease expires quickly —
		// but not so fast that scheduler jitter on a loaded single-CPU
		// box expires healthy leases.
		ShardHeartbeat: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := postJSON(t, ts.URL+"/api/v1/campaigns", server.SubmitRequest{
		Tenant: "alice", Campaign: camp, Shards: 2, ExternalWorkers: true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}

	workerDir := t.TempDir()
	transport := func() *shard.HTTPTransport {
		return &shard.HTTPTransport{Base: ts.URL, Tenant: "alice", Campaign: "confkill"}
	}
	var wg sync.WaitGroup
	// Worker zero is killed (context cut, no teardown, no report) after
	// logging a handful of records of its first range.
	killCtx, kill := context.WithCancel(context.Background())
	defer kill()
	var killOnce sync.Once
	var logged int
	var loggedMu sync.Mutex
	w0, err := shard.NewWorker(shard.WorkerConfig{
		Name: "w0", Dir: filepath.Join(workerDir, "w0"), Boards: 1,
		Transport: transport(), Poll: 10 * time.Millisecond,
		OnRecord: func(*campaign.ExperimentRecord) {
			loggedMu.Lock()
			logged++
			die := logged >= 4
			loggedMu.Unlock()
			if die {
				killOnce.Do(kill)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = w0.Run(killCtx) // dies by design
	}()

	w1, err := shard.NewWorker(shard.WorkerConfig{
		Name: "w1", Dir: filepath.Join(workerDir, "w1"), Boards: 1,
		Transport: transport(), Poll: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	werr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		werr <- w1.Run(ctx)
	}()

	if st := waitState(t, ts.URL, "alice", "confkill"); st.State != server.StateDone {
		t.Fatalf("state = %s (err %q)", st.State, st.Error)
	}
	wg.Wait()
	if err := <-werr; err != nil {
		t.Fatalf("surviving worker: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, tenantStore(t, dir, "alice"), "confkill", wantRecs, wantReport)
}

// TestShardConformanceCoordinatorRestart kills the daemon mid-sharded-
// campaign with no teardown at all, then boots a fresh one on the same
// data directory: recovery must resume the merge from the durable rows
// (not redo it) and the final result must still match the solo run.
func TestShardConformanceCoordinatorRestart(t *testing.T) {
	// Large enough that the workers are still executing when the first
	// merged progress becomes visible — the kill below must land while
	// work remains, or recovery has nothing to prove.
	const n = 2400
	camp := conformanceCampaign("confboot", n)
	solo := soloRun(t, camp)
	wantRecs := recordBytes(t, solo, "confboot")
	wantReport := reportText(t, solo, "confboot")

	// Killing mid-merge is a race the test can lose: with the thor fast
	// path the whole campaign can execute and merge between two status
	// polls, leaving the restarted coordinator nothing to recover. Each
	// attempt uses a fresh data directory; an attempt only counts when
	// the kill landed while work remained, and the first such attempt
	// carries all the assertions.
	const attempts = 5
	for attempt := 0; attempt < attempts; attempt++ {
		dir := t.TempDir()
		cfg := server.Config{DataDir: dir, Boards: 4, MaxConcurrent: 1}
		s1, err := server.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts1 := httptest.NewServer(s1.Handler())
		resp, body := postJSON(t, ts1.URL+"/api/v1/campaigns", server.SubmitRequest{
			Tenant: "alice", Campaign: camp, Shards: 2, Checkpoint: 4,
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit = %d: %s", resp.StatusCode, body)
		}
		// Pull the plug at the first sign of merged progress.
		url := ts1.URL + "/api/v1/campaigns/alice/confboot"
		deadline := time.Now().Add(60 * time.Second)
		finished := false
		for {
			hr, err := http.Get(url)
			if err != nil {
				t.Fatal(err)
			}
			var st server.JobStatus
			err = json.NewDecoder(hr.Body).Decode(&st)
			hr.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if st.Progress != nil && st.Progress.Done >= 1 {
				break
			}
			if st.State == server.StateDone {
				finished = true
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("campaign made no visible progress (state %s)", st.State)
			}
			time.Sleep(time.Millisecond)
		}
		s1.Kill()
		ts1.Close()
		if finished {
			continue // done before we could kill: recovery not exercised
		}

		s2, err := server.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts2 := httptest.NewServer(s2.Handler())
		if st := waitState(t, ts2.URL, "alice", "confboot"); st.State != server.StateDone {
			t.Fatalf("recovered state = %s (err %q)", st.State, st.Error)
		}
		var st server.JobStatus
		hr, err := http.Get(ts2.URL + "/api/v1/campaigns/alice/confboot")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(hr.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		hr.Body.Close()
		if st.Summary == nil || st.Summary.Experiments >= n {
			// The merge outran the kill after all (everything was durable
			// before the plug was pulled, so recovery had nothing to do);
			// this attempt proves nothing.
			shutdownServer(t, s2)
			ts2.Close()
			continue
		}
		// Reaching here means the restarted coordinator resumed rather
		// than restarted: its summary counts only the post-boot merge,
		// strictly below the campaign total.
		shutdownServer(t, s2)
		ts2.Close()
		assertIdentical(t, tenantStore(t, dir, "alice"), "confboot", wantRecs, wantReport)
		return
	}
	t.Fatalf("no attempt out of %d exercised recovery: the campaign fully merged before every kill", attempts)
}

// shutdownServer drains a server with a bounded grace period.
func shutdownServer(t *testing.T, s *server.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}
