package shard

// The worker: leases ranges from its coordinator, executes each with a
// core.Runner against its own WAL-backed shard database, and reports the
// logged records back in batches. The shard database makes a worker's
// progress durable locally — a worker that crashed mid-range resumes
// from its own durable cursor and reports the records it already has
// instead of re-running them — and the carried forward set keeps
// checkpoint fast-forwarding effective after the first range, where the
// reference run is skipped.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"goofi/internal/campaign"
	"goofi/internal/core"
	"goofi/internal/sqldb"

	// Registered target systems: workers construct targets through the
	// core registry, so each package's RegisterTarget init must run.
	_ "goofi/internal/pinlevel"
	_ "goofi/internal/proctarget"
	_ "goofi/internal/scifi"
	_ "goofi/internal/swifi"
)

// reportBatch is how many records a report carries at most; experiment
// groups (end record plus its trace rows) are never split across
// batches, so the coordinator can accept trace rows with their parent.
const reportBatch = 64

// WorkerConfig wires one shard worker.
type WorkerConfig struct {
	// Name identifies the worker in the lease protocol.
	Name string
	// Dir is the worker's shard-database directory.
	Dir string
	// Boards sizes the worker's own board pool (default 1).
	Boards int
	// Transport reaches the coordinator.
	Transport Transport
	// Poll is the wait-state backoff (default 200ms).
	Poll time.Duration
	// OnRecord, when set, observes every record the worker's runs log
	// (test hook: conformance kills a worker mid-range from it).
	OnRecord func(rec *campaign.ExperimentRecord)
}

// Worker executes leased ranges until its coordinator says done.
type Worker struct {
	cfg     WorkerConfig
	carried *core.ForwardSet
	// delivSeq numbers report deliveries so every batch gets a unique
	// idempotency key; retries of the same batch reuse the same key.
	delivSeq atomic.Int64
}

// delivery mints the idempotency key for one report batch of a lease.
func (w *Worker) delivery(leaseID string) string {
	return fmt.Sprintf("%s/%s/%d", w.cfg.Name, leaseID, w.delivSeq.Add(1))
}

// NewWorker validates the config and builds a worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Name == "" || cfg.Dir == "" || cfg.Transport == nil {
		return nil, fmt.Errorf("shard: worker needs a name, directory and transport")
	}
	if cfg.Boards <= 0 {
		cfg.Boards = 1
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 200 * time.Millisecond
	}
	return &Worker{cfg: cfg}, nil
}

// targetFactory resolves the lease's target through the core registry
// so a worker builds the same target systems the solo run would. An
// empty TargetKind falls back to the technique name — the historical
// lease contract, which keeps mixed-version fleets working.
func targetFactory(lease *LeaseResponse) (func() core.TargetSystem, error) {
	kind := lease.TargetKind
	if kind == "" {
		kind = lease.Technique
	}
	if kind == "" {
		kind = "scifi"
	}
	info, ok := core.LookupTarget(kind)
	if !ok {
		return nil, fmt.Errorf("shard: unknown target kind %q", kind)
	}
	params := make(map[string]string, len(lease.TargetParams)+1)
	for k, v := range lease.TargetParams {
		params[k] = v
	}
	if _, ok := params["image-bytes"]; !ok && lease.ImageBytes > 0 {
		params["image-bytes"] = strconv.Itoa(lease.ImageBytes)
	}
	cfg := core.TargetConfig{Params: params}
	if _, err := info.New(cfg); err != nil {
		return nil, fmt.Errorf("shard: target %q: %w", info.Kind, err)
	}
	return func() core.TargetSystem {
		ts, err := info.New(cfg)
		if err != nil {
			panic(fmt.Sprintf("target %q factory: %v", info.Kind, err))
		}
		return ts
	}, nil
}

// hookSink forwards to the worker's batching sink and mirrors every
// record to the range's streaming reporter and the OnRecord test hook.
type hookSink struct {
	*campaign.BatchingSink
	rep  *reporter
	hook func(*campaign.ExperimentRecord)
}

func (h *hookSink) LogExperiment(rec *campaign.ExperimentRecord) error {
	err := h.BatchingSink.LogExperiment(rec)
	if err != nil {
		return err
	}
	h.rep.observe(rec)
	if h.hook != nil {
		h.hook(rec)
	}
	return err
}

// reporter accumulates a range run's records and streams them to the
// coordinator in complete experiment groups — an end record together
// with the detail-trace rows logged before it — so the merge advances
// while the range is still running and a dead shard loses at most the
// in-flight tail. Streamed record names are remembered so the final
// store scan does not resend them.
type reporter struct {
	mu sync.Mutex
	// trace buffers detail rows until their parent's end record lands.
	trace map[string][]*campaign.ExperimentRecord
	// ready holds complete groups awaiting a report, in arrival order.
	// Group boundaries survive so take never splits one across reports.
	ready [][]*campaign.ExperimentRecord
	n     int // records across ready
	// acked maps end-record names the coordinator has accepted a
	// report for (its trace rows travelled in the same batch).
	acked map[string]bool
	// kick wakes the pump early once a full batch is ready.
	kick chan struct{}
}

func newReporter() *reporter {
	return &reporter{
		trace: make(map[string][]*campaign.ExperimentRecord),
		acked: make(map[string]bool),
		kick:  make(chan struct{}, 1),
	}
}

func (p *reporter) observe(rec *campaign.ExperimentRecord) {
	p.mu.Lock()
	if rec.Step >= 0 {
		p.trace[rec.Parent] = append(p.trace[rec.Parent], rec)
		p.mu.Unlock()
		return
	}
	group := append(p.trace[rec.Name], rec)
	delete(p.trace, rec.Name)
	p.ready = append(p.ready, group)
	p.n += len(group)
	full := p.n >= reportBatch
	p.mu.Unlock()
	if full {
		select {
		case p.kick <- struct{}{}:
		default:
		}
	}
}

// take pops complete groups, flattened, up to roughly max records (at
// least one whole group, so a group larger than max still moves).
func (p *reporter) take(max int) []*campaign.ExperimentRecord {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []*campaign.ExperimentRecord
	for len(p.ready) > 0 && (len(out) == 0 || len(out)+len(p.ready[0]) <= max) {
		out = append(out, p.ready[0]...)
		p.n -= len(p.ready[0])
		p.ready = p.ready[1:]
	}
	return out
}

func (p *reporter) markAcked(recs []*campaign.ExperimentRecord) {
	p.mu.Lock()
	for _, rec := range recs {
		if rec.Step < 0 {
			p.acked[rec.Name] = true
		}
	}
	p.mu.Unlock()
}

func (p *reporter) isAcked(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.acked[name]
}

// Run leases and executes ranges until the coordinator reports the
// campaign done, the context ends, or a local failure is fatal. A lost
// lease (heartbeat lapse, coordinator restart) abandons the range and
// leases anew — the coordinator requeues what was not merged.
func (w *Worker) Run(ctx context.Context) error {
	tenants, err := campaign.NewTenantDBs(w.cfg.Dir, sqldb.SyncNever)
	if err != nil {
		return err
	}
	defer tenants.Close()
	// Register with the fleet. Registration is advisory (the coordinator
	// learns of us at lease time regardless) so transient failures are
	// ignored — but a 401 is terminal: the token is wrong and every
	// later call would bounce the same way.
	host, _ := os.Hostname()
	if _, err := w.cfg.Transport.Hello(ctx, HelloRequest{Worker: w.cfg.Name, Host: host}); err == ErrUnauthorized {
		return err
	}
	backoff := w.cfg.Poll
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		resp, err := w.cfg.Transport.Lease(ctx, LeaseRequest{Worker: w.cfg.Name})
		if err == ErrUnauthorized {
			return err
		}
		if err != nil {
			// The coordinator may be restarting; keep knocking.
			if !sleep(ctx, backoff) {
				return ctx.Err()
			}
			if backoff < 2*time.Second {
				backoff *= 2
			}
			continue
		}
		backoff = w.cfg.Poll
		switch resp.Status {
		case LeaseDone:
			return nil
		case LeaseWait:
			if !sleep(ctx, w.cfg.Poll) {
				return ctx.Err()
			}
		case LeaseRange:
			err := w.runRange(ctx, tenants, resp)
			switch {
			case err == nil:
			case err == ErrBadLease:
				// Abandoned: the coordinator already requeued the rest.
			case ctx.Err() != nil:
				return ctx.Err()
			default:
				return err
			}
		default:
			return fmt.Errorf("shard: unknown lease status %q", resp.Status)
		}
	}
}

func sleep(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// runRange executes one leased range and reports its records.
func (w *Worker) runRange(ctx context.Context, tenants *campaign.TenantDBs, lease *LeaseResponse) error {
	camp := lease.Campaign
	if camp == nil || lease.Target == nil {
		return fmt.Errorf("shard: lease %s carries no campaign definition", lease.LeaseID)
	}

	// Two pumps for the lease's lifetime, started before any setup work —
	// the lease clock began ticking at the grant, and recovering a large
	// shard database or building a board pool can outlast a TTL. The
	// heartbeat pump is pure liveness: it must never block on the merge,
	// or backpressure would expire the very lease whose work it is
	// stalling. The streaming pump reports complete experiment groups as
	// they accumulate — it may stall in the coordinator's ingest queue
	// for as long as the merge needs, the heartbeats keep the lease alive
	// meanwhile. A rejected beat or report means the lease is gone: stop
	// the run and abandon the range.
	rep := newReporter()
	rctx, rcancel := context.WithCancel(ctx)
	var pumps sync.WaitGroup
	lost := make(chan struct{})
	var lostOnce sync.Once
	loseLease := func() {
		lostOnce.Do(func() {
			close(lost)
			rcancel()
		})
	}
	stopPumps := func() {
		rcancel()
		pumps.Wait()
	}
	defer stopPumps()
	pumps.Add(2)
	go func() {
		defer pumps.Done()
		t := time.NewTicker(heartbeatEvery(lease))
		defer t.Stop()
		for {
			select {
			case <-rctx.Done():
				return
			case <-t.C:
			}
			err := w.cfg.Transport.Heartbeat(ctx, HeartbeatRequest{
				Worker: w.cfg.Name, LeaseID: lease.LeaseID,
			})
			if err == ErrBadLease || err == ErrUnauthorized {
				loseLease()
				return
			}
			// Transient transport errors ride: the coordinator will
			// expire us if they persist, and the next beat retries.
		}
	}()
	go func() {
		defer pumps.Done()
		t := time.NewTicker(heartbeatEvery(lease))
		defer t.Stop()
		for {
			select {
			case <-rctx.Done():
				return
			case <-rep.kick:
			case <-t.C:
			}
			for {
				recs := rep.take(4 * reportBatch)
				if len(recs) == 0 {
					break
				}
				_, err := w.cfg.Transport.Report(ctx, ReportRequest{
					Worker: w.cfg.Name, LeaseID: lease.LeaseID, Records: recs,
					Delivery: w.delivery(lease.LeaseID),
				})
				if err == ErrBadLease || err == ErrUnauthorized {
					loseLease()
					return
				}
				if err != nil {
					// Transient: the unacked records re-report in the
					// final store scan.
					break
				}
				rep.markAcked(recs)
			}
		}
	}()

	st, _, release, err := tenants.Acquire("shard")
	if err != nil {
		return err
	}
	defer release()
	// A stale shard database from an earlier run of a different campaign
	// definition under the same name would resume the wrong plan: wipe it.
	if prev, err := st.GetCampaign(camp.Name); err == nil && !sameDefinition(prev, camp) {
		if err := st.DeleteCheckpoint(camp.Name); err != nil {
			return err
		}
		if err := st.DeleteExperiments(camp.Name); err != nil {
			return err
		}
	}
	if err := st.PutTargetSystem(lease.Target); err != nil {
		return err
	}
	if err := st.PutCampaign(camp); err != nil {
		return err
	}
	cp, err := st.RecoverCursor(camp.Name)
	if err != nil {
		return err
	}
	alg, ok := core.Algorithms()[lease.Technique]
	if !ok {
		return fmt.Errorf("shard: unknown technique %q", lease.Technique)
	}
	factory, err := targetFactory(lease)
	if err != nil {
		return err
	}
	sink := campaign.NewBatchingSink(st, 0)
	opts := []core.RunnerOption{
		core.WithSink(&hookSink{BatchingSink: sink, rep: rep, hook: w.cfg.OnRecord}),
		core.WithBoards(w.cfg.Boards, factory),
		core.WithShardRange(lease.Range.Lo, lease.Range.Hi),
		core.WithForwardSet(w.carried),
	}
	if lease.Checkpoint >= 0 {
		iv := lease.Checkpoint
		if iv == 0 {
			iv = core.DefaultCheckpointInterval
		}
		opts = append(opts, core.WithCheckpoints(iv))
	}
	if cp.Reference || len(cp.Completed) > 0 {
		opts = append(opts, core.WithResume(cp))
	}
	r, err := core.NewRunner(factory(), alg, camp, lease.Target, opts...)
	if err != nil {
		sink.Close()
		return err
	}
	_, runErr := r.Run(rctx)
	stopPumps()
	w.carried = r.ForwardSet()
	// Make the range durable locally whatever happens next; a worker
	// killed after this point resumes without re-running anything.
	if err := sink.Close(); err != nil {
		return err
	}
	select {
	case <-lost:
		return ErrBadLease
	default:
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	if runErr != nil {
		return runErr
	}
	return w.report(ctx, st, lease, rep)
}

func heartbeatEvery(lease *LeaseResponse) time.Duration {
	if lease.HeartbeatEvery > 0 {
		return lease.HeartbeatEvery
	}
	return DefaultHeartbeat
}

// report closes out the range: the streamed-but-unacked tail plus every
// in-range record the shard database holds from earlier interrupted
// attempts (which the runner skipped rather than re-ran), in batches,
// the last one marked final.
func (w *Worker) report(ctx context.Context, st *campaign.Store, lease *LeaseResponse, rep *reporter) error {
	name := lease.Campaign.Name
	recs, err := st.Experiments(name)
	if err != nil {
		return err
	}
	// Anything still queued in the reporter is durable in the store by
	// now (the sink closed before this call), so the scan below is the
	// single source: every in-range group not already streamed.
	for len(rep.take(1<<30)) > 0 {
	}
	// groups keeps each experiment's records contiguous.
	var groups [][]*campaign.ExperimentRecord
	for _, rec := range recs {
		inRange := !rec.IsReference() &&
			rec.Data.Seq >= lease.Range.Lo && rec.Data.Seq < lease.Range.Hi
		if !rec.IsReference() && !inRange {
			continue
		}
		if rep.isAcked(rec.Name) {
			continue // already streamed mid-range
		}
		group := []*campaign.ExperimentRecord{rec}
		trace, err := st.Trace(rec.Name)
		if err != nil {
			return err
		}
		group = append(group, trace...)
		if rec.IsReference() {
			// Reference first: the coordinator needs it before analysis.
			groups = append([][]*campaign.ExperimentRecord{group}, groups...)
		} else {
			groups = append(groups, group)
		}
	}
	var batch []*campaign.ExperimentRecord
	send := func(final bool) error {
		// One idempotency key per batch, minted before the retry loop:
		// every retry of this batch replays the same key, so a delivery
		// whose first acknowledgement was lost is re-acked, not re-merged.
		req := ReportRequest{
			Worker: w.cfg.Name, LeaseID: lease.LeaseID,
			Records: batch, Final: final,
			Delivery: w.delivery(lease.LeaseID),
		}
		backoff := w.cfg.Poll
		for {
			_, err := w.cfg.Transport.Report(ctx, req)
			if err == nil {
				batch = batch[:0]
				return nil
			}
			if err == ErrUnauthorized {
				return err
			}
			if err == ErrBadLease || ctx.Err() != nil {
				return ErrBadLease
			}
			// The coordinator may be mid-restart: retry until the lease
			// verdict is in.
			if !sleep(ctx, backoff) {
				return ErrBadLease
			}
			if backoff < 2*time.Second {
				backoff *= 2
			}
		}
	}
	for _, group := range groups {
		if len(batch) > 0 && len(batch)+len(group) > reportBatch {
			if err := send(false); err != nil {
				return err
			}
		}
		batch = append(batch, group...)
	}
	return send(true)
}

// sameDefinition compares two campaign definitions structurally.
func sameDefinition(a, b *campaign.Campaign) bool {
	ja, err1 := json.Marshal(a)
	jb, err2 := json.Marshal(b)
	return err1 == nil && err2 == nil && string(ja) == string(jb)
}
