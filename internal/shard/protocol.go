package shard

// The coordinator/worker wire protocol. Everything is JSON over the
// daemon's HTTP surface (POST /api/v1/shards/{tenant}/{name}/...), and
// the same request/response structs drive the in-process Direct
// transport, so a worker cannot tell one from the other.

import (
	"errors"
	"time"

	"goofi/internal/campaign"
)

// Lease outcomes.
const (
	// LeaseRange hands the worker a range to execute.
	LeaseRange = "range"
	// LeaseWait means no range is free right now (all leased out), but
	// the campaign is not finished — poll again.
	LeaseWait = "wait"
	// LeaseDone means no work remains for this worker: the campaign is
	// complete, or the worker has been quarantined.
	LeaseDone = "done"
)

// ErrBadLease rejects a heartbeat or report whose lease the coordinator
// no longer recognises — it expired and was requeued, or predates a
// coordinator restart. The worker abandons the range and leases anew;
// requeue plus ingest dedup keep the plan covered exactly once.
var ErrBadLease = errors.New("shard: unknown or expired lease")

// HelloRequest registers a worker with the coordinator before it leases
// any work. Registration is advisory — a worker the coordinator has
// never heard of can still lease — but it makes the fleet visible in
// /progress from the moment a worker connects, and it is the cheapest
// call on which to discover a bad token.
type HelloRequest struct {
	Worker string `json:"worker"`
	// Host is the worker's self-reported host, for fleet display.
	Host string `json:"host,omitempty"`
}

// HelloResponse acknowledges a registration.
type HelloResponse struct {
	Status string `json:"status"`
	// Workers is how many workers the coordinator currently knows.
	Workers int `json:"workers"`
}

// LeaseRequest asks for a range on behalf of a named worker.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse carries a granted range together with everything the
// worker needs to execute it from a cold start: the campaign and target
// definitions for its shard database, the technique, and the cadence
// contract (heartbeat period, durable-cursor interval).
type LeaseResponse struct {
	Status  string `json:"status"`
	LeaseID string `json:"leaseId,omitempty"`
	Range   Range  `json:"range"`

	Campaign  *campaign.Campaign         `json:"campaign,omitempty"`
	Target    *campaign.TargetSystemData `json:"target,omitempty"`
	Technique string                     `json:"technique,omitempty"`
	// TargetKind names the registered target system workers construct
	// (empty: derived from Technique, the historical contract).
	TargetKind string `json:"targetKind,omitempty"`
	// TargetParams carries target-specific key=value configuration.
	TargetParams map[string]string `json:"targetParams,omitempty"`
	// ImageBytes sizes swifi workload images (the submit-time knob).
	ImageBytes int `json:"imageBytes,omitempty"`
	// Checkpoint is the worker-side durable-cursor interval in
	// experiments (0 keeps the worker's default, -1 disables).
	Checkpoint int `json:"checkpoint,omitempty"`
	// HeartbeatEvery is how often the worker must prove liveness while
	// it holds the lease.
	HeartbeatEvery time.Duration `json:"heartbeatEvery,omitempty"`
}

// HeartbeatRequest extends a lease.
type HeartbeatRequest struct {
	Worker  string `json:"worker"`
	LeaseID string `json:"leaseId"`
}

// ReportRequest delivers a batch of logged records for a lease. Final
// marks the last batch of the range; the coordinator flushes its ingest
// queue and retires the lease on it.
type ReportRequest struct {
	Worker  string                       `json:"worker"`
	LeaseID string                       `json:"leaseId"`
	Records []*campaign.ExperimentRecord `json:"records"`
	Final   bool                         `json:"final"`
	// Delivery is the batch's idempotency key. The coordinator's merge
	// was always idempotent (the two-pass filter drops already-accepted
	// sequences); the key makes the *acknowledgement* idempotent too: a
	// retried delivery whose first copy already landed — a response lost
	// to a timeout, reset, or asymmetric partition — is answered from
	// the coordinator's delivery cache instead of re-processed, so the
	// worker stops re-sending. Empty keys skip the cache.
	Delivery string `json:"delivery,omitempty"`
}

// ReportResponse acknowledges a batch. Accepted counts the records
// actually ingested; duplicates of already-merged sequences (requeue
// races, repeated references) are dropped silently.
type ReportResponse struct {
	Accepted int `json:"accepted"`
}
