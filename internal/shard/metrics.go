package shard

import "goofi/internal/telemetry"

// Transport-layer counters. Children are resolved once at init so the
// retry hot path never touches the family's mutex.
var mRetries = telemetry.NewCounterVec("goofi_shard_transport_retries_total",
	"Shard transport calls retried, by error class.", "class")

var (
	mRetriesTimeout = mRetries.With(ClassTimeout)
	mRetriesConn    = mRetries.With(ClassConn)
	mRetriesStatus  = mRetries.With(ClassStatus)
	mRetriesDecode  = mRetries.With(ClassDecode)
)

// retryCounter resolves the pre-built child for a classified error.
func retryCounter(class string) *telemetry.Counter {
	switch class {
	case ClassTimeout:
		return mRetriesTimeout
	case ClassConn:
		return mRetriesConn
	case ClassDecode:
		return mRetriesDecode
	default:
		return mRetriesStatus
	}
}

var mTimeouts = telemetry.NewCounter("goofi_shard_transport_timeouts_total",
	"Shard transport calls that hit their per-call deadline.")

var mDelivDeduped = telemetry.NewCounter("goofi_shard_report_deliveries_deduped_total",
	"Retried report deliveries acknowledged from the coordinator's idempotency cache instead of re-merged.")
