package shard

// The exactly-once property pin: no matter how ranges are partitioned,
// leased, abandoned, re-leased and reported — including duplicate and
// partial reports — every experiment sequence is merged into the store
// exactly once. The store itself is the witness: LoggedSystemState keys
// rows by experiment name, so a double merge is a constraint violation
// that poisons the coordinator's ingest path and fails the test.

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"goofi/internal/campaign"
	"goofi/internal/faultmodel"
	"goofi/internal/scifi"
	"goofi/internal/sqldb"
	"goofi/internal/trigger"
	"goofi/internal/workload"
)

func TestPartitionCoversPlanExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	check := func(n, shards int) {
		t.Helper()
		ranges := Partition(n, shards)
		if n == 0 {
			if len(ranges) != 0 {
				t.Fatalf("Partition(0, %d) = %v, want empty", shards, ranges)
			}
			return
		}
		if len(ranges) > shards {
			t.Fatalf("Partition(%d, %d) has %d ranges", n, shards, len(ranges))
		}
		next, min, max := 0, n, 0
		for _, r := range ranges {
			if r.Lo != next || r.Hi <= r.Lo {
				t.Fatalf("Partition(%d, %d) = %v: bad range %v", n, shards, ranges, r)
			}
			next = r.Hi
			if r.Len() < min {
				min = r.Len()
			}
			if r.Len() > max {
				max = r.Len()
			}
		}
		if next != n {
			t.Fatalf("Partition(%d, %d) = %v covers [0,%d), want [0,%d)", n, shards, ranges, next, n)
		}
		if max-min > 1 {
			t.Fatalf("Partition(%d, %d) = %v: range sizes spread %d..%d", n, shards, ranges, min, max)
		}
	}
	for _, c := range []struct{ n, shards int }{
		{0, 1}, {1, 1}, {1, 8}, {7, 3}, {8, 3}, {9, 3}, {100, 7},
	} {
		check(c.n, c.shards)
	}
	for i := 0; i < 500; i++ {
		check(rng.Intn(400), 1+rng.Intn(16))
	}
}

func TestCoalesceMaximalRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		want := map[int]bool{}
		var seqs []int
		for j := 0; j < rng.Intn(60); j++ {
			s := rng.Intn(50)
			want[s] = true
			seqs = append(seqs, s)
			if rng.Intn(3) == 0 {
				seqs = append(seqs, s) // duplicates must not split runs
			}
		}
		rng.Shuffle(len(seqs), func(a, b int) { seqs[a], seqs[b] = seqs[b], seqs[a] })
		runs := coalesce(seqs)
		got := map[int]bool{}
		prev := -1 << 30
		for _, r := range runs {
			if r.Lo >= r.Hi {
				t.Fatalf("coalesce(%v) = %v: empty run", seqs, runs)
			}
			if r.Lo <= prev+1 {
				// Touching or out-of-order runs should have been merged.
				t.Fatalf("coalesce(%v) = %v: runs not maximal or not sorted", seqs, runs)
			}
			prev = r.Hi - 1
			for s := r.Lo; s < r.Hi; s++ {
				got[s] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("coalesce(%v) covers %d seqs, want %d", seqs, len(got), len(want))
		}
		for s := range want {
			if !got[s] {
				t.Fatalf("coalesce(%v) = %v misses %d", seqs, runs, s)
			}
		}
	}
}

// simClock is a manually advanced coordinator clock, safe against the
// background sweeper reading it concurrently.
type simClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *simClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *simClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// simRecord fabricates the end record of sequence seq (or the reference
// for seq < 0) with just enough shape for the merge path.
func simRecord(name string, seq int) *campaign.ExperimentRecord {
	rec := &campaign.ExperimentRecord{
		Campaign: name,
		Step:     -1,
		Data:     campaign.ExperimentData{Seq: seq},
	}
	if seq < 0 {
		rec.Name = campaign.ReferenceName(name)
	} else {
		rec.Name = campaign.ExperimentName(name, seq)
	}
	return rec
}

// TestShardExactlyOnceUnderChurn drives a coordinator through seeded
// random interleavings of lease / partial report / duplicate report /
// worker death / clock-jump expiry, and asserts the plan completes with
// every sequence stored exactly once.
func TestShardExactlyOnceUnderChurn(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			n := 20 + rng.Intn(120)
			shards := 1 + rng.Intn(6)
			name := "churn"
			db, err := sqldb.OpenAt(filepath.Join(t.TempDir(), "churn.db"), sqldb.SyncNever)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			st, err := campaign.NewStore(db)
			if err != nil {
				t.Fatal(err)
			}
			tsd := scifi.TargetSystemData("thor-board")
			if err := st.PutTargetSystem(tsd); err != nil {
				t.Fatal(err)
			}
			camp := &campaign.Campaign{
				Name:           name,
				TargetName:     "thor-board",
				ChainName:      "internal",
				Locations:      []string{"cpu"},
				FaultModel:     faultmodel.Spec{Kind: faultmodel.Transient, Multiplicity: 1},
				Trigger:        trigger.Spec{Kind: "cycle", Occurrence: 1},
				RandomWindow:   [2]uint64{10, 100},
				NumExperiments: n,
				Seed:           1,
				Termination:    campaign.Termination{TimeoutCycles: 1000},
				Workload:       workload.All()["sort16"],
				LogMode:        campaign.LogNormal,
			}
			if err := st.PutCampaign(camp); err != nil {
				t.Fatal(err)
			}
			clock := &simClock{now: time.Unix(1000, 0)}
			ttl := time.Second
			coord, err := NewCoordinator(CoordinatorConfig{
				Store: st, Campaign: camp, Target: tsd,
				Shards:         shards,
				HeartbeatEvery: ttl / 3,
				LeaseTTL:       ttl,
				// High enough that churn never quarantines the whole
				// simulated fleet.
				MaxWorkerFailures: 1 << 20,
				NowFunc:           clock.Now,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer coord.Close()

			type liveLease struct {
				resp   *LeaseResponse
				cursor int // next unreported seq
			}
			workers := make([]string, 3+rng.Intn(4))
			for i := range workers {
				workers[i] = fmt.Sprintf("sim-w%d", i)
			}
			held := map[string]*liveLease{}
			sentRef := false
			done := func() bool {
				select {
				case <-coord.Done():
					return true
				default:
					return false
				}
			}
			for iter := 0; iter < 200_000 && !done(); iter++ {
				w := workers[rng.Intn(len(workers))]
				l := held[w]
				if l == nil {
					resp := coord.Lease(LeaseRequest{Worker: w})
					if resp.Status == LeaseRange {
						held[w] = &liveLease{resp: &resp, cursor: resp.Range.Lo}
					} else if resp.Status == LeaseWait {
						// Waiting on ranges held by dead workers: real time
						// would tick the sweeper and reap them.
						clock.Advance(ttl/2 + time.Millisecond)
						coord.Sweep()
					}
					continue
				}
				switch rng.Intn(10) {
				case 0: // die silently; the clock jump below reaps the lease
					delete(held, w)
				case 1: // jump past the TTL and sweep: every held lease expires
					clock.Advance(ttl + time.Millisecond)
					coord.Sweep()
					for k := range held {
						delete(held, k)
					}
				case 2, 3: // final report, possibly with an unfinished tail
					var recs []*campaign.ExperimentRecord
					if !sentRef {
						recs = append(recs, simRecord(name, -1))
						sentRef = true
					}
					hi := l.cursor
					if rng.Intn(3) > 0 {
						hi = l.resp.Range.Hi
					}
					for s := l.cursor; s < hi; s++ {
						recs = append(recs, simRecord(name, s))
					}
					req := ReportRequest{
						Worker: w, LeaseID: l.resp.LeaseID, Records: recs, Final: true,
						Delivery: fmt.Sprintf("%s/%s/%d", w, l.resp.LeaseID, iter),
					}
					ack, err := coord.Report(req)
					if err != nil && err != ErrBadLease {
						t.Fatal(err)
					}
					// A network-level retry of a final report that already
					// landed arrives after the lease was retired. The delivery
					// cache must re-ack it identically — not bounce it with
					// ErrBadLease, not merge it twice.
					if err == nil && rng.Intn(2) == 0 {
						ack2, err2 := coord.Report(req)
						if err2 != nil {
							t.Fatalf("retried final delivery %q: %v", req.Delivery, err2)
						}
						if ack2 != ack {
							t.Fatalf("retried final delivery %q acked %+v, first ack %+v",
								req.Delivery, ack2, ack)
						}
					}
					delete(held, w)
				default: // stream a chunk, sometimes re-sending older seqs
					lo := l.cursor
					if lo > l.resp.Range.Lo && rng.Intn(4) == 0 {
						lo = l.resp.Range.Lo + rng.Intn(lo-l.resp.Range.Lo) // duplicates
					}
					hi := l.cursor + 1 + rng.Intn(4)
					if hi > l.resp.Range.Hi {
						hi = l.resp.Range.Hi
					}
					var recs []*campaign.ExperimentRecord
					if !sentRef || rng.Intn(8) == 0 {
						recs = append(recs, simRecord(name, -1))
						sentRef = true
					}
					for s := lo; s < hi; s++ {
						recs = append(recs, simRecord(name, s))
					}
					req := ReportRequest{
						Worker: w, LeaseID: l.resp.LeaseID, Records: recs,
						Delivery: fmt.Sprintf("%s/%s/%d", w, l.resp.LeaseID, iter),
					}
					ack, err := coord.Report(req)
					switch {
					case err == ErrBadLease:
						delete(held, w)
					case err != nil:
						t.Fatal(err)
					default:
						// Duplicated delivery: the same request lands again
						// (lost ack, duplicating network) and must be re-acked
						// from the cache with the identical response.
						if rng.Intn(3) == 0 {
							ack2, err2 := coord.Report(req)
							if err2 != nil {
								t.Fatalf("retried delivery %q: %v", req.Delivery, err2)
							}
							if ack2 != ack {
								t.Fatalf("retried delivery %q acked %+v, first ack %+v",
									req.Delivery, ack2, ack)
							}
						}
						if hi > l.cursor {
							l.cursor = hi
						}
					}
				}
			}
			if !done() {
				merged, total := coord.Progress()
				t.Fatalf("simulation did not complete: %d/%d merged, complete=%v",
					merged, total, coord.Complete())
			}
			if err := coord.Close(); err != nil {
				t.Fatalf("close (first merge error): %v", err)
			}
			recs, err := st.Experiments(name)
			if err != nil {
				t.Fatal(err)
			}
			seen := map[int]int{}
			for _, rec := range recs {
				seen[rec.Data.Seq]++
			}
			if len(recs) != n+1 {
				t.Fatalf("store has %d end records, want %d (+reference)", len(recs), n+1)
			}
			for s := -1; s < n; s++ {
				if seen[s] != 1 {
					t.Fatalf("sequence %d stored %d times, want exactly once", s, seen[s])
				}
			}
		})
	}
}
