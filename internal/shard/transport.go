package shard

// Worker-side views of the coordinator: Direct for in-process shards
// (the daemon's own worker pool) and HTTP for external `goofi
// shard-worker` processes. Both carry the same request/response structs,
// so the conformance suite can prove byte identity once and cover both.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Transport is how a worker reaches its coordinator.
type Transport interface {
	Lease(ctx context.Context, req LeaseRequest) (*LeaseResponse, error)
	Heartbeat(ctx context.Context, req HeartbeatRequest) error
	Report(ctx context.Context, req ReportRequest) (*ReportResponse, error)
}

// Direct is the in-process transport: method calls on the coordinator.
type Direct struct {
	C *Coordinator
}

func (d Direct) Lease(_ context.Context, req LeaseRequest) (*LeaseResponse, error) {
	resp := d.C.Lease(req)
	return &resp, nil
}

func (d Direct) Heartbeat(_ context.Context, req HeartbeatRequest) error {
	return d.C.Heartbeat(req)
}

func (d Direct) Report(_ context.Context, req ReportRequest) (*ReportResponse, error) {
	resp, err := d.C.Report(req)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// HTTPTransport speaks the daemon's shard endpoints.
type HTTPTransport struct {
	// Base is the daemon address, e.g. "http://127.0.0.1:7070".
	Base string
	// Tenant and Campaign select the sharded job.
	Tenant, Campaign string
	// Client defaults to http.DefaultClient.
	Client *http.Client
}

func (t *HTTPTransport) post(ctx context.Context, action string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	url := fmt.Sprintf("%s/api/v1/shards/%s/%s/%s", t.Base, t.Tenant, t.Campaign, action)
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hr.Header.Set("Content-Type", "application/json")
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	res, err := client.Do(hr)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode == http.StatusConflict || res.StatusCode == http.StatusNotFound {
		// The daemon maps ErrBadLease (and a job it no longer tracks)
		// onto these: the worker must abandon, not retry.
		io.Copy(io.Discard, res.Body)
		return ErrBadLease
	}
	if res.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(res.Body).Decode(&e)
		if e.Error == "" {
			e.Error = res.Status
		}
		return fmt.Errorf("shard: %s: %s", action, e.Error)
	}
	if resp == nil {
		io.Copy(io.Discard, res.Body)
		return nil
	}
	return json.NewDecoder(res.Body).Decode(resp)
}

func (t *HTTPTransport) Lease(ctx context.Context, req LeaseRequest) (*LeaseResponse, error) {
	var resp LeaseResponse
	if err := t.post(ctx, "lease", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (t *HTTPTransport) Heartbeat(ctx context.Context, req HeartbeatRequest) error {
	var resp struct{}
	return t.post(ctx, "heartbeat", req, &resp)
}

func (t *HTTPTransport) Report(ctx context.Context, req ReportRequest) (*ReportResponse, error) {
	var resp ReportResponse
	if err := t.post(ctx, "report", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
