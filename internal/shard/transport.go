package shard

// Worker-side views of the coordinator: Direct for in-process shards
// (the daemon's own worker pool) and HTTP for external `goofi
// shard-worker` processes. Both carry the same request/response structs,
// so the conformance suite can prove byte identity once and cover both.
//
// The HTTP transport is built for real networks, not loopback: every
// call gets its own deadline, failures are classified (errors.go) into
// retryable transport faults vs terminal protocol rejections, retryable
// faults are retried with capped exponential backoff and seeded jitter
// (the internal/core/robust.go policy shape lifted to the network
// layer), and response bodies are capped, drained and closed so retried
// requests reuse connections. Report retries reuse the request's
// idempotency key, so a delivery whose acknowledgement was lost is
// re-acked by the coordinator, never re-merged.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Transport is how a worker reaches its coordinator.
type Transport interface {
	Hello(ctx context.Context, req HelloRequest) (*HelloResponse, error)
	Lease(ctx context.Context, req LeaseRequest) (*LeaseResponse, error)
	Heartbeat(ctx context.Context, req HeartbeatRequest) error
	Report(ctx context.Context, req ReportRequest) (*ReportResponse, error)
}

// Direct is the in-process transport: method calls on the coordinator.
type Direct struct {
	C *Coordinator
}

func (d Direct) Hello(_ context.Context, req HelloRequest) (*HelloResponse, error) {
	resp := d.C.Hello(req)
	return &resp, nil
}

func (d Direct) Lease(_ context.Context, req LeaseRequest) (*LeaseResponse, error) {
	resp := d.C.Lease(req)
	return &resp, nil
}

func (d Direct) Heartbeat(_ context.Context, req HeartbeatRequest) error {
	return d.C.Heartbeat(req)
}

func (d Direct) Report(_ context.Context, req ReportRequest) (*ReportResponse, error) {
	resp, err := d.C.Report(req)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Client deadlines and limits.
const (
	// DefaultCallTimeout bounds lease, heartbeat and hello calls — small
	// JSON round trips that either answer quickly or not at all.
	DefaultCallTimeout = 10 * time.Second
	// DefaultReportTimeout bounds report calls, which carry record
	// batches and may legitimately stall in the coordinator's ingest
	// backpressure while the merge catches up.
	DefaultReportTimeout = 60 * time.Second
	// maxResponseBytes caps how much of any response the client reads;
	// a misbehaving proxy cannot make a worker buffer without bound.
	maxResponseBytes = 8 << 20
	// errSnippetBytes is how much of an error response body travels in
	// the TransportError, for the worker's log.
	errSnippetBytes = 256
)

// RetryPolicy bounds the transport's retry loop — the same shape as
// core.RetryPolicy's backoff (attempt n sleeps base<<(n-2), capped,
// plus up to 50% seeded jitter), applied to network calls instead of
// experiments. The zero value selects the defaults.
type RetryPolicy struct {
	// MaxRetries is how many times a retryable call is re-attempted
	// beyond its first execution (negative disables retries entirely).
	MaxRetries int
	// BackoffBase and BackoffMax bound the exponential backoff.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed drives the jitter; the zero seed is a valid seed, so tests
	// that pin schedules can use any value including 0.
	Seed int64
}

// Retry defaults. The base is deliberately network-scaled (compare
// core.DefaultBackoffBase's 2ms, which is board-recovery-scaled): a
// dropped packet or a briefly restarting daemon needs tens of
// milliseconds, and four retries reach ~1.5s of total waiting before
// the worker's own outer loops take over.
const (
	DefaultTransportRetries    = 4
	DefaultTransportBackoff    = 50 * time.Millisecond
	DefaultTransportBackoffMax = 2 * time.Second
)

func (p *RetryPolicy) maxAttempts() int {
	if p.MaxRetries < 0 {
		return 1
	}
	if p.MaxRetries == 0 {
		return DefaultTransportRetries + 1
	}
	return p.MaxRetries + 1
}

// backoff returns the sleep before retry attempt n (n >= 2), with
// seeded jitter drawn from rng so tests are deterministic.
func (p *RetryPolicy) backoff(n int, rng *rand.Rand) time.Duration {
	base, max := p.BackoffBase, p.BackoffMax
	if base <= 0 {
		base = DefaultTransportBackoff
	}
	if max <= 0 {
		max = DefaultTransportBackoffMax
	}
	d := base
	for i := 2; i < n && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// Up to 50% jitter spreads simultaneous retries across workers.
	return d + time.Duration(rng.Int63n(int64(d)/2+1))
}

// HTTPTransport speaks the daemon's shard endpoints.
type HTTPTransport struct {
	// Base is the daemon address, e.g. "http://127.0.0.1:7070".
	Base string
	// Tenant and Campaign select the sharded job.
	Tenant, Campaign string
	// Token authenticates the worker when the daemon runs with
	// -shard-token; sent as a bearer token on every call.
	Token string
	// Client defaults to http.DefaultClient. Chaos tests install a
	// client whose RoundTripper injects network faults.
	Client *http.Client
	// CallTimeout and ReportTimeout are the per-call deadlines
	// (defaults above). They layer under any caller deadline: the
	// effective deadline is whichever expires first.
	CallTimeout   time.Duration
	ReportTimeout time.Duration
	// Retry bounds the retryable-failure loop.
	Retry RetryPolicy

	mu  sync.Mutex
	rng *rand.Rand
}

// sleepRetry draws a jittered backoff for attempt n and sleeps it,
// returning false when ctx ends first.
func (t *HTTPTransport) sleepRetry(ctx context.Context, n int) bool {
	t.mu.Lock()
	if t.rng == nil {
		t.rng = rand.New(rand.NewSource(t.Retry.Seed))
	}
	d := t.Retry.backoff(n, t.rng)
	t.mu.Unlock()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

func (t *HTTPTransport) timeout(action string) time.Duration {
	if action == "report" {
		if t.ReportTimeout > 0 {
			return t.ReportTimeout
		}
		return DefaultReportTimeout
	}
	if t.CallTimeout > 0 {
		return t.CallTimeout
	}
	return DefaultCallTimeout
}

// post performs one protocol call with deadline, classification and
// retry. The request body is marshaled once and replayed byte-identical
// on every attempt — for reports that keeps the idempotency key stable,
// which is what lets the coordinator dedupe a delivery whose first
// acknowledgement was lost.
func (t *HTTPTransport) post(ctx context.Context, action string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	url := fmt.Sprintf("%s/api/v1/shards/%s/%s/%s", t.Base, t.Tenant, t.Campaign, action)
	attempts := t.Retry.maxAttempts()
	for attempt := 1; ; attempt++ {
		err := t.once(ctx, action, url, body, resp)
		if err == nil {
			return nil
		}
		if !Retryable(err) || ctx.Err() != nil {
			return err
		}
		if attempt >= attempts {
			return err
		}
		class := ClassConn
		if te, ok := errAs[*TransportError](err); ok {
			class = te.Class
		}
		retryCounter(class).Inc()
		if !t.sleepRetry(ctx, attempt+1) {
			return ctx.Err()
		}
	}
}

// once is a single attempt: one request, one classified outcome.
func (t *HTTPTransport) once(ctx context.Context, action, url string, body []byte, resp any) error {
	callCtx, cancel := context.WithTimeout(ctx, t.timeout(action))
	defer cancel()
	hr, err := http.NewRequestWithContext(callCtx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hr.Header.Set("Content-Type", "application/json")
	if t.Token != "" {
		hr.Header.Set("Authorization", "Bearer "+t.Token)
	}
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	res, err := client.Do(hr)
	if err != nil {
		if ctx.Err() != nil {
			// The caller's context ended; don't dress it up as a fault.
			return ctx.Err()
		}
		te := classifyNetErr(action, err)
		if te.Class == ClassTimeout {
			mTimeouts.Inc()
		}
		return te
	}
	// Whatever happens below, the body is drained and closed so the
	// keep-alive connection is reusable for the retry or the next call.
	limited := io.LimitReader(res.Body, maxResponseBytes)
	defer func() {
		_, _ = io.Copy(io.Discard, limited)
		res.Body.Close()
	}()
	if res.StatusCode != http.StatusOK {
		snippet, _ := io.ReadAll(io.LimitReader(limited, errSnippetBytes))
		return classifyStatus(action, res.StatusCode, cleanSnippet(snippet))
	}
	if resp == nil {
		return nil
	}
	if err := json.NewDecoder(limited).Decode(resp); err != nil {
		// A truncated or garbled 200 body usually means the connection
		// died mid-response; the request may well have been processed,
		// which is exactly what the idempotency key absorbs on retry.
		return &TransportError{Op: action, Class: ClassDecode, Retryable: true, Err: err}
	}
	return nil
}

// cleanSnippet flattens an error-body snippet to one printable line.
func cleanSnippet(b []byte) string {
	s := strings.Join(strings.Fields(string(b)), " ")
	if len(s) > errSnippetBytes {
		s = s[:errSnippetBytes]
	}
	return s
}

func (t *HTTPTransport) Hello(ctx context.Context, req HelloRequest) (*HelloResponse, error) {
	var resp HelloResponse
	if err := t.post(ctx, "hello", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (t *HTTPTransport) Lease(ctx context.Context, req LeaseRequest) (*LeaseResponse, error) {
	var resp LeaseResponse
	if err := t.post(ctx, "lease", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (t *HTTPTransport) Heartbeat(ctx context.Context, req HeartbeatRequest) error {
	var resp struct{}
	return t.post(ctx, "heartbeat", req, &resp)
}

func (t *HTTPTransport) Report(ctx context.Context, req ReportRequest) (*ReportResponse, error) {
	var resp ReportResponse
	if err := t.post(ctx, "report", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
