package shard

// Transport error classification. Every failure a worker can see while
// talking to its coordinator falls into one of two buckets:
//
//   - terminal: the protocol itself rejected the call. ErrBadLease
//     (409/404 — the lease expired or predates a coordinator restart)
//     and ErrUnauthorized (401 — the worker's token is wrong) cannot be
//     fixed by resending the same request, so the retry loop returns
//     them immediately and the worker changes behaviour (abandon the
//     range, or exit).
//   - retryable: the network or the daemon hiccuped. Timeouts,
//     connection resets/refusals, 5xx responses, and truncated JSON
//     bodies are all faults a later attempt can outlive, so the client
//     retries them with capped exponential backoff.
//
// The split matters for exactly-once semantics: a retryable failure on
// a report may mean the coordinator already merged the batch and only
// the acknowledgement was lost, which is why retried reports carry the
// same idempotency key (ReportRequest.Delivery) — the coordinator
// re-acknowledges instead of re-merging.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
)

// ErrUnauthorized rejects a worker whose shard token does not match the
// daemon's. It is terminal: no retry of the same credentials can
// succeed, so the worker reports the failure and exits instead of
// hammering the coordinator.
var ErrUnauthorized = errors.New("shard: worker not authorized (bad or missing token)")

// Error classes reported in the transport retry metrics.
const (
	ClassTimeout = "timeout"
	ClassConn    = "conn"
	ClassStatus  = "status"
	ClassDecode  = "decode"
)

// TransportError is a classified transport-layer failure: what was
// attempted, what came back, and whether resending can help. A response
// snippet rides along so a worker's log shows what the daemon actually
// said, not just the status code.
type TransportError struct {
	// Op is the protocol verb ("lease", "heartbeat", "report", "hello").
	Op string
	// Status is the HTTP status code, 0 for network-level failures.
	Status int
	// Class is the retry-metric class (timeout, conn, status, decode).
	Class string
	// Retryable reports whether a later attempt can succeed.
	Retryable bool
	// Snippet is the start of the response body, when there was one.
	Snippet string
	// Err is the underlying cause, when there was one.
	Err error
}

func (e *TransportError) Error() string {
	msg := fmt.Sprintf("shard: %s", e.Op)
	switch {
	case e.Status != 0:
		msg += fmt.Sprintf(": status %d", e.Status)
	case e.Err != nil:
		msg += ": " + e.Err.Error()
	}
	if e.Snippet != "" {
		msg += fmt.Sprintf(" (%q)", e.Snippet)
	}
	if e.Retryable {
		msg += " [retryable]"
	}
	return msg
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *TransportError) Unwrap() error { return e.Err }

// Timeout reports whether the failure was a deadline (net.Error shape,
// so callers can keep using errors.As with net.Error).
func (e *TransportError) Timeout() bool { return e.Class == ClassTimeout }

// Retryable classifies any transport error: terminal protocol errors
// (ErrBadLease, ErrUnauthorized, context cancellation) are not, a
// TransportError answers for itself, and anything else — an unknown
// wrapper around a network failure — defaults to retryable, matching
// the worker's historical treat-unknown-as-transient behaviour.
func Retryable(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, ErrBadLease), errors.Is(err, ErrUnauthorized):
		return false
	case errors.Is(err, context.Canceled):
		return false
	}
	var te *TransportError
	if errors.As(err, &te) {
		return te.Retryable
	}
	return true
}

// timeoutErr is the net.Error-shaped subset we classify as a timeout.
type timeoutErr interface{ Timeout() bool }

// classifyNetErr converts a client.Do failure into a TransportError.
// Deadlines (the per-call timeout firing, or any net.Error that calls
// itself a timeout) are the timeout class; everything else — refused
// connections, resets, unexpected EOF — is the conn class. Both retry.
func classifyNetErr(op string, err error) *TransportError {
	class := ClassConn
	if te, ok := errAs[timeoutErr](err); ok && te.Timeout() {
		class = ClassTimeout
	} else if errors.Is(err, context.DeadlineExceeded) {
		class = ClassTimeout
	}
	return &TransportError{Op: op, Class: class, Retryable: true, Err: err}
}

// classifyStatus maps a non-200 response to its protocol meaning.
func classifyStatus(op string, status int, snippet string) error {
	switch {
	case status == http.StatusUnauthorized:
		return ErrUnauthorized
	case status == http.StatusConflict || status == http.StatusNotFound:
		// The daemon maps ErrBadLease (and a job it no longer tracks)
		// onto these: the worker must abandon, not retry.
		return ErrBadLease
	case status >= 500:
		return &TransportError{Op: op, Status: status, Class: ClassStatus,
			Retryable: true, Snippet: snippet}
	default:
		return &TransportError{Op: op, Status: status, Class: ClassStatus,
			Retryable: false, Snippet: snippet}
	}
}

// errAs is errors.As with a type parameter (no *target juggling).
func errAs[T any](err error) (T, bool) {
	var t T
	ok := errors.As(err, &t)
	return t, ok
}
