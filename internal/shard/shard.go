// Package shard distributes one campaign's experiment plan across many
// worker processes. A coordinator partitions the plan into contiguous
// sequence ranges and leases them to workers; each worker runs its range
// with its own board pool against its own WAL-backed shard database and
// reports the logged records back; the coordinator merges them into the
// canonical campaign store through a batched single-writer fan-in.
//
// Correctness rests on the plan-first determinism the rest of the tree
// already pins: every experiment's seed derives only from the campaign
// seed and its sequence number, so any subset of the plan executed
// anywhere produces records byte-identical to a solo `goofi run`. The
// conformance suite in this package proves that identity for the merged
// result, across shard counts, a shard killed mid-range, and a
// coordinator restart.
//
// Failure handling lifts the PR 4 retry/quarantine machinery to the
// shard level: a worker proves liveness with heartbeats; a lease whose
// heartbeat lapses is expired and its unfinished sequences are requeued
// as fresh ranges, and a worker that keeps expiring leases is
// quarantined (told to exit) instead of being leased more work.
package shard

import "sort"

// Range is a half-open span [Lo, Hi) of experiment sequence numbers.
type Range struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Len returns the number of sequences in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Partition splits [0, n) into at most shards contiguous near-equal
// ranges. Fewer ranges come back when n < shards; empty ranges are
// never produced.
func Partition(n, shards int) []Range {
	if n <= 0 || shards <= 0 {
		return nil
	}
	if shards > n {
		shards = n
	}
	per := n / shards
	rem := n % shards
	out := make([]Range, 0, shards)
	lo := 0
	for i := 0; i < shards; i++ {
		hi := lo + per
		if i < rem {
			hi++
		}
		out = append(out, Range{Lo: lo, Hi: hi})
		lo = hi
	}
	return out
}

// coalesce folds a set of sequence numbers into its maximal contiguous
// runs, ascending. Requeued work travels as ranges, so the holes a dead
// shard leaves behind become fresh leases.
func coalesce(seqs []int) []Range {
	if len(seqs) == 0 {
		return nil
	}
	sorted := append([]int(nil), seqs...)
	sort.Ints(sorted)
	var out []Range
	lo, hi := sorted[0], sorted[0]+1
	for _, s := range sorted[1:] {
		if s == hi {
			hi++
			continue
		}
		if s < hi {
			continue // duplicate
		}
		out = append(out, Range{Lo: lo, Hi: hi})
		lo, hi = s, s+1
	}
	return append(out, Range{Lo: lo, Hi: hi})
}
