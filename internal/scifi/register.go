package scifi

import (
	"goofi/internal/campaign"
	"goofi/internal/core"
	"goofi/internal/thor"
)

// Deterministic declares the simulator's full differential guarantee:
// same plan, byte-identical records. Every thor-backed target states
// this explicitly so the relaxation introduced for live-process targets
// can never silently widen.
func (t *Target) Deterministic() bool { return true }

func init() {
	core.RegisterTarget(core.TargetInfo{
		Kind:          "scifi",
		Description:   "THOR-S simulated board via scan-chain implemented fault injection",
		Algorithm:     core.SCIFI.Name,
		Deterministic: true,
		New: func(cfg core.TargetConfig) (core.TargetSystem, error) {
			var opts []Option
			if cfg.Param("fastpath", "on") == "off" {
				opts = append(opts, NoFastPath())
			}
			return New(thor.DefaultConfig(), opts...), nil
		},
		SystemData: func(name string, cfg core.TargetConfig) (*campaign.TargetSystemData, error) {
			return TargetSystemData(name), nil
		},
	})
}
