package scifi

import (
	"time"

	"goofi/internal/asm"
	"goofi/internal/core"
	"goofi/internal/thor"
)

// Checkpoint cost calibration for the optimal placement planner. The
// planner trades re-emulated cycles against checkpoints, so it needs
// both in the same unit: how many cycles of emulation one snapshot
// capture is worth on this host, right now. The calibration measures
// the board's actual snapshot wall time and its emulation speed on a
// scratch CPU, and converts one into the other.
//
// Calibration is wall-clock dependent and therefore nondeterministic
// across hosts and runs — which is safe, because the placement plan
// only chooses *where* checkpoints go: every logged record, outcome
// and forward-restored state is placement-independent (pinned by the
// forwarding differential suites). Campaigns that need a reproducible
// plan set ForwardConfig.SnapshotCostCycles explicitly, which bypasses
// this path entirely.

// calibrateEmulCycles is how many cycles the scratch CPU runs to price
// emulation speed: long enough to amortise timer granularity, short
// enough (<1ms) to be invisible next to a reference run.
const calibrateEmulCycles = 50_000

// calibrateSrc is the scratch workload: a tight kick loop that never
// terminates, overflows, or trips the watchdog, so the measurement sees
// steady-state fast-path execution.
const calibrateSrc = `
loop:
	addi r1, r1, 1
	kick
	cmpi r1, 0
	bne loop
	halt
`

// ForwardCostCycles implements core.ForwardCalibrator: the estimated
// cost of one checkpoint, in emulated-cycle equivalents, clamped to
// [64, 256] so a wild measurement (timer hiccup, cold caches) can skew
// the plan only so far.
func (t *Target) ForwardCostCycles() uint64 {
	const lo, hi = 64, 256
	snapNS := t.snapshotNS()
	cycleNS := emulNSPerCycle(t.cfg)
	if snapNS <= 0 || cycleNS <= 0 {
		return core.DefaultSnapshotCostCycles
	}
	cost := uint64(snapNS / cycleNS)
	if cost < lo {
		return lo
	}
	if cost > hi {
		return hi
	}
	return cost
}

// snapshotNS times one full board snapshot of the target's own CPU (in
// whatever state it currently holds — typically freshly reset, which is
// also what the reference run snapshots from).
func (t *Target) snapshotNS() float64 {
	start := time.Now()
	t.cpu.Snapshot()
	return float64(time.Since(start).Nanoseconds())
}

// emulNSPerCycle measures fast-path emulation speed on a scratch CPU
// built from the same config, returning host nanoseconds per emulated
// cycle. It returns 0 when the scratch workload cannot run (which in
// practice means an assembler regression — the source is a constant).
func emulNSPerCycle(cfg thor.Config) float64 {
	prog, err := asm.AssembleCached(calibrateSrc)
	if err != nil {
		return 0
	}
	c := thor.New(cfg)
	if err := c.LoadMemory(0, prog.Image); err != nil {
		return 0
	}
	start := time.Now()
	c.RunFast(calibrateEmulCycles)
	if c.Cycle() == 0 {
		return 0
	}
	return float64(time.Since(start).Nanoseconds()) / float64(c.Cycle())
}

var _ core.ForwardCalibrator = (*Target)(nil)
