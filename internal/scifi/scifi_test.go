package scifi

import (
	"context"
	"testing"

	"goofi/internal/campaign"
	"goofi/internal/core"
	"goofi/internal/faultmodel"
	"goofi/internal/sqldb"
	"goofi/internal/thor"
	"goofi/internal/trigger"
	"goofi/internal/workload"
)

// pidCampaign builds a SCIFI campaign over the PID control workload with
// the first-order plant closing the loop.
func pidCampaign(name string, n int, seed int64) *campaign.Campaign {
	return &campaign.Campaign{
		Name:       name,
		TargetName: "thor-board",
		ChainName:  "internal",
		Locations:  []string{"cpu"},
		FaultModel: faultmodel.Spec{Kind: faultmodel.Transient},
		Trigger:    trigger.Spec{Kind: "cycle"},
		// Inject somewhere in the first ~40 iterations.
		RandomWindow:   [2]uint64{200, 4000},
		NumExperiments: n,
		Seed:           seed,
		Termination:    campaign.Termination{TimeoutCycles: 300_000, MaxIterations: 60},
		Workload:       workload.PID(),
		EnvSim:         &campaign.EnvSimSpec{Name: "first-order-plant"},
		LogMode:        campaign.LogNormal,
	}
}

// sortCampaign builds a SCIFI campaign over the batch sort workload.
func sortCampaign(name string, n int, seed int64) *campaign.Campaign {
	return &campaign.Campaign{
		Name:           name,
		TargetName:     "thor-board",
		ChainName:      "internal",
		Locations:      []string{"cpu"},
		FaultModel:     faultmodel.Spec{Kind: faultmodel.Transient},
		Trigger:        trigger.Spec{Kind: "cycle"},
		RandomWindow:   [2]uint64{10, 1600},
		NumExperiments: n,
		Seed:           seed,
		Termination:    campaign.Termination{TimeoutCycles: 100_000},
		Workload:       workload.Sort(),
		LogMode:        campaign.LogNormal,
	}
}

func newStore(t *testing.T, camp *campaign.Campaign) *campaign.Store {
	t.Helper()
	st, err := campaign.NewStore(sqldb.Open())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutTargetSystem(TargetSystemData("thor-board")); err != nil {
		t.Fatal(err)
	}
	if err := st.PutCampaign(camp); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestChainMapMatchesCPU(t *testing.T) {
	m := ChainMap()
	if err := m.Validate(); err != nil {
		t.Fatalf("chain map invalid: %v", err)
	}
	if m.Length != thor.ScanLen() {
		t.Errorf("map length %d != scan length %d", m.Length, thor.ScanLen())
	}
	if _, err := m.Find("cpu.pc"); err != nil {
		t.Error(err)
	}
	loc, err := m.Find("cpu.cycle")
	if err != nil || !loc.ReadOnly {
		t.Errorf("cpu.cycle = %+v, %v (want read-only)", loc, err)
	}
	bm := BoundaryMap()
	if err := bm.Validate(); err != nil {
		t.Fatalf("boundary map invalid: %v", err)
	}
}

func TestIDCodeThroughTAP(t *testing.T) {
	tgt := New(thor.DefaultConfig())
	id, err := tgt.Controller().ReadIDCode()
	if err != nil {
		t.Fatal(err)
	}
	if id != IDCode {
		t.Errorf("IDCODE = %#x, want %#x", id, IDCode)
	}
}

func TestReferenceRunSortWorkload(t *testing.T) {
	tgt := New(thor.DefaultConfig())
	camp := sortCampaign("ref-test", 1, 1)
	ex := &core.Experiment{Campaign: camp, Seq: -1, Name: "ref-test/reference"}
	if err := core.SCIFI.Run(tgt, ex); err != nil {
		t.Fatal(err)
	}
	if ex.Result.Outcome.Status != campaign.OutcomeCompleted {
		t.Fatalf("reference outcome = %+v", ex.Result.Outcome)
	}
	arr, ok := ex.Result.Memory["arr"]
	if !ok || len(arr) != 64 {
		t.Fatalf("result memory arr = %d bytes", len(arr))
	}
	// First sorted element must be 2 (smallest input).
	first := uint32(arr[0])<<24 | uint32(arr[1])<<16 | uint32(arr[2])<<8 | uint32(arr[3])
	if first != 2 {
		t.Errorf("sorted[0] = %d, want 2", first)
	}
	if ex.Result.FinalScan == nil || ex.Result.FinalScan.Len() != thor.ScanLen() {
		t.Error("final scan state missing or wrong length")
	}
}

func TestCampaignEndToEndSort(t *testing.T) {
	// Architecture end to end (paper Fig 1): campaign store -> runner ->
	// algorithms -> target interface -> scan chains -> CPU -> logging.
	camp := sortCampaign("sort-e2e", 40, 11)
	st := newStore(t, camp)
	tgt := New(thor.DefaultConfig())
	r, err := core.NewRunner(tgt, core.SCIFI, camp, TargetSystemData("thor-board"), core.WithSink(st))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Experiments != 40 {
		t.Fatalf("experiments = %d", sum.Experiments)
	}
	recs, err := st.Experiments("sort-e2e")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 41 {
		t.Fatalf("logged = %d, want 41", len(recs))
	}
	// Outcomes must cover at least completed runs; with 40 random
	// register flips, typically some are detected too.
	if sum.ByStatus[campaign.OutcomeCompleted] == 0 {
		t.Errorf("no completed runs at all: %+v", sum.ByStatus)
	}
	injected := 0
	for _, rec := range recs {
		if rec.Data.Injected {
			injected++
		}
	}
	if injected == 0 {
		t.Error("no experiment injected its fault")
	}
}

func TestCampaignDeterministicReplay(t *testing.T) {
	outcomes := func() []campaign.Outcome {
		camp := sortCampaign("det", 15, 99)
		st := newStore(t, camp)
		tgt := New(thor.DefaultConfig())
		r, err := core.NewRunner(tgt, core.SCIFI, camp, TargetSystemData("thor-board"), core.WithSink(st))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		recs, err := st.Experiments("det")
		if err != nil {
			t.Fatal(err)
		}
		var out []campaign.Outcome
		for _, rec := range recs {
			if !rec.IsReference() {
				out = append(out, rec.Data.Outcome)
			}
		}
		return out
	}
	a, b := outcomes(), outcomes()
	if len(a) != len(b) {
		t.Fatalf("lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("experiment %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestCampaignPIDWithEnvSimulator(t *testing.T) {
	camp := pidCampaign("pid-e2e", 25, 3)
	st := newStore(t, camp)
	tgt := New(thor.DefaultConfig())
	r, err := core.NewRunner(tgt, core.SCIFI, camp, TargetSystemData("thor-board"), core.WithSink(st))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The reference run must complete its 60 iterations and produce
	// outputs through the environment simulator loop.
	ref, err := st.GetExperiment(campaign.ReferenceName("pid-e2e"))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Data.Outcome.Status != campaign.OutcomeCompleted {
		t.Fatalf("reference outcome = %+v", ref.Data.Outcome)
	}
	if ref.Data.Outcome.Iterations != 60 {
		t.Errorf("reference iterations = %d, want 60", ref.Data.Outcome.Iterations)
	}
	outs := ref.State.Outputs[workload.PortOut]
	if len(outs) != 60 {
		t.Fatalf("reference outputs = %d, want 60", len(outs))
	}
	// The controller must have driven the plant near the setpoint: the
	// last command settles around setpoint (u ~= 100 in Q8.8).
	lastU := int32(outs[len(outs)-1])
	if lastU < 20000 || lastU > 30000 {
		t.Errorf("final command = %d (Q8.8), expected near 25600", lastU)
	}
	if sum.Experiments != 25 {
		t.Errorf("experiments = %d", sum.Experiments)
	}
}

func TestDetailModeProducesTrace(t *testing.T) {
	camp := sortCampaign("detail", 2, 5)
	camp.LogMode = campaign.LogDetail
	camp.Termination.TimeoutCycles = 30_000
	st := newStore(t, camp)
	tgt := New(thor.DefaultConfig())
	r, err := core.NewRunner(tgt, core.SCIFI, camp, TargetSystemData("thor-board"), core.WithSink(st))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	trace, err := st.Trace(campaign.ExperimentName("detail", 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) < 100 {
		t.Fatalf("detail trace has %d steps, expected hundreds", len(trace))
	}
	// Each trace record carries a scan-state snapshot.
	if len(trace[0].State.Scan) == 0 {
		t.Error("trace step has no scan state")
	}
}

func TestPersistentStuckAtFault(t *testing.T) {
	camp := pidCampaign("stuck", 6, 21)
	camp.FaultModel = faultmodel.Spec{Kind: faultmodel.StuckAt1}
	st := newStore(t, camp)
	tgt := New(thor.DefaultConfig())
	r, err := core.NewRunner(tgt, core.SCIFI, camp, TargetSystemData("thor-board"), core.WithSink(st))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Experiments != 6 {
		t.Errorf("experiments = %d", sum.Experiments)
	}
}

func TestBranchTriggerCampaign(t *testing.T) {
	camp := sortCampaign("brtrig", 5, 31)
	camp.RandomWindow = [2]uint64{}
	camp.Trigger = trigger.Spec{Kind: "branch", Occurrence: 10}
	st := newStore(t, camp)
	tgt := New(thor.DefaultConfig())
	r, err := core.NewRunner(tgt, core.SCIFI, camp, TargetSystemData("thor-board"), core.WithSink(st))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	recs, err := st.Experiments("brtrig")
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.IsReference() {
			continue
		}
		if rec.Data.Injected && rec.Data.InjectionCycle == 0 {
			t.Errorf("experiment %s injected at cycle 0", rec.Name)
		}
	}
}

func TestRerunReproducesOutcome(t *testing.T) {
	camp := sortCampaign("rerun", 8, 13)
	st := newStore(t, camp)
	tgt := New(thor.DefaultConfig())
	r, err := core.NewRunner(tgt, core.SCIFI, camp, TargetSystemData("thor-board"), core.WithSink(st))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	recs, err := st.Experiments("rerun")
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.IsReference() || !rec.Data.Injected {
			continue
		}
		ex, err := r.Rerun(rec.Name, true)
		if err != nil {
			t.Fatal(err)
		}
		if ex.Result.Outcome != rec.Data.Outcome {
			t.Errorf("rerun of %s: outcome %+v != original %+v",
				rec.Name, ex.Result.Outcome, rec.Data.Outcome)
		}
		// The detail re-run produced a trace with the original as
		// grandparent.
		trace, err := st.Trace(ex.Name)
		if err != nil {
			t.Fatal(err)
		}
		if len(trace) == 0 {
			t.Errorf("rerun of %s produced no trace", rec.Name)
		}
		break // one rerun is enough for the test
	}
}

func TestAssertionRecoveryCampaign(t *testing.T) {
	// The [12]-shaped experiment: the assertion-hardened PID workload
	// recovers from some injected faults instead of failing.
	camp := pidCampaign("assert", 10, 77)
	camp.Workload = workload.PIDAssert()
	st := newStore(t, camp)
	tgt := New(thor.DefaultConfig())
	r, err := core.NewRunner(tgt, core.SCIFI, camp, TargetSystemData("thor-board"), core.WithSink(st))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Reference run recovers nothing (no faults, no assertion fires).
	ref, err := st.GetExperiment(campaign.ReferenceName("assert"))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Data.Outcome.Recovered != 0 {
		t.Errorf("reference recovered = %d", ref.Data.Outcome.Recovered)
	}
	if ref.Data.Outcome.Status != campaign.OutcomeCompleted {
		t.Errorf("reference status = %v", ref.Data.Outcome.Status)
	}
}

func TestTimeoutTermination(t *testing.T) {
	// An infinite-loop workload without iteration limit hits the
	// time-out termination condition.
	camp := pidCampaign("timeout", 1, 1)
	camp.Termination = campaign.Termination{TimeoutCycles: 20_000} // no MaxIterations
	st := newStore(t, camp)
	tgt := New(thor.DefaultConfig())
	r, err := core.NewRunner(tgt, core.SCIFI, camp, TargetSystemData("thor-board"), core.WithSink(st))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ref, err := st.GetExperiment(campaign.ReferenceName("timeout"))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Data.Outcome.Status != campaign.OutcomeTimeout {
		t.Errorf("status = %v, want timeout", ref.Data.Outcome.Status)
	}
}

func TestICacheInjectionDetectedByParity(t *testing.T) {
	// Injecting into icache data words of a hot loop must produce
	// parity detections — the hallmark SCIFI capability on a
	// parity-protected cache. Target only icache word arrays.
	camp := sortCampaign("parity", 30, 55)
	var locs []string
	m := ChainMap()
	for _, l := range m.Locations {
		if len(l.Name) > 6 && l.Name[:6] == "icache" &&
			(contains(l.Name, ".word")) {
			locs = append(locs, l.Name)
		}
	}
	camp.Locations = locs
	st := newStore(t, camp)
	tgt := New(thor.DefaultConfig())
	r, err := core.NewRunner(tgt, core.SCIFI, camp, TargetSystemData("thor-board"), core.WithSink(st))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.ByMechanism[thor.EDMParityI.String()] == 0 {
		t.Errorf("no icache parity detections in 30 cache injections: %+v", sum.ByMechanism)
	}
}

func TestParallelBoardsMatchSequential(t *testing.T) {
	// Four simulated boards produce the exact same logged outcomes as a
	// single board, record for record.
	run := func(parallel bool) []*campaign.ExperimentRecord {
		camp := sortCampaign("parity-par", 20, 77)
		st := newStore(t, camp)
		opts := []core.RunnerOption{core.WithSink(st)}
		if parallel {
			opts = append(opts, core.WithBoards(4, func() core.TargetSystem {
				return New(thor.DefaultConfig())
			}))
		}
		r, err := core.NewRunner(New(thor.DefaultConfig()), core.SCIFI, camp,
			TargetSystemData("thor-board"), opts...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err = r.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		recs, err := st.Experiments("parity-par")
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}
	seq := run(false)
	par := run(true)
	if len(seq) != len(par) {
		t.Fatalf("record counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Name != par[i].Name || seq[i].Data.Outcome != par[i].Data.Outcome {
			t.Errorf("record %s: seq %+v, par %+v",
				seq[i].Name, seq[i].Data.Outcome, par[i].Data.Outcome)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
