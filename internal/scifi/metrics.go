package scifi

import "goofi/internal/telemetry"

// Checkpoint-forwarding counters. Cycle totals (emulated vs saved) are
// accounted centrally by the scheduler, which already folds them into
// the campaign summary; here we count the forwarding machinery itself.
var (
	mFwRecorded = telemetry.NewCounter("goofi_scifi_forward_checkpoints_recorded_total",
		"Board snapshots captured during reference runs for checkpoint forwarding.")
	mFwRestores = telemetry.NewCounter("goofi_scifi_forward_restores_total",
		"Experiments that restored a forward checkpoint instead of cold-starting.")
)
