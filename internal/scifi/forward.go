package scifi

import (
	"goofi/internal/core"
	"goofi/internal/envsim"
	"goofi/internal/scanchain"
	"goofi/internal/thor"
)

// Checkpoint forwarding on the THOR-S board. During the reference run the
// target captures full board snapshots — CPU (registers, memory, caches,
// counters, ports, trap handlers, pending detections), scan-chain
// controller state, iteration counter, accumulated outputs and the
// environment simulator — at the cycles the core planner chose. Faulty
// experiments restore the nearest snapshot at or before their injection
// cycle inside WaitForBreakpoint and emulate only the remainder. The
// fault-free prefix of a faulty experiment is identical to the reference
// run (the fault is applied only at the injection point), so a restored
// run is bit-exact with a cold one.

// boardState is the target-private payload of a core.ForwardCheckpoint.
// All fields are immutable after capture; CPU memory pages may be shared
// between consecutive checkpoints (copy-on-write at capture time) and the
// whole state may be restored concurrently onto many boards.
type boardState struct {
	cpu       *thor.Snapshot
	ctrl      scanchain.ControllerState
	iteration int
	// outputs is the experiment's accumulated Result.Outputs at capture.
	outputs map[uint16][]uint32
	// simState restores a Snapshotter simulator directly; for simulators
	// without snapshot support it is nil and exchangeLog replays the
	// prefix's Exchange calls against a fresh instance instead.
	simState    any
	exchangeLog [][]uint32
}

// fwRecorder tracks checkpoint recording during one reference run.
type fwRecorder struct {
	plan *core.ForwardPlan
	idx  int // next plan point to capture
	set  *core.ForwardSet
	prev *thor.Snapshot // previous snapshot, for page sharing
	// exchangeLog accumulates the outputs passed to every sim.Exchange
	// call of the reference run, in order, for the replay fallback. Each
	// checkpoint keeps the prefix recorded up to its capture.
	exchangeLog [][]uint32
	full        bool // byte budget exhausted; recording stopped
	// tail is the provisional horizon-guard checkpoint: the newest
	// boundary snapshot taken while later plan points were still
	// pending. The planner cannot know where the reference run ends
	// (iteration limits are workload-dependent), so plan points past
	// the end are unrecordable; if any remain when recording stops, the
	// guard is appended as a final checkpoint so injections beyond the
	// horizon restore from just before it instead of from the last
	// planned point that happened to fit.
	tail *core.ForwardCheckpoint
}

// ArmForwardRecording implements core.Forwarder.
func (t *Target) ArmForwardRecording(plan *core.ForwardPlan) {
	t.fwRec = &fwRecorder{plan: plan, set: &core.ForwardSet{Campaign: plan.Campaign}}
}

// TakeForwardSet implements core.Forwarder.
func (t *Target) TakeForwardSet() *core.ForwardSet {
	rec := t.fwRec
	t.fwRec = nil
	if rec == nil {
		return nil
	}
	// The reference run ended with plan points still pending: promote the
	// horizon guard so injections beyond the recording horizon restore
	// from the run's last boundary instead of from whichever earlier
	// planned point happened to fit before it.
	if rec.tail != nil && !rec.full && rec.idx < len(rec.plan.Cycles) {
		last := uint64(0)
		if n := len(rec.set.Checkpoints); n > 0 {
			last = rec.set.Checkpoints[n-1].Cycle
		}
		if rec.tail.Cycle > last &&
			(rec.plan.MaxBytes == 0 || rec.set.Bytes+rec.tail.Bytes <= rec.plan.MaxBytes) {
			rec.set.Checkpoints = append(rec.set.Checkpoints, rec.tail)
			rec.set.Bytes += rec.tail.Bytes
			mFwRecorded.Inc()
		}
	}
	if len(rec.set.Checkpoints) == 0 {
		return nil
	}
	return rec.set
}

// SetForwardSet implements core.Forwarder.
func (t *Target) SetForwardSet(set *core.ForwardSet) { t.fwSet = set }

// fwRecording reports whether this experiment is a recording reference
// run with plan points left to capture.
func (t *Target) fwRecording(ex *core.Experiment) bool {
	return t.fwRec != nil && !t.fwRec.full && t.fwRec.idx < len(t.fwRec.plan.Cycles) &&
		ex.IsReference()
}

// fwLogExchange appends one sim.Exchange call's outputs to the replay
// log. outs is deep-copied; log entries are immutable once appended.
func (t *Target) fwLogExchange(ex *core.Experiment, outs []uint32) {
	if t.fwRec == nil || !ex.IsReference() {
		return
	}
	var cp []uint32
	if outs != nil {
		cp = append([]uint32(nil), outs...)
	}
	t.fwRec.exchangeLog = append(t.fwRec.exchangeLog, cp)
}

// fwMaybeRecord captures a checkpoint when the reference run has reached
// the next planned cycle. It is called from the top of the termination
// loop, where the CPU is always at an instruction boundary in the Running
// state, so a restore resumes exactly where the reference continued.
func (t *Target) fwMaybeRecord(ex *core.Experiment) {
	if !t.fwRecording(ex) {
		return
	}
	rec := t.fwRec
	cy := t.cpu.Cycle()
	if cy < rec.plan.Cycles[rec.idx] {
		// Not yet at the next planned point: refresh the horizon guard
		// instead, in case the reference run terminates before reaching
		// it. Only the newest guard is kept.
		rec.tail = t.fwCapture(ex)
		return
	}
	// Consume every plan point this boundary covers; one snapshot serves
	// all of them.
	for rec.idx < len(rec.plan.Cycles) && rec.plan.Cycles[rec.idx] <= cy {
		rec.idx++
	}
	cp := t.fwCapture(ex)
	if rec.plan.MaxBytes > 0 && rec.set.Bytes+cp.Bytes > rec.plan.MaxBytes {
		rec.full = true
		return
	}
	rec.prev = cp.State.(*boardState).cpu
	rec.tail = nil // superseded: the guard never trails a planned point
	rec.set.Checkpoints = append(rec.set.Checkpoints, cp)
	rec.set.Bytes += cp.Bytes
	mFwRecorded.Inc()
}

// fwCapture builds a checkpoint of the current board state. Pages are
// shared against the previous *planned* checkpoint; the caller decides
// whether the capture joins the set immediately (a planned point) or
// provisionally (the horizon guard).
func (t *Target) fwCapture(ex *core.Experiment) *core.ForwardCheckpoint {
	rec := t.fwRec
	snap, fresh := t.cpu.SnapshotSharing(rec.prev)
	bs := &boardState{
		cpu:         snap,
		ctrl:        t.ctrl.StateSnapshot(),
		iteration:   t.iteration,
		outputs:     cloneOutputs(ex.Result.Outputs),
		exchangeLog: rec.exchangeLog[:len(rec.exchangeLog):len(rec.exchangeLog)],
	}
	if t.sim != nil {
		if ss, ok := t.sim.(envsim.Snapshotter); ok {
			bs.simState = ss.SnapshotState()
		}
	}
	return &core.ForwardCheckpoint{
		Cycle:   snap.Cycle,
		Instret: snap.Instret,
		Bytes:   fresh,
		State:   bs,
	}
}

// fwSliceBudget shrinks a run-slice budget so the reference run stops at
// the next planned checkpoint cycle instead of overshooting it.
func (t *Target) fwSliceBudget(ex *core.Experiment, slice uint64) uint64 {
	if !t.fwRecording(ex) {
		return slice
	}
	next := t.fwRec.plan.Cycles[t.fwRec.idx]
	if cy := t.cpu.Cycle(); next > cy && next-cy < slice {
		return next - cy
	}
	return slice
}

// fwRestore fast-forwards a faulty experiment: it restores the nearest
// recorded checkpoint at or before the injection point, so the trigger
// wait emulates only the delta. Any disqualifying condition — no set, a
// non-cycle-monotonic trigger, detail-mode logging, an active pin-level
// force, a simulator that can be neither snapshotted nor replayed — makes
// it a silent no-op and the experiment cold-starts.
func (t *Target) fwRestore(ex *core.Experiment) {
	set := t.fwSet
	if set == nil || ex.IsReference() || ex.DetailSink != nil ||
		set.Campaign != ex.Campaign.Name || t.cpu.PinForceActive() {
		return
	}
	at, byInstret, ok := ex.Trigger.ForwardPoint()
	if !ok {
		return
	}
	cp := set.Nearest(at, byInstret)
	if cp == nil {
		return
	}
	bs, ok := cp.State.(*boardState)
	if !ok {
		return
	}
	// Reconstruct the simulator first: if that fails the board state is
	// untouched and the experiment proceeds cold.
	var sim envsim.Simulator
	if ex.Campaign.EnvSim != nil {
		fresh, err := t.envs.New(ex.Campaign.EnvSim.Name, ex.Campaign.EnvSim.Params)
		if err != nil {
			return
		}
		if bs.simState != nil {
			ss, ok := fresh.(envsim.Snapshotter)
			if !ok {
				return
			}
			if err := ss.RestoreState(bs.simState); err != nil {
				return
			}
		} else {
			// Replay fallback: re-issue the prefix's Exchange calls. The
			// produced inputs are discarded — the CPU snapshot already
			// holds the port queues as they stood at the checkpoint.
			for _, outs := range bs.exchangeLog {
				fresh.Exchange(outs)
			}
		}
		sim = fresh
	}
	if err := t.cpu.Restore(bs.cpu); err != nil {
		return
	}
	t.ctrl.RestoreState(bs.ctrl)
	t.iteration = bs.iteration
	t.sim = sim
	ex.Result.Outputs = cloneOutputs(bs.outputs)
	ex.Forwarded = true
	ex.ForwardedFrom = cp.Cycle
	mFwRestores.Inc()
}

// cloneOutputs deep-copies an output map; nil stays nil.
func cloneOutputs(m map[uint16][]uint32) map[uint16][]uint32 {
	if m == nil {
		return nil
	}
	c := make(map[uint16][]uint32, len(m))
	for port, vals := range m {
		c[port] = append([]uint32(nil), vals...)
	}
	return c
}

// Interface compliance.
var _ core.Forwarder = (*Target)(nil)
