package scifi

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"goofi/internal/campaign"
	"goofi/internal/core"
	"goofi/internal/faultmodel"
	"goofi/internal/thor"
	"goofi/internal/trigger"
	"goofi/internal/workload"
)

// recordJSON marshals an experiment's logged record for byte-comparison.
func recordJSON(t *testing.T, ex *core.Experiment) []byte {
	t.Helper()
	rec, err := ex.Record()
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// runDirect executes one experiment of camp on tgt through the SCIFI
// algorithm, with a deterministic per-seq RNG.
func runDirect(t *testing.T, tgt *Target, camp *campaign.Campaign, seq int,
	fault *faultmodel.Fault, trig trigger.Spec) *core.Experiment {
	t.Helper()
	name := campaign.ExperimentName(camp.Name, seq)
	if seq < 0 {
		name = campaign.ReferenceName(camp.Name)
	}
	ex := &core.Experiment{
		Campaign: camp,
		Seq:      seq,
		Name:     name,
		Fault:    fault,
		Trigger:  trig,
		RNG:      rand.New(rand.NewSource(int64(seq + 1))),
	}
	if err := core.SCIFI.Run(tgt, ex); err != nil {
		t.Fatal(err)
	}
	return ex
}

// TestForwardTortureEveryCheckpoint records a dense checkpoint set over a
// PID reference run, then restores every single checkpoint and verifies
// the restored experiment is byte-identical to a cold run of the same
// experiment — the torture version of the equivalence bar.
func TestForwardTortureEveryCheckpoint(t *testing.T) {
	camp := pidCampaign("torture", 1, 5)
	camp.RandomWindow = [2]uint64{}
	tgt := New(thorCfg())

	plan := &core.ForwardPlan{Campaign: camp.Name, MaxBytes: core.DefaultMaxForwardBytes}
	for c := uint64(40); c < 4000; c += 120 {
		plan.Cycles = append(plan.Cycles, c)
	}
	tgt.ArmForwardRecording(plan)
	ref := runDirect(t, tgt, camp, -1, nil, trigger.Spec{})
	if ref.Result.Outcome.Status != campaign.OutcomeCompleted {
		t.Fatalf("reference outcome = %+v", ref.Result.Outcome)
	}
	set := tgt.TakeForwardSet()
	if set == nil || len(set.Checkpoints) < 8 {
		t.Fatalf("recorded %v checkpoints, want a dense set", set)
	}

	fault := &faultmodel.Fault{Kind: faultmodel.Transient, Bits: []int{37, 70}}
	for i, cp := range set.Checkpoints {
		// Inject shortly after this checkpoint (and, for the first one,
		// exactly at it — the counter-exactness corner).
		at := cp.Cycle + 17
		if i == 0 {
			at = cp.Cycle
		}
		trig := trigger.Spec{Kind: "cycle", Cycle: at}

		tgt.SetForwardSet(nil)
		cold := runDirect(t, tgt, camp, i, fault, trig)
		if cold.Forwarded {
			t.Fatalf("cp %d: cold run claims it forwarded", i)
		}

		tgt.SetForwardSet(&core.ForwardSet{
			Campaign:    camp.Name,
			Checkpoints: set.Checkpoints[i : i+1],
		})
		warm := runDirect(t, tgt, camp, i, fault, trig)
		if !warm.Forwarded || warm.ForwardedFrom != cp.Cycle {
			t.Fatalf("cp %d (cycle %d): not forwarded (%v from %d)",
				i, cp.Cycle, warm.Forwarded, warm.ForwardedFrom)
		}
		if c, w := recordJSON(t, cold), recordJSON(t, warm); !reflect.DeepEqual(c, w) {
			t.Errorf("cp %d (cycle %d, inject@%d): records differ\ncold %s\nwarm %s",
				i, cp.Cycle, at, c, w)
		}
	}
	tgt.SetForwardSet(nil)
}

// TestForwardPersistentFaultEquivalence covers the stuck-at path: the
// fault is reasserted every slice after injection, and a forwarded run
// must still match the cold run exactly.
func TestForwardPersistentFaultEquivalence(t *testing.T) {
	camp := pidCampaign("torture-stuck", 1, 9)
	camp.RandomWindow = [2]uint64{}
	tgt := New(thorCfg())

	plan := &core.ForwardPlan{Campaign: camp.Name,
		Cycles: []uint64{500, 1500, 2500}, MaxBytes: core.DefaultMaxForwardBytes}
	tgt.ArmForwardRecording(plan)
	runDirect(t, tgt, camp, -1, nil, trigger.Spec{})
	set := tgt.TakeForwardSet()
	if set == nil || len(set.Checkpoints) != 3 {
		t.Fatalf("recorded %v", set)
	}

	fault := &faultmodel.Fault{Kind: faultmodel.StuckAt1, Bits: []int{64}}
	trig := trigger.Spec{Kind: "cycle", Cycle: 1700}

	tgt.SetForwardSet(nil)
	cold := runDirect(t, tgt, camp, 0, fault, trig)
	tgt.SetForwardSet(set)
	warm := runDirect(t, tgt, camp, 0, fault, trig)
	if !warm.Forwarded || warm.ForwardedFrom != 1500 {
		t.Fatalf("warm = forwarded %v from %d, want from 1500", warm.Forwarded, warm.ForwardedFrom)
	}
	if c, w := recordJSON(t, cold), recordJSON(t, warm); !reflect.DeepEqual(c, w) {
		t.Errorf("persistent fault records differ\ncold %s\nwarm %s", c, w)
	}
	tgt.SetForwardSet(nil)
}

// TestForwardFallsBackCold verifies the transparent-fallback rules: a
// non-cycle-monotonic trigger, a foreign campaign's set, an injection
// point before every checkpoint, and a reference run must all ignore the
// installed set.
func TestForwardFallsBackCold(t *testing.T) {
	camp := pidCampaign("fallback", 1, 3)
	camp.RandomWindow = [2]uint64{}
	tgt := New(thorCfg())
	plan := &core.ForwardPlan{Campaign: camp.Name,
		Cycles: []uint64{800}, MaxBytes: core.DefaultMaxForwardBytes}
	tgt.ArmForwardRecording(plan)
	runDirect(t, tgt, camp, -1, nil, trigger.Spec{})
	set := tgt.TakeForwardSet()
	if set == nil {
		t.Fatal("no set recorded")
	}
	fault := &faultmodel.Fault{Kind: faultmodel.Transient, Bits: []int{40}}

	tgt.SetForwardSet(set)
	if ex := runDirect(t, tgt, camp, 0, fault,
		trigger.Spec{Kind: "branch", Occurrence: 5}); ex.Forwarded {
		t.Error("occurrence-counting trigger was forwarded")
	}
	if ex := runDirect(t, tgt, camp, 1, fault,
		trigger.Spec{Kind: "cycle", Cycle: 200}); ex.Forwarded {
		t.Error("injection before the first checkpoint was forwarded")
	}
	other := *camp
	other.Name = "fallback-other"
	if ex := runDirect(t, tgt, &other, 2, fault,
		trigger.Spec{Kind: "cycle", Cycle: 900}); ex.Forwarded {
		t.Error("a foreign campaign's set was used")
	}
	if ex := runDirect(t, tgt, camp, -1, nil, trigger.Spec{}); ex.Forwarded {
		t.Error("the reference run was forwarded")
	}
	tgt.SetForwardSet(nil)
}

// TestReusedTargetMatchesFresh runs three consecutive experiments —
// including one that installs recovery trap handlers — on a single
// reused Target and on fresh Targets, and requires identical records:
// InitTestCard must leave no residue (trap handlers, breakpoints, TAP
// state, forwarding scratch) from one experiment to the next.
func TestReusedTargetMatchesFresh(t *testing.T) {
	assertCamp := pidCampaign("reuse-assert", 3, 41)
	assertCamp.Workload = workload.PIDAssert()
	assertCamp.RandomWindow = [2]uint64{}
	sortCamp := sortCampaign("reuse-sort", 3, 41)
	sortCamp.RandomWindow = [2]uint64{}

	type exp struct {
		camp  *campaign.Campaign
		fault faultmodel.Fault
		trig  trigger.Spec
	}
	exps := []exp{
		// Installs trap handlers and runs the env simulator.
		{assertCamp, faultmodel.Fault{Kind: faultmodel.Transient, Bits: []int{37}},
			trigger.Spec{Kind: "cycle", Cycle: 900}},
		// No handlers, no simulator: leaked state would show here.
		{sortCamp, faultmodel.Fault{Kind: faultmodel.StuckAt0, Bits: []int{101}},
			trigger.Spec{Kind: "cycle", Cycle: 400}},
		{sortCamp, faultmodel.Fault{Kind: faultmodel.Transient, Bits: []int{260}},
			trigger.Spec{Kind: "cycle", Cycle: 1100}},
	}

	reused := New(thorCfg())
	for i, e := range exps {
		f := e.fault
		onReused := runDirect(t, reused, e.camp, i, &f, e.trig)
		f2 := e.fault
		onFresh := runDirect(t, New(thorCfg()), e.camp, i, &f2, e.trig)
		r, fr := recordJSON(t, onReused), recordJSON(t, onFresh)
		if !reflect.DeepEqual(r, fr) {
			t.Errorf("experiment %d: reused board diverged from fresh\nreused %s\nfresh  %s",
				i, r, fr)
		}
	}
}

func thorCfg() thor.Config { return thor.DefaultConfig() }
