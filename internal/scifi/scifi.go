// Package scifi implements the TargetSystemInterface for a test board
// built around the THOR-S microprocessor, driven through its IEEE 1149.1
// test logic — the paper's concrete instantiation (§3): faults are
// injected by stopping the workload at a trigger point, shifting the
// internal scan chains out, flipping bits, shifting them back, and running
// to a termination condition while logging system state.
package scifi

import (
	"fmt"

	"goofi/internal/asm"
	"goofi/internal/bitvec"
	"goofi/internal/campaign"
	"goofi/internal/core"
	"goofi/internal/envsim"
	"goofi/internal/scanchain"
	"goofi/internal/thor"
	"goofi/internal/trigger"
)

// IDCode is the JTAG identification code of the THOR-S device.
const IDCode uint32 = 0x5448_0153 // "TH\x01S"

// runSlice is the cycle granularity at which WaitForTermination checks
// termination conditions and reasserts persistent faults.
const runSlice = 4096

// device adapts the THOR-S CPU to the scanchain.Device interface.
type device struct {
	cpu *thor.CPU
	// extestDataMask/extestAddrMask select the pins EXTEST drives; the
	// pin-level injector sets them before updating the boundary register.
	extestDataMask uint32
	extestAddrMask uint32
}

func (d *device) BoundaryLen() int                { return thor.BoundaryLen() }
func (d *device) CaptureBoundary() *bitvec.Vector { return d.cpu.BoundaryRead() }
func (d *device) InternalLen() int                { return thor.ScanLen() }
func (d *device) CaptureInternal() *bitvec.Vector { return d.cpu.ScanRead() }
func (d *device) IDCode() uint32                  { return IDCode }

// CaptureInternalInto lets the TAP reuse its DR shift register across
// internal scans (scanchain.InternalCapturerInto).
func (d *device) CaptureInternalInto(v *bitvec.Vector) error { return d.cpu.ScanReadInto(v) }

func (d *device) UpdateBoundary(v *bitvec.Vector) error {
	return d.cpu.BoundaryWrite(v, d.extestDataMask, d.extestAddrMask)
}

func (d *device) UpdateInternal(v *bitvec.Vector) error { return d.cpu.ScanWrite(v) }

// Target is the THOR-S target system. It implements every abstract method
// used by the SCIFI, pin-level and SWIFI algorithms; one Target drives one
// simulated board and is not safe for concurrent campaigns.
type Target struct {
	core.Framework

	cfg  thor.Config
	cpu  *thor.CPU
	dev  *device
	ctrl *scanchain.Controller
	envs *envsim.Registry

	// per-experiment state, reset by InitTestCard
	prog             *asm.Program
	trig             trigger.Trigger
	sim              envsim.Simulator
	iteration        int
	recovered        int
	detailStep       int
	atInjectionPoint bool

	// campaign-scoped checkpoint-forwarding state; preserved across
	// InitTestCard, managed through the core.Forwarder methods.
	fwRec *fwRecorder
	fwSet *core.ForwardSet
	// scanScratch is the reusable scan vector for the per-slice hot
	// paths (persistent-fault reassertion, detail-mode state capture).
	scanScratch *bitvec.Vector

	// fastPath selects thor's batched execution mode for trigger waits
	// and termination runs (byte-identical to cycle-accurate execution;
	// see internal/thor/cpu_fastpath.go). On by default; NoFastPath
	// turns it off for A/B benchmarking and differential suites.
	fastPath bool
}

// Option configures a Target.
type Option func(*Target)

// New returns a target over a fresh THOR-S board.
func New(cfg thor.Config, opts ...Option) *Target {
	t := &Target{
		Framework: core.Framework{TargetName: "thor-s-board"},
		cfg:       cfg,
		envs:      envsim.NewRegistry(),
		fastPath:  true,
	}
	for _, o := range opts {
		o(t)
	}
	t.cpu = thor.New(cfg)
	t.dev = &device{cpu: t.cpu}
	t.ctrl = scanchain.NewController(t.dev)
	return t
}

// WithEnvRegistry replaces the environment simulator registry.
func WithEnvRegistry(r *envsim.Registry) Option {
	return func(t *Target) { t.envs = r }
}

// NoFastPath disables thor's batched fast-path execution and runs every
// cycle through the cycle-accurate Step path. Outcomes are identical
// either way (pinned by the differential suites); this exists for A/B
// benchmarking and belt-and-braces verification runs.
func NoFastPath() Option {
	return func(t *Target) { t.fastPath = false }
}

// CPU exposes the underlying processor for tests and the pre-injection
// analysis.
func (t *Target) CPU() *thor.CPU { return t.cpu }

// Controller exposes the scan-chain controller.
func (t *Target) Controller() *scanchain.Controller { return t.ctrl }

// ChainMap returns the scan-chain map of the THOR-S internal chain, as
// entered in the configuration phase (paper Fig 5).
func ChainMap() scanchain.Map {
	layout := thor.ScanLayout()
	m := scanchain.Map{Chain: "internal", Length: thor.ScanLen()}
	for _, f := range layout {
		m.Locations = append(m.Locations, scanchain.Location{
			Name: f.Name, Offset: f.Offset, Width: f.Width, ReadOnly: f.ReadOnly,
		})
	}
	return m
}

// BoundaryMap returns the boundary-scan map (for pin-level campaigns).
func BoundaryMap() scanchain.Map {
	m := scanchain.Map{Chain: "boundary", Length: thor.BoundaryLen()}
	for _, f := range thor.BoundaryPinLayout() {
		m.Locations = append(m.Locations, scanchain.Location{
			Name: f.Name, Offset: f.Offset, Width: f.Width, ReadOnly: f.ReadOnly,
		})
	}
	return m
}

// TargetSystemData returns the complete configuration-phase record for
// this target, ready to store in TargetSystemData.
func TargetSystemData(name string) *campaign.TargetSystemData {
	return &campaign.TargetSystemData{
		Name:         name,
		TestCardName: "thor-s-testcard",
		Chains:       []scanchain.Map{ChainMap(), BoundaryMap()},
		Description:  "THOR-S microprocessor board with IEEE 1149.1 test logic",
	}
}

// InitTestCard resets the board: TAP and controller reset, CPU to
// power-on state, memory cleared, per-experiment state discarded. The
// controller is reset in place (byte-identical to a fresh controller,
// pinned by TestControllerResetMatchesFresh, but without reallocating
// its multi-kilobit scratch vector on the per-experiment hot path)
// before the CPU is reconfigured so no stale scan traffic can touch the
// fresh CPU state, and trap handlers and breakpoints — which survive a
// bare CPU reset — are cleared explicitly: a reused board must behave
// identically to a fresh one.
func (t *Target) InitTestCard(ex *core.Experiment) error {
	t.ctrl.Reset()
	t.cpu.Reset()
	t.cpu.ClearMemory()
	t.cpu.ClearTrapHandlers()
	t.cpu.ClearBreakpoints()
	t.cpu.TraceHook = nil
	t.prog = nil
	t.trig = nil
	t.sim = nil
	t.iteration = 0
	t.recovered = 0
	t.detailStep = 0
	t.atInjectionPoint = false
	return nil
}

// LoadWorkload assembles the campaign's workload source. Assembly output
// is cached by source hash: every experiment of a campaign shares one
// immutable Program, and only the memory image download is per-run.
func (t *Target) LoadWorkload(ex *core.Experiment) error {
	prog, err := asm.AssembleCached(ex.Campaign.Workload.Source)
	if err != nil {
		return fmt.Errorf("scifi: assemble workload %q: %w", ex.Campaign.Workload.Name, err)
	}
	t.prog = prog
	return nil
}

// WriteMemory downloads the workload image and the initial input data,
// and installs any recovery trap handlers.
func (t *Target) WriteMemory(ex *core.Experiment) error {
	if t.prog == nil {
		return fmt.Errorf("scifi: WriteMemory before LoadWorkload")
	}
	if err := t.cpu.LoadMemory(0, t.prog.Image); err != nil {
		return err
	}
	wl := &ex.Campaign.Workload
	for code, symbol := range wl.RecoveryHandlers {
		addr, err := t.prog.Symbol(symbol)
		if err != nil {
			return fmt.Errorf("scifi: recovery handler: %w", err)
		}
		t.cpu.SetTrapHandler(code, addr)
	}
	if ex.Campaign.EnvSim != nil {
		sim, err := t.envs.New(ex.Campaign.EnvSim.Name, ex.Campaign.EnvSim.Params)
		if err != nil {
			return err
		}
		t.sim = sim
		// Initial input data (paper §3.3: "the workload and initial
		// input data is downloaded").
		t.fwLogExchange(ex, nil)
		t.cpu.Ports().PushInput(wl.InputPort, sim.Exchange(nil)...)
	}
	return nil
}

// RunWorkload arms the experiment: the injection trigger is built and the
// detail-mode trace hook installed. On the simulated board execution is
// demand-driven, so "starting" the workload means arming it.
func (t *Target) RunWorkload(ex *core.Experiment) error {
	if !ex.IsReference() {
		trig, err := ex.Trigger.Build()
		if err != nil {
			return err
		}
		trig.Reset()
		t.trig = trig
	}
	if ex.DetailSink != nil {
		t.installDetailHook(ex)
	}
	return nil
}

// installDetailHook logs the observable system state after every machine
// instruction (detail mode, paper §3.3).
func (t *Target) installDetailHook(ex *core.Experiment) {
	t.cpu.TraceHook = func(c *thor.CPU) {
		sv, err := t.captureState(ex)
		if err != nil {
			return
		}
		_ = ex.DetailSink(t.detailStep, sv)
		t.detailStep++
	}
}

// WaitForBreakpoint runs until the injection trigger fires, exchanging
// environment data at iteration boundaries. If the workload terminates
// before the trigger fires, the experiment proceeds without injection
// (the fault's time point was never reached).
func (t *Target) WaitForBreakpoint(ex *core.Experiment) error {
	if t.trig == nil {
		return fmt.Errorf("scifi: WaitForBreakpoint before RunWorkload")
	}
	// Fast-forward over the fault-free prefix when a recorded checkpoint
	// covers this experiment's injection point (no-op otherwise).
	t.fwRestore(ex)
	budget := ex.Campaign.Termination.TimeoutCycles
	for {
		var fired bool
		var st thor.Status
		if t.fastPath {
			fired, st = trigger.RunUntilFast(t.cpu, t.trig, ex.Trigger, remaining(budget, t.cpu.Cycle()))
		} else {
			fired, st = trigger.RunUntil(t.cpu, t.trig, remaining(budget, t.cpu.Cycle()))
		}
		if fired {
			ex.InjectionCycle = t.cpu.Cycle()
			t.atInjectionPoint = true
			return nil
		}
		switch st {
		case thor.StatusIterationEnd:
			if err := t.exchange(ex); err != nil {
				return err
			}
		case thor.StatusRunning:
			// Timeout budget exhausted before the trigger fired.
			return nil
		default:
			// Halted or detected before the injection point.
			return nil
		}
	}
}

// InjectFault applies the fault to the scan vector, but only when the
// injection point was actually reached: if the workload terminated before
// the trigger fired, the fault's time point never occurred and the
// experiment is logged as not injected.
func (t *Target) InjectFault(ex *core.Experiment) error {
	if !t.atInjectionPoint {
		return nil
	}
	return t.Framework.InjectFault(ex)
}

// ReadScanChain captures the internal scan chain into the experiment.
func (t *Target) ReadScanChain(ex *core.Experiment) error {
	v, err := t.ctrl.ReadInternal()
	if err != nil {
		return err
	}
	ex.ScanVector = v
	return nil
}

// WriteScanChain writes the experiment's scan vector back to the device.
func (t *Target) WriteScanChain(ex *core.Experiment) error {
	if ex.ScanVector == nil {
		return fmt.Errorf("scifi: WriteScanChain with no scan vector")
	}
	return t.ctrl.WriteInternal(ex.ScanVector)
}

// exchange performs one environment-simulator data exchange at an
// iteration boundary and resumes the CPU.
func (t *Target) exchange(ex *core.Experiment) error {
	wl := &ex.Campaign.Workload
	outs := t.cpu.Ports().DrainOutput(wl.OutputPort)
	if ex.Result.Outputs == nil {
		ex.Result.Outputs = make(map[uint16][]uint32)
	}
	ex.Result.Outputs[wl.OutputPort] = append(ex.Result.Outputs[wl.OutputPort], outs...)
	if t.sim != nil {
		t.fwLogExchange(ex, outs)
		t.cpu.Ports().PushInput(wl.InputPort, t.sim.Exchange(outs)...)
	}
	t.iteration++
	return t.cpu.ResumeIteration()
}

// WaitForTermination resumes execution until a termination condition
// occurs: time-out, error detection, workload end, or the iteration limit
// (paper §3.2), reasserting persistent faults and exchanging environment
// data along the way.
func (t *Target) WaitForTermination(ex *core.Experiment) error {
	term := ex.Campaign.Termination
	persistent := ex.Fault != nil && ex.Fault.Kind.Persistent() && ex.Injected
	for {
		if t.cpu.Cycle() >= term.TimeoutCycles {
			t.finishOutcome(ex, campaign.OutcomeTimeout, nil)
			return nil
		}
		// At the loop top the CPU is at an instruction boundary in the
		// Running state: the place to capture forwarding checkpoints.
		// The slice budget is shaped so the run stops at the next
		// planned cycle (a no-op outside a recording reference run).
		t.fwMaybeRecord(ex)
		st := t.runCPU(t.fwSliceBudget(ex, minU64(runSlice, term.TimeoutCycles-t.cpu.Cycle())))
		switch st {
		case thor.StatusHalted:
			t.finishOutcome(ex, campaign.OutcomeCompleted, nil)
			return nil
		case thor.StatusDetected:
			t.finishOutcome(ex, campaign.OutcomeDetected, t.cpu.Detection())
			return nil
		case thor.StatusIterationEnd:
			if term.MaxIterations > 0 && t.iteration+1 >= term.MaxIterations {
				// Final iteration completed: drain outputs and end.
				wl := &ex.Campaign.Workload
				outs := t.cpu.Ports().DrainOutput(wl.OutputPort)
				if ex.Result.Outputs == nil {
					ex.Result.Outputs = make(map[uint16][]uint32)
				}
				ex.Result.Outputs[wl.OutputPort] = append(ex.Result.Outputs[wl.OutputPort], outs...)
				t.iteration++
				t.finishOutcome(ex, campaign.OutcomeCompleted, nil)
				return nil
			}
			if err := t.exchange(ex); err != nil {
				return err
			}
			if persistent {
				if err := t.reassert(ex); err != nil {
					return err
				}
			}
		case thor.StatusOutOfBudget:
			if err := t.cpu.ClearOutOfBudget(); err != nil {
				return err
			}
			if persistent {
				if err := t.reassert(ex); err != nil {
					return err
				}
			}
		case thor.StatusBreakpoint:
			// No breakpoints are armed during termination; continue.
		default:
			return fmt.Errorf("scifi: unexpected status %v during termination", st)
		}
	}
}

// reassert re-applies a persistent fault through the scan chain, reusing
// the target's scratch vector: this runs once per slice for the whole
// faulty remainder of the run.
func (t *Target) reassert(ex *core.Experiment) error {
	v := t.scanVectorScratch()
	if err := t.ctrl.ReadInternalInto(v); err != nil {
		return err
	}
	ex.Fault.Apply(v, ex.RNG)
	return t.ctrl.WriteInternal(v)
}

// scanVectorScratch returns the target's reusable internal-chain vector.
func (t *Target) scanVectorScratch() *bitvec.Vector {
	if t.scanScratch == nil || t.scanScratch.Len() != thor.ScanLen() {
		t.scanScratch = bitvec.New(thor.ScanLen())
	}
	return t.scanScratch
}

// finishOutcome fills the experiment outcome.
func (t *Target) finishOutcome(ex *core.Experiment, status campaign.OutcomeStatus, det *thor.Detection) {
	out := campaign.Outcome{
		Status:     status,
		Cycles:     t.cpu.Cycle(),
		Iterations: t.iteration,
	}
	if det != nil {
		out.Mechanism = det.Mechanism.String()
		out.DetectionCycle = det.Cycle
	}
	for _, ev := range t.cpu.Events() {
		if ev.Mechanism == thor.EDMAssertion && (det == nil || ev.Cycle != det.Cycle) {
			out.Recovered++
		}
	}
	// Drain any outputs emitted since the last exchange.
	wl := &ex.Campaign.Workload
	outs := t.cpu.Ports().DrainOutput(wl.OutputPort)
	if len(outs) > 0 {
		if ex.Result.Outputs == nil {
			ex.Result.Outputs = make(map[uint16][]uint32)
		}
		ex.Result.Outputs[wl.OutputPort] = append(ex.Result.Outputs[wl.OutputPort], outs...)
	}
	ex.Result.Outcome = out
}

// ReadMemory reads the workload's result symbols back from target memory.
func (t *Target) ReadMemory(ex *core.Experiment) error {
	if t.prog == nil {
		return fmt.Errorf("scifi: ReadMemory before LoadWorkload")
	}
	wl := &ex.Campaign.Workload
	words := wl.ResultWords
	if words <= 0 {
		words = 1
	}
	if ex.Result.Memory == nil {
		ex.Result.Memory = make(map[string][]byte, len(wl.ResultSymbols))
	}
	for _, sym := range wl.ResultSymbols {
		addr, err := t.prog.Symbol(sym)
		if err != nil {
			return fmt.Errorf("scifi: result symbol: %w", err)
		}
		b, err := t.cpu.ReadMemory(addr, words*4)
		if err != nil {
			return err
		}
		ex.Result.Memory[sym] = b
	}
	return nil
}

// captureState samples the observable system state for detail-mode
// logging: the scan chain (host-side read so the run is not perturbed)
// and current outputs.
func (t *Target) captureState(ex *core.Experiment) (*campaign.StateVector, error) {
	v := t.scanVectorScratch()
	if err := t.cpu.ScanReadInto(v); err != nil {
		return nil, err
	}
	scan, err := v.MarshalBinary()
	if err != nil {
		return nil, err
	}
	sv := &campaign.StateVector{Scan: scan}
	wl := &ex.Campaign.Workload
	if outs := t.cpu.Ports().PeekOutput(wl.OutputPort); len(outs) > 0 {
		sv.Outputs = map[uint16][]uint32{wl.OutputPort: outs}
	}
	return sv, nil
}

// runCPU runs one execution slice through the selected execution mode.
func (t *Target) runCPU(cycleBudget uint64) thor.Status {
	if t.fastPath {
		return t.cpu.RunFast(cycleBudget)
	}
	return t.cpu.Run(cycleBudget)
}

func remaining(budget, used uint64) uint64 {
	if used >= budget {
		return 0
	}
	return budget - used
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// Interface compliance.
var _ core.TargetSystem = (*Target)(nil)
