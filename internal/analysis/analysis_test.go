package analysis

import (
	"context"
	"math"
	"strings"
	"testing"

	"goofi/internal/campaign"
	"goofi/internal/core"
	"goofi/internal/faultmodel"
	"goofi/internal/scifi"
	"goofi/internal/sqldb"
	"goofi/internal/thor"
	"goofi/internal/trigger"
	"goofi/internal/workload"
)

// runSortCampaign executes a SCIFI campaign and returns its store.
func runSortCampaign(t *testing.T, name string, n int, seed int64) *campaign.Store {
	t.Helper()
	return runSortCampaignWithObserve(t, name, n, seed, nil)
}

func runSortCampaignWithObserve(t *testing.T, name string, n int, seed int64, observe []string) *campaign.Store {
	t.Helper()
	camp := &campaign.Campaign{
		Name:           name,
		TargetName:     "thor-board",
		ChainName:      "internal",
		Locations:      []string{"cpu"},
		Observe:        observe,
		FaultModel:     faultmodel.Spec{Kind: faultmodel.Transient},
		Trigger:        trigger.Spec{Kind: "cycle"},
		RandomWindow:   [2]uint64{10, 1600},
		NumExperiments: n,
		Seed:           seed,
		Termination:    campaign.Termination{TimeoutCycles: 100_000},
		Workload:       workload.Sort(),
		LogMode:        campaign.LogNormal,
	}
	st, err := campaign.NewStore(sqldb.Open())
	if err != nil {
		t.Fatal(err)
	}
	tsd := scifi.TargetSystemData("thor-board")
	if err := st.PutTargetSystem(tsd); err != nil {
		t.Fatal(err)
	}
	if err := st.PutCampaign(camp); err != nil {
		t.Fatal(err)
	}
	tgt := scifi.New(thor.DefaultConfig())
	r, err := core.NewRunner(tgt, core.SCIFI, camp, tsd, core.WithSink(st))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestWilsonInterval(t *testing.T) {
	iv := Wilson(50, 100)
	if math.Abs(iv.P-0.5) > 1e-9 {
		t.Errorf("P = %g", iv.P)
	}
	if iv.Lo > 0.5 || iv.Hi < 0.5 {
		t.Errorf("interval [%g, %g] excludes the point estimate", iv.Lo, iv.Hi)
	}
	if iv.Hi-iv.Lo > 0.25 {
		t.Errorf("interval too wide for n=100: %g", iv.Hi-iv.Lo)
	}
	// Edge cases.
	if iv := Wilson(0, 0); iv.N != 0 || iv.P != 0 {
		t.Errorf("Wilson(0,0) = %+v", iv)
	}
	if iv := Wilson(0, 20); iv.Lo != 0 {
		t.Errorf("Wilson(0,20).Lo = %g", iv.Lo)
	}
	if iv := Wilson(20, 20); iv.Hi != 1 {
		t.Errorf("Wilson(20,20).Hi = %g", iv.Hi)
	}
	// Wider n gives a tighter interval.
	narrow := Wilson(500, 1000)
	if narrow.Hi-narrow.Lo >= iv.Hi-iv.Lo {
		t.Error("interval does not tighten with n")
	}
}

func TestClassesAndEffectiveness(t *testing.T) {
	if !ClassDetected.Effective() || !ClassEscaped.Effective() {
		t.Error("detected/escaped must be effective")
	}
	if ClassLatent.Effective() || ClassOverwritten.Effective() {
		t.Error("latent/overwritten must be non-effective")
	}
	if ClassInvalidRun.Effective() {
		t.Error("invalid-run must be non-effective")
	}
	if len(AllClasses()) != 6 {
		t.Error("class list incomplete")
	}
}

// TestInvalidRunExcludedFromRatios: an invalid-run record counts in the
// class tally (against Total) but never in the injected population the
// effectiveness ratios are computed over.
func TestInvalidRunExcludedFromRatios(t *testing.T) {
	// Identical campaign twice: one analyzed untouched as the baseline,
	// one with an experiment record replaced by an invalid run.
	base, err := AnalyzeAndStore(runSortCampaign(t, "inv", 20, 7), "inv")
	if err != nil {
		t.Fatal(err)
	}
	st := runSortCampaign(t, "inv", 20, 7)

	// Replace one experiment's record with an invalid run, the way the
	// scheduler logs one after exhausting retries.
	name := campaign.ExperimentName("inv", 4)
	rec, err := st.GetExperiment(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.DeleteExperiment(name); err != nil {
		t.Fatal(err)
	}
	rec.Data.Injected = false
	rec.Data.InjectionCycle = 0
	rec.Data.Outcome = campaign.Outcome{
		Status:       campaign.OutcomeInvalidRun,
		Attempts:     3,
		HarnessError: "chaos: readScanChain: scan capture corrupted",
	}
	rec.State = campaign.StateVector{}
	if err := st.LogExperiment(rec); err != nil {
		t.Fatal(err)
	}

	rep, err := AnalyzeAndStore(st, "inv")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counts[ClassInvalidRun] != 1 {
		t.Errorf("invalid-run count = %d, want 1", rep.Counts[ClassInvalidRun])
	}
	if rep.Total != base.Total {
		t.Errorf("total = %d, want %d (invalid slot still accounted)", rep.Total, base.Total)
	}
	if rep.Injected != base.Injected-1 {
		t.Errorf("injected = %d, want %d (invalid run excluded)", rep.Injected, base.Injected-1)
	}
	if f := rep.Fraction(ClassInvalidRun); f != 1.0/float64(rep.Total) {
		t.Errorf("invalid-run fraction = %v, want 1/%d of total", f, rep.Total)
	}
	if !strings.Contains(rep.Render(), "invalid runs") {
		t.Error("report render does not mention invalid runs")
	}
}

func TestAnalyzeCampaign(t *testing.T) {
	st := runSortCampaign(t, "an", 60, 7)
	rep, err := AnalyzeAndStore(st, "an")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 60 {
		t.Fatalf("total = %d", rep.Total)
	}
	// Every experiment lands in exactly one class.
	sum := 0
	for _, c := range AllClasses() {
		sum += rep.Counts[c]
	}
	if sum != rep.Total {
		t.Errorf("class counts sum to %d, total %d", sum, rep.Total)
	}
	// With 60 random single register/cache flips, all four main classes
	// should generally appear; require at least detected + one
	// non-effective class.
	if rep.Counts[ClassDetected] == 0 {
		t.Error("no detected errors")
	}
	if rep.Counts[ClassOverwritten]+rep.Counts[ClassLatent] == 0 {
		t.Error("no non-effective errors")
	}
	// Coverage interval is consistent.
	eff := rep.Counts[ClassDetected] + rep.Counts[ClassEscaped]
	if rep.Coverage.N != eff {
		t.Errorf("coverage n = %d, effective = %d", rep.Coverage.N, eff)
	}
	if rep.Coverage.P < 0 || rep.Coverage.P > 1 {
		t.Errorf("coverage = %g", rep.Coverage.P)
	}
	// Mechanisms recorded for detections.
	mechTotal := 0
	for _, n := range rep.Mechanisms {
		mechTotal += n
	}
	if mechTotal != rep.Counts[ClassDetected] {
		t.Errorf("mechanism counts %d != detected %d", mechTotal, rep.Counts[ClassDetected])
	}
}

func TestRenderReport(t *testing.T) {
	st := runSortCampaign(t, "render", 20, 3)
	rep, err := AnalyzeAndStore(st, "render")
	if err != nil {
		t.Fatal(err)
	}
	text := rep.Render()
	for _, want := range []string{"detected", "escaped", "latent", "overwritten", "detection coverage"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}

func TestGeneratedSQLQueries(t *testing.T) {
	st := runSortCampaign(t, "gen", 40, 13)
	rep, err := AnalyzeAndStore(st, "gen")
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunGenerated(st, "gen")
	if err != nil {
		t.Fatal(err)
	}
	dist, ok := results["outcome-distribution"]
	if !ok || len(dist.Rows) == 0 {
		t.Fatal("outcome-distribution query returned nothing")
	}
	// The SQL aggregation must agree with the in-memory report.
	sqlCounts := make(map[string]int64)
	for _, row := range dist.Rows {
		sqlCounts[row[0].S] = row[1].I
	}
	for _, c := range AllClasses() {
		if int64(rep.Counts[c]) != sqlCounts[string(c)] {
			t.Errorf("class %s: report %d, SQL %d", c, rep.Counts[c], sqlCounts[string(c)])
		}
	}
	if mech, ok := results["detections-per-mechanism"]; ok && rep.Counts[ClassDetected] > 0 {
		if len(mech.Rows) == 0 {
			t.Error("no mechanism rows despite detections")
		}
	}
}

func TestWriteResultsReplacesOldRows(t *testing.T) {
	st := runSortCampaign(t, "rep", 10, 5)
	rep, err := AnalyzeAndStore(st, "rep")
	if err != nil {
		t.Fatal(err)
	}
	// Re-analyze: must not fail on duplicate keys.
	if err := WriteResults(st, rep); err != nil {
		t.Fatal(err)
	}
	r, err := st.DB().Query(`SELECT COUNT(*) FROM AnalysisResults WHERE campaignName = ?`,
		sqldb.Text("rep"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 10 {
		t.Errorf("results rows = %d, want 10", r.Rows[0][0].I)
	}
}

func TestRerunAfterAnalysisClearsResults(t *testing.T) {
	// Re-running a campaign after an analysis must not be blocked by the
	// AnalysisResults foreign keys: DeleteExperiments cascades.
	st := runSortCampaign(t, "rerunfk", 5, 3)
	if _, err := AnalyzeAndStore(st, "rerunfk"); err != nil {
		t.Fatal(err)
	}
	if err := st.DeleteExperiments("rerunfk"); err != nil {
		t.Fatalf("DeleteExperiments after analysis: %v", err)
	}
	recs, err := st.Experiments("rerunfk")
	if err != nil || len(recs) != 0 {
		t.Errorf("experiments remain: %d, %v", len(recs), err)
	}
	r, err := st.DB().Query(`SELECT COUNT(*) FROM AnalysisResults WHERE campaignName = ?`,
		sqldb.Text("rerunfk"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 0 {
		t.Errorf("analysis rows remain: %d", r.Rows[0][0].I)
	}
}

func TestAnalyzerMissingCampaign(t *testing.T) {
	st, err := campaign.NewStore(sqldb.Open())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(st, "ghost"); err == nil {
		t.Error("missing campaign accepted")
	}
}

func TestAnalyzerMissingReference(t *testing.T) {
	// A campaign stored but never run has no reference record.
	st, err := campaign.NewStore(sqldb.Open())
	if err != nil {
		t.Fatal(err)
	}
	tsd := scifi.TargetSystemData("thor-board")
	if err := st.PutTargetSystem(tsd); err != nil {
		t.Fatal(err)
	}
	camp := &campaign.Campaign{
		Name: "norun", TargetName: "thor-board", ChainName: "internal",
		Locations:      []string{"cpu"},
		FaultModel:     faultmodel.Spec{Kind: faultmodel.Transient},
		Trigger:        trigger.Spec{Kind: "cycle", Cycle: 5},
		NumExperiments: 1, Seed: 1,
		Termination: campaign.Termination{TimeoutCycles: 1000},
		Workload:    campaign.WorkloadSpec{Name: "w", Source: "halt"},
		LogMode:     campaign.LogNormal,
	}
	if err := st.PutCampaign(camp); err != nil {
		t.Fatal(err)
	}
	a, err := New(st, "norun")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(); err == nil {
		t.Error("analysis without reference run accepted")
	}
}

func TestFailSilenceViolations(t *testing.T) {
	st := runSortCampaign(t, "fs", 60, 7)
	rep, err := AnalyzeAndStore(st, "fs")
	if err != nil {
		t.Fatal(err)
	}
	// Fail-silence violations are a subset of escaped errors and equal
	// EscapedValue for batch workloads (no deadline in this campaign).
	if rep.FailSilence > rep.Counts[ClassEscaped] {
		t.Errorf("fail-silence %d exceeds escaped %d", rep.FailSilence, rep.Counts[ClassEscaped])
	}
	if rep.FailSilence != rep.EscapedValue {
		t.Errorf("fail-silence %d != escaped-value %d (no deadline configured)",
			rep.FailSilence, rep.EscapedValue)
	}
	for _, d := range rep.Details {
		if d.FailSilence() && d.Class != ClassEscaped {
			t.Errorf("%s fail-silence in class %s", d.Experiment, d.Class)
		}
	}
}

func TestObserveRestrictsLatentComparison(t *testing.T) {
	// An identical campaign observed only on cpu.r1 reports fewer (or
	// equal) latent errors than one observing everything: flips parked
	// in unobserved registers are no longer visible differences.
	build := func(name string, observe []string) *Report {
		st := runSortCampaignWithObserve(t, name, 40, 9, observe)
		rep, err := AnalyzeAndStore(st, name)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	full := build("obs-full", nil)
	narrow := build("obs-narrow", []string{"cpu.r1"})
	if narrow.Counts[ClassLatent] > full.Counts[ClassLatent] {
		t.Errorf("narrow observation found more latent errors (%d) than full (%d)",
			narrow.Counts[ClassLatent], full.Counts[ClassLatent])
	}
	if narrow.Counts[ClassOverwritten] < full.Counts[ClassOverwritten] {
		t.Errorf("narrow observation reduced overwritten count: %d < %d",
			narrow.Counts[ClassOverwritten], full.Counts[ClassOverwritten])
	}
	if narrow.Counts[ClassLatent] == full.Counts[ClassLatent] {
		t.Log("note: identical latent counts; seed produced no unobserved-register flips")
	}
}

func TestDetectionLatencyPositive(t *testing.T) {
	st := runSortCampaign(t, "lat", 50, 21)
	rep, err := AnalyzeAndStore(st, "lat")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counts[ClassDetected] > 0 && rep.MeanDetectionLatency < 0 {
		t.Errorf("mean latency = %g", rep.MeanDetectionLatency)
	}
	for _, d := range rep.Details {
		if d.Class == ClassDetected && d.Latency > 200_000 {
			t.Errorf("experiment %s latency %d exceeds timeout", d.Experiment, d.Latency)
		}
	}
}
