package analysis

import (
	"context"
	"strings"
	"testing"

	"goofi/internal/campaign"
	"goofi/internal/core"
	"goofi/internal/faultmodel"
	"goofi/internal/scifi"
	"goofi/internal/sqldb"
	"goofi/internal/thor"
	"goofi/internal/trigger"
	"goofi/internal/workload"
)

// runDetailCampaign executes a small detail-mode SCIFI campaign.
func runDetailCampaign(t *testing.T, name string, n int, seed int64) *campaign.Store {
	t.Helper()
	camp := &campaign.Campaign{
		Name:           name,
		TargetName:     "thor-board",
		ChainName:      "internal",
		Locations:      []string{"cpu.r1", "cpu.r2", "cpu.r7"},
		FaultModel:     faultmodel.Spec{Kind: faultmodel.Transient},
		Trigger:        trigger.Spec{Kind: "cycle"},
		RandomWindow:   [2]uint64{100, 1200},
		NumExperiments: n,
		Seed:           seed,
		Termination:    campaign.Termination{TimeoutCycles: 30_000},
		Workload:       workload.Sort(),
		LogMode:        campaign.LogDetail,
	}
	st, err := campaign.NewStore(sqldb.Open())
	if err != nil {
		t.Fatal(err)
	}
	tsd := scifi.TargetSystemData("thor-board")
	if err := st.PutTargetSystem(tsd); err != nil {
		t.Fatal(err)
	}
	if err := st.PutCampaign(camp); err != nil {
		t.Fatal(err)
	}
	r, err := core.NewRunner(scifi.New(thor.DefaultConfig()), core.SCIFI, camp, tsd, core.WithSink(st))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestPropagationCurve(t *testing.T) {
	st := runDetailCampaign(t, "prop", 4, 3)
	recs, err := st.Experiments("prop")
	if err != nil {
		t.Fatal(err)
	}
	analyzed := 0
	for _, rec := range recs {
		if rec.IsReference() || !rec.Data.Injected {
			continue
		}
		p, err := PropagationCurve(st, rec.Name)
		if err != nil {
			t.Fatalf("PropagationCurve(%s): %v", rec.Name, err)
		}
		analyzed++
		if p.Steps == 0 {
			t.Errorf("%s: empty propagation", rec.Name)
			continue
		}
		// The curve must be internally consistent.
		if p.FirstError >= 0 {
			if p.Points[p.FirstError].DiffBits == 0 {
				t.Errorf("%s: FirstError step has zero diff", rec.Name)
			}
			for i := 0; i < p.FirstError; i++ {
				if p.Points[i].DiffBits != 0 {
					t.Errorf("%s: diff before FirstError at step %d", rec.Name, i)
				}
			}
		}
		max := 0
		for _, pt := range p.Points {
			if pt.DiffBits > max {
				max = pt.DiffBits
			}
		}
		if max != p.MaxDiffBits {
			t.Errorf("%s: MaxDiffBits %d != observed %d", rec.Name, p.MaxDiffBits, max)
		}
		if p.FirstDivergence >= 0 && p.FirstError >= 0 && p.FirstDivergence < p.FirstError {
			// Control flow can only diverge at or after the first
			// state error when PC is among observed locations... PC is
			// not in our observed set here, so divergence markers use
			// the full PC field; state errors use the observed subset.
			t.Logf("%s: divergence (%d) before observed state error (%d) — PC outside observe set",
				rec.Name, p.FirstDivergence, p.FirstError)
		}
	}
	if analyzed == 0 {
		t.Fatal("no injected experiments to analyze")
	}
}

func TestPropagationSummaryRenders(t *testing.T) {
	st := runDetailCampaign(t, "prop2", 2, 9)
	recs, err := st.Experiments("prop2")
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.IsReference() || !rec.Data.Injected {
			continue
		}
		p, err := PropagationCurve(st, rec.Name)
		if err != nil {
			t.Fatal(err)
		}
		s := p.Summary()
		if !strings.Contains(s, "propagation of") || !strings.Contains(s, "corrupted bits") {
			t.Errorf("summary = %q", s)
		}
		return
	}
	t.Fatal("no injected experiment found")
}

func TestPropagationRequiresDetailTraces(t *testing.T) {
	// A normal-mode campaign has no traces.
	st := runSortCampaign(t, "noprop", 2, 5)
	recs, err := st.Experiments("noprop")
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.IsReference() {
			continue
		}
		if _, err := PropagationCurve(st, rec.Name); err == nil {
			t.Error("propagation without detail traces accepted")
		}
		break
	}
	if _, err := PropagationCurve(st, "ghost"); err == nil {
		t.Error("propagation of unknown experiment accepted")
	}
}

func TestPropagationReferenceIsZeroDiff(t *testing.T) {
	// Comparing the reference against itself (first steps of two equal
	// traces) must show zero corrupted bits: an uninjected experiment's
	// trace matches the reference until termination.
	st := runDetailCampaign(t, "prop3", 4, 3)
	recs, err := st.Experiments("prop3")
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.IsReference() || rec.Data.Injected {
			continue
		}
		p, err := PropagationCurve(st, rec.Name)
		if err != nil {
			t.Fatal(err)
		}
		if p.FirstError != -1 || p.MaxDiffBits != 0 {
			t.Errorf("uninjected run shows errors: first=%d max=%d", p.FirstError, p.MaxDiffBits)
		}
		return
	}
	t.Skip("every experiment injected; nothing to verify")
}
