package analysis

import (
	"fmt"

	"goofi/internal/campaign"
	"goofi/internal/sqldb"
)

// This file implements the paper's §4 extension "automatic generation of
// software for analysing the database table LoggedSystemState": instead of
// the user writing tailor-made scripts, the analyzer materialises its
// per-experiment classification into an AnalysisResults table and
// generates the SQL that computes the dependability measures from it.

// ResultsDDL creates the AnalysisResults table. The foreign key ties each
// row back to its LoggedSystemState record.
const ResultsDDL = `CREATE TABLE IF NOT EXISTS AnalysisResults (
	experimentName TEXT PRIMARY KEY,
	campaignName   TEXT NOT NULL,
	class          TEXT NOT NULL,
	mechanism      TEXT,
	cycles         INTEGER,
	latency        INTEGER,
	wrongOutput    INTEGER NOT NULL,
	wrongMemory    INTEGER NOT NULL,
	timeliness     INTEGER NOT NULL,
	stateDiffBits  INTEGER NOT NULL,
	recovered      INTEGER NOT NULL,
	FOREIGN KEY (experimentName) REFERENCES LoggedSystemState (experimentName)
)`

// ResultsCampaignIndex backs the generated queries, which all filter on
// campaignName equality.
const ResultsCampaignIndex = `CREATE INDEX IF NOT EXISTS AnalysisResultsByCampaign
	ON AnalysisResults (campaignName)`

// WriteResults materialises a report's per-experiment details into the
// AnalysisResults table, replacing earlier results for the campaign.
func WriteResults(store *campaign.Store, rep *Report) error {
	db := store.DB()
	if _, err := db.Exec(ResultsDDL); err != nil {
		return fmt.Errorf("analysis: create results table: %w", err)
	}
	if _, err := db.Exec(ResultsCampaignIndex); err != nil {
		return fmt.Errorf("analysis: create results index: %w", err)
	}
	if _, err := db.Exec(`DELETE FROM AnalysisResults WHERE campaignName = ?`,
		sqldb.Text(rep.Campaign)); err != nil {
		return err
	}
	for _, d := range rep.Details {
		mech := sqldb.Null()
		if d.Mechanism != "" {
			mech = sqldb.Text(d.Mechanism)
		}
		_, err := db.Exec(`INSERT INTO AnalysisResults VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)`,
			sqldb.Text(d.Experiment), sqldb.Text(rep.Campaign), sqldb.Text(string(d.Class)),
			mech, sqldb.Int(int64(d.Cycles)), sqldb.Int(int64(d.Latency)),
			sqldb.Bool(d.WrongOutput), sqldb.Bool(d.WrongMemory), sqldb.Bool(d.Timeliness),
			sqldb.Int(int64(d.StateDiffBits)), sqldb.Int(int64(d.Recovered)))
		if err != nil {
			return fmt.Errorf("analysis: insert result for %s: %w", d.Experiment, err)
		}
	}
	return nil
}

// NamedQuery is one generated analysis query.
type NamedQuery struct {
	Name string
	SQL  string
}

// GeneratedQueries returns the analysis SQL generated for a campaign —
// the queries a user of the paper's tool would have written by hand.
func GeneratedQueries() []NamedQuery {
	return []NamedQuery{
		{
			Name: "outcome-distribution",
			SQL: `SELECT class, COUNT(*) AS n FROM AnalysisResults
				WHERE campaignName = ? GROUP BY class ORDER BY n DESC`,
		},
		{
			Name: "detections-per-mechanism",
			SQL: `SELECT mechanism, COUNT(*) AS n, AVG(latency) AS meanLatency
				FROM AnalysisResults
				WHERE campaignName = ? AND class = 'detected'
				GROUP BY mechanism ORDER BY n DESC`,
		},
		{
			Name: "escape-breakdown",
			SQL: `SELECT timeliness, COUNT(*) AS n FROM AnalysisResults
				WHERE campaignName = ? AND class = 'escaped'
				GROUP BY timeliness`,
		},
		{
			Name: "latent-severity",
			SQL: `SELECT COUNT(*) AS n, AVG(stateDiffBits) AS meanBits, MAX(stateDiffBits) AS maxBits
				FROM AnalysisResults
				WHERE campaignName = ? AND class = 'latent'`,
		},
		{
			Name: "slowest-detections",
			SQL: `SELECT experimentName, mechanism, latency FROM AnalysisResults
				WHERE campaignName = ? AND class = 'detected'
				ORDER BY latency DESC LIMIT 10`,
		},
		{
			Name: "invalid-runs",
			SQL: `SELECT experimentName FROM AnalysisResults
				WHERE campaignName = ? AND class = 'invalid-run'
				ORDER BY experimentName`,
		},
		{
			Name: "recovery-activity",
			SQL: `SELECT SUM(recovered) AS totalRecoveries, COUNT(*) AS experiments
				FROM AnalysisResults WHERE campaignName = ?`,
		},
	}
}

// RunGenerated executes every generated query for a campaign.
func RunGenerated(store *campaign.Store, campaignName string) (map[string]*sqldb.Result, error) {
	out := make(map[string]*sqldb.Result)
	for _, q := range GeneratedQueries() {
		r, err := store.DB().Query(q.SQL, sqldb.Text(campaignName))
		if err != nil {
			return nil, fmt.Errorf("analysis: generated query %q: %w", q.Name, err)
		}
		out[q.Name] = r
	}
	return out, nil
}

// AnalyzeAndStore is the one-call analysis phase: classify, materialise,
// and return the report.
func AnalyzeAndStore(store *campaign.Store, campaignName string) (*Report, error) {
	a, err := New(store, campaignName)
	if err != nil {
		return nil, err
	}
	rep, err := a.Run()
	if err != nil {
		return nil, err
	}
	if err := WriteResults(store, rep); err != nil {
		return nil, err
	}
	return rep, nil
}
