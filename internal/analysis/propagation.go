package analysis

import (
	"fmt"

	"goofi/internal/bitvec"
	"goofi/internal/campaign"
)

// This file implements error propagation analysis over detail-mode traces:
// "The detail mode operation is used to produce an execution trace,
// allowing the error propagation to be analysed in detail" (paper §3.3).
// Comparing a faulty run's per-instruction state against the fault-free
// reference trace shows when the error appears, how it spreads through
// the state elements, and whether it contracts (overwritten) or grows
// until detection or failure.

// PropagationPoint is the error extent at one instruction of the trace.
type PropagationPoint struct {
	// Step is the instruction index within the trace.
	Step int
	// DiffBits is the number of observed scan bits differing from the
	// reference at this step.
	DiffBits int
	// PC is the faulty run's program counter at this step, when the PC
	// is part of the observed state (0 otherwise).
	PC uint32
	// Diverged reports whether control flow differs from the reference
	// (PCs disagree).
	Diverged bool
}

// Propagation is the full error propagation curve of one experiment.
type Propagation struct {
	Experiment string
	Reference  string
	Points     []PropagationPoint
	// FirstError is the step where state first differs (-1 if never).
	FirstError int
	// FirstDivergence is the step where control flow first differs
	// (-1 if never).
	FirstDivergence int
	// MaxDiffBits is the peak error extent.
	MaxDiffBits int
	// Steps is the number of compared steps (the shorter trace bounds
	// the comparison; a detected run's trace ends at detection).
	Steps int
}

// PropagationCurve compares an experiment's detail trace against the
// reference run's detail trace. Both must have been produced in detail
// mode (campaign LogMode detail, or a detail-mode re-run).
func PropagationCurve(store *campaign.Store, expName string) (*Propagation, error) {
	exp, err := store.GetExperiment(expName)
	if err != nil {
		return nil, err
	}
	refName := campaign.ReferenceName(exp.Campaign)
	expTrace, err := store.Trace(expName)
	if err != nil {
		return nil, err
	}
	if len(expTrace) == 0 {
		return nil, fmt.Errorf("analysis: experiment %q has no detail trace", expName)
	}
	refTrace, err := store.Trace(refName)
	if err != nil {
		return nil, err
	}
	if len(refTrace) == 0 {
		return nil, fmt.Errorf("analysis: reference %q has no detail trace", refName)
	}

	a, err := New(store, exp.Campaign)
	if err != nil {
		return nil, err
	}
	pcField, havePC := a.pcLocation()

	n := len(expTrace)
	if len(refTrace) < n {
		n = len(refTrace)
	}
	p := &Propagation{
		Experiment:      expName,
		Reference:       refName,
		FirstError:      -1,
		FirstDivergence: -1,
		Steps:           n,
	}
	for i := 0; i < n; i++ {
		var ev, rv bitvec.Vector
		if err := ev.UnmarshalBinary(expTrace[i].State.Scan); err != nil {
			return nil, fmt.Errorf("analysis: trace step %d: %w", i, err)
		}
		if err := rv.UnmarshalBinary(refTrace[i].State.Scan); err != nil {
			return nil, fmt.Errorf("analysis: reference step %d: %w", i, err)
		}
		if ev.Len() != rv.Len() {
			return nil, fmt.Errorf("analysis: trace state length mismatch at step %d", i)
		}
		x, err := ev.Xor(&rv)
		if err != nil {
			return nil, err
		}
		diff := 0
		for _, b := range x.OnesPositions() {
			for _, loc := range a.observeMask {
				if b >= loc.Offset && b < loc.End() {
					diff++
					break
				}
			}
		}
		pt := PropagationPoint{Step: i, DiffBits: diff}
		if havePC {
			expPC := uint32(ev.Uint64(pcField.Offset, pcField.Width))
			refPC := uint32(rv.Uint64(pcField.Offset, pcField.Width))
			pt.PC = expPC
			pt.Diverged = expPC != refPC
		}
		if diff > 0 && p.FirstError < 0 {
			p.FirstError = i
		}
		if pt.Diverged && p.FirstDivergence < 0 {
			p.FirstDivergence = i
		}
		if diff > p.MaxDiffBits {
			p.MaxDiffBits = diff
		}
		p.Points = append(p.Points, pt)
	}
	return p, nil
}

// pcLocation finds the program counter in the observed chain map.
func (a *Analyzer) pcLocation() (loc struct{ Offset, Width int }, ok bool) {
	chainName := a.camp.ChainName
	var err error
	m := &a.tsd.Chains[0]
	if chainName != "" {
		if m, err = a.tsd.Chain(chainName); err != nil {
			return loc, false
		}
	}
	l, err := m.Find("cpu.pc")
	if err != nil {
		return loc, false
	}
	loc.Offset, loc.Width = l.Offset, l.Width
	return loc, true
}

// Summary renders the propagation curve compactly: the error extent at a
// few sample points plus the key events.
func (p *Propagation) Summary() string {
	out := fmt.Sprintf("propagation of %s vs %s over %d steps:\n", p.Experiment, p.Reference, p.Steps)
	out += fmt.Sprintf("  first state error at step %d, first control-flow divergence at step %d, peak extent %d bits\n",
		p.FirstError, p.FirstDivergence, p.MaxDiffBits)
	stride := len(p.Points) / 8
	if stride == 0 {
		stride = 1
	}
	for i := 0; i < len(p.Points); i += stride {
		pt := p.Points[i]
		marker := ""
		if pt.Diverged {
			marker = " (diverged)"
		}
		out += fmt.Sprintf("  step %5d: %4d corrupted bits%s\n", pt.Step, pt.DiffBits, marker)
	}
	return out
}
