package analysis

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"goofi/internal/campaign"
)

// Phase-time analysis over the CampaignTelemetry table: where a
// campaign's wall-clock time went, per phase and per board. This is
// separate from the outcome Report — it describes the harness, not the
// target — and is only available when the campaign ran with telemetry
// enabled (goofi run -telemetry-addr or -progress records spans).

// PhaseTime aggregates one phase's spans.
type PhaseTime struct {
	Phase  string
	Spans  int
	WallNS int64
	Cycles uint64 // emulated cycles covered (end - start per span)
}

// PhaseTimeReport is the aggregate of a campaign's stored spans.
type PhaseTimeReport struct {
	Campaign string
	Phases   []PhaseTime // sorted by wall time, descending
	// BoardWallNS is experiment wall time per board (board >= 0 only).
	BoardWallNS map[int]int64
	TotalNS     int64
}

// PhaseTimes builds the phase-time report for a stored campaign, or nil
// when the campaign has no telemetry spans.
func PhaseTimes(store *campaign.Store, campaignName string) (*PhaseTimeReport, error) {
	spans, err := store.TelemetrySpans(campaignName)
	if err != nil {
		return nil, err
	}
	if len(spans) == 0 {
		return nil, nil
	}
	byPhase := make(map[string]*PhaseTime)
	rep := &PhaseTimeReport{Campaign: campaignName, BoardWallNS: make(map[int]int64)}
	for _, sp := range spans {
		pt, ok := byPhase[sp.Phase]
		if !ok {
			pt = &PhaseTime{Phase: sp.Phase}
			byPhase[sp.Phase] = pt
		}
		pt.Spans++
		pt.WallNS += sp.WallNS
		if sp.EndCycle > sp.StartCycle {
			pt.Cycles += sp.EndCycle - sp.StartCycle
		}
		rep.TotalNS += sp.WallNS
		if sp.Board >= 0 {
			rep.BoardWallNS[sp.Board] += sp.WallNS
		}
	}
	for _, pt := range byPhase {
		rep.Phases = append(rep.Phases, *pt)
	}
	sort.Slice(rep.Phases, func(i, j int) bool {
		if rep.Phases[i].WallNS != rep.Phases[j].WallNS {
			return rep.Phases[i].WallNS > rep.Phases[j].WallNS
		}
		return rep.Phases[i].Phase < rep.Phases[j].Phase
	})
	return rep, nil
}

// Render formats the report for the CLI.
func (r *PhaseTimeReport) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Phase time (campaign %s)\n", r.Campaign)
	for _, pt := range r.Phases {
		share := 0.0
		if r.TotalNS > 0 {
			share = 100 * float64(pt.WallNS) / float64(r.TotalNS)
		}
		fmt.Fprintf(&sb, "  %-12s %10v  %5.1f%%  (%d spans", pt.Phase,
			time.Duration(pt.WallNS).Round(time.Microsecond), share, pt.Spans)
		if pt.Cycles > 0 {
			fmt.Fprintf(&sb, ", %d cycles", pt.Cycles)
		}
		sb.WriteString(")\n")
	}
	if len(r.BoardWallNS) > 1 {
		boards := make([]int, 0, len(r.BoardWallNS))
		for b := range r.BoardWallNS {
			boards = append(boards, b)
		}
		sort.Ints(boards)
		sb.WriteString("  Board utilization:\n")
		for _, b := range boards {
			fmt.Fprintf(&sb, "    board %d: %v\n", b,
				time.Duration(r.BoardWallNS[b]).Round(time.Microsecond))
		}
	}
	return sb.String()
}
