package analysis

import (
	"strings"
	"testing"

	"goofi/internal/campaign"
	"goofi/internal/faultmodel"
	"goofi/internal/scifi"
	"goofi/internal/sqldb"
	"goofi/internal/telemetry"
	"goofi/internal/trigger"
	"goofi/internal/workload"
)

func phaseTimeStore(t *testing.T) *campaign.Store {
	t.Helper()
	st, err := campaign.NewStore(sqldb.Open())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutTargetSystem(scifi.TargetSystemData("thor-board")); err != nil {
		t.Fatal(err)
	}
	if err := st.PutCampaign(&campaign.Campaign{
		Name: "pt", TargetName: "thor-board", ChainName: "internal",
		Locations: []string{"cpu"}, RandomWindow: [2]uint64{10, 1600},
		FaultModel:     faultmodel.Spec{Kind: faultmodel.Transient},
		Trigger:        trigger.Spec{Kind: "cycle"},
		Workload:       workload.Sort(),
		Termination:    campaign.Termination{TimeoutCycles: 100_000},
		NumExperiments: 2, LogMode: campaign.LogNormal,
	}); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestPhaseTimes aggregates stored spans per phase and per board, and
// returns nil (not an empty report) for campaigns without telemetry.
func TestPhaseTimes(t *testing.T) {
	st := phaseTimeStore(t)
	rep, err := PhaseTimes(st, "pt")
	if err != nil {
		t.Fatal(err)
	}
	if rep != nil {
		t.Fatalf("no spans stored, report = %+v, want nil", rep)
	}
	spans := []telemetry.SpanRecord{
		{Phase: "plan", Board: -1, Seq: -1, WallNS: 100},
		{Phase: "reference", Board: -1, Seq: -1, EndCycle: 500, WallNS: 300},
		{Phase: "experiment", Board: 0, Seq: 0, StartCycle: 100, EndCycle: 600, WallNS: 400},
		{Phase: "experiment", Board: 1, Seq: 1, EndCycle: 700, WallNS: 200},
	}
	if err := st.LogTelemetry("pt", spans); err != nil {
		t.Fatal(err)
	}
	rep, err = PhaseTimes(st, "pt")
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("report = nil with spans stored")
	}
	if rep.TotalNS != 1000 {
		t.Errorf("TotalNS = %d, want 1000", rep.TotalNS)
	}
	// Sorted by wall time descending: experiment (600), reference (300),
	// plan (100).
	if len(rep.Phases) != 3 || rep.Phases[0].Phase != "experiment" ||
		rep.Phases[1].Phase != "reference" || rep.Phases[2].Phase != "plan" {
		t.Fatalf("phases = %+v", rep.Phases)
	}
	if rep.Phases[0].Spans != 2 || rep.Phases[0].WallNS != 600 {
		t.Errorf("experiment aggregate = %+v", rep.Phases[0])
	}
	if rep.Phases[0].Cycles != 500+700 {
		t.Errorf("experiment cycles = %d, want 1200", rep.Phases[0].Cycles)
	}
	if rep.BoardWallNS[0] != 400 || rep.BoardWallNS[1] != 200 {
		t.Errorf("board wall = %+v", rep.BoardWallNS)
	}
	out := rep.Render()
	for _, want := range []string{"Phase time (campaign pt)", "experiment", "Board utilization", "board 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}
