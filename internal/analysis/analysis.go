// Package analysis implements GOOFI's analysis phase (paper §3.4): it
// classifies each logged fault injection experiment against the campaign's
// fault-free reference run into the paper's taxonomy —
//
//	Effective errors:
//	  Detected errors    — caught by an error detection mechanism,
//	                       classified per mechanism
//	  Escaped errors     — failures that escaped the EDMs: incorrect
//	                       results or timeliness violations
//	Non-effective errors:
//	  Latent errors      — state differs from the reference but no
//	                       failure and no detection was observed
//	  Overwritten errors — no observable difference at all
//
// and derives dependability measures (error detection coverage with
// binomial confidence intervals). It also generates and runs the SQL
// analysis queries over the LoggedSystemState-derived results table — the
// paper's §4 "automatic generation of software for analysing the
// LoggedSystemState table".
package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"goofi/internal/bitvec"
	"goofi/internal/campaign"
	"goofi/internal/scanchain"
)

// Class is one leaf of the paper's outcome taxonomy.
type Class string

// Outcome classes.
const (
	// ClassDetected is an effective error caught by an EDM.
	ClassDetected Class = "detected"
	// ClassEscaped is an effective error that escaped the EDMs,
	// causing an incorrect result or a timeliness violation.
	ClassEscaped Class = "escaped"
	// ClassLatent is a non-effective error still present in system
	// state at termination.
	ClassLatent Class = "latent"
	// ClassOverwritten is a non-effective error that left no trace.
	ClassOverwritten Class = "overwritten"
	// ClassNotInjected marks experiments whose injection point was
	// never reached (the workload ended first).
	ClassNotInjected Class = "not-injected"
	// ClassInvalidRun marks experiments the test harness could not
	// complete even after retries (board wedge, scan corruption). They
	// carry no usable system state and are excluded from every
	// effectiveness ratio — the paper's discarded experiments.
	ClassInvalidRun Class = "invalid-run"
)

// AllClasses lists the classes in report order.
func AllClasses() []Class {
	return []Class{ClassDetected, ClassEscaped, ClassLatent, ClassOverwritten,
		ClassNotInjected, ClassInvalidRun}
}

// Effective reports whether the class counts as an effective error.
func (c Class) Effective() bool { return c == ClassDetected || c == ClassEscaped }

// Details is the full classification of one experiment.
type Details struct {
	Experiment    string
	Class         Class
	Mechanism     string // for detected errors
	WrongOutput   bool   // outputs differ from reference
	WrongMemory   bool   // result memory differs from reference
	Timeliness    bool   // deadline or timeout violated
	StateDiffBits int    // differing observed scan bits at termination
	Cycles        uint64
	Latency       uint64 // injection-to-detection cycles, detected only
	Recovered     int    // assertion recoveries during the run
}

// FailSilence reports whether the experiment is a fail-silence violation:
// the system delivered wrong values while appearing healthy (completed on
// time, nothing detected) — the paper's §2.3 motivating scenario for
// detail-mode re-runs.
func (d *Details) FailSilence() bool {
	return d.Class == ClassEscaped && (d.WrongOutput || d.WrongMemory) && !d.Timeliness
}

// Interval is a proportion with its 95% Wilson score confidence interval.
type Interval struct {
	P      float64
	Lo, Hi float64
	N      int // sample size
}

// Wilson computes the 95% Wilson score interval for k successes of n.
func Wilson(k, n int) Interval {
	if n == 0 {
		return Interval{}
	}
	const z = 1.959964 // 97.5th percentile of the standard normal
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	centre := (p + z*z/(2*nf)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf))
	return Interval{P: p, Lo: math.Max(0, centre-half), Hi: math.Min(1, centre+half), N: n}
}

// String renders the interval as "p [lo, hi] (n)".
func (iv Interval) String() string {
	return fmt.Sprintf("%.3f [%.3f, %.3f] (n=%d)", iv.P, iv.Lo, iv.Hi, iv.N)
}

// Report is the campaign-level analysis result.
type Report struct {
	Campaign   string
	Total      int
	Injected   int
	Counts     map[Class]int
	Mechanisms map[string]int
	// EscapedValue / EscapedTiming split the escaped class.
	EscapedValue  int
	EscapedTiming int
	// FailSilence counts escaped errors that are fail-silence
	// violations (wrong values delivered on time, nothing detected).
	FailSilence int
	// Coverage is the error detection coverage: detected / effective.
	Coverage Interval
	// EffectiveRate is effective / injected.
	EffectiveRate Interval
	// MeanDetectionLatency is the mean injection-to-detection time in
	// cycles over detected experiments.
	MeanDetectionLatency float64
	// OutcomeClasses counts the process-boundary outcome classes of
	// live-process (proc) experiments: masked, sdc, crash, hang. Empty
	// for scan-chain targets.
	OutcomeClasses map[campaign.OutcomeStatus]int
	// Recovered is the total number of assertion recoveries.
	Recovered int
	// Details holds the per-experiment classifications.
	Details []Details
}

// Fraction returns a class's share of the relevant population: injected
// experiments for the four outcome classes, all experiments for the
// not-injected and invalid-run classes.
func (r *Report) Fraction(c Class) float64 {
	base := r.Injected
	if c == ClassNotInjected || c == ClassInvalidRun {
		base = r.Total
	}
	if base == 0 {
		return 0
	}
	return float64(r.Counts[c]) / float64(base)
}

// Analyzer classifies a campaign's experiments.
type Analyzer struct {
	store *campaign.Store
	camp  *campaign.Campaign
	tsd   *campaign.TargetSystemData

	observeMask []scanchain.Location
}

// New builds an analyzer for a stored campaign.
func New(store *campaign.Store, campaignName string) (*Analyzer, error) {
	camp, err := store.GetCampaign(campaignName)
	if err != nil {
		return nil, err
	}
	tsd, err := store.GetTargetSystem(camp.TargetName)
	if err != nil {
		return nil, err
	}
	a := &Analyzer{store: store, camp: camp, tsd: tsd}
	if err := a.resolveObserve(); err != nil {
		return nil, err
	}
	return a, nil
}

// resolveObserve determines which scan locations participate in the latent
// comparison: the campaign's observe list, or every writable location of
// the chain (read-only cells like cycle counters always differ between
// runs and are excluded unless explicitly selected).
func (a *Analyzer) resolveObserve() error {
	chainName := a.camp.ChainName
	var m *scanchain.Map
	var err error
	if chainName == "" {
		if len(a.tsd.Chains) == 0 {
			return fmt.Errorf("analysis: target %q has no chains", a.tsd.Name)
		}
		m = &a.tsd.Chains[0]
	} else if m, err = a.tsd.Chain(chainName); err != nil {
		return err
	}
	if len(a.camp.Observe) > 0 {
		a.observeMask = m.Select(a.camp.Observe...)
	} else {
		a.observeMask = m.Writable()
	}
	return nil
}

// classify applies the taxonomy to one experiment.
func (a *Analyzer) classify(rec, ref *campaign.ExperimentRecord) (Details, error) {
	d := Details{
		Experiment: rec.Name,
		Cycles:     rec.Data.Outcome.Cycles,
		Recovered:  rec.Data.Outcome.Recovered,
	}
	// Invalid runs are checked before the injected flag: a harness
	// failure aborts the experiment before injection, so Injected is
	// false, but the run must not be counted as a (valid) not-injected
	// experiment either.
	if rec.Data.Outcome.Status == campaign.OutcomeInvalidRun {
		d.Class = ClassInvalidRun
		return d, nil
	}
	if !rec.Data.Injected {
		d.Class = ClassNotInjected
		return d, nil
	}
	out := rec.Data.Outcome
	// Live-process targets classify outcomes at the process boundary
	// (ZOFI's taxonomy); map them onto the paper's classes directly —
	// there is no scan state to diff. A crash is a detected error (the
	// hardware/OS trap is the detection mechanism), a hang is a
	// timeliness violation, silent data corruption escaped, and a masked
	// fault left no observable trace.
	switch out.Status {
	case campaign.OutcomeMasked:
		d.Class = ClassOverwritten
		return d, nil
	case campaign.OutcomeSDC:
		d.Class = ClassEscaped
		d.WrongOutput = true
		return d, nil
	case campaign.OutcomeCrash:
		d.Class = ClassDetected
		d.Mechanism = out.Mechanism
		return d, nil
	case campaign.OutcomeHang:
		d.Class = ClassEscaped
		d.Timeliness = true
		return d, nil
	}
	if out.Status == campaign.OutcomeDetected {
		d.Class = ClassDetected
		d.Mechanism = out.Mechanism
		if out.DetectionCycle >= rec.Data.InjectionCycle {
			d.Latency = out.DetectionCycle - rec.Data.InjectionCycle
		}
		return d, nil
	}
	// Escaped? Wrong results or timeliness violation. Control workloads
	// can declare a tolerance and a tail window so transient deviations
	// the controller recovers from do not count as critical failures.
	wl := &a.camp.Workload
	d.WrongMemory = !memoryEqual(rec.State.Memory, ref.State.Memory, wl.ResultTolerance)
	d.WrongOutput = !outputsEqual(rec.State.Outputs, ref.State.Outputs, wl.OutputTail, wl.OutputTolerance)
	d.Timeliness = out.Status == campaign.OutcomeTimeout ||
		(a.camp.Workload.DeadlineCycles > 0 && out.Cycles > a.camp.Workload.DeadlineCycles)
	if d.WrongMemory || d.WrongOutput || d.Timeliness {
		d.Class = ClassEscaped
		return d, nil
	}
	// Latent? Any difference in the observed state vector.
	diff, err := a.scanDiff(rec, ref)
	if err != nil {
		return d, err
	}
	d.StateDiffBits = diff
	if diff > 0 {
		d.Class = ClassLatent
	} else {
		d.Class = ClassOverwritten
	}
	return d, nil
}

// scanDiff counts differing bits between the experiment's and the
// reference's final scan state, restricted to the observed locations.
func (a *Analyzer) scanDiff(rec, ref *campaign.ExperimentRecord) (int, error) {
	if len(rec.State.Scan) == 0 || len(ref.State.Scan) == 0 {
		return 0, nil
	}
	var rv, fv bitvec.Vector
	if err := rv.UnmarshalBinary(rec.State.Scan); err != nil {
		return 0, fmt.Errorf("analysis: experiment scan state: %w", err)
	}
	if err := fv.UnmarshalBinary(ref.State.Scan); err != nil {
		return 0, fmt.Errorf("analysis: reference scan state: %w", err)
	}
	if rv.Len() != fv.Len() {
		return 0, fmt.Errorf("analysis: scan length mismatch %d vs %d", rv.Len(), fv.Len())
	}
	x, err := rv.Xor(&fv)
	if err != nil {
		return 0, err
	}
	ones := x.OnesPositions()
	diff := 0
	for _, b := range ones {
		for _, loc := range a.observeMask {
			if b >= loc.Offset && b < loc.End() {
				diff++
				break
			}
		}
	}
	return diff, nil
}

func memoryEqual(a, b map[string][]byte, tolerance uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok {
			return false
		}
		if tolerance == 0 {
			if string(va) != string(vb) {
				return false
			}
			continue
		}
		if len(va) != len(vb) || len(va)%4 != 0 {
			return false
		}
		for i := 0; i+4 <= len(va); i += 4 {
			wa := int32(uint32(va[i])<<24 | uint32(va[i+1])<<16 | uint32(va[i+2])<<8 | uint32(va[i+3]))
			wb := int32(uint32(vb[i])<<24 | uint32(vb[i+1])<<16 | uint32(vb[i+2])<<8 | uint32(vb[i+3]))
			if absDiff32(wa, wb) > tolerance {
				return false
			}
		}
	}
	return true
}

func outputsEqual(a, b map[uint16][]uint32, tail int, tolerance uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok || len(va) != len(vb) {
			return false
		}
		start := 0
		if tail > 0 && len(va) > tail {
			start = len(va) - tail
		}
		for i := start; i < len(va); i++ {
			if tolerance == 0 {
				if va[i] != vb[i] {
					return false
				}
				continue
			}
			if absDiff32(int32(va[i]), int32(vb[i])) > tolerance {
				return false
			}
		}
	}
	return true
}

func absDiff32(a, b int32) uint32 {
	d := int64(a) - int64(b)
	if d < 0 {
		d = -d
	}
	return uint32(d)
}

// Run classifies every end-of-experiment record of the campaign.
func (a *Analyzer) Run() (*Report, error) {
	ref, err := a.store.GetExperiment(campaign.ReferenceName(a.camp.Name))
	if err != nil {
		return nil, fmt.Errorf("analysis: campaign %q has no reference run: %w", a.camp.Name, err)
	}
	recs, err := a.store.Experiments(a.camp.Name)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Campaign:       a.camp.Name,
		Counts:         make(map[Class]int),
		Mechanisms:     make(map[string]int),
		OutcomeClasses: make(map[campaign.OutcomeStatus]int),
	}
	var latencySum uint64
	var latencyN int
	for _, rec := range recs {
		if rec.IsReference() || rec.Parent != "" {
			continue // skip the reference and re-runs
		}
		d, err := a.classify(rec, ref)
		if err != nil {
			return nil, err
		}
		rep.Total++
		if rec.Data.Injected {
			rep.Injected++
		}
		rep.Counts[d.Class]++
		rep.Recovered += d.Recovered
		switch rec.Data.Outcome.Status {
		case campaign.OutcomeMasked, campaign.OutcomeSDC,
			campaign.OutcomeCrash, campaign.OutcomeHang:
			rep.OutcomeClasses[rec.Data.Outcome.Status]++
		}
		switch d.Class {
		case ClassDetected:
			rep.Mechanisms[d.Mechanism]++
			latencySum += d.Latency
			latencyN++
		case ClassEscaped:
			if d.Timeliness {
				rep.EscapedTiming++
			} else {
				rep.EscapedValue++
			}
			if d.FailSilence() {
				rep.FailSilence++
			}
		}
		rep.Details = append(rep.Details, d)
	}
	effective := rep.Counts[ClassDetected] + rep.Counts[ClassEscaped]
	rep.Coverage = Wilson(rep.Counts[ClassDetected], effective)
	rep.EffectiveRate = Wilson(effective, rep.Injected)
	if latencyN > 0 {
		rep.MeanDetectionLatency = float64(latencySum) / float64(latencyN)
	}
	return rep, nil
}

// Render formats the report as the text the analysis-phase tooling prints.
func (r *Report) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Campaign %s: %d experiments (%d injected)\n", r.Campaign, r.Total, r.Injected)
	fmt.Fprintf(&sb, "  Effective errors:\n")
	fmt.Fprintf(&sb, "    detected      %5d  (%.1f%% of injected)\n",
		r.Counts[ClassDetected], 100*r.Fraction(ClassDetected))
	mechs := make([]string, 0, len(r.Mechanisms))
	for m := range r.Mechanisms {
		mechs = append(mechs, m)
	}
	sort.Strings(mechs)
	for _, m := range mechs {
		fmt.Fprintf(&sb, "      %-22s %5d\n", m, r.Mechanisms[m])
	}
	fmt.Fprintf(&sb, "    escaped       %5d  (value %d, timeliness %d; fail-silence violations %d)\n",
		r.Counts[ClassEscaped], r.EscapedValue, r.EscapedTiming, r.FailSilence)
	fmt.Fprintf(&sb, "  Non-effective errors:\n")
	fmt.Fprintf(&sb, "    latent        %5d\n", r.Counts[ClassLatent])
	fmt.Fprintf(&sb, "    overwritten   %5d\n", r.Counts[ClassOverwritten])
	if n := r.Counts[ClassNotInjected]; n > 0 {
		fmt.Fprintf(&sb, "  not injected    %5d\n", n)
	}
	if n := r.Counts[ClassInvalidRun]; n > 0 {
		fmt.Fprintf(&sb, "  invalid runs    %5d  (harness failures, excluded from all ratios)\n", n)
	}
	if len(r.OutcomeClasses) > 0 {
		fmt.Fprintf(&sb, "  process outcome classes:\n")
		for _, s := range []campaign.OutcomeStatus{campaign.OutcomeMasked,
			campaign.OutcomeSDC, campaign.OutcomeCrash, campaign.OutcomeHang} {
			if n := r.OutcomeClasses[s]; n > 0 {
				fmt.Fprintf(&sb, "    %-12s %5d\n", s, n)
			}
		}
	}
	fmt.Fprintf(&sb, "  detection coverage: %s\n", r.Coverage)
	fmt.Fprintf(&sb, "  effective rate:     %s\n", r.EffectiveRate)
	if r.MeanDetectionLatency > 0 {
		fmt.Fprintf(&sb, "  mean detection latency: %.0f cycles\n", r.MeanDetectionLatency)
	}
	if r.Recovered > 0 {
		fmt.Fprintf(&sb, "  assertion recoveries: %d\n", r.Recovered)
	}
	return sb.String()
}
