package asm

import "testing"

func TestAssembleCachedSharesProgram(t *testing.T) {
	src := `
		ldi r1, 42
		halt
	`
	a, err := AssembleCached(src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AssembleCached(src)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same source assembled twice: cache did not share the Program")
	}
	direct, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Image) != len(a.Image) {
		t.Errorf("cached image %d bytes, direct %d", len(a.Image), len(direct.Image))
	}
}

func TestAssembleCachedDistinguishesSources(t *testing.T) {
	a, err := AssembleCached("ldi r1, 1\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	b, err := AssembleCached("ldi r1, 2\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("different sources returned the same cached Program")
	}
}

func TestAssembleCachedErrorsNotCached(t *testing.T) {
	if _, err := AssembleCached("bogus r1"); err == nil {
		t.Fatal("expected assembly error")
	}
	// A second attempt re-assembles and reports the error again.
	if _, err := AssembleCached("bogus r1"); err == nil {
		t.Fatal("expected assembly error on second attempt")
	}
}
