// Package asm implements a two-pass assembler for the THOR-S instruction
// set. Workloads are written in this assembly, assembled on the host, and
// downloaded to the target by the fault injection algorithms.
//
// Syntax overview:
//
//	; comment (also // and #)
//	label:              ; defines a symbol at the current address
//	.org 0x100          ; set the location counter
//	.word 1, 2, sym     ; emit 32-bit words
//	.space 16           ; reserve (zeroed) bytes
//	.equ NAME, 42       ; define a constant
//	ldi r1, 42          ; instructions, one per line
//	la  r2, buffer      ; pseudo: load 32-bit address (LUI+ORI)
//	ret                 ; pseudo: JR lr
//	ld r3, [r2+4]       ; memory operand form
//	st [r2+0], r3
//	beq done            ; branch targets are labels or numbers
package asm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"goofi/internal/thor"
)

// Program is the output of the assembler.
type Program struct {
	// Image is the memory image starting at address 0.
	Image []byte
	// Symbols maps labels and .equ names to their values.
	Symbols map[string]uint32
	// Listing maps each instruction address to its source line number.
	Listing map[uint32]int
}

// Symbol returns the value of a symbol.
func (p *Program) Symbol(name string) (uint32, error) {
	v, ok := p.Symbols[name]
	if !ok {
		return 0, fmt.Errorf("asm: undefined symbol %q", name)
	}
	return v, nil
}

// MustSymbol returns the value of a symbol, panicking if undefined. Intended
// for built-in workloads whose symbols are covered by tests.
func (p *Program) MustSymbol(name string) uint32 {
	v, err := p.Symbol(name)
	if err != nil {
		panic(err)
	}
	return v
}

// Error is an assembly error with source position.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type item struct {
	line  int
	addr  uint32
	mnem  string
	args  []string
	isDir bool
}

// Assemble translates source into a Program.
func Assemble(source string) (*Program, error) {
	a := &assembler{
		symbols: make(map[string]uint32),
		listing: make(map[uint32]int),
		words:   make(map[uint32]uint32),
	}
	if err := a.pass1(source); err != nil {
		return nil, err
	}
	if err := a.pass2(); err != nil {
		return nil, err
	}
	return a.finish(), nil
}

type assembler struct {
	symbols map[string]uint32
	items   []item
	words   map[uint32]uint32
	listing map[uint32]int
	maxAddr uint32
}

func stripComment(s string) string {
	for _, marker := range []string{";", "//", "#"} {
		if i := strings.Index(s, marker); i >= 0 {
			s = s[:i]
		}
	}
	return strings.TrimSpace(s)
}

// splitArgs splits an operand list on commas that are outside brackets.
func splitArgs(s string) []string {
	var args []string
	depth := 0
	start := 0
	for i, r := range s {
		switch r {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				args = append(args, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if rest := strings.TrimSpace(s[start:]); rest != "" {
		args = append(args, rest)
	}
	return args
}

func (a *assembler) pass1(source string) error {
	addr := uint32(0)
	for lineNo, raw := range strings.Split(source, "\n") {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		// Labels (possibly several) at line start.
		for {
			i := strings.Index(line, ":")
			if i < 0 || strings.ContainsAny(line[:i], " \t,[") {
				break
			}
			name := strings.TrimSpace(line[:i])
			if !validIdent(name) {
				return &Error{lineNo + 1, fmt.Sprintf("invalid label %q", name)}
			}
			if _, dup := a.symbols[name]; dup {
				return &Error{lineNo + 1, fmt.Sprintf("duplicate symbol %q", name)}
			}
			a.symbols[name] = addr
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		fields := strings.SplitN(line, " ", 2)
		mnem := strings.ToLower(fields[0])
		var args []string
		if len(fields) > 1 {
			args = splitArgs(strings.TrimSpace(fields[1]))
		}
		it := item{line: lineNo + 1, addr: addr, mnem: mnem, args: args, isDir: strings.HasPrefix(mnem, ".")}
		switch mnem {
		case ".org":
			if len(args) != 1 {
				return &Error{it.line, ".org takes one argument"}
			}
			v, err := a.evalConst(args[0], it.line)
			if err != nil {
				return err
			}
			addr = v
			continue
		case ".equ":
			if len(args) != 2 {
				return &Error{it.line, ".equ takes name, value"}
			}
			if !validIdent(args[0]) {
				return &Error{it.line, fmt.Sprintf("invalid name %q", args[0])}
			}
			v, err := a.evalConst(args[1], it.line)
			if err != nil {
				return err
			}
			if _, dup := a.symbols[args[0]]; dup {
				return &Error{it.line, fmt.Sprintf("duplicate symbol %q", args[0])}
			}
			a.symbols[args[0]] = v
			continue
		case ".word":
			if len(args) == 0 {
				return &Error{it.line, ".word needs at least one value"}
			}
			it.addr = addr
			a.items = append(a.items, it)
			addr += uint32(4 * len(args))
			continue
		case ".space":
			if len(args) != 1 {
				return &Error{it.line, ".space takes one argument"}
			}
			v, err := a.evalConst(args[0], it.line)
			if err != nil {
				return err
			}
			if v%4 != 0 {
				return &Error{it.line, ".space size must be word aligned"}
			}
			addr += v
			if addr > a.maxAddr {
				a.maxAddr = addr
			}
			continue
		}
		if it.isDir {
			return &Error{it.line, fmt.Sprintf("unknown directive %s", mnem)}
		}
		a.items = append(a.items, it)
		addr += instrSize(mnem)
	}
	return nil
}

// instrSize returns the encoded size of a mnemonic (pseudos may expand).
func instrSize(mnem string) uint32 {
	if mnem == "la" {
		return 8 // LUI + ORI
	}
	return 4
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == '.' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// evalConst evaluates a numeric literal or an already-defined symbol
// (pass-1 contexts: .org, .equ, .space).
func (a *assembler) evalConst(s string, line int) (uint32, error) {
	if v, ok := a.symbols[s]; ok {
		return v, nil
	}
	v, err := parseNum(s)
	if err != nil {
		return 0, &Error{line, fmt.Sprintf("cannot evaluate %q: %v", s, err)}
	}
	return uint32(v), nil
}

func parseNum(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	v, err := strconv.ParseUint(strings.TrimPrefix(strings.ToLower(s), "+"), 0, 32)
	if err != nil {
		return 0, err
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

// eval resolves a symbol or numeric literal in pass 2.
func (a *assembler) eval(s string, line int) (int64, error) {
	if v, ok := a.symbols[s]; ok {
		return int64(v), nil
	}
	v, err := parseNum(s)
	if err != nil {
		return 0, &Error{line, fmt.Sprintf("undefined symbol or bad number %q", s)}
	}
	return v, nil
}

func (a *assembler) emit(addr uint32, w uint32, line int) {
	a.words[addr] = w
	a.listing[addr] = line
	if addr+4 > a.maxAddr {
		a.maxAddr = addr + 4
	}
}

func parseReg(s string) (uint8, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	switch s {
	case "sp":
		return thor.RegSP, nil
	case "lr":
		return thor.RegLR, nil
	}
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("expected register, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= thor.NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

// parseMem parses a "[rN+off]" or "[rN-off]" or "[rN]" operand.
func (a *assembler) parseMem(s string, line int) (base uint8, off int64, err error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, &Error{line, fmt.Sprintf("expected memory operand [rN+off], got %q", s)}
	}
	inner := s[1 : len(s)-1]
	sep := strings.IndexAny(inner, "+-")
	if sep < 0 {
		base, rerr := parseReg(inner)
		if rerr != nil {
			return 0, 0, &Error{line, rerr.Error()}
		}
		return base, 0, nil
	}
	base, rerr := parseReg(inner[:sep])
	if rerr != nil {
		return 0, 0, &Error{line, rerr.Error()}
	}
	off, err = a.eval(strings.TrimSpace(inner[sep+1:]), line)
	if err != nil {
		return 0, 0, err
	}
	if inner[sep] == '-' {
		off = -off
	}
	return base, off, nil
}

func checkImm16s(v int64, line int) (uint16, error) {
	if v >= -32768 && v <= 32767 {
		return uint16(int16(v)), nil
	}
	// Symbols store values as uint32, so a negative .equ arrives as its
	// two's-complement wrap; accept it when the 32-bit value sign-extends
	// from 16 bits.
	if v >= 0xFFFF_8000 && v <= 0xFFFF_FFFF {
		return uint16(v), nil
	}
	return 0, &Error{line, fmt.Sprintf("immediate %d does not fit in signed 16 bits", v)}
}

func checkImm16u(v int64, line int) (uint16, error) {
	if v < 0 || v > 0xFFFF {
		return 0, &Error{line, fmt.Sprintf("immediate %d does not fit in unsigned 16 bits", v)}
	}
	return uint16(v), nil
}

var regRegRegOps = map[string]thor.Opcode{
	"add": thor.OpADD, "sub": thor.OpSUB, "mul": thor.OpMUL,
	"div": thor.OpDIV, "mod": thor.OpMOD, "and": thor.OpAND,
	"or": thor.OpOR, "xor": thor.OpXOR, "shl": thor.OpSHL, "shr": thor.OpSHR,
}

var regRegImmOps = map[string]thor.Opcode{
	"addi": thor.OpADDI, "subi": thor.OpSUBI,
	"shli": thor.OpSHLI, "shri": thor.OpSHRI, "ori": thor.OpORI,
}

var branchOps = map[string]thor.Opcode{
	"beq": thor.OpBEQ, "bne": thor.OpBNE, "blt": thor.OpBLT,
	"bge": thor.OpBGE, "bgt": thor.OpBGT, "ble": thor.OpBLE,
	"bra": thor.OpBRA, "call": thor.OpCALL,
}

func (a *assembler) pass2() error {
	for _, it := range a.items {
		if it.mnem == ".word" {
			addr := it.addr
			for _, arg := range it.args {
				v, err := a.eval(arg, it.line)
				if err != nil {
					return err
				}
				a.emit(addr, uint32(v), it.line)
				addr += 4
			}
			continue
		}
		if err := a.encodeInstr(it); err != nil {
			return err
		}
	}
	return nil
}

func (a *assembler) encodeInstr(it item) error {
	need := func(n int) error {
		if len(it.args) != n {
			return &Error{it.line, fmt.Sprintf("%s takes %d operand(s), got %d", it.mnem, n, len(it.args))}
		}
		return nil
	}
	reg := func(i int) (uint8, error) {
		r, err := parseReg(it.args[i])
		if err != nil {
			return 0, &Error{it.line, err.Error()}
		}
		return r, nil
	}

	switch {
	case it.mnem == "nop" || it.mnem == "halt" || it.mnem == "kick":
		if err := need(0); err != nil {
			return err
		}
		op := map[string]thor.Opcode{"nop": thor.OpNOP, "halt": thor.OpHALT, "kick": thor.OpKICK}[it.mnem]
		a.emit(it.addr, thor.Instr{Op: op}.Encode(), it.line)

	case it.mnem == "ret":
		if err := need(0); err != nil {
			return err
		}
		a.emit(it.addr, thor.Instr{Op: thor.OpJR, Rs1: thor.RegLR}.Encode(), it.line)

	case it.mnem == "mov" || it.mnem == "not":
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs, err := reg(1)
		if err != nil {
			return err
		}
		op := thor.OpMOV
		if it.mnem == "not" {
			op = thor.OpNOT
		}
		a.emit(it.addr, thor.Instr{Op: op, Rd: rd, Rs1: rs}.Encode(), it.line)

	case it.mnem == "ldi" || it.mnem == "lui":
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		v, err := a.eval(it.args[1], it.line)
		if err != nil {
			return err
		}
		var imm uint16
		if it.mnem == "ldi" {
			imm, err = checkImm16s(v, it.line)
		} else {
			imm, err = checkImm16u(v, it.line)
		}
		if err != nil {
			return err
		}
		op := thor.OpLDI
		if it.mnem == "lui" {
			op = thor.OpLUI
		}
		a.emit(it.addr, thor.Instr{Op: op, Rd: rd, Imm: imm}.Encode(), it.line)

	case it.mnem == "la":
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		v, err := a.eval(it.args[1], it.line)
		if err != nil {
			return err
		}
		u := uint32(v)
		a.emit(it.addr, thor.Instr{Op: thor.OpLUI, Rd: rd, Imm: uint16(u >> 16)}.Encode(), it.line)
		a.emit(it.addr+4, thor.Instr{Op: thor.OpORI, Rd: rd, Rs1: rd, Imm: uint16(u)}.Encode(), it.line)

	case it.mnem == "ld":
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		base, off, err := a.parseMem(it.args[1], it.line)
		if err != nil {
			return err
		}
		imm, err := checkImm16s(off, it.line)
		if err != nil {
			return err
		}
		a.emit(it.addr, thor.Instr{Op: thor.OpLD, Rd: rd, Rs1: base, Imm: imm}.Encode(), it.line)

	case it.mnem == "st":
		if err := need(2); err != nil {
			return err
		}
		base, off, err := a.parseMem(it.args[0], it.line)
		if err != nil {
			return err
		}
		rs, err := reg(1)
		if err != nil {
			return err
		}
		imm, err := checkImm16s(off, it.line)
		if err != nil {
			return err
		}
		a.emit(it.addr, thor.Instr{Op: thor.OpST, Rd: rs, Rs1: base, Imm: imm}.Encode(), it.line)

	case regRegRegOps[it.mnem] != 0:
		if err := need(3); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs1, err := reg(1)
		if err != nil {
			return err
		}
		rs2, err := reg(2)
		if err != nil {
			return err
		}
		in := thor.Instr{Op: regRegRegOps[it.mnem], Rd: rd, Rs1: rs1, Rs2: rs2}
		a.emit(it.addr, in.Encode(), it.line)

	case regRegImmOps[it.mnem] != 0:
		if err := need(3); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs1, err := reg(1)
		if err != nil {
			return err
		}
		v, err := a.eval(it.args[2], it.line)
		if err != nil {
			return err
		}
		var imm uint16
		if it.mnem == "ori" {
			imm, err = checkImm16u(v, it.line)
		} else {
			imm, err = checkImm16s(v, it.line)
		}
		if err != nil {
			return err
		}
		a.emit(it.addr, thor.Instr{Op: regRegImmOps[it.mnem], Rd: rd, Rs1: rs1, Imm: imm}.Encode(), it.line)

	case it.mnem == "cmp":
		if err := need(2); err != nil {
			return err
		}
		rs1, err := reg(0)
		if err != nil {
			return err
		}
		rs2, err := reg(1)
		if err != nil {
			return err
		}
		a.emit(it.addr, thor.Instr{Op: thor.OpCMP, Rs1: rs1, Rs2: rs2}.Encode(), it.line)

	case it.mnem == "cmpi":
		if err := need(2); err != nil {
			return err
		}
		rs1, err := reg(0)
		if err != nil {
			return err
		}
		v, err := a.eval(it.args[1], it.line)
		if err != nil {
			return err
		}
		imm, err := checkImm16s(v, it.line)
		if err != nil {
			return err
		}
		a.emit(it.addr, thor.Instr{Op: thor.OpCMPI, Rs1: rs1, Imm: imm}.Encode(), it.line)

	case branchOps[it.mnem] != 0:
		if err := need(1); err != nil {
			return err
		}
		v, err := a.eval(it.args[0], it.line)
		if err != nil {
			return err
		}
		// A symbol is a target address: convert to word-relative offset.
		// A bare number is taken as the offset directly.
		off := v
		if _, isSym := a.symbols[it.args[0]]; isSym {
			delta := v - int64(it.addr) - 4
			if delta%4 != 0 {
				return &Error{it.line, "branch target not word aligned"}
			}
			off = delta / 4
		}
		imm, err := checkImm16s(off, it.line)
		if err != nil {
			return err
		}
		a.emit(it.addr, thor.Instr{Op: branchOps[it.mnem], Imm: imm}.Encode(), it.line)

	case it.mnem == "jr" || it.mnem == "push":
		if err := need(1); err != nil {
			return err
		}
		rs, err := reg(0)
		if err != nil {
			return err
		}
		op := thor.OpJR
		if it.mnem == "push" {
			op = thor.OpPUSH
		}
		a.emit(it.addr, thor.Instr{Op: op, Rs1: rs}.Encode(), it.line)

	case it.mnem == "pop":
		if err := need(1); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		a.emit(it.addr, thor.Instr{Op: thor.OpPOP, Rd: rd}.Encode(), it.line)

	case it.mnem == "in":
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		v, err := a.eval(it.args[1], it.line)
		if err != nil {
			return err
		}
		imm, err := checkImm16u(v, it.line)
		if err != nil {
			return err
		}
		a.emit(it.addr, thor.Instr{Op: thor.OpIN, Rd: rd, Imm: imm}.Encode(), it.line)

	case it.mnem == "out":
		if err := need(2); err != nil {
			return err
		}
		v, err := a.eval(it.args[0], it.line)
		if err != nil {
			return err
		}
		imm, err := checkImm16u(v, it.line)
		if err != nil {
			return err
		}
		rs, err := reg(1)
		if err != nil {
			return err
		}
		a.emit(it.addr, thor.Instr{Op: thor.OpOUT, Rd: rs, Imm: imm}.Encode(), it.line)

	case it.mnem == "trap":
		if err := need(1); err != nil {
			return err
		}
		v, err := a.eval(it.args[0], it.line)
		if err != nil {
			return err
		}
		imm, err := checkImm16u(v, it.line)
		if err != nil {
			return err
		}
		a.emit(it.addr, thor.Instr{Op: thor.OpTRAP, Imm: imm}.Encode(), it.line)

	default:
		return &Error{it.line, fmt.Sprintf("unknown mnemonic %q", it.mnem)}
	}
	return nil
}

func (a *assembler) finish() *Program {
	img := make([]byte, a.maxAddr)
	addrs := make([]uint32, 0, len(a.words))
	for addr := range a.words {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, addr := range addrs {
		w := a.words[addr]
		img[addr] = byte(w >> 24)
		img[addr+1] = byte(w >> 16)
		img[addr+2] = byte(w >> 8)
		img[addr+3] = byte(w)
	}
	return &Program{Image: img, Symbols: a.symbols, Listing: a.listing}
}

// Disassemble renders the instruction word at each address of the image.
func Disassemble(image []byte) []string {
	var out []string
	for addr := 0; addr+4 <= len(image); addr += 4 {
		w := uint32(image[addr])<<24 | uint32(image[addr+1])<<16 |
			uint32(image[addr+2])<<8 | uint32(image[addr+3])
		out = append(out, fmt.Sprintf("%08x: %08x  %s", addr, w, thor.Decode(w)))
	}
	return out
}
