package asm

import (
	"crypto/sha256"
	"sync"
)

// assembleCacheCap bounds the cache: campaigns reuse a handful of
// workload sources, so a small LRU-free cap is plenty; on overflow the
// cache is simply cleared.
const assembleCacheCap = 64

var (
	assembleMu    sync.Mutex
	assembleCache = make(map[[sha256.Size]byte]*Program)
)

// AssembleCached is Assemble memoized by source hash. A campaign
// assembles the same workload once per experiment; the cached Program is
// shared by every experiment (and every board), so callers must treat it
// as immutable — in particular, download Image into target memory rather
// than mutating it. Errors are not cached.
func AssembleCached(source string) (*Program, error) {
	key := sha256.Sum256([]byte(source))
	assembleMu.Lock()
	prog, ok := assembleCache[key]
	assembleMu.Unlock()
	if ok {
		return prog, nil
	}
	prog, err := Assemble(source)
	if err != nil {
		return nil, err
	}
	assembleMu.Lock()
	if len(assembleCache) >= assembleCacheCap {
		assembleCache = make(map[[sha256.Size]byte]*Program)
	}
	assembleCache[key] = prog
	assembleMu.Unlock()
	return prog, nil
}
