package asm

import (
	"strings"
	"testing"

	"goofi/internal/thor"
)

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func word(p *Program, addr uint32) uint32 {
	return uint32(p.Image[addr])<<24 | uint32(p.Image[addr+1])<<16 |
		uint32(p.Image[addr+2])<<8 | uint32(p.Image[addr+3])
}

func TestBasicEncoding(t *testing.T) {
	p := mustAssemble(t, `
		ldi r1, 42
		add r3, r1, r2
		halt
	`)
	in := thor.Decode(word(p, 0))
	if in.Op != thor.OpLDI || in.Rd != 1 || in.SImm() != 42 {
		t.Errorf("LDI decoded as %v", in)
	}
	in = thor.Decode(word(p, 4))
	if in.Op != thor.OpADD || in.Rd != 3 || in.Rs1 != 1 || in.Rs2 != 2 {
		t.Errorf("ADD decoded as %v", in)
	}
	if thor.Decode(word(p, 8)).Op != thor.OpHALT {
		t.Errorf("expected HALT at 8")
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := mustAssemble(t, `
	start:
		ldi r1, 0
	loop:
		addi r1, r1, 1
		cmpi r1, 10
		bne loop
		halt
	`)
	// bne at address 12; target loop = 4; offset = (4-12-4)/4 = -3.
	in := thor.Decode(word(p, 12))
	if in.Op != thor.OpBNE || in.SImm() != -3 {
		t.Errorf("BNE decoded as %v, want offset -3", in)
	}
	if p.Symbols["loop"] != 4 {
		t.Errorf("loop symbol = %d, want 4", p.Symbols["loop"])
	}
}

func TestDirectives(t *testing.T) {
	p := mustAssemble(t, `
		.equ SIZE, 3
		bra start
	.org 0x20
	data:
		.word 10, 20, 0xdeadbeef
		.space 8
	after:
		.word SIZE
	.org 0x100
	start:
		halt
	`)
	if got := word(p, 0x20); got != 10 {
		t.Errorf("data[0] = %d", got)
	}
	if got := word(p, 0x28); got != 0xdeadbeef {
		t.Errorf("data[2] = %#x", got)
	}
	if p.Symbols["after"] != 0x2C+8 {
		t.Errorf("after = %#x, want %#x", p.Symbols["after"], 0x2C+8)
	}
	if got := word(p, p.Symbols["after"]); got != 3 {
		t.Errorf(".word SIZE = %d, want 3", got)
	}
	if thor.Decode(word(p, 0x100)).Op != thor.OpHALT {
		t.Error("no HALT at 0x100")
	}
}

func TestMemOperands(t *testing.T) {
	p := mustAssemble(t, `
		ld r2, [r1+8]
		st [r1-4], r2
		ld r3, [sp]
	`)
	in := thor.Decode(word(p, 0))
	if in.Op != thor.OpLD || in.Rd != 2 || in.Rs1 != 1 || in.SImm() != 8 {
		t.Errorf("LD decoded as %v", in)
	}
	in = thor.Decode(word(p, 4))
	if in.Op != thor.OpST || in.Rd != 2 || in.Rs1 != 1 || in.SImm() != -4 {
		t.Errorf("ST decoded as %v", in)
	}
	in = thor.Decode(word(p, 8))
	if in.Rs1 != thor.RegSP || in.SImm() != 0 {
		t.Errorf("LD [sp] decoded as %v", in)
	}
}

func TestLAPseudo(t *testing.T) {
	p := mustAssemble(t, `
		la r1, buf
		halt
	.org 0x12340
	buf:
		.word 0
	`)
	in0 := thor.Decode(word(p, 0))
	in1 := thor.Decode(word(p, 4))
	if in0.Op != thor.OpLUI || in0.Imm != 0x1 {
		t.Errorf("LA first word = %v", in0)
	}
	if in1.Op != thor.OpORI || in1.Imm != 0x2340 || in1.Rd != 1 || in1.Rs1 != 1 {
		t.Errorf("LA second word = %v", in1)
	}
	if thor.Decode(word(p, 8)).Op != thor.OpHALT {
		t.Error("HALT not after 8-byte LA expansion")
	}
}

func TestRetPseudo(t *testing.T) {
	p := mustAssemble(t, "ret")
	in := thor.Decode(word(p, 0))
	if in.Op != thor.OpJR || in.Rs1 != thor.RegLR {
		t.Errorf("RET = %v", in)
	}
}

func TestIOAndTrap(t *testing.T) {
	p := mustAssemble(t, `
		in r1, 3
		out 5, r2
		trap 2
		kick
	`)
	in := thor.Decode(word(p, 0))
	if in.Op != thor.OpIN || in.Rd != 1 || in.Imm != 3 {
		t.Errorf("IN = %v", in)
	}
	in = thor.Decode(word(p, 4))
	if in.Op != thor.OpOUT || in.Rd != 2 || in.Imm != 5 {
		t.Errorf("OUT = %v", in)
	}
	in = thor.Decode(word(p, 8))
	if in.Op != thor.OpTRAP || in.Imm != 2 {
		t.Errorf("TRAP = %v", in)
	}
}

func TestComments(t *testing.T) {
	p := mustAssemble(t, `
		nop ; semicolon comment
		nop // slash comment
		nop # hash comment
	`)
	if len(p.Image) != 12 {
		t.Errorf("image size = %d, want 12", len(p.Image))
	}
}

func TestErrors(t *testing.T) {
	tests := []struct {
		name, src, wantSub string
	}{
		{"unknown mnemonic", "frobnicate r1", "unknown mnemonic"},
		{"bad register", "ldi r99, 1", "bad register"},
		{"imm overflow", "ldi r1, 70000", "does not fit"},
		{"undefined symbol", "beq nowhere", "undefined symbol"},
		{"duplicate label", "a:\nnop\na:\nnop", "duplicate"},
		{"duplicate equ", ".equ X, 1\n.equ X, 2", "duplicate"},
		{"wrong arity", "add r1, r2", "takes 3 operand"},
		{"nop with operand", "nop r1", "takes 0 operand"},
		{"unknown directive", ".bogus 1", "unknown directive"},
		{"unaligned space", ".space 3", "word aligned"},
		{"bad mem operand", "ld r1, r2", "memory operand"},
		{"bad mem base", "ld r1, [zeta+4]", "register"},
		{"mem offset overflow", "ld r1, [r2+40000]", "does not fit"},
		{"mov bad dest", "mov r99, r1", "bad register"},
		{"mov bad src", "mov r1, r99", "bad register"},
		{"add bad rs2", "add r1, r2, bogus", "register"},
		{"cmp bad reg", "cmp r1, bogus", "register"},
		{"cmpi overflow", "cmpi r1, 70000", "does not fit"},
		{"jr bad reg", "jr bogus", "register"},
		{"pop bad reg", "pop bogus", "register"},
		{"push bad reg", "push bogus", "register"},
		{"in bad port", "in r1, 70000", "does not fit"},
		{"in bad reg", "in bogus, 1", "register"},
		{"out bad port", "out 70000, r1", "does not fit"},
		{"out bad reg", "out 1, bogus", "register"},
		{"trap overflow", "trap 70000", "does not fit"},
		{"trap bad value", "trap nowhere", "undefined symbol"},
		{"la bad reg", "la bogus, 5", "register"},
		{"la bad value", "la r1, nowhere", "undefined symbol"},
		{"lui negative", "lui r1, -1", "does not fit"},
		{"ori negative", "ori r1, r1, -1", "does not fit"},
		{"shli bad rs1", "shli r1, bogus, 2", "register"},
		{"word no values", ".word", "at least one"},
		{"org bad value", ".org nowhere", "cannot evaluate"},
		{"equ wrong arity", ".equ X", "takes name, value"},
		{"equ bad name", ".equ 9x, 1", "invalid name"},
		{"bad label", "9bad:\nnop", "invalid label"},
		{"branch bad target", "beq r1, r2", "takes 1 operand"},
		{"subi overflow", "subi r1, r1, 70000", "does not fit"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Assemble(tt.src)
			if err == nil {
				t.Fatalf("no error for %q", tt.src)
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q does not contain %q", err, tt.wantSub)
			}
		})
	}
}

func TestErrorHasLineNumber(t *testing.T) {
	_, err := Assemble("nop\nnop\nbogus r1\n")
	aerr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T, want *Error", err)
	}
	if aerr.Line != 3 {
		t.Errorf("error line = %d, want 3", aerr.Line)
	}
}

func TestListing(t *testing.T) {
	p := mustAssemble(t, "nop\nnop\nhalt\n")
	if p.Listing[8] != 3 {
		t.Errorf("listing[8] = %d, want line 3", p.Listing[8])
	}
}

func TestSymbolAccessors(t *testing.T) {
	p := mustAssemble(t, ".equ X, 7\nnop")
	v, err := p.Symbol("X")
	if err != nil || v != 7 {
		t.Errorf("Symbol(X) = %d, %v", v, err)
	}
	if _, err := p.Symbol("missing"); err == nil {
		t.Error("Symbol(missing) did not error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustSymbol(missing) did not panic")
		}
	}()
	p.MustSymbol("missing")
}

func TestDisassembleRoundTrip(t *testing.T) {
	p := mustAssemble(t, `
		ldi r1, 5
		addi r2, r1, -1
		halt
	`)
	lines := Disassemble(p.Image)
	if len(lines) != 3 {
		t.Fatalf("disassembly has %d lines, want 3", len(lines))
	}
	if !strings.Contains(lines[0], "LDI r1, 5") {
		t.Errorf("line 0 = %q", lines[0])
	}
	if !strings.Contains(lines[1], "ADDI r2, r1, -1") {
		t.Errorf("line 1 = %q", lines[1])
	}
}

func TestNegativeOrgNumbersAndHex(t *testing.T) {
	p := mustAssemble(t, `
		ldi r1, -1
		ldi r2, 0x7f
	`)
	if got := thor.Decode(word(p, 0)).SImm(); got != -1 {
		t.Errorf("ldi -1 = %d", got)
	}
	if got := thor.Decode(word(p, 4)).SImm(); got != 0x7f {
		t.Errorf("ldi 0x7f = %d", got)
	}
}
