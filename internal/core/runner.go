package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"goofi/internal/campaign"
	"goofi/internal/faultmodel"
	"goofi/internal/scanchain"
	"goofi/internal/trigger"
)

// ProgressEvent is one update shown in the progress window (paper Fig 7):
// how many experiments have run, what phase the tool is in, and which
// experiment is active.
type ProgressEvent struct {
	Campaign   string
	Phase      string // "reference", "experiment", "paused", "done", "stopped"
	Done       int
	Total      int
	Experiment string
	Outcome    campaign.OutcomeStatus
}

// Summary aggregates a campaign's raw outcomes. (Dependability measures —
// effective/latent/overwritten classification — come from the analysis
// phase, which compares logged states against the reference run.)
type Summary struct {
	Campaign    string
	Experiments int
	Injected    int
	// Skipped counts injections rejected by the pre-injection filter
	// before an experiment was spent on them.
	Skipped     int
	ByStatus    map[campaign.OutcomeStatus]int
	ByMechanism map[string]int
}

// Runner executes fault injection campaigns: a reference run followed by
// NumExperiments fault injection experiments, with logging to the GOOFI
// database and pause/resume/stop control (paper Fig 7).
type Runner struct {
	target TargetSystem
	alg    Algorithm
	camp   *campaign.Campaign
	tsd    *campaign.TargetSystemData

	store      *campaign.Store
	onProgress func(ProgressEvent)
	filter     func(f faultmodel.Fault, trig trigger.Spec) bool

	mu      sync.Mutex
	cond    *sync.Cond
	paused  bool
	stopped bool
}

// RunnerOption configures a Runner.
type RunnerOption func(*Runner)

// WithStore enables database logging of every experiment.
func WithStore(s *campaign.Store) RunnerOption {
	return func(r *Runner) { r.store = s }
}

// WithProgress installs a progress callback. It is invoked synchronously
// from the campaign goroutine; keep it fast.
func WithProgress(fn func(ProgressEvent)) RunnerOption {
	return func(r *Runner) { r.onProgress = fn }
}

// WithInjectionFilter installs a pre-injection filter (paper §4): drawn
// injections the filter rejects are skipped and redrawn, so every spent
// experiment targets live state. The number of skips is reported in
// Summary.Skipped.
func WithInjectionFilter(fn func(f faultmodel.Fault, trig trigger.Spec) bool) RunnerOption {
	return func(r *Runner) { r.filter = fn }
}

// NewRunner builds a runner for one campaign against one target system.
func NewRunner(ts TargetSystem, alg Algorithm, camp *campaign.Campaign,
	tsd *campaign.TargetSystemData, opts ...RunnerOption) (*Runner, error) {
	if err := camp.Validate(); err != nil {
		return nil, err
	}
	if err := tsd.Validate(); err != nil {
		return nil, err
	}
	if camp.TargetName != tsd.Name {
		return nil, fmt.Errorf("core: campaign %q targets %q, got target system %q",
			camp.Name, camp.TargetName, tsd.Name)
	}
	r := &Runner{target: ts, alg: alg, camp: camp, tsd: tsd}
	r.cond = sync.NewCond(&r.mu)
	for _, o := range opts {
		o(r)
	}
	return r, nil
}

// Pause suspends the campaign between experiments.
func (r *Runner) Pause() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.paused = true
}

// Resume continues a paused campaign (the "restart" control of Fig 7).
func (r *Runner) Resume() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.paused = false
	r.cond.Broadcast()
}

// Stop ends the campaign after the current experiment.
func (r *Runner) Stop() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stopped = true
	r.paused = false
	r.cond.Broadcast()
}

// checkpoint blocks while paused; it reports false when the campaign
// should stop (Stop called or context cancelled). The paused progress
// event is emitted outside the lock so a callback may call Resume or
// Stop synchronously.
func (r *Runner) checkpoint(ctx context.Context) bool {
	r.mu.Lock()
	pausedNow := r.paused && !r.stopped
	r.mu.Unlock()
	if pausedNow {
		r.emit(ProgressEvent{Campaign: r.camp.Name, Phase: "paused"})
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.paused && !r.stopped && ctx.Err() == nil {
		r.cond.Wait()
	}
	return !r.stopped && ctx.Err() == nil
}

func (r *Runner) emit(ev ProgressEvent) {
	if r.onProgress != nil {
		r.onProgress(ev)
	}
}

// space resolves the campaign's selected locations against the target's
// scan chain map.
func (r *Runner) space() (*faultmodel.Space, *scanchain.Map, error) {
	chainName := r.camp.ChainName
	var m *scanchain.Map
	var err error
	if chainName == "" {
		if len(r.tsd.Chains) != 1 {
			return nil, nil, fmt.Errorf("core: campaign %q does not name a chain and target has %d",
				r.camp.Name, len(r.tsd.Chains))
		}
		m = &r.tsd.Chains[0]
	} else if m, err = r.tsd.Chain(chainName); err != nil {
		return nil, nil, err
	}
	locs := m.Select(r.camp.Locations...)
	if len(locs) == 0 {
		return nil, nil, fmt.Errorf("core: campaign %q selects no locations in chain %q",
			r.camp.Name, m.Chain)
	}
	// Injection never targets read-only cells; drop them from the space
	// (they remain observable).
	var writable []scanchain.Location
	for _, l := range locs {
		if !l.ReadOnly {
			writable = append(writable, l)
		}
	}
	sp, err := faultmodel.NewSpace(writable)
	if err != nil {
		return nil, nil, err
	}
	return sp, m, nil
}

// expSeed derives a per-experiment seed so that any experiment can be
// replayed in isolation (paper §2.3 re-runs).
func expSeed(campaignSeed int64, seq int) int64 {
	const mix = int64(-0x61C8_8646_80B5_83EB) // golden-ratio constant as int64
	return campaignSeed ^ (int64(seq+2) * mix)
}

// newExperiment builds the experiment context for sequence number seq.
func (r *Runner) newExperiment(seq int, fault *faultmodel.Fault, trig trigger.Spec) *Experiment {
	name := campaign.ExperimentName(r.camp.Name, seq)
	if seq < 0 {
		name = campaign.ReferenceName(r.camp.Name)
	}
	ex := &Experiment{
		Campaign: r.camp,
		Seq:      seq,
		Name:     name,
		Fault:    fault,
		Trigger:  trig,
		RNG:      rand.New(rand.NewSource(expSeed(r.camp.Seed, seq))),
	}
	if r.camp.LogMode == campaign.LogDetail && r.store != nil {
		parent := name
		ex.DetailSink = func(step int, sv *campaign.StateVector) error {
			return r.store.LogExperiment(&campaign.ExperimentRecord{
				Name:     fmt.Sprintf("%s/step%06d", parent, step),
				Parent:   parent,
				Campaign: r.camp.Name,
				Step:     step,
				State:    *sv,
			})
		}
	}
	return ex
}

// runOne executes one experiment and logs it.
func (r *Runner) runOne(ex *Experiment, parent string) error {
	if err := r.alg.Run(r.target, ex); err != nil {
		return fmt.Errorf("core: campaign %q %s: %w", r.camp.Name, ex.Name, err)
	}
	if r.store != nil {
		rec, err := ex.Record()
		if err != nil {
			return err
		}
		rec.Parent = parent
		if err := r.store.LogExperiment(rec); err != nil {
			return err
		}
	}
	return nil
}

// Run executes the campaign: reference run, then the experiment loop of
// paper Fig 2. It returns a summary of raw outcomes.
func (r *Runner) Run(ctx context.Context) (*Summary, error) {
	// Wake a paused campaign when the context is cancelled, so Wait in
	// checkpoint observes the cancellation.
	cancelWatch := context.AfterFunc(ctx, func() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer cancelWatch()

	sp, _, err := r.space()
	if err != nil {
		return nil, err
	}
	planRNG := rand.New(rand.NewSource(r.camp.Seed))

	sum := &Summary{
		Campaign:    r.camp.Name,
		ByStatus:    make(map[campaign.OutcomeStatus]int),
		ByMechanism: make(map[string]int),
	}

	// makeReferenceRun (paper Fig 2): fault-free execution whose logged
	// state anchors the analysis phase.
	r.emit(ProgressEvent{Campaign: r.camp.Name, Phase: "reference", Total: r.camp.NumExperiments})
	ref := r.newExperiment(-1, nil, trigger.Spec{})
	if err := r.runOne(ref, ""); err != nil {
		return nil, err
	}

	// A bounded redraw budget keeps a pathological filter (rejecting
	// everything) from spinning forever.
	maxRedraws := 1000 * r.camp.NumExperiments

	for i := 0; i < r.camp.NumExperiments; i++ {
		// The plan stream must advance identically whether or not the
		// experiment runs, so draw before the stop check.
		var fault faultmodel.Fault
		var trig trigger.Spec
		for {
			var err error
			fault, err = sp.Sample(&r.camp.FaultModel, planRNG)
			if err != nil {
				return nil, err
			}
			trig = r.camp.Trigger
			if r.camp.RandomWindow[1] > 0 {
				span := r.camp.RandomWindow[1] - r.camp.RandomWindow[0]
				trig.Cycle = r.camp.RandomWindow[0] + uint64(planRNG.Int63n(int64(span)))
			}
			if r.filter == nil || r.filter(fault, trig) {
				break
			}
			sum.Skipped++
			if sum.Skipped > maxRedraws {
				return nil, fmt.Errorf("core: campaign %q: pre-injection filter rejected %d draws",
					r.camp.Name, sum.Skipped)
			}
		}
		if !r.checkpoint(ctx) {
			r.emit(ProgressEvent{Campaign: r.camp.Name, Phase: "stopped", Done: i, Total: r.camp.NumExperiments})
			return sum, ctx.Err()
		}
		ex := r.newExperiment(i, &fault, trig)
		if err := r.runOne(ex, ""); err != nil {
			return nil, err
		}
		sum.Experiments++
		if ex.Injected {
			sum.Injected++
		}
		st := ex.Result.Outcome.Status
		sum.ByStatus[st]++
		if st == campaign.OutcomeDetected {
			sum.ByMechanism[ex.Result.Outcome.Mechanism]++
		}
		r.emit(ProgressEvent{
			Campaign:   r.camp.Name,
			Phase:      "experiment",
			Done:       i + 1,
			Total:      r.camp.NumExperiments,
			Experiment: ex.Name,
			Outcome:    st,
		})
	}
	r.emit(ProgressEvent{Campaign: r.camp.Name, Phase: "done",
		Done: sum.Experiments, Total: r.camp.NumExperiments})
	return sum, nil
}

// Rerun repeats a logged experiment with the same fault and trigger,
// logging the new run with parentExperiment set to the original (paper
// §2.3: investigating an interesting experiment E1 by re-running it as E2
// with the same campaign data, typically in detail mode). detail forces
// detail-mode logging regardless of the campaign's log mode.
func (r *Runner) Rerun(expName string, detail bool) (*Experiment, error) {
	if r.store == nil {
		return nil, fmt.Errorf("core: rerun needs a store")
	}
	orig, err := r.store.GetExperiment(expName)
	if err != nil {
		return nil, err
	}
	if orig.Campaign != r.camp.Name {
		return nil, fmt.Errorf("core: experiment %q belongs to campaign %q, runner drives %q",
			expName, orig.Campaign, r.camp.Name)
	}
	seq := orig.Data.Seq
	fault := orig.Data.Fault
	ex := r.newExperiment(seq, &fault, orig.Data.Trigger)
	// Find a free rerun name.
	base := expName + "/rerun"
	name := ""
	for n := 1; ; n++ {
		candidate := fmt.Sprintf("%s%d", base, n)
		if _, err := r.store.GetExperiment(candidate); err != nil {
			name = candidate
			break
		}
	}
	ex.Name = name
	if detail {
		parent := name
		ex.DetailSink = func(step int, sv *campaign.StateVector) error {
			return r.store.LogExperiment(&campaign.ExperimentRecord{
				Name:     fmt.Sprintf("%s/step%06d", parent, step),
				Parent:   parent,
				Campaign: r.camp.Name,
				Step:     step,
				State:    *sv,
			})
		}
	}
	if err := r.runOne(ex, expName); err != nil {
		return nil, err
	}
	return ex, nil
}
