package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"goofi/internal/campaign"
	"goofi/internal/faultmodel"
	"goofi/internal/scanchain"
	"goofi/internal/telemetry"
	"goofi/internal/trigger"
)

// ProgressEvent is one update shown in the progress window (paper Fig 7):
// how many experiments have run, what phase the tool is in, and which
// experiment is active.
type ProgressEvent struct {
	Campaign   string
	Phase      string // "reference", "experiment", "paused", "done", "stopped"
	Done       int
	Total      int
	Experiment string
	Outcome    campaign.OutcomeStatus
}

// Summary aggregates a campaign's raw outcomes. (Dependability measures —
// effective/latent/overwritten classification — come from the analysis
// phase, which compares logged states against the reference run.)
type Summary struct {
	Campaign    string
	Experiments int
	Injected    int
	// Skipped counts injections rejected by the pre-injection filter
	// before an experiment was spent on them.
	Skipped     int
	ByStatus    map[campaign.OutcomeStatus]int
	ByMechanism map[string]int
	// Forwarded counts experiments that restored a checkpoint instead of
	// re-emulating the fault-free prefix.
	Forwarded int
	// CyclesEmulated is the total cycles actually emulated across the
	// reference run and all experiments; CyclesSaved is the total cycles
	// skipped by checkpoint restores. Cold execution of the same plan
	// emulates CyclesEmulated + CyclesSaved.
	CyclesEmulated uint64
	CyclesSaved    uint64
	// ForwardPlacement names the checkpoint placement strategy the
	// reference run recorded with ("interval" or "optimal"; empty when
	// forwarding was off). ForwardPredictedDelta is the plan's predicted
	// re-emulation cycles under the placement cost model, and
	// ForwardDeltaCycles the achieved total — for each injected
	// experiment, the cycles between its restore point (or cycle 0 when
	// cold) and its injection cycle. Comparing achieved against predicted
	// shows how close the placement came to its model's optimum.
	ForwardPlacement      string
	ForwardPredictedDelta uint64
	ForwardDeltaCycles    uint64
	// Retried counts failed experiment attempts that were re-executed
	// under the retry policy; InvalidRuns counts experiments that
	// exhausted their attempts and were recorded as OutcomeInvalidRun;
	// QuarantinedBoards counts boards the circuit breaker removed.
	Retried           int
	InvalidRuns       int
	QuarantinedBoards int
	// PlanHash fingerprints the campaign's full injection plan (seq →
	// fault + trigger) before execution; Deterministic reports the
	// target's declared capability (TargetDeterministic). For
	// non-deterministic targets the plan hash is the replayable
	// artifact: same seed → same hash, even though per-run outcomes are
	// statistical.
	PlanHash      string
	Deterministic bool
}

// Runner executes fault injection campaigns: a reference run followed by
// NumExperiments fault injection experiments, with logging through a
// ResultSink and pause/resume/stop control (paper Fig 7). Run is the only
// execution entry point; the board count is a parameter (WithBoards), not
// a separate method.
type Runner struct {
	target TargetSystem
	alg    Algorithm
	camp   *campaign.Campaign
	tsd    *campaign.TargetSystemData

	sink       ResultSink
	onProgress func(ProgressEvent)
	filter     func(f faultmodel.Fault, trig trigger.Spec) bool
	boards     int
	factory    func() TargetSystem

	// Durable checkpointing (WithCheckpoints/WithResume). onPause is set
	// by Run for the duration of the dispatch loop so the pause
	// checkpoint can persist the campaign cursor.
	ckptEvery int
	resume    *campaign.Checkpoint
	onPause   func()

	// fw tunes checkpoint fast-forwarding (WithForwarding); the zero
	// value enables it with defaults.
	fw ForwardConfig

	// shardLo/shardHi restrict dispatch to a sequence range
	// (WithShardRange); shardHi == 0 means the full plan.
	shardLo, shardHi int

	// presetFw is a forward set recorded by an earlier run of the same
	// campaign (WithForwardSet); capturedFw is whatever set this run
	// ended up using, exposed through ForwardSet() so shard workers can
	// carry it across ranges.
	presetFw   *ForwardSet
	capturedFw *ForwardSet

	// retry is the fault-tolerance policy (WithRetryPolicy); the zero
	// value keeps the legacy abort-on-first-error behaviour.
	retry RetryPolicy

	// extFleet is a shared board fleet (WithFleet). When nil, Run builds
	// a private fleet over the runner's own board count, which preserves
	// the legacy single-campaign ownership model exactly.
	extFleet *Fleet

	// tracer and progress are the allocating half of the telemetry layer
	// (WithTelemetry); both are nil-safe and nil by default. The atomic
	// counters in metrics.go are always on regardless.
	tracer   *telemetry.Tracer
	progress *telemetry.Progress

	mu      sync.Mutex
	cond    *sync.Cond
	paused  bool
	stopped bool
	// stopNotify is closed by Stop while Run is dispatching, so workers
	// blocked in a fleet Acquire (not just in the pause Wait) observe
	// the stop promptly.
	stopNotify chan struct{}
}

// RunnerOption configures a Runner.
type RunnerOption func(*Runner)

// WithSink enables logging of every experiment through a ResultSink —
// typically *campaign.Store for synchronous writes or
// *campaign.BatchingSink for batched asynchronous ones.
func WithSink(s ResultSink) RunnerOption {
	return func(r *Runner) { r.sink = s }
}

// WithBoards sets how many simulated boards execute the campaign's plan
// concurrently. factory creates the target system each board drives; it is
// required above one board and, when non-nil, also supplies the reference
// run's target. The default is one board driving the runner's own target.
func WithBoards(boards int, factory func() TargetSystem) RunnerOption {
	return func(r *Runner) {
		r.boards = boards
		r.factory = factory
	}
}

// WithProgress installs a progress callback. It is invoked synchronously
// from the campaign goroutine; keep it fast.
func WithProgress(fn func(ProgressEvent)) RunnerOption {
	return func(r *Runner) { r.onProgress = fn }
}

// DefaultCheckpointInterval is how many completed experiments pass
// between durable campaign checkpoints unless configured otherwise.
const DefaultCheckpointInterval = 16

// WithCheckpoints enables durable campaign checkpoints: after the
// reference run, every `every` completed experiments (<= 0 selects
// DefaultCheckpointInterval), on pause, and at termination, the runner
// flushes the sink and persists the campaign cursor through the sink's
// SaveCheckpoint. Run fails if the configured sink is not a
// CheckpointSink. A process killed between checkpoints loses at most the
// experiments since the last cursor — and not even those when their
// records reached the store's write-ahead log.
func WithCheckpoints(every int) RunnerOption {
	if every <= 0 {
		every = DefaultCheckpointInterval
	}
	return func(r *Runner) { r.ckptEvery = every }
}

// WithResume continues a campaign from a recovered cursor (typically
// campaign.Store.RecoverCursor): completed experiments are skipped, the
// reference run is skipped when already logged, and the plan hash is
// validated so a changed campaign definition cannot silently resume onto
// stale results.
func WithResume(cp *campaign.Checkpoint) RunnerOption {
	return func(r *Runner) { r.resume = cp }
}

// WithForwarding configures checkpoint fast-forwarding. Forwarding is on
// by default (for targets implementing Forwarder and campaigns whose
// trigger is cycle-monotonic); pass ForwardConfig{Disabled: true} to run
// every experiment cold, or set the other fields to tune the planner.
func WithForwarding(cfg ForwardConfig) RunnerOption {
	return func(r *Runner) { r.fw = cfg }
}

// WithFleet runs the campaign against a shared board Fleet instead of a
// private one: board leases are acquired per experiment under the
// fleet's fair-share policy, so several concurrently running campaigns
// divide one board pool. The runner's board count (WithBoards) caps
// this campaign's parallelism; a target factory is required because a
// worker builds a fresh target each time it is granted a lease.
// Experiment outcomes are byte-identical to a private-fleet run — the
// plan is drawn before dispatch and every experiment is re-initialised
// from its per-sequence seed on whichever board runs it.
func WithFleet(f *Fleet) RunnerOption {
	return func(r *Runner) { r.extFleet = f }
}

// WithShardRange restricts dispatch to the plan's sequence numbers in
// [lo, hi). Planning still draws the complete plan from the campaign
// seed — the range only filters which experiments this runner executes —
// so every per-experiment seed, and therefore every record, is identical
// to the same sequence run as part of a full single-process campaign.
// This is the execution primitive of distributed sharding: each shard
// worker runs one range of the shared plan.
func WithShardRange(lo, hi int) RunnerOption {
	return func(r *Runner) {
		r.shardLo = lo
		r.shardHi = hi
	}
}

// WithForwardSet installs a checkpoint forward set recorded by an
// earlier reference run of the same campaign, for runs that skip the
// reference (a resumed shard range): board workers forward from the
// given set instead of running everything cold. The caller is
// responsible for the set matching the campaign; a mismatched set would
// restore foreign state. Harmless when the reference runs anyway — the
// freshly recorded set wins.
func WithForwardSet(set *ForwardSet) RunnerOption {
	return func(r *Runner) { r.presetFw = set }
}

// WithInjectionFilter installs a pre-injection filter (paper §4): drawn
// injections the filter rejects are skipped and redrawn, so every spent
// experiment targets live state. The number of skips is reported in
// Summary.Skipped.
func WithInjectionFilter(fn func(f faultmodel.Fault, trig trigger.Spec) bool) RunnerOption {
	return func(r *Runner) { r.filter = fn }
}

// NewRunner builds a runner for one campaign against one target system.
func NewRunner(ts TargetSystem, alg Algorithm, camp *campaign.Campaign,
	tsd *campaign.TargetSystemData, opts ...RunnerOption) (*Runner, error) {
	if err := camp.Validate(); err != nil {
		return nil, err
	}
	if err := tsd.Validate(); err != nil {
		return nil, err
	}
	if camp.TargetName != tsd.Name {
		return nil, fmt.Errorf("core: campaign %q targets %q, got target system %q",
			camp.Name, camp.TargetName, tsd.Name)
	}
	r := &Runner{target: ts, alg: alg, camp: camp, tsd: tsd, boards: 1}
	r.cond = sync.NewCond(&r.mu)
	for _, o := range opts {
		o(r)
	}
	return r, nil
}

// Pause suspends the campaign between experiments.
func (r *Runner) Pause() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.paused = true
}

// Resume continues a paused campaign (the "restart" control of Fig 7).
func (r *Runner) Resume() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.paused = false
	r.cond.Broadcast()
}

// Stop ends the campaign after the current experiment.
func (r *Runner) Stop() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stopped = true
	r.paused = false
	if r.stopNotify != nil {
		close(r.stopNotify)
		r.stopNotify = nil
	}
	r.cond.Broadcast()
}

// ForwardSet returns the checkpoint forward set the last Run used —
// recorded by its reference run, or the preset handed in through
// WithForwardSet. Valid after Run returns; nil when the target does not
// forward. Shard workers read it so later ranges of the same campaign
// can forward without re-running the reference.
func (r *Runner) ForwardSet() *ForwardSet { return r.capturedFw }

// checkpoint blocks while paused; it reports false when the campaign
// should stop (Stop called or context cancelled). On pause the sink is
// flushed — a checkpointed campaign is durable — and the paused progress
// event is emitted outside the lock so a callback may call Resume or
// Stop synchronously.
func (r *Runner) checkpoint(ctx context.Context) bool {
	r.mu.Lock()
	pausedNow := r.paused && !r.stopped
	r.mu.Unlock()
	if pausedNow {
		// A flush error will poison an asynchronous sink and resurface
		// from the termination flush; pausing itself need not fail.
		_ = r.flushSink()
		if r.onPause != nil {
			r.onPause() // persist the campaign cursor (durable checkpointing)
		}
		r.emit(ProgressEvent{Campaign: r.camp.Name, Phase: "paused"})
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.paused && !r.stopped && ctx.Err() == nil {
		r.cond.Wait()
	}
	return !r.stopped && ctx.Err() == nil
}

func (r *Runner) emit(ev ProgressEvent) {
	if r.onProgress != nil {
		r.onProgress(ev)
	}
}

// flushSink drains the sink when one is configured.
func (r *Runner) flushSink() error {
	if r.sink == nil {
		return nil
	}
	return r.sink.Flush()
}

// space resolves the campaign's selected locations against the target's
// scan chain map.
func (r *Runner) space() (*faultmodel.Space, *scanchain.Map, error) {
	chainName := r.camp.ChainName
	var m *scanchain.Map
	var err error
	if chainName == "" {
		if len(r.tsd.Chains) != 1 {
			return nil, nil, fmt.Errorf("core: campaign %q does not name a chain and target has %d",
				r.camp.Name, len(r.tsd.Chains))
		}
		m = &r.tsd.Chains[0]
	} else if m, err = r.tsd.Chain(chainName); err != nil {
		return nil, nil, err
	}
	locs := m.Select(r.camp.Locations...)
	if len(locs) == 0 {
		return nil, nil, fmt.Errorf("core: campaign %q selects no locations in chain %q",
			r.camp.Name, m.Chain)
	}
	// Injection never targets read-only cells; drop them from the space
	// (they remain observable).
	var writable []scanchain.Location
	for _, l := range locs {
		if !l.ReadOnly {
			writable = append(writable, l)
		}
	}
	sp, err := faultmodel.NewSpace(writable)
	if err != nil {
		return nil, nil, err
	}
	return sp, m, nil
}

// expSeed derives a per-experiment seed so that any experiment can be
// replayed in isolation (paper §2.3 re-runs).
func expSeed(campaignSeed int64, seq int) int64 {
	const mix = int64(-0x61C8_8646_80B5_83EB) // golden-ratio constant as int64
	return campaignSeed ^ (int64(seq+2) * mix)
}

// newExperiment builds the experiment context for sequence number seq.
func (r *Runner) newExperiment(seq int, fault *faultmodel.Fault, trig trigger.Spec) *Experiment {
	name := campaign.ExperimentName(r.camp.Name, seq)
	if seq < 0 {
		name = campaign.ReferenceName(r.camp.Name)
	}
	ex := &Experiment{
		Campaign: r.camp,
		Seq:      seq,
		Name:     name,
		Fault:    fault,
		Trigger:  trig,
		RNG:      rand.New(rand.NewSource(expSeed(r.camp.Seed, seq))),
	}
	if r.camp.LogMode == campaign.LogDetail && r.sink != nil {
		parent := name
		ex.DetailSink = func(step int, sv *campaign.StateVector) error {
			return r.sink.LogExperiment(detailRecord(r.camp.Name, parent, step, sv))
		}
	}
	return ex
}

// detailRecord builds one detail-mode trace row.
func detailRecord(campaignName, parent string, step int, sv *campaign.StateVector) *campaign.ExperimentRecord {
	return &campaign.ExperimentRecord{
		Name:     fmt.Sprintf("%s/step%06d", parent, step),
		Parent:   parent,
		Campaign: campaignName,
		Step:     step,
		State:    *sv,
	}
}

// runOne executes one experiment on the given board target and logs it.
func (r *Runner) runOne(target TargetSystem, ex *Experiment, parent string) error {
	if err := r.alg.Run(target, ex); err != nil {
		return fmt.Errorf("core: campaign %q %s: %w", r.camp.Name, ex.Name, err)
	}
	return r.logResult(ex, parent)
}

// logResult writes an experiment's end-of-run record to the sink.
func (r *Runner) logResult(ex *Experiment, parent string) error {
	if r.sink == nil {
		return nil
	}
	rec, err := ex.Record()
	if err != nil {
		return err
	}
	rec.Parent = parent
	return r.sink.LogExperiment(rec)
}

// sinkLog writes a prebuilt record when a sink is configured.
func (r *Runner) sinkLog(rec *campaign.ExperimentRecord) error {
	if r.sink == nil {
		return nil
	}
	return r.sink.LogExperiment(rec)
}

// Rerun repeats a logged experiment with the same fault and trigger,
// logging the new run with parentExperiment set to the original (paper
// §2.3: investigating an interesting experiment E1 by re-running it as E2
// with the same campaign data, typically in detail mode). detail forces
// detail-mode logging regardless of the campaign's log mode.
func (r *Runner) Rerun(expName string, detail bool) (*Experiment, error) {
	if r.sink == nil {
		return nil, fmt.Errorf("core: rerun needs a result sink")
	}
	orig, err := r.sink.GetExperiment(expName)
	if err != nil {
		return nil, err
	}
	if orig.Campaign != r.camp.Name {
		return nil, fmt.Errorf("core: experiment %q belongs to campaign %q, runner drives %q",
			expName, orig.Campaign, r.camp.Name)
	}
	seq := orig.Data.Seq
	fault := orig.Data.Fault
	ex := r.newExperiment(seq, &fault, orig.Data.Trigger)
	// Find a free rerun name.
	base := expName + "/rerun"
	name := ""
	for n := 1; ; n++ {
		candidate := fmt.Sprintf("%s%d", base, n)
		if _, err := r.sink.GetExperiment(candidate); err != nil {
			name = candidate
			break
		}
	}
	ex.Name = name
	if detail {
		parent := name
		ex.DetailSink = func(step int, sv *campaign.StateVector) error {
			return r.sink.LogExperiment(detailRecord(r.camp.Name, parent, step, sv))
		}
	}
	if err := r.runOne(r.boardTarget(), ex, expName); err != nil {
		return nil, err
	}
	if err := r.flushSink(); err != nil {
		return nil, err
	}
	return ex, nil
}
