package core

import (
	"testing"

	"goofi/internal/campaign"
)

// registryTestTarget is a minimal registrable target.
type registryTestTarget struct{ Framework }

func regTestInfo(kind string, aliases ...string) TargetInfo {
	return TargetInfo{
		Kind:    kind,
		Aliases: aliases,
		New: func(TargetConfig) (TargetSystem, error) {
			return &registryTestTarget{Framework{TargetName: kind}}, nil
		},
		SystemData: func(name string, cfg TargetConfig) (*campaign.TargetSystemData, error) {
			return &campaign.TargetSystemData{Name: name}, nil
		},
	}
}

func TestTargetRegistryLookupAndAliases(t *testing.T) {
	RegisterTarget(regTestInfo("registry-test-kind", "registry-test-alias"))
	if _, ok := LookupTarget("registry-test-kind"); !ok {
		t.Fatal("registered kind not found")
	}
	info, ok := LookupTarget("registry-test-alias")
	if !ok {
		t.Fatal("alias not resolved")
	}
	if info.Kind != "registry-test-kind" {
		t.Fatalf("alias resolved to %q", info.Kind)
	}
	if _, ok := LookupTarget("registry-test-missing"); ok {
		t.Fatal("lookup of unregistered kind succeeded")
	}
	// Targets folds aliases into their canonical entry and sorts.
	seen := 0
	var prev string
	for _, ti := range Targets() {
		if ti.Kind == "registry-test-kind" {
			seen++
		}
		if prev != "" && ti.Kind < prev {
			t.Fatalf("Targets not sorted: %q after %q", ti.Kind, prev)
		}
		prev = ti.Kind
	}
	if seen != 1 {
		t.Fatalf("canonical entry listed %d times, want 1", seen)
	}
}

func TestTargetRegistryDuplicatePanics(t *testing.T) {
	RegisterTarget(regTestInfo("registry-dup-kind"))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	RegisterTarget(regTestInfo("registry-dup-kind"))
}

// TestTargetDeterministicDefault pins the capability contract: targets
// without a Deterministic method keep the historical byte-identity
// guarantee; declaring the method is the only way to relax it.
func TestTargetDeterministicDefault(t *testing.T) {
	if !TargetDeterministic(&registryTestTarget{}) {
		t.Fatal("plain target not deterministic by default")
	}
	if !TargetDeterministic(&detTrue{}) || TargetDeterministic(&detFalse{}) {
		t.Fatal("declared capability not honoured")
	}
}

type detTrue struct{ Framework }

func (*detTrue) Deterministic() bool { return true }

type detFalse struct{ Framework }

func (*detFalse) Deterministic() bool { return false }
