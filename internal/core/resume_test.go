package core

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"goofi/internal/analysis"
	"goofi/internal/campaign"
	"goofi/internal/sqldb"
)

// openCampaignStore opens (or reopens) a file-backed store with the
// campaign fixtures in place.
func openCampaignStore(t *testing.T, path string, camp *campaign.Campaign) (*sqldb.DB, *campaign.Store) {
	t.Helper()
	db, err := sqldb.OpenAt(path, sqldb.SyncNever) // durability via barriers; no fsync in tests
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	st, err := campaign.NewStore(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutTargetSystem(fakeTSD()); err != nil {
		t.Fatal(err)
	}
	if err := st.PutCampaign(camp); err != nil {
		t.Fatal(err)
	}
	return db, st
}

// dumpLoggedState renders every LoggedSystemState row of a campaign in a
// canonical order, so two stores can be compared byte for byte.
func dumpLoggedState(t *testing.T, st *campaign.Store, name string) string {
	t.Helper()
	r, err := st.DB().Query(`SELECT experimentName, parentExperiment, campaignName, step,
		experimentData, stateVector FROM LoggedSystemState WHERE campaignName = ?`,
		sqldb.Text(name))
	if err != nil {
		t.Fatal(err)
	}
	lines := make([]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		lines = append(lines, strings.Join(cells, "|"))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func boardOpts(boards int) []RunnerOption {
	if boards <= 1 {
		return nil
	}
	return []RunnerOption{WithBoards(boards, func() TargetSystem { return newFakeTarget() })}
}

// TestResumeReproducesFullRun is the paper's crash-recovery acceptance
// check: a campaign stopped after k experiments and resumed from its
// recovered cursor must leave the database — and the analysis report
// derived from it — byte-identical to an uninterrupted run, for several
// stop points and board counts.
func TestResumeReproducesFullRun(t *testing.T) {
	const n = 12
	// The uninterrupted run everything is measured against.
	refCamp := fakeCampaign(n)
	_, refStore := openCampaignStore(t, filepath.Join(t.TempDir(), "full.db"), refCamp)
	r, err := NewRunner(newFakeTarget(), SCIFI, refCamp, fakeTSD(),
		WithSink(refStore), WithCheckpoints(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	wantState := dumpLoggedState(t, refStore, "fc")
	wantReport, err := analysis.AnalyzeAndStore(refStore, "fc")
	if err != nil {
		t.Fatal(err)
	}

	for _, boards := range []int{1, 3} {
		for _, k := range []int{1, 5, 11} {
			t.Run(fmt.Sprintf("boards=%d/k=%d", boards, k), func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "goofi.db")
				camp := fakeCampaign(n)
				db, st := openCampaignStore(t, path, camp)

				// Phase 1: run until k experiments completed, then stop —
				// the checkpoint interval of 2 means the stored cursor may
				// lag the durable rows, exactly like a crash between a
				// flush and a cursor write.
				var (
					mu   sync.Mutex
					seen int
				)
				var r1 *Runner
				r1, err := NewRunner(newFakeTarget(), SCIFI, camp, fakeTSD(),
					append(boardOpts(boards),
						WithSink(st), WithCheckpoints(2),
						WithProgress(func(ev ProgressEvent) {
							if ev.Phase != "experiment" {
								return
							}
							mu.Lock()
							seen++
							stop := seen == k
							mu.Unlock()
							if stop {
								r1.Stop()
							}
						}))...)
				if err != nil {
					t.Fatal(err)
				}
				sum1, err := r1.Run(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				if sum1.Experiments >= n {
					// With several boards a stop this close to the end can
					// lose the race with the last in-flight experiments.
					// The resume below must then be a no-op that changes
					// nothing — still worth asserting.
					t.Logf("stop at %d lost the race (%d ran); resume becomes a no-op check",
						k, sum1.Experiments)
				}
				// Simulate the kill: no db.Checkpoint, no graceful close —
				// reopen from the snapshot + write-ahead log alone.
				db.Close()
				db2, st2 := openCampaignStore(t, path, camp)
				_ = db2

				// Phase 2: recover the cursor and run the remainder.
				cp, err := st2.RecoverCursor("fc")
				if err != nil {
					t.Fatal(err)
				}
				if !cp.Reference {
					t.Fatal("recovered cursor lost the reference run")
				}
				if len(cp.Completed) < sum1.Experiments {
					t.Fatalf("recovered %d completed experiments, first run logged %d",
						len(cp.Completed), sum1.Experiments)
				}
				r2, err := NewRunner(newFakeTarget(), SCIFI, camp, fakeTSD(),
					append(boardOpts(boards),
						WithSink(st2), WithCheckpoints(2), WithResume(cp))...)
				if err != nil {
					t.Fatal(err)
				}
				sum2, err := r2.Run(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				if got := len(cp.Completed) + sum2.Experiments; got != n {
					t.Fatalf("resumed run completed %d total experiments, want %d", got, n)
				}

				// The resumed database must match the uninterrupted one.
				if got := dumpLoggedState(t, st2, "fc"); got != wantState {
					t.Errorf("logged state after resume differs from full run:\n got: %.200s...\nwant: %.200s...",
						got, wantState)
				}
				rep, err := analysis.AnalyzeAndStore(st2, "fc")
				if err != nil {
					t.Fatal(err)
				}
				if rep.Render() != wantReport.Render() {
					t.Error("analysis report after resume differs from full run")
				}
			})
		}
	}
}

// TestResumeRejectsChangedPlan: a checkpoint from one campaign
// definition must not resume onto another.
func TestResumeRejectsChangedPlan(t *testing.T) {
	camp := fakeCampaign(6)
	st := storeWithCampaign(t, camp)
	var r1 *Runner
	var once sync.Once
	r1, err := NewRunner(newFakeTarget(), SCIFI, camp, fakeTSD(),
		WithSink(st), WithCheckpoints(1),
		WithProgress(func(ev ProgressEvent) {
			if ev.Phase == "experiment" {
				once.Do(func() { r1.Stop() })
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r1.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	cp, err := st.RecoverCursor("fc")
	if err != nil {
		t.Fatal(err)
	}
	if cp.PlanHash == "" {
		t.Fatal("no plan hash in recovered cursor")
	}
	changed := fakeCampaign(6)
	changed.Seed = 999 // different seed → different plan
	if err := st.PutCampaign(changed); err != nil {
		t.Fatal(err)
	}
	r2, err := NewRunner(newFakeTarget(), SCIFI, changed, fakeTSD(),
		WithSink(st), WithCheckpoints(1), WithResume(cp))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r2.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "plan hash mismatch") {
		t.Errorf("changed plan resumed: err = %v", err)
	}
}

// TestCheckpointsNeedCheckpointSink: WithCheckpoints over a sink that
// cannot store a cursor is a configuration error, not a silent no-op.
func TestCheckpointsNeedCheckpointSink(t *testing.T) {
	camp := fakeCampaign(2)
	r, err := NewRunner(newFakeTarget(), SCIFI, camp, fakeTSD(),
		WithSink(plainSink{}), WithCheckpoints(1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "SaveCheckpoint") {
		t.Errorf("err = %v, want checkpoint-sink error", err)
	}
}

// plainSink is a ResultSink without SaveCheckpoint.
type plainSink struct{}

func (plainSink) LogExperiment(*campaign.ExperimentRecord) error { return nil }
func (plainSink) GetExperiment(string) (*campaign.ExperimentRecord, error) {
	return nil, fmt.Errorf("not found")
}
func (plainSink) Flush() error { return nil }

// TestPauseWritesCursor: pausing is a durable checkpoint — the cursor
// row exists while the campaign is paused.
func TestPauseWritesCursor(t *testing.T) {
	camp := fakeCampaign(8)
	st := storeWithCampaign(t, camp)
	var r *Runner
	var mu sync.Mutex
	paused := false
	sawCursor := false
	r, err := NewRunner(newFakeTarget(), SCIFI, camp, fakeTSD(),
		WithSink(st), WithCheckpoints(100), // periodic checkpoints never fire
		WithProgress(func(ev ProgressEvent) {
			switch ev.Phase {
			case "experiment":
				mu.Lock()
				trigger := ev.Done == 3 && !paused
				if trigger {
					paused = true
				}
				mu.Unlock()
				if trigger {
					r.Pause()
				}
			case "paused":
				cp, err := st.GetCheckpoint("fc")
				mu.Lock()
				sawCursor = err == nil && cp != nil && len(cp.Completed) >= 3
				mu.Unlock()
				r.Resume()
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !sawCursor {
		t.Error("paused campaign had no durable cursor covering completed experiments")
	}
}
