package core

import (
	"context"
	"errors"
	"fmt"
)

// Harness failures — faults of the test environment itself rather than
// the target under test — are first-class events for a campaign driver:
// TAP shifts get corrupted, boards wedge past waitForBreakpoint, host
// code panics. The runner classifies every experiment failure into one
// of three classes that determine the recovery strategy (retry, retry
// after power-cycle, or give up).

// ErrorClass is the recovery-relevant classification of an experiment
// failure.
type ErrorClass int

// Failure classes.
const (
	// Transient failures are expected to succeed on a plain retry
	// (corrupted scan read, spurious ExchangeDR error).
	Transient ErrorClass = iota
	// Persistent failures will not be fixed by retrying on the same
	// board state (configuration errors, NotImplementedError); the
	// runner retries them only after a board power-cycle, and without
	// backoff delay.
	Persistent
	// Wedged means the board stopped responding (watchdog deadline or
	// emulated-cycle cap exceeded, or a worker panic left the target in
	// an unknown state); the board must be power-cycled before reuse.
	Wedged
)

// String names the class for logs and reports.
func (c ErrorClass) String() string {
	switch c {
	case Transient:
		return "transient"
	case Persistent:
		return "persistent"
	case Wedged:
		return "wedged"
	}
	return fmt.Sprintf("ErrorClass(%d)", int(c))
}

// ExperimentError wraps an experiment failure with its classification
// and the attempt on which it occurred.
type ExperimentError struct {
	Class      ErrorClass
	Experiment string
	Attempt    int
	Err        error
}

func (e *ExperimentError) Error() string {
	return fmt.Sprintf("core: experiment %s attempt %d: %s harness failure: %v",
		e.Experiment, e.Attempt, e.Class, e.Err)
}

func (e *ExperimentError) Unwrap() error { return e.Err }

// Classifier lets an error carry its own class through wrapping layers;
// chaos-injected faults implement it so the runner's recovery matches
// the injected failure mode.
type Classifier interface {
	ErrorClass() ErrorClass
}

// ClassifyError maps an experiment failure to its recovery class:
// errors carrying a class keep it; NotImplementedError and context
// cancellation are persistent (retrying cannot help); everything else —
// scan-chain shift errors, panics converted to errors, device I/O — is
// treated as transient, the safe default for a flaky harness.
func ClassifyError(err error) ErrorClass {
	var ee *ExperimentError
	if errors.As(err, &ee) {
		return ee.Class
	}
	var cl Classifier
	if errors.As(err, &cl) {
		return cl.ErrorClass()
	}
	var ni *NotImplementedError
	if errors.As(err, &ni) {
		return Persistent
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return Persistent
	}
	return Transient
}
