package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"goofi/internal/telemetry"
)

// ErrNoBoards is returned by FleetHandle.Acquire when every board in the
// fleet has been quarantined — no lease can ever be granted again.
var ErrNoBoards = errors.New("core: fleet: all boards quarantined")

// Fleet metrics: fleet-wide board accounting for the daemon's /metrics.
var (
	mFleetHealthy = telemetry.NewGauge("goofi_fleet_boards_healthy",
		"Boards in the shared fleet that are not quarantined.")
	mFleetLeased = telemetry.NewGauge("goofi_fleet_boards_leased",
		"Boards currently leased to a running campaign.")
	mFleetLeases = telemetry.NewCounter("goofi_fleet_leases_total",
		"Board leases granted since process start.")
	mFleetWaits = telemetry.NewCounter("goofi_fleet_lease_waits_total",
		"Acquire calls that had to wait for a board to free up.")
)

type slotState int8

const (
	slotFree slotState = iota
	slotLeased
	slotQuarantined
)

// Fleet owns a pool of boards shared by concurrently running campaigns.
// Each campaign registers a FleetHandle for the duration of its run and
// acquires per-experiment board leases through it. The grant policy is
// fair-share: when boards are contended, a free board goes to the
// waiting campaign holding the fewest leases, and a campaign holding
// more than its entitlement (ceil(healthy / campaigns)) yields boards
// back between experiments (FleetHandle.ShouldYield). Quarantine is
// fleet-wide: a board the circuit breaker removes is gone for every
// campaign, not just the one that tripped it.
//
// A Runner without WithFleet builds a private Fleet over its own board
// count, which degenerates to the legacy ownership model: no other
// campaign ever contends, so Acquire never blocks and ShouldYield never
// fires.
type Fleet struct {
	mu      sync.Mutex
	cond    *sync.Cond
	slots   []slotState
	healthy int
	handles map[*FleetHandle]struct{}
}

// NewFleet builds a fleet of capacity boards, all free and healthy.
func NewFleet(capacity int) (*Fleet, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("core: fleet capacity %d < 1", capacity)
	}
	f := &Fleet{
		slots:   make([]slotState, capacity),
		healthy: capacity,
		handles: make(map[*FleetHandle]struct{}),
	}
	f.cond = sync.NewCond(&f.mu)
	mFleetHealthy.Set(int64(capacity))
	return f, nil
}

// Capacity is the total board count, quarantined boards included.
func (f *Fleet) Capacity() int { return len(f.slots) }

// Healthy is the number of boards not quarantined.
func (f *Fleet) Healthy() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.healthy
}

// Campaigns is the number of currently registered campaigns.
func (f *Fleet) Campaigns() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.handles)
}

// Register enrolls a campaign with the fleet for the duration of its
// run. The handle must be Closed when the campaign finishes so the
// fair-share entitlement of the remaining campaigns grows back.
func (f *Fleet) Register(campaignName string) *FleetHandle {
	h := &FleetHandle{fleet: f, name: campaignName}
	f.mu.Lock()
	f.handles[h] = struct{}{}
	f.mu.Unlock()
	// More campaigns shrink everyone's entitlement; wake waiters so
	// over-entitlement yields take effect promptly.
	f.cond.Broadcast()
	return h
}

// FleetHandle is one campaign's membership in the fleet.
type FleetHandle struct {
	fleet   *Fleet
	name    string
	held    int // leases currently held (guarded by fleet.mu)
	waiting int // Acquire calls currently blocked (guarded by fleet.mu)
	closed  bool
}

// Close deregisters the campaign. Outstanding leases should be released
// first; Close does not revoke them.
func (h *FleetHandle) Close() {
	f := h.fleet
	f.mu.Lock()
	h.closed = true
	delete(f.handles, h)
	f.mu.Unlock()
	f.cond.Broadcast()
}

// eligibleLocked reports whether this handle may take a free board right
// now: no other campaign is waiting with strictly fewer held leases.
// Callers hold fleet.mu.
func (h *FleetHandle) eligibleLocked() bool {
	for g := range h.fleet.handles {
		if g != h && g.waiting > 0 && g.held < h.held {
			return false
		}
	}
	return true
}

// Acquire leases a board, blocking while the fleet is fully leased by
// equally- or lesser-held campaigns. It fails with ErrNoBoards once
// every board is quarantined, and with ctx.Err() on cancellation.
func (h *FleetHandle) Acquire(ctx context.Context) (*Lease, error) {
	f := h.fleet
	// Wake this waiter when the context is cancelled so the Wait below
	// observes it (same pattern as Runner.checkpoint).
	stopWatch := context.AfterFunc(ctx, func() {
		f.mu.Lock()
		f.cond.Broadcast()
		f.mu.Unlock()
	})
	defer stopWatch()

	f.mu.Lock()
	defer f.mu.Unlock()
	waited := false
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if h.closed {
			return nil, fmt.Errorf("core: fleet: campaign %q acquired after Close", h.name)
		}
		if f.healthy == 0 {
			return nil, ErrNoBoards
		}
		if h.eligibleLocked() {
			for i, s := range f.slots {
				if s == slotFree {
					f.slots[i] = slotLeased
					h.held++
					mFleetLeases.Inc()
					mFleetLeased.Set(f.leasedLocked())
					return &Lease{fleet: f, handle: h, board: i}, nil
				}
			}
		}
		if !waited {
			waited = true
			mFleetWaits.Inc()
		}
		h.waiting++
		f.cond.Wait()
		h.waiting--
	}
}

// ShouldYield reports whether the campaign holds more than its
// fair-share entitlement while another campaign is waiting for a board.
// The entitlement is ceil(healthy / campaigns); checking strictly above
// it gives hysteresis, so boards do not ping-pong when the pool does not
// divide evenly (4 boards across 3 campaigns stabilises at 2/1/1).
func (h *FleetHandle) ShouldYield() bool {
	f := h.fleet
	f.mu.Lock()
	defer f.mu.Unlock()
	othersWaiting := false
	for g := range f.handles {
		if g != h && g.waiting > 0 {
			othersWaiting = true
			break
		}
	}
	if !othersWaiting {
		return false
	}
	n := len(f.handles)
	if n == 0 {
		return false
	}
	entitlement := (f.healthy + n - 1) / n
	return h.held > entitlement
}

func (f *Fleet) leasedLocked() int64 {
	var n int64
	for _, s := range f.slots {
		if s == slotLeased {
			n++
		}
	}
	return n
}

// Lease is one granted board. Exactly one of Release or Quarantine must
// be called; both are idempotent after the first.
type Lease struct {
	fleet  *Fleet
	handle *FleetHandle
	board  int
	done   bool
}

// Board is the fleet-wide board index of the leased board.
func (l *Lease) Board() int { return l.board }

// Release returns the board to the free pool.
func (l *Lease) Release() {
	f := l.fleet
	f.mu.Lock()
	if l.done {
		f.mu.Unlock()
		return
	}
	l.done = true
	f.slots[l.board] = slotFree
	l.handle.held--
	mFleetLeased.Set(f.leasedLocked())
	f.mu.Unlock()
	f.cond.Broadcast()
}

// Quarantine removes the board from the fleet for every campaign: the
// circuit breaker tripped on it, so no campaign should lease it again.
func (l *Lease) Quarantine() {
	f := l.fleet
	f.mu.Lock()
	if l.done {
		f.mu.Unlock()
		return
	}
	l.done = true
	f.slots[l.board] = slotQuarantined
	f.healthy--
	l.handle.held--
	mFleetHealthy.Set(int64(f.healthy))
	mFleetLeased.Set(f.leasedLocked())
	f.mu.Unlock()
	f.cond.Broadcast()
}
