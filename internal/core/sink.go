package core

import "goofi/internal/campaign"

// ResultSink receives every record a campaign produces: end-of-experiment
// results, the reference run, and detail-mode step traces. The scheduler
// writes through this interface only, so storage can be synchronous
// (*campaign.Store) or batched and asynchronous (*campaign.BatchingSink)
// without the execution layer knowing.
//
// LogExperiment may be called from several board goroutines concurrently.
// Flush blocks until everything logged so far is durable; the scheduler
// calls it at pause checkpoints and on termination. GetExperiment must
// observe records previously passed to LogExperiment (read-your-writes);
// Rerun depends on it.
type ResultSink interface {
	LogExperiment(*campaign.ExperimentRecord) error
	GetExperiment(name string) (*campaign.ExperimentRecord, error)
	Flush() error
}

// CheckpointSink is a ResultSink that can persist a campaign cursor
// durably. SaveCheckpoint must flush every record logged before it and
// raise a durability barrier before the cursor is considered saved, so
// that a stored checkpoint always implies its experiments survived too.
// Both *campaign.Store and *campaign.BatchingSink satisfy it.
type CheckpointSink interface {
	ResultSink
	SaveCheckpoint(*campaign.Checkpoint) error
}
