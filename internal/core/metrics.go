package core

import (
	"goofi/internal/telemetry"
)

// Scheduler and fault-tolerance metrics. These are package-level and
// always on: every update is a single atomic add, cheap enough to leave
// unconditional, which keeps the hot path free of telemetry branches
// and guarantees the telemetry-on and telemetry-off configurations
// execute identical experiment code (the differential test's premise).
var (
	mDispatched = telemetry.NewCounter("goofi_scheduler_experiments_dispatched_total",
		"Experiments handed to a board worker (includes re-dispatch after requeue).")
	mCompleted = telemetry.NewCounter("goofi_scheduler_experiments_completed_total",
		"Experiments that finished and were logged successfully.")
	mForwarded = telemetry.NewCounter("goofi_scheduler_experiments_forwarded_total",
		"Experiments that restored a checkpoint instead of re-emulating the fault-free prefix.")
	mInvalidRuns = telemetry.NewCounter("goofi_scheduler_invalid_runs_total",
		"Experiments recorded as invalid after exhausting their retry budget.")
	mQueueDepth = telemetry.NewGauge("goofi_scheduler_queue_depth",
		"Experiments waiting in the dispatch queue.")
	mBoardBusyNS = telemetry.NewCounterVec("goofi_scheduler_board_busy_ns_total",
		"Wall-clock nanoseconds each board spent executing experiment attempts.", "board")
	mQuarantined = telemetry.NewCounter("goofi_scheduler_boards_quarantined_total",
		"Boards removed by the circuit breaker.")
	mCyclesEmulated = telemetry.NewCounter("goofi_scheduler_cycles_emulated_total",
		"Target cycles actually emulated across reference runs and experiments.")
	mCyclesSaved = telemetry.NewCounter("goofi_scheduler_cycles_saved_total",
		"Target cycles skipped by checkpoint fast-forwarding.")
	mForwardDelta = telemetry.NewCounter("goofi_scheduler_forward_delta_cycles_total",
		"Achieved checkpoint-to-injection re-emulation cycles, summed over injected experiments.")
	mForwardPredicted = telemetry.NewGauge("goofi_scheduler_forward_predicted_delta_cycles",
		"The checkpoint plan's predicted re-emulation cycles under the placement cost model.")

	mRetries = telemetry.NewCounterVec("goofi_robust_retries_total",
		"Experiment attempts retried, by harness failure class.", "class")
	mWatchdogFires = telemetry.NewCounter("goofi_robust_watchdog_fires_total",
		"Attempts killed by the wall-clock watchdog or the emulated-cycle cap.")
	mBackoffNS = telemetry.NewCounter("goofi_robust_backoff_ns_total",
		"Nanoseconds spent in retry backoff sleeps.")
)

// Retry-class children resolved once so the retry path stays off the
// family's mutex.
var (
	mRetriesTransient  = mRetries.With(Transient.String())
	mRetriesPersistent = mRetries.With(Persistent.String())
	mRetriesWedged     = mRetries.With(Wedged.String())
)

func retryCounter(c ErrorClass) *telemetry.Counter {
	switch c {
	case Persistent:
		return mRetriesPersistent
	case Wedged:
		return mRetriesWedged
	default:
		return mRetriesTransient
	}
}

// WithTelemetry attaches the allocating half of the observability layer
// to a runner: the span tracer (phase intervals destined for the
// CampaignTelemetry table) and the live progress tracker served at
// /progress. Both may be nil; the always-on atomic counters above need
// no option. Telemetry observes the campaign strictly from the outside —
// it never feeds back into experiment construction, RNG draws, or record
// bytes, so a telemetered run is byte-identical to a bare one.
func WithTelemetry(tr *telemetry.Tracer, prog *telemetry.Progress) RunnerOption {
	return func(r *Runner) {
		r.tracer = tr
		r.progress = prog
	}
}
