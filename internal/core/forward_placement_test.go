package core

import (
	"math/rand"
	"testing"

	"goofi/internal/trigger"
)

// placementRunner builds a runner over a windowed cycle-trigger campaign
// so both placement strategies are exercised through the real
// forwardPlan entry point.
func placementRunner(t *testing.T, n int, lo, hi uint64, fw ForwardConfig) *Runner {
	t.Helper()
	camp := fakeCampaign(n)
	camp.RandomWindow = [2]uint64{lo, hi}
	r, err := NewRunner(newFakeTarget(), SCIFI, camp, fakeTSD())
	if err != nil {
		t.Fatal(err)
	}
	r.fw = fw
	return r
}

func plannedAt(cycles []uint64) []plannedExperiment {
	out := make([]plannedExperiment, len(cycles))
	for i, c := range cycles {
		out[i] = plannedExperiment{seq: i, trig: trigger.Spec{Kind: "cycle", Cycle: c}}
	}
	return out
}

// modelCost is the placement cost model both strategies are scored
// under: predicted re-emulation plus the per-checkpoint price. A nil
// plan means everything runs cold.
func modelCost(plan *ForwardPlan, h forwardHistogram, snapCost uint64) uint64 {
	if plan == nil {
		var total uint64
		for _, wt := range h.wcycles {
			total += wt
		}
		return total
	}
	return forwardPredictedDelta(plan.Cycles, h) + uint64(len(plan.Cycles))*snapCost
}

// TestOptimalPlacementNeverWorseThanInterval is the planner's core
// property: on random injection histograms, the DP's plan never costs
// more than interval placement under the shared cost model (the DP is
// exact over candidate positions, and any plan can be shifted onto
// candidates without increasing cost).
func TestOptimalPlacementNeverWorseThanInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		lo := uint64(1 + rng.Intn(2000))
		hi := lo + uint64(100+rng.Intn(200_000))
		n := 1 + rng.Intn(120)
		snapCost := uint64(64 + rng.Intn(512))
		maxCp := 1 + rng.Intn(24)
		cycles := make([]uint64, n)
		for i := range cycles {
			// Mix uniform draws with tight clusters, the regime where
			// interval placement wastes checkpoints on empty spans.
			if rng.Intn(3) == 0 && i > 0 {
				cycles[i] = cycles[i-1] + uint64(rng.Intn(40))
				if cycles[i] >= hi {
					cycles[i] = hi - 1
				}
			} else {
				cycles[i] = lo + uint64(rng.Int63n(int64(hi-lo)))
			}
		}
		planned := plannedAt(cycles)
		hist, ok := forwardHistogramOf(planned)
		if !ok {
			t.Fatalf("trial %d: histogram rejected a pure cycle plan", trial)
		}

		fw := ForwardConfig{MaxCheckpoints: maxCp, SnapshotCostCycles: snapCost}
		r := placementRunner(t, n, lo, hi, fw)
		intPlan := r.forwardPlan(planned, nil)
		r.fw.Placement = PlacementOptimal
		optPlan := r.forwardPlan(planned, nil)

		ic := modelCost(intPlan, hist, snapCost)
		oc := modelCost(optPlan, hist, snapCost)
		if oc > ic {
			t.Fatalf("trial %d (n=%d window=[%d,%d) k=%d snap=%d): optimal cost %d > interval cost %d",
				trial, n, lo, hi, maxCp, snapCost, oc, ic)
		}
		if optPlan != nil {
			if optPlan.Placement != PlacementOptimal {
				t.Fatalf("trial %d: placement label %q", trial, optPlan.Placement)
			}
			if len(optPlan.Cycles) > maxCp {
				t.Fatalf("trial %d: %d checkpoints over budget %d", trial, len(optPlan.Cycles), maxCp)
			}
			if got, want := optPlan.PredictedDelta, forwardPredictedDelta(optPlan.Cycles, hist); got != want {
				t.Fatalf("trial %d: PredictedDelta %d, evaluator says %d", trial, got, want)
			}
			for i := 1; i < len(optPlan.Cycles); i++ {
				if optPlan.Cycles[i] <= optPlan.Cycles[i-1] {
					t.Fatalf("trial %d: plan cycles not strictly ascending: %v", trial, optPlan.Cycles)
				}
			}
		}
	}
}

// TestOptimalPlacementKnownOptimum pins the DP on a hand-checkable
// histogram: two tight clusters far apart, two checkpoints allowed.
// The optimal plan puts one checkpoint at the margin before each
// cluster head; every injection then re-emulates only the margin plus
// its offset within the cluster.
func TestOptimalPlacementKnownOptimum(t *testing.T) {
	cycles := []uint64{10_000, 10_010, 10_020, 90_000, 90_010, 90_020}
	planned := plannedAt(cycles)
	hist, _ := forwardHistogramOf(planned)
	plan := optimalForwardPlan(hist, 2, 128)
	if plan == nil {
		t.Fatal("planner declined a clearly profitable histogram")
	}
	want := []uint64{10_000 - optimalForwardMargin, 90_000 - optimalForwardMargin}
	if len(plan.Cycles) != 2 || plan.Cycles[0] != want[0] || plan.Cycles[1] != want[1] {
		t.Fatalf("plan cycles %v, want %v", plan.Cycles, want)
	}
	// Each cluster: margin + {0,10,20} re-emulated.
	wantDelta := uint64(2 * (3*optimalForwardMargin + 0 + 10 + 20))
	if plan.PredictedDelta != wantDelta {
		t.Fatalf("PredictedDelta %d, want %d", plan.PredictedDelta, wantDelta)
	}
}

// TestOptimalPlacementUnprofitable: when one checkpoint would cost more
// than it could ever save, the DP must decline to place any.
func TestOptimalPlacementUnprofitable(t *testing.T) {
	// One injection at cycle 40: a checkpoint at 40-32=8 saves 8 cycles
	// of re-emulation but costs 128.
	hist, _ := forwardHistogramOf(plannedAt([]uint64{40}))
	if plan := optimalForwardPlan(hist, 4, 128); plan != nil {
		t.Fatalf("planner placed unprofitable checkpoints: %v", plan.Cycles)
	}
}

// TestOptimalPlacementInstretFallsBack: a plan containing any
// instret-watching trigger cannot be modelled by the cycle-histogram
// DP, so forwardPlan must fall back to interval placement.
func TestOptimalPlacementInstretFallsBack(t *testing.T) {
	planned := plannedAt([]uint64{5_000, 9_000})
	planned = append(planned, plannedExperiment{seq: 2, trig: trigger.Spec{Kind: "instret", Count: 100}})
	if _, ok := forwardHistogramOf(planned); ok {
		t.Fatal("histogram accepted an instret trigger")
	}
	r := placementRunner(t, 3, 1_000, 10_000,
		ForwardConfig{Placement: PlacementOptimal, MaxCheckpoints: 8, SnapshotCostCycles: 128})
	plan := r.forwardPlan(planned, nil)
	if plan == nil {
		t.Fatal("no fallback plan")
	}
	if plan.Placement != PlacementInterval {
		t.Fatalf("placement %q, want interval fallback", plan.Placement)
	}
}

// TestForwardMarginBoundary pins the usability rule at its exact edges:
// a checkpoint at cycle c serves an injection at t iff c + margin <= t.
// The margin absorbs capture overshoot (the snapshot lands at the first
// instruction boundary at or after c, at most one instruction later),
// so equality is usable and one cycle past it is not.
func TestForwardMarginBoundary(t *testing.T) {
	const m = optimalForwardMargin
	cp := []uint64{1000}
	cases := []struct {
		at   uint64
		cold bool
	}{
		{1000 + m, false},     // exactly margin after: usable
		{1000 + m + 1, false}, // just past: usable
		{1000 + m - 1, true},  // one cycle short of margin: cold
		{1000, true},          // at the checkpoint itself: cold
		{999, true},           // before it: cold
	}
	for _, tc := range cases {
		hist, _ := forwardHistogramOf(plannedAt([]uint64{tc.at}))
		delta := forwardPredictedDelta(cp, hist)
		wantDelta := tc.at // cold replays everything
		if !tc.cold {
			wantDelta = tc.at - cp[0]
		}
		if delta != wantDelta {
			t.Errorf("injection at %d with checkpoint at %d: delta %d, want %d (cold=%v)",
				tc.at, cp[0], delta, wantDelta, tc.cold)
		}
	}
	// The DP's own placements respect the margin: a point with
	// t <= margin has no room for a checkpoint and must stay cold.
	hist, _ := forwardHistogramOf(plannedAt([]uint64{m, m / 2}))
	if plan := optimalForwardPlan(hist, 4, 1); plan != nil {
		for _, c := range plan.Cycles {
			if c+m > m {
				t.Fatalf("checkpoint at %d cannot serve any planned point", c)
			}
		}
	}
}
