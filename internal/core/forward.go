package core

import (
	"sort"

	"goofi/internal/campaign"
)

// Checkpoint-based fast-forwarding. Every experiment of a campaign
// executes the same deterministic fault-free prefix up to its injection
// point. The runner therefore records checkpoints of the board state at
// planner-chosen cycles during the reference run; each faulty experiment
// then restores the nearest checkpoint at or before its injection cycle
// and emulates only the delta, instead of replaying the whole prefix.
// When no usable checkpoint exists — forwarding disabled, a trigger whose
// firing depends on the execution prefix, pin-level forcing active — the
// experiment falls back transparently to a cold start. Logged results are
// byte-identical either way; only the emulated cycle count changes.

// ForwardConfig tunes checkpoint forwarding. The zero value enables
// forwarding with defaults; set Disabled to opt out.
type ForwardConfig struct {
	// Disabled turns checkpoint forwarding off entirely.
	Disabled bool
	// Interval is the cycle spacing between planned checkpoints; 0 picks
	// a spacing that spreads MaxCheckpoints over the injection window.
	Interval uint64
	// MaxCheckpoints caps how many checkpoints the planner emits
	// (<= 0 selects DefaultMaxForwardCheckpoints).
	MaxCheckpoints int
	// MaxBytes caps the memory the checkpoint set may hold, counting
	// only fresh bytes (pages identical to the previous checkpoint are
	// shared). <= 0 selects DefaultMaxForwardBytes. Recording stops when
	// the budget is reached; later injection points run cold beyond the
	// last recorded checkpoint.
	MaxBytes int
	// Placement selects the checkpoint placement strategy:
	// PlacementInterval (the default; evenly spaced over the injection
	// window) or PlacementOptimal (dynamic programming over the drawn
	// plan's injection-cycle histogram, minimising expected re-emulated
	// cycles under the MaxCheckpoints budget). Optimal placement needs
	// every planned trigger to watch the cycle counter; otherwise the
	// planner silently falls back to interval placement.
	Placement string
	// SnapshotCostCycles is the optimal planner's estimate of what one
	// checkpoint costs (capture during the reference run plus restores),
	// expressed in emulated-cycle equivalents: a checkpoint is only
	// worth placing when it saves more re-emulation than this. 0 asks
	// the target to calibrate itself (ForwardCalibrator) at plan time;
	// an explicit value makes placement fully deterministic, which CI
	// benchmarks rely on.
	SnapshotCostCycles uint64
}

// Placement strategy names for ForwardConfig.Placement.
const (
	PlacementInterval = "interval"
	PlacementOptimal  = "optimal"
)

// Planner defaults.
const (
	// DefaultMaxForwardCheckpoints bounds the checkpoint count when the
	// config does not.
	DefaultMaxForwardCheckpoints = 64
	// DefaultMaxForwardBytes bounds the checkpoint set size (fresh bytes
	// after page sharing) when the config does not: 32 MiB.
	DefaultMaxForwardBytes = 32 << 20
	// minForwardInterval is the smallest cycle spacing the planner emits;
	// below this the restore saves less than the snapshot costs.
	minForwardInterval = 64
	// forwardMargin is subtracted from a fixed trigger point so the
	// recorded checkpoint lands strictly before the firing boundary even
	// in the worst case (the longest THOR-S instruction, including two
	// cache-miss penalties, costs well under this many cycles).
	forwardMargin = 64
	// optimalForwardMargin is the tighter margin the optimal planner
	// uses. A capture requested at cycle p lands at the first
	// instruction boundary at or after p, overshooting by at most one
	// instruction minus one cycle; the costliest THOR-S instruction
	// (DIV at 12 cycles plus two 8-cycle cache-miss fills) is 28
	// cycles, so a checkpoint planned at t-32 is captured at a cycle
	// <= t-32+27 < t and is always usable for an injection at t.
	optimalForwardMargin = 32
	// DefaultSnapshotCostCycles is the per-checkpoint cost estimate when
	// neither the config nor the target supplies one; calibrators also
	// fall back to it when their measurement fails.
	DefaultSnapshotCostCycles = 128
	// maxForwardDPBuckets bounds the optimal planner's histogram size:
	// above this many distinct injection cycles, adjacent cycles are
	// merged into buckets (keyed by their smallest cycle, with exact
	// weight and weighted-cycle sums) so the O(n^2*k) DP stays cheap.
	maxForwardDPBuckets = 512
)

// ForwardPlan tells a recording target at which cycles of the reference
// run to capture checkpoints.
type ForwardPlan struct {
	// Campaign names the campaign the plan belongs to; a ForwardSet is
	// only usable by experiments of the same campaign.
	Campaign string
	// Cycles are the planned capture cycles, strictly ascending. The
	// target captures at the first instruction boundary at or after each
	// point.
	Cycles []uint64
	// MaxBytes caps the set's fresh-byte footprint; recording stops at
	// the budget.
	MaxBytes int
	// Placement names the strategy that produced the plan ("interval"
	// or "optimal"), echoed into the campaign summary.
	Placement string
	// PredictedDelta is the planner's expectation of the total
	// re-emulated cycles across the drawn plan under this checkpoint
	// placement (conservative: it assumes every capture overshoots by
	// the full margin). The summary reports the achieved total next to
	// it.
	PredictedDelta uint64
}

// ForwardCheckpoint is one recorded restore point. State is the
// target-private board snapshot (opaque to core); Cycle and Instret are
// the counter values at capture, used to select the nearest usable
// checkpoint for an injection point. Bytes counts the fresh bytes this
// checkpoint added beyond what it shares with its predecessor.
type ForwardCheckpoint struct {
	Cycle   uint64
	Instret uint64
	Bytes   int
	State   any
}

// ForwardSet is the complete checkpoint set recorded during a campaign's
// reference run. Checkpoints are immutable after recording and ascending
// by cycle, so one set may be shared read-only by every board worker.
type ForwardSet struct {
	Campaign    string
	Checkpoints []*ForwardCheckpoint
	// Bytes is the total fresh-byte footprint after page sharing.
	Bytes int
}

// Nearest returns the last checkpoint whose counter (cycle, or instret
// when byInstret) is at or before at, or nil when none qualifies. Both
// counters increase strictly across instruction boundaries, so a
// checkpoint at exactly `at` is the firing boundary itself and restoring
// it is exact.
func (s *ForwardSet) Nearest(at uint64, byInstret bool) *ForwardCheckpoint {
	var best *ForwardCheckpoint
	for _, cp := range s.Checkpoints {
		c := cp.Cycle
		if byInstret {
			c = cp.Instret
		}
		if c > at {
			break
		}
		best = cp
	}
	return best
}

// Forwarder is the optional TargetSystem extension for checkpoint
// forwarding. The runner arms recording on the board that executes the
// reference run, takes the recorded set afterwards, and hands it to every
// board worker; targets that do not implement Forwarder simply run every
// experiment cold.
type Forwarder interface {
	// ArmForwardRecording prepares the target to record checkpoints at
	// the plan's cycles during the next reference run.
	ArmForwardRecording(plan *ForwardPlan)
	// TakeForwardSet returns the set recorded since ArmForwardRecording
	// and disarms recording; nil when nothing was recorded.
	TakeForwardSet() *ForwardSet
	// SetForwardSet installs a recorded set for use by subsequent
	// experiments on this target.
	SetForwardSet(set *ForwardSet)
}

// ForwardCalibrator is the optional target extension the optimal
// placement planner uses to price a checkpoint: ForwardCostCycles
// estimates what recording and restoring one checkpoint costs,
// expressed in emulated-cycle equivalents, by measuring the target's
// actual snapshot wall time against its emulation speed.
type ForwardCalibrator interface {
	ForwardCostCycles() uint64
}

// forwardPlan derives the checkpoint plan from the campaign definition
// and the drawn injection plan, or nil when forwarding cannot apply:
// disabled by config, detail-mode logging (per-instruction traces must
// cover the whole run), or a trigger whose firing depends on the
// execution prefix rather than a counter. calib prices checkpoints for
// the optimal planner; it may be nil.
func (r *Runner) forwardPlan(planned []plannedExperiment, calib ForwardCalibrator) *ForwardPlan {
	if r.fw.Disabled {
		return nil
	}
	if r.camp.LogMode == campaign.LogDetail {
		return nil
	}
	if !r.camp.Trigger.CycleMonotonic() {
		return nil
	}
	maxCp := r.fw.MaxCheckpoints
	if maxCp <= 0 {
		maxCp = DefaultMaxForwardCheckpoints
	}
	maxBytes := r.fw.MaxBytes
	if maxBytes <= 0 {
		maxBytes = DefaultMaxForwardBytes
	}
	if r.fw.Placement == PlacementOptimal {
		if hist, ok := forwardHistogramOf(planned); ok {
			snap := r.fw.SnapshotCostCycles
			if snap == 0 {
				snap = uint64(DefaultSnapshotCostCycles)
				if calib != nil {
					snap = calib.ForwardCostCycles()
				}
			}
			if plan := optimalForwardPlan(hist, maxCp, snap); plan != nil {
				plan.Campaign = r.camp.Name
				plan.MaxBytes = maxBytes
				return plan
			}
		}
		// Fall through to interval placement: the drawn plan has
		// triggers the DP cannot model (instret-watching or mixed).
	}
	plan := &ForwardPlan{Campaign: r.camp.Name, MaxBytes: maxBytes, Placement: PlacementInterval}
	if r.camp.RandomWindow[1] > 0 && r.camp.Trigger.Kind == "cycle" {
		// Windowed injection times: spread checkpoints across the window
		// so every drawn injection cycle has a nearby restore point.
		lo, hi := r.camp.RandomWindow[0], r.camp.RandomWindow[1]
		interval := r.fw.Interval
		if interval == 0 {
			interval = (hi - lo) / uint64(maxCp)
		}
		if interval < minForwardInterval {
			interval = minForwardInterval
		}
		start := uint64(1)
		if lo > forwardMargin {
			start = lo - forwardMargin
		}
		for c := start; c < hi && len(plan.Cycles) < maxCp; c += interval {
			plan.Cycles = append(plan.Cycles, c)
		}
	} else {
		// Fixed trigger point: one checkpoint just before it. For
		// instret triggers the margin still guarantees usability, since
		// instret never exceeds the cycle count.
		at, _, ok := r.camp.Trigger.ForwardPoint()
		if !ok || at <= forwardMargin {
			return nil
		}
		plan.Cycles = []uint64{at - forwardMargin}
	}
	if len(plan.Cycles) == 0 {
		return nil
	}
	if hist, ok := forwardHistogramOf(planned); ok {
		plan.PredictedDelta = forwardPredictedDelta(plan.Cycles, hist)
	}
	return plan
}

// forwardHistogram is the drawn plan's injection-cycle distribution,
// bucketed for the DP: cycles are distinct and ascending, weights count
// experiments per bucket, and wcycles holds the exact weighted cycle
// sum per bucket (so bucket merging loses no cost precision — only
// candidate checkpoint positions).
type forwardHistogram struct {
	cycles  []uint64
	weights []uint64
	wcycles []uint64
}

// forwardHistogramOf builds the histogram from the drawn plan. ok is
// false when any planned trigger is not a pure cycle-counter threshold
// (the DP's cost model would not be valid for it) or the plan is empty.
func forwardHistogramOf(planned []plannedExperiment) (forwardHistogram, bool) {
	ts := make([]uint64, 0, len(planned))
	for i := range planned {
		at, byInstret, ok := planned[i].trig.ForwardPoint()
		if !ok || byInstret {
			return forwardHistogram{}, false
		}
		ts = append(ts, at)
	}
	if len(ts) == 0 {
		return forwardHistogram{}, false
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	var h forwardHistogram
	for _, t := range ts {
		if n := len(h.cycles); n > 0 && h.cycles[n-1] == t {
			h.weights[n-1]++
			h.wcycles[n-1] += t
		} else {
			h.cycles = append(h.cycles, t)
			h.weights = append(h.weights, 1)
			h.wcycles = append(h.wcycles, t)
		}
	}
	if len(h.cycles) > maxForwardDPBuckets {
		h = h.rebucket(maxForwardDPBuckets)
	}
	return h, true
}

// rebucket merges adjacent distinct cycles into at most n buckets. Each
// bucket keeps its smallest cycle as the representative (the DP places
// checkpoints relative to representatives, so every point in the bucket
// still satisfies the margin) and the exact weight / weighted-cycle
// sums for cost bookkeeping.
func (h forwardHistogram) rebucket(n int) forwardHistogram {
	per := (len(h.cycles) + n - 1) / n
	out := forwardHistogram{}
	for i := 0; i < len(h.cycles); i += per {
		j := min(i+per, len(h.cycles))
		var w, wt uint64
		for k := i; k < j; k++ {
			w += h.weights[k]
			wt += h.wcycles[k]
		}
		out.cycles = append(out.cycles, h.cycles[i])
		out.weights = append(out.weights, w)
		out.wcycles = append(out.wcycles, wt)
	}
	return out
}

// optimalForwardPlan chooses checkpoint cycles minimising the model
// cost: the cold prefix replays in full, every other injection point t
// restores the last checkpoint planned at or before t-margin and
// re-emulates the difference, and each checkpoint placed costs
// snapCost. Candidate positions are t_a - margin for each bucket
// representative t_a (an exchange argument shows restricting to these
// loses nothing: shifting any checkpoint right to the next candidate
// serves the same points no farther from their restore point). The DP
// is exact over the bucketed histogram, so the resulting plan is never
// worse than interval placement under the same model — pinned by
// TestOptimalPlacementNeverWorseThanInterval.
func optimalForwardPlan(h forwardHistogram, maxCp int, snapCost uint64) *ForwardPlan {
	const m = optimalForwardMargin
	n := len(h.cycles)
	if n == 0 {
		return nil
	}
	// Prefix sums over buckets: W = weights, WT = weighted cycles.
	W := make([]uint64, n+1)
	WT := make([]uint64, n+1)
	for i := 0; i < n; i++ {
		W[i+1] = W[i] + h.weights[i]
		WT[i+1] = WT[i] + h.wcycles[i]
	}
	// groupCost(a, j): buckets a..j (1-based) all restore a checkpoint
	// at h.cycles[a-1]-m; each point t re-emulates t - p cycles.
	groupCost := func(a, j int) uint64 {
		p := h.cycles[a-1] - m
		return (WT[j] - WT[a-1]) - p*(W[j]-W[a-1])
	}
	// f[k][j]: minimal cost of the first j buckets using at most k
	// checkpoints, where the buckets after the last checkpoint's group
	// must be covered by it (matching the runtime rule: an experiment
	// always restores the nearest preceding checkpoint). Cold execution
	// is only possible for a prefix (k==0 over that prefix).
	if maxCp < 1 {
		return nil
	}
	f := make([][]uint64, maxCp+1)
	from := make([][]int, maxCp+1) // group start a, or 0 for "inherit f[k-1][j]"
	for k := 0; k <= maxCp; k++ {
		f[k] = make([]uint64, n+1)
		from[k] = make([]int, n+1)
	}
	for j := 1; j <= n; j++ {
		f[0][j] = WT[j] // everything cold
	}
	for k := 1; k <= maxCp; k++ {
		for j := 1; j <= n; j++ {
			best, bestA := f[k-1][j], 0
			for a := 1; a <= j; a++ {
				if h.cycles[a-1] <= m {
					continue // no room for the margin before this point
				}
				if c := f[k-1][a-1] + snapCost + groupCost(a, j); c < best {
					best, bestA = c, a
				}
			}
			f[k][j], from[k][j] = best, bestA
		}
	}
	// Reconstruct the checkpoint cycles from the DP choices.
	var cycles []uint64
	k, j := maxCp, n
	for j > 0 && k > 0 {
		a := from[k][j]
		if a == 0 {
			k--
			continue
		}
		cycles = append(cycles, h.cycles[a-1]-m)
		j = a - 1
		k--
	}
	if len(cycles) == 0 {
		return nil // checkpoints never paid for themselves
	}
	// Reverse into ascending order.
	for i, jj := 0, len(cycles)-1; i < jj; i, jj = i+1, jj-1 {
		cycles[i], cycles[jj] = cycles[jj], cycles[i]
	}
	return &ForwardPlan{
		Cycles:         cycles,
		Placement:      PlacementOptimal,
		PredictedDelta: forwardPredictedDelta(cycles, h),
	}
}

// forwardPredictedDelta evaluates a checkpoint plan against a histogram
// under the common conservative model: an injection at cycle t restores
// the last checkpoint planned at or before t-optimalForwardMargin, or
// replays from cycle 0 when none exists, and re-emulates the
// difference. Both placement strategies are scored with this one
// evaluator, which is what makes their PredictedDelta values (and the
// never-worse property test) comparable.
func forwardPredictedDelta(cycles []uint64, h forwardHistogram) uint64 {
	var total uint64
	for i, t := range h.cycles {
		var p, found = uint64(0), false
		for _, c := range cycles {
			if c+optimalForwardMargin <= t {
				p, found = c, true
			} else {
				break
			}
		}
		if found {
			total += (h.wcycles[i] - h.weights[i]*t) + h.weights[i]*(t-p)
		} else {
			total += h.wcycles[i]
		}
	}
	return total
}
