package core

import "goofi/internal/campaign"

// Checkpoint-based fast-forwarding. Every experiment of a campaign
// executes the same deterministic fault-free prefix up to its injection
// point. The runner therefore records checkpoints of the board state at
// planner-chosen cycles during the reference run; each faulty experiment
// then restores the nearest checkpoint at or before its injection cycle
// and emulates only the delta, instead of replaying the whole prefix.
// When no usable checkpoint exists — forwarding disabled, a trigger whose
// firing depends on the execution prefix, pin-level forcing active — the
// experiment falls back transparently to a cold start. Logged results are
// byte-identical either way; only the emulated cycle count changes.

// ForwardConfig tunes checkpoint forwarding. The zero value enables
// forwarding with defaults; set Disabled to opt out.
type ForwardConfig struct {
	// Disabled turns checkpoint forwarding off entirely.
	Disabled bool
	// Interval is the cycle spacing between planned checkpoints; 0 picks
	// a spacing that spreads MaxCheckpoints over the injection window.
	Interval uint64
	// MaxCheckpoints caps how many checkpoints the planner emits
	// (<= 0 selects DefaultMaxForwardCheckpoints).
	MaxCheckpoints int
	// MaxBytes caps the memory the checkpoint set may hold, counting
	// only fresh bytes (pages identical to the previous checkpoint are
	// shared). <= 0 selects DefaultMaxForwardBytes. Recording stops when
	// the budget is reached; later injection points run cold beyond the
	// last recorded checkpoint.
	MaxBytes int
}

// Planner defaults.
const (
	// DefaultMaxForwardCheckpoints bounds the checkpoint count when the
	// config does not.
	DefaultMaxForwardCheckpoints = 64
	// DefaultMaxForwardBytes bounds the checkpoint set size (fresh bytes
	// after page sharing) when the config does not: 32 MiB.
	DefaultMaxForwardBytes = 32 << 20
	// minForwardInterval is the smallest cycle spacing the planner emits;
	// below this the restore saves less than the snapshot costs.
	minForwardInterval = 64
	// forwardMargin is subtracted from a fixed trigger point so the
	// recorded checkpoint lands strictly before the firing boundary even
	// in the worst case (the longest THOR-S instruction, including two
	// cache-miss penalties, costs well under this many cycles).
	forwardMargin = 64
)

// ForwardPlan tells a recording target at which cycles of the reference
// run to capture checkpoints.
type ForwardPlan struct {
	// Campaign names the campaign the plan belongs to; a ForwardSet is
	// only usable by experiments of the same campaign.
	Campaign string
	// Cycles are the planned capture cycles, strictly ascending. The
	// target captures at the first instruction boundary at or after each
	// point.
	Cycles []uint64
	// MaxBytes caps the set's fresh-byte footprint; recording stops at
	// the budget.
	MaxBytes int
}

// ForwardCheckpoint is one recorded restore point. State is the
// target-private board snapshot (opaque to core); Cycle and Instret are
// the counter values at capture, used to select the nearest usable
// checkpoint for an injection point. Bytes counts the fresh bytes this
// checkpoint added beyond what it shares with its predecessor.
type ForwardCheckpoint struct {
	Cycle   uint64
	Instret uint64
	Bytes   int
	State   any
}

// ForwardSet is the complete checkpoint set recorded during a campaign's
// reference run. Checkpoints are immutable after recording and ascending
// by cycle, so one set may be shared read-only by every board worker.
type ForwardSet struct {
	Campaign    string
	Checkpoints []*ForwardCheckpoint
	// Bytes is the total fresh-byte footprint after page sharing.
	Bytes int
}

// Nearest returns the last checkpoint whose counter (cycle, or instret
// when byInstret) is at or before at, or nil when none qualifies. Both
// counters increase strictly across instruction boundaries, so a
// checkpoint at exactly `at` is the firing boundary itself and restoring
// it is exact.
func (s *ForwardSet) Nearest(at uint64, byInstret bool) *ForwardCheckpoint {
	var best *ForwardCheckpoint
	for _, cp := range s.Checkpoints {
		c := cp.Cycle
		if byInstret {
			c = cp.Instret
		}
		if c > at {
			break
		}
		best = cp
	}
	return best
}

// Forwarder is the optional TargetSystem extension for checkpoint
// forwarding. The runner arms recording on the board that executes the
// reference run, takes the recorded set afterwards, and hands it to every
// board worker; targets that do not implement Forwarder simply run every
// experiment cold.
type Forwarder interface {
	// ArmForwardRecording prepares the target to record checkpoints at
	// the plan's cycles during the next reference run.
	ArmForwardRecording(plan *ForwardPlan)
	// TakeForwardSet returns the set recorded since ArmForwardRecording
	// and disarms recording; nil when nothing was recorded.
	TakeForwardSet() *ForwardSet
	// SetForwardSet installs a recorded set for use by subsequent
	// experiments on this target.
	SetForwardSet(set *ForwardSet)
}

// forwardPlan derives the checkpoint plan from the campaign definition,
// or nil when forwarding cannot apply: disabled by config, detail-mode
// logging (per-instruction traces must cover the whole run), or a trigger
// whose firing depends on the execution prefix rather than a counter.
func (r *Runner) forwardPlan() *ForwardPlan {
	if r.fw.Disabled {
		return nil
	}
	if r.camp.LogMode == campaign.LogDetail {
		return nil
	}
	if !r.camp.Trigger.CycleMonotonic() {
		return nil
	}
	maxCp := r.fw.MaxCheckpoints
	if maxCp <= 0 {
		maxCp = DefaultMaxForwardCheckpoints
	}
	maxBytes := r.fw.MaxBytes
	if maxBytes <= 0 {
		maxBytes = DefaultMaxForwardBytes
	}
	plan := &ForwardPlan{Campaign: r.camp.Name, MaxBytes: maxBytes}
	if r.camp.RandomWindow[1] > 0 && r.camp.Trigger.Kind == "cycle" {
		// Windowed injection times: spread checkpoints across the window
		// so every drawn injection cycle has a nearby restore point.
		lo, hi := r.camp.RandomWindow[0], r.camp.RandomWindow[1]
		interval := r.fw.Interval
		if interval == 0 {
			interval = (hi - lo) / uint64(maxCp)
		}
		if interval < minForwardInterval {
			interval = minForwardInterval
		}
		start := uint64(1)
		if lo > forwardMargin {
			start = lo - forwardMargin
		}
		for c := start; c < hi && len(plan.Cycles) < maxCp; c += interval {
			plan.Cycles = append(plan.Cycles, c)
		}
	} else {
		// Fixed trigger point: one checkpoint just before it. For
		// instret triggers the margin still guarantees usability, since
		// instret never exceeds the cycle count.
		at, _, ok := r.camp.Trigger.ForwardPoint()
		if !ok || at <= forwardMargin {
			return nil
		}
		plan.Cycles = []uint64{at - forwardMargin}
	}
	if len(plan.Cycles) == 0 {
		return nil
	}
	return plan
}
