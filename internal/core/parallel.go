package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"goofi/internal/campaign"
	"goofi/internal/faultmodel"
	"goofi/internal/trigger"
)

// plannedExperiment is one pre-drawn injection.
type plannedExperiment struct {
	seq   int
	fault faultmodel.Fault
	trig  trigger.Spec
}

// plan draws the campaign's complete injection plan up front: the same
// stream a sequential Run would consume, so parallel execution yields
// bit-identical per-experiment results regardless of the board count.
func (r *Runner) plan() ([]plannedExperiment, int, error) {
	sp, _, err := r.space()
	if err != nil {
		return nil, 0, err
	}
	planRNG := rand.New(rand.NewSource(r.camp.Seed))
	out := make([]plannedExperiment, 0, r.camp.NumExperiments)
	skipped := 0
	maxRedraws := 1000 * r.camp.NumExperiments
	for i := 0; i < r.camp.NumExperiments; i++ {
		for {
			fault, err := sp.Sample(&r.camp.FaultModel, planRNG)
			if err != nil {
				return nil, 0, err
			}
			trig := r.camp.Trigger
			if r.camp.RandomWindow[1] > 0 {
				span := r.camp.RandomWindow[1] - r.camp.RandomWindow[0]
				trig.Cycle = r.camp.RandomWindow[0] + uint64(planRNG.Int63n(int64(span)))
			}
			if r.filter == nil || r.filter(fault, trig) {
				out = append(out, plannedExperiment{seq: i, fault: fault, trig: trig})
				break
			}
			skipped++
			if skipped > maxRedraws {
				return nil, 0, fmt.Errorf("core: campaign %q: pre-injection filter rejected %d draws",
					r.camp.Name, skipped)
			}
		}
	}
	return out, skipped, nil
}

// RunParallel executes the campaign across several simulated boards, each
// created by factory. Experiment outcomes are identical to a sequential
// Run with the same campaign (each experiment is fully re-initialised on
// whichever board runs it); only wall-clock time changes. The progress
// callback, when set, is invoked from multiple goroutines and must be
// safe for concurrent use. Pause/Resume/Stop work as in Run.
func (r *Runner) RunParallel(ctx context.Context, boards int, factory func() TargetSystem) (*Summary, error) {
	if boards < 1 {
		return nil, fmt.Errorf("core: board count %d < 1", boards)
	}
	cancelWatch := context.AfterFunc(ctx, func() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer cancelWatch()

	planned, skipped, err := r.plan()
	if err != nil {
		return nil, err
	}
	sum := &Summary{
		Campaign:    r.camp.Name,
		Skipped:     skipped,
		ByStatus:    make(map[campaign.OutcomeStatus]int),
		ByMechanism: make(map[string]int),
	}

	// Reference run on one board before fanning out.
	r.emit(ProgressEvent{Campaign: r.camp.Name, Phase: "reference", Total: r.camp.NumExperiments})
	refTarget := factory()
	ref := r.newExperiment(-1, nil, trigger.Spec{})
	if err := r.alg.Run(refTarget, ref); err != nil {
		return nil, fmt.Errorf("core: campaign %q %s: %w", r.camp.Name, ref.Name, err)
	}
	if r.store != nil {
		rec, err := ref.Record()
		if err != nil {
			return nil, err
		}
		if err := r.store.LogExperiment(rec); err != nil {
			return nil, err
		}
	}

	var (
		mu       sync.Mutex
		firstErr error
		done     int
	)
	work := make(chan plannedExperiment)
	var wg sync.WaitGroup
	for b := 0; b < boards; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			target := factory()
			for pe := range work {
				ex := r.newExperiment(pe.seq, &pe.fault, pe.trig)
				err := r.alg.Run(target, ex)
				var rec *campaign.ExperimentRecord
				if err == nil && r.store != nil {
					rec, err = ex.Record()
				}
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("core: campaign %q %s: %w", r.camp.Name, ex.Name, err)
					}
					mu.Unlock()
					continue
				}
				if rec != nil {
					if lerr := r.store.LogExperiment(rec); lerr != nil && firstErr == nil {
						firstErr = lerr
					}
				}
				sum.Experiments++
				if ex.Injected {
					sum.Injected++
				}
				st := ex.Result.Outcome.Status
				sum.ByStatus[st]++
				if st == campaign.OutcomeDetected {
					sum.ByMechanism[ex.Result.Outcome.Mechanism]++
				}
				done++
				ev := ProgressEvent{
					Campaign:   r.camp.Name,
					Phase:      "experiment",
					Done:       done,
					Total:      r.camp.NumExperiments,
					Experiment: ex.Name,
					Outcome:    st,
				}
				mu.Unlock()
				r.emit(ev)
			}
		}()
	}

dispatch:
	for _, pe := range planned {
		if !r.checkpoint(ctx) {
			break dispatch
		}
		mu.Lock()
		failed := firstErr != nil
		mu.Unlock()
		if failed {
			break dispatch
		}
		select {
		case work <- pe:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(work)
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	if ctx.Err() != nil {
		r.emit(ProgressEvent{Campaign: r.camp.Name, Phase: "stopped",
			Done: sum.Experiments, Total: r.camp.NumExperiments})
		return sum, ctx.Err()
	}
	phase := "done"
	if sum.Experiments < r.camp.NumExperiments {
		phase = "stopped"
	}
	r.emit(ProgressEvent{Campaign: r.camp.Name, Phase: phase,
		Done: sum.Experiments, Total: r.camp.NumExperiments})
	return sum, nil
}
