package core

import (
	"context"
	"encoding/json"
	"testing"

	"goofi/internal/campaign"
)

// recordJSON renders a campaign's stored records (reference included) to
// canonical JSON keyed by experiment name.
func recordJSON(t *testing.T, st *campaign.Store, name string) map[string]string {
	t.Helper()
	recs, err := st.Experiments(name)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string, len(recs))
	for _, rec := range recs {
		blob, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		out[rec.Name] = string(blob)
	}
	return out
}

// TestShardRangeUnionMatchesFullRun is the core-level sharding pin: the
// plan split into disjoint [lo,hi) ranges, each executed by its own
// runner into its own store, reproduces the full single-runner campaign
// record for record.
func TestShardRangeUnionMatchesFullRun(t *testing.T) {
	const n = 24
	full := func() map[string]string {
		camp := fakeCampaign(n)
		st := storeWithCampaign(t, camp)
		r, err := NewRunner(newFakeTarget(), SCIFI, camp, fakeTSD(), WithSink(st))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return recordJSON(t, st, camp.Name)
	}()

	for _, shards := range []int{1, 2, 3, 4} {
		union := make(map[string]string)
		per := (n + shards - 1) / shards
		for s := 0; s < shards; s++ {
			lo, hi := s*per, (s+1)*per
			if hi > n {
				hi = n
			}
			camp := fakeCampaign(n)
			st := storeWithCampaign(t, camp)
			r, err := NewRunner(newFakeTarget(), SCIFI, camp, fakeTSD(),
				WithSink(st), WithShardRange(lo, hi))
			if err != nil {
				t.Fatal(err)
			}
			sum, err := r.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if sum.Experiments != hi-lo {
				t.Fatalf("shard [%d,%d): ran %d experiments, want %d", lo, hi, sum.Experiments, hi-lo)
			}
			for name, blob := range recordJSON(t, st, camp.Name) {
				if prev, dup := union[name]; dup {
					// Every shard runs the reference; it must be identical.
					if name != campaign.ReferenceName(camp.Name) {
						t.Fatalf("shard [%d,%d): duplicate record %s", lo, hi, name)
					}
					if prev != blob {
						t.Fatalf("reference record differs between shards")
					}
				}
				union[name] = blob
			}
		}
		if len(union) != len(full) {
			t.Fatalf("shards=%d: union has %d records, full run has %d", shards, len(union), len(full))
		}
		for name, blob := range full {
			if union[name] != blob {
				t.Errorf("shards=%d: record %s differs\n sharded: %s\n    full: %s",
					shards, name, union[name], blob)
			}
		}
	}
}

// TestShardRangeResumeSkipsCompleted pins the worker-side idiom: a second
// range run with WithResume over the shard's own durable records skips
// the reference and everything already logged, and executes only the new
// range.
func TestShardRangeResumeSkipsCompleted(t *testing.T) {
	const n = 12
	camp := fakeCampaign(n)
	st := storeWithCampaign(t, camp)
	r1, err := NewRunner(newFakeTarget(), SCIFI, camp, fakeTSD(),
		WithSink(st), WithShardRange(0, 4), WithCheckpoints(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r1.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	cp, err := st.RecoverCursor(camp.Name)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Reference || len(cp.Completed) != 4 {
		t.Fatalf("cursor after first range = %+v", cp)
	}
	r2, err := NewRunner(newFakeTarget(), SCIFI, camp, fakeTSD(),
		WithSink(st), WithShardRange(8, 12), WithCheckpoints(2),
		WithResume(cp), WithForwardSet(r1.ForwardSet()))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Experiments != 4 {
		t.Fatalf("second range ran %d experiments, want 4", sum.Experiments)
	}
	recs := recordJSON(t, st, camp.Name)
	if len(recs) != 9 { // reference + seqs 0..3 + seqs 8..11
		t.Fatalf("shard store has %d records, want 9", len(recs))
	}
	for _, seq := range []int{4, 5, 6, 7} {
		if _, ok := recs[campaign.ExperimentName(camp.Name, seq)]; ok {
			t.Errorf("seq %d ran outside its range", seq)
		}
	}
}
