package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"goofi/internal/campaign"
)

// runCampaignOnBoards executes a fresh campaign on the given board count
// and returns its summary and logged records.
func runCampaignOnBoards(t *testing.T, camp *campaign.Campaign, boards int) (*Summary, []*campaign.ExperimentRecord) {
	t.Helper()
	st := storeWithCampaign(t, camp)
	opts := []RunnerOption{WithSink(st)}
	if boards != 1 {
		opts = append(opts, WithBoards(boards, func() TargetSystem { return newFakeTarget() }))
	}
	r, err := NewRunner(newFakeTarget(), SCIFI, camp, fakeTSD(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	recs, err := st.Experiments(camp.Name)
	if err != nil {
		t.Fatal(err)
	}
	return sum, recs
}

// recordBytes flattens a record to its stored representation (JSON data +
// encoded state vector) for byte-level comparison.
func recordBytes(t *testing.T, rec *campaign.ExperimentRecord) []byte {
	t.Helper()
	data, err := json.Marshal(&rec.Data)
	if err != nil {
		t.Fatal(err)
	}
	state, err := rec.State.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return append(append([]byte(rec.Name+"\x00"+rec.Parent+"\x00"), data...), state...)
}

func TestSchedulerOutcomesIdenticalAcrossBoardCounts(t *testing.T) {
	// The plan is drawn before execution, so per-experiment results must
	// be byte-identical whether 1, 2 or 4 boards consume it.
	camp := fakeCampaign(30)
	seqSum, seqRecs := runCampaignOnBoards(t, camp, 1)
	for _, boards := range []int{2, 4} {
		parSum, parRecs := runCampaignOnBoards(t, camp, boards)
		if parSum.Experiments != seqSum.Experiments || parSum.Injected != seqSum.Injected {
			t.Errorf("boards=%d: summaries differ: seq %+v, par %+v", boards, seqSum, parSum)
		}
		for st, n := range seqSum.ByStatus {
			if parSum.ByStatus[st] != n {
				t.Errorf("boards=%d status %v: seq %d, par %d", boards, st, n, parSum.ByStatus[st])
			}
		}
		if len(seqRecs) != len(parRecs) {
			t.Fatalf("boards=%d record counts: seq %d, par %d", boards, len(seqRecs), len(parRecs))
		}
		for i := range seqRecs {
			if !bytes.Equal(recordBytes(t, seqRecs[i]), recordBytes(t, parRecs[i])) {
				t.Errorf("boards=%d: record %s differs from sequential run", boards, seqRecs[i].Name)
			}
		}
	}
}

func TestSchedulerProgressThreadSafe(t *testing.T) {
	camp := fakeCampaign(40)
	var mu sync.Mutex
	count := 0
	r, err := NewRunner(nil, SCIFI, camp, fakeTSD(),
		WithBoards(8, func() TargetSystem { return newFakeTarget() }),
		WithProgress(func(ev ProgressEvent) {
			mu.Lock()
			if ev.Phase == "experiment" {
				count++
			}
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if count != 40 || sum.Experiments != 40 {
		t.Errorf("progress events %d, experiments %d", count, sum.Experiments)
	}
}

// TestSchedulerPauseResumeStopAcrossBoards is the Fig 7 control-path
// regression: pause, resume and stop behave the same at boards=1 and
// boards=4 — the pause is observed, the campaign completes after resume,
// and a later campaign stops cleanly with a nil error.
func TestSchedulerPauseResumeStopAcrossBoards(t *testing.T) {
	for _, boards := range []int{1, 4} {
		t.Run(fmt.Sprintf("boards=%d", boards), func(t *testing.T) {
			camp := fakeCampaign(10)
			var r *Runner
			var mu sync.Mutex
			pausedOnce := false
			sawPause := false
			var err error
			opts := []RunnerOption{WithProgress(func(ev ProgressEvent) {
				switch ev.Phase {
				case "experiment":
					mu.Lock()
					trigger := ev.Done == 3 && !pausedOnce
					if trigger {
						pausedOnce = true
					}
					mu.Unlock()
					if trigger {
						r.Pause()
					}
				case "paused":
					// Resume synchronously from the paused event, as the
					// Fig 7 GUI restart button would.
					mu.Lock()
					sawPause = true
					mu.Unlock()
					r.Resume()
				}
			})}
			if boards != 1 {
				opts = append(opts, WithBoards(boards, func() TargetSystem { return newFakeTarget() }))
			}
			r, err = NewRunner(newFakeTarget(), SCIFI, camp, fakeTSD(), opts...)
			if err != nil {
				t.Fatal(err)
			}
			sum, err := r.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if sum.Experiments != 10 {
				t.Errorf("experiments = %d, want 10", sum.Experiments)
			}
			if !sawPause {
				t.Error("pause phase never reported")
			}

			// Stop: a fresh campaign on the same board count ends early
			// with a nil error and a partial summary.
			camp2 := fakeCampaign(10000)
			var r2 *Runner
			var once sync.Once
			opts2 := []RunnerOption{WithProgress(func(ev ProgressEvent) {
				if ev.Phase == "experiment" && ev.Done >= 10 {
					once.Do(func() { r2.Stop() })
				}
			})}
			if boards != 1 {
				opts2 = append(opts2, WithBoards(boards, func() TargetSystem { return newFakeTarget() }))
			}
			r2, err = NewRunner(newFakeTarget(), SCIFI, camp2, fakeTSD(), opts2...)
			if err != nil {
				t.Fatal(err)
			}
			sum2, err := r2.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if sum2.Experiments < 10 || sum2.Experiments >= 10000 {
				t.Errorf("experiments after stop = %d", sum2.Experiments)
			}
		})
	}
}

func TestSchedulerBadBoardCount(t *testing.T) {
	camp := fakeCampaign(5)
	r, err := NewRunner(nil, SCIFI, camp, fakeTSD(),
		WithBoards(0, func() TargetSystem { return newFakeTarget() }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err == nil {
		t.Error("zero boards accepted")
	}
	// More than one board requires a target factory.
	r2, err := NewRunner(newFakeTarget(), SCIFI, camp, fakeTSD(), WithBoards(4, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Run(context.Background()); err == nil {
		t.Error("multi-board run without a factory accepted")
	}
}

func TestSchedulerTargetError(t *testing.T) {
	camp := fakeCampaign(20)
	// A Framework with nothing implemented fails on the first method.
	r, err := NewRunner(nil, SCIFI, camp, fakeTSD(),
		WithBoards(2, func() TargetSystem { return &Framework{TargetName: "broken"} }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err == nil {
		t.Error("broken target did not surface an error")
	}
}

func TestSchedulerContextCancelParallel(t *testing.T) {
	camp := fakeCampaign(100000)
	ctx, cancel := context.WithCancel(context.Background())
	r, err := NewRunner(nil, SCIFI, camp, fakeTSD(),
		WithBoards(4, func() TargetSystem { return newFakeTarget() }),
		WithProgress(func(ev ProgressEvent) {
			if ev.Phase == "experiment" && ev.Done == 5 {
				cancel()
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(ctx); err == nil {
		t.Error("cancelled context did not surface")
	}
}

func TestSchedulerLogsReference(t *testing.T) {
	camp := fakeCampaign(5)
	st := storeWithCampaign(t, camp)
	r, err := NewRunner(nil, SCIFI, camp, fakeTSD(), WithSink(st),
		WithBoards(2, func() TargetSystem { return newFakeTarget() }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := st.GetExperiment(campaign.ReferenceName("fc")); err != nil {
		t.Errorf("reference run not logged: %v", err)
	}
}

// TestSchedulerBatchingSink runs the same campaign through a synchronous
// Store sink and a BatchingSink and requires identical stored records —
// batching must be invisible to results.
func TestSchedulerBatchingSink(t *testing.T) {
	camp := fakeCampaign(25)
	_, direct := runCampaignOnBoards(t, camp, 1)

	st := storeWithCampaign(t, camp)
	sink := campaign.NewBatchingSink(st, 8)
	r, err := NewRunner(nil, SCIFI, camp, fakeTSD(), WithSink(sink),
		WithBoards(4, func() TargetSystem { return newFakeTarget() }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	batched, err := st.Experiments(camp.Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(batched) != len(direct) {
		t.Fatalf("record counts: direct %d, batched %d", len(direct), len(batched))
	}
	for i := range direct {
		if !bytes.Equal(recordBytes(t, direct[i]), recordBytes(t, batched[i])) {
			t.Errorf("record %s differs between direct and batched sink", direct[i].Name)
		}
	}
}

// TestSchedulerRerunAfterParallelRun verifies determinism end to end: an
// experiment executed by a 4-board pool reruns to its original outcome.
func TestSchedulerRerunAfterParallelRun(t *testing.T) {
	camp := fakeCampaign(12)
	st := storeWithCampaign(t, camp)
	r, err := NewRunner(nil, SCIFI, camp, fakeTSD(), WithSink(st),
		WithBoards(4, func() TargetSystem { return newFakeTarget() }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, seq := range []int{0, 5, 11} {
		origName := campaign.ExperimentName(camp.Name, seq)
		orig, err := st.GetExperiment(origName)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := r.Rerun(origName, false)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := st.GetExperiment(ex.Name)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Data.Outcome != orig.Data.Outcome {
			t.Errorf("rerun of %s: outcome %+v != original %+v", origName, rec.Data.Outcome, orig.Data.Outcome)
		}
	}
}
