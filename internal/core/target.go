// Package core is GOOFI's middle layer (paper Fig 1): the fault injection
// algorithms written against an abstract target system interface, the
// Framework template used when porting the tool to a new target, and the
// campaign runner with reference runs, progress reporting and database
// logging.
package core

import "fmt"

// NotImplementedError reports that a target system has not implemented an
// abstract method required by the selected fault injection algorithm —
// the Go rendering of the paper's "// Write your code here!" template
// (Fig 3): a port only fills in the methods its technique needs, and gets
// a precise error if an algorithm needs more.
type NotImplementedError struct {
	Target string
	Method string
}

func (e *NotImplementedError) Error() string {
	return fmt.Sprintf("core: target %q does not implement %s (required by the selected fault injection algorithm)",
		e.Target, e.Method)
}

// TargetSystem is the full set of abstract methods from the paper's
// FaultInjectionAlgorithms class (Fig 2). Fault injection algorithms are
// sequences of these building blocks; a TargetSystemInterface for a new
// target implements the subset its techniques use (embed Framework for
// the rest).
//
// Methods communicate through the Experiment context: ReadScanChain fills
// Experiment.ScanVector, InjectFault mutates it (or mutates target memory,
// for SWIFI techniques), WriteScanChain applies it, WaitForTermination and
// ReadMemory fill Experiment.Result.
type TargetSystem interface {
	// Name identifies the target system.
	Name() string
	// InitTestCard resets the test card and target hardware.
	InitTestCard(ex *Experiment) error
	// LoadWorkload prepares the workload image for the experiment.
	LoadWorkload(ex *Experiment) error
	// WriteMemory downloads the workload and initial input data into
	// target memory.
	WriteMemory(ex *Experiment) error
	// RunWorkload arms breakpoints/triggers and starts execution.
	RunWorkload(ex *Experiment) error
	// WaitForBreakpoint blocks until the injection point is reached.
	WaitForBreakpoint(ex *Experiment) error
	// ReadScanChain captures the scan chain into ex.ScanVector.
	ReadScanChain(ex *Experiment) error
	// InjectFault applies the experiment's fault (to ex.ScanVector for
	// scan-chain techniques, or directly to target state for others).
	InjectFault(ex *Experiment) error
	// WriteScanChain writes ex.ScanVector back to the target.
	WriteScanChain(ex *Experiment) error
	// WaitForTermination resumes execution until a termination
	// condition (paper §3.2) and fills ex.Result.Outcome.
	WaitForTermination(ex *Experiment) error
	// ReadMemory reads back observed memory into ex.Result.Memory.
	ReadMemory(ex *Experiment) error
}

// Framework is the template for new target systems (paper Fig 3): every
// abstract method reports NotImplementedError until overridden. Embed it
// in a TargetSystemInterface struct and implement only the methods the
// chosen fault injection algorithms use.
type Framework struct {
	// TargetName is reported by Name and in error messages.
	TargetName string
}

// Name returns the target name, or a placeholder when unset.
func (f *Framework) Name() string {
	if f.TargetName == "" {
		return "unnamed-target"
	}
	return f.TargetName
}

func (f *Framework) notImplemented(method string) error {
	return &NotImplementedError{Target: f.Name(), Method: method}
}

// InitTestCard reports NotImplementedError; override it in your target.
func (f *Framework) InitTestCard(*Experiment) error { return f.notImplemented("InitTestCard") }

// LoadWorkload reports NotImplementedError; override it in your target.
func (f *Framework) LoadWorkload(*Experiment) error { return f.notImplemented("LoadWorkload") }

// WriteMemory reports NotImplementedError; override it in your target.
func (f *Framework) WriteMemory(*Experiment) error { return f.notImplemented("WriteMemory") }

// RunWorkload reports NotImplementedError; override it in your target.
func (f *Framework) RunWorkload(*Experiment) error { return f.notImplemented("RunWorkload") }

// WaitForBreakpoint reports NotImplementedError; override it in your target.
func (f *Framework) WaitForBreakpoint(*Experiment) error {
	return f.notImplemented("WaitForBreakpoint")
}

// ReadScanChain reports NotImplementedError; override it in your target.
func (f *Framework) ReadScanChain(*Experiment) error { return f.notImplemented("ReadScanChain") }

// InjectFault applies the experiment's fault to ex.ScanVector. This
// generic implementation serves scan-chain techniques; SWIFI targets
// override it to mutate memory instead.
func (f *Framework) InjectFault(ex *Experiment) error {
	if ex.Fault == nil {
		return nil
	}
	if ex.ScanVector == nil {
		return fmt.Errorf("core: target %q: InjectFault before ReadScanChain", f.Name())
	}
	if err := ex.Fault.Validate(ex.ScanVector.Len()); err != nil {
		return err
	}
	ex.Fault.Apply(ex.ScanVector, ex.RNG)
	ex.Injected = true
	return nil
}

// WriteScanChain reports NotImplementedError; override it in your target.
func (f *Framework) WriteScanChain(*Experiment) error { return f.notImplemented("WriteScanChain") }

// WaitForTermination reports NotImplementedError; override it in your target.
func (f *Framework) WaitForTermination(*Experiment) error {
	return f.notImplemented("WaitForTermination")
}

// ReadMemory reports NotImplementedError; override it in your target.
func (f *Framework) ReadMemory(*Experiment) error { return f.notImplemented("ReadMemory") }

// Interface compliance: the Framework itself is a (non-functional) target.
var _ TargetSystem = (*Framework)(nil)
