package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestFleetLeaseAndRelease(t *testing.T) {
	f, err := NewFleet(2)
	if err != nil {
		t.Fatal(err)
	}
	h := f.Register("a")
	defer h.Close()
	ctx := context.Background()
	l1, err := h.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := h.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if l1.Board() == l2.Board() {
		t.Fatalf("both leases got board %d", l1.Board())
	}
	// The pool is exhausted: a third acquire blocks until a release.
	got := make(chan int, 1)
	go func() {
		l3, err := h.Acquire(ctx)
		if err != nil {
			got <- -1
			return
		}
		got <- l3.Board()
		l3.Release()
	}()
	select {
	case b := <-got:
		t.Fatalf("third acquire did not block (board %d)", b)
	case <-time.After(20 * time.Millisecond):
	}
	l1.Release()
	select {
	case b := <-got:
		if b != l1.Board() {
			t.Errorf("reacquired board %d, want released board %d", b, l1.Board())
		}
	case <-time.After(2 * time.Second):
		t.Fatal("acquire still blocked after release")
	}
	l2.Release()
}

func TestFleetQuarantineExhausts(t *testing.T) {
	f, err := NewFleet(1)
	if err != nil {
		t.Fatal(err)
	}
	h := f.Register("a")
	defer h.Close()
	l, err := h.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	l.Quarantine()
	if got := f.Healthy(); got != 0 {
		t.Fatalf("healthy = %d after quarantine, want 0", got)
	}
	if _, err := h.Acquire(context.Background()); !errors.Is(err, ErrNoBoards) {
		t.Fatalf("acquire after fleet exhaustion = %v, want ErrNoBoards", err)
	}
}

func TestFleetAcquireCancelled(t *testing.T) {
	f, err := NewFleet(1)
	if err != nil {
		t.Fatal(err)
	}
	h := f.Register("a")
	defer h.Close()
	l, err := h.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := h.Acquire(ctx)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("acquire = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled acquire never returned")
	}
}

// TestFleetFairShare: a campaign hogging the whole pool must yield once
// another campaign starts waiting, and a freed board goes to the
// campaign holding fewer leases.
func TestFleetFairShare(t *testing.T) {
	f, err := NewFleet(2)
	if err != nil {
		t.Fatal(err)
	}
	a := f.Register("a")
	defer a.Close()
	b := f.Register("b")
	defer b.Close()
	ctx := context.Background()
	la1, err := a.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	la2, err := a.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if a.ShouldYield() {
		t.Error("should not yield with no waiter")
	}
	got := make(chan *Lease, 1)
	go func() {
		lb, err := b.Acquire(ctx)
		if err != nil {
			t.Error(err)
			got <- nil
			return
		}
		got <- lb
	}()
	// Wait for b to be registered as a waiter.
	deadline := time.Now().Add(2 * time.Second)
	for !a.ShouldYield() {
		if time.Now().After(deadline) {
			t.Fatal("a never saw the yield signal")
		}
		time.Sleep(time.Millisecond)
	}
	la1.Release()
	lb := <-got
	if lb == nil {
		t.Fatal("b got no lease")
	}
	// Entitlement is now 1 each: neither campaign should yield further.
	if a.ShouldYield() {
		t.Error("a should keep its remaining board at 1/1")
	}
	// With b holding one and a holding one, a freed board may go to
	// either; but while b waits with fewer held than a, a is ineligible.
	lb2c := make(chan *Lease, 1)
	go func() {
		l, err := b.Acquire(ctx)
		if err != nil {
			t.Error(err)
			lb2c <- nil
			return
		}
		lb2c <- l
	}()
	time.Sleep(10 * time.Millisecond) // let b start waiting
	la2.Release()
	lb2 := <-lb2c
	if lb2 == nil {
		t.Fatal("b got no second lease")
	}
	lb.Release()
	lb2.Release()
}
