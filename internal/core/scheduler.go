package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"goofi/internal/campaign"
	"goofi/internal/faultmodel"
	"goofi/internal/trigger"
)

// plannedExperiment is one pre-drawn injection.
type plannedExperiment struct {
	seq   int
	fault faultmodel.Fault
	trig  trigger.Spec
}

// plan draws the campaign's complete injection plan up front from a single
// RNG seeded with the campaign seed. Because the plan stream is fixed
// before any experiment runs, per-experiment outcomes are bit-identical
// regardless of how many boards later execute the plan.
func (r *Runner) plan() ([]plannedExperiment, int, error) {
	sp, _, err := r.space()
	if err != nil {
		return nil, 0, err
	}
	planRNG := rand.New(rand.NewSource(r.camp.Seed))
	out := make([]plannedExperiment, 0, r.camp.NumExperiments)
	skipped := 0
	// A bounded redraw budget keeps a pathological filter (rejecting
	// everything) from spinning forever.
	maxRedraws := 1000 * r.camp.NumExperiments
	for i := 0; i < r.camp.NumExperiments; i++ {
		for {
			fault, err := sp.Sample(&r.camp.FaultModel, planRNG)
			if err != nil {
				return nil, 0, err
			}
			trig := r.camp.Trigger
			if r.camp.RandomWindow[1] > 0 {
				span := r.camp.RandomWindow[1] - r.camp.RandomWindow[0]
				trig.Cycle = r.camp.RandomWindow[0] + uint64(planRNG.Int63n(int64(span)))
			}
			if r.filter == nil || r.filter(fault, trig) {
				out = append(out, plannedExperiment{seq: i, fault: fault, trig: trig})
				break
			}
			skipped++
			if skipped > maxRedraws {
				return nil, 0, fmt.Errorf("core: campaign %q: pre-injection filter rejected %d draws",
					r.camp.Name, skipped)
			}
		}
	}
	return out, skipped, nil
}

// planHashOf fingerprints the campaign definition together with the full
// injection plan drawn from it. A checkpoint stores this hash; resuming
// validates it, so a campaign whose configuration (and therefore plan)
// changed since the checkpoint is rejected instead of silently mixing
// two different plans' results.
func (r *Runner) planHashOf(planned []plannedExperiment) string {
	h := sha256.New()
	cfg, _ := json.Marshal(r.camp)
	h.Write(cfg)
	for _, pe := range planned {
		fmt.Fprintf(h, "%d|%+v|%+v\n", pe.seq, pe.fault, pe.trig)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// saveCursor persists the campaign cursor through the checkpoint sink.
// seqs is the caller's snapshot of completed sequence numbers; it is
// sorted in place.
func (r *Runner) saveCursor(ckpt CheckpointSink, hash string, ref bool, seqs []int) error {
	sort.Ints(seqs)
	return ckpt.SaveCheckpoint(&campaign.Checkpoint{
		Campaign:    r.camp.Name,
		PlanHash:    hash,
		Seed:        r.camp.Seed,
		Experiments: r.camp.NumExperiments,
		Reference:   ref,
		Completed:   seqs,
	})
}

// boardTarget returns the target system a board should drive: a fresh one
// from the factory when configured (required above one board), otherwise
// the runner's own target.
func (r *Runner) boardTarget() TargetSystem {
	if r.factory != nil {
		return r.factory()
	}
	return r.target
}

// Run executes the campaign: one planning pass, the reference run, then
// the experiment loop of paper Fig 2 dispatched over a pool of board
// workers. One board is the degenerate case — the single worker consumes
// the plan in sequence order, making execution equivalent to a sequential
// loop. Experiment outcomes are identical for every board count (each
// experiment is fully re-initialised on whichever board runs it); only
// wall-clock time changes.
//
// With more than one board the progress callback is invoked from multiple
// goroutines and must be safe for concurrent use. Pause/Resume/Stop act at
// the dispatch checkpoint between experiments; the sink is flushed on
// pause and on termination.
func (r *Runner) Run(ctx context.Context) (*Summary, error) {
	if r.boards < 1 {
		return nil, fmt.Errorf("core: board count %d < 1", r.boards)
	}
	if r.boards > 1 && r.factory == nil {
		return nil, fmt.Errorf("core: %d boards need a target factory (WithBoards)", r.boards)
	}
	// Wake a paused campaign when the context is cancelled, so Wait in
	// checkpoint observes the cancellation.
	cancelWatch := context.AfterFunc(ctx, func() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer cancelWatch()

	planned, skipped, err := r.plan()
	if err != nil {
		return nil, err
	}
	hash := r.planHashOf(planned)

	// Durable checkpointing and resume state. doneSet marks experiments
	// whose results are already stored from an earlier (interrupted)
	// run; they are skipped at dispatch, so a resumed campaign replays
	// exactly the missing remainder of the same plan.
	var ckpt CheckpointSink
	if r.ckptEvery > 0 {
		cs, ok := r.sink.(CheckpointSink)
		if !ok {
			return nil, fmt.Errorf("core: checkpoints need a sink with SaveCheckpoint, got %T", r.sink)
		}
		ckpt = cs
	}
	doneSet := make(map[int]bool)
	var completedSeqs []int
	resumed := 0
	haveRef := false
	if r.resume != nil {
		if r.resume.PlanHash != "" && r.resume.PlanHash != hash {
			return nil, fmt.Errorf("core: campaign %q: plan hash mismatch (checkpoint %.12s…, current %.12s…): campaign definition changed since the checkpoint",
				r.camp.Name, r.resume.PlanHash, hash)
		}
		for _, seq := range r.resume.Completed {
			if seq >= 0 && seq < r.camp.NumExperiments && !doneSet[seq] {
				doneSet[seq] = true
				completedSeqs = append(completedSeqs, seq)
			}
		}
		resumed = len(completedSeqs)
		haveRef = r.resume.Reference
	}

	sum := &Summary{
		Campaign:    r.camp.Name,
		Skipped:     skipped,
		ByStatus:    make(map[campaign.OutcomeStatus]int),
		ByMechanism: make(map[string]int),
	}

	// makeReferenceRun (paper Fig 2): fault-free execution whose logged
	// state anchors the analysis phase. It runs on one board before the
	// pool fans out — unless an earlier run already logged it. When the
	// target supports checkpoint forwarding, the reference run doubles as
	// the recording pass: the resulting ForwardSet is handed to every
	// board worker so faulty experiments can skip the fault-free prefix.
	// A resumed campaign skips the reference and runs everything cold.
	var fwSet *ForwardSet
	if !haveRef {
		r.emit(ProgressEvent{Campaign: r.camp.Name, Phase: "reference", Total: r.camp.NumExperiments})
		ref := r.newExperiment(-1, nil, trigger.Spec{})
		refTarget := r.boardTarget()
		fwTarget, canForward := refTarget.(Forwarder)
		if canForward {
			if plan := r.forwardPlan(); plan != nil {
				fwTarget.ArmForwardRecording(plan)
			}
		}
		if err := r.runOne(refTarget, ref, ""); err != nil {
			return nil, err
		}
		if canForward {
			fwSet = fwTarget.TakeForwardSet()
		}
		sum.CyclesEmulated += ref.Result.Outcome.Cycles
		haveRef = true
		if ckpt != nil {
			// First durable cursor: the reference is in, nothing else.
			if err := r.saveCursor(ckpt, hash, true, append([]int(nil), completedSeqs...)); err != nil {
				return nil, err
			}
		}
	}

	var (
		mu        sync.Mutex
		firstErr  error
		done      int
		sinceCkpt int
	)
	work := make(chan plannedExperiment)
	var wg sync.WaitGroup
	for b := 0; b < r.boards; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			target := r.boardTarget()
			if fwSet != nil {
				if fwTarget, ok := target.(Forwarder); ok {
					fwTarget.SetForwardSet(fwSet)
				}
			}
			for pe := range work {
				ex := r.newExperiment(pe.seq, &pe.fault, pe.trig)
				err := r.runOne(target, ex, "")
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				sum.Experiments++
				if ex.Injected {
					sum.Injected++
				}
				st := ex.Result.Outcome.Status
				sum.ByStatus[st]++
				if st == campaign.OutcomeDetected {
					sum.ByMechanism[ex.Result.Outcome.Mechanism]++
				}
				emulated := ex.Result.Outcome.Cycles
				if ex.Forwarded {
					sum.Forwarded++
					sum.CyclesSaved += ex.ForwardedFrom
					emulated -= ex.ForwardedFrom
				}
				sum.CyclesEmulated += emulated
				done++
				completedSeqs = append(completedSeqs, pe.seq)
				var snap []int
				if ckpt != nil {
					sinceCkpt++
					if sinceCkpt >= r.ckptEvery {
						sinceCkpt = 0
						snap = append([]int(nil), completedSeqs...)
					}
				}
				ev := ProgressEvent{
					Campaign:   r.camp.Name,
					Phase:      "experiment",
					Done:       resumed + done,
					Total:      r.camp.NumExperiments,
					Experiment: ex.Name,
					Outcome:    st,
				}
				mu.Unlock()
				r.emit(ev)
				if snap != nil {
					// The cursor write flushes the sink first, so it
					// happens outside the progress lock.
					if err := r.saveCursor(ckpt, hash, true, snap); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
					}
				}
			}
		}()
	}

	// A pause is a checkpoint of its own: the sink is flushed by
	// Runner.checkpoint, then this hook persists the cursor, so killing
	// a paused campaign is always recoverable.
	if ckpt != nil {
		r.onPause = func() {
			mu.Lock()
			snap := append([]int(nil), completedSeqs...)
			mu.Unlock()
			_ = r.saveCursor(ckpt, hash, true, snap)
		}
		defer func() { r.onPause = nil }()
	}

dispatch:
	for _, pe := range planned {
		if doneSet[pe.seq] {
			continue // already durable from the interrupted run
		}
		if !r.checkpoint(ctx) {
			break dispatch
		}
		mu.Lock()
		failed := firstErr != nil
		mu.Unlock()
		if failed {
			break dispatch
		}
		select {
		case work <- pe:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(work)
	wg.Wait()

	// Termination flush: whatever the boards logged must be durable before
	// the campaign reports its outcome.
	if ferr := r.flushSink(); ferr != nil && firstErr == nil {
		firstErr = ferr
	}
	// Termination cursor: a stop (or error) leaves a resumable
	// checkpoint behind; on full completion it records the finished
	// state until the caller clears it.
	if ckpt != nil {
		mu.Lock()
		snap := append([]int(nil), completedSeqs...)
		mu.Unlock()
		if cerr := r.saveCursor(ckpt, hash, haveRef, snap); cerr != nil && firstErr == nil {
			firstErr = cerr
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	total := resumed + sum.Experiments
	if ctx.Err() != nil {
		r.emit(ProgressEvent{Campaign: r.camp.Name, Phase: "stopped",
			Done: total, Total: r.camp.NumExperiments})
		return sum, ctx.Err()
	}
	phase := "done"
	if total < r.camp.NumExperiments {
		phase = "stopped"
	}
	r.emit(ProgressEvent{Campaign: r.camp.Name, Phase: phase,
		Done: total, Total: r.camp.NumExperiments})
	return sum, nil
}
