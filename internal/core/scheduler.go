package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"time"

	"goofi/internal/campaign"
	"goofi/internal/faultmodel"
	"goofi/internal/telemetry"
	"goofi/internal/trigger"
)

// plannedExperiment is one pre-drawn injection.
type plannedExperiment struct {
	seq   int
	fault faultmodel.Fault
	trig  trigger.Spec
}

// plan draws the campaign's complete injection plan up front from a single
// RNG seeded with the campaign seed. Because the plan stream is fixed
// before any experiment runs, per-experiment outcomes are bit-identical
// regardless of how many boards later execute the plan.
func (r *Runner) plan() ([]plannedExperiment, int, error) {
	sp, _, err := r.space()
	if err != nil {
		return nil, 0, err
	}
	planRNG := rand.New(rand.NewSource(r.camp.Seed))
	out := make([]plannedExperiment, 0, r.camp.NumExperiments)
	skipped := 0
	// A bounded redraw budget keeps a pathological filter (rejecting
	// everything) from spinning forever.
	maxRedraws := 1000 * r.camp.NumExperiments
	for i := 0; i < r.camp.NumExperiments; i++ {
		for {
			fault, err := sp.Sample(&r.camp.FaultModel, planRNG)
			if err != nil {
				return nil, 0, err
			}
			trig := r.camp.Trigger
			if r.camp.RandomWindow[1] > 0 {
				span := r.camp.RandomWindow[1] - r.camp.RandomWindow[0]
				trig.Cycle = r.camp.RandomWindow[0] + uint64(planRNG.Int63n(int64(span)))
			}
			if r.filter == nil || r.filter(fault, trig) {
				out = append(out, plannedExperiment{seq: i, fault: fault, trig: trig})
				break
			}
			skipped++
			if skipped > maxRedraws {
				return nil, 0, fmt.Errorf("core: campaign %q: pre-injection filter rejected %d draws",
					r.camp.Name, skipped)
			}
		}
	}
	return out, skipped, nil
}

// planHashOf fingerprints the campaign definition together with the full
// injection plan drawn from it. A checkpoint stores this hash; resuming
// validates it, so a campaign whose configuration (and therefore plan)
// changed since the checkpoint is rejected instead of silently mixing
// two different plans' results.
func (r *Runner) planHashOf(planned []plannedExperiment) string {
	h := sha256.New()
	cfg, _ := json.Marshal(r.camp)
	h.Write(cfg)
	for _, pe := range planned {
		fmt.Fprintf(h, "%d|%+v|%+v\n", pe.seq, pe.fault, pe.trig)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// saveCursor persists the campaign cursor through the checkpoint sink.
// seqs is the caller's snapshot of completed sequence numbers; it is
// sorted in place.
func (r *Runner) saveCursor(ckpt CheckpointSink, hash string, ref bool, seqs []int) error {
	sort.Ints(seqs)
	return ckpt.SaveCheckpoint(&campaign.Checkpoint{
		Campaign:    r.camp.Name,
		PlanHash:    hash,
		Seed:        r.camp.Seed,
		Experiments: r.camp.NumExperiments,
		Reference:   ref,
		Completed:   seqs,
	})
}

// boardTarget returns the target system a board should drive: a fresh one
// from the factory when configured (required above one board), otherwise
// the runner's own target.
func (r *Runner) boardTarget() TargetSystem {
	if r.factory != nil {
		return r.factory()
	}
	return r.target
}

// Run executes the campaign: one planning pass, the reference run, then
// the experiment loop of paper Fig 2 dispatched over a pool of board
// workers. One board is the degenerate case — the single worker consumes
// the plan in sequence order, making execution equivalent to a sequential
// loop. Experiment outcomes are identical for every board count (each
// experiment is fully re-initialised on whichever board runs it); only
// wall-clock time changes.
//
// With more than one board the progress callback is invoked from multiple
// goroutines and must be safe for concurrent use. Pause/Resume/Stop act at
// the dispatch checkpoint between experiments; the sink is flushed on
// pause and on termination.
func (r *Runner) Run(ctx context.Context) (*Summary, error) {
	if r.boards < 1 {
		return nil, fmt.Errorf("core: board count %d < 1", r.boards)
	}
	if r.boards > 1 && r.factory == nil {
		return nil, fmt.Errorf("core: %d boards need a target factory (WithBoards)", r.boards)
	}
	if r.extFleet != nil && r.factory == nil {
		return nil, fmt.Errorf("core: a shared fleet needs a target factory (WithBoards)")
	}
	// Wake a paused campaign when the context is cancelled, so Wait in
	// checkpoint observes the cancellation.
	cancelWatch := context.AfterFunc(ctx, func() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer cancelWatch()

	// stopCh mirrors Stop into a channel for the duration of this run, so
	// a worker blocked in a fleet Acquire (possibly waiting on boards held
	// by other campaigns) is woken by Stop, not only by queue progress.
	stopCh := make(chan struct{})
	r.mu.Lock()
	if r.stopped {
		close(stopCh)
	} else {
		r.stopNotify = stopCh
	}
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		r.stopNotify = nil
		r.mu.Unlock()
	}()

	// Board ownership lives in a Fleet. A shared fleet (WithFleet) is
	// contended by other campaigns; the private fallback is this
	// campaign's own boards and reproduces the legacy behaviour (a lease
	// is always granted immediately and never yielded).
	fleet := r.extFleet
	if fleet == nil {
		var ferr error
		fleet, ferr = NewFleet(r.boards)
		if ferr != nil {
			return nil, ferr
		}
	}
	handle := fleet.Register(r.camp.Name)
	defer handle.Close()

	r.progress.Start(r.camp.Name, r.camp.NumExperiments)
	r.progress.SetPhase("plan")
	planStart := time.Now()
	planned, skipped, err := r.plan()
	if err != nil {
		return nil, err
	}
	hash := r.planHashOf(planned)
	r.tracer.Record(telemetry.SpanRecord{Phase: "plan", Board: -1, Seq: -1,
		WallNS: time.Since(planStart).Nanoseconds()})

	// Durable checkpointing and resume state. doneSet marks experiments
	// whose results are already stored from an earlier (interrupted)
	// run; they are skipped at dispatch, so a resumed campaign replays
	// exactly the missing remainder of the same plan.
	var ckpt CheckpointSink
	if r.ckptEvery > 0 {
		cs, ok := r.sink.(CheckpointSink)
		if !ok {
			return nil, fmt.Errorf("core: checkpoints need a sink with SaveCheckpoint, got %T", r.sink)
		}
		ckpt = cs
	}
	doneSet := make(map[int]bool)
	var completedSeqs []int
	resumed := 0
	haveRef := false
	if r.resume != nil {
		if r.resume.PlanHash != "" && r.resume.PlanHash != hash {
			return nil, fmt.Errorf("core: campaign %q: plan hash mismatch (checkpoint %.12s…, current %.12s…): campaign definition changed since the checkpoint",
				r.camp.Name, r.resume.PlanHash, hash)
		}
		for _, seq := range r.resume.Completed {
			if seq >= 0 && seq < r.camp.NumExperiments && !doneSet[seq] {
				doneSet[seq] = true
				completedSeqs = append(completedSeqs, seq)
			}
		}
		resumed = len(completedSeqs)
		haveRef = r.resume.Reference
	}
	r.progress.AddDone(resumed)

	sum := &Summary{
		Campaign:      r.camp.Name,
		Skipped:       skipped,
		PlanHash:      hash,
		Deterministic: TargetDeterministic(r.target),
		ByStatus:      make(map[campaign.OutcomeStatus]int),
		ByMechanism:   make(map[string]int),
	}

	// makeReferenceRun (paper Fig 2): fault-free execution whose logged
	// state anchors the analysis phase. It runs on one board before the
	// pool fans out — unless an earlier run already logged it. When the
	// target supports checkpoint forwarding, the reference run doubles as
	// the recording pass: the resulting ForwardSet is handed to every
	// board worker so faulty experiments can skip the fault-free prefix.
	// A resumed campaign skips the reference and runs everything cold.
	policyOn := r.retry.enabled()
	var (
		mu        sync.Mutex
		firstErr  error
		done      int
		sinceCkpt int
	)
	failErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	// inShard reports whether a sequence number falls inside this
	// runner's shard range (the whole plan when no range is set).
	inShard := func(seq int) bool {
		return r.shardHi == 0 || (seq >= r.shardLo && seq < r.shardHi)
	}

	fwSet := r.presetFw
	if !haveRef {
		r.emit(ProgressEvent{Campaign: r.camp.Name, Phase: "reference", Total: r.camp.NumExperiments})
		r.progress.SetPhase("reference")
		refStart := time.Now()
		// The reference occupies a board like any experiment, so on a
		// shared fleet it queues behind other campaigns' leases.
		var refErr error
		if refLease, lerr := handle.Acquire(ctx); lerr != nil {
			refErr = fmt.Errorf("core: campaign %q reference: %w", r.camp.Name, lerr)
		} else {
			var recorded *ForwardSet
			recorded, refErr = r.referenceRun(ctx, sum, planned)
			if recorded != nil {
				// A freshly recorded set supersedes any preset one.
				fwSet = recorded
			}
			refLease.Release()
		}
		r.tracer.Record(telemetry.SpanRecord{Phase: "reference", Board: -1, Seq: -1,
			EndCycle: sum.CyclesEmulated, WallNS: time.Since(refStart).Nanoseconds()})
		if refErr != nil {
			failErr(refErr)
		} else {
			haveRef = true
			if ckpt != nil {
				// First durable cursor: the reference is in, nothing else.
				if err := r.saveCursor(ckpt, hash, true, append([]int(nil), completedSeqs...)); err != nil {
					failErr(err)
				}
			}
		}
	}

	// Whatever set this run ended up with is observable after Run, so a
	// shard worker can reuse it for later ranges of the same campaign.
	r.capturedFw = fwSet

	// The pull queue replaces a pushed work channel: a worker that must
	// give an experiment back (its board got quarantined) can requeue it
	// for the surviving boards, which a closed channel cannot express.
	var q *expQueue
	if !failed() {
		items := make([]queuedExperiment, 0, len(planned))
		for _, pe := range planned {
			if doneSet[pe.seq] {
				continue // already durable from the interrupted run
			}
			if !inShard(pe.seq) {
				continue // another shard's slice of the plan
			}
			items = append(items, queuedExperiment{plannedExperiment: pe})
		}
		q = newExpQueue(items)
		r.progress.SetPhase("experiment")

		// A pause is a checkpoint of its own: the sink is flushed by
		// Runner.checkpoint, then this hook persists the cursor, so
		// killing a paused campaign is always recoverable.
		if ckpt != nil {
			r.onPause = func() {
				mu.Lock()
				snap := append([]int(nil), completedSeqs...)
				mu.Unlock()
				_ = r.saveCursor(ckpt, hash, true, snap)
			}
			defer func() { r.onPause = nil }()
		}

		// account folds one resolved experiment (successful or invalid)
		// into the summary and returns the progress event plus, when a
		// durable checkpoint is due, a cursor snapshot. Callers emit and
		// persist outside the lock.
		account := func(seq int, update func()) (ProgressEvent, []int) {
			mu.Lock()
			defer mu.Unlock()
			update()
			done++
			completedSeqs = append(completedSeqs, seq)
			var snap []int
			if ckpt != nil {
				sinceCkpt++
				if sinceCkpt >= r.ckptEvery {
					sinceCkpt = 0
					snap = append([]int(nil), completedSeqs...)
				}
			}
			return ProgressEvent{
				Campaign: r.camp.Name,
				Phase:    "experiment",
				Done:     resumed + done,
				Total:    r.camp.NumExperiments,
			}, snap
		}

		// Workers blocked in a fleet Acquire are woken by queue progress on
		// their own campaign only indirectly (another campaign releasing a
		// board); runCtx cancels them when the queue drains or the user
		// stops the campaign, so no worker waits for a board it can never
		// use.
		runCtx, cancelRun := context.WithCancel(ctx)
		defer cancelRun()
		go func() {
			select {
			case <-q.drained():
			case <-stopCh:
			case <-runCtx.Done():
			}
			cancelRun()
		}()

		// A worker is a goroutine, not a board: it leases a board from the
		// fleet while it has work and the fair-share policy lets it keep
		// one. All per-board state (target, jitter stream, busy counter)
		// is derived from the lease, so outcomes stay keyed to the plan,
		// never to scheduling.
		worker := func() {
			var (
				lease       *Lease
				target      TargetSystem
				jitter      *rand.Rand
				consecFails int
				busyNS      *telemetry.Counter
				boardID     = -1
			)
			release := func() {
				if lease != nil {
					r.progress.BoardIdle(boardID)
					lease.Release()
					lease = nil
				}
			}
			defer release()
			quarantine := func() {
				mu.Lock()
				sum.QuarantinedBoards++
				mu.Unlock()
				mQuarantined.Inc()
				r.progress.BoardQuarantined(boardID)
				lease.Quarantine()
				lease = nil
			}
			for {
				if !r.checkpoint(ctx) {
					q.halt()
					return
				}
				if failed() {
					q.halt()
					return
				}
				if lease != nil {
					r.progress.BoardIdle(boardID)
				}
				qe, ok, mustWait := q.tryPop()
				if mustWait {
					// The queue is empty but other workers still hold
					// experiments that may come back (requeue after a
					// quarantine). Give the board up before blocking: the
					// requeued experiment may need this very board — or
					// another campaign may.
					release()
					qe, ok = q.pop()
				}
				if !ok {
					return
				}
				if lease != nil && handle.ShouldYield() {
					// Over the fair-share entitlement with another campaign
					// waiting: hand the board back between experiments.
					release()
				}
				if lease == nil {
					var lerr error
					lease, lerr = handle.Acquire(runCtx)
					if lerr != nil {
						// Fleet exhausted, stop, or cancellation: give the
						// experiment back and retire. The leftover check
						// after the pool drains reports exhaustion;
						// stop/cancel report themselves.
						q.requeue(qe)
						return
					}
					boardID = lease.Board()
					target = r.boardTarget()
					installForwardSet(target, fwSet)
					// Per-board seeded jitter keeps retry timing
					// deterministic in tests without coupling it to the
					// experiment RNG streams.
					jitter = rand.New(rand.NewSource(expSeed(r.camp.Seed, -3-boardID)))
					consecFails = 0
					// The busy-time child is resolved once per lease so the
					// hot loop never touches the family's mutex.
					busyNS = mBoardBusyNS.With(strconv.Itoa(boardID))
				}
				mDispatched.Inc()
				r.progress.BoardRunning(boardID, qe.seq)
				expStart := time.Now()
				// Attempt loop for the in-hand experiment: each attempt
				// rebuilds the experiment from its per-sequence seed, so a
				// retried run is bit-identical to a first-try run.
				for {
					attempt := qe.attempts + 1
					ex := r.newExperiment(qe.seq, &qe.fault, qe.trig)
					var flushDetail func() error
					if policyOn {
						flushDetail = r.bufferDetail(ex)
					}
					err := r.execAttempt(ctx, target, ex, attempt)
					if err == nil && flushDetail != nil {
						err = flushDetail()
					}
					if err == nil {
						err = r.logResult(ex, "")
					}
					if err == nil {
						consecFails = 0
						expNS := time.Since(expStart).Nanoseconds()
						busyNS.Add(uint64(expNS))
						st := ex.Result.Outcome.Status
						emulated := ex.Result.Outcome.Cycles
						saved := uint64(0)
						if ex.Forwarded {
							saved = ex.ForwardedFrom
							emulated -= saved
						}
						// Achieved forwarding delta: for an injected
						// experiment with a cycle-threshold trigger, the
						// cycles re-emulated between the restore point
						// (cycle 0 when cold) and the injection cycle —
						// the quantity the placement planner minimises.
						delta := uint64(0)
						if at, byInstret, ok := qe.trig.ForwardPoint(); ok && !byInstret && ex.Injected {
							delta = at
							if ex.Forwarded && saved < at {
								delta = at - saved
							}
						}
						ev, snap := account(qe.seq, func() {
							sum.Experiments++
							if ex.Injected {
								sum.Injected++
							}
							sum.ByStatus[st]++
							if st == campaign.OutcomeDetected {
								sum.ByMechanism[ex.Result.Outcome.Mechanism]++
							}
							if ex.Forwarded {
								sum.Forwarded++
								sum.CyclesSaved += saved
							}
							sum.CyclesEmulated += emulated
							sum.ForwardDeltaCycles += delta
						})
						mCompleted.Inc()
						mCyclesEmulated.Add(emulated)
						mCyclesSaved.Add(saved)
						mForwardDelta.Add(delta)
						if ex.Forwarded {
							mForwarded.Inc()
							r.progress.Forwarded()
						}
						r.progress.Done()
						r.tracer.Record(telemetry.SpanRecord{
							Phase:      "experiment",
							Board:      boardID,
							Seq:        qe.seq,
							StartCycle: ex.ForwardedFrom,
							EndCycle:   ex.Result.Outcome.Cycles,
							WallNS:     expNS,
						})
						ev.Experiment = ex.Name
						ev.Outcome = st
						r.emit(ev)
						if snap != nil {
							// The cursor write flushes the sink first, so it
							// happens outside the progress lock.
							if err := r.saveCursor(ckpt, hash, true, snap); err != nil {
								failErr(err)
							}
						}
						q.finish()
						break
					}
					// Harness failure. Without a retry policy, the first
					// error ends dispatch — but through the common
					// drain/flush path below, not an early return.
					qe.attempts = attempt
					class := ClassifyError(err)
					wrapped := fmt.Errorf("core: campaign %q %s: %w", r.camp.Name, ex.Name, err)
					if !policyOn || ctx.Err() != nil {
						failErr(wrapped)
						q.finish()
						q.halt()
						return
					}
					consecFails++
					if qe.attempts >= r.retry.maxAttempts() {
						// Retries exhausted: record the invalid run so the
						// plan slot is accounted for, and move on. Analysis
						// excludes it from every effectiveness ratio.
						if serr := r.sinkLog(r.invalidRecord(ex, qe.attempts, err)); serr != nil {
							failErr(serr)
							q.finish()
							q.halt()
							return
						}
						ev, snap := account(qe.seq, func() {
							sum.Experiments++
							sum.InvalidRuns++
							sum.ByStatus[campaign.OutcomeInvalidRun]++
						})
						expNS := time.Since(expStart).Nanoseconds()
						busyNS.Add(uint64(expNS))
						mInvalidRuns.Inc()
						r.progress.Invalid()
						r.progress.Done()
						r.tracer.Record(telemetry.SpanRecord{Phase: "invalid", Board: boardID,
							Seq: qe.seq, WallNS: expNS})
						ev.Experiment = ex.Name
						ev.Outcome = campaign.OutcomeInvalidRun
						r.emit(ev)
						if snap != nil {
							if err := r.saveCursor(ckpt, hash, true, snap); err != nil {
								failErr(err)
							}
						}
						if th := r.retry.BoardFailureThreshold; th > 0 && consecFails >= th {
							quarantine()
						}
						q.finish()
						break
					}
					mu.Lock()
					sum.Retried++
					mu.Unlock()
					retryCounter(class).Inc()
					r.progress.Retried()
					// Circuit breaker: after too many consecutive failures
					// the board is suspect — hand the experiment back and
					// quarantine the board fleet-wide. The failures are
					// attributed to the board, so the requeued experiment
					// gets its retry budget back; the worker itself
					// survives and may lease a healthy replacement.
					if th := r.retry.BoardFailureThreshold; th > 0 && consecFails >= th {
						qe.attempts = 0
						q.requeue(qe)
						quarantine()
						break
					}
					if class == Wedged && r.factory == nil {
						// The wedged attempt may still be driving this
						// target; without a factory there is no replacement
						// board, so the board is quarantined with its work
						// requeued (and the campaign fails cleanly if it
						// was the last one).
						q.requeue(qe)
						quarantine()
						break
					}
					if class != Persistent {
						d := r.retry.backoff(attempt+1, jitter)
						mBackoffNS.Add(uint64(d))
						if !sleepCtx(ctx, d) {
							failErr(wrapped)
							q.finish()
							q.halt()
							return
						}
					}
					if class != Transient && r.factory != nil {
						// Power cycle: a fresh target from the factory is
						// the simulated equivalent of cycling the board's
						// power before the retry (every algorithm re-runs
						// InitTestCard regardless).
						target = r.factory()
						installForwardSet(target, fwSet)
					}
				}
			}
		}

		// Worker parallelism is this campaign's board budget, capped by
		// what the fleet could ever grant.
		workers := r.boards
		if c := fleet.Capacity(); c < workers {
			workers = c
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				worker()
			}()
		}
		wg.Wait()

		// Workers all gone with work left over: every board was
		// quarantined before the plan finished (a user stop or a fatal
		// error also leaves work behind, but those report themselves).
		if n := q.leftover(); n > 0 && !failed() && ctx.Err() == nil {
			r.mu.Lock()
			stopped := r.stopped
			r.mu.Unlock()
			if !stopped {
				failErr(fmt.Errorf("core: campaign %q: %d experiments unexecuted: all boards quarantined",
					r.camp.Name, n))
			}
		}
	}

	// Termination flush: whatever the boards logged must be durable before
	// the campaign reports its outcome — even (especially) on error, so a
	// failed campaign keeps every completed result.
	if ferr := r.flushSink(); ferr != nil && firstErr == nil {
		firstErr = ferr
	}
	// Termination cursor: a stop (or error) leaves a resumable
	// checkpoint behind; on full completion it records the finished
	// state until the caller clears it.
	if ckpt != nil && haveRef {
		mu.Lock()
		snap := append([]int(nil), completedSeqs...)
		mu.Unlock()
		if cerr := r.saveCursor(ckpt, hash, haveRef, snap); cerr != nil && firstErr == nil {
			firstErr = cerr
		}
	}
	if firstErr != nil {
		// The partial summary still describes everything that completed
		// and was flushed above.
		r.progress.SetPhase("failed")
		return sum, firstErr
	}
	total := resumed + sum.Experiments
	if ctx.Err() != nil {
		r.progress.SetPhase("stopped")
		r.emit(ProgressEvent{Campaign: r.camp.Name, Phase: "stopped",
			Done: total, Total: r.camp.NumExperiments})
		return sum, ctx.Err()
	}
	phase := "done"
	if total < r.camp.NumExperiments {
		phase = "stopped"
	}
	r.progress.SetPhase(phase)
	r.emit(ProgressEvent{Campaign: r.camp.Name, Phase: phase,
		Done: total, Total: r.camp.NumExperiments})
	return sum, nil
}

// installForwardSet hands the reference run's checkpoint set to a board
// target that supports forwarding.
func installForwardSet(target TargetSystem, set *ForwardSet) {
	if set == nil {
		return
	}
	if fwTarget, ok := target.(Forwarder); ok {
		fwTarget.SetForwardSet(set)
	}
}

// referenceRun executes the campaign's fault-free reference run, with the
// same watchdog/retry protection as the experiments when the policy is
// on, and returns the recorded forward set (nil when the target does not
// forward or recording was off). planned is the drawn injection plan,
// which the optimal placement planner mines for its cycle histogram.
func (r *Runner) referenceRun(ctx context.Context, sum *Summary, planned []plannedExperiment) (*ForwardSet, error) {
	refTarget := r.boardTarget()
	jitter := rand.New(rand.NewSource(expSeed(r.camp.Seed, -2)))
	// The checkpoint plan is computed once, before the attempt loop: a
	// retried reference must record at the same cycles the first attempt
	// would have, so a retry stays observationally equivalent. The first
	// target prices the snapshot cost when it can (the recorded state
	// itself is placement-independent, so a calibration that varies with
	// wall-clock speed never changes any logged byte).
	var fwPlan *ForwardPlan
	if _, ok := refTarget.(Forwarder); ok {
		calib, _ := refTarget.(ForwardCalibrator)
		fwPlan = r.forwardPlan(planned, calib)
	}
	if fwPlan != nil {
		sum.ForwardPlacement = fwPlan.Placement
		sum.ForwardPredictedDelta = fwPlan.PredictedDelta
		mForwardPredicted.Set(int64(fwPlan.PredictedDelta))
	}
	for attempt := 1; ; attempt++ {
		ref := r.newExperiment(-1, nil, trigger.Spec{})
		var flushDetail func() error
		if r.retry.enabled() {
			flushDetail = r.bufferDetail(ref)
		}
		fwTarget, canForward := refTarget.(Forwarder)
		if canForward && fwPlan != nil {
			// Re-arming on every attempt resets any partial recording
			// from a failed one.
			fwTarget.ArmForwardRecording(fwPlan)
		}
		err := r.execAttempt(ctx, refTarget, ref, attempt)
		if err == nil && flushDetail != nil {
			err = flushDetail()
		}
		if err == nil {
			err = r.logResult(ref, "")
		}
		if err == nil {
			sum.CyclesEmulated += ref.Result.Outcome.Cycles
			if canForward {
				return fwTarget.TakeForwardSet(), nil
			}
			return nil, nil
		}
		wrapped := fmt.Errorf("core: campaign %q %s: %w", r.camp.Name, ref.Name, err)
		if !r.retry.enabled() || attempt >= r.retry.maxAttempts() || ctx.Err() != nil {
			return nil, wrapped
		}
		sum.Retried++
		class := ClassifyError(err)
		retryCounter(class).Inc()
		r.progress.Retried()
		if class == Wedged && r.factory == nil {
			// The wedged attempt may still be driving this target, and
			// there is no factory to power-cycle a replacement from.
			return nil, wrapped
		}
		if class != Persistent {
			d := r.retry.backoff(attempt+1, jitter)
			mBackoffNS.Add(uint64(d))
			if !sleepCtx(ctx, d) {
				return nil, wrapped
			}
		}
		if class != Transient && r.factory != nil {
			refTarget = r.factory()
		}
	}
}

// queuedExperiment is one plan entry in the work queue, carrying its
// accumulated attempt count across requeues.
type queuedExperiment struct {
	plannedExperiment
	attempts int
}

// expQueue is the pull-based work queue shared by the board workers.
// Unlike a closed channel, it supports giving work back: a quarantined
// board requeues its in-hand experiment for the healthy boards.
type expQueue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	items    []queuedExperiment
	inFlight int
	halted   bool
	done     chan struct{}
	doneSet  bool
}

func newExpQueue(items []queuedExperiment) *expQueue {
	q := &expQueue{items: items, done: make(chan struct{})}
	q.cond = sync.NewCond(&q.mu)
	mQueueDepth.Set(int64(len(items)))
	q.mu.Lock()
	q.maybeDoneLocked()
	q.mu.Unlock()
	return q
}

// drained returns a channel closed once no work remains or the queue is
// halted — the signal that cancels workers parked in a fleet Acquire
// which no remaining work could ever use.
func (q *expQueue) drained() <-chan struct{} { return q.done }

func (q *expQueue) maybeDoneLocked() {
	if !q.doneSet && (q.halted || (len(q.items) == 0 && q.inFlight == 0)) {
		q.doneSet = true
		close(q.done)
	}
}

// tryPop is the non-blocking pop: ok reports work handed out, mustWait
// reports an empty queue with experiments still in flight (a failing
// worker may requeue one) — the caller should release its board before
// falling back to the blocking pop.
func (q *expQueue) tryPop() (qe queuedExperiment, ok, mustWait bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.halted {
		return queuedExperiment{}, false, false
	}
	if len(q.items) > 0 {
		qe = q.items[0]
		q.items = q.items[1:]
		q.inFlight++
		mQueueDepth.Set(int64(len(q.items)))
		return qe, true, false
	}
	if q.inFlight == 0 {
		return queuedExperiment{}, false, false
	}
	return queuedExperiment{}, false, true
}

// pop hands the next experiment to a worker. It blocks while the queue is
// empty but other work is still in flight — a failing worker may requeue
// its experiment — and returns false when the queue is halted or fully
// drained.
func (q *expQueue) pop() (queuedExperiment, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.halted {
			return queuedExperiment{}, false
		}
		if len(q.items) > 0 {
			qe := q.items[0]
			q.items = q.items[1:]
			q.inFlight++
			mQueueDepth.Set(int64(len(q.items)))
			return qe, true
		}
		if q.inFlight == 0 {
			return queuedExperiment{}, false
		}
		q.cond.Wait()
	}
}

// finish marks a popped experiment resolved (logged or recorded invalid).
func (q *expQueue) finish() {
	q.mu.Lock()
	q.inFlight--
	q.maybeDoneLocked()
	q.mu.Unlock()
	q.cond.Broadcast()
}

// requeue returns an unresolved in-hand experiment to the queue.
func (q *expQueue) requeue(qe queuedExperiment) {
	q.mu.Lock()
	q.items = append(q.items, qe)
	q.inFlight--
	mQueueDepth.Set(int64(len(q.items)))
	q.mu.Unlock()
	q.cond.Broadcast()
}

// halt makes every current and future pop return false.
func (q *expQueue) halt() {
	q.mu.Lock()
	q.halted = true
	q.maybeDoneLocked()
	q.mu.Unlock()
	q.cond.Broadcast()
}

// leftover reports how many experiments were never resolved.
func (q *expQueue) leftover() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}
