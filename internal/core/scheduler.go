package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"goofi/internal/campaign"
	"goofi/internal/faultmodel"
	"goofi/internal/trigger"
)

// plannedExperiment is one pre-drawn injection.
type plannedExperiment struct {
	seq   int
	fault faultmodel.Fault
	trig  trigger.Spec
}

// plan draws the campaign's complete injection plan up front from a single
// RNG seeded with the campaign seed. Because the plan stream is fixed
// before any experiment runs, per-experiment outcomes are bit-identical
// regardless of how many boards later execute the plan.
func (r *Runner) plan() ([]plannedExperiment, int, error) {
	sp, _, err := r.space()
	if err != nil {
		return nil, 0, err
	}
	planRNG := rand.New(rand.NewSource(r.camp.Seed))
	out := make([]plannedExperiment, 0, r.camp.NumExperiments)
	skipped := 0
	// A bounded redraw budget keeps a pathological filter (rejecting
	// everything) from spinning forever.
	maxRedraws := 1000 * r.camp.NumExperiments
	for i := 0; i < r.camp.NumExperiments; i++ {
		for {
			fault, err := sp.Sample(&r.camp.FaultModel, planRNG)
			if err != nil {
				return nil, 0, err
			}
			trig := r.camp.Trigger
			if r.camp.RandomWindow[1] > 0 {
				span := r.camp.RandomWindow[1] - r.camp.RandomWindow[0]
				trig.Cycle = r.camp.RandomWindow[0] + uint64(planRNG.Int63n(int64(span)))
			}
			if r.filter == nil || r.filter(fault, trig) {
				out = append(out, plannedExperiment{seq: i, fault: fault, trig: trig})
				break
			}
			skipped++
			if skipped > maxRedraws {
				return nil, 0, fmt.Errorf("core: campaign %q: pre-injection filter rejected %d draws",
					r.camp.Name, skipped)
			}
		}
	}
	return out, skipped, nil
}

// boardTarget returns the target system a board should drive: a fresh one
// from the factory when configured (required above one board), otherwise
// the runner's own target.
func (r *Runner) boardTarget() TargetSystem {
	if r.factory != nil {
		return r.factory()
	}
	return r.target
}

// Run executes the campaign: one planning pass, the reference run, then
// the experiment loop of paper Fig 2 dispatched over a pool of board
// workers. One board is the degenerate case — the single worker consumes
// the plan in sequence order, making execution equivalent to a sequential
// loop. Experiment outcomes are identical for every board count (each
// experiment is fully re-initialised on whichever board runs it); only
// wall-clock time changes.
//
// With more than one board the progress callback is invoked from multiple
// goroutines and must be safe for concurrent use. Pause/Resume/Stop act at
// the dispatch checkpoint between experiments; the sink is flushed on
// pause and on termination.
func (r *Runner) Run(ctx context.Context) (*Summary, error) {
	if r.boards < 1 {
		return nil, fmt.Errorf("core: board count %d < 1", r.boards)
	}
	if r.boards > 1 && r.factory == nil {
		return nil, fmt.Errorf("core: %d boards need a target factory (WithBoards)", r.boards)
	}
	// Wake a paused campaign when the context is cancelled, so Wait in
	// checkpoint observes the cancellation.
	cancelWatch := context.AfterFunc(ctx, func() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer cancelWatch()

	planned, skipped, err := r.plan()
	if err != nil {
		return nil, err
	}
	sum := &Summary{
		Campaign:    r.camp.Name,
		Skipped:     skipped,
		ByStatus:    make(map[campaign.OutcomeStatus]int),
		ByMechanism: make(map[string]int),
	}

	// makeReferenceRun (paper Fig 2): fault-free execution whose logged
	// state anchors the analysis phase. It runs on one board before the
	// pool fans out.
	r.emit(ProgressEvent{Campaign: r.camp.Name, Phase: "reference", Total: r.camp.NumExperiments})
	ref := r.newExperiment(-1, nil, trigger.Spec{})
	if err := r.runOne(r.boardTarget(), ref, ""); err != nil {
		return nil, err
	}

	var (
		mu       sync.Mutex
		firstErr error
		done     int
	)
	work := make(chan plannedExperiment)
	var wg sync.WaitGroup
	for b := 0; b < r.boards; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			target := r.boardTarget()
			for pe := range work {
				ex := r.newExperiment(pe.seq, &pe.fault, pe.trig)
				err := r.runOne(target, ex, "")
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				sum.Experiments++
				if ex.Injected {
					sum.Injected++
				}
				st := ex.Result.Outcome.Status
				sum.ByStatus[st]++
				if st == campaign.OutcomeDetected {
					sum.ByMechanism[ex.Result.Outcome.Mechanism]++
				}
				done++
				ev := ProgressEvent{
					Campaign:   r.camp.Name,
					Phase:      "experiment",
					Done:       done,
					Total:      r.camp.NumExperiments,
					Experiment: ex.Name,
					Outcome:    st,
				}
				mu.Unlock()
				r.emit(ev)
			}
		}()
	}

dispatch:
	for _, pe := range planned {
		if !r.checkpoint(ctx) {
			break dispatch
		}
		mu.Lock()
		failed := firstErr != nil
		mu.Unlock()
		if failed {
			break dispatch
		}
		select {
		case work <- pe:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(work)
	wg.Wait()

	// Termination flush: whatever the boards logged must be durable before
	// the campaign reports its outcome.
	if ferr := r.flushSink(); ferr != nil && firstErr == nil {
		firstErr = ferr
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if ctx.Err() != nil {
		r.emit(ProgressEvent{Campaign: r.camp.Name, Phase: "stopped",
			Done: sum.Experiments, Total: r.camp.NumExperiments})
		return sum, ctx.Err()
	}
	phase := "done"
	if sum.Experiments < r.camp.NumExperiments {
		phase = "stopped"
	}
	r.emit(ProgressEvent{Campaign: r.camp.Name, Phase: phase,
		Done: sum.Experiments, Total: r.camp.NumExperiments})
	return sum, nil
}
