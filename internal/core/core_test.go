package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"goofi/internal/bitvec"
	"goofi/internal/campaign"
	"goofi/internal/faultmodel"
	"goofi/internal/scanchain"
	"goofi/internal/sqldb"
	"goofi/internal/trigger"
)

// fakeTarget implements every abstract method by recording calls and
// simulating a tiny 64-bit "chain" with a deterministic outcome rule: the
// run is "detected" when bit 0 of the chain is set at termination.
type fakeTarget struct {
	Framework
	chain *bitvec.Vector
	calls []string
}

func newFakeTarget() *fakeTarget {
	return &fakeTarget{
		Framework: Framework{TargetName: "fake"},
		chain:     bitvec.New(64),
	}
}

func (f *fakeTarget) record(s string) { f.calls = append(f.calls, s) }

func (f *fakeTarget) InitTestCard(ex *Experiment) error {
	f.record("init")
	f.chain = bitvec.New(64)
	return nil
}
func (f *fakeTarget) LoadWorkload(ex *Experiment) error { f.record("load"); return nil }
func (f *fakeTarget) WriteMemory(ex *Experiment) error  { f.record("writeMem"); return nil }
func (f *fakeTarget) RunWorkload(ex *Experiment) error  { f.record("run"); return nil }
func (f *fakeTarget) WaitForBreakpoint(ex *Experiment) error {
	f.record("waitBP")
	ex.InjectionCycle = 123
	return nil
}

func (f *fakeTarget) ReadScanChain(ex *Experiment) error {
	f.record("readChain")
	ex.ScanVector = f.chain.Clone()
	return nil
}

func (f *fakeTarget) WriteScanChain(ex *Experiment) error {
	f.record("writeChain")
	return f.chain.CopyFrom(ex.ScanVector)
}

func (f *fakeTarget) WaitForTermination(ex *Experiment) error {
	f.record("waitTerm")
	out := campaign.Outcome{Status: campaign.OutcomeCompleted, Cycles: 1000}
	if f.chain.Get(0) {
		out = campaign.Outcome{Status: campaign.OutcomeDetected, Mechanism: "fake-edm", Cycles: 500}
	}
	ex.Result.Outcome = out
	return nil
}

func (f *fakeTarget) ReadMemory(ex *Experiment) error {
	f.record("readMem")
	ex.Result.Memory = map[string][]byte{"out": {0xAA}}
	return nil
}

func fakeTSD() *campaign.TargetSystemData {
	return &campaign.TargetSystemData{
		Name:         "fake",
		TestCardName: "fake-card",
		Chains: []scanchain.Map{{
			Chain:  "internal",
			Length: 64,
			Locations: []scanchain.Location{
				{Name: "regs.a", Offset: 0, Width: 32},
				{Name: "regs.b", Offset: 32, Width: 16},
				{Name: "counter", Offset: 48, Width: 16, ReadOnly: true},
			},
		}},
	}
}

func fakeCampaign(n int) *campaign.Campaign {
	return &campaign.Campaign{
		Name:           "fc",
		TargetName:     "fake",
		ChainName:      "internal",
		Locations:      []string{"regs"},
		FaultModel:     faultmodel.Spec{Kind: faultmodel.Transient},
		Trigger:        trigger.Spec{Kind: "cycle", Cycle: 50},
		NumExperiments: n,
		Seed:           7,
		Termination:    campaign.Termination{TimeoutCycles: 10000},
		Workload:       campaign.WorkloadSpec{Name: "w", Source: "halt"},
		LogMode:        campaign.LogNormal,
	}
}

func storeWithCampaign(t *testing.T, c *campaign.Campaign) *campaign.Store {
	t.Helper()
	st, err := campaign.NewStore(sqldb.Open())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutTargetSystem(fakeTSD()); err != nil {
		t.Fatal(err)
	}
	if err := st.PutCampaign(c); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestSCIFIAlgorithmStepSequence(t *testing.T) {
	// Reproduces paper Fig 2: the exact faultInjectorSCIFI sequence.
	ts := newFakeTarget()
	camp := fakeCampaign(1)
	ex := &Experiment{
		Campaign: camp, Seq: 0, Name: "fc/exp00000",
		Fault: &faultmodel.Fault{Kind: faultmodel.Transient, Bits: []int{5}},
	}
	if err := SCIFI.Run(ts, ex); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"initTestCard", "loadWorkload", "writeMemory", "runWorkload",
		"waitForBreakpoint", "readScanChain", "injectFault", "writeScanChain",
		"waitForTermination", "readMemory", "readScanChain",
	}
	if len(ex.StepTrace) != len(want) {
		t.Fatalf("step trace = %v", ex.StepTrace)
	}
	for i, w := range want {
		if ex.StepTrace[i] != w {
			t.Errorf("step %d = %q, want %q", i, ex.StepTrace[i], w)
		}
	}
	if !ex.Injected {
		t.Error("fault not injected")
	}
	if !ts.chain.Get(5) {
		t.Error("bit 5 not flipped on target")
	}
	if ex.Result.FinalScan == nil {
		t.Error("final scan state not captured")
	}
}

func TestSCIFIReferenceRunSkipsInjection(t *testing.T) {
	ts := newFakeTarget()
	ex := &Experiment{Campaign: fakeCampaign(1), Seq: -1, Name: "fc/reference"}
	if err := SCIFI.Run(ts, ex); err != nil {
		t.Fatal(err)
	}
	for _, s := range ex.StepTrace {
		if s == "injectFault" || s == "writeScanChain" || s == "waitForBreakpoint" {
			t.Errorf("reference run executed %s", s)
		}
	}
	if ex.Injected {
		t.Error("reference run injected a fault")
	}
	if ts.chain.PopCount() != 0 {
		t.Error("reference run disturbed target state")
	}
}

func TestPreSWIFIInjectsBeforeDownload(t *testing.T) {
	ts := newFakeTarget()
	ex := &Experiment{
		Campaign: fakeCampaign(1), Seq: 0, Name: "x",
		Fault: &faultmodel.Fault{Kind: faultmodel.Transient, Bits: []int{1}},
	}
	// The fake target's generic InjectFault needs a scan vector; for the
	// pre-runtime SWIFI flow the fault applies to the workload image, so
	// give the fake an image-like vector through ScanVector.
	ex.ScanVector = bitvec.New(64)
	if err := PreRuntimeSWIFI.Run(ts, ex); err != nil {
		t.Fatal(err)
	}
	trace := strings.Join(ex.StepTrace, ",")
	if !strings.Contains(trace, "injectFault,writeMemory") {
		t.Errorf("pre-runtime SWIFI order wrong: %v", ex.StepTrace)
	}
	if strings.Contains(trace, "waitForBreakpoint") {
		t.Errorf("pre-runtime SWIFI must not wait for a breakpoint: %v", ex.StepTrace)
	}
}

func TestFrameworkTemplateReportsMissingMethods(t *testing.T) {
	// Reproduces paper Fig 3: a new target built from the Framework
	// template. A port that implements nothing gets a precise error
	// naming the first missing abstract method.
	ts := &Framework{TargetName: "new-port"}
	ex := &Experiment{Campaign: fakeCampaign(1), Seq: -1, Name: "r"}
	err := SCIFI.Run(ts, ex)
	var nie *NotImplementedError
	if !errors.As(err, &nie) {
		t.Fatalf("error = %v, want NotImplementedError", err)
	}
	if nie.Method != "InitTestCard" || nie.Target != "new-port" {
		t.Errorf("error = %+v", nie)
	}
	if !strings.Contains(err.Error(), "InitTestCard") {
		t.Errorf("message %q does not name the method", err)
	}
}

// partialTarget overrides only some methods, as a real port would.
type partialTarget struct {
	Framework
}

func (p *partialTarget) InitTestCard(*Experiment) error { return nil }
func (p *partialTarget) LoadWorkload(*Experiment) error { return nil }

func TestFrameworkPartialPort(t *testing.T) {
	ts := &partialTarget{Framework: Framework{TargetName: "partial"}}
	ex := &Experiment{Campaign: fakeCampaign(1), Seq: -1, Name: "r"}
	err := SCIFI.Run(ts, ex)
	var nie *NotImplementedError
	if !errors.As(err, &nie) {
		t.Fatalf("error = %v", err)
	}
	// The first two methods succeed; the third is the missing one.
	if nie.Method != "WriteMemory" {
		t.Errorf("missing method = %q, want WriteMemory", nie.Method)
	}
	if len(ex.StepTrace) != 3 {
		t.Errorf("step trace = %v", ex.StepTrace)
	}
}

func TestRunnerCampaignEndToEnd(t *testing.T) {
	camp := fakeCampaign(20)
	st := storeWithCampaign(t, camp)
	ts := newFakeTarget()
	var events []ProgressEvent
	r, err := NewRunner(ts, SCIFI, camp, fakeTSD(),
		WithSink(st), WithProgress(func(ev ProgressEvent) { events = append(events, ev) }))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Experiments != 20 || sum.Injected != 20 {
		t.Errorf("summary = %+v", sum)
	}
	total := 0
	for _, n := range sum.ByStatus {
		total += n
	}
	if total != 20 {
		t.Errorf("status counts sum to %d", total)
	}
	// Detected outcomes happen exactly when bit 0 of the 64-bit chain
	// was flipped; with single bit-flips over 48 writable bits expect
	// roughly 20/48 of experiments... at least assert consistency:
	if sum.ByStatus[campaign.OutcomeDetected] != sum.ByMechanism["fake-edm"] {
		t.Errorf("mechanism counts inconsistent: %+v", sum)
	}
	// Reference run + experiments logged.
	if _, err := st.GetExperiment(campaign.ReferenceName("fc")); err != nil {
		t.Errorf("reference run not logged: %v", err)
	}
	recs, err := st.Experiments("fc")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 21 { // 20 experiments + reference
		t.Errorf("logged records = %d, want 21", len(recs))
	}
	// Progress events: reference, 20 experiments, done.
	if len(events) < 22 {
		t.Errorf("progress events = %d", len(events))
	}
	last := events[len(events)-1]
	if last.Phase != "done" || last.Done != 20 {
		t.Errorf("last event = %+v", last)
	}
}

func TestRunnerDeterminism(t *testing.T) {
	run := func() []campaign.OutcomeStatus {
		camp := fakeCampaign(15)
		st := storeWithCampaign(t, camp)
		r, err := NewRunner(newFakeTarget(), SCIFI, camp, fakeTSD(), WithSink(st))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		recs, err := st.Experiments("fc")
		if err != nil {
			t.Fatal(err)
		}
		var out []campaign.OutcomeStatus
		for _, rec := range recs {
			if !rec.IsReference() {
				out = append(out, rec.Data.Outcome.Status)
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("experiment %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRunnerNeverInjectsReadOnlyBits(t *testing.T) {
	camp := fakeCampaign(50)
	camp.Locations = []string{"regs", "counter"} // counter is read-only
	st := storeWithCampaign(t, camp)
	r, err := NewRunner(newFakeTarget(), SCIFI, camp, fakeTSD(), WithSink(st))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	recs, err := st.Experiments("fc")
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		for _, b := range rec.Data.Fault.Bits {
			if b >= 48 {
				t.Errorf("experiment %s injected read-only bit %d", rec.Name, b)
			}
		}
	}
}

func TestRunnerStop(t *testing.T) {
	camp := fakeCampaign(1000)
	ts := newFakeTarget()
	var r *Runner
	count := 0
	var err error
	r, err = NewRunner(ts, SCIFI, camp, fakeTSD(), WithProgress(func(ev ProgressEvent) {
		if ev.Phase == "experiment" {
			count++
			if count == 5 {
				r.Stop()
			}
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Experiments < 5 || sum.Experiments > 6 {
		t.Errorf("ran %d experiments after stop at 5", sum.Experiments)
	}
}

func TestRunnerPauseResume(t *testing.T) {
	camp := fakeCampaign(10)
	ts := newFakeTarget()
	var r *Runner
	// Progress events arrive from the board worker and the dispatcher;
	// guard the test's own state.
	var mu sync.Mutex
	paused := false
	sawPause := false
	var err error
	r, err = NewRunner(ts, SCIFI, camp, fakeTSD(), WithProgress(func(ev ProgressEvent) {
		switch ev.Phase {
		case "experiment":
			mu.Lock()
			trigger := ev.Done == 3 && !paused
			if trigger {
				paused = true
			}
			mu.Unlock()
			if trigger {
				r.Pause()
			}
		case "paused":
			// Resume from the paused event, as the GUI restart button
			// would once the pause is visible.
			mu.Lock()
			sawPause = true
			mu.Unlock()
			r.Resume()
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Experiments != 10 {
		t.Errorf("experiments = %d, want 10", sum.Experiments)
	}
	if !sawPause {
		t.Error("pause phase never reported")
	}
}

func TestRunnerContextCancel(t *testing.T) {
	camp := fakeCampaign(100000)
	ctx, cancel := context.WithCancel(context.Background())
	var r *Runner
	var err error
	r, err = NewRunner(newFakeTarget(), SCIFI, camp, fakeTSD(), WithProgress(func(ev ProgressEvent) {
		if ev.Done == 3 {
			cancel()
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestRunnerRerunSetsParent(t *testing.T) {
	camp := fakeCampaign(5)
	st := storeWithCampaign(t, camp)
	ts := newFakeTarget()
	r, err := NewRunner(ts, SCIFI, camp, fakeTSD(), WithSink(st))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	origName := campaign.ExperimentName("fc", 2)
	orig, err := st.GetExperiment(origName)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := r.Rerun(origName, false)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := st.GetExperiment(ex.Name)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Parent != origName {
		t.Errorf("parent = %q, want %q", rec.Parent, origName)
	}
	// Same fault, same outcome (deterministic target).
	if rec.Data.Outcome.Status != orig.Data.Outcome.Status {
		t.Errorf("rerun outcome %v != original %v", rec.Data.Outcome.Status, orig.Data.Outcome.Status)
	}
	if len(rec.Data.Fault.Bits) != len(orig.Data.Fault.Bits) || rec.Data.Fault.Bits[0] != orig.Data.Fault.Bits[0] {
		t.Errorf("rerun fault %v != original %v", rec.Data.Fault, orig.Data.Fault)
	}
	// A second rerun picks a fresh name.
	ex2, err := r.Rerun(origName, false)
	if err != nil {
		t.Fatal(err)
	}
	if ex2.Name == ex.Name {
		t.Errorf("rerun name collision: %q", ex2.Name)
	}
}

func TestRunnerValidation(t *testing.T) {
	camp := fakeCampaign(5)
	camp.TargetName = "other"
	if _, err := NewRunner(newFakeTarget(), SCIFI, camp, fakeTSD()); err == nil {
		t.Error("target-name mismatch accepted")
	}
	bad := fakeCampaign(0)
	if _, err := NewRunner(newFakeTarget(), SCIFI, bad, fakeTSD()); err == nil {
		t.Error("invalid campaign accepted")
	}
	// Locations selecting nothing fail at Run.
	camp2 := fakeCampaign(5)
	camp2.Locations = []string{"nonexistent"}
	r, err := NewRunner(newFakeTarget(), SCIFI, camp2, fakeTSD())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err == nil {
		t.Error("empty location selection accepted")
	}
}

func TestFrameworkEveryStubReportsItself(t *testing.T) {
	fw := &Framework{TargetName: "stub"}
	ex := &Experiment{Campaign: fakeCampaign(1)}
	calls := map[string]func(*Experiment) error{
		"InitTestCard":       fw.InitTestCard,
		"LoadWorkload":       fw.LoadWorkload,
		"WriteMemory":        fw.WriteMemory,
		"RunWorkload":        fw.RunWorkload,
		"WaitForBreakpoint":  fw.WaitForBreakpoint,
		"ReadScanChain":      fw.ReadScanChain,
		"WriteScanChain":     fw.WriteScanChain,
		"WaitForTermination": fw.WaitForTermination,
		"ReadMemory":         fw.ReadMemory,
	}
	for name, fn := range calls {
		err := fn(ex)
		var nie *NotImplementedError
		if !errors.As(err, &nie) || nie.Method != name {
			t.Errorf("%s stub error = %v", name, err)
		}
	}
	// An unnamed framework still produces a usable name.
	anon := &Framework{}
	if anon.Name() == "" {
		t.Error("empty name from unnamed framework")
	}
}

func TestFrameworkInjectFaultGuards(t *testing.T) {
	fw := &Framework{TargetName: "g"}
	// Without a fault: no-op.
	ex := &Experiment{Campaign: fakeCampaign(1)}
	if err := fw.InjectFault(ex); err != nil || ex.Injected {
		t.Errorf("nil fault: err=%v injected=%v", err, ex.Injected)
	}
	// With a fault but no scan vector: error.
	ex.Fault = &faultmodel.Fault{Kind: faultmodel.Transient, Bits: []int{0}}
	if err := fw.InjectFault(ex); err == nil {
		t.Error("InjectFault without scan vector accepted")
	}
	// With an out-of-range fault: error.
	ex.ScanVector = bitvec.New(4)
	ex.Fault.Bits = []int{99}
	if err := fw.InjectFault(ex); err == nil {
		t.Error("out-of-range fault accepted")
	}
}

func TestExperimentScratch(t *testing.T) {
	ex := &Experiment{}
	if _, ok := ex.Scratch("missing"); ok {
		t.Error("scratch hit on empty map")
	}
	ex.PutScratch("k", 42)
	v, ok := ex.Scratch("k")
	if !ok || v.(int) != 42 {
		t.Errorf("scratch = %v, %v", v, ok)
	}
}

func TestInjectionFilterInRunner(t *testing.T) {
	camp := fakeCampaign(10)
	// Only accept faults in the first 8 bits, forcing redraws.
	r, err := NewRunner(newFakeTarget(), SCIFI, camp, fakeTSD(),
		WithInjectionFilter(func(f faultmodel.Fault, _ trigger.Spec) bool {
			return f.Bits[0] < 8
		}))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Skipped == 0 {
		t.Error("selective filter skipped nothing")
	}
	if sum.Experiments != 10 {
		t.Errorf("experiments = %d", sum.Experiments)
	}
}

func TestInjectionFilterRejectAllFails(t *testing.T) {
	camp := fakeCampaign(2)
	r, err := NewRunner(newFakeTarget(), SCIFI, camp, fakeTSD(),
		WithInjectionFilter(func(faultmodel.Fault, trigger.Spec) bool { return false }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err == nil {
		t.Error("reject-all filter did not error")
	}
}

func TestAlgorithmsRegistry(t *testing.T) {
	algs := Algorithms()
	for _, name := range []string{"scifi", "swifi-preruntime", "swifi-runtime", "pin-level"} {
		a, ok := algs[name]
		if !ok || a.Run == nil {
			t.Errorf("algorithm %q missing", name)
		}
	}
}
