package core

import (
	"fmt"
	"math/rand"

	"goofi/internal/bitvec"
	"goofi/internal/campaign"
	"goofi/internal/faultmodel"
	"goofi/internal/trigger"
)

// Experiment is the context shared by the abstract methods during one
// fault injection experiment. The algorithms (Fig 2) create one per
// experiment; the paper's argument-less Java methods communicated through
// instance state, which Go renders as this explicit context.
type Experiment struct {
	// Campaign is the campaign definition driving the experiment.
	Campaign *campaign.Campaign
	// Seq is the experiment index within the campaign; -1 marks the
	// fault-free reference run.
	Seq int
	// Name is the unique experiment name (LoggedSystemState key).
	Name string
	// Fault is the fault to inject; nil for the reference run.
	Fault *faultmodel.Fault
	// Trigger is the injection-time trigger spec for this experiment
	// (per-experiment when the campaign draws random injection times).
	Trigger trigger.Spec
	// RNG is the experiment's seeded random source; targets and fault
	// models must draw randomness only from it, keeping runs replayable.
	RNG *rand.Rand

	// ScanVector is the scan chain contents between ReadScanChain and
	// WriteScanChain.
	ScanVector *bitvec.Vector
	// InjectionCycle records when the injection point was reached
	// (set by the target in WaitForBreakpoint).
	InjectionCycle uint64
	// Injected reports whether InjectFault actually applied a fault.
	Injected bool

	// Forwarded reports that the target restored a recorded checkpoint
	// instead of cold-starting, skipping ForwardedFrom cycles of the
	// fault-free prefix. These are runtime statistics only; the logged
	// experiment record is byte-identical to a cold run's.
	Forwarded     bool
	ForwardedFrom uint64

	// Result accumulates the experiment's observations.
	Result Result

	// DetailSink, when non-nil, receives a state vector after every
	// machine instruction (detail mode, paper §3.3). Targets call it
	// from their execution loop.
	DetailSink func(step int, sv *campaign.StateVector) error

	// StepTrace records the abstract-method sequence executed by the
	// algorithm, for verification and debugging.
	StepTrace []string

	// scratch carries target-private state between abstract methods
	// (e.g. the assembled workload image between LoadWorkload and
	// WriteMemory).
	scratch map[string]interface{}
}

// IsReference reports whether this is the campaign's fault-free
// reference run.
func (ex *Experiment) IsReference() bool { return ex.Seq < 0 }

// PutScratch stores target-private state under a key.
func (ex *Experiment) PutScratch(key string, v interface{}) {
	if ex.scratch == nil {
		ex.scratch = make(map[string]interface{})
	}
	ex.scratch[key] = v
}

// Scratch retrieves target-private state.
func (ex *Experiment) Scratch(key string) (interface{}, bool) {
	v, ok := ex.scratch[key]
	return v, ok
}

// step records one abstract-method invocation.
func (ex *Experiment) step(name string) {
	ex.StepTrace = append(ex.StepTrace, name)
}

// Result holds everything observed from one experiment.
type Result struct {
	// Outcome summarises how the run ended.
	Outcome campaign.Outcome
	// FinalScan is the scan chain read after termination.
	FinalScan *bitvec.Vector
	// Memory maps result symbols to their observed bytes.
	Memory map[string][]byte
	// Outputs maps output ports to the values the workload emitted.
	Outputs map[uint16][]uint32
}

// StateVector packages the result as a LoggedSystemState stateVector.
func (r *Result) StateVector() (*campaign.StateVector, error) {
	sv := &campaign.StateVector{Memory: r.Memory, Outputs: r.Outputs}
	if r.FinalScan != nil {
		b, err := r.FinalScan.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("core: marshal final scan state: %w", err)
		}
		sv.Scan = b
	}
	return sv, nil
}

// Record builds the LoggedSystemState row for the experiment.
func (ex *Experiment) Record() (*campaign.ExperimentRecord, error) {
	sv, err := ex.Result.StateVector()
	if err != nil {
		return nil, err
	}
	data := campaign.ExperimentData{
		Seq:            ex.Seq,
		Trigger:        ex.Trigger,
		InjectionCycle: ex.InjectionCycle,
		Injected:       ex.Injected,
		Outcome:        ex.Result.Outcome,
	}
	if ex.Fault != nil {
		data.Fault = *ex.Fault
	}
	return &campaign.ExperimentRecord{
		Name:     ex.Name,
		Campaign: ex.Campaign.Name,
		Data:     data,
		State:    *sv,
		Step:     -1,
	}, nil
}
