package core

import (
	"fmt"
	"sort"
	"sync"

	"goofi/internal/campaign"
)

// The target registry replaces the per-target construction switches that
// used to live in cmd/goofi, goofid's job submission, and the shard
// worker: a target package registers itself once (in an init function)
// and every front end resolves it by name. Adding a target no longer
// touches flag parsing or the daemon — the paper's "Generic" claim made
// operational.

// TargetConfig carries free-form construction parameters from a front
// end to a target factory, so new targets can grow knobs (a victim
// binary path, an image size, a fast-path toggle) without new CLI or
// API surface.
type TargetConfig struct {
	// Params are target-specific key=value settings. Unknown keys are
	// ignored by targets that do not use them.
	Params map[string]string
}

// Param returns the named parameter or a default when unset.
func (c TargetConfig) Param(key, def string) string {
	if v, ok := c.Params[key]; ok && v != "" {
		return v
	}
	return def
}

// TargetInfo is one registered target system kind.
type TargetInfo struct {
	// Kind is the registry key ("scifi", "swifi-runtime", "proc", ...).
	// For the thor techniques the kind doubles as the algorithm name,
	// preserving the historical -technique CLI contract.
	Kind string
	// Aliases are alternative names resolving to this entry (the legacy
	// configure/submit kinds "swifi" and "pinlevel").
	Aliases []string
	// Description is one line for `goofi targets`.
	Description string
	// Algorithm names the fault injection algorithm the target runs by
	// default when the user selects the target without a technique.
	Algorithm string
	// Deterministic declares whether repeated runs of the same plan
	// produce byte-identical records (see TargetDeterministic).
	Deterministic bool
	// New builds a fresh target system (one per board).
	New func(cfg TargetConfig) (TargetSystem, error)
	// SystemData builds the configuration-phase TargetSystemData row
	// describing the target's injectable scan chains.
	SystemData func(name string, cfg TargetConfig) (*campaign.TargetSystemData, error)
}

var targetReg = struct {
	sync.Mutex
	m map[string]TargetInfo
}{m: make(map[string]TargetInfo)}

// RegisterTarget adds a target kind to the registry. It panics on a
// duplicate or invalid registration — registration runs from package
// init functions, where a conflict is a programming error.
func RegisterTarget(info TargetInfo) {
	if info.Kind == "" || info.New == nil {
		panic("core: RegisterTarget needs a kind and a factory")
	}
	targetReg.Lock()
	defer targetReg.Unlock()
	for _, name := range append([]string{info.Kind}, info.Aliases...) {
		if _, dup := targetReg.m[name]; dup {
			panic(fmt.Sprintf("core: target %q registered twice", name))
		}
		targetReg.m[name] = info
	}
}

// LookupTarget resolves a target kind or alias.
func LookupTarget(kind string) (TargetInfo, bool) {
	targetReg.Lock()
	defer targetReg.Unlock()
	info, ok := targetReg.m[kind]
	return info, ok
}

// Targets lists the registered target kinds sorted by kind (aliases are
// folded into their canonical entry).
func Targets() []TargetInfo {
	targetReg.Lock()
	defer targetReg.Unlock()
	seen := make(map[string]bool, len(targetReg.m))
	out := make([]TargetInfo, 0, len(targetReg.m))
	for _, info := range targetReg.m {
		if seen[info.Kind] {
			continue
		}
		seen[info.Kind] = true
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// NondeterministicTarget is the capability a target declares to relax
// the byte-identity guarantee: the injection plan (seq → fault +
// trigger) stays seed-deterministic and replayable, but outcomes are
// statistical (a live OS process is subject to scheduling, ASLR-free
// but cache- and interrupt-timing dependent). Targets without the
// method keep the full differential guarantees.
type NondeterministicTarget interface {
	Deterministic() bool
}

// TargetDeterministic reports whether a target's outcomes are
// byte-reproducible. Targets that do not declare the capability are
// deterministic — the historical contract every thor-backed suite pins.
func TargetDeterministic(ts TargetSystem) bool {
	if d, ok := ts.(NondeterministicTarget); ok {
		return d.Deterministic()
	}
	return true
}
