package core

import "fmt"

// Algorithm is one fault injection algorithm: a fixed sequence of the
// abstract target-system methods. The paper defines one per technique in
// the FaultInjectionAlgorithms class (Fig 2); adding a technique to GOOFI
// means adding an Algorithm here and implementing the methods it uses in
// the target (paper §2.1).
type Algorithm struct {
	// Name identifies the technique ("scifi", "swifi-preruntime", ...).
	Name string
	// Run executes one experiment against the target.
	Run func(ts TargetSystem, ex *Experiment) error
}

// namedStep runs one abstract method and records it in the step trace.
func namedStep(ex *Experiment, name string, fn func(*Experiment) error) error {
	ex.step(name)
	if err := fn(ex); err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	return nil
}

// SCIFI is the scan-chain implemented fault injection algorithm, step for
// step the faultInjectorSCIFI method of paper Fig 2:
//
//	initTestCard, loadWorkload, writeMemory, runWorkload,
//	waitForBreakpoint, readScanChain, injectFault, writeScanChain,
//	waitForTermination, readMemory, readScanChain.
//
// The reference run executes the same sequence without the injection trio,
// logging the fault-free system state (makeReferenceRun).
var SCIFI = Algorithm{
	Name: "scifi",
	Run: func(ts TargetSystem, ex *Experiment) error {
		if err := namedStep(ex, "initTestCard", ts.InitTestCard); err != nil {
			return err
		}
		if err := namedStep(ex, "loadWorkload", ts.LoadWorkload); err != nil {
			return err
		}
		if err := namedStep(ex, "writeMemory", ts.WriteMemory); err != nil {
			return err
		}
		if err := namedStep(ex, "runWorkload", ts.RunWorkload); err != nil {
			return err
		}
		if !ex.IsReference() {
			if err := namedStep(ex, "waitForBreakpoint", ts.WaitForBreakpoint); err != nil {
				return err
			}
			if err := namedStep(ex, "readScanChain", ts.ReadScanChain); err != nil {
				return err
			}
			if err := namedStep(ex, "injectFault", ts.InjectFault); err != nil {
				return err
			}
			if err := namedStep(ex, "writeScanChain", ts.WriteScanChain); err != nil {
				return err
			}
		}
		if err := namedStep(ex, "waitForTermination", ts.WaitForTermination); err != nil {
			return err
		}
		if err := namedStep(ex, "readMemory", ts.ReadMemory); err != nil {
			return err
		}
		if err := namedStep(ex, "readScanChain", ts.ReadScanChain); err != nil {
			return err
		}
		ex.Result.FinalScan = ex.ScanVector
		return nil
	},
}

// PreRuntimeSWIFI is pre-runtime software implemented fault injection:
// "faults are injected into the program and data areas of the target
// system before it starts to execute" (paper §1). The injection happens
// between loadWorkload and writeMemory — the workload image is mutated on
// the host and then downloaded. Note how the building blocks are reused
// across techniques (paper §2.1): only injectFault differs in meaning.
var PreRuntimeSWIFI = Algorithm{
	Name: "swifi-preruntime",
	Run: func(ts TargetSystem, ex *Experiment) error {
		if err := namedStep(ex, "initTestCard", ts.InitTestCard); err != nil {
			return err
		}
		if err := namedStep(ex, "loadWorkload", ts.LoadWorkload); err != nil {
			return err
		}
		if !ex.IsReference() {
			if err := namedStep(ex, "injectFault", ts.InjectFault); err != nil {
				return err
			}
		}
		if err := namedStep(ex, "writeMemory", ts.WriteMemory); err != nil {
			return err
		}
		if err := namedStep(ex, "runWorkload", ts.RunWorkload); err != nil {
			return err
		}
		if err := namedStep(ex, "waitForTermination", ts.WaitForTermination); err != nil {
			return err
		}
		if err := namedStep(ex, "readMemory", ts.ReadMemory); err != nil {
			return err
		}
		return nil
	},
}

// RuntimeSWIFI is runtime software implemented fault injection (a paper §4
// extension): the workload runs to the injection point, is stopped, the
// fault is applied through software (memory mutation), and execution
// resumes. It reuses the SCIFI structure with memory-level injection.
var RuntimeSWIFI = Algorithm{
	Name: "swifi-runtime",
	Run: func(ts TargetSystem, ex *Experiment) error {
		if err := namedStep(ex, "initTestCard", ts.InitTestCard); err != nil {
			return err
		}
		if err := namedStep(ex, "loadWorkload", ts.LoadWorkload); err != nil {
			return err
		}
		if err := namedStep(ex, "writeMemory", ts.WriteMemory); err != nil {
			return err
		}
		if err := namedStep(ex, "runWorkload", ts.RunWorkload); err != nil {
			return err
		}
		if !ex.IsReference() {
			if err := namedStep(ex, "waitForBreakpoint", ts.WaitForBreakpoint); err != nil {
				return err
			}
			if err := namedStep(ex, "injectFault", ts.InjectFault); err != nil {
				return err
			}
		}
		if err := namedStep(ex, "waitForTermination", ts.WaitForTermination); err != nil {
			return err
		}
		if err := namedStep(ex, "readMemory", ts.ReadMemory); err != nil {
			return err
		}
		return nil
	},
}

// PinLevel is pin-level fault injection (paper §2.1 names it as a
// composable technique): the fault is forced onto the circuit pins via
// the boundary-scan register while the workload runs.
var PinLevel = Algorithm{
	Name: "pin-level",
	Run: func(ts TargetSystem, ex *Experiment) error {
		if err := namedStep(ex, "initTestCard", ts.InitTestCard); err != nil {
			return err
		}
		if err := namedStep(ex, "loadWorkload", ts.LoadWorkload); err != nil {
			return err
		}
		if err := namedStep(ex, "writeMemory", ts.WriteMemory); err != nil {
			return err
		}
		if err := namedStep(ex, "runWorkload", ts.RunWorkload); err != nil {
			return err
		}
		if !ex.IsReference() {
			if err := namedStep(ex, "waitForBreakpoint", ts.WaitForBreakpoint); err != nil {
				return err
			}
			if err := namedStep(ex, "readScanChain", ts.ReadScanChain); err != nil {
				return err
			}
			if err := namedStep(ex, "injectFault", ts.InjectFault); err != nil {
				return err
			}
			if err := namedStep(ex, "writeScanChain", ts.WriteScanChain); err != nil {
				return err
			}
		}
		if err := namedStep(ex, "waitForTermination", ts.WaitForTermination); err != nil {
			return err
		}
		if err := namedStep(ex, "readMemory", ts.ReadMemory); err != nil {
			return err
		}
		return nil
	},
}

// Algorithms lists the built-in fault injection algorithms by name.
func Algorithms() map[string]Algorithm {
	return map[string]Algorithm{
		SCIFI.Name:           SCIFI,
		PreRuntimeSWIFI.Name: PreRuntimeSWIFI,
		RuntimeSWIFI.Name:    RuntimeSWIFI,
		PinLevel.Name:        PinLevel,
	}
}
