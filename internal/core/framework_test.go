package core

import (
	"errors"
	"strings"
	"testing"
)

// TestFrameworkStubsNameTheMethod pins the Fig 3 template contract:
// every abstract method a port has not overridden reports a
// NotImplementedError naming exactly that method, so a user selecting
// an algorithm against an incomplete target learns precisely which
// building block is missing. InjectFault is excluded — the Framework
// ships a generic scan-vector implementation of it.
func TestFrameworkStubsNameTheMethod(t *testing.T) {
	f := &Framework{TargetName: "blank-port"}
	ex := &Experiment{}
	cases := []struct {
		method string
		call   func(*Experiment) error
	}{
		{"InitTestCard", f.InitTestCard},
		{"LoadWorkload", f.LoadWorkload},
		{"WriteMemory", f.WriteMemory},
		{"RunWorkload", f.RunWorkload},
		{"WaitForBreakpoint", f.WaitForBreakpoint},
		{"ReadScanChain", f.ReadScanChain},
		{"WriteScanChain", f.WriteScanChain},
		{"WaitForTermination", f.WaitForTermination},
		{"ReadMemory", f.ReadMemory},
	}
	for _, tc := range cases {
		t.Run(tc.method, func(t *testing.T) {
			err := tc.call(ex)
			var ni *NotImplementedError
			if !errors.As(err, &ni) {
				t.Fatalf("%s: err = %v, want NotImplementedError", tc.method, err)
			}
			if ni.Method != tc.method {
				t.Fatalf("NotImplementedError.Method = %q, want %q", ni.Method, tc.method)
			}
			if ni.Target != "blank-port" {
				t.Fatalf("NotImplementedError.Target = %q, want blank-port", ni.Target)
			}
			if !strings.Contains(err.Error(), tc.method) {
				t.Fatalf("error text %q does not name the method", err)
			}
			if ClassifyError(err) != Persistent {
				t.Fatalf("classified %v, want persistent (retrying cannot implement a method)", ClassifyError(err))
			}
		})
	}
}
