package core

import (
	"context"
	"sync"
	"testing"

	"goofi/internal/campaign"
)

func TestRunParallelMatchesSequential(t *testing.T) {
	// Sequential reference.
	camp := fakeCampaign(30)
	stSeq := storeWithCampaign(t, camp)
	rSeq, err := NewRunner(newFakeTarget(), SCIFI, camp, fakeTSD(), WithStore(stSeq))
	if err != nil {
		t.Fatal(err)
	}
	seqSum, err := rSeq.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Parallel across 4 boards.
	stPar := storeWithCampaign(t, camp)
	rPar, err := NewRunner(nil, SCIFI, camp, fakeTSD(), WithStore(stPar))
	if err != nil {
		t.Fatal(err)
	}
	parSum, err := rPar.RunParallel(context.Background(), 4, func() TargetSystem { return newFakeTarget() })
	if err != nil {
		t.Fatal(err)
	}

	if parSum.Experiments != seqSum.Experiments || parSum.Injected != seqSum.Injected {
		t.Errorf("summaries differ: seq %+v, par %+v", seqSum, parSum)
	}
	for st, n := range seqSum.ByStatus {
		if parSum.ByStatus[st] != n {
			t.Errorf("status %v: seq %d, par %d", st, n, parSum.ByStatus[st])
		}
	}

	// Per-experiment outcomes are identical record by record.
	seqRecs, err := stSeq.Experiments("fc")
	if err != nil {
		t.Fatal(err)
	}
	parRecs, err := stPar.Experiments("fc")
	if err != nil {
		t.Fatal(err)
	}
	if len(seqRecs) != len(parRecs) {
		t.Fatalf("record counts: seq %d, par %d", len(seqRecs), len(parRecs))
	}
	for i := range seqRecs {
		if seqRecs[i].Name != parRecs[i].Name {
			t.Fatalf("record %d name: %q vs %q", i, seqRecs[i].Name, parRecs[i].Name)
		}
		if seqRecs[i].Data.Outcome != parRecs[i].Data.Outcome {
			t.Errorf("%s outcome: seq %+v, par %+v",
				seqRecs[i].Name, seqRecs[i].Data.Outcome, parRecs[i].Data.Outcome)
		}
		if len(seqRecs[i].Data.Fault.Bits) > 0 &&
			seqRecs[i].Data.Fault.Bits[0] != parRecs[i].Data.Fault.Bits[0] {
			t.Errorf("%s fault differs", seqRecs[i].Name)
		}
	}
}

func TestRunParallelProgressThreadSafe(t *testing.T) {
	camp := fakeCampaign(40)
	var mu sync.Mutex
	count := 0
	r, err := NewRunner(nil, SCIFI, camp, fakeTSD(), WithProgress(func(ev ProgressEvent) {
		mu.Lock()
		if ev.Phase == "experiment" {
			count++
		}
		mu.Unlock()
	}))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r.RunParallel(context.Background(), 8, func() TargetSystem { return newFakeTarget() })
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if count != 40 || sum.Experiments != 40 {
		t.Errorf("progress events %d, experiments %d", count, sum.Experiments)
	}
}

func TestRunParallelStop(t *testing.T) {
	camp := fakeCampaign(10000)
	var r *Runner
	var once sync.Once
	var err error
	r, err = NewRunner(nil, SCIFI, camp, fakeTSD(), WithProgress(func(ev ProgressEvent) {
		if ev.Phase == "experiment" && ev.Done >= 10 {
			once.Do(r.Stop)
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r.RunParallel(context.Background(), 4, func() TargetSystem { return newFakeTarget() })
	if err != nil {
		t.Fatal(err)
	}
	if sum.Experiments >= 10000 || sum.Experiments < 10 {
		t.Errorf("experiments after stop = %d", sum.Experiments)
	}
}

func TestRunParallelBadBoardCount(t *testing.T) {
	camp := fakeCampaign(5)
	r, err := NewRunner(nil, SCIFI, camp, fakeTSD())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunParallel(context.Background(), 0, func() TargetSystem { return newFakeTarget() }); err == nil {
		t.Error("zero boards accepted")
	}
}

func TestRunParallelTargetError(t *testing.T) {
	camp := fakeCampaign(20)
	r, err := NewRunner(nil, SCIFI, camp, fakeTSD())
	if err != nil {
		t.Fatal(err)
	}
	// A Framework with nothing implemented fails on the first method.
	_, err = r.RunParallel(context.Background(), 2, func() TargetSystem {
		return &Framework{TargetName: "broken"}
	})
	if err == nil {
		t.Error("broken target did not surface an error")
	}
}

func TestRunParallelContextCancel(t *testing.T) {
	camp := fakeCampaign(100000)
	ctx, cancel := context.WithCancel(context.Background())
	r, err := NewRunner(nil, SCIFI, camp, fakeTSD(), WithProgress(func(ev ProgressEvent) {
		if ev.Phase == "experiment" && ev.Done == 5 {
			cancel()
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.RunParallel(ctx, 4, func() TargetSystem { return newFakeTarget() })
	if err == nil {
		t.Error("cancelled context did not surface")
	}
}

func TestRunParallelLogsReference(t *testing.T) {
	camp := fakeCampaign(5)
	st := storeWithCampaign(t, camp)
	r, err := NewRunner(nil, SCIFI, camp, fakeTSD(), WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunParallel(context.Background(), 2, func() TargetSystem { return newFakeTarget() }); err != nil {
		t.Fatal(err)
	}
	if _, err := st.GetExperiment(campaign.ReferenceName("fc")); err != nil {
		t.Errorf("reference run not logged: %v", err)
	}
}
