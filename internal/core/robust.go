package core

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"goofi/internal/campaign"
)

// RetryPolicy configures the runner's fault-tolerance layer: per-attempt
// watchdogs, retry with capped exponential backoff, and the board
// circuit breaker. The zero value disables the layer entirely, keeping
// the legacy semantics (first experiment error aborts dispatch); use
// DefaultRetryPolicy for sensible production values.
type RetryPolicy struct {
	// MaxRetries is how many times a failed experiment is re-attempted
	// beyond its first execution. An experiment still failing after
	// MaxRetries+1 attempts is recorded as OutcomeInvalidRun and the
	// campaign moves on.
	MaxRetries int
	// BoardFailureThreshold is the circuit breaker: after this many
	// consecutive harness failures on one board, the board is
	// quarantined and its in-hand work reassigned to healthy boards
	// (0 = never quarantine). Keep it at or below MaxRetries so a
	// broken board trips the breaker before it exhausts an innocent
	// experiment's retry budget.
	BoardFailureThreshold int
	// WatchdogTimeout is the per-attempt wall-clock deadline; an attempt
	// exceeding it is classified Wedged and its board power-cycled
	// (0 = no watchdog). Recovering from a wedge needs a board factory
	// (WithBoards): the wedged attempt may still hold the old target.
	WatchdogTimeout time.Duration
	// CycleCap is the per-attempt emulated-cycle cap; a run that emulates
	// more cycles is treated as a runaway harness and classified Wedged
	// (0 = no cap). It complements the campaign's TimeoutCycles, which a
	// misbehaving target could ignore.
	CycleCap uint64
	// BackoffBase and BackoffMax bound the exponential backoff between
	// retry attempts: attempt n sleeps base<<(n-1), capped at max, plus
	// up to 50% seeded jitter. Zero values select the defaults below.
	// Persistent failures skip the delay (waiting cannot fix them).
	BackoffBase time.Duration
	BackoffMax  time.Duration
}

// Backoff defaults.
const (
	// DefaultBackoffBase is the first retry delay when the policy does
	// not set one. Deliberately short: simulated boards recover at
	// InitTestCard speed, and real TAP glitches clear in milliseconds.
	DefaultBackoffBase = 2 * time.Millisecond
	// DefaultBackoffMax caps the exponential growth.
	DefaultBackoffMax = 250 * time.Millisecond
)

// DefaultRetryPolicy returns the production policy used by the goofi
// CLI: two retries, quarantine after two consecutive board failures,
// a generous wall-clock watchdog.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxRetries:            2,
		BoardFailureThreshold: 2,
		WatchdogTimeout:       30 * time.Second,
	}
}

// enabled reports whether any part of the fault-tolerance layer is on.
// A fully zero policy preserves the legacy abort-on-first-error
// behaviour (errors are still recover-classified so a target panic can
// no longer kill the process).
func (p *RetryPolicy) enabled() bool {
	return p.MaxRetries > 0 || p.BoardFailureThreshold > 0 ||
		p.WatchdogTimeout > 0 || p.CycleCap > 0
}

// maxAttempts is the total execution budget per experiment.
func (p *RetryPolicy) maxAttempts() int { return p.MaxRetries + 1 }

// backoff returns the sleep before retry attempt n (n >= 2), with
// seeded jitter drawn from rng so tests are deterministic.
func (p *RetryPolicy) backoff(n int, rng *rand.Rand) time.Duration {
	base, max := p.BackoffBase, p.BackoffMax
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if max <= 0 {
		max = DefaultBackoffMax
	}
	d := base
	for i := 2; i < n && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// Up to 50% jitter spreads simultaneous retries across boards.
	return d + time.Duration(rng.Int63n(int64(d)/2+1))
}

// WithRetryPolicy enables the fault-tolerance layer: panics in board
// workers are recovered per experiment, failed experiments are retried
// with backoff after a board re-init (power cycle), boards failing
// repeatedly are quarantined, and experiments exhausting their retries
// are recorded as OutcomeInvalidRun instead of failing the campaign.
func WithRetryPolicy(p RetryPolicy) RunnerOption {
	return func(r *Runner) { r.retry = p }
}

// execAttempt runs the algorithm once on the given target, converting
// panics to Wedged errors and enforcing the policy's watchdogs. When the
// wall-clock watchdog fires, the attempt's goroutine is abandoned
// together with the target it may still be driving — exactly like a
// wedged physical board, which only a power cycle (a fresh target from
// the factory) recovers.
func (r *Runner) execAttempt(ctx context.Context, target TargetSystem, ex *Experiment, attempt int) error {
	run := func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = &ExperimentError{Class: Wedged, Experiment: ex.Name, Attempt: attempt,
					Err: fmt.Errorf("panic in experiment: %v", p)}
			}
		}()
		return r.alg.Run(target, ex)
	}
	var err error
	if r.retry.WatchdogTimeout <= 0 {
		err = run()
	} else {
		done := make(chan error, 1)
		go func() { done <- run() }()
		timer := time.NewTimer(r.retry.WatchdogTimeout)
		defer timer.Stop()
		select {
		case err = <-done:
		case <-timer.C:
			mWatchdogFires.Inc()
			return &ExperimentError{Class: Wedged, Experiment: ex.Name, Attempt: attempt,
				Err: fmt.Errorf("watchdog: no response within %v", r.retry.WatchdogTimeout)}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if err != nil {
		return err
	}
	if cc := r.retry.CycleCap; cc > 0 && ex.Result.Outcome.Cycles > cc {
		mWatchdogFires.Inc()
		return &ExperimentError{Class: Wedged, Experiment: ex.Name, Attempt: attempt,
			Err: fmt.Errorf("watchdog: run emulated %d cycles, cap %d", ex.Result.Outcome.Cycles, cc)}
	}
	return nil
}

// sleepCtx sleeps for d, returning false when ctx is cancelled first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// bufferDetail reroutes an experiment's detail-mode sink into an
// in-memory buffer, so a retried attempt's partial instruction trace is
// discarded instead of colliding with the successful attempt's rows.
// flush writes the buffered trace to the real sink.
func (r *Runner) bufferDetail(ex *Experiment) (flush func() error) {
	if ex.DetailSink == nil {
		return func() error { return nil }
	}
	var buf []*campaign.ExperimentRecord
	parent := ex.Name
	ex.DetailSink = func(step int, sv *campaign.StateVector) error {
		buf = append(buf, detailRecord(r.camp.Name, parent, step, sv))
		return nil
	}
	return func() error {
		for _, rec := range buf {
			if err := r.sink.LogExperiment(rec); err != nil {
				return err
			}
		}
		return nil
	}
}

// invalidRecord builds the LoggedSystemState row for an experiment the
// harness could not complete: the planned injection is preserved so the
// experiment can be re-attempted (goofi resume -retry-invalid), the
// outcome records the attempt count and final failure, and Injected is
// false so analysis excludes the run from every effectiveness ratio.
func (r *Runner) invalidRecord(ex *Experiment, attempts int, cause error) *campaign.ExperimentRecord {
	data := campaign.ExperimentData{
		Seq:     ex.Seq,
		Trigger: ex.Trigger,
		Outcome: campaign.Outcome{
			Status:       campaign.OutcomeInvalidRun,
			Attempts:     attempts,
			HarnessError: cause.Error(),
		},
	}
	if ex.Fault != nil {
		data.Fault = *ex.Fault
	}
	return &campaign.ExperimentRecord{
		Name:     ex.Name,
		Campaign: r.camp.Name,
		Data:     data,
		Step:     -1,
	}
}
