package core

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"goofi/internal/campaign"
)

// flakyTarget is a fakeTarget whose ReadScanChain misbehaves in a
// programmable way on a chosen sequence number, with a failure budget
// shared across factory-created instances (a retried experiment may run
// on a fresh target after a power cycle).
type flakyTarget struct {
	*fakeTarget
	failSeq   int    // experiment sequence to sabotage (-2 = every one)
	mode      string // "error", "persistent", "panic", "hang"
	remaining *int32 // shared failure budget; <0 disables
}

func (f *flakyTarget) ReadScanChain(ex *Experiment) error {
	if (f.failSeq == -2 || ex.Seq == f.failSeq) && atomic.AddInt32(f.remaining, -1) >= 0 {
		switch f.mode {
		case "panic":
			panic("flaky harness panic")
		case "hang":
			time.Sleep(300 * time.Millisecond)
		case "persistent":
			return &ExperimentError{Class: Persistent, Experiment: ex.Name,
				Err: context.DeadlineExceeded}
		default:
			return &ExperimentError{Class: Transient, Experiment: ex.Name,
				Err: errors.New("scan shift glitched")}
		}
	}
	return f.fakeTarget.ReadScanChain(ex)
}

func flakyFactory(failSeq int, mode string, budget int32) func() TargetSystem {
	remaining := budget
	return func() TargetSystem {
		return &flakyTarget{fakeTarget: newFakeTarget(), failSeq: failSeq,
			mode: mode, remaining: &remaining}
	}
}

// recordRows renders a campaign's stored end-of-experiment records as
// JSON lines for byte-level comparison.
func recordRows(t *testing.T, st *campaign.Store, name string) []string {
	t.Helper()
	recs, err := st.Experiments(name)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]string, 0, len(recs))
	for _, rec := range recs {
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, string(b))
	}
	return rows
}

// TestWorkerPanicDoesNotCrashProcess is the satellite fix: a panic in a
// board worker becomes a classified error (legacy policy) instead of
// killing the process, and the already-completed results stay durable.
func TestWorkerPanicDoesNotCrashProcess(t *testing.T) {
	camp := fakeCampaign(10)
	st := storeWithCampaign(t, camp)
	r, err := NewRunner(nil, SCIFI, camp, fakeTSD(),
		WithSink(st),
		WithBoards(1, flakyFactory(5, "panic", 1)))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r.Run(context.Background())
	if err == nil {
		t.Fatal("worker panic did not surface as an error")
	}
	if !strings.Contains(err.Error(), "panic") {
		t.Errorf("error does not mention the panic: %v", err)
	}
	if sum == nil {
		t.Fatal("no partial summary returned on error")
	}
	// Experiments 0..4 completed before the panic and must be durable.
	if sum.Experiments != 5 {
		t.Errorf("partial summary has %d experiments, want 5", sum.Experiments)
	}
	recs, err := st.Experiments(camp.Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 { // reference + 5 experiments
		t.Errorf("store holds %d records, want 6", len(recs))
	}
}

// TestSchedulerErrorDrainsAndFlushes is the other satellite fix: on the
// first experiment error the scheduler drains in-flight workers and
// flushes the sink before reporting, so completed results written
// through an asynchronous sink are not lost.
func TestSchedulerErrorDrainsAndFlushes(t *testing.T) {
	camp := fakeCampaign(12)
	st := storeWithCampaign(t, camp)
	sink := campaign.NewBatchingSink(st, 64) // big batch: only a flush drains it
	r, err := NewRunner(nil, SCIFI, camp, fakeTSD(),
		WithSink(sink),
		WithBoards(1, flakyFactory(7, "error", 1)))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r.Run(context.Background())
	if err == nil {
		t.Fatal("experiment error did not surface")
	}
	if sum == nil || sum.Experiments != 7 {
		t.Fatalf("partial summary = %+v, want 7 experiments", sum)
	}
	// Without Close: the records must already be durable from Run's
	// termination flush.
	recs, err := st.Experiments(camp.Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 8 { // reference + 7
		t.Errorf("store holds %d records after failed run, want 8", len(recs))
	}
}

// TestRetryConvergesToIdenticalRecords: transient harness failures, after
// retries, leave records byte-identical to an undisturbed run's.
func TestRetryConvergesToIdenticalRecords(t *testing.T) {
	camp := fakeCampaign(10)
	healthySt := storeWithCampaign(t, camp)
	r, err := NewRunner(nil, SCIFI, camp, fakeTSD(),
		WithSink(healthySt), WithBoards(1, func() TargetSystem { return newFakeTarget() }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	flakySt := storeWithCampaign(t, camp)
	rf, err := NewRunner(nil, SCIFI, camp, fakeTSD(),
		WithSink(flakySt),
		WithBoards(1, flakyFactory(4, "error", 3)),
		WithRetryPolicy(RetryPolicy{MaxRetries: 5, BackoffBase: time.Microsecond}))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := rf.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Retried != 3 {
		t.Errorf("retried = %d, want 3", sum.Retried)
	}
	if sum.InvalidRuns != 0 {
		t.Errorf("invalid runs = %d, want 0", sum.InvalidRuns)
	}
	healthy := recordRows(t, healthySt, camp.Name)
	flaky := recordRows(t, flakySt, camp.Name)
	if len(healthy) != len(flaky) {
		t.Fatalf("row counts differ: healthy %d, flaky %d", len(healthy), len(flaky))
	}
	for i := range healthy {
		if healthy[i] != flaky[i] {
			t.Errorf("row %d differs:\nhealthy: %s\nflaky:   %s", i, healthy[i], flaky[i])
		}
	}
}

// TestInvalidRunRecorded: an experiment that fails every attempt is
// recorded as OutcomeInvalidRun with its attempt count, and the campaign
// still completes.
func TestInvalidRunRecorded(t *testing.T) {
	camp := fakeCampaign(8)
	st := storeWithCampaign(t, camp)
	r, err := NewRunner(nil, SCIFI, camp, fakeTSD(),
		WithSink(st),
		WithBoards(1, flakyFactory(3, "error", 1<<20)),
		WithRetryPolicy(RetryPolicy{MaxRetries: 2, BackoffBase: time.Microsecond}))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Experiments != 8 {
		t.Errorf("experiments = %d, want 8", sum.Experiments)
	}
	if sum.InvalidRuns != 1 || sum.ByStatus[campaign.OutcomeInvalidRun] != 1 {
		t.Errorf("invalid runs = %d (by status %d), want 1",
			sum.InvalidRuns, sum.ByStatus[campaign.OutcomeInvalidRun])
	}
	rec, err := st.GetExperiment(campaign.ExperimentName(camp.Name, 3))
	if err != nil {
		t.Fatal(err)
	}
	out := rec.Data.Outcome
	if out.Status != campaign.OutcomeInvalidRun {
		t.Errorf("status = %q, want invalid-run", out.Status)
	}
	if out.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", out.Attempts)
	}
	if out.HarnessError == "" {
		t.Error("harness error not recorded")
	}
	if rec.Data.Injected {
		t.Error("invalid run marked injected")
	}
}

// TestWatchdogRecoversWedgedBoard: a hang past the watchdog deadline is
// classified Wedged, the board is power-cycled via the factory, and the
// retried experiment succeeds.
func TestWatchdogRecoversWedgedBoard(t *testing.T) {
	camp := fakeCampaign(6)
	st := storeWithCampaign(t, camp)
	r, err := NewRunner(nil, SCIFI, camp, fakeTSD(),
		WithSink(st),
		WithBoards(1, flakyFactory(2, "hang", 1)),
		WithRetryPolicy(RetryPolicy{
			MaxRetries:      2,
			WatchdogTimeout: 30 * time.Millisecond,
			BackoffBase:     time.Microsecond,
		}))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Experiments != 6 || sum.InvalidRuns != 0 {
		t.Errorf("experiments = %d invalid = %d, want 6/0", sum.Experiments, sum.InvalidRuns)
	}
	if sum.Retried != 1 {
		t.Errorf("retried = %d, want 1", sum.Retried)
	}
}

// barrierTarget holds its first experiment at InitTestCard until all
// boards in the group have started one, so a multi-board test provably
// hands at least one experiment to every board before the fast fakes
// drain the queue.
type barrierTarget struct {
	TargetSystem
	once    sync.Once
	started *int32
	n       int32
	gate    chan struct{}
}

func (b *barrierTarget) InitTestCard(ex *Experiment) error {
	b.once.Do(func() {
		if atomic.AddInt32(b.started, 1) == b.n {
			close(b.gate)
		}
		<-b.gate
	})
	return b.TargetSystem.InitTestCard(ex)
}

// TestQuarantineReassignsWork: with one persistently broken board of
// three, the circuit breaker quarantines it and the surviving boards
// complete the whole plan with clean records.
func TestQuarantineReassignsWork(t *testing.T) {
	camp := fakeCampaign(20)
	st := storeWithCampaign(t, camp)
	// Factory call 1 is the reference board; one of the three worker
	// boards is broken for every experiment it touches. The start
	// barrier guarantees each worker board pops an experiment before the
	// healthy ones race through the rest of the queue.
	var calls, started int32
	gate := make(chan struct{})
	factory := func() TargetSystem {
		n := atomic.AddInt32(&calls, 1)
		var inner TargetSystem = newFakeTarget()
		if n == 1 { // reference board: runs before the workers exist
			return inner
		}
		if n == 3 {
			bad := int32(1 << 20)
			inner = &flakyTarget{fakeTarget: newFakeTarget(), failSeq: -2,
				mode: "error", remaining: &bad}
		}
		return &barrierTarget{TargetSystem: inner, started: &started, n: 3, gate: gate}
	}
	r, err := NewRunner(nil, SCIFI, camp, fakeTSD(),
		WithSink(st),
		WithBoards(3, factory),
		WithRetryPolicy(RetryPolicy{
			MaxRetries:            3,
			BoardFailureThreshold: 2,
			BackoffBase:           time.Microsecond,
		}))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Experiments != 20 {
		t.Errorf("experiments = %d, want 20", sum.Experiments)
	}
	if sum.QuarantinedBoards != 1 {
		t.Errorf("quarantined boards = %d, want 1", sum.QuarantinedBoards)
	}
	if sum.InvalidRuns != 0 {
		t.Errorf("invalid runs = %d, want 0 (failures were the board's fault)", sum.InvalidRuns)
	}
	recs, err := st.Experiments(camp.Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 21 { // reference + 20
		t.Errorf("store holds %d records, want 21", len(recs))
	}
	for _, rec := range recs {
		if rec.Data.Outcome.Status == campaign.OutcomeInvalidRun {
			t.Errorf("%s recorded invalid", rec.Name)
		}
	}
}

// TestAllBoardsQuarantined: when every board trips the circuit breaker
// the campaign fails with a clear error and a partial summary, instead
// of hanging or silently dropping the remaining plan.
func TestAllBoardsQuarantined(t *testing.T) {
	camp := fakeCampaign(10)
	st := storeWithCampaign(t, camp)
	var calls int32
	factory := func() TargetSystem {
		// The reference board (first call) is healthy; every later
		// target — the single worker board and any power-cycle
		// replacement — is broken.
		if atomic.AddInt32(&calls, 1) == 1 {
			return newFakeTarget()
		}
		bad := int32(1 << 20)
		return &flakyTarget{fakeTarget: newFakeTarget(), failSeq: -2,
			mode: "error", remaining: &bad}
	}
	r, err := NewRunner(nil, SCIFI, camp, fakeTSD(),
		WithSink(st),
		WithBoards(1, factory),
		WithRetryPolicy(RetryPolicy{
			MaxRetries:            5,
			BoardFailureThreshold: 2,
			BackoffBase:           time.Microsecond,
		}))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("err = %v, want all-boards-quarantined error", err)
	}
	if sum == nil {
		t.Fatal("no partial summary on quarantine failure")
	}
	if sum.QuarantinedBoards != 1 {
		t.Errorf("quarantined boards = %d, want 1", sum.QuarantinedBoards)
	}
}

// TestRetryPolicyBackoff pins the backoff envelope: exponential growth
// from the base, capped at the max, jitter below 50%.
func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{BackoffBase: 4 * time.Millisecond, BackoffMax: 20 * time.Millisecond}
	rng := rand.New(rand.NewSource(1))
	wantBase := []time.Duration{
		4 * time.Millisecond,  // attempt 2
		8 * time.Millisecond,  // attempt 3
		16 * time.Millisecond, // attempt 4
		20 * time.Millisecond, // attempt 5 (capped)
		20 * time.Millisecond, // attempt 6 (capped)
	}
	for i, want := range wantBase {
		got := p.backoff(i+2, rng)
		if got < want || got > want+want/2 {
			t.Errorf("backoff(attempt %d) = %v, want in [%v, %v]", i+2, got, want, want+want/2)
		}
	}
}
