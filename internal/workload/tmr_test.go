package workload

import (
	"testing"

	"goofi/internal/thor"
)

// hostChecksum computes the expected weighted checksum.
func hostChecksum() int32 {
	data := []int32{170, 45, 75, 90, 802, 24, 2, 66, 181, 3, 401, 129, 33, 256, 7, 512}
	var cs int32
	for i, v := range data {
		cs += v * int32(i+1)
	}
	return cs
}

func TestChecksumMatchesHost(t *testing.T) {
	spec := Checksum()
	c, prog := runBatch(t, spec.Name, spec.Source)
	got := readWords(t, c, prog.MustSymbol("result"), 1)[0]
	if got != hostChecksum() {
		t.Errorf("result = %d, want %d", got, hostChecksum())
	}
}

func TestChecksumTMRFaultFree(t *testing.T) {
	spec := ChecksumTMR()
	c, prog := runBatch(t, spec.Name, spec.Source)
	got := readWords(t, c, prog.MustSymbol("result"), 1)[0]
	if got != hostChecksum() {
		t.Errorf("result = %d, want %d", got, hostChecksum())
	}
	masked := readWords(t, c, prog.MustSymbol("masked"), 1)[0]
	if masked != 0 {
		t.Errorf("fault-free run reports masking: %d", masked)
	}
}

func TestChecksumTMRMasksSingleReplicaCorruption(t *testing.T) {
	// Corrupt replica c1 after its computation (simulating a transient
	// fault during the first pass): the vote must output the agreeing
	// pair and flag the mask.
	spec := ChecksumTMR()
	c, prog := runBatch(t, spec.Name, spec.Source) // fault-free first, to find c1 write time
	_ = c

	// Re-run, stopping right after c1 is stored, then corrupt it.
	c2 := thor.New(thor.DefaultConfig())
	prog2 := prog
	if err := c2.LoadMemory(0, prog2.Image); err != nil {
		t.Fatal(err)
	}
	c1Addr := prog2.MustSymbol("c1")
	for i := 0; i < 2_000_000; i++ {
		st := c2.Step()
		if st != thor.StatusRunning {
			t.Fatalf("halted before c1 written: %v", st)
		}
		w, err := c2.ReadWord32(c1Addr)
		if err != nil {
			t.Fatal(err)
		}
		if w != 0 {
			break // c1 stored
		}
	}
	if err := c2.WriteWord32(c1Addr, 12345); err != nil {
		t.Fatal(err)
	}
	if st := c2.Run(2_000_000); st != thor.StatusHalted {
		t.Fatalf("status = %v (detection %+v)", st, c2.Detection())
	}
	result, err := c2.ReadWord32(prog2.MustSymbol("result"))
	if err != nil {
		t.Fatal(err)
	}
	if int32(result) != hostChecksum() {
		t.Errorf("vote output = %d, want %d (replica fault not masked)", int32(result), hostChecksum())
	}
	masked, err := c2.ReadWord32(prog2.MustSymbol("masked"))
	if err != nil {
		t.Fatal(err)
	}
	if masked != 1 {
		t.Errorf("masked flag = %d, want 1", masked)
	}
}

func TestChecksumTMRAllDisagreeTraps(t *testing.T) {
	// Corrupt two replicas differently: no majority, the unrecoverable
	// assertion must fire.
	spec := ChecksumTMR()
	prog, err := assembleSpec(spec.Source)
	if err != nil {
		t.Fatal(err)
	}
	c := thor.New(thor.DefaultConfig())
	if err := c.LoadMemory(0, prog.Image); err != nil {
		t.Fatal(err)
	}
	c2Addr := prog.MustSymbol("c2")
	c3Addr := prog.MustSymbol("c3")
	for i := 0; i < 2_000_000; i++ {
		st := c.Step()
		if st != thor.StatusRunning {
			t.Fatalf("stopped early: %v", st)
		}
		w, err := c.ReadWord32(c3Addr)
		if err != nil {
			t.Fatal(err)
		}
		if w != 0 {
			break // all three replicas stored
		}
	}
	if err := c.WriteWord32(c2Addr, 111); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteWord32(c3Addr, 222); err != nil {
		t.Fatal(err)
	}
	if st := c.Run(2_000_000); st != thor.StatusDetected {
		t.Fatalf("status = %v, want detected (vote deadlock)", st)
	}
	if c.Detection().Mechanism != thor.EDMAssertion {
		t.Errorf("mechanism = %v", c.Detection().Mechanism)
	}
}
