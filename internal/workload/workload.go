// Package workload provides the built-in target system workloads: batch
// programs (sort, matrix multiply, FIR filter) and the closed-loop PID
// control application — with and without executable assertions and
// best-effort recovery — that reproduces the control software evaluated
// with GOOFI on the Thor processor in the companion study [12].
//
// Workloads are THOR-S assembly source; campaigns store the source so the
// database stays portable across hosts.
package workload

import "goofi/internal/campaign"

// Port assignment shared by all built-in workloads.
const (
	// PortIn is the input port carrying sensor/setpoint data.
	PortIn uint16 = 0
	// PortOut is the output port carrying actuator commands/results.
	PortOut uint16 = 1
)

// Sort is an in-place insertion sort over 16 words followed by a
// checksum. Results: "arr" (the sorted array) and "checksum".
func Sort() campaign.WorkloadSpec {
	return campaign.WorkloadSpec{
		Name:          "sort16",
		Source:        sortSource,
		InputPort:     PortIn,
		OutputPort:    PortOut,
		ResultSymbols: []string{"arr", "checksum"},
		ResultWords:   16,
	}
}

const sortSource = `
; Insertion sort of 16 words at arr, then checksum := sum(arr[i]*(i+1)).
	.equ N, 16
	ldi r1, 1          ; i
outer:
	kick
	cmpi r1, N
	bge sorted
	la r2, arr
	shli r3, r1, 2
	add r2, r2, r3     ; &arr[i]
	ld r4, [r2]        ; key
	mov r5, r1         ; j
inner:
	cmpi r5, 0
	ble place
	la r2, arr
	shli r3, r5, 2
	add r2, r2, r3
	ld r6, [r2-4]      ; arr[j-1]
	cmp r6, r4
	ble place
	st [r2], r6        ; arr[j] = arr[j-1]
	subi r5, r5, 1
	bra inner
place:
	la r2, arr
	shli r3, r5, 2
	add r2, r2, r3
	st [r2], r4        ; arr[j] = key
	addi r1, r1, 1
	bra outer
sorted:
	ldi r1, 0          ; i
	ldi r7, 0          ; sum
csloop:
	cmpi r1, N
	bge csdone
	la r2, arr
	shli r3, r1, 2
	add r2, r2, r3
	ld r4, [r2]
	addi r5, r1, 1
	mul r4, r4, r5
	add r7, r7, r4
	addi r1, r1, 1
	bra csloop
csdone:
	la r2, checksum
	st [r2], r7
	out 1, r7
	halt
arr:
	.word 170, 45, 75, 90, 802, 24, 2, 66
	.word 181, 3, 401, 129, 33, 256, 7, 512
checksum:
	.word 0
`

// MatMul multiplies two 4x4 integer matrices. Result: "mc" (16 words).
func MatMul() campaign.WorkloadSpec {
	return campaign.WorkloadSpec{
		Name:          "matmul4",
		Source:        matmulSource,
		InputPort:     PortIn,
		OutputPort:    PortOut,
		ResultSymbols: []string{"mc"},
		ResultWords:   16,
	}
}

const matmulSource = `
; mc = ma * mb for 4x4 integer matrices.
	.equ N, 4
	ldi r1, 0          ; i
iloop:
	cmpi r1, N
	bge done
	kick
	ldi r2, 0          ; j
jloop:
	cmpi r2, N
	bge inext
	ldi r3, 0          ; k
	ldi r4, 0          ; acc
kloop:
	cmpi r3, N
	bge kdone
	; r5 = ma[i*N+k]
	shli r5, r1, 2
	add r5, r5, r3
	shli r5, r5, 2
	la r6, ma
	add r6, r6, r5
	ld r5, [r6]
	; r6 = mb[k*N+j]
	shli r6, r3, 2
	add r6, r6, r2
	shli r6, r6, 2
	la r7, mb
	add r7, r7, r6
	ld r6, [r7]
	mul r5, r5, r6
	add r4, r4, r5
	addi r3, r3, 1
	bra kloop
kdone:
	; mc[i*N+j] = acc
	shli r5, r1, 2
	add r5, r5, r2
	shli r5, r5, 2
	la r6, mc
	add r6, r6, r5
	st [r6], r4
	addi r2, r2, 1
	bra jloop
inext:
	addi r1, r1, 1
	bra iloop
done:
	la r6, mc
	ld r7, [r6]
	out 1, r7
	halt
ma:
	.word 1, 2, 3, 4
	.word 5, 6, 7, 8
	.word 9, 10, 11, 12
	.word 13, 14, 15, 16
mb:
	.word 17, 18, 19, 20
	.word 21, 22, 23, 24
	.word 25, 26, 27, 28
	.word 29, 30, 31, 32
mc:
	.space 64
`

// FIR applies an 8-tap moving-average style filter over 24 samples.
// Result: "output" (24 words).
func FIR() campaign.WorkloadSpec {
	return campaign.WorkloadSpec{
		Name:          "fir8",
		Source:        firSource,
		InputPort:     PortIn,
		OutputPort:    PortOut,
		ResultSymbols: []string{"output"},
		ResultWords:   24,
	}
}

const firSource = `
; output[n] = sum_{t<8, t<=n} coef[t]*input[n-t] / 16
	.equ NS, 24
	.equ NT, 8
	ldi r1, 0          ; n
nloop:
	cmpi r1, NS
	bge done
	kick
	ldi r2, 0          ; t
	ldi r3, 0          ; acc
tloop:
	cmpi r2, NT
	bge tdone
	cmp r2, r1
	bgt tdone          ; t > n: stop (no negative history)
	; r4 = input[n-t]
	sub r4, r1, r2
	shli r4, r4, 2
	la r5, input
	add r5, r5, r4
	ld r4, [r5]
	; r5 = coef[t]
	shli r5, r2, 2
	la r6, coef
	add r6, r6, r5
	ld r5, [r6]
	mul r4, r4, r5
	add r3, r3, r4
	addi r2, r2, 1
	bra tloop
tdone:
	ldi r4, 16
	div r3, r3, r4
	shli r4, r1, 2
	la r5, output
	add r5, r5, r4
	st [r5], r3
	addi r1, r1, 1
	bra nloop
done:
	la r5, output
	ld r7, [r5]
	out 1, r7
	halt
coef:
	.word 1, 2, 3, 4, 4, 3, 2, 1
input:
	.word 100, 102, 98, 97, 105, 110, 95, 90
	.word 120, 80, 100, 100, 100, 140, 60, 100
	.word 100, 100, 30, 170, 100, 100, 101, 99
output:
	.space 96
`

// PID is the closed-loop PI controller: each iteration reads sensor and
// setpoint from the input port (Q8.8 fixed point), computes the command,
// writes it to the output port, and signals the iteration boundary.
// Results: "last_u" and "acc" for latent-error observation. Runs as an
// infinite loop; campaigns bound it with Termination.MaxIterations.
func PID() campaign.WorkloadSpec {
	return campaign.WorkloadSpec{
		Name:          "pid-control",
		Source:        pidSource,
		InputPort:     PortIn,
		OutputPort:    PortOut,
		ResultSymbols: []string{"last_u", "acc"},
		ResultWords:   1,
	}
}

const pidSource = `
; PI controller in Q8.8: u = (Kp*e + Ki*acc) / 256, acc clamped.
	.equ KP, 128       ; 0.5 in Q8.8
	.equ KI, 26        ; ~0.1 in Q8.8
	.equ ACCMAX, 512000
	.equ NACCMAX, -512000
	ldi r4, 0          ; acc
loop:
	kick
	in r1, 0           ; sensor (Q8.8)
	in r2, 0           ; setpoint (Q8.8)
	sub r3, r2, r1     ; e
	add r4, r4, r3     ; acc += e
	la r6, ACCMAX
	cmp r4, r6
	ble clampok1
	mov r4, r6
clampok1:
	la r6, NACCMAX
	cmp r4, r6
	bge clampok2
	mov r4, r6
clampok2:
	ldi r6, KP
	mul r5, r3, r6     ; Kp*e
	ldi r6, KI
	mul r6, r4, r6     ; Ki*acc
	add r5, r5, r6
	ldi r7, 256
	div r5, r5, r7     ; /256 (signed)
	la r6, last_u
	st [r6], r5
	la r6, acc
	st [r6], r4
	out 1, r5
	trap 2             ; iteration boundary: environment exchange
	bra loop
last_u:
	.word 0
acc:
	.word 0
`

// PIDAssert is the PID controller hardened with executable assertions and
// best-effort recovery, the mechanism evaluated in [12]: the command and
// integrator are bound-checked each iteration; a violation raises the
// assertion trap, whose handler restores a safe state (integrator reset,
// proportional-only command) and continues.
func PIDAssert() campaign.WorkloadSpec {
	return campaign.WorkloadSpec{
		Name:          "pid-control-assert",
		Source:        pidAssertSource,
		InputPort:     PortIn,
		OutputPort:    PortOut,
		ResultSymbols: []string{"last_u", "acc"},
		ResultWords:   1,
		RecoveryHandlers: map[uint16]string{
			1: "recover", // TrapAssertFail -> best-effort recovery
		},
	}
}

const pidAssertSource = `
; PI controller with executable assertions and best-effort recovery.
	.equ KP, 128
	.equ KI, 26
	.equ ACCMAX, 512000
	.equ NACCMAX, -512000
	.equ UMAX, 30000   ; |u| plausibility bound (Q8.8)
	.equ NUMAX, -30000
	.equ EMAX, 31000   ; |e| plausibility bound
	.equ NEMAX, -31000
	ldi r4, 0          ; acc
loop:
	kick
	in r1, 0           ; sensor
	in r2, 0           ; setpoint
	sub r3, r2, r1     ; e
	; assertion: |e| <= EMAX (sensor plausibility)
	ldi r6, EMAX
	cmp r3, r6
	bgt assert_fail
	ldi r6, NEMAX
	cmp r3, r6
	blt assert_fail
	add r4, r4, r3
	la r6, ACCMAX
	cmp r4, r6
	ble c1
	mov r4, r6
c1:
	la r6, NACCMAX
	cmp r4, r6
	bge c2
	mov r4, r6
c2:
	ldi r6, KP
	mul r5, r3, r6
	ldi r6, KI
	mul r6, r4, r6
	add r5, r5, r6
	ldi r7, 256
	div r5, r5, r7
	; assertion: |u| <= UMAX (command plausibility)
	ldi r6, UMAX
	cmp r5, r6
	bgt assert_fail
	ldi r6, NUMAX
	cmp r5, r6
	blt assert_fail
	la r6, last_u
	st [r6], r5
	la r6, acc
	st [r6], r4
	out 1, r5
	trap 2
	bra loop
assert_fail:
	trap 1             ; handled by "recover" (best-effort recovery)
	bra loop           ; unreachable when a handler is installed
recover:
	; Best-effort recovery [12]: reset the integrator and emit a
	; proportional-only command from a re-read sensor value.
	ldi r4, 0
	in r1, 0
	in r2, 0
	sub r3, r2, r1
	ldi r6, KP
	mul r5, r3, r6
	ldi r7, 256
	div r5, r5, r7
	; clamp the recovery command hard
	ldi r6, UMAX
	cmp r5, r6
	ble r1ok
	mov r5, r6
r1ok:
	ldi r6, NUMAX
	cmp r5, r6
	bge r2ok
	mov r5, r6
r2ok:
	la r6, last_u
	st [r6], r5
	la r6, acc
	st [r6], r4
	out 1, r5
	trap 2
	bra loop
last_u:
	.word 0
acc:
	.word 0
`

// All returns every built-in workload spec by name.
func All() map[string]campaign.WorkloadSpec {
	specs := []campaign.WorkloadSpec{
		Sort(), MatMul(), FIR(), PID(), PIDAssert(), Checksum(), ChecksumTMR(),
	}
	out := make(map[string]campaign.WorkloadSpec, len(specs))
	for _, s := range specs {
		out[s.Name] = s
	}
	return out
}
