package workload

import "goofi/internal/campaign"

// Checksum is a single-pass weighted checksum over 16 data words — the
// unhardened baseline for the TMR comparison. Result: "result".
func Checksum() campaign.WorkloadSpec {
	return campaign.WorkloadSpec{
		Name:          "csum",
		Source:        checksumSource,
		InputPort:     PortIn,
		OutputPort:    PortOut,
		ResultSymbols: []string{"result"},
	}
}

const checksumSource = `
; result = sum(data[i] * (i+1)) over 16 words.
	.equ N, 16
	call compute
	la r2, result
	st [r2], r1
	out 1, r1
	halt
compute:
	ldi r1, 0          ; acc
	ldi r2, 0          ; i
closs:
	cmpi r2, N
	bge cdone
	kick
	la r3, data
	shli r4, r2, 2
	add r3, r3, r4
	ld r3, [r3]
	addi r4, r2, 1
	mul r3, r3, r4
	add r1, r1, r3
	addi r2, r2, 1
	bra closs
cdone:
	ret
data:
	.word 170, 45, 75, 90, 802, 24, 2, 66
	.word 181, 3, 401, 129, 33, 256, 7, 512
result:
	.word 0
`

// ChecksumTMR is the checksum hardened by software triple modular
// redundancy in time: the computation runs three times and the outputs
// are majority-voted. A transient fault corrupting one replica is masked;
// only two corrupted replicas (or a corrupted vote) can escape. If all
// three disagree, the unrecoverable-state assertion fires. Result:
// "result" (the "masked" diagnostic symbol exists in the image but is
// deliberately not a compared result — a successful mask is correct
// behaviour, not a failure).
func ChecksumTMR() campaign.WorkloadSpec {
	return campaign.WorkloadSpec{
		Name:          "csum-tmr",
		Source:        checksumTMRSource,
		InputPort:     PortIn,
		OutputPort:    PortOut,
		ResultSymbols: []string{"result"},
	}
}

const checksumTMRSource = `
; Triple-redundant weighted checksum with majority vote.
	.equ N, 16
	call compute
	la r2, c1
	st [r2], r1
	call compute
	la r2, c2
	st [r2], r1
	call compute
	la r2, c3
	st [r2], r1
	; majority vote
	la r2, c1
	ld r5, [r2]        ; c1
	la r2, c2
	ld r6, [r2]        ; c2
	la r2, c3
	ld r7, [r2]        ; c3
	cmp r5, r6
	beq agree12
	cmp r5, r7
	beq agree13
	cmp r6, r7
	beq agree23
	trap 1             ; all three disagree: unrecoverable
agree12:
	; c1 == c2: if c3 differs, the vote masked a replica fault.
	mov r1, r5
	cmp r5, r7
	beq store
	bra mask
agree13:
	mov r1, r5
	bra mask
agree23:
	mov r1, r6
	bra mask
mask:
	ldi r3, 1
	la r2, masked
	st [r2], r3
store:
	la r2, result
	st [r2], r1
	out 1, r1
	halt
compute:
	ldi r1, 0          ; acc
	ldi r2, 0          ; i
closs:
	cmpi r2, N
	bge cdone
	kick
	la r3, data
	shli r4, r2, 2
	add r3, r3, r4
	ld r3, [r3]
	addi r4, r2, 1
	mul r3, r3, r4
	add r1, r1, r3
	addi r2, r2, 1
	bra closs
cdone:
	ret
data:
	.word 170, 45, 75, 90, 802, 24, 2, 66
	.word 181, 3, 401, 129, 33, 256, 7, 512
c1:
	.word 0
c2:
	.word 0
c3:
	.word 0
masked:
	.word 0
result:
	.word 0
`
