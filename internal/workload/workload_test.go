package workload

import (
	"sort"
	"testing"

	"goofi/internal/asm"
	"goofi/internal/thor"
)

// runBatch assembles and runs a batch workload to HALT.
func runBatch(t *testing.T, name, source string) (*thor.CPU, *asm.Program) {
	t.Helper()
	prog, err := asm.Assemble(source)
	if err != nil {
		t.Fatalf("assemble %s: %v", name, err)
	}
	c := thor.New(thor.DefaultConfig())
	if err := c.LoadMemory(0, prog.Image); err != nil {
		t.Fatal(err)
	}
	if st := c.Run(5_000_000); st != thor.StatusHalted {
		t.Fatalf("%s status = %v (detection %+v)", name, st, c.Detection())
	}
	return c, prog
}

func readWords(t *testing.T, c *thor.CPU, addr uint32, n int) []int32 {
	t.Helper()
	out := make([]int32, n)
	for i := range out {
		w, err := c.ReadWord32(addr + uint32(4*i))
		if err != nil {
			t.Fatal(err)
		}
		out[i] = int32(w)
	}
	return out
}

func TestSortProducesSortedArray(t *testing.T) {
	spec := Sort()
	c, prog := runBatch(t, spec.Name, spec.Source)
	got := readWords(t, c, prog.MustSymbol("arr"), 16)
	want := []int32{170, 45, 75, 90, 802, 24, 2, 66, 181, 3, 401, 129, 33, 256, 7, 512}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("arr[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Checksum matches the host-computed weighted sum.
	var cs int32
	for i, v := range want {
		cs += v * int32(i+1)
	}
	gotCS := readWords(t, c, prog.MustSymbol("checksum"), 1)[0]
	if gotCS != cs {
		t.Errorf("checksum = %d, want %d", gotCS, cs)
	}
}

func TestMatMulMatchesHost(t *testing.T) {
	spec := MatMul()
	c, prog := runBatch(t, spec.Name, spec.Source)
	got := readWords(t, c, prog.MustSymbol("mc"), 16)
	var ma, mb [4][4]int32
	v := int32(1)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			ma[i][j] = v
			v++
		}
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			mb[i][j] = v
			v++
		}
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var acc int32
			for k := 0; k < 4; k++ {
				acc += ma[i][k] * mb[k][j]
			}
			if got[i*4+j] != acc {
				t.Errorf("mc[%d][%d] = %d, want %d", i, j, got[i*4+j], acc)
			}
		}
	}
}

func TestFIRMatchesHost(t *testing.T) {
	spec := FIR()
	c, prog := runBatch(t, spec.Name, spec.Source)
	got := readWords(t, c, prog.MustSymbol("output"), 24)
	coef := []int32{1, 2, 3, 4, 4, 3, 2, 1}
	input := []int32{100, 102, 98, 97, 105, 110, 95, 90,
		120, 80, 100, 100, 100, 140, 60, 100,
		100, 100, 30, 170, 100, 100, 101, 99}
	for n := 0; n < 24; n++ {
		var acc int32
		for tap := 0; tap < 8 && tap <= n; tap++ {
			acc += coef[tap] * input[n-tap]
		}
		acc /= 16
		if got[n] != acc {
			t.Errorf("output[%d] = %d, want %d", n, got[n], acc)
		}
	}
}

func TestPIDConvergesOnPlant(t *testing.T) {
	spec := PID()
	prog, err := asm.Assemble(spec.Source)
	if err != nil {
		t.Fatal(err)
	}
	c := thor.New(thor.DefaultConfig())
	if err := c.LoadMemory(0, prog.Image); err != nil {
		t.Fatal(err)
	}
	// Host-side plant: first-order, Q8.8 interface (mirrors envsim).
	x := 0.0
	setpoint := 100.0
	exchange := func() {
		outs := c.Ports().DrainOutput(1)
		if len(outs) > 0 {
			u := float64(int32(outs[len(outs)-1])) / 256
			x += (u - x) / 8
		}
		c.Ports().PushInput(0, uint32(int32(x*256)), uint32(int32(setpoint*256)))
	}
	exchange() // initial input
	for iter := 0; iter < 200; iter++ {
		st := c.Run(1_000_000)
		if st != thor.StatusIterationEnd {
			t.Fatalf("iteration %d: status %v (detection %+v)", iter, st, c.Detection())
		}
		exchange()
		if err := c.ResumeIteration(); err != nil {
			t.Fatal(err)
		}
	}
	if x < setpoint*0.9 || x > setpoint*1.1 {
		t.Errorf("plant state after 200 iterations = %.2f, want ~%.0f", x, setpoint)
	}
}

func TestPIDAssertRecoveryPath(t *testing.T) {
	spec := PIDAssert()
	prog, err := asm.Assemble(spec.Source)
	if err != nil {
		t.Fatal(err)
	}
	c := thor.New(thor.DefaultConfig())
	if err := c.LoadMemory(0, prog.Image); err != nil {
		t.Fatal(err)
	}
	c.SetTrapHandler(thor.TrapAssertFail, prog.MustSymbol("recover"))
	// Feed an implausible sensor value (huge negative error): the
	// assertion must fire and the recovery path must emit a clamped
	// command instead of halting.
	sensor := int32(-32000)
	c.Ports().PushInput(0, uint32(sensor), uint32(int32(31000)))
	st := c.Run(1_000_000)
	if st != thor.StatusIterationEnd {
		t.Fatalf("status = %v (detection %+v)", st, c.Detection())
	}
	events := c.Events()
	if len(events) == 0 || events[0].Mechanism != thor.EDMAssertion {
		t.Fatalf("expected a recovered assertion event, got %+v", events)
	}
	outs := c.Ports().DrainOutput(1)
	if len(outs) != 1 {
		t.Fatalf("outputs = %v, want one recovery command", outs)
	}
	u := int32(outs[0])
	if u < -30000 || u > 30000 {
		t.Errorf("recovery command %d outside clamp", u)
	}
}

// assembleSpec assembles a workload source (shared with tmr_test).
func assembleSpec(source string) (*asm.Program, error) {
	return asm.Assemble(source)
}

func TestAllRegistry(t *testing.T) {
	all := All()
	for _, name := range []string{"sort16", "matmul4", "fir8", "pid-control", "pid-control-assert", "csum", "csum-tmr"} {
		spec, ok := all[name]
		if !ok {
			t.Errorf("All() missing %q", name)
			continue
		}
		if _, err := asm.Assemble(spec.Source); err != nil {
			t.Errorf("workload %q does not assemble: %v", name, err)
		}
		if len(spec.ResultSymbols) == 0 {
			t.Errorf("workload %q has no result symbols", name)
		}
	}
}
