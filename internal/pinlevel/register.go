package pinlevel

import (
	"goofi/internal/campaign"
	"goofi/internal/core"
	"goofi/internal/thor"
)

// Deterministic: thor-backed targets keep the byte-identity guarantee.
func (t *Target) Deterministic() bool { return true }

func init() {
	core.RegisterTarget(core.TargetInfo{
		Kind:          "pin-level",
		Aliases:       []string{"pinlevel"},
		Description:   "THOR-S simulated board with faults forced onto circuit pins via boundary scan",
		Algorithm:     core.PinLevel.Name,
		Deterministic: true,
		New: func(cfg core.TargetConfig) (core.TargetSystem, error) {
			return New(thor.DefaultConfig()), nil
		},
		SystemData: func(name string, cfg core.TargetConfig) (*campaign.TargetSystemData, error) {
			return TargetSystemData(name), nil
		},
	})
}
