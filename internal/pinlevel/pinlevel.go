// Package pinlevel implements pin-level fault injection for THOR-S in the
// style of RIFLE and MESSALINE (paper §1): faults are forced onto the
// circuit pins — here through the boundary-scan register via EXTEST, as
// the paper's composable building blocks allow (§2.1). The fault space is
// the data-in and address pins; a fault is forced at the trigger point and
// held for a configurable number of cycles.
package pinlevel

import (
	"fmt"

	"goofi/internal/asm"
	"goofi/internal/campaign"
	"goofi/internal/core"
	"goofi/internal/scanchain"
	"goofi/internal/scifi"
	"goofi/internal/thor"
)

// DefaultHoldCycles is how long a forced pin fault stays on the pins
// before being released, unless overridden with WithHoldCycles.
const DefaultHoldCycles = 64

// Target drives THOR-S through its boundary-scan register. It reuses the
// SCIFI target for everything except the injection path: ReadScanChain
// samples the boundary register, InjectFault computes the forced pins, and
// WriteScanChain drives them via EXTEST.
type Target struct {
	*scifi.Target
	holdCycles uint64
	forced     bool
}

// New returns a pin-level target.
func New(cfg thor.Config) *Target {
	return &Target{Target: scifi.New(cfg), holdCycles: DefaultHoldCycles}
}

// WithHoldCycles sets how long a forced pin fault is held.
func (t *Target) WithHoldCycles(n uint64) *Target {
	t.holdCycles = n
	return t
}

// dataInField locates the pin.data_in cells in the boundary register.
func dataInField() (scanchain.Location, error) {
	m := scifi.BoundaryMap()
	return m.Find("pin.data_in")
}

// addrField locates the pin.addr cells.
func addrField() (scanchain.Location, error) {
	m := scifi.BoundaryMap()
	return m.Find("pin.addr")
}

// ReadScanChain samples the boundary register instead of the internal
// chain (pins are the pin-level fault space).
func (t *Target) ReadScanChain(ex *core.Experiment) error {
	v, err := t.Controller().SampleBoundary()
	if err != nil {
		return err
	}
	ex.ScanVector = v
	return nil
}

// WriteScanChain drives the (mutated) boundary register onto the pins via
// EXTEST; the force remains active until released after holdCycles.
func (t *Target) WriteScanChain(ex *core.Experiment) error {
	if ex.ScanVector == nil {
		return fmt.Errorf("pinlevel: WriteScanChain with no boundary vector")
	}
	if ex.Fault == nil || !ex.Injected {
		return nil
	}
	di, err := dataInField()
	if err != nil {
		return err
	}
	ad, err := addrField()
	if err != nil {
		return err
	}
	var dataMask, addrMask uint32
	for _, b := range ex.Fault.Bits {
		switch {
		case b >= di.Offset && b < di.End():
			dataMask |= 1 << uint(b-di.Offset)
		case b >= ad.Offset && b < ad.End():
			addrMask |= 1 << uint(b-ad.Offset)
		default:
			return fmt.Errorf("pinlevel: fault bit %d targets a non-forceable pin", b)
		}
	}
	if err := t.CPU().BoundaryWrite(ex.ScanVector, dataMask, addrMask); err != nil {
		return err
	}
	t.forced = true
	return nil
}

// WaitForTermination releases the pin force after holdCycles (a transient
// pin fault), then defers to the SCIFI termination loop.
func (t *Target) WaitForTermination(ex *core.Experiment) error {
	if t.forced {
		budget := t.holdCycles
		st := t.CPU().Run(budget)
		t.CPU().ClearBoundaryForce()
		t.forced = false
		if st == thor.StatusOutOfBudget {
			if err := t.CPU().ClearOutOfBudget(); err != nil {
				return err
			}
		}
		// Other statuses (halt/detected/iteration-end) fall through to
		// the SCIFI loop, which handles them.
	}
	return t.Target.WaitForTermination(ex)
}

// InitTestCard resets the board and the force state.
func (t *Target) InitTestCard(ex *core.Experiment) error {
	t.forced = false
	return t.Target.InitTestCard(ex)
}

// TargetSystemData returns the configuration-phase record for pin-level
// campaigns: only the forceable pins are writable.
func TargetSystemData(name string) *campaign.TargetSystemData {
	m := scifi.BoundaryMap()
	for i := range m.Locations {
		switch m.Locations[i].Name {
		case "pin.data_in", "pin.addr":
		default:
			m.Locations[i].ReadOnly = true
		}
	}
	return &campaign.TargetSystemData{
		Name:         name,
		TestCardName: "thor-s-pinlevel-rig",
		Chains:       []scanchain.Map{m},
		Description:  "THOR-S pins forced through boundary-scan EXTEST",
	}
}

// ImageSize is a helper for campaigns: the assembled size of a workload.
func ImageSize(source string) (int, error) {
	prog, err := asm.AssembleCached(source)
	if err != nil {
		return 0, err
	}
	return len(prog.Image), nil
}

// Interface compliance.
var _ core.TargetSystem = (*Target)(nil)
