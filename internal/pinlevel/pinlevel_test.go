package pinlevel

import (
	"context"
	"testing"

	"goofi/internal/campaign"
	"goofi/internal/core"
	"goofi/internal/faultmodel"
	"goofi/internal/scifi"
	"goofi/internal/sqldb"
	"goofi/internal/thor"
	"goofi/internal/trigger"
	"goofi/internal/workload"
)

func pinCampaign(name string, n int, seed int64) *campaign.Campaign {
	return &campaign.Campaign{
		Name:           name,
		TargetName:     "thor-pins",
		ChainName:      "boundary",
		Locations:      []string{"pin.data_in"},
		FaultModel:     faultmodel.Spec{Kind: faultmodel.StuckAt1},
		Trigger:        trigger.Spec{Kind: "cycle"},
		RandomWindow:   [2]uint64{10, 1600},
		NumExperiments: n,
		Seed:           seed,
		Termination:    campaign.Termination{TimeoutCycles: 100_000},
		Workload:       workload.Sort(),
		LogMode:        campaign.LogNormal,
	}
}

func TestPinLevelCampaign(t *testing.T) {
	camp := pinCampaign("pins", 25, 3)
	st, err := campaign.NewStore(sqldb.Open())
	if err != nil {
		t.Fatal(err)
	}
	tsd := TargetSystemData("thor-pins")
	if err := st.PutTargetSystem(tsd); err != nil {
		t.Fatal(err)
	}
	if err := st.PutCampaign(camp); err != nil {
		t.Fatal(err)
	}
	tgt := New(thor.DefaultConfig())
	r, err := core.NewRunner(tgt, core.PinLevel, camp, tsd, core.WithSink(st))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// A few draws may land past the workload's end and are correctly
	// recorded as not injected; most must inject.
	if sum.Experiments != 25 || sum.Injected < 20 {
		t.Fatalf("summary = %+v", sum)
	}
	total := 0
	for _, n := range sum.ByStatus {
		total += n
	}
	if total != 25 {
		t.Errorf("status total = %d", total)
	}
	// Forcing data-in pins during a memory-heavy sort must corrupt at
	// least some runs (detected or wrong results are both possible; we
	// assert that not every run completed identically by checking at
	// least one non-completed OR differing checksum).
	recs, err := st.Experiments("pins")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := st.GetExperiment(campaign.ReferenceName("pins"))
	if err != nil {
		t.Fatal(err)
	}
	affected := 0
	for _, rec := range recs {
		if rec.IsReference() {
			continue
		}
		if rec.Data.Outcome.Status != campaign.OutcomeCompleted {
			affected++
			continue
		}
		if string(rec.State.Memory["checksum"]) != string(ref.State.Memory["checksum"]) {
			affected++
		}
	}
	if affected == 0 {
		t.Error("no pin-level fault affected the workload at all")
	}
}

func TestTargetSystemDataWritablePins(t *testing.T) {
	tsd := TargetSystemData("x")
	m := tsd.Chains[0]
	for _, l := range m.Locations {
		writable := l.Name == "pin.data_in" || l.Name == "pin.addr"
		if writable == l.ReadOnly {
			t.Errorf("pin %s read-only = %v", l.Name, l.ReadOnly)
		}
	}
}

func TestNonForceablePinRejected(t *testing.T) {
	tgt := New(thor.DefaultConfig())
	camp := pinCampaign("bad", 1, 1)
	m := scifi.BoundaryMap()
	halt, err := m.Find("pin.halt")
	if err != nil {
		t.Fatal(err)
	}
	ex := &core.Experiment{
		Campaign: camp, Seq: 0, Name: "bad/exp00000",
		Fault:    &faultmodel.Fault{Kind: faultmodel.StuckAt1, Bits: []int{halt.Offset}},
		Injected: true,
	}
	if err := tgt.InitTestCard(ex); err != nil {
		t.Fatal(err)
	}
	if err := tgt.ReadScanChain(ex); err != nil {
		t.Fatal(err)
	}
	if err := tgt.WriteScanChain(ex); err == nil {
		t.Error("forcing a read-only pin accepted")
	}
}

func TestImageSize(t *testing.T) {
	n, err := ImageSize(workload.Sort().Source)
	if err != nil || n == 0 {
		t.Errorf("ImageSize = %d, %v", n, err)
	}
	if _, err := ImageSize("bogus instr"); err == nil {
		t.Error("bad source accepted")
	}
}
