package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndLen(t *testing.T) {
	tests := []struct {
		name string
		n    int
		want int
	}{
		{"zero", 0, 0},
		{"one", 1, 1},
		{"word boundary", 64, 64},
		{"word plus one", 65, 65},
		{"negative clamps", -5, 0},
		{"large", 4096, 4096},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := New(tt.n).Len(); got != tt.want {
				t.Errorf("New(%d).Len() = %d, want %d", tt.n, got, tt.want)
			}
		})
	}
}

func TestSetGetFlip(t *testing.T) {
	v := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if v.Get(i) {
			t.Fatalf("bit %d set in fresh vector", i)
		}
		v.Set(i, true)
		if !v.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		if got := v.Flip(i); got {
			t.Fatalf("Flip(%d) returned true, want false", i)
		}
		if v.Get(i) {
			t.Fatalf("bit %d still set after Flip", i)
		}
	}
	if v.PopCount() != 0 {
		t.Fatalf("PopCount = %d, want 0", v.PopCount())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	v := New(8)
	for _, i := range []int{-1, 8, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Get(%d) did not panic", i)
				}
			}()
			v.Get(i)
		}()
	}
}

func TestUint64RoundTrip(t *testing.T) {
	v := New(100)
	v.SetUint64(3, 17, 0x1abcd)
	got := v.Uint64(3, 17)
	want := uint64(0x1abcd) & ((1 << 17) - 1)
	if got != want {
		t.Errorf("Uint64(3,17) = %#x, want %#x", got, want)
	}
	if v.Uint64(0, 3) != 0 {
		t.Errorf("bits below offset disturbed: %#x", v.Uint64(0, 3))
	}
	if v.Uint64(20, 10) != 0 {
		t.Errorf("bits above range disturbed: %#x", v.Uint64(20, 10))
	}
}

func TestFromUint64(t *testing.T) {
	v := FromUint64(0xdeadbeef, 32)
	if got := v.Uint64(0, 32); got != 0xdeadbeef {
		t.Errorf("round trip = %#x, want 0xdeadbeef", got)
	}
	if v.Len() != 32 {
		t.Errorf("Len = %d, want 32", v.Len())
	}
	// Truncation to n bits.
	v2 := FromUint64(0xff, 4)
	if got := v2.Uint64(0, 4); got != 0xf {
		t.Errorf("truncated = %#x, want 0xf", got)
	}
}

func TestFromBits(t *testing.T) {
	v := FromBits([]bool{true, false, true, true})
	if got := v.Uint64(0, 4); got != 0b1101 {
		t.Errorf("FromBits = %#b, want 1101", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	v := New(70)
	v.Set(69, true)
	c := v.Clone()
	c.Set(0, true)
	if v.Get(0) {
		t.Error("mutating clone changed original")
	}
	if !c.Get(69) {
		t.Error("clone lost bit 69")
	}
}

func TestCopyFrom(t *testing.T) {
	a, b := New(16), New(16)
	b.SetUint64(0, 16, 0xbeef)
	if err := a.CopyFrom(b); err != nil {
		t.Fatalf("CopyFrom: %v", err)
	}
	if !a.Equal(b) {
		t.Error("vectors differ after CopyFrom")
	}
	if err := a.CopyFrom(New(8)); err == nil {
		t.Error("CopyFrom with length mismatch did not error")
	}
}

func TestXorErrorPattern(t *testing.T) {
	ref := FromUint64(0b1010, 4)
	obs := FromUint64(0b0011, 4)
	diff, err := ref.Xor(obs)
	if err != nil {
		t.Fatalf("Xor: %v", err)
	}
	if got := diff.Uint64(0, 4); got != 0b1001 {
		t.Errorf("Xor = %#b, want 1001", got)
	}
	if _, err := ref.Xor(New(5)); err == nil {
		t.Error("Xor with length mismatch did not error")
	}
}

func TestOnesPositions(t *testing.T) {
	v := New(200)
	want := []int{0, 63, 64, 100, 199}
	for _, i := range want {
		v.Set(i, true)
	}
	got := v.OnesPositions()
	if len(got) != len(want) {
		t.Fatalf("OnesPositions len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("OnesPositions[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestShiftIn(t *testing.T) {
	// 4-bit chain initialised to 1011 (bit0=1). Shifting in 0 four times
	// should emit 1,1,0,1 and leave the chain all zero.
	v := FromUint64(0b1011, 4)
	var outs []bool
	for i := 0; i < 4; i++ {
		outs = append(outs, v.ShiftIn(false))
	}
	wantOuts := []bool{true, true, false, true}
	for i := range wantOuts {
		if outs[i] != wantOuts[i] {
			t.Errorf("shift out %d = %v, want %v", i, outs[i], wantOuts[i])
		}
	}
	if v.PopCount() != 0 {
		t.Errorf("chain not empty after shifting: %v", v)
	}
	// Shifting a full pattern back in restores it after Len cycles.
	for _, b := range []bool{true, true, false, true} {
		v.ShiftIn(b)
	}
	if got := v.Uint64(0, 4); got != 0b1011 {
		t.Errorf("reloaded chain = %#b, want 1011", got)
	}
}

func TestShiftInZeroLength(t *testing.T) {
	v := New(0)
	if got := v.ShiftIn(true); got != true {
		t.Error("zero-length chain must pass input through (bypass behaviour)")
	}
}

func TestStringFormat(t *testing.T) {
	v := FromUint64(0x0a3f, 12)
	if got := v.String(); got != "12:0xa3f" {
		t.Errorf("String = %q, want %q", got, "12:0xa3f")
	}
	if got := New(0).String(); got != "0:0x0" {
		t.Errorf("empty String = %q, want %q", got, "0:0x0")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 64, 65, 130, 1000} {
		v := New(n)
		for i := 0; i < n; i++ {
			v.Set(i, rng.Intn(2) == 1)
		}
		data, err := v.MarshalBinary()
		if err != nil {
			t.Fatalf("MarshalBinary(n=%d): %v", n, err)
		}
		var u Vector
		if err := u.UnmarshalBinary(data); err != nil {
			t.Fatalf("UnmarshalBinary(n=%d): %v", n, err)
		}
		if !v.Equal(&u) {
			t.Errorf("round trip mismatch at n=%d", n)
		}
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	var v Vector
	if err := v.UnmarshalBinary(nil); err == nil {
		t.Error("UnmarshalBinary(nil) did not error")
	}
	good, _ := FromUint64(0xff, 8).MarshalBinary()
	if err := v.UnmarshalBinary(good[:9]); err == nil {
		t.Error("UnmarshalBinary(truncated body) did not error")
	}
}

// Property: flipping a bit twice restores the original vector.
func TestPropertyDoubleFlipIsIdentity(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		rng := rand.New(rand.NewSource(seed))
		v := New(n)
		for i := 0; i < n; i++ {
			v.Set(i, rng.Intn(2) == 1)
		}
		orig := v.Clone()
		i := rng.Intn(n)
		v.Flip(i)
		v.Flip(i)
		return v.Equal(orig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: XOR of a vector with itself is all zeros, and PopCount of
// a XOR b counts exactly the differing positions.
func TestPropertyXorPopCount(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%300 + 1
		rng := rand.New(rand.NewSource(seed))
		a, b := New(n), New(n)
		diff := 0
		for i := 0; i < n; i++ {
			ab, bb := rng.Intn(2) == 1, rng.Intn(2) == 1
			a.Set(i, ab)
			b.Set(i, bb)
			if ab != bb {
				diff++
			}
		}
		self, err := a.Xor(a)
		if err != nil || self.PopCount() != 0 {
			return false
		}
		x, err := a.Xor(b)
		return err == nil && x.PopCount() == diff
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: shifting a vector completely out and back in through ShiftIn
// restores it (scan-chain read-modify-write with no modification).
func TestPropertyShiftRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%100 + 1
		rng := rand.New(rand.NewSource(seed))
		v := New(n)
		for i := 0; i < n; i++ {
			v.Set(i, rng.Intn(2) == 1)
		}
		orig := v.Clone()
		outs := make([]bool, 0, n)
		for i := 0; i < n; i++ {
			outs = append(outs, v.ShiftIn(false))
		}
		for _, b := range outs {
			v.ShiftIn(b)
		}
		return v.Equal(orig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyMarshalRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw) % 1024
		rng := rand.New(rand.NewSource(seed))
		v := New(n)
		for i := 0; i < n; i++ {
			v.Set(i, rng.Intn(2) == 1)
		}
		data, err := v.MarshalBinary()
		if err != nil {
			return false
		}
		var u Vector
		if err := u.UnmarshalBinary(data); err != nil {
			return false
		}
		return v.Equal(&u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkXor4096(b *testing.B) {
	v1, v2 := New(4096), New(4096)
	for i := 0; i < 4096; i += 3 {
		v1.Set(i, true)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v1.Xor(v2); err != nil {
			b.Fatal(err)
		}
	}
}
