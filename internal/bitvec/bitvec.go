// Package bitvec provides a compact, fixed-length bit vector.
//
// Bit vectors are the common currency of the fault injection stack: scan
// chains shift them, fault models flip bits in them, and logged system
// states are stored as them. The zero value is an empty vector of length 0.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// Vector is a fixed-length sequence of bits. Bit 0 is the least significant
// bit of the first word, which by scan-chain convention is the bit closest
// to the chain's output (the first bit shifted out).
type Vector struct {
	n     int
	words []uint64
}

// New returns a vector of n bits, all zero.
func New(n int) *Vector {
	if n < 0 {
		n = 0
	}
	return &Vector{n: n, words: make([]uint64, (n+63)/64)}
}

// FromBits builds a vector from a slice of booleans, bit 0 first.
func FromBits(bits []bool) *Vector {
	v := New(len(bits))
	for i, b := range bits {
		if b {
			v.Set(i, true)
		}
	}
	return v
}

// FromUint64 returns an n-bit vector holding the low n bits of x, bit 0
// first. n must be in [0, 64].
func FromUint64(x uint64, n int) *Vector {
	if n > 64 {
		n = 64
	}
	v := New(n)
	if n > 0 {
		if n < 64 {
			x &= (1 << uint(n)) - 1
		}
		v.words[0] = x
	}
	return v
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Get reports whether bit i is set. It panics if i is out of range, which
// indicates a programming error in the caller (scan-chain maps are validated
// before use).
func (v *Vector) Get(i int) bool {
	v.check(i)
	return v.words[i/64]&(1<<uint(i%64)) != 0
}

// Set sets bit i to b.
func (v *Vector) Set(i int, b bool) {
	v.check(i)
	if b {
		v.words[i/64] |= 1 << uint(i%64)
	} else {
		v.words[i/64] &^= 1 << uint(i%64)
	}
}

// Flip inverts bit i and returns its new value.
func (v *Vector) Flip(i int) bool {
	v.check(i)
	v.words[i/64] ^= 1 << uint(i%64)
	return v.Get(i)
}

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// Uint64 returns bits [off, off+n) as a uint64, bit off in the least
// significant position. n must be in [0, 64] and the range must lie within
// the vector.
func (v *Vector) Uint64(off, n int) uint64 {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("bitvec: width %d out of range [0,64]", n))
	}
	if off < 0 || off+n > v.n {
		panic(fmt.Sprintf("bitvec: range [%d,%d) out of range [0,%d)", off, off+n, v.n))
	}
	if n == 0 {
		return 0
	}
	wi, bi := off/64, uint(off%64)
	x := v.words[wi] >> bi
	if bi+uint(n) > 64 {
		x |= v.words[wi+1] << (64 - bi)
	}
	if n < 64 {
		x &= 1<<uint(n) - 1
	}
	return x
}

// SetUint64 stores the low n bits of x into bits [off, off+n).
func (v *Vector) SetUint64(off, n int, x uint64) {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("bitvec: width %d out of range [0,64]", n))
	}
	if off < 0 || off+n > v.n {
		panic(fmt.Sprintf("bitvec: range [%d,%d) out of range [0,%d)", off, off+n, v.n))
	}
	if n == 0 {
		return
	}
	if n < 64 {
		x &= 1<<uint(n) - 1
	}
	wi, bi := off/64, uint(off%64)
	var mask uint64 = ^uint64(0)
	if n < 64 {
		mask = 1<<uint(n) - 1
	}
	v.words[wi] = v.words[wi]&^(mask<<bi) | x<<bi
	if bi+uint(n) > 64 {
		hi := uint(n) - (64 - bi)
		hiMask := uint64(1)<<hi - 1
		v.words[wi+1] = v.words[wi+1]&^hiMask | x>>(64-bi)
	}
}

// Clone returns a deep copy of the vector.
func (v *Vector) Clone() *Vector {
	c := New(v.n)
	copy(c.words, v.words)
	return c
}

// CopyFrom overwrites the vector with the contents of src. The lengths must
// match.
func (v *Vector) CopyFrom(src *Vector) error {
	if v.n != src.n {
		return fmt.Errorf("bitvec: length mismatch: dst %d, src %d", v.n, src.n)
	}
	copy(v.words, src.words)
	return nil
}

// Swap exchanges the contents of v and o in O(1) by swapping their word
// storage. The lengths must match.
func (v *Vector) Swap(o *Vector) error {
	if v.n != o.n {
		return fmt.Errorf("bitvec: length mismatch: %d vs %d", v.n, o.n)
	}
	v.words, o.words = o.words, v.words
	return nil
}

// Equal reports whether two vectors have identical length and contents.
func (v *Vector) Equal(o *Vector) bool {
	if v.n != o.n {
		return false
	}
	for i, w := range v.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Xor returns a new vector that is the bitwise XOR of v and o. The lengths
// must match; the XOR of two logged state vectors is the error pattern used
// by the analysis phase.
func (v *Vector) Xor(o *Vector) (*Vector, error) {
	if v.n != o.n {
		return nil, fmt.Errorf("bitvec: length mismatch: %d vs %d", v.n, o.n)
	}
	r := New(v.n)
	for i := range v.words {
		r.words[i] = v.words[i] ^ o.words[i]
	}
	return r, nil
}

// PopCount returns the number of set bits.
func (v *Vector) PopCount() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// OnesPositions returns the indices of all set bits in ascending order.
func (v *Vector) OnesPositions() []int {
	var pos []int
	for wi, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			pos = append(pos, wi*64+b)
			w &= w - 1
		}
	}
	return pos
}

// Clear sets every bit to zero.
func (v *Vector) Clear() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// ShiftIn shifts the whole vector one position towards bit 0, discarding the
// old bit 0 and inserting in as the new most significant bit. It returns the
// bit shifted out. This models one TCK cycle of a scan chain whose serial
// output is bit 0. Word-level shifting keeps full chain scans at
// O(n²/64) rather than O(n²) bit operations.
func (v *Vector) ShiftIn(in bool) (out bool) {
	if v.n == 0 {
		return in
	}
	out = v.words[0]&1 != 0
	last := len(v.words) - 1
	for i := 0; i < last; i++ {
		v.words[i] = v.words[i]>>1 | v.words[i+1]<<63
	}
	v.words[last] >>= 1
	if in {
		v.Set(v.n-1, true)
	} else {
		v.Set(v.n-1, false)
	}
	return out
}

// String renders the vector as a hex string, most significant nibble first,
// prefixed with the bit length, e.g. "12:0x0a3f".
func (v *Vector) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d:0x", v.n)
	nibbles := (v.n + 3) / 4
	if nibbles == 0 {
		sb.WriteString("0")
	}
	for i := nibbles - 1; i >= 0; i-- {
		nib := v.Uint64Unchecked(i*4, minInt(4, v.n-i*4))
		fmt.Fprintf(&sb, "%x", nib)
	}
	return sb.String()
}

// Uint64Unchecked is Uint64 without range clamping of the upper bound to the
// vector length; callers pass a width already clipped to the vector.
func (v *Vector) Uint64Unchecked(off, n int) uint64 {
	var x uint64
	for i := 0; i < n; i++ {
		if off+i < v.n && v.Get(off+i) {
			x |= 1 << uint(i)
		}
	}
	return x
}

// MarshalBinary encodes the vector as an 8-byte little-endian length followed
// by the packed words.
func (v *Vector) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 8+8*len(v.words))
	putUint64(buf, uint64(v.n))
	for i, w := range v.words {
		putUint64(buf[8+8*i:], w)
	}
	return buf, nil
}

// UnmarshalBinary decodes data produced by MarshalBinary.
func (v *Vector) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("bitvec: truncated header: %d bytes", len(data))
	}
	n := int(getUint64(data))
	words := (n + 63) / 64
	if len(data) < 8+8*words {
		return fmt.Errorf("bitvec: truncated body: want %d bytes, have %d", 8+8*words, len(data))
	}
	v.n = n
	v.words = make([]uint64, words)
	for i := range v.words {
		v.words[i] = getUint64(data[8+8*i:])
	}
	// Mask stray bits beyond n so Equal works on round-tripped vectors.
	if rem := n % 64; rem != 0 && words > 0 {
		v.words[words-1] &= (1 << uint(rem)) - 1
	}
	return nil
}

func putUint64(b []byte, x uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(x >> uint(8*i))
	}
}

func getUint64(b []byte) uint64 {
	var x uint64
	for i := 0; i < 8; i++ {
		x |= uint64(b[i]) << uint(8*i)
	}
	return x
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
