package chaos

import (
	"errors"
	"testing"
	"time"

	"goofi/internal/bitvec"
	"goofi/internal/core"
)

// innerTarget is a minimal healthy target: ReadScanChain produces a
// fixed alternating-bit capture, everything else succeeds.
type innerTarget struct {
	core.Framework
	reads int
}

func (it *innerTarget) InitTestCard(*core.Experiment) error { return nil }
func (it *innerTarget) LoadWorkload(*core.Experiment) error { return nil }
func (it *innerTarget) WriteMemory(*core.Experiment) error  { return nil }
func (it *innerTarget) RunWorkload(*core.Experiment) error  { return nil }

func (it *innerTarget) WaitForBreakpoint(*core.Experiment) error { return nil }

func (it *innerTarget) ReadScanChain(ex *core.Experiment) error {
	it.reads++
	ex.ScanVector = bitvec.New(64)
	for i := 0; i < 64; i += 2 {
		ex.ScanVector.Set(i, true)
	}
	return nil
}

func (it *innerTarget) WriteScanChain(*core.Experiment) error     { return nil }
func (it *innerTarget) WaitForTermination(*core.Experiment) error { return nil }
func (it *innerTarget) ReadMemory(*core.Experiment) error         { return nil }

func cleanCapture() *bitvec.Vector {
	v := bitvec.New(64)
	for i := 0; i < 64; i += 2 {
		v.Set(i, true)
	}
	return v
}

// readTrace drives n ReadScanChain calls and records, per call, whether
// it errored and the resulting capture bits.
func readTrace(t *Target, n int) []string {
	out := make([]string, n)
	for i := 0; i < n; i++ {
		ex := &core.Experiment{Seq: i}
		err := t.ReadScanChain(ex)
		s := ""
		if err != nil {
			s = "E:" + err.Error() + " "
		}
		if ex.ScanVector != nil {
			s += ex.ScanVector.String()
		}
		out[i] = s
	}
	return out
}

func TestDeterministicFaultSequence(t *testing.T) {
	cfg := Config{Seed: 42, ScanReadCorruption: 0.3}
	a := readTrace(Wrap(&innerTarget{}, cfg), 50)
	b := readTrace(Wrap(&innerTarget{}, cfg), 50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d diverged for equal seeds:\n%s\n%s", i, a[i], b[i])
		}
	}
	cfg.Seed = 43
	c := readTrace(Wrap(&innerTarget{}, cfg), 50)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced the identical 50-call fault trace")
	}
}

func TestMaxFaultsBudget(t *testing.T) {
	ct := Wrap(&innerTarget{}, Config{Seed: 1, ScanReadCorruption: 1, MaxFaults: 3})
	errs := 0
	clean := cleanCapture()
	for i := 0; i < 10; i++ {
		ex := &core.Experiment{Seq: i}
		if err := ct.ReadScanChain(ex); err != nil {
			errs++
			if ex.ScanVector.Equal(clean) {
				t.Errorf("call %d reported corruption but capture is clean", i)
			}
		} else if !ex.ScanVector.Equal(clean) {
			t.Errorf("call %d corrupted the capture without spending a fault", i)
		}
	}
	if errs != 3 {
		t.Errorf("got %d faults over 10 reads, want exactly MaxFaults=3", errs)
	}
	if ct.Faults() != 3 {
		t.Errorf("Faults() = %d, want 3", ct.Faults())
	}
}

func TestSilentCorruption(t *testing.T) {
	ct := Wrap(&innerTarget{}, Config{Seed: 1, ScanReadCorruption: 1, MaxFaults: 1, Silent: true})
	ex := &core.Experiment{}
	if err := ct.ReadScanChain(ex); err != nil {
		t.Fatalf("silent corruption still reported an error: %v", err)
	}
	if ex.ScanVector.Equal(cleanCapture()) {
		t.Error("silent mode did not corrupt the capture")
	}
}

func TestErrorClassification(t *testing.T) {
	persistent := Wrap(&innerTarget{}, Config{Seed: 1, ScanReadCorruption: 1, PersistentProb: 1})
	err := persistent.ReadScanChain(&core.Experiment{})
	if err == nil {
		t.Fatal("no error with corruption probability 1")
	}
	var herr *HarnessError
	if !errors.As(err, &herr) {
		t.Fatalf("error %T is not a HarnessError", err)
	}
	if core.ClassifyError(err) != core.Persistent {
		t.Errorf("PersistentProb=1 fault classified %v, want persistent", core.ClassifyError(err))
	}

	transient := Wrap(&innerTarget{}, Config{Seed: 1, ScanReadCorruption: 1})
	if got := core.ClassifyError(transient.ReadScanChain(&core.Experiment{})); got != core.Transient {
		t.Errorf("default fault classified %v, want transient", got)
	}

	werr := Wrap(&innerTarget{}, Config{Seed: 1, ScanWriteError: 1}).WriteScanChain(&core.Experiment{})
	if werr == nil {
		t.Fatal("no write error with probability 1")
	}
	if core.ClassifyError(werr) != core.Transient {
		t.Errorf("write fault classified %v, want transient", core.ClassifyError(werr))
	}
}

func TestHangStallsWithoutError(t *testing.T) {
	ct := Wrap(&innerTarget{}, Config{Seed: 1, HangProb: 1, MaxFaults: 1,
		HangDuration: 30 * time.Millisecond})
	start := time.Now()
	if err := ct.WaitForBreakpoint(&core.Experiment{}); err != nil {
		t.Fatalf("hang produced an error: %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("hang stalled only %v, want >= 30ms", d)
	}
	// Budget spent: the next wait is instant.
	start = time.Now()
	if err := ct.WaitForTermination(&core.Experiment{}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Errorf("second wait stalled %v after the fault budget was spent", d)
	}
}

func TestHealthyPassthrough(t *testing.T) {
	inner := &innerTarget{}
	ct := Wrap(inner, Config{Seed: 9})
	ex := &core.Experiment{}
	steps := []func(*core.Experiment) error{
		ct.InitTestCard, ct.LoadWorkload, ct.WriteMemory, ct.RunWorkload,
		ct.WaitForBreakpoint, ct.ReadScanChain, ct.InjectFault,
		ct.WriteScanChain, ct.WaitForTermination, ct.ReadMemory,
	}
	for i, step := range steps {
		if err := step(ex); err != nil {
			t.Fatalf("step %d failed with all probabilities zero: %v", i, err)
		}
	}
	if ct.Faults() != 0 {
		t.Errorf("Faults() = %d on a healthy passthrough", ct.Faults())
	}
	if !ex.ScanVector.Equal(cleanCapture()) {
		t.Error("passthrough perturbed the scan capture")
	}
	if ct.Name() != inner.Name() {
		t.Errorf("Name() = %q, want the inner target's", ct.Name())
	}
}
