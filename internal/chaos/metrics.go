package chaos

import "goofi/internal/telemetry"

// Injected-fault counter by kind. Children are resolved once at init so
// fire never touches the family's mutex.
var mFaults = telemetry.NewCounterVec("goofi_chaos_faults_total",
	"Harness faults injected by the chaos wrapper, by kind.", "kind")

var (
	mFaultsHang      = mFaults.With("hang")
	mFaultsScanRead  = mFaults.With("scan-read")
	mFaultsScanWrite = mFaults.With("scan-write")
)
