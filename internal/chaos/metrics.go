package chaos

import "goofi/internal/telemetry"

// Injected-fault counter by kind. Children are resolved once at init so
// fire never touches the family's mutex.
var mFaults = telemetry.NewCounterVec("goofi_chaos_faults_total",
	"Harness faults injected by the chaos wrapper, by kind.", "kind")

var (
	mFaultsHang      = mFaults.With("hang")
	mFaultsScanRead  = mFaults.With("scan-read")
	mFaultsScanWrite = mFaults.With("scan-write")
)

// Network-fault counter by kind, for the shard-transport chaos engine
// (net.go). Partition drops are counted here but not charged against
// the probabilistic MaxFaults budget — partitions are scripted.
var mNetFaults = telemetry.NewCounterVec("goofi_chaos_net_faults_total",
	"Network faults injected by the shard-transport chaos engine, by kind.", "kind")

var (
	mNetFaultsDropReq   = mNetFaults.With("drop-request")
	mNetFaultsDropResp  = mNetFaults.With("drop-response")
	mNetFaultsDelay     = mNetFaults.With("delay")
	mNetFaultsDup       = mNetFaults.With("duplicate")
	mNetFaultsTruncate  = mNetFaults.With("truncate")
	mNetFaultsPartition = mNetFaults.With("partition")
)
