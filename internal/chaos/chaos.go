// Package chaos is fault injection for the fault injector: it wraps a
// core.TargetSystem with a deterministic, seeded flaky-harness fault
// model — corrupted scan-chain captures, failed DR exchanges, simulated
// board hangs, transient and persistent failures — so the campaign
// driver's own fault tolerance (watchdogs, retry, quarantine) is
// testable without unreliable hardware. The model mirrors how real
// SCIFI harnesses misbehave: TAP shifts glitch, boards wedge past
// waitForBreakpoint, and a retried experiment on a re-initialised board
// succeeds.
//
// Faults are drawn from the wrapper's own seeded RNG, never from the
// experiment's, so a chaos-wrapped campaign draws the exact same
// injection plan as a healthy one — after retries, the logged records
// must be byte-identical (the chaos differential test enforces this).
package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"goofi/internal/bitvec"
	"goofi/internal/core"
	"goofi/internal/scanchain"
	"goofi/internal/telemetry"
	"goofi/internal/thor"
)

// Config tunes the flaky-harness fault model. All probabilities are per
// eligible abstract-method call, in [0, 1].
type Config struct {
	// Seed drives all chaos randomness; same seed, same fault sequence.
	Seed int64
	// ScanReadCorruption is the probability that a ReadScanChain capture
	// is corrupted (one bit flipped in the shifted-out vector). Unless
	// Silent is set, the corruption is detected and reported as a
	// transient harness error, like a CRC-checked test card would.
	ScanReadCorruption float64
	// ScanWriteError is the probability that a WriteScanChain exchange
	// fails outright.
	ScanWriteError float64
	// HangProb is the probability that a WaitForBreakpoint or
	// WaitForTermination call stalls for HangDuration before making
	// progress — a wedged board. Hangs produce no error: they manifest
	// purely as lost wall-clock time, which only the runner's watchdog
	// can classify.
	HangProb float64
	// HangDuration is how long a hang stalls (default 100ms).
	HangDuration time.Duration
	// PersistentProb is the probability that a reported fault presents
	// as persistent rather than transient.
	PersistentProb float64
	// MaxFaults caps the total number of injected harness faults
	// (0 = unlimited). Tests bound it so a retried campaign provably
	// converges.
	MaxFaults int
	// Silent suppresses the error report for scan-read corruption: the
	// corrupted capture flows onward undetected. This is the self-test
	// mode — a silently corrupted campaign must FAIL the differential
	// comparison, proving the test can see real corruption.
	Silent bool
}

// HarnessError is a chaos-injected harness failure. It implements
// core.Classifier so the runner's recovery matches the injected class.
type HarnessError struct {
	Step  string
	Class core.ErrorClass
	Msg   string
}

func (e *HarnessError) Error() string {
	return fmt.Sprintf("chaos: %s: %s (%s)", e.Step, e.Msg, e.Class)
}

// ErrorClass implements core.Classifier.
func (e *HarnessError) ErrorClass() core.ErrorClass { return e.Class }

// controllerAccessor is the optional deep-hook interface: targets that
// expose their scan-chain controller (scifi.Target does) get faults
// injected inside the TAP driver via scanchain.ScanFaultHook, so the
// corruption propagates exactly like a glitched shift — including the
// ReadDR restore pass writing the corrupted value back to the device.
type controllerAccessor interface {
	Controller() *scanchain.Controller
}

// cpuAccessor is the optional deep-hook interface for hangs: targets
// exposing their THOR CPU get stalled via thor.CPU.RunHook, inside the
// emulator's run loop.
type cpuAccessor interface {
	CPU() *thor.CPU
}

// Target wraps an inner target system with the chaos fault model. It is
// used by exactly one board worker at a time, like any target.
type Target struct {
	inner  core.TargetSystem
	cfg    Config
	rng    *rand.Rand
	faults int
}

// Wrap builds a chaos-wrapped target.
func Wrap(inner core.TargetSystem, cfg Config) *Target {
	if cfg.HangDuration <= 0 {
		cfg.HangDuration = 100 * time.Millisecond
	}
	return &Target{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Faults reports how many harness faults have been injected so far.
func (t *Target) Faults() int { return t.faults }

// fire draws one fault decision, honouring the MaxFaults budget. kind
// is the pre-resolved per-kind counter bumped when the fault fires.
func (t *Target) fire(p float64, kind *telemetry.Counter) bool {
	if p <= 0 || (t.cfg.MaxFaults > 0 && t.faults >= t.cfg.MaxFaults) {
		return false
	}
	if t.rng.Float64() >= p {
		return false
	}
	t.faults++
	kind.Inc()
	return true
}

// class draws transient vs persistent for a fired fault.
func (t *Target) class() core.ErrorClass {
	if t.cfg.PersistentProb > 0 && t.rng.Float64() < t.cfg.PersistentProb {
		return core.Persistent
	}
	return core.Transient
}

// Name implements core.TargetSystem.
func (t *Target) Name() string { return t.inner.Name() }

// InitTestCard passes through untouched: it is the recovery path (the
// board power-cycle before a retry), and a harness that cannot even be
// re-initialised is a quarantined board, not a retryable fault.
func (t *Target) InitTestCard(ex *core.Experiment) error { return t.inner.InitTestCard(ex) }

// LoadWorkload implements core.TargetSystem.
func (t *Target) LoadWorkload(ex *core.Experiment) error { return t.inner.LoadWorkload(ex) }

// WriteMemory implements core.TargetSystem.
func (t *Target) WriteMemory(ex *core.Experiment) error { return t.inner.WriteMemory(ex) }

// RunWorkload implements core.TargetSystem.
func (t *Target) RunWorkload(ex *core.Experiment) error { return t.inner.RunWorkload(ex) }

// InjectFault implements core.TargetSystem.
func (t *Target) InjectFault(ex *core.Experiment) error { return t.inner.InjectFault(ex) }

// WaitForBreakpoint may hang like a wedged board before delegating.
func (t *Target) WaitForBreakpoint(ex *core.Experiment) error {
	t.maybeHang()
	return t.inner.WaitForBreakpoint(ex)
}

// WaitForTermination may hang like a wedged board before delegating.
func (t *Target) WaitForTermination(ex *core.Experiment) error {
	t.maybeHang()
	return t.inner.WaitForTermination(ex)
}

// maybeHang stalls the harness for HangDuration when the hang fault
// fires — inside the emulator's run loop when the target exposes its
// CPU, at the call boundary otherwise. No error is returned either way:
// a wedge is pure lost time until the runner's watchdog classifies it.
func (t *Target) maybeHang() {
	if !t.fire(t.cfg.HangProb, mFaultsHang) {
		return
	}
	d := t.cfg.HangDuration
	if ca, ok := t.inner.(cpuAccessor); ok {
		if cpu := ca.CPU(); cpu != nil {
			// One-shot: the hook removes itself so only the next Run
			// entry stalls.
			cpu.RunHook = func(c *thor.CPU) {
				c.RunHook = nil
				time.Sleep(d)
			}
			return
		}
	}
	time.Sleep(d)
}

// ReadScanChain corrupts the capture when the scan-read fault fires:
// through the controller's fault hook when the target exposes one (the
// corrupted value then propagates device-side via the restore pass of
// the double scan), or by flipping a bit of ex.ScanVector at the call
// boundary. Unless Silent, the corruption is detected and reported.
func (t *Target) ReadScanChain(ex *core.Experiment) error {
	if !t.fire(t.cfg.ScanReadCorruption, mFaultsScanRead) {
		return t.inner.ReadScanChain(ex)
	}
	var herr error
	if !t.cfg.Silent {
		herr = &HarnessError{Step: "readScanChain", Class: t.class(),
			Msg: "scan capture corrupted (checksum mismatch)"}
	}
	if ca, ok := t.inner.(controllerAccessor); ok {
		if ctrl := ca.Controller(); ctrl != nil {
			fired := false
			ctrl.SetScanFaultHook(func(v *bitvec.Vector) error {
				if fired {
					return nil
				}
				fired = true
				if v.Len() > 0 {
					v.Flip(t.rng.Intn(v.Len()))
				}
				return herr
			})
			err := t.inner.ReadScanChain(ex)
			ctrl.SetScanFaultHook(nil)
			return err
		}
	}
	err := t.inner.ReadScanChain(ex)
	if err != nil {
		return err
	}
	if ex.ScanVector != nil && ex.ScanVector.Len() > 0 {
		ex.ScanVector.Flip(t.rng.Intn(ex.ScanVector.Len()))
	}
	return herr
}

// WriteScanChain fails the DR exchange when the scan-write fault fires —
// through the controller hook when available, so the error surfaces from
// inside the TAP driver.
func (t *Target) WriteScanChain(ex *core.Experiment) error {
	if !t.fire(t.cfg.ScanWriteError, mFaultsScanWrite) {
		return t.inner.WriteScanChain(ex)
	}
	herr := &HarnessError{Step: "writeScanChain", Class: t.class(),
		Msg: "DR exchange failed"}
	if ca, ok := t.inner.(controllerAccessor); ok {
		if ctrl := ca.Controller(); ctrl != nil {
			fired := false
			ctrl.SetScanFaultHook(func(v *bitvec.Vector) error {
				if fired {
					return nil
				}
				fired = true
				return herr
			})
			err := t.inner.WriteScanChain(ex)
			ctrl.SetScanFaultHook(nil)
			return err
		}
	}
	return herr
}

// ReadMemory implements core.TargetSystem.
func (t *Target) ReadMemory(ex *core.Experiment) error { return t.inner.ReadMemory(ex) }

// Forwarder pass-through: a chaos-wrapped target forwards checkpoints
// exactly like its inner target; when the inner target cannot forward,
// these are no-ops and every experiment runs cold.

// ArmForwardRecording implements core.Forwarder by delegation.
func (t *Target) ArmForwardRecording(plan *core.ForwardPlan) {
	if fw, ok := t.inner.(core.Forwarder); ok {
		fw.ArmForwardRecording(plan)
	}
}

// TakeForwardSet implements core.Forwarder by delegation.
func (t *Target) TakeForwardSet() *core.ForwardSet {
	if fw, ok := t.inner.(core.Forwarder); ok {
		return fw.TakeForwardSet()
	}
	return nil
}

// SetForwardSet implements core.Forwarder by delegation.
func (t *Target) SetForwardSet(set *core.ForwardSet) {
	if fw, ok := t.inner.(core.Forwarder); ok {
		fw.SetForwardSet(set)
	}
}

// Interface compliance.
var (
	_ core.TargetSystem = (*Target)(nil)
	_ core.Forwarder    = (*Target)(nil)
)
