package chaos

// Unit pins for the network fault engine's HTTP face: each fault kind
// at probability 1 so the behaviour is exact, plus the budget and the
// seeded-determinism contract. The end-to-end behaviour (a whole
// sharded campaign across a faulted transport staying byte-identical)
// lives in internal/shard's netchaos conformance suite.

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// netServer counts requests and echoes a fixed JSON body.
func netServer(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.Copy(io.Discard, r.Body)
		w.Write([]byte(`{"accepted":12}`))
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

func netClient(n *Net) *http.Client {
	return &http.Client{Transport: n.RoundTripper(nil)}
}

func postReport(t *testing.T, c *http.Client, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/api/v1/shards/t/c/report",
		bytes.NewReader([]byte(`{"worker":"w"}`)))
	if err != nil {
		t.Fatal(err)
	}
	return c.Do(req)
}

func TestNetRoundTripperDropRequest(t *testing.T) {
	ts, hits := netServer(t)
	c := netClient(NewNet(NetConfig{Seed: 1, DropRequestProb: 1}))
	if _, err := postReport(t, c, ts.URL); err == nil {
		t.Fatal("dropped request returned no error")
	}
	if got := hits.Load(); got != 0 {
		t.Fatalf("server saw %d requests for a dropped one, want 0", got)
	}
}

func TestNetRoundTripperDropResponse(t *testing.T) {
	ts, hits := netServer(t)
	c := netClient(NewNet(NetConfig{Seed: 1, DropResponseProb: 1}))
	if _, err := postReport(t, c, ts.URL); err == nil {
		t.Fatal("dropped response returned no error")
	}
	// The far side processed the call — that is what distinguishes a
	// lost ack from a lost request, and what the delivery key covers.
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (processed, ack lost)", got)
	}
}

func TestNetRoundTripperDuplicate(t *testing.T) {
	ts, hits := netServer(t)
	c := netClient(NewNet(NetConfig{Seed: 1, DuplicateProb: 1}))
	res, err := postReport(t, c, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if got := hits.Load(); got != 2 {
		t.Fatalf("server saw %d deliveries of a duplicated report, want 2", got)
	}

	// Only report/heartbeat calls are duplicated; a lease is not.
	hits.Store(0)
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/shards/t/c/lease",
		bytes.NewReader([]byte(`{}`)))
	res, err = c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d deliveries of a lease, want 1 (not dup-eligible)", got)
	}
}

func TestNetRoundTripperTruncate(t *testing.T) {
	ts, _ := netServer(t)
	c := netClient(NewNet(NetConfig{Seed: 1, TruncateProb: 1}))
	res, err := postReport(t, c, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	b, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	full := `{"accepted":12}`
	if string(b) != full[:len(full)/2] {
		t.Fatalf("truncated body = %q, want first half of %q", b, full)
	}
}

func TestNetRoundTripperPartitions(t *testing.T) {
	ts, hits := netServer(t)
	n := NewNet(NetConfig{Seed: 1})
	c := netClient(n)

	n.PartitionFull()
	if _, err := postReport(t, c, ts.URL); err == nil {
		t.Fatal("full partition let a request through")
	}
	if got := hits.Load(); got != 0 {
		t.Fatalf("server saw %d requests across a full partition, want 0", got)
	}

	n.PartitionAsym()
	if _, err := postReport(t, c, ts.URL); err == nil {
		t.Fatal("asymmetric partition returned a response")
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests across an asym partition, want 1", got)
	}

	n.Heal()
	res, err := postReport(t, c, ts.URL)
	if err != nil {
		t.Fatalf("healed network still failing: %v", err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if n.Faults() != 2 {
		t.Fatalf("Faults() = %d after two partition drops, want 2", n.Faults())
	}
}

func TestNetMaxFaultsBudget(t *testing.T) {
	ts, _ := netServer(t)
	c := netClient(NewNet(NetConfig{Seed: 1, DropRequestProb: 1, MaxFaults: 2}))
	for i := 0; i < 2; i++ {
		if _, err := postReport(t, c, ts.URL); err == nil {
			t.Fatalf("call %d: budget not yet spent but no fault", i)
		}
	}
	res, err := postReport(t, c, ts.URL)
	if err != nil {
		t.Fatalf("budget exhausted but call still faulted: %v", err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
}

func TestNetDeterministicSchedule(t *testing.T) {
	ts, _ := netServer(t)
	cfg := NetConfig{Seed: 42, DropRequestProb: 0.3, DropResponseProb: 0.2, TruncateProb: 0.2}
	schedule := func() []bool {
		c := netClient(NewNet(cfg))
		var outcomes []bool
		for i := 0; i < 40; i++ {
			res, err := postReport(t, c, ts.URL)
			if err == nil {
				io.Copy(io.Discard, res.Body)
				res.Body.Close()
			}
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := schedule(), schedule()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: same seed diverged (%v vs %v)", i, a[i], b[i])
		}
	}
}
