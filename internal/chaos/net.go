package chaos

// Network chaos for the shard transport: the same philosophy as the
// harness fault model in chaos.go — deterministic, seeded, budgeted —
// applied to the coordinator/worker wire instead of the scan chain. One
// decision engine (Net) backs two injectors:
//
//   - Net.Transport wraps a shard.Transport (typically shard.Direct),
//     so the partition-tolerance conformance suite can run coordinator
//     and workers in one process while every call crosses a hostile
//     "network".
//   - Net.RoundTripper wraps an http.RoundTripper, so real external
//     `goofi shard-worker` processes (and the CI shard-smoke job) cross
//     a hostile network too.
//
// Faults are drawn from the engine's own seeded RNG, never from the
// experiment RNG, so a chaos-wrapped sharded campaign draws the exact
// same injection plan as a healthy one — after retries and lease
// requeues, the merged records must be byte-identical to a solo run
// (the netchaos conformance suite enforces this).
//
// Partitions are scripted, not probabilistic: tests call
// PartitionFull/PartitionAsym/Heal at chosen moments. A full partition
// drops requests before they reach the far side; an asymmetric
// partition lets requests through and loses the responses — the case
// that makes idempotency keys earn their keep, because the coordinator
// has processed a report whose acknowledgement the worker never saw.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"goofi/internal/shard"
)

// Partition states.
const (
	partitionNone = iota
	partitionFull
	partitionAsym
)

// NetConfig tunes the network fault model. All probabilities are per
// transport call, in [0, 1].
type NetConfig struct {
	// Seed drives all network-chaos randomness; same seed, same
	// decision sequence.
	Seed int64
	// DropRequestProb is the probability a call is dropped before it
	// reaches the far side (a lost request packet).
	DropRequestProb float64
	// DropResponseProb is the probability the far side processes the
	// call but the response is lost (a lost ack). This is the fault the
	// report idempotency key exists for.
	DropResponseProb float64
	// DelayProb is the probability a call is delayed by Delay before it
	// proceeds (congestion, not loss).
	DelayProb float64
	// Delay is the added latency when the delay fault fires
	// (default 20ms).
	Delay time.Duration
	// DuplicateProb is the probability a call is delivered twice —
	// applied to report and heartbeat calls only, mirroring how a
	// retransmit race duplicates idempotent traffic. (Duplicating a
	// lease would grant a range to a ghost and strand it until TTL.)
	DuplicateProb float64
	// TruncateProb is the probability a response is cut off mid-body,
	// so the caller sees a decode failure for a call the far side has
	// already processed.
	TruncateProb float64
	// MaxFaults caps the total number of injected probabilistic faults
	// (0 = unlimited). Scripted partitions are not charged against it.
	MaxFaults int
}

// Net is the seeded decision engine shared by the transport wrapper and
// the RoundTripper. It is safe for concurrent use: a worker's heartbeat
// and streaming pumps hit it from separate goroutines.
type Net struct {
	cfg NetConfig

	mu        sync.Mutex
	rng       *rand.Rand
	faults    int
	partition int
}

// NewNet builds a network-chaos engine.
func NewNet(cfg NetConfig) *Net {
	if cfg.Delay <= 0 {
		cfg.Delay = 20 * time.Millisecond
	}
	return &Net{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Faults reports how many network faults have been injected so far
// (probabilistic faults plus partition-dropped calls).
func (n *Net) Faults() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.faults
}

// PartitionFull starts a full partition: every call is dropped before
// it reaches the far side.
func (n *Net) PartitionFull() { n.setPartition(partitionFull) }

// PartitionAsym starts an asymmetric partition: calls reach the far
// side and are processed, but every response is lost.
func (n *Net) PartitionAsym() { n.setPartition(partitionAsym) }

// Heal ends any partition.
func (n *Net) Heal() { n.setPartition(partitionNone) }

func (n *Net) setPartition(state int) {
	n.mu.Lock()
	n.partition = state
	n.mu.Unlock()
}

// netDecision is one call's worth of fault draws, taken under the lock
// in a fixed order so the schedule depends only on the seed and the
// call sequence.
type netDecision struct {
	dropRequest  bool
	dropResponse bool
	delay        bool
	duplicate    bool
	truncate     bool
}

// decide draws the fault plan for one call. dupEligible marks calls
// where duplication is meaningful (report, heartbeat).
func (n *Net) decide(dupEligible bool) netDecision {
	n.mu.Lock()
	defer n.mu.Unlock()
	var d netDecision
	switch n.partition {
	case partitionFull:
		n.faults++
		mNetFaultsPartition.Inc()
		d.dropRequest = true
		return d
	case partitionAsym:
		n.faults++
		mNetFaultsPartition.Inc()
		d.dropResponse = true
		return d
	}
	d.dropRequest = n.fireLocked(n.cfg.DropRequestProb, mNetFaultsDropReq)
	if d.dropRequest {
		return d
	}
	d.dropResponse = n.fireLocked(n.cfg.DropResponseProb, mNetFaultsDropResp)
	d.delay = n.fireLocked(n.cfg.DelayProb, mNetFaultsDelay)
	if dupEligible {
		d.duplicate = n.fireLocked(n.cfg.DuplicateProb, mNetFaultsDup)
	}
	if !d.dropResponse {
		d.truncate = n.fireLocked(n.cfg.TruncateProb, mNetFaultsTruncate)
	}
	return d
}

// fireLocked draws one fault decision, honouring the MaxFaults budget.
// Callers hold n.mu.
func (n *Net) fireLocked(p float64, kind interface{ Inc() }) bool {
	if p <= 0 || (n.cfg.MaxFaults > 0 && n.faults >= n.cfg.MaxFaults) {
		return false
	}
	if n.rng.Float64() >= p {
		return false
	}
	n.faults++
	kind.Inc()
	return true
}

// sleep waits the configured delay, cut short if ctx ends.
func (n *Net) sleep(ctx context.Context) {
	t := time.NewTimer(n.cfg.Delay)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// dropErr builds the retryable transport error a lost packet presents
// as. kind distinguishes a lost request from a lost response in logs;
// the shard client retries either way.
func dropErr(op, kind string) error {
	return &shard.TransportError{
		Op:        op,
		Class:     shard.ClassConn,
		Retryable: true,
		Err:       fmt.Errorf("chaos: %s dropped", kind),
	}
}

// NetTransport wraps a shard.Transport with the network fault model.
// It is how the conformance suite runs a whole fleet through partitions
// without opening a socket.
type NetTransport struct {
	inner shard.Transport
	net   *Net
}

// Transport wraps a shard.Transport (typically shard.Direct) with this
// engine's fault model.
func (n *Net) Transport(inner shard.Transport) *NetTransport {
	return &NetTransport{inner: inner, net: n}
}

// call runs one faulted call. fn must be re-invocable: a duplicate
// delivers the same request twice, exactly like a retransmit race.
func (t *NetTransport) call(ctx context.Context, op string, dupEligible bool, fn func() error) error {
	d := t.net.decide(dupEligible)
	if d.dropRequest {
		return dropErr(op, "request")
	}
	if d.delay {
		t.net.sleep(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
	if d.duplicate {
		// First copy lands; its outcome is discarded like a response
		// beaten by its own retransmit.
		_ = fn()
	}
	err := fn()
	if err != nil {
		return err
	}
	if d.dropResponse {
		return dropErr(op, "response")
	}
	if d.truncate {
		return &shard.TransportError{
			Op:        op,
			Class:     shard.ClassDecode,
			Retryable: true,
			Err:       fmt.Errorf("chaos: response truncated"),
		}
	}
	return nil
}

// Hello implements shard.Transport.
func (t *NetTransport) Hello(ctx context.Context, req shard.HelloRequest) (*shard.HelloResponse, error) {
	var resp *shard.HelloResponse
	err := t.call(ctx, "hello", false, func() error {
		var e error
		resp, e = t.inner.Hello(ctx, req)
		return e
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// Lease implements shard.Transport.
func (t *NetTransport) Lease(ctx context.Context, req shard.LeaseRequest) (*shard.LeaseResponse, error) {
	var resp *shard.LeaseResponse
	err := t.call(ctx, "lease", false, func() error {
		var e error
		resp, e = t.inner.Lease(ctx, req)
		return e
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// Heartbeat implements shard.Transport.
func (t *NetTransport) Heartbeat(ctx context.Context, req shard.HeartbeatRequest) error {
	return t.call(ctx, "heartbeat", true, func() error {
		return t.inner.Heartbeat(ctx, req)
	})
}

// Report implements shard.Transport. A dropped or truncated response
// here is the canonical idempotency-key scenario: the coordinator has
// merged the batch, the worker retries the identical delivery, and the
// coordinator must re-ack without re-merging.
func (t *NetTransport) Report(ctx context.Context, req shard.ReportRequest) (*shard.ReportResponse, error) {
	var resp *shard.ReportResponse
	err := t.call(ctx, "report", true, func() error {
		var e error
		resp, e = t.inner.Report(ctx, req)
		return e
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

var _ shard.Transport = (*NetTransport)(nil)

// RoundTripper wraps an http.RoundTripper with this engine's fault
// model, for external workers and the CI shard-smoke job. Use it as the
// transport of the http.Client handed to shard.HTTPTransport.
func (n *Net) RoundTripper(inner http.RoundTripper) http.RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &netRoundTripper{inner: inner, net: n}
}

type netRoundTripper struct {
	inner http.RoundTripper
	net   *Net
}

// RoundTrip implements http.RoundTripper. Dropped requests surface as
// transport errors (which http.Client wraps in *url.Error, classified
// retryable by the shard client); dropped responses perform the request
// so the server processes it, then lose the answer; truncation hands
// the caller half the body.
func (rt *netRoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	d := rt.net.decide(dupEligibleHTTP(req))
	if d.dropRequest {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("chaos: request dropped")
	}
	if d.delay {
		rt.net.sleep(req.Context())
		if err := req.Context().Err(); err != nil {
			return nil, err
		}
	}
	if d.duplicate && req.GetBody != nil {
		if dup := cloneRequest(req); dup != nil {
			if res, err := rt.inner.RoundTrip(dup); err == nil {
				// The duplicate's response is the one that loses the race.
				io.Copy(io.Discard, res.Body)
				res.Body.Close()
			}
		}
	}
	res, err := rt.inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if d.dropResponse {
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
		return nil, fmt.Errorf("chaos: response dropped")
	}
	if d.truncate {
		if terr := truncateBody(res); terr != nil {
			return nil, terr
		}
	}
	return res, nil
}

// dupEligibleHTTP matches the transport-wrapper rule: only report and
// heartbeat calls are duplicated.
func dupEligibleHTTP(req *http.Request) bool {
	p := req.URL.Path
	return len(p) >= 7 && (p[len(p)-7:] == "/report" || (len(p) >= 10 && p[len(p)-10:] == "/heartbeat"))
}

// cloneRequest builds a replayable copy of req via GetBody.
func cloneRequest(req *http.Request) *http.Request {
	body, err := req.GetBody()
	if err != nil {
		return nil
	}
	dup := req.Clone(req.Context())
	dup.Body = body
	return dup
}

// truncateBody replaces the response body with its first half, so the
// caller's JSON decode fails the way a connection dying mid-response
// makes it fail.
func truncateBody(res *http.Response) error {
	b, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		return err
	}
	half := b[:len(b)/2]
	res.Body = io.NopCloser(bytes.NewReader(half))
	res.ContentLength = int64(len(half))
	res.Header.Del("Content-Length")
	return nil
}
