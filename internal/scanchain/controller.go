package scanchain

import (
	"fmt"

	"goofi/internal/bitvec"
)

// Controller drives a TAP through complete instruction and data register
// scans. It is the host-side "test card" driver: the fault injection
// algorithms call ReadChain / WriteChain, which become full TMS/TDI
// sequences on the TAP.
type Controller struct {
	tap *TAP
	// scratch is the reusable shift vector for the non-destructive read
	// path (ReadDRInto), so per-slice reads in hot loops do not allocate.
	scratch *bitvec.Vector
	// faultHook, when set, sees (and may corrupt) every completed DR
	// capture; see SetScanFaultHook.
	faultHook ScanFaultHook
}

// ScanFaultHook models a faulty TAP connection: it is invoked after each
// completed DR shift with the just-captured register contents and may
// mutate the vector (a corrupted capture — note that the ReadDR double
// scan then writes the corrupted value back to the device, exactly like
// a glitched shift on real hardware) or return an error (a failed
// shift). The chaos harness installs one to test the campaign driver's
// fault tolerance.
type ScanFaultHook func(captured *bitvec.Vector) error

// SetScanFaultHook installs (or, with nil, removes) the controller's
// scan fault hook.
func (c *Controller) SetScanFaultHook(h ScanFaultHook) { c.faultHook = h }

// ControllerState is the restorable state of the controller and its TAP:
// the state-machine position, the active instruction and the clock count.
// The DR shift register is transient (it only holds data mid-scan) and is
// cleared on restore.
type ControllerState struct {
	State  TAPState
	IR     Instruction
	Clocks uint64
}

// StateSnapshot captures the controller state for campaign checkpoints.
func (c *Controller) StateSnapshot() ControllerState {
	return ControllerState{State: c.tap.state, IR: c.tap.ir, Clocks: c.tap.clocks}
}

// RestoreState overwrites the controller state with a snapshot taken via
// StateSnapshot, discarding any in-flight shift data.
func (c *Controller) RestoreState(st ControllerState) {
	c.tap.state = st.State
	c.tap.ir = st.IR
	c.tap.clocks = st.Clocks
	c.tap.irShift = 0
	c.tap.dr = nil
}

// NewController returns a controller for the given device, with the TAP
// reset and parked in Run-Test/Idle.
func NewController(dev Device) *Controller {
	c := &Controller{tap: NewTAP(dev)}
	c.park()
	return c
}

// TAP exposes the underlying TAP for inspection in tests.
func (c *Controller) TAP() *TAP { return c.tap }

// Reset returns the controller to the exact state NewController leaves
// it in — TAP reset and parked in Run-Test/Idle with the clock count a
// fresh park produces, no fault hook, no in-flight shift — while
// keeping the allocated scratch shift vector. The per-experiment
// initTestCard path resets in place instead of allocating a new
// controller (and its multi-kilobit scratch) for every experiment.
func (c *Controller) Reset() {
	c.tap.Reset()
	c.tap.irShift = 0
	c.tap.clocks = 0
	c.faultHook = nil
	c.park()
}

// park drives the controller to Run-Test/Idle from any state.
func (c *Controller) park() {
	for i := 0; i < 5; i++ {
		c.tap.Clock(true, false) // five TMS=1 edges reach Test-Logic-Reset
	}
	c.tap.Clock(false, false) // -> Run-Test/Idle
}

// LoadInstruction shifts an instruction into the IR and activates it.
func (c *Controller) LoadInstruction(instr Instruction) {
	if c.tap.State() != RunTestIdle {
		c.park()
	}
	c.tap.Clock(true, false)  // -> Select-DR-Scan
	c.tap.Clock(true, false)  // -> Select-IR-Scan
	c.tap.Clock(false, false) // -> Capture-IR
	c.tap.Clock(false, false) // -> Shift-IR (no shift on this edge)
	for i := 0; i < irWidth; i++ {
		tdi := uint8(instr)&(1<<uint(i)) != 0
		last := i == irWidth-1
		c.tap.Clock(last, tdi) // shift; last edge exits to Exit1-IR
	}
	c.tap.Clock(true, false)  // -> Update-IR
	c.tap.Clock(false, false) // -> Run-Test/Idle
}

// ExchangeDR performs one full DR scan: it captures the data register,
// shifts it out while shifting in the replacement, and updates the device
// from the shifted-in value. It returns the captured (old) register
// contents. This one primitive implements the paper's
// readScanChain / injectFault / writeScanChain sequence: read with an
// exchange of the same data, or write by exchanging modified data.
func (c *Controller) ExchangeDR(in *bitvec.Vector) (*bitvec.Vector, error) {
	out := bitvec.New(c.tap.drLen())
	if err := c.ExchangeDRInto(in, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ExchangeDRInto is ExchangeDR writing the captured register contents
// into out (which must have the register length) instead of allocating.
// in and out may be the same vector: the capture overwrites each bit only
// after it was shifted in.
func (c *Controller) ExchangeDRInto(in, out *bitvec.Vector) error {
	n := c.tap.drLen()
	if in.Len() != n {
		return fmt.Errorf("scanchain: DR scan of %d bits with %d-bit input (instruction %v)",
			n, in.Len(), c.tap.ActiveInstruction())
	}
	if out.Len() != n {
		return fmt.Errorf("scanchain: DR scan of %d bits into %d-bit output (instruction %v)",
			n, out.Len(), c.tap.ActiveInstruction())
	}
	if c.tap.State() != RunTestIdle {
		c.park()
	}
	c.tap.Clock(true, false)  // -> Select-DR-Scan
	c.tap.Clock(false, false) // -> Capture-DR
	c.tap.Clock(false, false) // -> Shift-DR (no shift on this edge)
	// n shift edges, word-at-a-time; the last edge exits to Exit1-DR.
	if err := c.tap.BulkShiftDR(in, out); err != nil {
		return err
	}
	mExchanges.Inc()
	mBitsShifted.Add(uint64(n))
	if c.faultHook != nil {
		if err := c.faultHook(out); err != nil {
			return fmt.Errorf("scanchain: DR scan (instruction %v): %w",
				c.tap.ActiveInstruction(), err)
		}
	}
	c.tap.Clock(true, false)  // -> Update-DR
	c.tap.Clock(false, false) // -> Run-Test/Idle
	return nil
}

// ReadDR captures and reads the active data register without changing it:
// it scans the register out and then scans the same value back in, so the
// device state after Update-DR equals what was captured.
func (c *Controller) ReadDR() (*bitvec.Vector, error) {
	out := bitvec.New(c.tap.drLen())
	if err := c.ReadDRInto(out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadDRInto is ReadDR writing into a caller-provided vector, reusing the
// controller's scratch shift vector so the double scan does not allocate.
func (c *Controller) ReadDRInto(out *bitvec.Vector) error {
	n := c.tap.drLen()
	if c.scratch == nil || c.scratch.Len() != n {
		c.scratch = bitvec.New(n)
	} else {
		c.scratch.Clear()
	}
	// First pass shifts zeros in to learn the contents...
	if err := c.ExchangeDRInto(c.scratch, out); err != nil {
		return err
	}
	// ...then restores them. Real SCIFI tools do the same double scan
	// when a read must not perturb state. The second capture lands in
	// the scratch vector and is discarded.
	return c.ExchangeDRInto(out, c.scratch)
}

// WriteDR replaces the active data register contents.
func (c *Controller) WriteDR(v *bitvec.Vector) error {
	_, err := c.ExchangeDR(v)
	return err
}

// ReadIDCode reads the device identification register.
func (c *Controller) ReadIDCode() (uint32, error) {
	c.LoadInstruction(InstrIDCode)
	v, err := c.ExchangeDR(bitvec.New(32))
	if err != nil {
		return 0, err
	}
	return uint32(v.Uint64(0, 32)), nil
}

// ReadInternal reads the device's internal scan chain non-destructively.
func (c *Controller) ReadInternal() (*bitvec.Vector, error) {
	c.LoadInstruction(InstrScanReg)
	return c.ReadDR()
}

// ReadInternalInto reads the internal scan chain non-destructively into a
// caller-provided vector, the allocation-free variant of ReadInternal for
// hot loops (per-slice persistent-fault reassertion).
func (c *Controller) ReadInternalInto(v *bitvec.Vector) error {
	c.LoadInstruction(InstrScanReg)
	return c.ReadDRInto(v)
}

// WriteInternal writes the device's internal scan chain.
func (c *Controller) WriteInternal(v *bitvec.Vector) error {
	c.LoadInstruction(InstrScanReg)
	return c.WriteDR(v)
}

// SampleBoundary samples the pins without disturbing them.
func (c *Controller) SampleBoundary() (*bitvec.Vector, error) {
	c.LoadInstruction(InstrSample)
	v, err := c.ExchangeDR(bitvec.New(c.tap.dev.BoundaryLen()))
	if err != nil {
		return nil, err
	}
	return v, nil
}

// Extest drives the given vector onto the pins via EXTEST.
func (c *Controller) Extest(v *bitvec.Vector) error {
	c.LoadInstruction(InstrExtest)
	return c.WriteDR(v)
}
