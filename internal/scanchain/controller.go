package scanchain

import (
	"fmt"

	"goofi/internal/bitvec"
)

// Controller drives a TAP through complete instruction and data register
// scans. It is the host-side "test card" driver: the fault injection
// algorithms call ReadChain / WriteChain, which become full TMS/TDI
// sequences on the TAP.
type Controller struct {
	tap *TAP
}

// NewController returns a controller for the given device, with the TAP
// reset and parked in Run-Test/Idle.
func NewController(dev Device) *Controller {
	c := &Controller{tap: NewTAP(dev)}
	c.park()
	return c
}

// TAP exposes the underlying TAP for inspection in tests.
func (c *Controller) TAP() *TAP { return c.tap }

// park drives the controller to Run-Test/Idle from any state.
func (c *Controller) park() {
	for i := 0; i < 5; i++ {
		c.tap.Clock(true, false) // five TMS=1 edges reach Test-Logic-Reset
	}
	c.tap.Clock(false, false) // -> Run-Test/Idle
}

// LoadInstruction shifts an instruction into the IR and activates it.
func (c *Controller) LoadInstruction(instr Instruction) {
	if c.tap.State() != RunTestIdle {
		c.park()
	}
	c.tap.Clock(true, false)  // -> Select-DR-Scan
	c.tap.Clock(true, false)  // -> Select-IR-Scan
	c.tap.Clock(false, false) // -> Capture-IR
	c.tap.Clock(false, false) // -> Shift-IR (no shift on this edge)
	for i := 0; i < irWidth; i++ {
		tdi := uint8(instr)&(1<<uint(i)) != 0
		last := i == irWidth-1
		c.tap.Clock(last, tdi) // shift; last edge exits to Exit1-IR
	}
	c.tap.Clock(true, false)  // -> Update-IR
	c.tap.Clock(false, false) // -> Run-Test/Idle
}

// ExchangeDR performs one full DR scan: it captures the data register,
// shifts it out while shifting in the replacement, and updates the device
// from the shifted-in value. It returns the captured (old) register
// contents. This one primitive implements the paper's
// readScanChain / injectFault / writeScanChain sequence: read with an
// exchange of the same data, or write by exchanging modified data.
func (c *Controller) ExchangeDR(in *bitvec.Vector) (*bitvec.Vector, error) {
	n := c.tap.drLen()
	if in.Len() != n {
		return nil, fmt.Errorf("scanchain: DR scan of %d bits with %d-bit input (instruction %v)",
			n, in.Len(), c.tap.ActiveInstruction())
	}
	if c.tap.State() != RunTestIdle {
		c.park()
	}
	c.tap.Clock(true, false)  // -> Select-DR-Scan
	c.tap.Clock(false, false) // -> Capture-DR
	c.tap.Clock(false, false) // -> Shift-DR (no shift on this edge)
	out := bitvec.New(n)
	for i := 0; i < n; i++ {
		last := i == n-1
		tdo := c.tap.Clock(last, in.Get(i))
		out.Set(i, tdo)
	}
	c.tap.Clock(true, false)  // -> Update-DR
	c.tap.Clock(false, false) // -> Run-Test/Idle
	return out, nil
}

// ReadDR captures and reads the active data register without changing it:
// it scans the register out and then scans the same value back in, so the
// device state after Update-DR equals what was captured.
func (c *Controller) ReadDR() (*bitvec.Vector, error) {
	n := c.tap.drLen()
	// First pass shifts zeros in to learn the contents...
	out, err := c.ExchangeDR(bitvec.New(n))
	if err != nil {
		return nil, err
	}
	// ...then restores them. Real SCIFI tools do the same double scan
	// when a read must not perturb state.
	if _, err := c.ExchangeDR(out); err != nil {
		return nil, err
	}
	return out.Clone(), nil
}

// WriteDR replaces the active data register contents.
func (c *Controller) WriteDR(v *bitvec.Vector) error {
	_, err := c.ExchangeDR(v)
	return err
}

// ReadIDCode reads the device identification register.
func (c *Controller) ReadIDCode() (uint32, error) {
	c.LoadInstruction(InstrIDCode)
	v, err := c.ExchangeDR(bitvec.New(32))
	if err != nil {
		return 0, err
	}
	return uint32(v.Uint64(0, 32)), nil
}

// ReadInternal reads the device's internal scan chain non-destructively.
func (c *Controller) ReadInternal() (*bitvec.Vector, error) {
	c.LoadInstruction(InstrScanReg)
	return c.ReadDR()
}

// WriteInternal writes the device's internal scan chain.
func (c *Controller) WriteInternal(v *bitvec.Vector) error {
	c.LoadInstruction(InstrScanReg)
	return c.WriteDR(v)
}

// SampleBoundary samples the pins without disturbing them.
func (c *Controller) SampleBoundary() (*bitvec.Vector, error) {
	c.LoadInstruction(InstrSample)
	v, err := c.ExchangeDR(bitvec.New(c.tap.dev.BoundaryLen()))
	if err != nil {
		return nil, err
	}
	return v, nil
}

// Extest drives the given vector onto the pins via EXTEST.
func (c *Controller) Extest(v *bitvec.Vector) error {
	c.LoadInstruction(InstrExtest)
	return c.WriteDR(v)
}
