package scanchain

import (
	"fmt"
	"sort"
	"strings"
)

// Location is one named group of scan cells: a register, a flag, or a
// memory array element. The configuration phase (paper Fig 5) presents
// locations by name and position; read-only locations can be observed but
// not injected.
type Location struct {
	Name     string `json:"name"`
	Offset   int    `json:"offset"`
	Width    int    `json:"width"`
	ReadOnly bool   `json:"readOnly,omitempty"`
}

// End returns the first bit offset after the location.
func (l Location) End() int { return l.Offset + l.Width }

// Map describes one scan chain of a target system: its total length and
// its named locations. Maps are the content of the TargetSystemData
// database table.
type Map struct {
	Chain     string     `json:"chain"`
	Length    int        `json:"length"`
	Locations []Location `json:"locations"`
}

// Validate checks that every location lies within the chain, has positive
// width, a unique name, and that no two locations overlap.
func (m *Map) Validate() error {
	if m.Length <= 0 {
		return fmt.Errorf("scanchain: map %q has non-positive length %d", m.Chain, m.Length)
	}
	seen := make(map[string]bool, len(m.Locations))
	sorted := make([]Location, len(m.Locations))
	copy(sorted, m.Locations)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Offset < sorted[j].Offset })
	prevEnd := 0
	prevName := ""
	for _, l := range sorted {
		if l.Name == "" {
			return fmt.Errorf("scanchain: map %q has unnamed location at offset %d", m.Chain, l.Offset)
		}
		if seen[l.Name] {
			return fmt.Errorf("scanchain: map %q has duplicate location %q", m.Chain, l.Name)
		}
		seen[l.Name] = true
		if l.Width <= 0 {
			return fmt.Errorf("scanchain: location %q has non-positive width %d", l.Name, l.Width)
		}
		if l.Offset < 0 || l.End() > m.Length {
			return fmt.Errorf("scanchain: location %q [%d,%d) outside chain of %d bits",
				l.Name, l.Offset, l.End(), m.Length)
		}
		if l.Offset < prevEnd {
			return fmt.Errorf("scanchain: location %q overlaps %q", l.Name, prevName)
		}
		prevEnd = l.End()
		prevName = l.Name
	}
	return nil
}

// Find returns the named location.
func (m *Map) Find(name string) (Location, error) {
	for _, l := range m.Locations {
		if l.Name == name {
			return l, nil
		}
	}
	return Location{}, fmt.Errorf("scanchain: map %q has no location %q", m.Chain, name)
}

// LocationAt returns the location containing bit offset, if any.
func (m *Map) LocationAt(offset int) (Location, bool) {
	for _, l := range m.Locations {
		if offset >= l.Offset && offset < l.End() {
			return l, true
		}
	}
	return Location{}, false
}

// Writable returns the locations that can be injected into.
func (m *Map) Writable() []Location {
	var out []Location
	for _, l := range m.Locations {
		if !l.ReadOnly {
			out = append(out, l)
		}
	}
	return out
}

// WritableBits returns the total number of injectable bits.
func (m *Map) WritableBits() int {
	n := 0
	for _, l := range m.Writable() {
		n += l.Width
	}
	return n
}

// Select returns the locations whose dotted names match any of the given
// prefixes (e.g. "cpu" selects cpu.r0 … cpu.ccr; "icache.line3" selects
// that line's fields). An exact name is its own prefix. This implements the
// hierarchical selection list of the set-up phase (paper Fig 6).
func (m *Map) Select(prefixes ...string) []Location {
	var out []Location
	for _, l := range m.Locations {
		for _, p := range prefixes {
			if l.Name == p || strings.HasPrefix(l.Name, p+".") {
				out = append(out, l)
				break
			}
		}
	}
	return out
}

// Tree renders the locations as an indented hierarchy grouped on dotted
// name segments, as the set-up GUI of Fig 6 displays them.
func (m *Map) Tree() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (%d bits)\n", m.Chain, m.Length)
	var lastParts []string
	for _, l := range m.Locations {
		parts := strings.Split(l.Name, ".")
		common := 0
		for common < len(parts)-1 && common < len(lastParts)-1 && parts[common] == lastParts[common] {
			common++
		}
		for d := common; d < len(parts)-1; d++ {
			fmt.Fprintf(&sb, "%s%s/\n", strings.Repeat("  ", d+1), parts[d])
		}
		ro := ""
		if l.ReadOnly {
			ro = " [read-only]"
		}
		fmt.Fprintf(&sb, "%s%s  bits %d..%d%s\n",
			strings.Repeat("  ", len(parts)), parts[len(parts)-1], l.Offset, l.End()-1, ro)
		lastParts = parts
	}
	return sb.String()
}
