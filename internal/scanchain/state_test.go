package scanchain

import (
	"testing"

	"goofi/internal/bitvec"
)

// fakeDev is a minimal device with a mutable 64-bit internal chain.
type fakeDev struct {
	internal *bitvec.Vector
	captures int
}

func newFakeDev() *fakeDev {
	return &fakeDev{internal: bitvec.FromUint64(0xDEAD_BEEF_0BAD_F00D, 64)}
}

func (d *fakeDev) BoundaryLen() int                    { return 8 }
func (d *fakeDev) CaptureBoundary() *bitvec.Vector     { return bitvec.New(8) }
func (d *fakeDev) UpdateBoundary(*bitvec.Vector) error { return nil }
func (d *fakeDev) InternalLen() int                    { return 64 }
func (d *fakeDev) IDCode() uint32                      { return 0x1234_5678 }

func (d *fakeDev) CaptureInternal() *bitvec.Vector {
	d.captures++
	return d.internal.Clone()
}

func (d *fakeDev) UpdateInternal(v *bitvec.Vector) error {
	d.internal = v.Clone()
	return nil
}

// fakeDevInto additionally implements InternalCapturerInto.
type fakeDevInto struct{ fakeDev }

func newFakeDevInto() *fakeDevInto {
	return &fakeDevInto{fakeDev: *newFakeDev()}
}

func (d *fakeDevInto) CaptureInternalInto(v *bitvec.Vector) error {
	d.captures++
	v.CopyFrom(d.internal)
	return nil
}

func TestControllerStateSnapshotRestore(t *testing.T) {
	c := NewController(newFakeDev())
	c.LoadInstruction(InstrScanReg)
	st := c.StateSnapshot()
	if st.IR != InstrScanReg || st.State != RunTestIdle {
		t.Fatalf("snapshot = %+v", st)
	}

	// Disturb the controller, then restore.
	c.LoadInstruction(InstrBypass)
	if _, err := c.ExchangeDR(bitvec.New(1)); err != nil {
		t.Fatal(err)
	}
	c.RestoreState(st)
	if got := c.TAP().ActiveInstruction(); got != InstrScanReg {
		t.Errorf("restored IR = %v, want SCANREG", got)
	}
	if got := c.TAP().State(); got != RunTestIdle {
		t.Errorf("restored state = %v, want Run-Test/Idle", got)
	}
	if got := c.TAP().Clocks(); got != st.Clocks {
		t.Errorf("restored clocks = %d, want %d", got, st.Clocks)
	}
	// The restored controller must still scan correctly.
	v, err := c.ReadDR()
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 64 {
		t.Errorf("post-restore DR length = %d, want 64", v.Len())
	}
}

func TestReadDRIntoMatchesReadDR(t *testing.T) {
	for _, tc := range []struct {
		name string
		dev  Device
	}{
		{"allocating-capture", newFakeDev()},
		{"capture-into", newFakeDevInto()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := NewController(tc.dev)
			c.LoadInstruction(InstrScanReg)
			want, err := c.ReadDR()
			if err != nil {
				t.Fatal(err)
			}
			out := bitvec.New(64)
			for i := 0; i < 3; i++ {
				if err := c.ReadDRInto(out); err != nil {
					t.Fatal(err)
				}
				if !out.Equal(want) {
					t.Fatalf("pass %d: ReadDRInto = %v, ReadDR = %v", i, out, want)
				}
			}
			// The read is non-destructive: the device still holds the
			// original value.
			if got, err := c.ReadInternal(); err != nil || !got.Equal(want) {
				t.Errorf("device state perturbed by ReadDRInto: %v (%v)", got, err)
			}
		})
	}
}

func TestReadInternalIntoRoundTrip(t *testing.T) {
	c := NewController(newFakeDevInto())
	out := bitvec.New(64)
	if err := c.ReadInternalInto(out); err != nil {
		t.Fatal(err)
	}
	if out.Uint64(0, 64) != 0xDEAD_BEEF_0BAD_F00D {
		t.Errorf("ReadInternalInto = %#x", out.Uint64(0, 64))
	}
	// Wrong-length destination is rejected, not resized.
	if err := c.ReadDRInto(bitvec.New(63)); err == nil {
		t.Error("ReadDRInto accepted a 63-bit vector for a 64-bit chain")
	}
}

// TestBulkShiftMatchesBitSerial pins the word-level Shift-DR fast path
// to the bit-serial reference: the same scan driven through the
// Controller (bulk path) and through manual per-edge Clock calls must
// produce the same captured data, device state, and TCK count.
func TestBulkShiftMatchesBitSerial(t *testing.T) {
	devA, devB := newFakeDev(), newFakeDev()
	ctrl := NewController(devA)
	tapB := NewTAP(devB)

	// Manual path, replicating the controller's exact edge sequence.
	for i := 0; i < 5; i++ {
		tapB.Clock(true, false)
	}
	tapB.Clock(false, false) // park in Run-Test/Idle
	tapB.Clock(true, false)  // -> Select-DR-Scan
	tapB.Clock(true, false)  // -> Select-IR-Scan
	tapB.Clock(false, false) // -> Capture-IR
	tapB.Clock(false, false) // -> Shift-IR
	for i := 0; i < 4; i++ {
		tapB.Clock(i == 3, uint8(InstrScanReg)&(1<<uint(i)) != 0)
	}
	tapB.Clock(true, false)  // -> Update-IR
	tapB.Clock(false, false) // -> Run-Test/Idle
	tapB.Clock(true, false)  // -> Select-DR-Scan
	tapB.Clock(false, false) // -> Capture-DR
	tapB.Clock(false, false) // -> Shift-DR
	in := bitvec.FromUint64(0x0123_4567_89AB_CDEF, 64)
	outB := bitvec.New(64)
	for i := 0; i < 64; i++ {
		outB.Set(i, tapB.Clock(i == 63, in.Get(i)))
	}
	tapB.Clock(true, false)  // -> Update-DR
	tapB.Clock(false, false) // -> Run-Test/Idle

	// Bulk path through the controller.
	ctrl.LoadInstruction(InstrScanReg)
	outA, err := ctrl.ExchangeDR(in.Clone())
	if err != nil {
		t.Fatal(err)
	}

	if !outA.Equal(outB) {
		t.Errorf("captured data differs: bulk %v, bit-serial %v", outA, outB)
	}
	if !devA.internal.Equal(devB.internal) {
		t.Errorf("device state differs: bulk %v, bit-serial %v", devA.internal, devB.internal)
	}
	if a, b := ctrl.TAP().Clocks(), tapB.Clocks(); a != b {
		t.Errorf("TCK count differs: bulk %d, bit-serial %d", a, b)
	}
}

// TestControllerResetMatchesFresh pins Controller.Reset to byte-for-byte
// fresh-controller semantics: same TAP state, instruction, in-flight
// shift registers, clock count (which lands in checkpoint snapshots via
// StateSnapshot), and no lingering fault hook — while keeping the
// allocated scratch vector.
func TestControllerResetMatchesFresh(t *testing.T) {
	dev := newFakeDevice()
	c := NewController(dev)
	// Dirty every piece of controller state a campaign can touch.
	if _, err := c.ReadInternal(); err != nil {
		t.Fatal(err)
	}
	c.SetScanFaultHook(func(v *bitvec.Vector) error { return nil })
	c.tap.Clock(true, false) // leave Run-Test/Idle mid-sequence
	c.Reset()

	fresh := NewController(newFakeDevice())
	if got, want := c.StateSnapshot(), fresh.StateSnapshot(); got != want {
		t.Fatalf("reset state %+v != fresh state %+v", got, want)
	}
	if c.faultHook != nil {
		t.Fatal("fault hook survived Reset")
	}
	if c.tap.irShift != 0 || c.tap.dr != nil {
		t.Fatal("in-flight shift state survived Reset")
	}
	if c.scratch == nil {
		t.Fatal("scratch vector was dropped by Reset (defeats the reuse)")
	}
	// And the reset controller must still drive scans identically.
	a, err := c.ReadInternal()
	if err != nil {
		t.Fatal(err)
	}
	b, err := fresh.ReadInternal()
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("post-reset scan differs from fresh controller scan")
	}
}
