package scanchain

import (
	"strings"
	"testing"

	"goofi/internal/bitvec"
)

// fakeDevice is a minimal Device with an 8-bit boundary and a 12-bit
// internal chain backed by plain vectors.
type fakeDevice struct {
	boundary  *bitvec.Vector
	internal  *bitvec.Vector
	idcode    uint32
	extests   int
	intUpdate int
}

func newFakeDevice() *fakeDevice {
	return &fakeDevice{
		boundary: bitvec.FromUint64(0xA5, 8),
		internal: bitvec.FromUint64(0x3CF, 12),
		idcode:   0x1234_5678,
	}
}

func (d *fakeDevice) BoundaryLen() int                { return 8 }
func (d *fakeDevice) CaptureBoundary() *bitvec.Vector { return d.boundary.Clone() }
func (d *fakeDevice) InternalLen() int                { return 12 }
func (d *fakeDevice) CaptureInternal() *bitvec.Vector { return d.internal.Clone() }
func (d *fakeDevice) IDCode() uint32                  { return d.idcode }

func (d *fakeDevice) UpdateBoundary(v *bitvec.Vector) error {
	d.extests++
	return d.boundary.CopyFrom(v)
}

func (d *fakeDevice) UpdateInternal(v *bitvec.Vector) error {
	d.intUpdate++
	return d.internal.CopyFrom(v)
}

func TestTAPResetState(t *testing.T) {
	tap := NewTAP(newFakeDevice())
	if tap.State() != TestLogicReset {
		t.Errorf("initial state = %v, want Test-Logic-Reset", tap.State())
	}
	if tap.ActiveInstruction() != InstrIDCode {
		t.Errorf("initial instruction = %v, want IDCODE", tap.ActiveInstruction())
	}
}

func TestTAPStateDiagramWalk(t *testing.T) {
	tap := NewTAP(newFakeDevice())
	// TLR -0-> RTI -1-> SelDR -0-> CapDR -0-> ShiftDR -1-> Exit1DR
	// -0-> PauseDR -1-> Exit2DR -0-> ShiftDR -1-> Exit1DR -1-> UpdateDR -0-> RTI
	steps := []struct {
		tms  bool
		want TAPState
	}{
		{false, RunTestIdle},
		{true, SelectDRScan},
		{false, CaptureDR},
		{false, ShiftDR},
		{true, Exit1DR},
		{false, PauseDR},
		{true, Exit2DR},
		{false, ShiftDR},
		{true, Exit1DR},
		{true, UpdateDR},
		{false, RunTestIdle},
		{true, SelectDRScan},
		{true, SelectIRScan},
		{false, CaptureIR},
		{false, ShiftIR},
		{true, Exit1IR},
		{false, PauseIR},
		{true, Exit2IR},
		{true, UpdateIR},
		{true, SelectDRScan},
		{true, SelectIRScan},
		{true, TestLogicReset},
	}
	for i, s := range steps {
		tap.Clock(s.tms, false)
		if tap.State() != s.want {
			t.Fatalf("step %d: state = %v, want %v", i, tap.State(), s.want)
		}
	}
}

func TestTAPFiveOnesResetsFromAnywhere(t *testing.T) {
	tap := NewTAP(newFakeDevice())
	// Wander into Shift-DR.
	for _, tms := range []bool{false, true, false, false} {
		tap.Clock(tms, false)
	}
	if tap.State() != ShiftDR {
		t.Fatalf("setup failed, state = %v", tap.State())
	}
	for i := 0; i < 5; i++ {
		tap.Clock(true, false)
	}
	if tap.State() != TestLogicReset {
		t.Errorf("state after 5×TMS=1 = %v, want Test-Logic-Reset", tap.State())
	}
}

func TestReadIDCode(t *testing.T) {
	dev := newFakeDevice()
	c := NewController(dev)
	id, err := c.ReadIDCode()
	if err != nil {
		t.Fatal(err)
	}
	if id != dev.idcode {
		t.Errorf("IDCODE = %#x, want %#x", id, dev.idcode)
	}
}

func TestBypassIsOneBitDelay(t *testing.T) {
	c := NewController(newFakeDevice())
	c.LoadInstruction(InstrBypass)
	// Exchange a known pattern through the 1-bit bypass register: the
	// output must be the input delayed by exactly one bit (first bit out
	// is the captured bypass bit, 0).
	in := bitvec.FromUint64(0b1, 1)
	out, err := c.ExchangeDR(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Get(0) {
		t.Error("bypass captured bit should be 0")
	}
}

func TestInternalReadNonDestructive(t *testing.T) {
	dev := newFakeDevice()
	c := NewController(dev)
	before := dev.internal.Clone()
	v, err := c.ReadInternal()
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(before) {
		t.Errorf("read %v, device had %v", v, before)
	}
	if !dev.internal.Equal(before) {
		t.Errorf("ReadInternal perturbed device state: %v -> %v", before, dev.internal)
	}
}

func TestInternalWriteAppliesVector(t *testing.T) {
	dev := newFakeDevice()
	c := NewController(dev)
	want := bitvec.FromUint64(0x0F0, 12)
	if err := c.WriteInternal(want); err != nil {
		t.Fatal(err)
	}
	if !dev.internal.Equal(want) {
		t.Errorf("device internal = %v, want %v", dev.internal, want)
	}
	if dev.intUpdate == 0 {
		t.Error("UpdateInternal never called")
	}
}

func TestReadModifyWriteInjection(t *testing.T) {
	// The SCIFI primitive: read the chain, flip one bit, write it back.
	dev := newFakeDevice()
	c := NewController(dev)
	v, err := c.ReadInternal()
	if err != nil {
		t.Fatal(err)
	}
	v.Flip(5)
	if err := c.WriteInternal(v); err != nil {
		t.Fatal(err)
	}
	want := bitvec.FromUint64(0x3CF^(1<<5), 12)
	if !dev.internal.Equal(want) {
		t.Errorf("device internal = %v, want %v", dev.internal, want)
	}
}

func TestSampleBoundary(t *testing.T) {
	dev := newFakeDevice()
	c := NewController(dev)
	v, err := c.SampleBoundary()
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Uint64(0, 8); got != 0xA5 {
		t.Errorf("sampled boundary = %#x, want 0xa5", got)
	}
	if dev.extests != 0 {
		t.Error("SAMPLE must not drive pins")
	}
}

func TestExtestDrivesPins(t *testing.T) {
	dev := newFakeDevice()
	c := NewController(dev)
	v := bitvec.FromUint64(0x5A, 8)
	if err := c.Extest(v); err != nil {
		t.Fatal(err)
	}
	if got := dev.boundary.Uint64(0, 8); got != 0x5A {
		t.Errorf("boundary after EXTEST = %#x, want 0x5a", got)
	}
	if dev.extests != 1 {
		t.Errorf("UpdateBoundary called %d times, want 1", dev.extests)
	}
}

func TestExchangeDRLengthMismatch(t *testing.T) {
	c := NewController(newFakeDevice())
	c.LoadInstruction(InstrScanReg)
	if _, err := c.ExchangeDR(bitvec.New(5)); err == nil {
		t.Error("ExchangeDR with wrong length did not error")
	}
}

func TestInstructionStrings(t *testing.T) {
	for instr, want := range map[Instruction]string{
		InstrExtest:  "EXTEST",
		InstrSample:  "SAMPLE",
		InstrScanReg: "SCANREG",
		InstrIDCode:  "IDCODE",
		InstrBypass:  "BYPASS",
	} {
		if instr.String() != want {
			t.Errorf("%v.String() = %q, want %q", uint8(instr), instr, want)
		}
	}
	if !strings.Contains(Instruction(0x9).String(), "0x9") {
		t.Errorf("unknown instruction string = %q", Instruction(0x9))
	}
}

func TestStateStrings(t *testing.T) {
	if TestLogicReset.String() != "Test-Logic-Reset" {
		t.Errorf("state name = %q", TestLogicReset)
	}
	if !strings.Contains(TAPState(99).String(), "99") {
		t.Errorf("unknown state = %q", TAPState(99))
	}
}

func TestClockCounting(t *testing.T) {
	dev := newFakeDevice()
	c := NewController(dev)
	before := c.TAP().Clocks()
	if _, err := c.ReadInternal(); err != nil {
		t.Fatal(err)
	}
	// Read = load IR + two full 12-bit DR scans; must cost clocks
	// proportional to chain length.
	delta := c.TAP().Clocks() - before
	if delta < 2*12 {
		t.Errorf("ReadInternal used %d clocks, expected at least 24", delta)
	}
}
