package scanchain

import (
	"errors"
	"strings"
	"testing"

	"goofi/internal/bitvec"
)

// TestScanFaultHookCorruptsCapture: a hook that flips a bit models a
// glitched shift — the read reports the corrupted value AND the ReadDR
// restore pass writes it back, so the device ends up holding it too.
func TestScanFaultHookCorruptsCapture(t *testing.T) {
	dev := newFakeDevice()
	dev.internal.Set(3, true)
	dev.internal.Set(7, true)
	want := dev.internal.Clone()

	c := NewController(dev)
	fired := false
	c.SetScanFaultHook(func(v *bitvec.Vector) error {
		if fired {
			return nil
		}
		fired = true
		v.Flip(5)
		return nil
	})
	got, err := c.ReadInternal()
	if err != nil {
		t.Fatal(err)
	}
	want.Flip(5)
	if !got.Equal(want) {
		t.Errorf("read %v, want bit 5 flipped: %v", got, want)
	}
	if !dev.internal.Equal(want) {
		t.Errorf("device holds %v after restore, want the corrupted %v", dev.internal, want)
	}

	// Hook removed: the next read is clean and matches the device again.
	c.SetScanFaultHook(nil)
	got2, err := c.ReadInternal()
	if err != nil {
		t.Fatal(err)
	}
	if !got2.Equal(dev.internal) {
		t.Errorf("clean read %v does not match device %v", got2, dev.internal)
	}
}

// TestScanFaultHookError: a hook error aborts the scan before Update-DR
// and surfaces wrapped with the active instruction.
func TestScanFaultHookError(t *testing.T) {
	dev := newFakeDevice()
	c := NewController(dev)
	boom := errors.New("shift glitched")
	c.SetScanFaultHook(func(*bitvec.Vector) error { return boom })
	_, err := c.ReadInternal()
	if err == nil {
		t.Fatal("hook error did not surface")
	}
	if !errors.Is(err, boom) {
		t.Errorf("error %v does not wrap the hook's", err)
	}
	if !strings.Contains(err.Error(), "scanchain: DR scan") {
		t.Errorf("error %q lacks the scan context", err)
	}
}
