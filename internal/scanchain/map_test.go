package scanchain

import (
	"strings"
	"testing"
)

func validMap() *Map {
	return &Map{
		Chain:  "internal",
		Length: 100,
		Locations: []Location{
			{Name: "cpu.r0", Offset: 0, Width: 32},
			{Name: "cpu.r1", Offset: 32, Width: 32},
			{Name: "cpu.pc", Offset: 64, Width: 32},
			{Name: "cpu.cycle", Offset: 96, Width: 4, ReadOnly: true},
		},
	}
}

func TestMapValidateOK(t *testing.T) {
	if err := validMap().Validate(); err != nil {
		t.Errorf("valid map rejected: %v", err)
	}
}

func TestMapValidateErrors(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Map)
		wantSub string
	}{
		{"zero length", func(m *Map) { m.Length = 0 }, "non-positive length"},
		{"unnamed", func(m *Map) { m.Locations[0].Name = "" }, "unnamed"},
		{"duplicate", func(m *Map) { m.Locations[1].Name = "cpu.r0" }, "duplicate"},
		{"zero width", func(m *Map) { m.Locations[0].Width = 0 }, "non-positive width"},
		{"out of range", func(m *Map) { m.Locations[3].Width = 50 }, "outside chain"},
		{"negative offset", func(m *Map) { m.Locations[0].Offset = -1 }, "outside chain"},
		{"overlap", func(m *Map) { m.Locations[1].Offset = 16 }, "overlaps"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := validMap()
			tt.mutate(m)
			err := m.Validate()
			if err == nil {
				t.Fatal("no error")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q does not contain %q", err, tt.wantSub)
			}
		})
	}
}

func TestMapFind(t *testing.T) {
	m := validMap()
	l, err := m.Find("cpu.pc")
	if err != nil || l.Offset != 64 {
		t.Errorf("Find(cpu.pc) = %+v, %v", l, err)
	}
	if _, err := m.Find("missing"); err == nil {
		t.Error("Find(missing) did not error")
	}
}

func TestMapLocationAt(t *testing.T) {
	m := validMap()
	l, ok := m.LocationAt(40)
	if !ok || l.Name != "cpu.r1" {
		t.Errorf("LocationAt(40) = %+v, %v", l, ok)
	}
	if _, ok := m.LocationAt(99); ok {
		// Bits 96..99 belong to cpu.cycle (width 4): 99 is inside.
		// Correct the expectation: 96+4=100, so 99 IS covered.
		t.Log("LocationAt(99) covered by cpu.cycle as expected")
	}
	if _, ok := m.LocationAt(1000); ok {
		t.Error("LocationAt(1000) found a location")
	}
}

func TestMapWritable(t *testing.T) {
	m := validMap()
	w := m.Writable()
	if len(w) != 3 {
		t.Fatalf("Writable returned %d locations, want 3", len(w))
	}
	for _, l := range w {
		if l.ReadOnly {
			t.Errorf("writable list contains read-only %q", l.Name)
		}
	}
	if m.WritableBits() != 96 {
		t.Errorf("WritableBits = %d, want 96", m.WritableBits())
	}
}

func TestMapSelect(t *testing.T) {
	m := &Map{
		Chain:  "internal",
		Length: 200,
		Locations: []Location{
			{Name: "cpu.r0", Offset: 0, Width: 32},
			{Name: "cpu.pc", Offset: 32, Width: 32},
			{Name: "icache.line0.word0", Offset: 64, Width: 32},
			{Name: "icache.line1.word0", Offset: 96, Width: 32},
			{Name: "dcache.line0.word0", Offset: 128, Width: 32},
		},
	}
	if got := m.Select("cpu"); len(got) != 2 {
		t.Errorf("Select(cpu) = %d locations, want 2", len(got))
	}
	if got := m.Select("icache.line1"); len(got) != 1 || got[0].Name != "icache.line1.word0" {
		t.Errorf("Select(icache.line1) = %+v", got)
	}
	if got := m.Select("cpu.pc"); len(got) != 1 {
		t.Errorf("Select(exact) = %d locations, want 1", len(got))
	}
	if got := m.Select("icache", "dcache"); len(got) != 3 {
		t.Errorf("Select(two prefixes) = %d, want 3", len(got))
	}
	// A prefix must match on segment boundaries: "cpu.r" is not a
	// segment, so it selects nothing.
	if got := m.Select("cpu.r"); len(got) != 0 {
		t.Errorf("Select(cpu.r) = %d, want 0", len(got))
	}
}

func TestMapTree(t *testing.T) {
	m := validMap()
	tree := m.Tree()
	for _, want := range []string{"internal (100 bits)", "cpu/", "r0", "pc", "[read-only]"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
}
