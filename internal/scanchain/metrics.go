package scanchain

import "goofi/internal/telemetry"

// TAP-level counters. ExchangeDRInto is the one funnel every scan goes
// through (ReadDR's double scan counts as two exchanges, matching what
// the wire would see), so two atomic adds there cover the whole chain.
var (
	mExchanges = telemetry.NewCounter("goofi_scanchain_scan_exchanges_total",
		"Completed DR scans (capture + shift + update) through the TAP.")
	mBitsShifted = telemetry.NewCounter("goofi_scanchain_bits_shifted_total",
		"Bits shifted through the scan chain across all DR scans.")
)
