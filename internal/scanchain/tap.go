// Package scanchain implements IEEE 1149.1-style test logic: a TAP
// controller state machine, an instruction register, and boundary/internal
// scan chains over a device. GOOFI's SCIFI technique injects faults by
// shifting device state out through this logic, flipping bits, and shifting
// it back (paper §1, §3.3).
package scanchain

import (
	"fmt"

	"goofi/internal/bitvec"
)

// TAPState is a state of the IEEE 1149.1 TAP controller.
type TAPState int

// The sixteen TAP controller states.
const (
	TestLogicReset TAPState = iota
	RunTestIdle
	SelectDRScan
	CaptureDR
	ShiftDR
	Exit1DR
	PauseDR
	Exit2DR
	UpdateDR
	SelectIRScan
	CaptureIR
	ShiftIR
	Exit1IR
	PauseIR
	Exit2IR
	UpdateIR
)

var tapStateNames = map[TAPState]string{
	TestLogicReset: "Test-Logic-Reset",
	RunTestIdle:    "Run-Test/Idle",
	SelectDRScan:   "Select-DR-Scan",
	CaptureDR:      "Capture-DR",
	ShiftDR:        "Shift-DR",
	Exit1DR:        "Exit1-DR",
	PauseDR:        "Pause-DR",
	Exit2DR:        "Exit2-DR",
	UpdateDR:       "Update-DR",
	SelectIRScan:   "Select-IR-Scan",
	CaptureIR:      "Capture-IR",
	ShiftIR:        "Shift-IR",
	Exit1IR:        "Exit1-IR",
	PauseIR:        "Pause-IR",
	Exit2IR:        "Exit2-IR",
	UpdateIR:       "Update-IR",
}

// String returns the standard state name.
func (s TAPState) String() string {
	if n, ok := tapStateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("TAPState(%d)", int(s))
}

type transitionKey struct {
	s   TAPState
	tms bool
}

// tapTransitions is the IEEE 1149.1 state diagram.
var tapTransitions = buildTransitions()

func buildTransitions() map[transitionKey]TAPState {
	type key = transitionKey
	return map[key]TAPState{
		{TestLogicReset, true}:  TestLogicReset,
		{TestLogicReset, false}: RunTestIdle,
		{RunTestIdle, true}:     SelectDRScan,
		{RunTestIdle, false}:    RunTestIdle,
		{SelectDRScan, true}:    SelectIRScan,
		{SelectDRScan, false}:   CaptureDR,
		{CaptureDR, true}:       Exit1DR,
		{CaptureDR, false}:      ShiftDR,
		{ShiftDR, true}:         Exit1DR,
		{ShiftDR, false}:        ShiftDR,
		{Exit1DR, true}:         UpdateDR,
		{Exit1DR, false}:        PauseDR,
		{PauseDR, true}:         Exit2DR,
		{PauseDR, false}:        PauseDR,
		{Exit2DR, true}:         UpdateDR,
		{Exit2DR, false}:        ShiftDR,
		{UpdateDR, true}:        SelectDRScan,
		{UpdateDR, false}:       RunTestIdle,
		{SelectIRScan, true}:    TestLogicReset,
		{SelectIRScan, false}:   CaptureIR,
		{CaptureIR, true}:       Exit1IR,
		{CaptureIR, false}:      ShiftIR,
		{ShiftIR, true}:         Exit1IR,
		{ShiftIR, false}:        ShiftIR,
		{Exit1IR, true}:         UpdateIR,
		{Exit1IR, false}:        PauseIR,
		{PauseIR, true}:         Exit2IR,
		{PauseIR, false}:        PauseIR,
		{Exit2IR, true}:         UpdateIR,
		{Exit2IR, false}:        ShiftIR,
		{UpdateIR, true}:        SelectDRScan,
		{UpdateIR, false}:       RunTestIdle,
	}
}

// next computes the TAP state transition for one TCK rising edge with the
// given TMS value.
func (s TAPState) next(tms bool) TAPState {
	return tapTransitions[transitionKey{s, tms}]
}

// Instruction is a TAP instruction register code.
type Instruction uint8

// TAP instructions. The instruction register is irWidth bits wide.
const (
	// InstrExtest selects the boundary register and drives its update
	// latches onto the pins (pin-level fault injection).
	InstrExtest Instruction = 0x0
	// InstrSample selects the boundary register for capture without
	// driving pins (observation).
	InstrSample Instruction = 0x1
	// InstrScanReg selects the internal scan chain over the device's
	// state elements (the SCIFI injection path).
	InstrScanReg Instruction = 0x2
	// InstrIDCode selects the 32-bit device identification register.
	InstrIDCode Instruction = 0x3
	// InstrBypass selects the single-bit bypass register. All-ones, as
	// the standard requires.
	InstrBypass Instruction = 0xF
)

const irWidth = 4

// String returns the instruction mnemonic.
func (i Instruction) String() string {
	switch i {
	case InstrExtest:
		return "EXTEST"
	case InstrSample:
		return "SAMPLE"
	case InstrScanReg:
		return "SCANREG"
	case InstrIDCode:
		return "IDCODE"
	case InstrBypass:
		return "BYPASS"
	default:
		return fmt.Sprintf("IR(%#x)", uint8(i))
	}
}

// Device is the circuit behind a TAP: it exposes a boundary register over
// its pins and an internal scan chain over its state elements.
type Device interface {
	// BoundaryLen returns the boundary register length in bits.
	BoundaryLen() int
	// CaptureBoundary samples the pins into a bit vector.
	CaptureBoundary() *bitvec.Vector
	// UpdateBoundary drives boundary register contents onto the pins
	// (EXTEST). Implementations decide which cells are drivable.
	UpdateBoundary(v *bitvec.Vector) error
	// InternalLen returns the internal scan chain length in bits.
	InternalLen() int
	// CaptureInternal captures the internal state elements.
	CaptureInternal() *bitvec.Vector
	// UpdateInternal applies a vector back to the state elements.
	UpdateInternal(v *bitvec.Vector) error
	// IDCode returns the 32-bit JTAG identification code.
	IDCode() uint32
}

// InternalCapturerInto is an optional Device extension: a device that can
// capture its internal chain into a caller-provided vector lets the TAP
// reuse its DR shift register across scans instead of allocating a fresh
// vector per Capture-DR. Hot campaign loops scan the internal chain every
// slice, so this removes the dominant per-scan allocation.
type InternalCapturerInto interface {
	// CaptureInternalInto fills v (length InternalLen) with the internal
	// state elements.
	CaptureInternalInto(v *bitvec.Vector) error
}

// TAP is an IEEE 1149.1 TAP controller bound to a device. Clock advances
// it one TCK rising edge at a time; higher-level sequencing lives in
// Controller. The zero value is unusable; use NewTAP.
type TAP struct {
	dev     Device
	state   TAPState
	ir      Instruction    // active instruction (updated in Update-IR)
	irShift uint8          // IR shift register
	dr      *bitvec.Vector // DR shift register for the active instruction
	clocks  uint64
}

// NewTAP returns a TAP in Test-Logic-Reset with IDCODE selected, as the
// standard requires after reset.
func NewTAP(dev Device) *TAP {
	t := &TAP{dev: dev}
	t.Reset()
	return t
}

// Reset forces the controller into Test-Logic-Reset (equivalent to five
// TCK cycles with TMS high, or asserting TRST).
func (t *TAP) Reset() {
	t.state = TestLogicReset
	t.ir = InstrIDCode
	t.dr = nil
}

// State returns the current controller state.
func (t *TAP) State() TAPState { return t.state }

// ActiveInstruction returns the instruction currently in effect.
func (t *TAP) ActiveInstruction() Instruction { return t.ir }

// Clocks returns the number of TCK cycles applied since construction.
func (t *TAP) Clocks() uint64 { return t.clocks }

// drLen returns the data register length for the active instruction.
func (t *TAP) drLen() int {
	switch t.ir {
	case InstrExtest, InstrSample:
		return t.dev.BoundaryLen()
	case InstrScanReg:
		return t.dev.InternalLen()
	case InstrIDCode:
		return 32
	default:
		return 1 // BYPASS and unknown instructions
	}
}

// Clock applies one TCK rising edge with the given TMS and TDI values and
// returns TDO. TDO carries shift data only while in Shift-DR or Shift-IR,
// matching hardware where TDO is otherwise tri-stated (reads as false).
func (t *TAP) Clock(tms, tdi bool) (tdo bool) {
	t.clocks++
	// Shift happens while in a shift state at the clock edge.
	switch t.state {
	case ShiftDR:
		if t.dr != nil {
			tdo = t.dr.ShiftIn(tdi)
		}
	case ShiftIR:
		tdo = t.irShift&1 != 0
		t.irShift = t.irShift>>1 | boolShift(tdi, irWidth-1)
	}
	prev := t.state
	t.state = prev.next(tms)
	// Entry actions.
	if t.state != prev {
		switch t.state {
		case CaptureDR:
			t.captureDR()
		case UpdateDR:
			t.updateDR()
		case CaptureIR:
			// The standard captures 0b01 in the low bits; with a
			// 4-bit IR we capture 0b0101 for fault visibility.
			t.irShift = 0x5
		case UpdateIR:
			t.ir = Instruction(t.irShift & (1<<irWidth - 1))
		case TestLogicReset:
			t.ir = InstrIDCode
		}
	}
	return tdo
}

// BulkShiftDR applies exactly n = in.Len() Shift-DR clock edges at word
// granularity: the first n-1 with TMS low (staying in Shift-DR), the
// last with TMS high (exiting to Exit1-DR). It requires the controller
// to be in Shift-DR with a data register of the same length, where n
// single Clock calls reduce to "out receives the captured register, the
// register receives in" — observationally identical, including the TCK
// count, but O(n/64) instead of O(n²/64). in and out may alias.
func (t *TAP) BulkShiftDR(in, out *bitvec.Vector) error {
	n := in.Len()
	if t.state != ShiftDR {
		return fmt.Errorf("scanchain: bulk shift in state %v, want Shift-DR", t.state)
	}
	if out.Len() != n {
		return fmt.Errorf("scanchain: bulk shift of %d bits into %d-bit output", n, out.Len())
	}
	if t.dr == nil || t.dr.Len() != n {
		// Degenerate register (BYPASS against a longer stream, or no DR
		// at all): fall back to bit-serial clocking.
		for i := 0; i < n; i++ {
			out.Set(i, t.Clock(i == n-1, in.Get(i)))
		}
		return nil
	}
	if in == out {
		// A full-length exchange through the same vector is a swap with
		// the shift register.
		if err := t.dr.Swap(in); err != nil {
			return err
		}
	} else {
		if err := out.CopyFrom(t.dr); err != nil {
			return err
		}
		if err := t.dr.CopyFrom(in); err != nil {
			return err
		}
	}
	t.clocks += uint64(n)
	t.state = Exit1DR
	return nil
}

func (t *TAP) captureDR() {
	switch t.ir {
	case InstrExtest, InstrSample:
		t.dr = t.dev.CaptureBoundary()
	case InstrScanReg:
		if ci, ok := t.dev.(InternalCapturerInto); ok {
			if t.dr == nil || t.dr.Len() != t.dev.InternalLen() {
				t.dr = bitvec.New(t.dev.InternalLen())
			}
			if err := ci.CaptureInternalInto(t.dr); err != nil {
				panic(fmt.Sprintf("scanchain: SCANREG capture failed: %v", err))
			}
		} else {
			t.dr = t.dev.CaptureInternal()
		}
	case InstrIDCode:
		t.dr = bitvec.FromUint64(uint64(t.dev.IDCode()), 32)
	default:
		t.dr = bitvec.New(1)
	}
}

func (t *TAP) updateDR() {
	if t.dr == nil {
		return
	}
	switch t.ir {
	case InstrExtest:
		// Errors surface through Controller, which validates lengths
		// before driving; a failed update here means a device bug.
		if err := t.dev.UpdateBoundary(t.dr); err != nil {
			panic(fmt.Sprintf("scanchain: EXTEST update failed: %v", err))
		}
	case InstrScanReg:
		if err := t.dev.UpdateInternal(t.dr); err != nil {
			panic(fmt.Sprintf("scanchain: SCANREG update failed: %v", err))
		}
	}
}

func boolShift(b bool, pos int) uint8 {
	if b {
		return 1 << uint(pos)
	}
	return 0
}
