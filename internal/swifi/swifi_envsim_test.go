package swifi

import (
	"context"
	"testing"

	"goofi/internal/campaign"
	"goofi/internal/core"
	"goofi/internal/faultmodel"
	"goofi/internal/sqldb"
	"goofi/internal/thor"
	"goofi/internal/trigger"
	"goofi/internal/workload"
)

// pidSwifiCampaign builds a runtime-SWIFI campaign on the closed-loop PID
// workload, exercising the environment-simulator exchange, iteration
// limits and recovery handlers in the SWIFI target.
func pidSwifiCampaign(t *testing.T, name string, n int, seed int64, hardened bool) *campaign.Campaign {
	t.Helper()
	wl := workload.PID()
	if hardened {
		wl = workload.PIDAssert()
	}
	return &campaign.Campaign{
		Name:           name,
		TargetName:     "thor-swifi-pid",
		ChainName:      MemoryChainName,
		Locations:      []string{"mem"},
		FaultModel:     faultmodel.Spec{Kind: faultmodel.Transient},
		Trigger:        trigger.Spec{Kind: "cycle"},
		RandomWindow:   [2]uint64{100, 4000},
		NumExperiments: n,
		Seed:           seed,
		Termination:    campaign.Termination{TimeoutCycles: 200_000, MaxIterations: 40},
		Workload:       wl,
		EnvSim:         &campaign.EnvSimSpec{Name: "first-order-plant"},
		LogMode:        campaign.LogNormal,
	}
}

func runPIDSwifi(t *testing.T, camp *campaign.Campaign) (*core.Summary, *campaign.Store) {
	t.Helper()
	imgSize, err := ImageSize(camp.Workload.Source)
	if err != nil {
		t.Fatal(err)
	}
	st, err := campaign.NewStore(sqldb.Open())
	if err != nil {
		t.Fatal(err)
	}
	tsd := TargetSystemData("thor-swifi-pid", imgSize)
	if err := st.PutTargetSystem(tsd); err != nil {
		t.Fatal(err)
	}
	if err := st.PutCampaign(camp); err != nil {
		t.Fatal(err)
	}
	tgt := New(thor.DefaultConfig(), Runtime)
	r, err := core.NewRunner(tgt, core.RuntimeSWIFI, camp, tsd, core.WithSink(st))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return sum, st
}

func TestRuntimeSWIFIWithEnvSimulator(t *testing.T) {
	camp := pidSwifiCampaign(t, "swifi-pid", 15, 5, false)
	sum, st := runPIDSwifi(t, camp)
	if sum.Experiments != 15 {
		t.Fatalf("experiments = %d", sum.Experiments)
	}
	// The reference run exchanges data with the plant for exactly 40
	// iterations and completes.
	ref, err := st.GetExperiment(campaign.ReferenceName("swifi-pid"))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Data.Outcome.Status != campaign.OutcomeCompleted {
		t.Fatalf("reference outcome = %+v", ref.Data.Outcome)
	}
	if ref.Data.Outcome.Iterations != 40 {
		t.Errorf("reference iterations = %d, want 40", ref.Data.Outcome.Iterations)
	}
	if len(ref.State.Outputs[workload.PortOut]) != 40 {
		t.Errorf("reference outputs = %d, want 40", len(ref.State.Outputs[workload.PortOut]))
	}
}

func TestRuntimeSWIFIRecoveryHandlers(t *testing.T) {
	camp := pidSwifiCampaign(t, "swifi-pid-h", 15, 9, true)
	sum, st := runPIDSwifi(t, camp)
	if sum.Experiments != 15 {
		t.Fatalf("experiments = %d", sum.Experiments)
	}
	// The hardened workload must at least run its reference cleanly
	// with the handler installed (no assertion halt).
	ref, err := st.GetExperiment(campaign.ReferenceName("swifi-pid-h"))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Data.Outcome.Status != campaign.OutcomeCompleted {
		t.Errorf("hardened reference outcome = %+v", ref.Data.Outcome)
	}
}

func TestImageSizeAndCPUAccessors(t *testing.T) {
	n, err := ImageSize(workload.Sort().Source)
	if err != nil || n == 0 {
		t.Errorf("ImageSize = %d, %v", n, err)
	}
	if _, err := ImageSize("garbage!"); err == nil {
		t.Error("bad source accepted")
	}
	tgt := New(thor.DefaultConfig(), PreRuntime)
	if tgt.CPU() == nil {
		t.Error("CPU accessor returned nil")
	}
}

func TestWordAtBounds(t *testing.T) {
	mem := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	w, err := wordAt(mem, 4)
	if err != nil || w != 0x05060708 {
		t.Errorf("wordAt = %#x, %v", w, err)
	}
	if _, err := wordAt(mem, 6); err == nil {
		t.Error("out-of-bounds word accepted")
	}
}

func TestExtendForFault(t *testing.T) {
	img := []byte{1, 2, 3, 4}
	out := extendForFault(img, []int{0})
	if len(out) != 4 {
		t.Errorf("no-op extend changed length to %d", len(out))
	}
	out = extendForFault(img, []int{100}) // bit 100 = word 3 = bytes [12,16)
	if len(out) != 16 {
		t.Errorf("extended length = %d, want 16", len(out))
	}
	if out[0] != 1 || out[15] != 0 {
		t.Error("extension corrupted or did not zero-fill")
	}
}
