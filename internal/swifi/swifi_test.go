package swifi

import (
	"context"
	"testing"

	"goofi/internal/asm"
	"goofi/internal/campaign"
	"goofi/internal/core"
	"goofi/internal/faultmodel"
	"goofi/internal/sqldb"
	"goofi/internal/thor"
	"goofi/internal/trigger"
	"goofi/internal/workload"
)

func sortImageSize(t *testing.T) int {
	t.Helper()
	prog, err := asm.Assemble(workload.Sort().Source)
	if err != nil {
		t.Fatal(err)
	}
	return len(prog.Image)
}

func swifiCampaign(t *testing.T, name string, n int, seed int64, runtime bool) *campaign.Campaign {
	t.Helper()
	c := &campaign.Campaign{
		Name:           name,
		TargetName:     "thor-swifi",
		ChainName:      MemoryChainName,
		Locations:      []string{"mem"},
		FaultModel:     faultmodel.Spec{Kind: faultmodel.Transient},
		Trigger:        trigger.Spec{Kind: "cycle", Cycle: 1},
		NumExperiments: n,
		Seed:           seed,
		Termination:    campaign.Termination{TimeoutCycles: 100_000},
		Workload:       workload.Sort(),
		LogMode:        campaign.LogNormal,
	}
	if runtime {
		c.RandomWindow = [2]uint64{10, 1600}
	}
	return c
}

func runCampaign(t *testing.T, mode Mode, camp *campaign.Campaign) (*core.Summary, *campaign.Store) {
	t.Helper()
	st, err := campaign.NewStore(sqldb.Open())
	if err != nil {
		t.Fatal(err)
	}
	tsd := TargetSystemData("thor-swifi", sortImageSize(t))
	if err := st.PutTargetSystem(tsd); err != nil {
		t.Fatal(err)
	}
	if err := st.PutCampaign(camp); err != nil {
		t.Fatal(err)
	}
	tgt := New(thor.DefaultConfig(), mode)
	alg := core.PreRuntimeSWIFI
	if mode == Runtime {
		alg = core.RuntimeSWIFI
	}
	r, err := core.NewRunner(tgt, alg, camp, tsd, core.WithSink(st))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return sum, st
}

func TestMemoryMap(t *testing.T) {
	m := MemoryMap(64)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Length != 512 {
		t.Errorf("length = %d, want 512", m.Length)
	}
	loc, err := m.Find("mem.0004")
	if err != nil || loc.Offset != 32 {
		t.Errorf("mem.0004 = %+v, %v", loc, err)
	}
	// Unaligned size rounds up to a whole word.
	if MemoryMap(5).Length != 64 {
		t.Errorf("MemoryMap(5).Length = %d, want 64", MemoryMap(5).Length)
	}
}

func TestReverseByte(t *testing.T) {
	cases := map[byte]byte{0x00: 0x00, 0xFF: 0xFF, 0x80: 0x01, 0x01: 0x80, 0xA5: 0xA5, 0xC3: 0xC3, 0x12: 0x48}
	for in, want := range cases {
		if got := reverseByte(in); got != want {
			t.Errorf("reverseByte(%#02x) = %#02x, want %#02x", in, got, want)
		}
	}
}

func TestPreRuntimeImageMutation(t *testing.T) {
	// Bit 0 of the fault space is the MSB of the word at address 0.
	tgt := New(thor.DefaultConfig(), PreRuntime)
	camp := swifiCampaign(t, "img", 1, 1, false)
	ex := &core.Experiment{
		Campaign: camp, Seq: 0, Name: "img/exp00000",
		Fault: &faultmodel.Fault{Kind: faultmodel.Transient, Bits: []int{0}},
	}
	if err := tgt.InitTestCard(ex); err != nil {
		t.Fatal(err)
	}
	if err := tgt.LoadWorkload(ex); err != nil {
		t.Fatal(err)
	}
	orig := tgt.image[0]
	if err := tgt.InjectFault(ex); err != nil {
		t.Fatal(err)
	}
	if tgt.image[0] != orig^0x80 {
		t.Errorf("image[0] = %#02x, want %#02x (MSB flip)", tgt.image[0], orig^0x80)
	}
}

func TestPreRuntimeCampaign(t *testing.T) {
	sum, st := runCampaign(t, PreRuntime, swifiCampaign(t, "pre", 40, 9, false))
	if sum.Experiments != 40 || sum.Injected != 40 {
		t.Fatalf("summary = %+v", sum)
	}
	// Image bit-flips frequently corrupt instructions: expect a healthy
	// share of detections (illegal opcode etc.) plus completed runs.
	if sum.ByStatus[campaign.OutcomeDetected] == 0 {
		t.Errorf("no detections from 40 code-image flips: %+v", sum.ByStatus)
	}
	recs, err := st.Experiments("pre")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 41 {
		t.Errorf("records = %d", len(recs))
	}
}

func TestRuntimeCampaign(t *testing.T) {
	sum, _ := runCampaign(t, Runtime, swifiCampaign(t, "rt", 30, 17, true))
	if sum.Experiments != 30 {
		t.Fatalf("summary = %+v", sum)
	}
	total := 0
	for _, n := range sum.ByStatus {
		total += n
	}
	if total != 30 {
		t.Errorf("status total = %d", total)
	}
}

func TestRuntimeInjectionTimingRecorded(t *testing.T) {
	camp := swifiCampaign(t, "timing", 10, 23, true)
	_, st := runCampaign(t, Runtime, camp)
	recs, err := st.Experiments("timing")
	if err != nil {
		t.Fatal(err)
	}
	sawInjection := false
	for _, rec := range recs {
		if rec.IsReference() {
			continue
		}
		if rec.Data.Injected && rec.Data.InjectionCycle > 0 {
			sawInjection = true
		}
	}
	if !sawInjection {
		t.Error("no runtime injection recorded a cycle")
	}
}

func TestSWIFIDeterminism(t *testing.T) {
	outcomes := func() map[campaign.OutcomeStatus]int {
		sum, _ := runCampaign(t, PreRuntime, swifiCampaign(t, "d", 20, 5, false))
		return sum.ByStatus
	}
	a, b := outcomes(), outcomes()
	for k, v := range a {
		if b[k] != v {
			t.Errorf("status %v: %d vs %d", k, v, b[k])
		}
	}
}

func TestPreRuntimeDoesNotWaitForBreakpoint(t *testing.T) {
	tgt := New(thor.DefaultConfig(), PreRuntime)
	if err := tgt.WaitForBreakpoint(&core.Experiment{}); err == nil {
		t.Error("pre-runtime WaitForBreakpoint did not error")
	}
}
