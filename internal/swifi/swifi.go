// Package swifi implements software implemented fault injection targets
// for THOR-S: pre-runtime SWIFI, where "faults are injected into the
// program and data areas of the target system before it starts to execute"
// (paper §1), and runtime SWIFI, where the workload is stopped at a
// trigger point and the fault is applied through software (a paper §4
// extension).
//
// Unlike SCIFI, SWIFI reaches only memory — registers, flags and cache
// state are inaccessible. The comparison between the two fault spaces is
// exactly the point of the E3 experiment.
package swifi

import (
	"fmt"

	"goofi/internal/asm"
	"goofi/internal/bitvec"
	"goofi/internal/campaign"
	"goofi/internal/core"
	"goofi/internal/envsim"
	"goofi/internal/scanchain"
	"goofi/internal/thor"
	"goofi/internal/trigger"
)

// MemoryChainName is the pseudo scan-chain name exposing target memory as
// a fault location space for SWIFI campaigns.
const MemoryChainName = "memory"

// Mode selects pre-runtime or runtime injection.
type Mode int

// SWIFI modes.
const (
	// PreRuntime mutates the workload image before download.
	PreRuntime Mode = iota
	// Runtime stops the workload at the trigger point and mutates
	// memory in place.
	Runtime
)

// Target is the THOR-S SWIFI target system interface. The fault space is
// the workload image: fault bit offsets index into memory starting at
// address 0, bit 0 being the MSB of the word at address 0 (matching the
// big-endian memory layout exposed in MemoryMap).
type Target struct {
	core.Framework

	cfg  thor.Config
	mode Mode
	cpu  *thor.CPU
	envs *envsim.Registry

	prog             *asm.Program
	image            []byte
	trig             trigger.Trigger
	sim              envsim.Simulator
	iteration        int
	atInjectionPoint bool
}

// New returns a SWIFI target in the given mode.
func New(cfg thor.Config, mode Mode) *Target {
	name := "thor-s-swifi-preruntime"
	if mode == Runtime {
		name = "thor-s-swifi-runtime"
	}
	return &Target{
		Framework: core.Framework{TargetName: name},
		cfg:       cfg,
		mode:      mode,
		cpu:       thor.New(cfg),
		envs:      envsim.NewRegistry(),
	}
}

// CPU exposes the processor for tests.
func (t *Target) CPU() *thor.CPU { return t.cpu }

// ImageSize returns the assembled size of a workload source, for sizing
// the SWIFI fault space.
func ImageSize(source string) (int, error) {
	prog, err := asm.AssembleCached(source)
	if err != nil {
		return 0, err
	}
	return len(prog.Image), nil
}

// MemoryMap builds the SWIFI fault-location map over an image of the
// given size: one location per 32-bit word, named mem.<hexaddr>.
func MemoryMap(imageBytes int) scanchain.Map {
	words := (imageBytes + 3) / 4
	m := scanchain.Map{Chain: MemoryChainName, Length: words * 32}
	for w := 0; w < words; w++ {
		m.Locations = append(m.Locations, scanchain.Location{
			Name:   fmt.Sprintf("mem.%04x", w*4),
			Offset: w * 32,
			Width:  32,
		})
	}
	return m
}

// TargetSystemData returns the configuration-phase record for a SWIFI
// target over an image of the given size.
func TargetSystemData(name string, imageBytes int) *campaign.TargetSystemData {
	return &campaign.TargetSystemData{
		Name:         name,
		TestCardName: "thor-s-swifi-monitor",
		Chains:       []scanchain.Map{MemoryMap(imageBytes)},
		Description:  "THOR-S board accessed via software implemented fault injection",
	}
}

// InitTestCard resets the board and per-experiment state.
func (t *Target) InitTestCard(ex *core.Experiment) error {
	t.cpu.Reset()
	t.cpu.ClearMemory()
	t.cpu.TraceHook = nil
	t.prog = nil
	t.image = nil
	t.trig = nil
	t.sim = nil
	t.iteration = 0
	t.atInjectionPoint = false
	return nil
}

// LoadWorkload assembles the workload into a host-side image.
func (t *Target) LoadWorkload(ex *core.Experiment) error {
	prog, err := asm.AssembleCached(ex.Campaign.Workload.Source)
	if err != nil {
		return fmt.Errorf("swifi: assemble workload: %w", err)
	}
	t.prog = prog
	t.image = make([]byte, len(prog.Image))
	copy(t.image, prog.Image)
	return nil
}

// InjectFault applies the fault. In pre-runtime mode it mutates the
// host-side image (called before WriteMemory); in runtime mode it mutates
// target memory in place (called after WaitForBreakpoint).
func (t *Target) InjectFault(ex *core.Experiment) error {
	if ex.Fault == nil {
		return nil
	}
	switch t.mode {
	case PreRuntime:
		if t.image == nil {
			return fmt.Errorf("swifi: InjectFault before LoadWorkload")
		}
		// The configured fault space may extend past the assembled
		// image: the "program and data areas" include memory the
		// program only writes at run time. Zero-extend to cover it.
		t.image = extendForFault(t.image, ex.Fault.Bits)
		if err := applyToBytes(ex, t.image); err != nil {
			return err
		}
	case Runtime:
		if !t.atInjectionPoint {
			// The workload terminated before the trigger fired; the
			// fault's time point never occurred.
			return nil
		}
		// Read-modify-write the affected words in target memory.
		span := len(extendForFault(t.image, ex.Fault.Bits))
		mem, err := t.cpu.ReadMemory(0, span)
		if err != nil {
			return err
		}
		if err := applyToBytes(ex, mem); err != nil {
			return err
		}
		if err := t.cpu.LoadMemory(0, mem); err != nil {
			return err
		}
		// Keep caches coherent word by word for the touched bits, as a
		// debug-monitor write would (runtime SWIFI goes through the
		// memory system).
		for _, b := range ex.Fault.Bits {
			addr := uint32(b/32) * 4
			w, err := wordAt(mem, addr)
			if err != nil {
				return err
			}
			if err := t.cpu.WriteWord32(addr, w); err != nil {
				return err
			}
		}
		ex.InjectionCycle = t.cpu.Cycle()
	}
	ex.Injected = true
	return nil
}

// extendForFault zero-extends an image so every fault bit maps to a byte.
func extendForFault(image []byte, bits []int) []byte {
	need := len(image)
	for _, b := range bits {
		if n := (b/32 + 1) * 4; n > need {
			need = n
		}
	}
	if need > len(image) {
		image = append(image, make([]byte, need-len(image))...)
	}
	return image
}

// applyToBytes applies the fault to a byte image using the MemoryMap bit
// layout (bit 0 of a location = MSB of the word, matching big-endian
// memory).
func applyToBytes(ex *core.Experiment, image []byte) error {
	if err := ex.Fault.Validate(len(image) * 8); err != nil {
		return err
	}
	v := bitvec.New(len(image) * 8)
	for i, by := range image {
		v.SetUint64(i*8, 8, uint64(reverseByte(by)))
	}
	ex.Fault.Apply(v, ex.RNG)
	for i := range image {
		image[i] = reverseByte(byte(v.Uint64(i*8, 8)))
	}
	return nil
}

// reverseByte mirrors bit order so that bit offset 0 of the fault space is
// the most significant bit of byte 0.
func reverseByte(b byte) byte {
	b = b>>4 | b<<4
	b = b>>2&0x33 | b<<2&0xCC
	b = b>>1&0x55 | b<<1&0xAA
	return b
}

func wordAt(mem []byte, addr uint32) (uint32, error) {
	if int(addr)+4 > len(mem) {
		return 0, fmt.Errorf("swifi: word at %#x outside image", addr)
	}
	return uint32(mem[addr])<<24 | uint32(mem[addr+1])<<16 |
		uint32(mem[addr+2])<<8 | uint32(mem[addr+3]), nil
}

// WriteMemory downloads the (possibly mutated) image and initial inputs.
func (t *Target) WriteMemory(ex *core.Experiment) error {
	if t.image == nil {
		return fmt.Errorf("swifi: WriteMemory before LoadWorkload")
	}
	if err := t.cpu.LoadMemory(0, t.image); err != nil {
		return err
	}
	wl := &ex.Campaign.Workload
	for code, symbol := range wl.RecoveryHandlers {
		addr, err := t.prog.Symbol(symbol)
		if err != nil {
			return fmt.Errorf("swifi: recovery handler: %w", err)
		}
		t.cpu.SetTrapHandler(code, addr)
	}
	if ex.Campaign.EnvSim != nil {
		sim, err := t.envs.New(ex.Campaign.EnvSim.Name, ex.Campaign.EnvSim.Params)
		if err != nil {
			return err
		}
		t.sim = sim
		t.cpu.Ports().PushInput(wl.InputPort, sim.Exchange(nil)...)
	}
	return nil
}

// RunWorkload arms the trigger (runtime mode) and the detail hook.
func (t *Target) RunWorkload(ex *core.Experiment) error {
	if t.mode == Runtime && !ex.IsReference() {
		trig, err := ex.Trigger.Build()
		if err != nil {
			return err
		}
		trig.Reset()
		t.trig = trig
	}
	return nil
}

// WaitForBreakpoint runs to the injection point (runtime mode only).
func (t *Target) WaitForBreakpoint(ex *core.Experiment) error {
	if t.mode != Runtime {
		return fmt.Errorf("swifi: WaitForBreakpoint in pre-runtime mode")
	}
	if t.trig == nil {
		return fmt.Errorf("swifi: WaitForBreakpoint before RunWorkload")
	}
	budget := ex.Campaign.Termination.TimeoutCycles
	for {
		fired, st := trigger.RunUntil(t.cpu, t.trig, budget-minU64(budget, t.cpu.Cycle()))
		if fired {
			ex.InjectionCycle = t.cpu.Cycle()
			t.atInjectionPoint = true
			return nil
		}
		if st == thor.StatusIterationEnd {
			if err := t.exchange(ex); err != nil {
				return err
			}
			continue
		}
		return nil
	}
}

func (t *Target) exchange(ex *core.Experiment) error {
	wl := &ex.Campaign.Workload
	outs := t.cpu.Ports().DrainOutput(wl.OutputPort)
	if ex.Result.Outputs == nil {
		ex.Result.Outputs = make(map[uint16][]uint32)
	}
	ex.Result.Outputs[wl.OutputPort] = append(ex.Result.Outputs[wl.OutputPort], outs...)
	if t.sim != nil {
		t.cpu.Ports().PushInput(wl.InputPort, t.sim.Exchange(outs)...)
	}
	t.iteration++
	return t.cpu.ResumeIteration()
}

// WaitForTermination runs to a termination condition (paper §3.2).
func (t *Target) WaitForTermination(ex *core.Experiment) error {
	term := ex.Campaign.Termination
	for {
		if t.cpu.Cycle() >= term.TimeoutCycles {
			t.finish(ex, campaign.OutcomeTimeout, nil)
			return nil
		}
		st := t.cpu.Run(term.TimeoutCycles - t.cpu.Cycle())
		switch st {
		case thor.StatusHalted:
			t.finish(ex, campaign.OutcomeCompleted, nil)
			return nil
		case thor.StatusDetected:
			t.finish(ex, campaign.OutcomeDetected, t.cpu.Detection())
			return nil
		case thor.StatusIterationEnd:
			if term.MaxIterations > 0 && t.iteration+1 >= term.MaxIterations {
				wl := &ex.Campaign.Workload
				outs := t.cpu.Ports().DrainOutput(wl.OutputPort)
				if ex.Result.Outputs == nil {
					ex.Result.Outputs = make(map[uint16][]uint32)
				}
				ex.Result.Outputs[wl.OutputPort] = append(ex.Result.Outputs[wl.OutputPort], outs...)
				t.iteration++
				t.finish(ex, campaign.OutcomeCompleted, nil)
				return nil
			}
			if err := t.exchange(ex); err != nil {
				return err
			}
		case thor.StatusOutOfBudget:
			if err := t.cpu.ClearOutOfBudget(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("swifi: unexpected status %v", st)
		}
	}
}

func (t *Target) finish(ex *core.Experiment, status campaign.OutcomeStatus, det *thor.Detection) {
	out := campaign.Outcome{Status: status, Cycles: t.cpu.Cycle(), Iterations: t.iteration}
	if det != nil {
		out.Mechanism = det.Mechanism.String()
		out.DetectionCycle = det.Cycle
	}
	for _, ev := range t.cpu.Events() {
		if ev.Mechanism == thor.EDMAssertion && (det == nil || ev.Cycle != det.Cycle) {
			out.Recovered++
		}
	}
	wl := &ex.Campaign.Workload
	outs := t.cpu.Ports().DrainOutput(wl.OutputPort)
	if len(outs) > 0 {
		if ex.Result.Outputs == nil {
			ex.Result.Outputs = make(map[uint16][]uint32)
		}
		ex.Result.Outputs[wl.OutputPort] = append(ex.Result.Outputs[wl.OutputPort], outs...)
	}
	ex.Result.Outcome = out
}

// ReadMemory reads back the result symbols.
func (t *Target) ReadMemory(ex *core.Experiment) error {
	if t.prog == nil {
		return fmt.Errorf("swifi: ReadMemory before LoadWorkload")
	}
	wl := &ex.Campaign.Workload
	words := wl.ResultWords
	if words <= 0 {
		words = 1
	}
	if ex.Result.Memory == nil {
		ex.Result.Memory = make(map[string][]byte, len(wl.ResultSymbols))
	}
	for _, sym := range wl.ResultSymbols {
		addr, err := t.prog.Symbol(sym)
		if err != nil {
			return fmt.Errorf("swifi: result symbol: %w", err)
		}
		b, err := t.cpu.ReadMemory(addr, words*4)
		if err != nil {
			return err
		}
		ex.Result.Memory[sym] = b
	}
	return nil
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// Interface compliance.
var _ core.TargetSystem = (*Target)(nil)
