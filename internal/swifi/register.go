package swifi

import (
	"fmt"
	"strconv"

	"goofi/internal/campaign"
	"goofi/internal/core"
	"goofi/internal/thor"
)

// Deterministic: thor-backed targets keep the byte-identity guarantee.
func (t *Target) Deterministic() bool { return true }

// imageBytes reads the swifi fault-space size from target params.
func imageBytes(cfg core.TargetConfig) (int, error) {
	s := cfg.Param("image-bytes", "4096")
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("swifi: bad image-bytes %q", s)
	}
	return n, nil
}

func systemData(name string, cfg core.TargetConfig) (*campaign.TargetSystemData, error) {
	n, err := imageBytes(cfg)
	if err != nil {
		return nil, err
	}
	return TargetSystemData(name, n), nil
}

func init() {
	core.RegisterTarget(core.TargetInfo{
		Kind: "swifi-preruntime",
		// "swifi" is the legacy configure/submit kind; it keeps meaning
		// the pre-runtime variant.
		Aliases:       []string{"swifi"},
		Description:   "THOR-S simulated board, faults written into the image before execution",
		Algorithm:     core.PreRuntimeSWIFI.Name,
		Deterministic: true,
		New: func(cfg core.TargetConfig) (core.TargetSystem, error) {
			return New(thor.DefaultConfig(), PreRuntime), nil
		},
		SystemData: systemData,
	})
	core.RegisterTarget(core.TargetInfo{
		Kind:          "swifi-runtime",
		Description:   "THOR-S simulated board, memory mutated in place at the trigger point",
		Algorithm:     core.RuntimeSWIFI.Name,
		Deterministic: true,
		New: func(cfg core.TargetConfig) (core.TargetSystem, error) {
			return New(thor.DefaultConfig(), Runtime), nil
		},
		SystemData: systemData,
	})
}
