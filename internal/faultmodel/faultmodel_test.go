package faultmodel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"goofi/internal/bitvec"
	"goofi/internal/scanchain"
)

func space(t *testing.T) *Space {
	t.Helper()
	s, err := NewSpace([]scanchain.Location{
		{Name: "r0", Offset: 0, Width: 32},
		{Name: "r1", Offset: 32, Width: 32},
		{Name: "pc", Offset: 64, Width: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTransientApply(t *testing.T) {
	v := bitvec.New(96)
	f := Fault{Kind: Transient, Bits: []int{3, 40}}
	f.Apply(v, rand.New(rand.NewSource(1)))
	if !v.Get(3) || !v.Get(40) || v.PopCount() != 2 {
		t.Errorf("after transient: %v", v.OnesPositions())
	}
	// A second apply (should not happen for transient, but must be
	// well-defined) flips back.
	f.Apply(v, rand.New(rand.NewSource(1)))
	if v.PopCount() != 0 {
		t.Errorf("double transient apply left bits: %v", v.OnesPositions())
	}
}

func TestStuckAtApply(t *testing.T) {
	v := bitvec.New(8)
	v.Set(1, true)
	f0 := Fault{Kind: StuckAt0, Bits: []int{1}}
	f0.Apply(v, nil)
	if v.Get(1) {
		t.Error("stuck-at-0 did not clear bit")
	}
	f1 := Fault{Kind: StuckAt1, Bits: []int{7}}
	f1.Apply(v, nil)
	f1.Apply(v, nil) // idempotent
	if !v.Get(7) || v.PopCount() != 1 {
		t.Errorf("stuck-at-1 state: %v", v.OnesPositions())
	}
	if !f0.Kind.Persistent() || !f1.Kind.Persistent() {
		t.Error("stuck-at models must be persistent")
	}
	if Transient.Persistent() {
		t.Error("transient must not be persistent")
	}
}

func TestIntermittentActivation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := Fault{Kind: Intermittent, Bits: []int{0}, ActiveProb: 0.5}
	flips := 0
	v := bitvec.New(1)
	last := false
	for i := 0; i < 1000; i++ {
		f.Apply(v, rng)
		if v.Get(0) != last {
			flips++
			last = v.Get(0)
		}
	}
	if flips < 400 || flips > 600 {
		t.Errorf("intermittent flipped %d/1000 times at p=0.5", flips)
	}
}

func TestFaultValidate(t *testing.T) {
	tests := []struct {
		name string
		f    Fault
		ok   bool
	}{
		{"good transient", Fault{Kind: Transient, Bits: []int{0}}, true},
		{"bad kind", Fault{Kind: "cosmic", Bits: []int{0}}, false},
		{"no bits", Fault{Kind: Transient}, false},
		{"bit out of range", Fault{Kind: Transient, Bits: []int{96}}, false},
		{"negative bit", Fault{Kind: Transient, Bits: []int{-1}}, false},
		{"intermittent no prob", Fault{Kind: Intermittent, Bits: []int{0}}, false},
		{"intermittent good", Fault{Kind: Intermittent, Bits: []int{0}, ActiveProb: 0.3}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.f.Validate(96)
			if (err == nil) != tt.ok {
				t.Errorf("Validate = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestSpecValidate(t *testing.T) {
	good := Spec{Kind: Transient, Multiplicity: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
	for _, bad := range []Spec{
		{Kind: "x"},
		{Kind: Transient, Multiplicity: -1},
		{Kind: Intermittent},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("bad spec %+v accepted", bad)
		}
	}
}

func TestNewSpaceRejectsReadOnly(t *testing.T) {
	_, err := NewSpace([]scanchain.Location{{Name: "cycle", Offset: 0, Width: 8, ReadOnly: true}})
	if err == nil {
		t.Error("read-only location accepted")
	}
	if _, err := NewSpace(nil); err == nil {
		t.Error("empty space accepted")
	}
}

func TestSpaceBitMapping(t *testing.T) {
	s := space(t)
	if s.Bits() != 96 {
		t.Fatalf("Bits = %d, want 96", s.Bits())
	}
	off, loc := s.bitAt(0)
	if off != 0 || loc.Name != "r0" {
		t.Errorf("bitAt(0) = %d %s", off, loc.Name)
	}
	off, loc = s.bitAt(35)
	if off != 35 || loc.Name != "r1" {
		t.Errorf("bitAt(35) = %d %s", off, loc.Name)
	}
	if l, ok := s.LocationOf(70); !ok || l.Name != "pc" {
		t.Errorf("LocationOf(70) = %v %v", l, ok)
	}
	if _, ok := s.LocationOf(1000); ok {
		t.Error("LocationOf(1000) found a location")
	}
}

func TestSpaceBitMappingNonContiguous(t *testing.T) {
	// Locations need not be adjacent in the chain.
	s, err := NewSpace([]scanchain.Location{
		{Name: "a", Offset: 100, Width: 4},
		{Name: "b", Offset: 300, Width: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	off, loc := s.bitAt(5)
	if off != 301 || loc.Name != "b" {
		t.Errorf("bitAt(5) = %d %s, want 301 b", off, loc.Name)
	}
}

func TestSampleUniformCoverage(t *testing.T) {
	s := space(t)
	rng := rand.New(rand.NewSource(7))
	spec := &Spec{Kind: Transient}
	hits := make(map[int]int)
	for i := 0; i < 9600; i++ {
		f, err := s.Sample(spec, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(f.Bits) != 1 {
			t.Fatalf("multiplicity = %d", len(f.Bits))
		}
		hits[f.Bits[0]]++
	}
	// Every bit should be hit roughly 100 times; allow a wide band.
	for b := 0; b < 96; b++ {
		if hits[b] < 50 || hits[b] > 200 {
			t.Errorf("bit %d hit %d times, expected ~100", b, hits[b])
		}
	}
}

func TestSampleMultiplicityDistinctBits(t *testing.T) {
	s := space(t)
	rng := rand.New(rand.NewSource(3))
	spec := &Spec{Kind: Transient, Multiplicity: 5}
	for i := 0; i < 100; i++ {
		f, err := s.Sample(spec, rng)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int]bool)
		for _, b := range f.Bits {
			if seen[b] {
				t.Fatalf("duplicate bit %d in multi-bit fault", b)
			}
			seen[b] = true
		}
	}
}

func TestSampleMultiplicityTooLarge(t *testing.T) {
	s, err := NewSpace([]scanchain.Location{{Name: "x", Offset: 0, Width: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sample(&Spec{Kind: Transient, Multiplicity: 4}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("oversized multiplicity accepted")
	}
}

func TestSamplePlanDeterminism(t *testing.T) {
	s := space(t)
	spec := &Spec{Kind: Transient, Multiplicity: 2}
	p1, err := s.SamplePlan(spec, 50, 99)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.SamplePlan(spec, 50, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if len(p1[i].Bits) != len(p2[i].Bits) {
			t.Fatalf("plan %d lengths differ", i)
		}
		for j := range p1[i].Bits {
			if p1[i].Bits[j] != p2[i].Bits[j] {
				t.Fatalf("plans diverge at %d.%d", i, j)
			}
		}
	}
	p3, err := s.SamplePlan(spec, 50, 100)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range p1 {
		for j := range p1[i].Bits {
			if p1[i].Bits[j] != p3[i].Bits[j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical plans")
	}
	if _, err := s.SamplePlan(spec, 0, 1); err == nil {
		t.Error("zero-experiment plan accepted")
	}
}

// Property: sampled faults always validate against the chain length.
func TestPropertySampledFaultsValid(t *testing.T) {
	s := space(t)
	f := func(seed int64, multRaw uint8) bool {
		mult := int(multRaw)%8 + 1
		rng := rand.New(rand.NewSource(seed))
		fault, err := s.Sample(&Spec{Kind: Transient, Multiplicity: mult}, rng)
		if err != nil {
			return false
		}
		return fault.Validate(96) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: applying a transient fault changes exactly the selected bits.
func TestPropertyTransientChangesExactlySelectedBits(t *testing.T) {
	s := space(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fault, err := s.Sample(&Spec{Kind: Transient, Multiplicity: 3}, rng)
		if err != nil {
			return false
		}
		v := bitvec.New(96)
		for i := 0; i < 96; i++ {
			v.Set(i, rng.Intn(2) == 1)
		}
		orig := v.Clone()
		fault.Apply(v, rng)
		diff, err := orig.Xor(v)
		if err != nil {
			return false
		}
		return diff.PopCount() == 3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
