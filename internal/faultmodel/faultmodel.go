// Package faultmodel defines the fault models GOOFI can inject — transient
// bit-flips (single and multiple), permanent stuck-at faults, and
// intermittent faults — together with seeded sampling of fault locations
// and injection times for a campaign. The paper's tool "is capable of
// injecting single or multiple transient bit-flip faults" (§1) and lists
// intermittent and permanent models as extensions (§4); all three are
// implemented here.
package faultmodel

import (
	"fmt"
	"math/rand"

	"goofi/internal/bitvec"
	"goofi/internal/scanchain"
)

// Kind identifies a fault model.
type Kind string

// Supported fault models.
const (
	// Transient flips the selected bits once at injection time.
	Transient Kind = "transient"
	// StuckAt0 forces the selected bits to zero for the rest of the
	// experiment (reasserted at every reassertion point).
	StuckAt0 Kind = "stuck-at-0"
	// StuckAt1 forces the selected bits to one for the rest of the
	// experiment.
	StuckAt1 Kind = "stuck-at-1"
	// Intermittent flips the selected bits at each reassertion point
	// with probability ActiveProb, modelling a marginal component.
	Intermittent Kind = "intermittent"
)

// Valid reports whether k names a supported model.
func (k Kind) Valid() bool {
	switch k {
	case Transient, StuckAt0, StuckAt1, Intermittent:
		return true
	}
	return false
}

// Persistent reports whether the model must be reasserted during the
// experiment rather than applied once.
func (k Kind) Persistent() bool { return k == StuckAt0 || k == StuckAt1 || k == Intermittent }

// Fault is one concrete fault: a model applied to specific bits of a scan
// chain (or of a memory word, for SWIFI).
type Fault struct {
	Kind Kind `json:"kind"`
	// Bits are absolute bit offsets within the target vector.
	Bits []int `json:"bits"`
	// ActiveProb is the per-reassertion activation probability for
	// intermittent faults.
	ActiveProb float64 `json:"activeProb,omitempty"`
}

// Validate checks the fault is well-formed for a vector of n bits.
func (f *Fault) Validate(n int) error {
	if !f.Kind.Valid() {
		return fmt.Errorf("faultmodel: unknown kind %q", f.Kind)
	}
	if len(f.Bits) == 0 {
		return fmt.Errorf("faultmodel: fault has no target bits")
	}
	for _, b := range f.Bits {
		if b < 0 || b >= n {
			return fmt.Errorf("faultmodel: bit %d outside vector of %d bits", b, n)
		}
	}
	if f.Kind == Intermittent && (f.ActiveProb <= 0 || f.ActiveProb > 1) {
		return fmt.Errorf("faultmodel: intermittent fault needs activeProb in (0,1], got %g", f.ActiveProb)
	}
	return nil
}

// Apply mutates v according to the model. For persistent models Apply is
// called at injection time and again at every reassertion point; rng
// drives intermittent activation and must be the experiment's seeded
// generator for replayability.
func (f *Fault) Apply(v *bitvec.Vector, rng *rand.Rand) {
	switch f.Kind {
	case Transient:
		for _, b := range f.Bits {
			v.Flip(b)
		}
	case StuckAt0:
		for _, b := range f.Bits {
			v.Set(b, false)
		}
	case StuckAt1:
		for _, b := range f.Bits {
			v.Set(b, true)
		}
	case Intermittent:
		for _, b := range f.Bits {
			if rng.Float64() < f.ActiveProb {
				v.Flip(b)
			}
		}
	}
}

// String renders the fault compactly for experiment logs.
func (f *Fault) String() string {
	return fmt.Sprintf("%s@bits%v", f.Kind, f.Bits)
}

// Spec is the serializable fault model selection made in the set-up phase
// (paper Fig 6): which model, how many bits per fault (multiplicity), and
// the intermittent activation probability.
type Spec struct {
	Kind         Kind    `json:"kind"`
	Multiplicity int     `json:"multiplicity"` // bits flipped per fault (default 1)
	ActiveProb   float64 `json:"activeProb,omitempty"`
}

// Validate checks the spec.
func (s *Spec) Validate() error {
	if !s.Kind.Valid() {
		return fmt.Errorf("faultmodel: unknown kind %q", s.Kind)
	}
	if s.Multiplicity < 0 {
		return fmt.Errorf("faultmodel: negative multiplicity %d", s.Multiplicity)
	}
	if s.Kind == Intermittent && (s.ActiveProb <= 0 || s.ActiveProb > 1) {
		return fmt.Errorf("faultmodel: intermittent spec needs activeProb in (0,1], got %g", s.ActiveProb)
	}
	return nil
}

func (s *Spec) multiplicity() int {
	if s.Multiplicity <= 0 {
		return 1
	}
	return s.Multiplicity
}

// Space is the set of injectable bits, derived from the scan-chain
// locations the user selected in the set-up phase.
type Space struct {
	locations []scanchain.Location
	total     int
}

// NewSpace builds a sampling space from writable locations. Read-only
// locations are rejected: the configuration phase marks them observable
// only (paper §3.1).
func NewSpace(locs []scanchain.Location) (*Space, error) {
	if len(locs) == 0 {
		return nil, fmt.Errorf("faultmodel: empty location set")
	}
	total := 0
	for _, l := range locs {
		if l.ReadOnly {
			return nil, fmt.Errorf("faultmodel: location %q is read-only and cannot be injected", l.Name)
		}
		if l.Width <= 0 {
			return nil, fmt.Errorf("faultmodel: location %q has non-positive width", l.Name)
		}
		total += l.Width
	}
	return &Space{locations: locs, total: total}, nil
}

// Bits returns the total number of injectable bits.
func (s *Space) Bits() int { return s.total }

// Locations returns the locations of the space.
func (s *Space) Locations() []scanchain.Location { return s.locations }

// bitAt maps a flat index in [0, Bits()) to an absolute chain offset.
func (s *Space) bitAt(i int) (offset int, loc scanchain.Location) {
	for _, l := range s.locations {
		if i < l.Width {
			return l.Offset + i, l
		}
		i -= l.Width
	}
	panic(fmt.Sprintf("faultmodel: bit index %d outside space of %d bits", i, s.total))
}

// LocationOf returns the location containing an absolute chain offset, if
// it belongs to the space.
func (s *Space) LocationOf(offset int) (scanchain.Location, bool) {
	for _, l := range s.locations {
		if offset >= l.Offset && offset < l.End() {
			return l, true
		}
	}
	return scanchain.Location{}, false
}

// Sample draws one fault according to the spec, uniformly over the space
// without replacement within the fault (multi-bit faults hit distinct
// bits).
func (s *Space) Sample(spec *Spec, rng *rand.Rand) (Fault, error) {
	if err := spec.Validate(); err != nil {
		return Fault{}, err
	}
	m := spec.multiplicity()
	if m > s.total {
		return Fault{}, fmt.Errorf("faultmodel: multiplicity %d exceeds space of %d bits", m, s.total)
	}
	chosen := make(map[int]bool, m)
	bits := make([]int, 0, m)
	for len(bits) < m {
		idx := rng.Intn(s.total)
		if chosen[idx] {
			continue
		}
		chosen[idx] = true
		off, _ := s.bitAt(idx)
		bits = append(bits, off)
	}
	return Fault{Kind: spec.Kind, Bits: bits, ActiveProb: spec.ActiveProb}, nil
}

// SamplePlan draws n faults deterministically from a seed: the campaign's
// injection plan. Replaying the same seed yields the same plan, which is
// what makes experiments repeatable (paper §2.3: re-running an experiment
// with the same campaign data).
func (s *Space) SamplePlan(spec *Spec, n int, seed int64) ([]Fault, error) {
	if n <= 0 {
		return nil, fmt.Errorf("faultmodel: plan needs a positive experiment count, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Fault, 0, n)
	for i := 0; i < n; i++ {
		f, err := s.Sample(spec, rng)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}
