package preinject

import (
	"context"
	"testing"

	"goofi/internal/campaign"
	"goofi/internal/core"
	"goofi/internal/faultmodel"
	"goofi/internal/scifi"
	"goofi/internal/sqldb"
	"goofi/internal/thor"
	"goofi/internal/trigger"
	"goofi/internal/workload"
)

func sortCampaign(name string, n int, seed int64) *campaign.Campaign {
	return &campaign.Campaign{
		Name:           name,
		TargetName:     "thor-board",
		ChainName:      "internal",
		Locations:      []string{"cpu.r0", "cpu.r1", "cpu.r2", "cpu.r3", "cpu.r4", "cpu.r5", "cpu.r6", "cpu.r7", "cpu.r8", "cpu.r9", "cpu.r10", "cpu.r11", "cpu.r12", "cpu.r13"},
		FaultModel:     faultmodel.Spec{Kind: faultmodel.Transient},
		Trigger:        trigger.Spec{Kind: "cycle"},
		RandomWindow:   [2]uint64{10, 1600},
		NumExperiments: n,
		Seed:           seed,
		Termination:    campaign.Termination{TimeoutCycles: 100_000},
		Workload:       workload.Sort(),
		LogMode:        campaign.LogNormal,
	}
}

func TestRegUsesClassification(t *testing.T) {
	tests := []struct {
		in     thor.Instr
		reads  []int
		writes []int
	}{
		{thor.Instr{Op: thor.OpADD, Rd: 1, Rs1: 2, Rs2: 3}, []int{2, 3}, []int{1}},
		{thor.Instr{Op: thor.OpLDI, Rd: 4}, nil, []int{4}},
		{thor.Instr{Op: thor.OpST, Rd: 5, Rs1: 6}, []int{6, 5}, nil},
		{thor.Instr{Op: thor.OpLD, Rd: 5, Rs1: 6}, []int{6}, []int{5}},
		{thor.Instr{Op: thor.OpCALL}, nil, []int{thor.RegLR}},
		{thor.Instr{Op: thor.OpPUSH, Rs1: 3}, []int{3, thor.RegSP}, []int{thor.RegSP}},
		{thor.Instr{Op: thor.OpPOP, Rd: 3}, []int{thor.RegSP}, []int{3, thor.RegSP}},
		{thor.Instr{Op: thor.OpBEQ}, nil, nil},
		{thor.Instr{Op: thor.OpHALT}, nil, nil},
		{thor.Instr{Op: thor.OpOUT, Rd: 2}, []int{2}, nil},
		{thor.Instr{Op: thor.OpIN, Rd: 2}, nil, []int{2}},
	}
	for _, tt := range tests {
		r, w := regUses(tt.in)
		if !equalInts(r, tt.reads) || !equalInts(w, tt.writes) {
			t.Errorf("%v: reads=%v writes=%v, want %v %v", tt.in, r, w, tt.reads, tt.writes)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAnalyzeSortWorkload(t *testing.T) {
	camp := sortCampaign("pa", 1, 1)
	a, err := AnalyzeWorkload(thor.DefaultConfig(), camp)
	if err != nil {
		t.Fatal(err)
	}
	if a.EndCycle == 0 || a.Instrs == 0 {
		t.Fatalf("analysis empty: %+v", a)
	}
	// r1 is the sort's loop counter: live through most of the run.
	if !a.LiveAt(1, a.EndCycle/2) {
		t.Error("loop counter r1 not live mid-run")
	}
	// r8 is never used by the sort workload: always dead.
	if a.LiveAt(8, a.EndCycle/2) {
		t.Error("unused register r8 reported live")
	}
	// After the end of the run nothing is live.
	if a.LiveAt(1, a.EndCycle+1000) {
		t.Error("register live after termination")
	}
	frac := a.LiveFraction(100)
	if frac <= 0 || frac >= 1 {
		t.Errorf("live fraction = %g, want strictly between 0 and 1", frac)
	}
}

func TestBitLiveMapping(t *testing.T) {
	camp := sortCampaign("pb", 1, 1)
	a, err := AnalyzeWorkload(thor.DefaultConfig(), camp)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := thor.ScanFieldByName("cpu.r1")
	if err != nil {
		t.Fatal(err)
	}
	live, known := a.BitLive(f1.Offset+3, a.EndCycle/2)
	if !known || !live {
		t.Errorf("r1 bit: live=%v known=%v", live, known)
	}
	f8, err := thor.ScanFieldByName("cpu.r8")
	if err != nil {
		t.Fatal(err)
	}
	live, known = a.BitLive(f8.Offset, a.EndCycle/2)
	if !known || live {
		t.Errorf("r8 bit: live=%v known=%v", live, known)
	}
	// Cache bits are unknown and conservatively kept.
	fc, err := thor.ScanFieldByName("icache.line0.word0")
	if err != nil {
		t.Fatal(err)
	}
	live, known = a.BitLive(fc.Offset, 100)
	if known || !live {
		t.Errorf("cache bit: live=%v known=%v", live, known)
	}
}

func TestFilterImprovesEffectiveness(t *testing.T) {
	// E5 shape: with pre-injection analysis the overwritten share drops
	// and the effective yield per experiment rises.
	runWith := func(name string, filter bool) (*core.Summary, *campaign.Store) {
		camp := sortCampaign(name, 60, 17)
		st, err := campaign.NewStore(sqldb.Open())
		if err != nil {
			t.Fatal(err)
		}
		tsd := scifi.TargetSystemData("thor-board")
		if err := st.PutTargetSystem(tsd); err != nil {
			t.Fatal(err)
		}
		if err := st.PutCampaign(camp); err != nil {
			t.Fatal(err)
		}
		opts := []core.RunnerOption{core.WithSink(st)}
		if filter {
			a, err := AnalyzeWorkload(thor.DefaultConfig(), camp)
			if err != nil {
				t.Fatal(err)
			}
			opts = append(opts, core.WithInjectionFilter(a.Filter()))
		}
		r, err := core.NewRunner(scifi.New(thor.DefaultConfig()), core.SCIFI, camp, tsd, opts...)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := r.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return sum, st
	}
	plain, _ := runWith("plain", false)
	filtered, _ := runWith("filtered", true)
	if filtered.Skipped == 0 {
		t.Error("filter skipped nothing; analysis has no effect")
	}
	if plain.Skipped != 0 {
		t.Error("unfiltered run skipped draws")
	}
	// The filtered campaign should produce at least as many effective
	// (detected) outcomes.
	if filtered.ByStatus[campaign.OutcomeDetected] < plain.ByStatus[campaign.OutcomeDetected] {
		t.Logf("note: filtered detected %d < plain %d (statistical, not fatal)",
			filtered.ByStatus[campaign.OutcomeDetected], plain.ByStatus[campaign.OutcomeDetected])
	}
}

func TestFilterKeepsNonCycleTriggers(t *testing.T) {
	camp := sortCampaign("pc", 1, 1)
	a, err := AnalyzeWorkload(thor.DefaultConfig(), camp)
	if err != nil {
		t.Fatal(err)
	}
	filter := a.Filter()
	deadReg, err := thor.ScanFieldByName("cpu.r8")
	if err != nil {
		t.Fatal(err)
	}
	f := faultmodel.Fault{Kind: faultmodel.Transient, Bits: []int{deadReg.Offset}}
	if filter(f, trigger.Spec{Kind: "cycle", Cycle: a.EndCycle / 2}) {
		t.Error("dead-register cycle injection kept")
	}
	if !filter(f, trigger.Spec{Kind: "branch", Occurrence: 3}) {
		t.Error("non-cycle trigger rejected")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	camp := sortCampaign("pe", 1, 1)
	camp.Workload.Source = "bogus"
	if _, err := AnalyzeWorkload(thor.DefaultConfig(), camp); err == nil {
		t.Error("bad workload accepted")
	}
	// Missing recovery handler symbol.
	camp2 := sortCampaign("pe2", 1, 1)
	camp2.Workload.RecoveryHandlers = map[uint16]string{1: "nowhere"}
	if _, err := AnalyzeWorkload(thor.DefaultConfig(), camp2); err == nil {
		t.Error("missing recovery handler accepted")
	}
	// Unknown environment simulator.
	camp3 := sortCampaign("pe3", 1, 1)
	camp3.EnvSim = &campaign.EnvSimSpec{Name: "ghost"}
	if _, err := AnalyzeWorkload(thor.DefaultConfig(), camp3); err == nil {
		t.Error("unknown env simulator accepted")
	}
}

func TestAnalyzeClosedLoopWorkload(t *testing.T) {
	// The analysis follows the environment-simulator protocol: iteration
	// boundaries exchange data, the max-iterations limit ends the trace.
	camp := &campaign.Campaign{
		Name:           "pid-analysis",
		TargetName:     "thor-board",
		ChainName:      "internal",
		Locations:      []string{"cpu.r1"},
		FaultModel:     faultmodel.Spec{Kind: faultmodel.Transient},
		Trigger:        trigger.Spec{Kind: "cycle", Cycle: 100},
		NumExperiments: 1,
		Seed:           1,
		Termination:    campaign.Termination{TimeoutCycles: 200_000, MaxIterations: 20},
		Workload:       workload.PIDAssert(),
		EnvSim:         &campaign.EnvSimSpec{Name: "first-order-plant"},
		LogMode:        campaign.LogNormal,
	}
	a, err := AnalyzeWorkload(thor.DefaultConfig(), camp)
	if err != nil {
		t.Fatal(err)
	}
	if a.EndCycle == 0 || a.Instrs == 0 {
		t.Fatalf("empty analysis: %+v", a)
	}
	// r4 (the integrator) is written then read each iteration: live
	// between iterations.
	if !a.LiveAt(4, a.EndCycle/2) {
		t.Error("integrator register not live mid-run")
	}
	// Timeout exit path: a tiny cycle budget ends the analysis early.
	camp.Termination = campaign.Termination{TimeoutCycles: 200}
	short, err := AnalyzeWorkload(thor.DefaultConfig(), camp)
	if err != nil {
		t.Fatal(err)
	}
	if short.EndCycle < 200 {
		t.Errorf("timeout analysis ended at %d", short.EndCycle)
	}
}

func TestAnalyzeDetectsReferenceFault(t *testing.T) {
	// A workload that traps during the reference run is a configuration
	// error the analysis must surface.
	camp := sortCampaign("pf", 1, 1)
	camp.Workload.Source = "trap 1"
	if _, err := AnalyzeWorkload(thor.DefaultConfig(), camp); err == nil {
		t.Error("detected reference run accepted")
	}
}
