// Package preinject implements pre-injection analysis, the paper's §4
// efficiency extension: "determine when registers and other fault
// injection locations hold live data. Injecting a fault into a location
// that does not hold live data serves no purpose, since the fault will be
// overwritten."
//
// The analysis traces the fault-free reference execution, recording every
// register read and write. A register is *live* at cycle t when its next
// access after t is a read; injections into dead (next-access-is-write)
// registers are guaranteed to be overwritten and can be skipped, raising
// the effective-error yield per experiment.
package preinject

import (
	"fmt"

	"goofi/internal/asm"
	"goofi/internal/campaign"
	"goofi/internal/envsim"
	"goofi/internal/faultmodel"
	"goofi/internal/thor"
	"goofi/internal/trigger"
)

// access is one register access in the reference trace.
type access struct {
	cycle uint64
	read  bool
}

// Analysis is the liveness result over the reference execution.
type Analysis struct {
	accesses   [thor.NumRegs][]access
	EndCycle   uint64
	Instrs     uint64
	regFields  [thor.NumRegs]thor.ScanField
	haveFields bool
}

// regUses classifies an instruction's register reads and writes.
func regUses(in thor.Instr) (reads, writes []int) {
	switch in.Op {
	case thor.OpMOV, thor.OpNOT:
		return []int{int(in.Rs1)}, []int{int(in.Rd)}
	case thor.OpLDI, thor.OpLUI, thor.OpIN:
		return nil, []int{int(in.Rd)}
	case thor.OpORI, thor.OpADDI, thor.OpSUBI, thor.OpSHLI, thor.OpSHRI, thor.OpLD:
		return []int{int(in.Rs1)}, []int{int(in.Rd)}
	case thor.OpST:
		return []int{int(in.Rs1), int(in.Rd)}, nil
	case thor.OpADD, thor.OpSUB, thor.OpMUL, thor.OpDIV, thor.OpMOD,
		thor.OpAND, thor.OpOR, thor.OpXOR, thor.OpSHL, thor.OpSHR:
		return []int{int(in.Rs1), int(in.Rs2)}, []int{int(in.Rd)}
	case thor.OpCMP:
		return []int{int(in.Rs1), int(in.Rs2)}, nil
	case thor.OpCMPI:
		return []int{int(in.Rs1)}, nil
	case thor.OpCALL:
		return nil, []int{thor.RegLR}
	case thor.OpJR:
		return []int{int(in.Rs1)}, nil
	case thor.OpPUSH:
		return []int{int(in.Rs1), thor.RegSP}, []int{thor.RegSP}
	case thor.OpPOP:
		return []int{thor.RegSP}, []int{int(in.Rd), thor.RegSP}
	case thor.OpOUT:
		return []int{int(in.Rd)}, nil
	default: // NOP, HALT, TRAP, KICK, branches
		return nil, nil
	}
}

// AnalyzeWorkload runs the fault-free workload on a fresh THOR-S and
// records the register access trace. Environment-simulator campaigns are
// supported through the same iteration-exchange protocol as the targets.
func AnalyzeWorkload(cfg thor.Config, camp *campaign.Campaign) (*Analysis, error) {
	prog, err := asm.AssembleCached(camp.Workload.Source)
	if err != nil {
		return nil, fmt.Errorf("preinject: assemble workload: %w", err)
	}
	cpu := thor.New(cfg)
	if err := cpu.LoadMemory(0, prog.Image); err != nil {
		return nil, err
	}
	for code, symbol := range camp.Workload.RecoveryHandlers {
		addr, err := prog.Symbol(symbol)
		if err != nil {
			return nil, fmt.Errorf("preinject: recovery handler: %w", err)
		}
		cpu.SetTrapHandler(code, addr)
	}
	var sim envsim.Simulator
	if camp.EnvSim != nil {
		reg := envsim.NewRegistry()
		sim, err = reg.New(camp.EnvSim.Name, camp.EnvSim.Params)
		if err != nil {
			return nil, err
		}
		cpu.Ports().PushInput(camp.Workload.InputPort, sim.Exchange(nil)...)
	}

	a := &Analysis{}
	a.initFields()
	iterations := 0
	term := camp.Termination
	for cpu.Cycle() < term.TimeoutCycles {
		switch cpu.Status() {
		case thor.StatusRunning:
			w, err := cpu.ReadWord32(cpu.PC)
			if err != nil {
				// Fetch will fault; let the CPU report it.
				cpu.Step()
				continue
			}
			in := thor.Decode(w)
			reads, writes := regUses(in)
			c := cpu.Cycle()
			for _, r := range reads {
				a.accesses[r] = append(a.accesses[r], access{cycle: c, read: true})
			}
			for _, r := range writes {
				a.accesses[r] = append(a.accesses[r], access{cycle: c, read: false})
			}
			cpu.Step()
			a.Instrs++
		case thor.StatusIterationEnd:
			outs := cpu.Ports().DrainOutput(camp.Workload.OutputPort)
			if sim != nil {
				cpu.Ports().PushInput(camp.Workload.InputPort, sim.Exchange(outs)...)
			}
			iterations++
			if term.MaxIterations > 0 && iterations >= term.MaxIterations {
				a.EndCycle = cpu.Cycle()
				return a, nil
			}
			if err := cpu.ResumeIteration(); err != nil {
				return nil, err
			}
		case thor.StatusHalted:
			a.EndCycle = cpu.Cycle()
			return a, nil
		case thor.StatusDetected:
			return nil, fmt.Errorf("preinject: reference run detected an error: %+v", cpu.Detection())
		default:
			return nil, fmt.Errorf("preinject: unexpected status %v", cpu.Status())
		}
	}
	a.EndCycle = cpu.Cycle()
	return a, nil
}

func (a *Analysis) initFields() {
	for r := 0; r < thor.NumRegs; r++ {
		f, err := thor.ScanFieldByName(fmt.Sprintf("cpu.r%d", r))
		if err != nil {
			return
		}
		a.regFields[r] = f
	}
	a.haveFields = true
}

// LiveAt reports whether register reg holds live data at the given cycle:
// its next access strictly after cycle is a read. Registers never accessed
// again are dead.
func (a *Analysis) LiveAt(reg int, cycle uint64) bool {
	if reg < 0 || reg >= thor.NumRegs {
		return false
	}
	for _, acc := range a.accesses[reg] {
		if acc.cycle > cycle {
			return acc.read
		}
	}
	return false
}

// BitLive maps an internal-scan-chain bit offset to liveness at a cycle.
// Bits outside the register file (PC, flags, cache arrays) are unknown:
// the analysis keeps them (known=false, live=true) rather than wrongly
// skipping them.
func (a *Analysis) BitLive(bit int, cycle uint64) (live, known bool) {
	if !a.haveFields {
		return true, false
	}
	for r := 0; r < thor.NumRegs; r++ {
		f := a.regFields[r]
		if bit >= f.Offset && bit < f.End() {
			return a.LiveAt(r, cycle), true
		}
	}
	return true, false
}

// FaultLive reports whether a fault at the given injection cycle touches
// at least one live-or-unknown bit. Faults entirely within dead registers
// are guaranteed to be overwritten.
func (a *Analysis) FaultLive(f faultmodel.Fault, cycle uint64) bool {
	for _, b := range f.Bits {
		if live, _ := a.BitLive(b, cycle); live {
			return true
		}
	}
	return false
}

// Filter adapts the analysis to the campaign runner's injection filter:
// cycle-triggered injections into dead registers are skipped. Non-cycle
// triggers have unknown injection times and are kept.
func (a *Analysis) Filter() func(f faultmodel.Fault, trig trigger.Spec) bool {
	return func(f faultmodel.Fault, trig trigger.Spec) bool {
		if trig.Kind != "cycle" {
			return true
		}
		return a.FaultLive(f, trig.Cycle)
	}
}

// LiveFraction estimates the fraction of (register-bit, cycle) pairs that
// are live, sampling the register space at the given cycle resolution.
// It quantifies how much work pre-injection analysis saves.
func (a *Analysis) LiveFraction(step uint64) float64 {
	if step == 0 || a.EndCycle == 0 {
		return 0
	}
	live, total := 0, 0
	for c := uint64(0); c < a.EndCycle; c += step {
		for r := 0; r < thor.NumRegs; r++ {
			total++
			if a.LiveAt(r, c) {
				live++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(live) / float64(total)
}
