package thor_test

import (
	"testing"

	"goofi/internal/asm"
	"goofi/internal/thor"
)

// load assembles src into a fresh CPU with the given config.
func load(t *testing.T, cfg thor.Config, src string) (*thor.CPU, *asm.Program) {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := thor.New(cfg)
	if err := c.LoadMemory(0, prog.Image); err != nil {
		t.Fatalf("load: %v", err)
	}
	return c, prog
}

func run(t *testing.T, c *thor.CPU) thor.Status {
	t.Helper()
	return c.Run(1_000_000)
}

func TestArithmeticProgram(t *testing.T) {
	c, prog := load(t, thor.DefaultConfig(), `
		ldi r1, 6
		ldi r2, 7
		mul r3, r1, r2
		la r4, result
		st [r4], r3
		halt
	result:
		.word 0
	`)
	if st := run(t, c); st != thor.StatusHalted {
		t.Fatalf("status = %v, want halted (detection: %+v)", st, c.Detection())
	}
	w, err := c.ReadWord32(prog.MustSymbol("result"))
	if err != nil {
		t.Fatal(err)
	}
	if w != 42 {
		t.Errorf("result = %d, want 42", w)
	}
}

func TestBranchesAndLoop(t *testing.T) {
	c, prog := load(t, thor.DefaultConfig(), `
		ldi r1, 0    ; sum
		ldi r2, 1    ; i
	loop:
		add r1, r1, r2
		addi r2, r2, 1
		cmpi r2, 10
		ble loop
		la r3, sum
		st [r3], r1
		halt
	sum:
		.word 0
	`)
	if st := run(t, c); st != thor.StatusHalted {
		t.Fatalf("status = %v (detection %+v)", st, c.Detection())
	}
	w, _ := c.ReadWord32(prog.MustSymbol("sum"))
	if w != 55 {
		t.Errorf("sum 1..10 = %d, want 55", w)
	}
}

func TestCallRetStack(t *testing.T) {
	c, prog := load(t, thor.DefaultConfig(), `
		ldi r1, 5
		call double
		la r2, out
		st [r2], r1
		halt
	double:
		push r3
		mov r3, r1
		add r1, r3, r3
		pop r3
		ret
	out:
		.word 0
	`)
	if st := run(t, c); st != thor.StatusHalted {
		t.Fatalf("status = %v (detection %+v)", st, c.Detection())
	}
	w, _ := c.ReadWord32(prog.MustSymbol("out"))
	if w != 10 {
		t.Errorf("double(5) = %d, want 10", w)
	}
}

func TestSignedComparisons(t *testing.T) {
	// Compute min(-3, 2) using BLT.
	c, prog := load(t, thor.DefaultConfig(), `
		ldi r1, -3
		ldi r2, 2
		cmp r1, r2
		blt takefirst
		mov r3, r2
		bra store
	takefirst:
		mov r3, r1
	store:
		la r4, out
		st [r4], r3
		halt
	out:
		.word 0
	`)
	if st := run(t, c); st != thor.StatusHalted {
		t.Fatalf("status = %v", st)
	}
	w, _ := c.ReadWord32(prog.MustSymbol("out"))
	if int32(w) != -3 {
		t.Errorf("min = %d, want -3", int32(w))
	}
}

func TestEDMIllegalOpcode(t *testing.T) {
	c := thor.New(thor.DefaultConfig())
	if err := c.WriteWord32(0, 0xFF000000); err != nil {
		t.Fatal(err)
	}
	if st := run(t, c); st != thor.StatusDetected {
		t.Fatalf("status = %v, want detected", st)
	}
	if got := c.Detection().Mechanism; got != thor.EDMIllegalOp {
		t.Errorf("mechanism = %v, want illegal-opcode", got)
	}
}

func TestEDMDivideByZero(t *testing.T) {
	c, _ := load(t, thor.DefaultConfig(), `
		ldi r1, 10
		ldi r2, 0
		div r3, r1, r2
		halt
	`)
	if st := run(t, c); st != thor.StatusDetected {
		t.Fatalf("status = %v, want detected", st)
	}
	if got := c.Detection().Mechanism; got != thor.EDMDivZero {
		t.Errorf("mechanism = %v", got)
	}
}

func TestEDMOverflow(t *testing.T) {
	c, _ := load(t, thor.DefaultConfig(), `
		lui r1, 0x7fff
		ori r1, r1, 0xffff  ; r1 = MaxInt32
		addi r2, r1, 1
		halt
	`)
	if st := run(t, c); st != thor.StatusDetected {
		t.Fatalf("status = %v, want detected", st)
	}
	if got := c.Detection().Mechanism; got != thor.EDMOverflow {
		t.Errorf("mechanism = %v", got)
	}
	// With the trap disabled the same program wraps and halts.
	cfg := thor.DefaultConfig()
	cfg.TrapOnOverflow = false
	c2, _ := load(t, cfg, `
		lui r1, 0x7fff
		ori r1, r1, 0xffff
		addi r2, r1, 1
		halt
	`)
	if st := run(t, c2); st != thor.StatusHalted {
		t.Fatalf("status with trap disabled = %v, want halted", st)
	}
	if c2.Regs[2] != 0x8000_0000 {
		t.Errorf("wrapped value = %#x", c2.Regs[2])
	}
}

func TestEDMMemRangeAndMisaligned(t *testing.T) {
	c, _ := load(t, thor.DefaultConfig(), `
		lui r1, 0x0010   ; 0x100000, beyond 64 KiB
		ld r2, [r1]
		halt
	`)
	if st := run(t, c); st != thor.StatusDetected {
		t.Fatalf("status = %v", st)
	}
	if got := c.Detection().Mechanism; got != thor.EDMMemRange {
		t.Errorf("mechanism = %v, want memory-range", got)
	}

	c2, _ := load(t, thor.DefaultConfig(), `
		ldi r1, 2
		ld r2, [r1]   ; misaligned
		halt
	`)
	if st := run(t, c2); st != thor.StatusDetected {
		t.Fatalf("status = %v", st)
	}
	if got := c2.Detection().Mechanism; got != thor.EDMMisaligned {
		t.Errorf("mechanism = %v, want misaligned", got)
	}
}

func TestEDMWatchdog(t *testing.T) {
	cfg := thor.DefaultConfig()
	cfg.WatchdogLimit = 100
	c, _ := load(t, cfg, `
	loop:
		bra loop
	`)
	if st := run(t, c); st != thor.StatusDetected {
		t.Fatalf("status = %v, want detected", st)
	}
	if got := c.Detection().Mechanism; got != thor.EDMWatchdog {
		t.Errorf("mechanism = %v, want watchdog", got)
	}
	// Kicking keeps it alive until HALT.
	c2, _ := load(t, cfg, `
		ldi r1, 0
	loop:
		kick
		addi r1, r1, 1
		cmpi r1, 200
		blt loop
		halt
	`)
	if st := run(t, c2); st != thor.StatusHalted {
		t.Fatalf("kicked loop status = %v, want halted", st)
	}
}

func TestEDMAssertionTrapWithoutHandler(t *testing.T) {
	c, _ := load(t, thor.DefaultConfig(), `
		trap 1
		halt
	`)
	if st := run(t, c); st != thor.StatusDetected {
		t.Fatalf("status = %v", st)
	}
	if got := c.Detection().Mechanism; got != thor.EDMAssertion {
		t.Errorf("mechanism = %v, want assertion", got)
	}
}

func TestTrapHandlerRecovery(t *testing.T) {
	c, prog := load(t, thor.DefaultConfig(), `
		trap 1        ; assertion fails but handler recovers
		halt          ; skipped
	recover:
		ldi r1, 99
		la r2, out
		st [r2], r1
		halt
	out:
		.word 0
	`)
	c.SetTrapHandler(thor.TrapAssertFail, prog.MustSymbol("recover"))
	if st := run(t, c); st != thor.StatusHalted {
		t.Fatalf("status = %v, want halted after recovery", st)
	}
	w, _ := c.ReadWord32(prog.MustSymbol("out"))
	if w != 99 {
		t.Errorf("recovery marker = %d, want 99", w)
	}
	events := c.Events()
	if len(events) != 1 || events[0].Mechanism != thor.EDMAssertion {
		t.Errorf("events = %+v, want one recovered assertion", events)
	}
}

func TestIterationEndAndResume(t *testing.T) {
	c, _ := load(t, thor.DefaultConfig(), `
		in r1, 0
		addi r1, r1, 1
		out 1, r1
		trap 2
		in r1, 0
		addi r1, r1, 1
		out 1, r1
		halt
	`)
	c.Ports().PushInput(0, 10)
	if st := run(t, c); st != thor.StatusIterationEnd {
		t.Fatalf("status = %v, want iteration-end", st)
	}
	out := c.Ports().DrainOutput(1)
	if len(out) != 1 || out[0] != 11 {
		t.Fatalf("first iteration output = %v, want [11]", out)
	}
	c.Ports().PushInput(0, 20)
	if err := c.ResumeIteration(); err != nil {
		t.Fatal(err)
	}
	if st := run(t, c); st != thor.StatusHalted {
		t.Fatalf("status = %v, want halted", st)
	}
	out = c.Ports().DrainOutput(1)
	if len(out) != 1 || out[0] != 21 {
		t.Fatalf("second iteration output = %v, want [21]", out)
	}
	if err := c.ResumeIteration(); err == nil {
		t.Error("ResumeIteration in halted state did not error")
	}
}

func TestBreakpoints(t *testing.T) {
	c, prog := load(t, thor.DefaultConfig(), `
		ldi r1, 1
	bp:
		ldi r2, 2
		halt
	`)
	c.AddBreakpoint(prog.MustSymbol("bp"))
	if st := run(t, c); st != thor.StatusBreakpoint {
		t.Fatalf("status = %v, want breakpoint", st)
	}
	if c.PC != prog.MustSymbol("bp") {
		t.Errorf("PC = %#x, want %#x", c.PC, prog.MustSymbol("bp"))
	}
	if c.Regs[2] != 0 {
		t.Error("instruction at breakpoint already executed")
	}
	// Resume runs through the breakpoint without re-triggering.
	if st := run(t, c); st != thor.StatusHalted {
		t.Fatalf("resume status = %v, want halted", st)
	}
	if c.Regs[2] != 2 {
		t.Errorf("r2 = %d after resume", c.Regs[2])
	}
}

func TestOutOfBudget(t *testing.T) {
	c, _ := load(t, thor.Config{WatchdogLimit: 0}, `
	loop:
		bra loop
	`)
	if st := c.Run(1000); st != thor.StatusOutOfBudget {
		t.Fatalf("status = %v, want out-of-budget", st)
	}
	if err := c.ClearOutOfBudget(); err != nil {
		t.Fatal(err)
	}
	if st := c.Run(1000); st != thor.StatusOutOfBudget {
		t.Fatalf("second run status = %v", st)
	}
}

func TestSnapshotRestoreDeterminism(t *testing.T) {
	src := `
		ldi r1, 0
		ldi r2, 1
	loop:
		add r1, r1, r2
		addi r2, r2, 1
		cmpi r2, 50
		blt loop
		halt
	`
	c, _ := load(t, thor.DefaultConfig(), src)
	// Run halfway, snapshot, run to completion twice from the snapshot.
	for i := 0; i < 40; i++ {
		c.Step()
	}
	snap := c.Snapshot()
	if st := run(t, c); st != thor.StatusHalted {
		t.Fatalf("status = %v", st)
	}
	final1 := c.Regs[1]
	cycles1 := c.Cycle()
	if err := c.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if st := run(t, c); st != thor.StatusHalted {
		t.Fatalf("status after restore = %v", st)
	}
	if c.Regs[1] != final1 || c.Cycle() != cycles1 {
		t.Errorf("nondeterministic replay: r1 %d vs %d, cycles %d vs %d",
			c.Regs[1], final1, c.Cycle(), cycles1)
	}
}

func TestRestoreSizeMismatch(t *testing.T) {
	c1 := thor.New(thor.Config{MemSize: 4096})
	c2 := thor.New(thor.Config{MemSize: 8192})
	if err := c2.Restore(c1.Snapshot()); err == nil {
		t.Error("Restore with mismatched memory size did not error")
	}
}

func TestCacheHitsAndStats(t *testing.T) {
	c, _ := load(t, thor.DefaultConfig(), `
		ldi r1, 0
	loop:
		addi r1, r1, 1
		cmpi r1, 100
		blt loop
		halt
	`)
	if st := run(t, c); st != thor.StatusHalted {
		t.Fatalf("status = %v", st)
	}
	iHits, iMisses, _, _ := c.CacheStats()
	if iMisses == 0 {
		t.Error("expected at least one icache miss (cold start)")
	}
	if iHits < 100 {
		t.Errorf("icache hits = %d, expected many for a tight loop", iHits)
	}
}

func TestDisableCaches(t *testing.T) {
	cfg := thor.DefaultConfig()
	cfg.DisableCaches = true
	c, _ := load(t, cfg, `
		ldi r1, 1
		halt
	`)
	if st := run(t, c); st != thor.StatusHalted {
		t.Fatalf("status = %v", st)
	}
	iHits, iMisses, _, _ := c.CacheStats()
	if iHits != 0 || iMisses != 0 {
		t.Errorf("cache touched while disabled: hits=%d misses=%d", iHits, iMisses)
	}
}

func TestHostMemoryAccessErrors(t *testing.T) {
	c := thor.New(thor.Config{MemSize: 1024})
	if err := c.LoadMemory(1020, []byte{1, 2, 3, 4, 5}); err == nil {
		t.Error("LoadMemory overflow did not error")
	}
	if _, err := c.ReadMemory(0, -1); err == nil {
		t.Error("ReadMemory negative size did not error")
	}
	if _, err := c.ReadMemory(1020, 8); err == nil {
		t.Error("ReadMemory overflow did not error")
	}
	if _, err := c.ReadWord32(2048); err == nil {
		t.Error("ReadWord32 out of range did not error")
	}
}

func TestWriteWord32CacheCoherence(t *testing.T) {
	// Execute a load to warm the cache, then change memory host-side and
	// reload: the CPU must observe the new value (host writes update the
	// cache, modelling pre-runtime SWIFI mutation after a warm-up run).
	c, prog := load(t, thor.DefaultConfig(), `
		la r1, var
		ld r2, [r1]
		ld r3, [r1]
		halt
	var:
		.word 5
	`)
	addr := prog.MustSymbol("var")
	// Step through la (2 instrs) + first ld to warm the cache.
	for i := 0; i < 3; i++ {
		c.Step()
	}
	if c.Regs[2] != 5 {
		t.Fatalf("first load = %d, want 5", c.Regs[2])
	}
	if err := c.WriteWord32(addr, 77); err != nil {
		t.Fatal(err)
	}
	if st := run(t, c); st != thor.StatusHalted {
		t.Fatalf("status = %v", st)
	}
	if c.Regs[3] != 77 {
		t.Errorf("second load = %d, want 77 (stale cache line)", c.Regs[3])
	}
}

func TestTraceHook(t *testing.T) {
	c, _ := load(t, thor.DefaultConfig(), `
		ldi r1, 1
		ldi r2, 2
		halt
	`)
	var pcs []uint32
	c.TraceHook = func(c *thor.CPU) { pcs = append(pcs, c.PC) }
	run(t, c)
	// Hook fires after each retired instruction while still running:
	// after ldi@0 (PC=4), after ldi@4 (PC=8). HALT stops before the hook.
	if len(pcs) != 2 || pcs[0] != 4 || pcs[1] != 8 {
		t.Errorf("trace PCs = %v, want [4 8]", pcs)
	}
}

func TestStatusStrings(t *testing.T) {
	for st, want := range map[thor.Status]string{
		thor.StatusRunning:      "running",
		thor.StatusHalted:       "halted",
		thor.StatusBreakpoint:   "breakpoint",
		thor.StatusIterationEnd: "iteration-end",
		thor.StatusDetected:     "detected",
		thor.StatusOutOfBudget:  "out-of-budget",
	} {
		if st.String() != want {
			t.Errorf("Status(%d).String() = %q, want %q", int(st), st, want)
		}
	}
	for _, m := range thor.AllEDMs() {
		if m.String() == "" || m.String() == "none" {
			t.Errorf("EDM %d has bad name %q", int(m), m)
		}
	}
}

func TestPinSampling(t *testing.T) {
	c, prog := load(t, thor.DefaultConfig(), `
		la r1, var
		ldi r2, 0x1234
		st [r1], r2
		halt
	var:
		.word 0
	`)
	// Step through la (2 instructions), ldi, st: the store's bus activity
	// is the most recent sample. The pins are sampled continuously, so a
	// later fetch would overwrite them.
	for i := 0; i < 4; i++ {
		c.Step()
	}
	p := c.Pins()
	if p.Address != prog.MustSymbol("var") || p.DataOut != 0x1234 || !p.Write {
		t.Errorf("pins after store = %+v", p)
	}
	run(t, c)
	if !c.Pins().Halt {
		t.Error("halt pin not asserted after HALT")
	}
}
