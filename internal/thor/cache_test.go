package thor

import (
	"testing"
	"testing/quick"
)

func TestCacheIndexing(t *testing.T) {
	var c cache
	// Word 0 of line 0 is address 0; addresses one line apart share the
	// word index but differ in line (until wrap) and then in tag.
	li, wi, tag := c.index(0)
	if li != 0 || wi != 0 || tag != 0 {
		t.Errorf("index(0) = %d %d %d", li, wi, tag)
	}
	li, wi, _ = c.index(CacheLineBytes)
	if li != 1 || wi != 0 {
		t.Errorf("index(one line) = %d %d", li, wi)
	}
	li, _, tag = c.index(CacheLineBytes * CacheLines)
	if li != 0 || tag != 1 {
		t.Errorf("wrap-around = line %d tag %d", li, tag)
	}
	_, wi, _ = c.index(4)
	if wi != 1 {
		t.Errorf("index(4) word = %d", wi)
	}
}

func TestCacheFillLookupHitMiss(t *testing.T) {
	var c cache
	if _, hit, _ := c.lookup(0x40); hit {
		t.Error("hit in empty cache")
	}
	c.fill(0x40, [CacheWordsPerLine]uint32{1, 2, 3, 4})
	for i := uint32(0); i < CacheWordsPerLine; i++ {
		w, hit, perr := c.lookup(0x40 + 4*i)
		if !hit || perr || w != i+1 {
			t.Errorf("word %d: w=%d hit=%v perr=%v", i, w, hit, perr)
		}
	}
	hits, misses := c.stats()
	if hits != 4 || misses != 1 {
		t.Errorf("stats = %d hits, %d misses", hits, misses)
	}
}

func TestCacheConflictEviction(t *testing.T) {
	var c cache
	// Two addresses mapping to the same line (one full cache apart).
	a := uint32(0x40)
	b := a + CacheLineBytes*CacheLines
	c.fill(a, [CacheWordsPerLine]uint32{10, 11, 12, 13})
	c.fill(b, [CacheWordsPerLine]uint32{20, 21, 22, 23})
	if _, hit, _ := c.lookup(a); hit {
		t.Error("evicted line still hits")
	}
	if w, hit, _ := c.lookup(b); !hit || w != 20 {
		t.Errorf("new line: w=%d hit=%v", w, hit)
	}
}

func TestCacheWriteThroughUpdate(t *testing.T) {
	var c cache
	c.fill(0x80, [CacheWordsPerLine]uint32{0, 0, 0, 0})
	c.update(0x84, 0xDEAD)
	w, hit, perr := c.lookup(0x84)
	if !hit || perr || w != 0xDEAD {
		t.Errorf("after update: w=%#x hit=%v perr=%v", w, hit, perr)
	}
	// Updating an absent line is a no-op (no write-allocate).
	c.update(0x2000, 0xBEEF)
	if _, hit, _ := c.lookup(0x2000); hit {
		t.Error("update allocated a line")
	}
}

func TestCacheParityDetectsSingleBitCorruption(t *testing.T) {
	var c cache
	c.fill(0, [CacheWordsPerLine]uint32{0xAAAA, 0, 0, 0})
	// Corrupt one data bit directly (as a scan-chain injection would).
	c.lines[0].data[0] ^= 1 << 7
	if _, hit, perr := c.lookup(0); !hit || !perr {
		t.Errorf("corruption not flagged: hit=%v perr=%v", hit, perr)
	}
	// Corrupting the parity bit itself is also detected.
	var c2 cache
	c2.fill(0, [CacheWordsPerLine]uint32{0xAAAA, 0, 0, 0})
	c2.lines[0].parity[0] = !c2.lines[0].parity[0]
	if _, hit, perr := c2.lookup(0); !hit || !perr {
		t.Errorf("parity-bit corruption not flagged: hit=%v perr=%v", hit, perr)
	}
}

// Property: parity always detects any single-bit flip in a cached word
// (odd number of changed bits always flips computed parity).
func TestPropertyParityCatchesSingleFlips(t *testing.T) {
	f := func(word uint32, bitRaw uint8) bool {
		var c cache
		c.fill(0, [CacheWordsPerLine]uint32{word, 0, 0, 0})
		c.lines[0].data[0] ^= 1 << (bitRaw % 32)
		_, hit, perr := c.lookup(0)
		return hit && perr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: double-bit flips in the same word escape parity — the
// known limitation of single-bit parity codes.
func TestPropertyParityMissesDoubleFlips(t *testing.T) {
	f := func(word uint32, aRaw, bRaw uint8) bool {
		a, b := aRaw%32, bRaw%32
		if a == b {
			return true // same bit twice = no corruption
		}
		var c cache
		c.fill(0, [CacheWordsPerLine]uint32{word, 0, 0, 0})
		c.lines[0].data[0] ^= 1<<a | 1<<b
		_, hit, perr := c.lookup(0)
		return hit && !perr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCacheInvalidateAll(t *testing.T) {
	var c cache
	c.fill(0, [CacheWordsPerLine]uint32{1, 2, 3, 4})
	c.lookup(0)
	c.invalidateAll()
	if _, hit, _ := c.lookup(0); hit {
		t.Error("hit after invalidateAll")
	}
	hits, misses := c.stats()
	// invalidateAll resets counters; the lookup above was one miss.
	if hits != 0 || misses != 1 {
		t.Errorf("stats after invalidate = %d, %d", hits, misses)
	}
}

func TestParityOf(t *testing.T) {
	cases := map[uint32]bool{
		0x0: false, 0x1: true, 0x3: false, 0x7: true, 0xFFFFFFFF: false,
	}
	for w, want := range cases {
		if got := parityOf(w); got != want {
			t.Errorf("parityOf(%#x) = %v, want %v", w, got, want)
		}
	}
}
