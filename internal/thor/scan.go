package thor

import (
	"fmt"

	"goofi/internal/bitvec"
)

// ScanField describes one named cell group in the internal scan chain: a
// register, a flag, or a cache array element. The configuration phase
// (paper Fig 5) presents these names and positions to the user; read-only
// cells can be observed but not injected.
type ScanField struct {
	Name     string
	Offset   int // bit offset within the chain
	Width    int // bits
	ReadOnly bool
}

// End returns the first bit offset after the field.
func (f ScanField) End() int { return f.Offset + f.Width }

const (
	flagsWidth   = 4
	tagWidth     = 16
	counterWidth = 48
)

// scanLayout is built once; the layout of a CPU's internal scan chain is a
// property of the silicon, not of an instance.
var scanLayout = buildScanLayout()

func buildScanLayout() []ScanField {
	var fields []ScanField
	off := 0
	add := func(name string, width int, ro bool) {
		fields = append(fields, ScanField{Name: name, Offset: off, Width: width, ReadOnly: ro})
		off += width
	}
	for i := 0; i < NumRegs; i++ {
		add(fmt.Sprintf("cpu.r%d", i), 32, false)
	}
	add("cpu.pc", 32, false)
	add("cpu.ccr", flagsWidth, false)
	for _, ca := range []string{"icache", "dcache"} {
		for l := 0; l < CacheLines; l++ {
			add(fmt.Sprintf("%s.line%d.valid", ca, l), 1, false)
			add(fmt.Sprintf("%s.line%d.tag", ca, l), tagWidth, false)
			for w := 0; w < CacheWordsPerLine; w++ {
				add(fmt.Sprintf("%s.line%d.word%d", ca, l, w), 32, false)
			}
			for w := 0; w < CacheWordsPerLine; w++ {
				add(fmt.Sprintf("%s.line%d.parity%d", ca, l, w), 1, false)
			}
		}
	}
	add("cpu.cycle", counterWidth, true)
	add("cpu.instret", counterWidth, true)
	return fields
}

// ScanLayout returns the named fields of the internal scan chain in chain
// order. The returned slice must not be modified.
func ScanLayout() []ScanField { return scanLayout }

// ScanLen returns the total internal scan chain length in bits.
func ScanLen() int {
	last := scanLayout[len(scanLayout)-1]
	return last.End()
}

// ScanFieldByName returns the named field.
func ScanFieldByName(name string) (ScanField, error) {
	for _, f := range scanLayout {
		if f.Name == name {
			return f, nil
		}
	}
	return ScanField{}, fmt.Errorf("thor: no scan field named %q", name)
}

// ScanRead captures the internal state into a bit vector laid out per
// ScanLayout. This is the readScanChain building block of the paper's
// SCIFI algorithm.
func (c *CPU) ScanRead() *bitvec.Vector {
	v := bitvec.New(ScanLen())
	if err := c.ScanReadInto(v); err != nil {
		panic(err) // length is correct by construction
	}
	return v
}

// ScanReadInto captures the internal state into v, which must have length
// ScanLen. It is the allocation-free variant of ScanRead for hot loops
// (persistent-fault reassertion, detail-mode tracing) that capture the
// chain once per slice or instruction.
func (c *CPU) ScanReadInto(v *bitvec.Vector) error {
	if v.Len() != ScanLen() {
		return fmt.Errorf("thor: scan vector length %d != chain length %d", v.Len(), ScanLen())
	}
	i := 0
	put := func(width int, val uint64) {
		f := scanLayout[i]
		if f.Width != width {
			panic(fmt.Sprintf("thor: scan layout drift at %s: width %d != %d", f.Name, f.Width, width))
		}
		v.SetUint64(f.Offset, f.Width, val)
		i++
	}
	for r := 0; r < NumRegs; r++ {
		put(32, uint64(c.Regs[r]))
	}
	put(32, uint64(c.PC))
	put(flagsWidth, uint64(flagsToBits(c.Flags)))
	for _, ca := range []*cache{&c.icache, &c.dcache} {
		for l := range ca.lines {
			ln := &ca.lines[l]
			put(1, boolBit(ln.valid))
			put(tagWidth, uint64(ln.tag&(1<<tagWidth-1)))
			for w := 0; w < CacheWordsPerLine; w++ {
				put(32, uint64(ln.data[w]))
			}
			for w := 0; w < CacheWordsPerLine; w++ {
				put(1, boolBit(ln.parity[w]))
			}
		}
	}
	put(counterWidth, c.cycle&(1<<counterWidth-1))
	put(counterWidth, c.instret&(1<<counterWidth-1))
	return nil
}

// ScanWrite applies a bit vector (usually a modified copy of ScanRead's
// result) back to the internal state. Read-only fields (the cycle and
// instruction counters) are ignored, modelling the read-only scan cells of
// the paper's target. This is the writeScanChain building block.
func (c *CPU) ScanWrite(v *bitvec.Vector) error {
	if v.Len() != ScanLen() {
		return fmt.Errorf("thor: scan vector length %d != chain length %d", v.Len(), ScanLen())
	}
	i := 0
	get := func() uint64 {
		f := scanLayout[i]
		i++
		if f.ReadOnly {
			return 0
		}
		return v.Uint64(f.Offset, f.Width)
	}
	for r := 0; r < NumRegs; r++ {
		c.Regs[r] = uint32(get())
	}
	c.PC = uint32(get())
	c.Flags = flagsFromBits(uint8(get()))
	for _, ca := range []*cache{&c.icache, &c.dcache} {
		for l := range ca.lines {
			ln := &ca.lines[l]
			ln.valid = get() != 0
			ln.tag = uint32(get())
			for w := 0; w < CacheWordsPerLine; w++ {
				ln.data[w] = uint32(get())
			}
			for w := 0; w < CacheWordsPerLine; w++ {
				ln.parity[w] = get() != 0
			}
		}
	}
	get() // cpu.cycle: read-only
	get() // cpu.instret: read-only
	c.decGen++
	return nil
}

func flagsToBits(f Flags) uint8 {
	var b uint8
	if f.N {
		b |= 1
	}
	if f.Z {
		b |= 2
	}
	if f.C {
		b |= 4
	}
	if f.V {
		b |= 8
	}
	return b
}

func flagsFromBits(b uint8) Flags {
	return Flags{N: b&1 != 0, Z: b&2 != 0, C: b&4 != 0, V: b&8 != 0}
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// BoundaryPinLayout describes the pins sampled by the boundary-scan
// register, in chain order.
func BoundaryPinLayout() []ScanField {
	return []ScanField{
		{Name: "pin.addr", Offset: 0, Width: 32},
		{Name: "pin.data_in", Offset: 32, Width: 32},
		{Name: "pin.data_out", Offset: 64, Width: 32},
		{Name: "pin.read", Offset: 96, Width: 1},
		{Name: "pin.write", Offset: 97, Width: 1},
		{Name: "pin.halt", Offset: 98, Width: 1, ReadOnly: true},
		{Name: "pin.error", Offset: 99, Width: 1, ReadOnly: true},
	}
}

// BoundaryLen returns the boundary-scan register length in bits.
func BoundaryLen() int {
	l := BoundaryPinLayout()
	return l[len(l)-1].End()
}

// BoundaryRead samples the pins into a bit vector per BoundaryPinLayout.
func (c *CPU) BoundaryRead() *bitvec.Vector {
	p := c.Pins()
	v := bitvec.New(BoundaryLen())
	v.SetUint64(0, 32, uint64(p.Address))
	v.SetUint64(32, 32, uint64(p.DataIn))
	v.SetUint64(64, 32, uint64(p.DataOut))
	v.Set(96, p.Read)
	v.Set(97, p.Write)
	v.Set(98, p.Halt)
	v.Set(99, p.Error)
	return v
}

// BoundaryWrite applies a boundary vector as a pin-level force (EXTEST):
// the data-in and address pin values in the vector are driven onto the
// buses until ClearBoundaryForce is called. Bits that equal the current
// sample are still driven; pin-level injectors therefore modify only the
// cells they target and write the rest back unchanged.
func (c *CPU) BoundaryWrite(v *bitvec.Vector, dataInMask, addrMask uint32) error {
	if v.Len() != BoundaryLen() {
		return fmt.Errorf("thor: boundary vector length %d != register length %d", v.Len(), BoundaryLen())
	}
	c.force = PinForce{
		Active:     dataInMask != 0 || addrMask != 0,
		DataInMask: dataInMask,
		DataInVal:  uint32(v.Uint64(32, 32)),
		AddrMask:   addrMask,
		AddrVal:    uint32(v.Uint64(0, 32)),
	}
	return nil
}

// ClearBoundaryForce releases any pin-level force.
func (c *CPU) ClearBoundaryForce() { c.force = PinForce{} }
