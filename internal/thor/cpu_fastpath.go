package thor

// Fast-path execution.
//
// The batched fast path exists to make the fault-free majority of every
// campaign cheap without perturbing a single architecturally visible
// bit. It must therefore be *provably* equivalent to the cycle-accurate
// Step/Run pair. The equivalence argument, per hoisted piece of
// bookkeeping:
//
//   - Breakpoint map lookup: RunFast guards the lookup with
//     len(c.breakpoints) != 0, re-read every iteration. When the set is
//     empty the lookup is trivially false and skipBPOnce (which only
//     matters when a breakpoint is armed at PC) is still cleared
//     unconditionally, so control flow is identical to Run.
//   - Fetch, parity check, and decode: stepFast consults a predecoded
//     mirror of the icache (idec). The mirror invariant is: a LIVE line
//     (gen == decGen, ok, tag matches) was built from an icache line
//     that was valid, tag-matching, fully in memory range, and parity
//     clean in EVERY word — and none of that can have changed since,
//     because every operation that can alter icache contents either
//     bumps decGen (Reset, Restore, ScanWrite, WriteWord32) or clears
//     the line's ok bit (a cachedRead line fill). A mirror hit is
//     therefore provably the clean-hit branch of the slow fetch, and
//     replicates that branch's exact side effects (icache hit counter,
//     read-pin sample) while skipping the re-proof: no validity/tag
//     load, no per-word parity popcount, no range check (index+tag
//     uniquely determine the line base, which was in range at build
//     time), no Decode. PC alignment IS re-checked each fetch (JR can
//     set a misaligned PC). Every non-hit case falls back to the slow
//     fetch() so EDM detections, miss penalties, and counters are
//     produced by the same code as Step.
//   - Everything else is NOT hoisted: the budget compare and watchdog
//     compare stay per-instruction (hoisting them would change where
//     StatusOutOfBudget / EDMWatchdog land), and execution itself goes
//     through execDecoded — the same function Step uses.
//
// LoadMemory and dataWrite intentionally do NOT invalidate the mirror:
// they do not update the icache either, so the mirror stays exactly as
// (in)coherent as the icache itself — which is the slow path's
// behaviour.

// decLine is the predecoded mirror of one icache line: the raw words
// (for pin sampling) and their decoded forms.
type decLine struct {
	gen uint64
	tag uint32
	ok  bool
	ws  [CacheWordsPerLine]uint32
	ins [CacheWordsPerLine]Instr
}

// stepFast executes one instruction, using the predecoded mirror when
// it is live and falling back to the cycle-accurate path otherwise.
// Architecturally indistinguishable from Step.
func (c *CPU) stepFast() Status {
	if c.status != StatusRunning {
		return c.status
	}
	if c.cfg.WatchdogLimit > 0 && c.cycle-c.lastKick > c.cfg.WatchdogLimit {
		// Delegate to Step so the watchdog detection is formatted by
		// exactly one piece of code.
		return c.Step()
	}
	pc := c.PC
	d := &c.idec[pc/CacheLineBytes%CacheLines]
	if d.gen == c.decGen && d.ok && d.tag == pc/(CacheLineBytes*CacheLines) && pc%4 == 0 {
		wi := pc / 4 % CacheWordsPerLine
		c.icache.hits++
		c.sampleReadPins(pc, d.ws[wi])
		return c.execDecoded(d.ins[wi])
	}
	return c.stepRefill()
}

// stepRefill is the non-mirror-hit tail of stepFast: try to (re)build
// the mirror line, else run the fully slow fetch.
func (c *CPU) stepRefill() Status {
	in, ok := c.fetchPredecoded()
	if !ok {
		w, ok := c.fetch()
		if !ok {
			return c.status
		}
		in = Decode(w)
	}
	return c.execDecoded(in)
}

// fetchPredecoded handles a fetch whose mirror line is not live. If the
// fetch is a clean icache hit it replicates the slow path's side
// effects (hit counter, pin sample) and — when every word in the line
// is parity clean, establishing the mirror invariant — rebuilds the
// mirror. Any case the slow path would treat differently (miss, parity
// error on the fetched word, misalignment, out of range, caches
// disabled) returns ok=false with NO side effects so the caller's
// fetch() fallback produces byte-identical EDMs and counters.
func (c *CPU) fetchPredecoded() (Instr, bool) {
	if c.cfg.DisableCaches {
		return Instr{}, false
	}
	pc := c.PC
	if pc%4 != 0 || uint64(pc)+4 > uint64(len(c.mem)) {
		return Instr{}, false
	}
	li, wi, tag := c.icache.index(pc)
	ln := &c.icache.lines[li]
	if !ln.valid || ln.tag != tag {
		return Instr{}, false // miss: slow path charges the fill
	}
	allClean := true
	for i, w := range ln.data {
		if ln.parity[i] != parityOf(w) {
			allClean = false
		}
	}
	if ln.parity[wi] != parityOf(ln.data[wi]) {
		return Instr{}, false // slow path raises the parity EDM
	}
	c.icache.hits++
	c.sampleReadPins(pc, ln.data[wi])
	if !allClean {
		// Some other word in the line is corrupt: a later fetch of it
		// must still raise the parity EDM, so the mirror stays dead.
		return Decode(ln.data[wi]), true
	}
	d := &c.idec[li]
	d.ws = ln.data
	for i, w := range ln.data {
		d.ins[i] = Decode(w)
	}
	d.gen, d.tag, d.ok = c.decGen, tag, true
	return d.ins[wi], true
}

// RunFast is Run with batched execution: identical control flow
// (RunHook, breakpoint resume, per-instruction budget compare) with
// stepFast in place of Step. Byte-identical outcomes are pinned by
// TestFastPathDifferential*.
func (c *CPU) RunFast(cycleBudget uint64) Status {
	if c.RunHook != nil {
		c.RunHook(c)
	}
	if c.status == StatusBreakpoint {
		c.status = StatusRunning
		c.skipBPOnce = true
	}
	start := c.cycle
	for c.status == StatusRunning {
		if len(c.breakpoints) != 0 && c.breakpoints[c.PC] && !c.skipBPOnce {
			c.status = StatusBreakpoint
			return c.status
		}
		c.skipBPOnce = false
		if c.cycle-start >= cycleBudget {
			c.status = StatusOutOfBudget
			return c.status
		}
		c.stepFast()
	}
	return c.status
}

// StepBurst executes up to cycleBudget cycles with the fast path and
// WITHOUT breakpoint checks or an out-of-budget transition — exactly
// the semantics of trigger.RunUntil's inner loop (status check, then
// Step) so trigger waits can burst between firing checks. The caller
// owns the budget/trigger policy.
func (c *CPU) StepBurst(cycleBudget uint64) Status {
	start := c.cycle
	for c.status == StatusRunning && c.cycle-start < cycleBudget {
		c.stepFast()
	}
	return c.status
}
