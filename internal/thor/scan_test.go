package thor_test

import (
	"fmt"
	"math/rand"
	"testing"

	"goofi/internal/asm"
	"goofi/internal/thor"
)

func TestScanLayoutIsContiguous(t *testing.T) {
	layout := thor.ScanLayout()
	off := 0
	seen := make(map[string]bool)
	for _, f := range layout {
		if f.Offset != off {
			t.Fatalf("field %s at offset %d, expected %d (gap or overlap)", f.Name, f.Offset, off)
		}
		if seen[f.Name] {
			t.Fatalf("duplicate field name %s", f.Name)
		}
		seen[f.Name] = true
		off = f.End()
	}
	if off != thor.ScanLen() {
		t.Fatalf("layout ends at %d, ScanLen = %d", off, thor.ScanLen())
	}
}

func TestScanLayoutReadOnlyCounters(t *testing.T) {
	for _, name := range []string{"cpu.cycle", "cpu.instret"} {
		f, err := thor.ScanFieldByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if !f.ReadOnly {
			t.Errorf("%s not read-only", name)
		}
	}
	f, err := thor.ScanFieldByName("cpu.r0")
	if err != nil || f.ReadOnly {
		t.Errorf("cpu.r0: err=%v readonly=%v", err, f.ReadOnly)
	}
	if _, err := thor.ScanFieldByName("nonexistent"); err == nil {
		t.Error("ScanFieldByName(nonexistent) did not error")
	}
}

func TestScanReadWriteRoundTrip(t *testing.T) {
	c, _ := load(t, thor.DefaultConfig(), `
		ldi r1, 123
		ldi r2, -7
		la r3, data
		ld r4, [r3]
		halt
	data:
		.word 0xcafe
	`)
	for i := 0; i < 5; i++ {
		c.Step()
	}
	v := c.ScanRead()
	// Write the unchanged vector back: state must be identical.
	before := c.Snapshot()
	if err := c.ScanWrite(v); err != nil {
		t.Fatal(err)
	}
	after := c.Snapshot()
	if before.Regs != after.Regs || before.PC != after.PC || before.Flags != after.Flags {
		t.Error("ScanWrite of unmodified ScanRead changed CPU state")
	}
	if before.ICache != after.ICache || before.DCache != after.DCache {
		t.Error("ScanWrite of unmodified ScanRead changed cache state")
	}
}

func TestScanReadObservesRegisters(t *testing.T) {
	c, _ := load(t, thor.DefaultConfig(), `
		ldi r5, 77
		halt
	`)
	c.Step()
	v := c.ScanRead()
	f, err := thor.ScanFieldByName("cpu.r5")
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Uint64(f.Offset, f.Width); got != 77 {
		t.Errorf("scanned r5 = %d, want 77", got)
	}
}

func TestScanWriteInjectsRegisterFault(t *testing.T) {
	c, prog := load(t, thor.DefaultConfig(), `
		ldi r1, 8
		la r2, out
		st [r2], r1
		halt
	out:
		.word 0
	`)
	c.Step() // ldi r1, 8
	v := c.ScanRead()
	f, _ := thor.ScanFieldByName("cpu.r1")
	v.Flip(f.Offset + 2) // flip bit 2: 8 -> 12
	if err := c.ScanWrite(v); err != nil {
		t.Fatal(err)
	}
	run(t, c)
	w, _ := c.ReadWord32(prog.MustSymbol("out"))
	if w != 12 {
		t.Errorf("stored value = %d, want 12 after bit-flip in r1", w)
	}
}

func TestScanWriteReadOnlyFieldsIgnored(t *testing.T) {
	c, _ := load(t, thor.DefaultConfig(), `
		ldi r1, 1
		ldi r2, 2
		halt
	`)
	c.Step()
	c.Step()
	cyclesBefore := c.Cycle()
	v := c.ScanRead()
	f, _ := thor.ScanFieldByName("cpu.cycle")
	v.SetUint64(f.Offset, f.Width, 0) // attempt to clear the cycle counter
	if err := c.ScanWrite(v); err != nil {
		t.Fatal(err)
	}
	if c.Cycle() != cyclesBefore {
		t.Errorf("cycle counter changed by scan write: %d -> %d", cyclesBefore, c.Cycle())
	}
}

func TestScanWriteLengthMismatch(t *testing.T) {
	c := thor.New(thor.DefaultConfig())
	if err := c.ScanWrite(c.BoundaryRead()); err == nil {
		t.Error("ScanWrite with wrong-length vector did not error")
	}
}

func TestCacheParityEDMViaScanInjection(t *testing.T) {
	// Run a tight loop so the icache holds live lines, flip one data bit
	// in a valid icache word via the scan chain, and expect the parity
	// EDM on the next fetch of that word — the signature SCIFI behaviour
	// on the Thor RD's parity-protected caches.
	c, _ := load(t, thor.DefaultConfig(), `
		ldi r1, 0
	loop:
		addi r1, r1, 1
		cmpi r1, 1000
		blt loop
		halt
	`)
	for i := 0; i < 20; i++ {
		c.Step()
	}
	v := c.ScanRead()
	// Find a valid icache line and flip a bit in word 0.
	layout := thor.ScanLayout()
	injected := false
	for _, f := range layout {
		if !injected && len(f.Name) > 7 && f.Name[:6] == "icache" && hasSuffix(f.Name, ".valid") && v.Get(f.Offset) {
			// word1 of line 0 holds the loop-head instruction at
			// address 4, which is re-fetched every iteration; a
			// corrupted word0 (the preamble at address 0) would
			// never be read again and the fault would stay latent.
			lineName := f.Name[:len(f.Name)-len(".valid")]
			wf, err := thor.ScanFieldByName(lineName + ".word1")
			if err != nil {
				t.Fatal(err)
			}
			v.Flip(wf.Offset + 5)
			injected = true
		}
	}
	if !injected {
		t.Fatal("no valid icache line found to inject into")
	}
	if err := c.ScanWrite(v); err != nil {
		t.Fatal(err)
	}
	st := run(t, c)
	if st != thor.StatusDetected {
		t.Fatalf("status = %v, want detected (parity)", st)
	}
	if got := c.Detection().Mechanism; got != thor.EDMParityI {
		t.Errorf("mechanism = %v, want parity-icache", got)
	}
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

func TestScanPCInjectionCausesControlFlowError(t *testing.T) {
	c, _ := load(t, thor.DefaultConfig(), `
		ldi r1, 1
		ldi r2, 2
		halt
	`)
	c.Step()
	v := c.ScanRead()
	f, _ := thor.ScanFieldByName("cpu.pc")
	// Set a high PC bit: lands outside memory -> memory-range EDM.
	v.Flip(f.Offset + 20)
	if err := c.ScanWrite(v); err != nil {
		t.Fatal(err)
	}
	if st := run(t, c); st != thor.StatusDetected {
		t.Fatalf("status = %v, want detected", st)
	}
	if got := c.Detection().Mechanism; got != thor.EDMMemRange {
		t.Errorf("mechanism = %v, want memory-range", got)
	}
}

func TestBoundaryReadLayout(t *testing.T) {
	layout := thor.BoundaryPinLayout()
	off := 0
	for _, f := range layout {
		if f.Offset != off {
			t.Fatalf("boundary field %s at %d, expected %d", f.Name, f.Offset, off)
		}
		off = f.End()
	}
	if off != thor.BoundaryLen() {
		t.Fatalf("boundary layout ends at %d, BoundaryLen = %d", off, thor.BoundaryLen())
	}
}

func TestBoundaryWriteForcesDataPins(t *testing.T) {
	// Force data-in bit 0 high: every load gets bit 0 set.
	c, prog := load(t, thor.DefaultConfig(), `
		la r1, var
		ld r2, [r1]
		la r3, out
		st [r3], r2
		halt
	var:
		.word 8
	out:
		.word 0
	`)
	v := c.BoundaryRead()
	v.SetUint64(32, 32, 1) // data_in value: bit 0 = 1
	if err := c.BoundaryWrite(v, 0x1, 0); err != nil {
		t.Fatal(err)
	}
	run(t, c)
	w, _ := c.ReadWord32(prog.MustSymbol("out"))
	if w != 9 {
		t.Errorf("loaded-with-forced-pin value = %d, want 9", w)
	}
	// Clearing the force restores normal reads.
	c2 := thor.New(thor.DefaultConfig())
	p2, _ := asm.Assemble("ld r1, [r2]\nhalt")
	if err := c2.LoadMemory(0, p2.Image); err != nil {
		t.Fatal(err)
	}
	v2 := c2.BoundaryRead()
	if err := c2.BoundaryWrite(v2, 0xFFFF_FFFF, 0); err != nil {
		t.Fatal(err)
	}
	c2.ClearBoundaryForce()
	run(t, c2)
	// r1 loads mem[0], which is the LD instruction word itself; with the
	// force cleared it must equal the real word, not a forced value.
	want, err := c2.ReadWord32(0)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Regs[1] != want {
		t.Errorf("r1 = %#x after force cleared, want %#x", c2.Regs[1], want)
	}
}

func TestBoundaryWriteLengthMismatch(t *testing.T) {
	c := thor.New(thor.DefaultConfig())
	if err := c.BoundaryWrite(c.ScanRead(), 1, 0); err == nil {
		t.Error("BoundaryWrite with wrong-length vector did not error")
	}
}

// Property-flavoured test: random single bit-flips in the register file via
// the scan chain either change state or are masked, but never corrupt the
// simulator itself (no panics), and the outcome is deterministic per seed.
func TestScanRandomRegisterFlipsDeterministic(t *testing.T) {
	src := `
		ldi r1, 0
		ldi r2, 1
	loop:
		add r1, r1, r2
		addi r2, r2, 1
		cmpi r2, 30
		blt loop
		halt
	`
	runOnce := func(seed int64) (thor.Status, uint32, uint64) {
		c, _ := load(t, thor.DefaultConfig(), src)
		rng := rand.New(rand.NewSource(seed))
		steps := rng.Intn(50) + 1
		for i := 0; i < steps; i++ {
			c.Step()
		}
		v := c.ScanRead()
		reg := rng.Intn(thor.NumRegs)
		f, err := thor.ScanFieldByName(regName(reg))
		if err != nil {
			t.Fatal(err)
		}
		v.Flip(f.Offset + rng.Intn(32))
		if err := c.ScanWrite(v); err != nil {
			t.Fatal(err)
		}
		st := c.Run(100_000)
		return st, c.Regs[1], c.Cycle()
	}
	for seed := int64(0); seed < 30; seed++ {
		st1, r1a, cy1 := runOnce(seed)
		st2, r1b, cy2 := runOnce(seed)
		if st1 != st2 || r1a != r1b || cy1 != cy2 {
			t.Errorf("seed %d nondeterministic: (%v,%d,%d) vs (%v,%d,%d)",
				seed, st1, r1a, cy1, st2, r1b, cy2)
		}
	}
}

func regName(i int) string {
	return fmt.Sprintf("cpu.r%d", i)
}
