package thor_test

import (
	"testing"

	"goofi/internal/thor"
)

// TestRunHookFiresAtRunEntry: the chaos harness installs a one-shot
// self-clearing RunHook to wedge the emulator; the hook must fire once
// per installation, at Run entry, without perturbing execution.
func TestRunHookFiresAtRunEntry(t *testing.T) {
	c, prog := load(t, thor.DefaultConfig(), `
		ldi r1, 5
		la r2, result
		st [r2], r1
		halt
	result:
		.word 0
	`)
	fired := 0
	c.RunHook = func(cc *thor.CPU) {
		cc.RunHook = nil // one-shot
		fired++
	}
	if st := c.Run(1000); st != thor.StatusHalted {
		t.Fatalf("run status %v with hook installed", st)
	}
	if fired != 1 {
		t.Fatalf("hook fired %d times, want 1", fired)
	}
	if w, err := c.ReadWord32(prog.Symbols["result"]); err != nil || w != 5 {
		t.Errorf("result word = %d (%v), hook perturbed execution", w, err)
	}
	// Self-cleared: another Run does not re-fire it.
	c.Run(1000)
	if fired != 1 {
		t.Errorf("hook re-fired after clearing itself (%d times)", fired)
	}
}
