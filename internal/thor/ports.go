package thor

// PortSet models the memory-mapped I/O ports through which the workload
// exchanges data with the environment simulator (paper §3.2: "data may be
// exchanged with a user provided environment simulator"). Input ports are
// FIFO queues written by the host and read by IN; output ports are FIFO
// queues written by OUT and drained by the host.
type PortSet struct {
	in  map[uint16][]uint32
	out map[uint16][]uint32
}

// NewPortSet returns an empty port set.
func NewPortSet() *PortSet {
	return &PortSet{
		in:  make(map[uint16][]uint32),
		out: make(map[uint16][]uint32),
	}
}

// Reset discards all queued data.
func (p *PortSet) Reset() {
	p.in = make(map[uint16][]uint32)
	p.out = make(map[uint16][]uint32)
}

// Clone returns a deep copy of the port set, for snapshots.
func (p *PortSet) Clone() *PortSet {
	c := NewPortSet()
	c.CopyFrom(p)
	return c
}

// CopyFrom replaces the port set's contents with a deep copy of src; src
// is left untouched, so a shared snapshot can be copied onto any number
// of boards.
func (p *PortSet) CopyFrom(src *PortSet) {
	p.in = make(map[uint16][]uint32, len(src.in))
	for port, q := range src.in {
		p.in[port] = append([]uint32(nil), q...)
	}
	p.out = make(map[uint16][]uint32, len(src.out))
	for port, q := range src.out {
		p.out[port] = append([]uint32(nil), q...)
	}
}

// queuedValues counts all values held in input and output queues.
func (p *PortSet) queuedValues() int {
	n := 0
	for _, q := range p.in {
		n += len(q)
	}
	for _, q := range p.out {
		n += len(q)
	}
	return n
}

// PushInput queues values on an input port (host side).
func (p *PortSet) PushInput(port uint16, vals ...uint32) {
	p.in[port] = append(p.in[port], vals...)
}

// DrainOutput removes and returns all values written to an output port
// (host side).
func (p *PortSet) DrainOutput(port uint16) []uint32 {
	vals := p.out[port]
	p.out[port] = nil
	return vals
}

// PeekOutput returns the values on an output port without draining.
func (p *PortSet) PeekOutput(port uint16) []uint32 {
	out := make([]uint32, len(p.out[port]))
	copy(out, p.out[port])
	return out
}

// InputDepth returns the number of values queued on an input port.
func (p *PortSet) InputDepth(port uint16) int { return len(p.in[port]) }

// cpuRead pops one value from an input port, returning zero when empty
// (reading an idle bus).
func (p *PortSet) cpuRead(port uint16) uint32 {
	q := p.in[port]
	if len(q) == 0 {
		return 0
	}
	v := q[0]
	p.in[port] = q[1:]
	return v
}

// cpuWrite appends one value to an output port.
func (p *PortSet) cpuWrite(port uint16, v uint32) {
	p.out[port] = append(p.out[port], v)
}
