package thor

import (
	"errors"
	"fmt"
)

// Status is the execution state reported by Step and Run.
type Status int

// Execution states.
const (
	// StatusRunning means the CPU can execute further instructions.
	StatusRunning Status = iota
	// StatusHalted means the workload executed HALT (normal termination).
	StatusHalted
	// StatusBreakpoint means Run stopped at a breakpoint before executing
	// the instruction at PC.
	StatusBreakpoint
	// StatusIterationEnd means the workload executed TRAP TrapEndIteration,
	// pausing for environment-simulator data exchange.
	StatusIterationEnd
	// StatusDetected means a hardware EDM or an unhandled assertion
	// detected an error; the CPU stops.
	StatusDetected
	// StatusOutOfBudget means Run exhausted its cycle budget.
	StatusOutOfBudget
)

// String returns a human-readable status name.
func (s Status) String() string {
	switch s {
	case StatusRunning:
		return "running"
	case StatusHalted:
		return "halted"
	case StatusBreakpoint:
		return "breakpoint"
	case StatusIterationEnd:
		return "iteration-end"
	case StatusDetected:
		return "detected"
	case StatusOutOfBudget:
		return "out-of-budget"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// EDM identifies an error detection mechanism of the target system. The
// analysis phase classifies detected errors per mechanism (paper §3.4).
type EDM int

// Error detection mechanisms of THOR-S.
const (
	// EDMNone is the zero value; no mechanism.
	EDMNone EDM = iota
	// EDMParityI is a parity error in the instruction cache.
	EDMParityI
	// EDMParityD is a parity error in the data cache.
	EDMParityD
	// EDMIllegalOp is an undefined opcode fetch.
	EDMIllegalOp
	// EDMMisaligned is a non-word-aligned memory or PC access.
	EDMMisaligned
	// EDMMemRange is an access outside physical memory.
	EDMMemRange
	// EDMOverflow is a signed arithmetic overflow (Ada-style constraint
	// check, enabled by Config.TrapOnOverflow).
	EDMOverflow
	// EDMDivZero is a division or modulo by zero.
	EDMDivZero
	// EDMWatchdog is a watchdog timer expiry.
	EDMWatchdog
	// EDMAssertion is a failed executable assertion (software EDM).
	EDMAssertion
)

// String returns the mechanism name used in logs and reports.
func (m EDM) String() string {
	switch m {
	case EDMNone:
		return "none"
	case EDMParityI:
		return "parity-icache"
	case EDMParityD:
		return "parity-dcache"
	case EDMIllegalOp:
		return "illegal-opcode"
	case EDMMisaligned:
		return "misaligned-access"
	case EDMMemRange:
		return "memory-range"
	case EDMOverflow:
		return "arithmetic-overflow"
	case EDMDivZero:
		return "divide-by-zero"
	case EDMWatchdog:
		return "watchdog"
	case EDMAssertion:
		return "assertion"
	default:
		return fmt.Sprintf("EDM(%d)", int(m))
	}
}

// AllEDMs lists every mechanism, for per-mechanism reporting.
func AllEDMs() []EDM {
	return []EDM{
		EDMParityI, EDMParityD, EDMIllegalOp, EDMMisaligned,
		EDMMemRange, EDMOverflow, EDMDivZero, EDMWatchdog, EDMAssertion,
	}
}

// Detection records one error detection event.
type Detection struct {
	Mechanism EDM
	Cycle     uint64
	PC        uint32
	Info      string
}

// Flags is the condition code register (NZCV).
type Flags struct {
	N, Z, C, V bool
}

// Config holds the build-time parameters of a THOR-S system.
type Config struct {
	// MemSize is the physical memory size in bytes (default 64 KiB).
	MemSize uint32
	// WatchdogLimit is the maximum number of cycles between KICK
	// instructions before the watchdog EDM fires. Zero disables it.
	WatchdogLimit uint64
	// TrapOnOverflow enables the arithmetic-overflow EDM.
	TrapOnOverflow bool
	// DisableCaches bypasses the I/D caches (every access goes to
	// memory with the miss penalty). Used to isolate cache effects.
	DisableCaches bool
}

// DefaultConfig returns the configuration used by the reference target
// system: 64 KiB memory, watchdog at 200k cycles, overflow trap enabled.
func DefaultConfig() Config {
	return Config{
		MemSize:        64 * 1024,
		WatchdogLimit:  200_000,
		TrapOnOverflow: true,
	}
}

// Pins models the externally visible pins of the CPU, sampled by the
// boundary-scan register each cycle and forceable by pin-level injection.
type Pins struct {
	Address uint32 // address bus of the most recent memory access
	DataIn  uint32 // value most recently read from memory
	DataOut uint32 // value most recently written to memory
	Read    bool   // read strobe of the most recent access
	Write   bool   // write strobe of the most recent access
	Halt    bool   // halted indicator
	Error   bool   // EDM indicator
}

// PinForce describes externally forced pin values (pin-level fault
// injection via boundary-scan EXTEST). Forced bits in DataInMask replace
// the corresponding data bits on every memory read while active.
type PinForce struct {
	Active     bool
	DataInMask uint32 // which data-in bits are forced
	DataInVal  uint32 // values for the forced bits
	AddrMask   uint32 // which address bits are forced
	AddrVal    uint32
}

// CPU is one THOR-S processor instance. The zero value is not usable; use
// New. CPU is not safe for concurrent use; the campaign runner drives one
// CPU per simulated board.
type CPU struct {
	cfg Config

	// Architectural state (all of it reachable through the internal
	// scan chains).
	Regs  [NumRegs]uint32
	PC    uint32
	Flags Flags

	mem    []byte
	icache cache
	dcache cache

	cycle    uint64
	instret  uint64
	lastKick uint64

	status    Status
	detection *Detection
	events    []Detection // all detections incl. recovered assertions

	trapHandlers map[uint16]uint32
	breakpoints  map[uint32]bool
	skipBPOnce   bool

	// Predecoded-instruction cache mirroring the icache: idec[li] holds
	// the decoded forms of the words in icache line li. A line is live
	// only when its gen matches decGen, ok is set, and its tag matches
	// the icache line's tag; any write that can change icache contents
	// bumps decGen (global) or clears ok (per line). Used exclusively by
	// the fast path — Step never consults it.
	idec   [CacheLines]decLine
	decGen uint64

	ports *PortSet
	pins  Pins
	force PinForce

	// TraceHook, when non-nil, is called after every retired instruction
	// with the CPU itself; detail-mode logging and the pre-injection
	// analysis attach here.
	TraceHook func(c *CPU)

	// RunHook, when non-nil, is called once at every Run entry before
	// any instruction executes. The chaos harness attaches here to
	// simulate a wedged board: a hook that blocks stalls the run exactly
	// like silicon that stops answering the test card, recoverable only
	// by the campaign driver's watchdog.
	RunHook func(c *CPU)
}

// New returns a reset CPU with the given configuration.
func New(cfg Config) *CPU {
	if cfg.MemSize == 0 {
		cfg.MemSize = DefaultConfig().MemSize
	}
	c := &CPU{
		cfg:          cfg,
		mem:          make([]byte, cfg.MemSize),
		trapHandlers: make(map[uint16]uint32),
		breakpoints:  make(map[uint32]bool),
		ports:        NewPortSet(),
	}
	c.Reset()
	return c
}

// Config returns the CPU's configuration.
func (c *CPU) Config() Config { return c.cfg }

// Reset returns the CPU to its power-on state. Memory contents are
// preserved (the test card downloads the workload separately), matching the
// paper's reinitialise-then-download sequence.
func (c *CPU) Reset() {
	c.Regs = [NumRegs]uint32{}
	c.Regs[RegSP] = c.cfg.MemSize // full-descending stack from the top
	c.PC = 0
	c.Flags = Flags{}
	c.icache.invalidateAll()
	c.dcache.invalidateAll()
	c.cycle = 0
	c.instret = 0
	c.lastKick = 0
	c.status = StatusRunning
	c.detection = nil
	c.events = nil
	c.skipBPOnce = false
	c.pins = Pins{}
	c.force = PinForce{}
	c.ports.Reset()
	c.decGen++
}

// ClearMemory zeroes all physical memory.
func (c *CPU) ClearMemory() {
	for i := range c.mem {
		c.mem[i] = 0
	}
}

// Cycle returns the number of cycles elapsed since reset.
func (c *CPU) Cycle() uint64 { return c.cycle }

// Instret returns the number of instructions retired since reset.
func (c *CPU) Instret() uint64 { return c.instret }

// Status returns the current execution status.
func (c *CPU) Status() Status { return c.status }

// Detection returns the detection that stopped the CPU, or nil.
func (c *CPU) Detection() *Detection { return c.detection }

// Events returns every detection event recorded since reset, including
// assertion failures that were recovered from.
func (c *CPU) Events() []Detection {
	out := make([]Detection, len(c.events))
	copy(out, c.events)
	return out
}

// Ports returns the CPU's I/O port set.
func (c *CPU) Ports() *PortSet { return c.ports }

// Pins returns the current pin sample.
func (c *CPU) Pins() Pins {
	c.pins.Halt = c.status != StatusRunning
	c.pins.Error = c.status == StatusDetected
	return c.pins
}

// ForcePins installs a pin-level force (boundary-scan EXTEST).
func (c *CPU) ForcePins(f PinForce) { c.force = f }

// SetTrapHandler installs a software trap handler: executing TRAP code
// transfers control to addr instead of stopping. Used for best-effort
// recovery from executable assertions.
func (c *CPU) SetTrapHandler(code uint16, addr uint32) {
	c.trapHandlers[code] = addr
}

// AddBreakpoint arms a breakpoint at the given address.
func (c *CPU) AddBreakpoint(addr uint32) { c.breakpoints[addr] = true }

// RemoveBreakpoint disarms a breakpoint.
func (c *CPU) RemoveBreakpoint(addr uint32) { delete(c.breakpoints, addr) }

// ClearBreakpoints removes every breakpoint. The map is cleared in
// place rather than reallocated: campaigns clear it once per experiment,
// and reusing the buckets keeps the per-experiment reset allocation-free.
func (c *CPU) ClearBreakpoints() { clear(c.breakpoints) }

// errOutOfRange is a sentinel for memory range violations inside access
// helpers; it is converted to an EDM by the caller.
var errOutOfRange = errors.New("address out of range")

// LoadMemory copies data into physical memory at addr (host-side access
// used by the test card; it does not consume cycles or touch caches).
func (c *CPU) LoadMemory(addr uint32, data []byte) error {
	if uint64(addr)+uint64(len(data)) > uint64(len(c.mem)) {
		return fmt.Errorf("thor: load of %d bytes at %#x exceeds memory size %#x: %w",
			len(data), addr, len(c.mem), errOutOfRange)
	}
	copy(c.mem[addr:], data)
	return nil
}

// ReadMemory copies n bytes of physical memory starting at addr
// (host-side access).
func (c *CPU) ReadMemory(addr uint32, n int) ([]byte, error) {
	if n < 0 || uint64(addr)+uint64(n) > uint64(len(c.mem)) {
		return nil, fmt.Errorf("thor: read of %d bytes at %#x exceeds memory size %#x: %w",
			n, addr, len(c.mem), errOutOfRange)
	}
	out := make([]byte, n)
	copy(out, c.mem[addr:])
	return out, nil
}

// ReadWord32 reads one aligned word of physical memory (host-side).
func (c *CPU) ReadWord32(addr uint32) (uint32, error) {
	b, err := c.ReadMemory(addr, 4)
	if err != nil {
		return 0, err
	}
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]), nil
}

// WriteWord32 writes one aligned word of physical memory (host-side).
func (c *CPU) WriteWord32(addr, w uint32) error {
	b := [4]byte{byte(w >> 24), byte(w >> 16), byte(w >> 8), byte(w)}
	if err := c.LoadMemory(addr, b[:]); err != nil {
		return err
	}
	// Keep the data cache coherent with host-side writes so pre-runtime
	// SWIFI mutations are visible even if a stale line exists.
	c.dcache.update(addr, w)
	c.icache.update(addr, w)
	c.decGen++
	return nil
}

// memWord reads a raw word from physical memory without cache or EDM
// involvement. addr must be aligned and in range (checked by callers).
func (c *CPU) memWord(addr uint32) uint32 {
	return uint32(c.mem[addr])<<24 | uint32(c.mem[addr+1])<<16 |
		uint32(c.mem[addr+2])<<8 | uint32(c.mem[addr+3])
}

func (c *CPU) memSetWord(addr, w uint32) {
	c.mem[addr] = byte(w >> 24)
	c.mem[addr+1] = byte(w >> 16)
	c.mem[addr+2] = byte(w >> 8)
	c.mem[addr+3] = byte(w)
}

// detect stops the CPU with a detected error.
func (c *CPU) detect(m EDM, info string) {
	d := Detection{Mechanism: m, Cycle: c.cycle, PC: c.PC, Info: info}
	c.events = append(c.events, d)
	c.detection = &d
	c.status = StatusDetected
}

// fetch reads the instruction word at PC through the instruction cache.
func (c *CPU) fetch() (uint32, bool) {
	if c.PC%4 != 0 {
		c.detect(EDMMisaligned, fmt.Sprintf("instruction fetch at %#x", c.PC))
		return 0, false
	}
	if uint64(c.PC)+4 > uint64(len(c.mem)) {
		c.detect(EDMMemRange, fmt.Sprintf("instruction fetch at %#x", c.PC))
		return 0, false
	}
	w, ok := c.cachedRead(&c.icache, c.PC, EDMParityI)
	return w, ok
}

// cachedRead reads a word through the given cache, raising parityEDM on a
// parity mismatch. It assumes addr is aligned and in range.
func (c *CPU) cachedRead(ca *cache, addr uint32, parityEDM EDM) (uint32, bool) {
	if c.cfg.DisableCaches {
		c.cycle += CacheMissPenalty
		w := c.busRead(addr)
		return w, true
	}
	if w, hit, parityErr := ca.lookup(addr); hit {
		if parityErr {
			c.detect(parityEDM, fmt.Sprintf("parity mismatch at %#x", addr))
			return 0, false
		}
		c.sampleReadPins(addr, w)
		return w, true
	}
	// Miss: fill the whole line from memory.
	c.cycle += CacheMissPenalty
	base := addr &^ uint32(CacheLineBytes-1)
	var line [CacheWordsPerLine]uint32
	for i := range line {
		wa := base + uint32(i*4)
		if uint64(wa)+4 <= uint64(len(c.mem)) {
			line[i] = c.memWord(wa)
		}
	}
	ca.fill(addr, line)
	if ca == &c.icache {
		// The icache line changed; its predecoded mirror is stale.
		li, _, _ := ca.index(addr)
		c.idec[li].ok = false
	}
	w, _, parityErr := ca.lookup(addr)
	if parityErr {
		// Cannot happen right after a fill, but stay defensive: a
		// fault injected between fill and lookup via TraceHook could
		// in principle corrupt the line.
		c.detect(parityEDM, fmt.Sprintf("parity mismatch at %#x", addr))
		return 0, false
	}
	c.sampleReadPins(addr, w)
	return w, true
}

// busRead models an uncached memory read, applying any pin-level forces.
func (c *CPU) busRead(addr uint32) uint32 {
	if c.force.Active {
		addr = addr&^c.force.AddrMask | c.force.AddrVal&c.force.AddrMask
	}
	var w uint32
	if uint64(addr)+4 <= uint64(len(c.mem)) && addr%4 == 0 {
		w = c.memWord(addr)
	}
	if c.force.Active {
		w = w&^c.force.DataInMask | c.force.DataInVal&c.force.DataInMask
	}
	c.sampleReadPins(addr, w)
	return w
}

func (c *CPU) sampleReadPins(addr, w uint32) {
	c.pins.Address = addr
	c.pins.DataIn = w
	c.pins.Read = true
	c.pins.Write = false
}

// dataRead reads a data word with EDM checks and pin forcing.
func (c *CPU) dataRead(addr uint32) (uint32, bool) {
	if addr%4 != 0 {
		c.detect(EDMMisaligned, fmt.Sprintf("load at %#x", addr))
		return 0, false
	}
	if uint64(addr)+4 > uint64(len(c.mem)) {
		c.detect(EDMMemRange, fmt.Sprintf("load at %#x", addr))
		return 0, false
	}
	if c.force.Active {
		w := c.busRead(addr)
		return w, true
	}
	return c.cachedRead(&c.dcache, addr, EDMParityD)
}

// dataWrite writes a data word with EDM checks (write-through).
func (c *CPU) dataWrite(addr, w uint32) bool {
	if addr%4 != 0 {
		c.detect(EDMMisaligned, fmt.Sprintf("store at %#x", addr))
		return false
	}
	if uint64(addr)+4 > uint64(len(c.mem)) {
		c.detect(EDMMemRange, fmt.Sprintf("store at %#x", addr))
		return false
	}
	c.memSetWord(addr, w)
	c.dcache.update(addr, w)
	c.pins.Address = addr
	c.pins.DataOut = w
	c.pins.Read = false
	c.pins.Write = true
	return true
}

func (c *CPU) setNZ(v uint32) {
	c.Flags.N = int32(v) < 0
	c.Flags.Z = v == 0
}

// addWithFlags computes a+b, setting NZCV, and reports signed overflow.
func (c *CPU) addWithFlags(a, b uint32) (uint32, bool) {
	r := a + b
	c.setNZ(r)
	c.Flags.C = r < a
	c.Flags.V = (a^r)&(b^r)&0x8000_0000 != 0
	return r, c.Flags.V
}

// subWithFlags computes a-b, setting NZCV, and reports signed overflow.
func (c *CPU) subWithFlags(a, b uint32) (uint32, bool) {
	r := a - b
	c.setNZ(r)
	c.Flags.C = a >= b
	c.Flags.V = (a^b)&(a^r)&0x8000_0000 != 0
	return r, c.Flags.V
}

// Step executes one instruction. It returns the resulting status; when the
// status is not StatusRunning the CPU has stopped (or paused, for
// StatusIterationEnd) and Step becomes a no-op until the condition is
// cleared (ResumeIteration, Reset, or breakpoint resume via Run).
func (c *CPU) Step() Status {
	if c.status != StatusRunning {
		return c.status
	}
	if c.cfg.WatchdogLimit > 0 && c.cycle-c.lastKick > c.cfg.WatchdogLimit {
		c.detect(EDMWatchdog, fmt.Sprintf("no kick for %d cycles", c.cycle-c.lastKick))
		return c.status
	}
	w, ok := c.fetch()
	if !ok {
		return c.status
	}
	return c.execDecoded(Decode(w))
}

// branchTarget computes the pc-relative branch destination for the
// instruction currently at PC.
func (c *CPU) branchTarget(imm int32) uint32 {
	return uint32(int64(c.PC) + 4 + int64(imm)*4)
}

// execDecoded validates and executes one decoded instruction whose fetch
// has already happened (and been charged). It is the shared execution
// core of Step and the batched fast path: both must retire instructions
// with bit-identical effects.
func (c *CPU) execDecoded(in Instr) Status {
	if !in.Op.Valid() {
		c.detect(EDMIllegalOp, in.Op.String())
		return c.status
	}
	c.cycle += opTable[in.Op].cycles
	nextPC := c.PC + 4

	switch in.Op {
	case OpNOP:
	case OpHALT:
		c.status = StatusHalted
	case OpMOV:
		c.Regs[in.Rd] = c.Regs[in.Rs1]
	case OpLDI:
		c.Regs[in.Rd] = uint32(in.SImm())
	case OpLUI:
		c.Regs[in.Rd] = uint32(in.Imm) << 16
	case OpORI:
		c.Regs[in.Rd] = c.Regs[in.Rs1] | uint32(in.Imm)
	case OpLD:
		addr := c.Regs[in.Rs1] + uint32(in.SImm())
		v, ok := c.dataRead(addr)
		if !ok {
			return c.status
		}
		c.Regs[in.Rd] = v
	case OpST:
		addr := c.Regs[in.Rs1] + uint32(in.SImm())
		if !c.dataWrite(addr, c.Regs[in.Rd]) {
			return c.status
		}
	case OpADD:
		r, ovf := c.addWithFlags(c.Regs[in.Rs1], c.Regs[in.Rs2])
		if ovf && c.cfg.TrapOnOverflow {
			c.detect(EDMOverflow, in.String())
			return c.status
		}
		c.Regs[in.Rd] = r
	case OpADDI:
		r, ovf := c.addWithFlags(c.Regs[in.Rs1], uint32(in.SImm()))
		if ovf && c.cfg.TrapOnOverflow {
			c.detect(EDMOverflow, in.String())
			return c.status
		}
		c.Regs[in.Rd] = r
	case OpSUB:
		r, ovf := c.subWithFlags(c.Regs[in.Rs1], c.Regs[in.Rs2])
		if ovf && c.cfg.TrapOnOverflow {
			c.detect(EDMOverflow, in.String())
			return c.status
		}
		c.Regs[in.Rd] = r
	case OpSUBI:
		r, ovf := c.subWithFlags(c.Regs[in.Rs1], uint32(in.SImm()))
		if ovf && c.cfg.TrapOnOverflow {
			c.detect(EDMOverflow, in.String())
			return c.status
		}
		c.Regs[in.Rd] = r
	case OpMUL:
		r := uint32(int32(c.Regs[in.Rs1]) * int32(c.Regs[in.Rs2]))
		c.setNZ(r)
		c.Regs[in.Rd] = r
	case OpDIV, OpMOD:
		d := int32(c.Regs[in.Rs2])
		if d == 0 {
			c.detect(EDMDivZero, in.String())
			return c.status
		}
		n := int32(c.Regs[in.Rs1])
		var r int32
		if in.Op == OpDIV {
			r = n / d
		} else {
			r = n % d
		}
		c.setNZ(uint32(r))
		c.Regs[in.Rd] = uint32(r)
	case OpAND:
		r := c.Regs[in.Rs1] & c.Regs[in.Rs2]
		c.setNZ(r)
		c.Regs[in.Rd] = r
	case OpOR:
		r := c.Regs[in.Rs1] | c.Regs[in.Rs2]
		c.setNZ(r)
		c.Regs[in.Rd] = r
	case OpXOR:
		r := c.Regs[in.Rs1] ^ c.Regs[in.Rs2]
		c.setNZ(r)
		c.Regs[in.Rd] = r
	case OpNOT:
		r := ^c.Regs[in.Rs1]
		c.setNZ(r)
		c.Regs[in.Rd] = r
	case OpSHL:
		r := c.Regs[in.Rs1] << (c.Regs[in.Rs2] & 31)
		c.setNZ(r)
		c.Regs[in.Rd] = r
	case OpSHR:
		r := c.Regs[in.Rs1] >> (c.Regs[in.Rs2] & 31)
		c.setNZ(r)
		c.Regs[in.Rd] = r
	case OpSHLI:
		r := c.Regs[in.Rs1] << (in.Imm & 31)
		c.setNZ(r)
		c.Regs[in.Rd] = r
	case OpSHRI:
		r := c.Regs[in.Rs1] >> (in.Imm & 31)
		c.setNZ(r)
		c.Regs[in.Rd] = r
	case OpCMP:
		c.subWithFlags(c.Regs[in.Rs1], c.Regs[in.Rs2])
	case OpCMPI:
		c.subWithFlags(c.Regs[in.Rs1], uint32(in.SImm()))
	case OpBEQ:
		if c.Flags.Z {
			nextPC = c.branchTarget(in.SImm())
		}
	case OpBNE:
		if !c.Flags.Z {
			nextPC = c.branchTarget(in.SImm())
		}
	case OpBLT:
		if c.Flags.N != c.Flags.V {
			nextPC = c.branchTarget(in.SImm())
		}
	case OpBGE:
		if c.Flags.N == c.Flags.V {
			nextPC = c.branchTarget(in.SImm())
		}
	case OpBGT:
		if !c.Flags.Z && c.Flags.N == c.Flags.V {
			nextPC = c.branchTarget(in.SImm())
		}
	case OpBLE:
		if c.Flags.Z || c.Flags.N != c.Flags.V {
			nextPC = c.branchTarget(in.SImm())
		}
	case OpBRA:
		nextPC = c.branchTarget(in.SImm())
	case OpCALL:
		c.Regs[RegLR] = c.PC + 4
		nextPC = c.branchTarget(in.SImm())
	case OpJR:
		nextPC = c.Regs[in.Rs1]
	case OpPUSH:
		addr := c.Regs[RegSP] - 4
		if !c.dataWrite(addr, c.Regs[in.Rs1]) {
			return c.status
		}
		c.Regs[RegSP] = addr
	case OpPOP:
		v, ok := c.dataRead(c.Regs[RegSP])
		if !ok {
			return c.status
		}
		c.Regs[in.Rd] = v
		c.Regs[RegSP] += 4
	case OpIN:
		c.Regs[in.Rd] = c.ports.cpuRead(in.Imm)
	case OpOUT:
		c.ports.cpuWrite(in.Imm, c.Regs[in.Rd])
	case OpTRAP:
		if handler, ok := c.trapHandlers[in.Imm]; ok {
			c.events = append(c.events, Detection{
				Mechanism: EDMAssertion, Cycle: c.cycle, PC: c.PC,
				Info: fmt.Sprintf("trap %d handled at %#x", in.Imm, handler),
			})
			nextPC = handler
		} else {
			switch in.Imm {
			case TrapEndIteration:
				c.status = StatusIterationEnd
			default:
				c.detect(EDMAssertion, fmt.Sprintf("trap %d", in.Imm))
				return c.status
			}
		}
	case OpKICK:
		c.lastKick = c.cycle
	}

	c.PC = nextPC
	c.instret++
	if c.TraceHook != nil && c.status == StatusRunning {
		c.TraceHook(c)
	}
	return c.status
}

// ResumeIteration continues execution after StatusIterationEnd, once the
// host has exchanged environment-simulator data through the ports.
func (c *CPU) ResumeIteration() error {
	if c.status != StatusIterationEnd {
		return fmt.Errorf("thor: resume in status %v", c.status)
	}
	c.status = StatusRunning
	return nil
}

// Run executes until a breakpoint, halt, iteration end, error detection, or
// the cycle budget is exhausted. A breakpoint at the current PC does not
// re-trigger immediately after a breakpoint stop, so Run can be called
// again to continue.
func (c *CPU) Run(cycleBudget uint64) Status {
	if c.RunHook != nil {
		c.RunHook(c)
	}
	if c.status == StatusBreakpoint {
		c.status = StatusRunning
		c.skipBPOnce = true
	}
	start := c.cycle
	for c.status == StatusRunning {
		// Hoist the map lookup when no breakpoints are armed (the common
		// campaign case): len() is re-read every iteration because a
		// TraceHook may install breakpoints mid-run. When the set is
		// empty the lookup is trivially false, so skipping it (and
		// unconditionally clearing skipBPOnce, which only matters when a
		// breakpoint is armed at PC) is behaviour-preserving.
		if len(c.breakpoints) != 0 && c.breakpoints[c.PC] && !c.skipBPOnce {
			c.status = StatusBreakpoint
			return c.status
		}
		c.skipBPOnce = false
		if c.cycle-start >= cycleBudget {
			c.status = StatusOutOfBudget
			return c.status
		}
		c.Step()
	}
	return c.status
}

// ClearOutOfBudget returns an out-of-budget CPU to the running state so a
// caller with a larger budget can continue it.
func (c *CPU) ClearOutOfBudget() error {
	if c.status != StatusOutOfBudget {
		return fmt.Errorf("thor: clear-out-of-budget in status %v", c.status)
	}
	c.status = StatusRunning
	return nil
}

// CacheStats reports instruction and data cache hit/miss counts.
func (c *CPU) CacheStats() (iHits, iMisses, dHits, dMisses uint64) {
	iHits, iMisses = c.icache.stats()
	dHits, dMisses = c.dcache.stats()
	return iHits, iMisses, dHits, dMisses
}

// PinForceActive reports whether a pin-level force is currently driven
// onto the buses.
func (c *CPU) PinForceActive() bool { return c.force.Active }

// ClearTrapHandlers removes every installed trap handler, reusing the
// map's buckets (see ClearBreakpoints).
func (c *CPU) ClearTrapHandlers() { clear(c.trapHandlers) }
