package thor

import (
	"bytes"
	"fmt"
)

// SnapshotPageBytes is the page granularity at which snapshot memory is
// stored. Consecutive snapshots of the same run share the pages that did
// not change between them (copy-on-write), so a campaign checkpoint set
// costs roughly one full memory image plus the written working set.
const SnapshotPageBytes = 1024

// Snapshot captures the complete system state for exact restoration:
// architectural state, memory, caches (including hit/miss statistics),
// cycle/instret/watchdog counters, I/O port queues, trap handlers,
// breakpoints, pin state and pending detections. Reference runs, the
// pre-injection analysis and campaign checkpoint-forwarding rely on a
// restore being indistinguishable from having executed to the snapshot
// point. Pages in MemPages may be shared between snapshots and must be
// treated as immutable.
type Snapshot struct {
	Regs  [NumRegs]uint32
	PC    uint32
	Flags Flags

	// MemPages is physical memory split into SnapshotPageBytes pages
	// (the last page may be shorter); MemLen is the total byte count.
	MemPages [][]byte
	MemLen   int

	ICache [CacheLines]cacheLine
	DCache [CacheLines]cacheLine
	IHits, IMisses,
	DHits, DMisses uint64

	Cycle    uint64
	Instret  uint64
	LastKick uint64

	Status    Status
	Detection *Detection
	Events    []Detection

	TrapHandlers map[uint16]uint32
	Breakpoints  map[uint32]bool
	SkipBPOnce   bool

	Pins  Pins
	Force PinForce
	Ports *PortSet
}

// Bytes returns the approximate heap footprint of the snapshot's own
// (unshared-with-prev) data, as reported by SnapshotSharing.
func snapshotFixedBytes(s *Snapshot) int {
	n := len(s.Events) * 32
	n += len(s.TrapHandlers) * 8
	n += len(s.Breakpoints) * 8
	if s.Ports != nil {
		n += s.Ports.queuedValues() * 4
	}
	return n + 512 // struct, cache arrays, map headers
}

// Snapshot returns a deep copy of the current state. All memory pages are
// freshly allocated; use SnapshotSharing to share unchanged pages with a
// previous snapshot of the same run.
func (c *CPU) Snapshot() *Snapshot {
	s, _ := c.SnapshotSharing(nil)
	return s
}

// SnapshotSharing captures the current state like Snapshot, but memory
// pages whose contents equal the corresponding page of prev are shared
// with prev instead of copied. It returns the snapshot and the number of
// bytes that had to be freshly allocated (page data plus bookkeeping) —
// the marginal cost of keeping this snapshot alongside prev. prev may be
// nil, in which case every page is fresh.
func (c *CPU) SnapshotSharing(prev *Snapshot) (*Snapshot, int) {
	iH, iM := c.icache.stats()
	dH, dM := c.dcache.stats()
	s := &Snapshot{
		Regs:         c.Regs,
		PC:           c.PC,
		Flags:        c.Flags,
		MemLen:       len(c.mem),
		ICache:       c.icache.lines,
		DCache:       c.dcache.lines,
		IHits:        iH,
		IMisses:      iM,
		DHits:        dH,
		DMisses:      dM,
		Cycle:        c.cycle,
		Instret:      c.instret,
		LastKick:     c.lastKick,
		Status:       c.status,
		Events:       append([]Detection(nil), c.events...),
		TrapHandlers: make(map[uint16]uint32, len(c.trapHandlers)),
		Breakpoints:  make(map[uint32]bool, len(c.breakpoints)),
		SkipBPOnce:   c.skipBPOnce,
		Pins:         c.pins,
		Force:        c.force,
		Ports:        c.ports.Clone(),
	}
	if c.detection != nil {
		d := *c.detection
		s.Detection = &d
	}
	for k, v := range c.trapHandlers {
		s.TrapHandlers[k] = v
	}
	for k, v := range c.breakpoints {
		s.Breakpoints[k] = v
	}
	nPages := (len(c.mem) + SnapshotPageBytes - 1) / SnapshotPageBytes
	s.MemPages = make([][]byte, nPages)
	fresh := 0
	for i := 0; i < nPages; i++ {
		lo := i * SnapshotPageBytes
		hi := lo + SnapshotPageBytes
		if hi > len(c.mem) {
			hi = len(c.mem)
		}
		cur := c.mem[lo:hi]
		if prev != nil && i < len(prev.MemPages) && bytes.Equal(prev.MemPages[i], cur) {
			s.MemPages[i] = prev.MemPages[i]
			continue
		}
		page := make([]byte, hi-lo)
		copy(page, cur)
		s.MemPages[i] = page
		fresh += len(page)
	}
	return s, fresh + snapshotFixedBytes(s)
}

// Restore overwrites the CPU state with a snapshot taken from a CPU of
// the same configuration. The snapshot itself is not aliased: maps, port
// queues and memory pages are copied, so a snapshot can be restored onto
// any number of boards (even concurrently) without interference.
func (c *CPU) Restore(s *Snapshot) error {
	if s.MemLen != len(c.mem) {
		return fmt.Errorf("thor: snapshot memory size %d != CPU memory size %d",
			s.MemLen, len(c.mem))
	}
	c.Regs = s.Regs
	c.PC = s.PC
	c.Flags = s.Flags
	off := 0
	for _, page := range s.MemPages {
		copy(c.mem[off:], page)
		off += len(page)
	}
	c.icache.lines = s.ICache
	c.dcache.lines = s.DCache
	c.icache.hits, c.icache.misses = s.IHits, s.IMisses
	c.dcache.hits, c.dcache.misses = s.DHits, s.DMisses
	c.cycle = s.Cycle
	c.instret = s.Instret
	c.lastKick = s.LastKick
	c.status = s.Status
	c.detection = nil
	if s.Detection != nil {
		d := *s.Detection
		c.detection = &d
	}
	c.events = append(c.events[:0:0], s.Events...)
	c.trapHandlers = make(map[uint16]uint32, len(s.TrapHandlers))
	for k, v := range s.TrapHandlers {
		c.trapHandlers[k] = v
	}
	c.breakpoints = make(map[uint32]bool, len(s.Breakpoints))
	for k, v := range s.Breakpoints {
		c.breakpoints[k] = v
	}
	c.skipBPOnce = s.SkipBPOnce
	c.pins = s.Pins
	c.force = s.Force
	if s.Ports != nil {
		c.ports.CopyFrom(s.Ports)
	} else {
		c.ports.Reset()
	}
	c.decGen++
	return nil
}
