package thor_test

import (
	"bytes"
	"reflect"
	"testing"

	"goofi/internal/thor"
)

// snapshotWorkload exercises registers, caches, memory, ports and the
// trap/event machinery: a loop that accumulates and emits on a port, then
// a recovered trap, then a halt.
const snapshotWorkload = `
	ldi r1, 0
	ldi r2, 1
loop:
	add r1, r1, r2
	out 5, r1
	la r3, buf
	st [r3], r1
	addi r2, r2, 1
	cmpi r2, 40
	ble loop
	trap 7
	halt
handler:
	halt
buf:
	.word 0
`

// runToCompletion drives the CPU to a halt, resuming iteration ends, and
// returns the drained port-5 output stream.
func runToCompletion(t *testing.T, c *thor.CPU) []uint32 {
	t.Helper()
	for {
		switch st := c.Run(1_000_000); st {
		case thor.StatusHalted, thor.StatusDetected:
			return c.Ports().DrainOutput(5)
		case thor.StatusIterationEnd:
			if err := c.ResumeIteration(); err != nil {
				t.Fatal(err)
			}
		default:
			t.Fatalf("unexpected status %v", st)
		}
	}
}

// finalState captures everything observable after a run for comparison.
type finalState struct {
	scan    []byte
	mem     []byte
	status  thor.Status
	events  []thor.Detection
	outputs []uint32
	cycle   uint64
	instret uint64
}

func captureFinal(t *testing.T, c *thor.CPU, outputs []uint32) finalState {
	t.Helper()
	scan, err := c.ScanRead().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	mem, err := c.ReadMemory(0, 256)
	if err != nil {
		t.Fatal(err)
	}
	return finalState{
		scan:    scan,
		mem:     mem,
		status:  c.Status(),
		events:  c.Events(),
		outputs: outputs,
		cycle:   c.Cycle(),
		instret: c.Instret(),
	}
}

func TestSnapshotRestoreFullFidelity(t *testing.T) {
	c, prog := load(t, thor.DefaultConfig(), snapshotWorkload)
	c.SetTrapHandler(7, prog.MustSymbol("handler"))
	c.Ports().PushInput(3, 11, 22)

	// Run partway into the loop, then snapshot.
	if st := c.Run(60); st != thor.StatusOutOfBudget {
		t.Fatalf("mid-run status = %v", st)
	}
	if err := c.ClearOutOfBudget(); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	preScan, _ := c.ScanRead().MarshalBinary()

	// Cold continuation to the end.
	want := captureFinal(t, c, runToCompletion(t, c))
	if want.status != thor.StatusHalted {
		t.Fatalf("final status = %v", want.status)
	}
	if len(want.events) != 1 || want.events[0].Mechanism != thor.EDMAssertion {
		t.Fatalf("events = %+v, want one recovered assertion", want.events)
	}

	// Restore onto the same CPU and re-run: every observable must match.
	if err := c.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if s, _ := c.ScanRead().MarshalBinary(); !bytes.Equal(s, preScan) {
		t.Fatal("restored scan state differs from snapshot point")
	}
	got := captureFinal(t, c, runToCompletion(t, c))
	if !reflect.DeepEqual(want, got) {
		t.Errorf("same-CPU restore diverged:\nwant %+v\ngot  %+v", want, got)
	}

	// Restore onto a different board (cross-board forwarding): identical.
	c2 := thor.New(thor.DefaultConfig())
	if err := c2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	got2 := captureFinal(t, c2, runToCompletion(t, c2))
	if !reflect.DeepEqual(want, got2) {
		t.Errorf("cross-CPU restore diverged:\nwant %+v\ngot  %+v", want, got2)
	}
}

func TestSnapshotImmutableWhileCPUAdvances(t *testing.T) {
	c, _ := load(t, thor.DefaultConfig(), snapshotWorkload)
	if st := c.Run(50); st != thor.StatusOutOfBudget {
		t.Fatalf("status = %v", st)
	}
	if err := c.ClearOutOfBudget(); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	scanAt, _ := c.ScanRead().MarshalBinary()
	memAt, _ := c.ReadMemory(0, 256)

	// Advance well past the snapshot point: stores mutate CPU memory.
	runToCompletion(t, c)

	c2 := thor.New(thor.DefaultConfig())
	if err := c2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	scanNow, _ := c2.ScanRead().MarshalBinary()
	memNow, _ := c2.ReadMemory(0, 256)
	if !bytes.Equal(scanAt, scanNow) {
		t.Error("snapshot scan state mutated by later execution")
	}
	if !bytes.Equal(memAt, memNow) {
		t.Error("snapshot memory mutated by later execution")
	}
}

func TestSnapshotSharingSharesUnchangedPages(t *testing.T) {
	c, _ := load(t, thor.DefaultConfig(), snapshotWorkload)
	if st := c.Run(40); st != thor.StatusOutOfBudget {
		t.Fatalf("status = %v", st)
	}
	if err := c.ClearOutOfBudget(); err != nil {
		t.Fatal(err)
	}
	first, firstBytes := c.SnapshotSharing(nil)
	if firstBytes <= 0 {
		t.Fatalf("first snapshot reports %d fresh bytes", firstBytes)
	}

	// A few more instructions touch at most a page or two of memory.
	if st := c.Run(40); st != thor.StatusOutOfBudget {
		t.Fatalf("status = %v", st)
	}
	if err := c.ClearOutOfBudget(); err != nil {
		t.Fatal(err)
	}
	second, secondBytes := c.SnapshotSharing(first)
	if secondBytes >= firstBytes {
		t.Errorf("second snapshot fresh bytes %d >= first %d: no page sharing", secondBytes, firstBytes)
	}
	shared := 0
	for i := range second.MemPages {
		if i < len(first.MemPages) && len(first.MemPages[i]) > 0 &&
			len(second.MemPages[i]) > 0 && &first.MemPages[i][0] == &second.MemPages[i][0] {
			shared++
		}
	}
	if shared == 0 {
		t.Error("no memory pages shared between consecutive snapshots")
	}

	// Shared pages must still restore the first snapshot exactly.
	cA := thor.New(thor.DefaultConfig())
	if err := cA.Restore(first); err != nil {
		t.Fatal(err)
	}
	if cA.Cycle() != first.Cycle {
		t.Errorf("restored cycle %d != snapshot cycle %d", cA.Cycle(), first.Cycle)
	}
}
