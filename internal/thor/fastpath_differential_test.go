package thor_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"goofi/internal/asm"
	"goofi/internal/thor"
)

// The fast path's contract is byte identity: every architecturally
// visible bit — cycle count, instret, registers, flags, cache contents
// and counters, pins, detections, memory — must match cycle-accurate
// execution exactly. These tests drive random programs and targeted
// corner cases through Run and RunFast in lockstep and diff the full
// machine state.

// diffCPUs fails the test if the two CPUs differ in any observable way.
func diffCPUs(t *testing.T, slow, fast *thor.CPU, label string) {
	t.Helper()
	if a, b := slow.Status(), fast.Status(); a != b {
		t.Fatalf("%s: status %v != %v", label, a, b)
	}
	if a, b := slow.Cycle(), fast.Cycle(); a != b {
		t.Fatalf("%s: cycle %d != %d", label, a, b)
	}
	if a, b := slow.Instret(), fast.Instret(); a != b {
		t.Fatalf("%s: instret %d != %d", label, a, b)
	}
	if slow.PC != fast.PC {
		t.Fatalf("%s: pc %#x != %#x", label, slow.PC, fast.PC)
	}
	if slow.Regs != fast.Regs {
		t.Fatalf("%s: regs %v != %v", label, slow.Regs, fast.Regs)
	}
	if slow.Flags != fast.Flags {
		t.Fatalf("%s: flags %+v != %+v", label, slow.Flags, fast.Flags)
	}
	ih1, im1, dh1, dm1 := slow.CacheStats()
	ih2, im2, dh2, dm2 := fast.CacheStats()
	if ih1 != ih2 || im1 != im2 || dh1 != dh2 || dm1 != dm2 {
		t.Fatalf("%s: cache stats (%d,%d,%d,%d) != (%d,%d,%d,%d)",
			label, ih1, im1, dh1, dm1, ih2, im2, dh2, dm2)
	}
	if a, b := slow.Pins(), fast.Pins(); a != b {
		t.Fatalf("%s: pins %+v != %+v", label, a, b)
	}
	if !reflect.DeepEqual(slow.Events(), fast.Events()) {
		t.Fatalf("%s: events %+v != %+v", label, slow.Events(), fast.Events())
	}
	if !reflect.DeepEqual(slow.Detection(), fast.Detection()) {
		t.Fatalf("%s: detection %+v != %+v", label, slow.Detection(), fast.Detection())
	}
	// The scan chain covers regs, pc, flags, and both caches' full
	// contents including parity bits, plus the cycle/instret counters.
	if !slow.ScanRead().Equal(fast.ScanRead()) {
		t.Fatalf("%s: scan chains differ", label)
	}
	sz := int(slow.Config().MemSize)
	ma, err := slow.ReadMemory(0, sz)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := fast.ReadMemory(0, sz)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ma, mb) {
		t.Fatalf("%s: memory differs", label)
	}
}

// randProgram emits a random but structurally interesting instruction
// stream: arithmetic, memory traffic through a data window, short
// forward/backward branches, calls, traps (handled and terminal),
// watchdog kicks, and the occasional garbage word so illegal-opcode
// EDMs get exercised too.
func randProgram(rng *rand.Rand, words int) []byte {
	img := make([]byte, 0, words*4)
	emit := func(w uint32) { img = append(img, byte(w>>24), byte(w>>16), byte(w>>8), byte(w)) }
	enc := func(op thor.Opcode, rd, rs1, rs2 uint8, imm uint16) {
		emit(thor.Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Imm: imm}.Encode())
	}
	reg := func() uint8 { return uint8(rng.Intn(13)) } // keep SP/LR out of the blast radius
	for i := 0; i < words; i++ {
		switch p := rng.Intn(100); {
		case p < 25: // register arithmetic / logic
			ops := []thor.Opcode{thor.OpADD, thor.OpSUB, thor.OpMUL, thor.OpAND,
				thor.OpOR, thor.OpXOR, thor.OpSHL, thor.OpSHR, thor.OpNOT, thor.OpMOV}
			enc(ops[rng.Intn(len(ops))], reg(), reg(), reg(), 0)
		case p < 40: // immediates
			ops := []thor.Opcode{thor.OpLDI, thor.OpLUI, thor.OpORI, thor.OpADDI,
				thor.OpSUBI, thor.OpSHLI, thor.OpSHRI, thor.OpCMPI}
			enc(ops[rng.Intn(len(ops))], reg(), reg(), 0, uint16(rng.Intn(1<<16)))
		case p < 50: // memory traffic: base register reloaded to a safe window first
			base := reg()
			enc(thor.OpLDI, base, 0, 0, uint16(0x4000+rng.Intn(64)*4))
			if rng.Intn(2) == 0 {
				enc(thor.OpLD, reg(), base, 0, uint16(rng.Intn(16)*4))
			} else {
				enc(thor.OpST, reg(), base, 0, uint16(rng.Intn(16)*4))
			}
			i += 2
		case p < 58: // compare + short conditional branch (forward only, bounded)
			enc(thor.OpCMP, 0, reg(), reg(), 0)
			br := []thor.Opcode{thor.OpBEQ, thor.OpBNE, thor.OpBLT,
				thor.OpBGE, thor.OpBGT, thor.OpBLE}
			enc(br[rng.Intn(len(br))], 0, 0, 0, uint16(1+rng.Intn(4)))
			i++
		case p < 62: // occasional short backward branch to re-run a stretch
			if i > 8 {
				enc(thor.OpCMPI, 0, reg(), 0, uint16(rng.Intn(4)))
				enc(thor.OpBEQ, 0, 0, 0, uint16(0x10000-uint32(2+rng.Intn(4))))
				i++
			} else {
				enc(thor.OpNOP, 0, 0, 0, 0)
			}
		case p < 70: // div/mod (divide-by-zero EDM reachable)
			if rng.Intn(4) == 0 {
				enc(thor.OpDIV, reg(), reg(), reg(), 0)
			} else {
				d := reg()
				enc(thor.OpLDI, d, 0, 0, uint16(1+rng.Intn(100)))
				enc(thor.OpMOD, reg(), reg(), d, 0)
				i++
			}
		case p < 76: // stack
			if rng.Intn(2) == 0 {
				enc(thor.OpPUSH, 0, reg(), 0, 0)
			} else {
				enc(thor.OpPOP, reg(), 0, 0, 0)
			}
		case p < 82: // ports
			if rng.Intn(2) == 0 {
				enc(thor.OpIN, reg(), 0, 0, uint16(rng.Intn(4)))
			} else {
				enc(thor.OpOUT, reg(), 0, 0, uint16(rng.Intn(4)))
			}
		case p < 88: // watchdog kick
			enc(thor.OpKICK, 0, 0, 0, 0)
		case p < 92: // handled trap or iteration end
			if rng.Intn(3) == 0 {
				enc(thor.OpTRAP, 0, 0, 0, thor.TrapEndIteration)
			} else {
				enc(thor.OpTRAP, 0, 0, 0, 7)
			}
		case p < 94: // raw garbage word — illegal opcodes must EDM identically
			emit(rng.Uint32())
		default:
			enc(thor.OpNOP, 0, 0, 0, 0)
		}
	}
	// Terminate deterministically if the stream runs off the end.
	hw := thor.Instr{Op: thor.OpHALT}.Encode()
	img = append(img, byte(hw>>24), byte(hw>>16), byte(hw>>8), byte(hw))
	return img
}

// newPair loads the same image into two fresh CPUs and installs
// identical trap handlers.
func newPair(t *testing.T, cfg thor.Config, img []byte) (slow, fast *thor.CPU) {
	t.Helper()
	slow, fast = thor.New(cfg), thor.New(cfg)
	for _, c := range []*thor.CPU{slow, fast} {
		if err := c.LoadMemory(0, img); err != nil {
			t.Fatal(err)
		}
		c.SetTrapHandler(7, 0) // handled trap restarts the program
	}
	return slow, fast
}

// driveLockstep runs both CPUs chunk by chunk (slow via Run, fast via
// RunFast), resuming iteration ends and budget stops identically, and
// diffs the full state after every chunk.
func driveLockstep(t *testing.T, slow, fast *thor.CPU, chunk, maxCycles uint64) {
	t.Helper()
	for step := 0; ; step++ {
		a := slow.Run(chunk)
		b := fast.RunFast(chunk)
		if a != b {
			t.Fatalf("chunk %d: status %v != %v", step, a, b)
		}
		diffCPUs(t, slow, fast, fmt.Sprintf("chunk %d", step))
		if slow.Cycle() > maxCycles {
			return // ran long enough
		}
		switch a {
		case thor.StatusIterationEnd:
			if err := slow.ResumeIteration(); err != nil {
				t.Fatal(err)
			}
			if err := fast.ResumeIteration(); err != nil {
				t.Fatal(err)
			}
		case thor.StatusOutOfBudget:
			if err := slow.ClearOutOfBudget(); err != nil {
				t.Fatal(err)
			}
			if err := fast.ClearOutOfBudget(); err != nil {
				t.Fatal(err)
			}
		default:
			return // halted, detected, breakpoint — terminal for this drive
		}
	}
}

func TestFastPathDifferentialRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			img := randProgram(rng, 64+rng.Intn(192))
			cfg := thor.DefaultConfig()
			cfg.WatchdogLimit = 5_000 // make watchdog reachable
			slow, fast := newPair(t, cfg, img)
			// Uneven chunk sizes stress the per-instruction budget compare.
			chunk := uint64(37 + rng.Intn(400))
			driveLockstep(t, slow, fast, chunk, 60_000)
		})
	}
}

func TestFastPathDifferentialDisabledCaches(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	img := randProgram(rng, 128)
	cfg := thor.DefaultConfig()
	cfg.DisableCaches = true
	slow, fast := newPair(t, cfg, img)
	driveLockstep(t, slow, fast, 211, 40_000)
}

func TestFastPathDifferentialBreakpoints(t *testing.T) {
	src := `
		ldi r1, 0
		ldi r2, 1
	loop:
		add r1, r1, r2
		addi r2, r2, 1
		kick
		cmpi r2, 200
		ble loop
		halt
	`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	slow, fast := newPair(t, thor.DefaultConfig(), prog.Image)
	bp := prog.MustSymbol("loop")
	slow.AddBreakpoint(bp)
	fast.AddBreakpoint(bp)
	// Ride through a number of breakpoint stops, then clear and finish.
	for i := 0; i < 10; i++ {
		a, b := slow.Run(100_000), fast.RunFast(100_000)
		if a != b || a != thor.StatusBreakpoint {
			t.Fatalf("stop %d: status %v / %v, want breakpoint", i, a, b)
		}
		diffCPUs(t, slow, fast, fmt.Sprintf("bp stop %d", i))
	}
	slow.ClearBreakpoints()
	fast.ClearBreakpoints()
	a, b := slow.Run(100_000), fast.RunFast(100_000)
	if a != b || a != thor.StatusHalted {
		t.Fatalf("final: status %v / %v, want halted", a, b)
	}
	diffCPUs(t, slow, fast, "final")
}

func TestFastPathDifferentialWatchdog(t *testing.T) {
	src := `
	loop:
		addi r1, r1, 1
		bra loop
	`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := thor.DefaultConfig()
	cfg.WatchdogLimit = 777
	slow, fast := newPair(t, cfg, prog.Image)
	a, b := slow.Run(1_000_000), fast.RunFast(1_000_000)
	if a != b || a != thor.StatusDetected {
		t.Fatalf("status %v / %v, want detected", a, b)
	}
	if slow.Detection().Mechanism != thor.EDMWatchdog {
		t.Fatalf("mechanism %v, want watchdog", slow.Detection().Mechanism)
	}
	diffCPUs(t, slow, fast, "watchdog")
}

// TestFastPathDifferentialScanWriteFaults injects the same random scan
// chain bit flip into both CPUs mid-run — including flips landing in
// icache data/parity arrays, which must invalidate the predecoded
// mirror — then continues both and diffs.
func TestFastPathDifferentialScanWriteFaults(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(1000 + seed))
			img := randProgram(rng, 96)
			slow, fast := newPair(t, thor.DefaultConfig(), img)
			// Warm both up so the caches (and the fast CPU's predecoded
			// mirror) are populated.
			warm := uint64(50 + rng.Intn(500))
			if a, b := slow.Run(warm), fast.RunFast(warm); a != b {
				t.Fatalf("warmup status %v != %v", a, b)
			}
			if slow.Status() != thor.StatusOutOfBudget {
				t.Skip("program ended before warmup budget")
			}
			// Same single-bit fault into both scan chains.
			bit := rng.Intn(thor.ScanLen())
			for _, c := range []*thor.CPU{slow, fast} {
				v := c.ScanRead()
				v.Flip(bit)
				if err := c.ScanWrite(v); err != nil {
					t.Fatal(err)
				}
				if err := c.ClearOutOfBudget(); err != nil {
					t.Fatal(err)
				}
			}
			diffCPUs(t, slow, fast, "post-inject")
			driveLockstep(t, slow, fast, 173, 20_000)
		})
	}
}

// TestFastPathDifferentialWriteWord32 rewrites an instruction word
// mid-run on both CPUs (host-side SWIFI mutation); the icache update
// must invalidate the predecoded mirror.
func TestFastPathDifferentialWriteWord32(t *testing.T) {
	src := `
	loop:
		addi r1, r1, 1
		kick
		nop
		bra loop
	`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	slow, fast := newPair(t, thor.DefaultConfig(), prog.Image)
	if a, b := slow.Run(100), fast.RunFast(100); a != b {
		t.Fatalf("warmup status %v != %v", a, b)
	}
	// Replace the nop with halt while the loop line is hot in both
	// icaches (WriteWord32 write-through updates it).
	haltW := thor.Instr{Op: thor.OpHALT}.Encode()
	nopAddr := uint32(8) // third instruction
	for _, c := range []*thor.CPU{slow, fast} {
		if err := c.WriteWord32(nopAddr, haltW); err != nil {
			t.Fatal(err)
		}
		if err := c.ClearOutOfBudget(); err != nil {
			t.Fatal(err)
		}
	}
	a, b := slow.Run(100_000), fast.RunFast(100_000)
	if a != b || a != thor.StatusHalted {
		t.Fatalf("status %v / %v, want halted", a, b)
	}
	diffCPUs(t, slow, fast, "post-rewrite")
}

// TestFastPathDifferentialSnapshotRestore restores the same snapshot
// into both CPUs and continues one slow, one fast.
func TestFastPathDifferentialSnapshotRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	img := randProgram(rng, 128)
	slow, fast := newPair(t, thor.DefaultConfig(), img)
	slow.Run(400)
	snap := slow.Snapshot()
	if err := fast.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if err := slow.Restore(snap); err != nil { // normalize both through Restore
		t.Fatal(err)
	}
	diffCPUs(t, slow, fast, "post-restore")
	if slow.Status() == thor.StatusOutOfBudget {
		slow.ClearOutOfBudget()
		fast.ClearOutOfBudget()
	}
	driveLockstep(t, slow, fast, 311, 30_000)
}

// TestStepBurstMatchesStepLoop pins StepBurst to the exact semantics of
// the equivalent Step loop (status check, then step, no out-of-budget
// transition).
func TestStepBurstMatchesStepLoop(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(7000 + seed))
		img := randProgram(rng, 96)
		slow, fast := newPair(t, thor.DefaultConfig(), img)
		for burst := 0; burst < 50; burst++ {
			budget := uint64(1 + rng.Intn(200))
			start := slow.Cycle()
			for slow.Status() == thor.StatusRunning && slow.Cycle()-start < budget {
				slow.Step()
			}
			fast.StepBurst(budget)
			diffCPUs(t, slow, fast, fmt.Sprintf("seed %d burst %d", seed, burst))
			if slow.Status() == thor.StatusIterationEnd {
				slow.ResumeIteration()
				fast.ResumeIteration()
			} else if slow.Status() != thor.StatusRunning {
				break
			}
		}
	}
}

// Benchmarks: the satellite-1 hoist (empty breakpoint set) and the
// fast path against cycle-accurate execution on a busy loop.

func benchImage(b *testing.B) []byte {
	b.Helper()
	prog, err := asm.Assemble(`
		ldi r2, 1
	loop:
		addi r2, r2, 1
		mul r3, r2, r2
		xor r4, r3, r2
		and r5, r4, r3
		kick
		cmpi r2, 0
		bne loop
		halt
	`)
	if err != nil {
		b.Fatal(err)
	}
	return prog.Image
}

func benchRun(b *testing.B, armed bool, fast bool) {
	img := benchImage(b)
	c := thor.New(thor.DefaultConfig())
	if err := c.LoadMemory(0, img); err != nil {
		b.Fatal(err)
	}
	if armed {
		c.AddBreakpoint(0xFFFC) // never hit, but forces the map lookup
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var st thor.Status
		if fast {
			st = c.RunFast(10_000)
		} else {
			st = c.Run(10_000)
		}
		if st != thor.StatusOutOfBudget {
			b.Fatalf("status %v", st)
		}
		b.StopTimer()
		if err := c.ClearOutOfBudget(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func BenchmarkRunEmptyBreakpointSet(b *testing.B) { benchRun(b, false, false) }
func BenchmarkRunArmedBreakpoint(b *testing.B)   { benchRun(b, true, false) }
func BenchmarkRunFast(b *testing.B)              { benchRun(b, false, true) }
