// Package thor implements THOR-S, a cycle-counting simulator of a 32-bit
// microprocessor in the spirit of the Thor RD used as the GOOFI target in
// the paper: 16 general-purpose registers, parity-protected instruction and
// data caches, hardware error detection mechanisms (EDMs), a watchdog timer,
// I/O ports for an environment simulator, and full internal state exposure
// for scan-chain implemented fault injection.
//
// THOR-S is a synthetic stand-in for the proprietary, radiation-hardened
// Thor RD: what matters for fault injection is that every architectural
// latch is reachable (for injection and observation) and that realistic
// error detection mechanisms classify the consequences of injected faults.
package thor

import "fmt"

// Opcode identifies a THOR-S machine instruction.
type Opcode uint8

// Instruction opcodes. The encoding is 32-bit fixed width:
//
//	[31:24] opcode  [23:20] rd  [19:16] rs1  [15:12] rs2  [15:0] imm16
//
// rs2 and imm16 overlap; each opcode uses one or the other.
const (
	OpNOP  Opcode = 0x00 // no operation
	OpHALT Opcode = 0x01 // stop execution, workload finished
	OpMOV  Opcode = 0x02 // rd = rs1
	OpLDI  Opcode = 0x03 // rd = signext(imm16)
	OpLUI  Opcode = 0x04 // rd = imm16 << 16
	OpORI  Opcode = 0x05 // rd = rs1 | zeroext(imm16)
	OpLD   Opcode = 0x06 // rd = mem32[rs1 + signext(imm16)]
	OpST   Opcode = 0x07 // mem32[rs1 + signext(imm16)] = rd
	OpADD  Opcode = 0x08 // rd = rs1 + rs2 (sets NZCV)
	OpADDI Opcode = 0x09 // rd = rs1 + signext(imm16) (sets NZCV)
	OpSUB  Opcode = 0x0A // rd = rs1 - rs2 (sets NZCV)
	OpSUBI Opcode = 0x0B // rd = rs1 - signext(imm16) (sets NZCV)
	OpMUL  Opcode = 0x0C // rd = rs1 * rs2 (sets NZ)
	OpDIV  Opcode = 0x0D // rd = rs1 / rs2 signed (trap on zero divisor)
	OpMOD  Opcode = 0x0E // rd = rs1 % rs2 signed (trap on zero divisor)
	OpAND  Opcode = 0x0F // rd = rs1 & rs2 (sets NZ)
	OpOR   Opcode = 0x10 // rd = rs1 | rs2 (sets NZ)
	OpXOR  Opcode = 0x11 // rd = rs1 ^ rs2 (sets NZ)
	OpNOT  Opcode = 0x12 // rd = ^rs1 (sets NZ)
	OpSHL  Opcode = 0x13 // rd = rs1 << (rs2 & 31) (sets NZ)
	OpSHR  Opcode = 0x14 // rd = rs1 >> (rs2 & 31) logical (sets NZ)
	OpSHLI Opcode = 0x15 // rd = rs1 << (imm16 & 31) (sets NZ)
	OpSHRI Opcode = 0x16 // rd = rs1 >> (imm16 & 31) logical (sets NZ)
	OpCMP  Opcode = 0x17 // flags from rs1 - rs2
	OpCMPI Opcode = 0x18 // flags from rs1 - signext(imm16)
	OpBEQ  Opcode = 0x19 // if Z: pc += signext(imm16)*4
	OpBNE  Opcode = 0x1A // if !Z
	OpBLT  Opcode = 0x1B // if N != V (signed less)
	OpBGE  Opcode = 0x1C // if N == V
	OpBGT  Opcode = 0x1D // if !Z && N == V
	OpBLE  Opcode = 0x1E // if Z || N != V
	OpBRA  Opcode = 0x1F // pc += signext(imm16)*4 unconditionally
	OpCALL Opcode = 0x20 // LR = pc+4; pc += signext(imm16)*4
	OpJR   Opcode = 0x21 // pc = rs1
	OpPUSH Opcode = 0x22 // SP -= 4; mem32[SP] = rs1
	OpPOP  Opcode = 0x23 // rd = mem32[SP]; SP += 4
	OpIN   Opcode = 0x24 // rd = port[imm16]
	OpOUT  Opcode = 0x25 // port[imm16] <- rd
	OpTRAP Opcode = 0x26 // software trap with code imm16
	OpKICK Opcode = 0x27 // kick (reset) the watchdog timer
)

// Register aliases used by the assembler and the calling convention.
const (
	// RegSP is the stack pointer register (r14).
	RegSP = 14
	// RegLR is the link register written by CALL (r15).
	RegLR = 15
	// NumRegs is the number of general-purpose registers.
	NumRegs = 16
)

// Software trap codes with architectural meaning. Other codes are available
// to workloads.
const (
	// TrapAssertFail signals a failed executable assertion. If a trap
	// handler is installed (best-effort recovery), execution continues at
	// the handler; otherwise the CPU halts with a detected error.
	TrapAssertFail = 1
	// TrapEndIteration marks the end of one workload loop iteration.
	// The CPU pauses with StatusIterationEnd so the host can exchange
	// data with the environment simulator, then Run may be called again.
	TrapEndIteration = 2
)

// Instr is a decoded THOR-S instruction.
type Instr struct {
	Op  Opcode
	Rd  uint8  // destination (or source for ST/OUT/PUSH via Rd/Rs1 fields)
	Rs1 uint8  // first source
	Rs2 uint8  // second source
	Imm uint16 // raw 16-bit immediate
}

// SImm returns the immediate sign-extended to 32 bits.
func (in Instr) SImm() int32 { return int32(int16(in.Imm)) }

// Encode packs the instruction into its 32-bit machine form. Rs2 and Imm
// overlap in the encoding (Rs2 occupies the top nibble of Imm); an opcode
// uses one or the other, so set only the relevant field.
func (in Instr) Encode() uint32 {
	return uint32(in.Op)<<24 |
		uint32(in.Rd&0xF)<<20 |
		uint32(in.Rs1&0xF)<<16 |
		uint32(in.Rs2&0xF)<<12 |
		uint32(in.Imm)
}

// Decode unpacks a 32-bit machine word. Decoding never fails; invalid
// opcodes are caught at execution time by the illegal-instruction EDM, which
// is essential for fault injection into the instruction stream.
func Decode(w uint32) Instr {
	return Instr{
		Op:  Opcode(w >> 24),
		Rd:  uint8(w >> 20 & 0xF),
		Rs1: uint8(w >> 16 & 0xF),
		Rs2: uint8(w >> 12 & 0xF),
		Imm: uint16(w),
	}
}

// opInfo describes static properties of an opcode.
type opInfo struct {
	name   string
	cycles uint64 // base cost, excluding cache-miss penalties
	valid  bool
}

var opTable = [256]opInfo{
	OpNOP:  {"NOP", 1, true},
	OpHALT: {"HALT", 1, true},
	OpMOV:  {"MOV", 1, true},
	OpLDI:  {"LDI", 1, true},
	OpLUI:  {"LUI", 1, true},
	OpORI:  {"ORI", 1, true},
	OpLD:   {"LD", 2, true},
	OpST:   {"ST", 2, true},
	OpADD:  {"ADD", 1, true},
	OpADDI: {"ADDI", 1, true},
	OpSUB:  {"SUB", 1, true},
	OpSUBI: {"SUBI", 1, true},
	OpMUL:  {"MUL", 4, true},
	OpDIV:  {"DIV", 12, true},
	OpMOD:  {"MOD", 12, true},
	OpAND:  {"AND", 1, true},
	OpOR:   {"OR", 1, true},
	OpXOR:  {"XOR", 1, true},
	OpNOT:  {"NOT", 1, true},
	OpSHL:  {"SHL", 1, true},
	OpSHR:  {"SHR", 1, true},
	OpSHLI: {"SHLI", 1, true},
	OpSHRI: {"SHRI", 1, true},
	OpCMP:  {"CMP", 1, true},
	OpCMPI: {"CMPI", 1, true},
	OpBEQ:  {"BEQ", 2, true},
	OpBNE:  {"BNE", 2, true},
	OpBLT:  {"BLT", 2, true},
	OpBGE:  {"BGE", 2, true},
	OpBGT:  {"BGT", 2, true},
	OpBLE:  {"BLE", 2, true},
	OpBRA:  {"BRA", 2, true},
	OpCALL: {"CALL", 2, true},
	OpJR:   {"JR", 2, true},
	OpPUSH: {"PUSH", 2, true},
	OpPOP:  {"POP", 2, true},
	OpIN:   {"IN", 2, true},
	OpOUT:  {"OUT", 2, true},
	OpTRAP: {"TRAP", 2, true},
	OpKICK: {"KICK", 1, true},
}

// Valid reports whether op is a defined THOR-S opcode.
func (op Opcode) Valid() bool { return opTable[op].valid }

// String returns the mnemonic, or a hex form for invalid opcodes.
func (op Opcode) String() string {
	if opTable[op].valid {
		return opTable[op].name
	}
	return fmt.Sprintf("OP(%#02x)", uint8(op))
}

// IsBranch reports whether op is a (conditional or unconditional)
// pc-relative branch. Used by the branch-execution fault trigger.
func (op Opcode) IsBranch() bool {
	switch op {
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBGT, OpBLE, OpBRA:
		return true
	}
	return false
}

// IsCall reports whether op transfers control to a subprogram. Used by the
// subprogram-call fault trigger.
func (op Opcode) IsCall() bool { return op == OpCALL }

// IsMemAccess reports whether op reads or writes data memory. Used by the
// data-access fault trigger.
func (op Opcode) IsMemAccess() bool {
	switch op {
	case OpLD, OpST, OpPUSH, OpPOP:
		return true
	}
	return false
}

// String renders the instruction in assembler-like form.
func (in Instr) String() string {
	switch in.Op {
	case OpNOP, OpHALT:
		return in.Op.String()
	case OpMOV, OpNOT:
		return fmt.Sprintf("%s r%d, r%d", in.Op, in.Rd, in.Rs1)
	case OpLDI, OpLUI:
		return fmt.Sprintf("%s r%d, %d", in.Op, in.Rd, int16(in.Imm))
	case OpORI:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	case OpLD:
		return fmt.Sprintf("LD r%d, [r%d%+d]", in.Rd, in.Rs1, int16(in.Imm))
	case OpST:
		return fmt.Sprintf("ST [r%d%+d], r%d", in.Rs1, int16(in.Imm), in.Rd)
	case OpADD, OpSUB, OpMUL, OpDIV, OpMOD, OpAND, OpOR, OpXOR, OpSHL, OpSHR:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs1, in.Rs2)
	case OpADDI, OpSUBI, OpSHLI, OpSHRI:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs1, int16(in.Imm))
	case OpCMP:
		return fmt.Sprintf("CMP r%d, r%d", in.Rs1, in.Rs2)
	case OpCMPI:
		return fmt.Sprintf("CMPI r%d, %d", in.Rs1, int16(in.Imm))
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBGT, OpBLE, OpBRA, OpCALL:
		return fmt.Sprintf("%s %+d", in.Op, int16(in.Imm))
	case OpJR, OpPUSH:
		return fmt.Sprintf("%s r%d", in.Op, in.Rs1)
	case OpPOP:
		return fmt.Sprintf("POP r%d", in.Rd)
	case OpIN:
		return fmt.Sprintf("IN r%d, %d", in.Rd, in.Imm)
	case OpOUT:
		return fmt.Sprintf("OUT %d, r%d", in.Imm, in.Rd)
	case OpTRAP:
		return fmt.Sprintf("TRAP %d", in.Imm)
	case OpKICK:
		return "KICK"
	default:
		return fmt.Sprintf("%s rd=%d rs1=%d imm=%#x", in.Op, in.Rd, in.Rs1, in.Imm)
	}
}
