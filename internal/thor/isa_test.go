package thor

import (
	"strings"
	"testing"
	"testing/quick"
)

// negImm converts a negative immediate to its 16-bit two's-complement
// encoding (constant conversions would overflow at compile time).
func negImm(v int) uint16 {
	x := int16(v)
	return uint16(x)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tests := []Instr{
		{Op: OpNOP},
		{Op: OpLDI, Rd: 3, Imm: 0x1234},
		{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpST, Rd: 15, Rs1: 14, Imm: 0xFFFC},
		{Op: OpBEQ, Imm: negImm(-5)},
		{Op: OpTRAP, Imm: 2},
	}
	for _, in := range tests {
		got := Decode(in.Encode())
		if got.Op != in.Op || got.Rd != in.Rd || got.Rs1 != in.Rs1 {
			t.Errorf("round trip %v -> %v", in, got)
		}
		if in.Op == OpADD && got.Rs2 != in.Rs2 {
			t.Errorf("rs2 lost: %v -> %v", in, got)
		}
		if in.Op != OpADD && got.Imm != in.Imm {
			t.Errorf("imm lost: %v -> %v", in, got)
		}
	}
}

// Property: Encode/Decode round-trips every field combination (Imm-form
// instructions preserve Imm; register-form preserve Rs2).
func TestPropertyEncodeDecode(t *testing.T) {
	f := func(opRaw, rd, rs1, rs2 uint8, imm uint16) bool {
		in := Instr{
			Op:  Opcode(opRaw),
			Rd:  rd & 0xF,
			Rs1: rs1 & 0xF,
			Rs2: rs2 & 0xF,
		}
		// Rs2 and Imm overlap; test the two encodings separately.
		regForm := in
		got := Decode(regForm.Encode())
		if got.Op != in.Op || got.Rd != in.Rd || got.Rs1 != in.Rs1 || got.Rs2 != in.Rs2 {
			return false
		}
		immForm := Instr{Op: in.Op, Rd: in.Rd, Rs1: in.Rs1, Imm: imm}
		got = Decode(immForm.Encode())
		return got.Op == in.Op && got.Rd == in.Rd && got.Rs1 == in.Rs1 && got.Imm == imm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpcodeClassification(t *testing.T) {
	branches := []Opcode{OpBEQ, OpBNE, OpBLT, OpBGE, OpBGT, OpBLE, OpBRA}
	for _, op := range branches {
		if !op.IsBranch() {
			t.Errorf("%v not classified as branch", op)
		}
	}
	for _, op := range []Opcode{OpADD, OpCALL, OpJR, OpHALT} {
		if op.IsBranch() {
			t.Errorf("%v wrongly classified as branch", op)
		}
	}
	if !OpCALL.IsCall() || OpJR.IsCall() {
		t.Error("call classification wrong")
	}
	for _, op := range []Opcode{OpLD, OpST, OpPUSH, OpPOP} {
		if !op.IsMemAccess() {
			t.Errorf("%v not classified as memory access", op)
		}
	}
	if OpADD.IsMemAccess() {
		t.Error("ADD classified as memory access")
	}
}

func TestOpcodeValidity(t *testing.T) {
	valid := 0
	for op := 0; op < 256; op++ {
		if Opcode(op).Valid() {
			valid++
		}
	}
	if valid != 40 {
		t.Errorf("valid opcode count = %d, want 40", valid)
	}
	if Opcode(0xFF).Valid() {
		t.Error("0xFF reported valid")
	}
	if !strings.Contains(Opcode(0xFF).String(), "0xff") {
		t.Errorf("invalid opcode string = %q", Opcode(0xFF))
	}
}

func TestInstrStringForms(t *testing.T) {
	tests := map[string]Instr{
		"NOP":               {Op: OpNOP},
		"LDI r1, -3":        {Op: OpLDI, Rd: 1, Imm: negImm(-3)},
		"ADD r1, r2, r3":    {Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3},
		"LD r4, [r5+8]":     {Op: OpLD, Rd: 4, Rs1: 5, Imm: 8},
		"ST [r5-4], r4":     {Op: OpST, Rd: 4, Rs1: 5, Imm: negImm(-4)},
		"CMP r1, r2":        {Op: OpCMP, Rs1: 1, Rs2: 2},
		"BEQ +10":           {Op: OpBEQ, Imm: 10},
		"JR r15":            {Op: OpJR, Rs1: 15},
		"POP r7":            {Op: OpPOP, Rd: 7},
		"IN r1, 3":          {Op: OpIN, Rd: 1, Imm: 3},
		"OUT 5, r2":         {Op: OpOUT, Rd: 2, Imm: 5},
		"TRAP 1":            {Op: OpTRAP, Imm: 1},
		"KICK":              {Op: OpKICK},
		"MOV r2, r9":        {Op: OpMOV, Rd: 2, Rs1: 9},
		"SHLI r1, r2, 4":    {Op: OpSHLI, Rd: 1, Rs1: 2, Imm: 4},
		"CMPI r3, -1":       {Op: OpCMPI, Rs1: 3, Imm: negImm(-1)},
		"ORI r1, r1, 65535": {Op: OpORI, Rd: 1, Rs1: 1, Imm: 0xFFFF},
	}
	for want, in := range tests {
		if got := in.String(); got != want {
			t.Errorf("String(%#v) = %q, want %q", in, got, want)
		}
	}
}

func TestSImmSignExtension(t *testing.T) {
	if got := (Instr{Imm: 0xFFFF}).SImm(); got != -1 {
		t.Errorf("SImm(0xFFFF) = %d", got)
	}
	if got := (Instr{Imm: 0x7FFF}).SImm(); got != 32767 {
		t.Errorf("SImm(0x7FFF) = %d", got)
	}
}
