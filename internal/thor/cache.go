package thor

import "math/bits"

// Cache geometry. THOR-S uses small direct-mapped caches so that cache
// state is a meaningful but bounded share of the scan-chain bits, like the
// parity-protected instruction and data caches of the Thor RD.
const (
	// CacheLines is the number of lines per cache.
	CacheLines = 16
	// CacheWordsPerLine is the number of 32-bit words per line.
	CacheWordsPerLine = 4
	// CacheLineBytes is the line size in bytes.
	CacheLineBytes = CacheWordsPerLine * 4
	// CacheMissPenalty is the extra cycle cost of a line fill.
	CacheMissPenalty = 8
)

// cacheLine is one direct-mapped line: tag, valid bit, data words and one
// parity bit per word. Parity is computed on fill; a fault injected into
// the data or parity arrays is caught by the parity EDM on the next hit,
// exactly as in the parity-protected Thor RD caches.
type cacheLine struct {
	tag    uint32
	valid  bool
	data   [CacheWordsPerLine]uint32
	parity [CacheWordsPerLine]bool
}

// cache is a direct-mapped, write-through, parity-protected cache.
type cache struct {
	lines  [CacheLines]cacheLine
	hits   uint64
	misses uint64
}

func parityOf(w uint32) bool { return bits.OnesCount32(w)%2 == 1 }

func (c *cache) index(addr uint32) (line, word uint32, tag uint32) {
	word = addr / 4 % CacheWordsPerLine
	line = addr / CacheLineBytes % CacheLines
	tag = addr / (CacheLineBytes * CacheLines)
	return line, word, tag
}

// lookup returns the cached word for addr if present and parity-clean.
// ok reports a hit; parityErr reports a parity mismatch (which is also a
// hit in the sense that stale data was found — the EDM fires).
func (c *cache) lookup(addr uint32) (w uint32, ok, parityErr bool) {
	li, wi, tag := c.index(addr)
	ln := &c.lines[li]
	if !ln.valid || ln.tag != tag {
		c.misses++
		return 0, false, false
	}
	c.hits++
	if ln.parity[wi] != parityOf(ln.data[wi]) {
		return ln.data[wi], true, true
	}
	return ln.data[wi], true, false
}

// fill loads the line containing addr from memory words. lineWords must
// contain the CacheWordsPerLine words of the aligned line.
func (c *cache) fill(addr uint32, lineWords [CacheWordsPerLine]uint32) {
	li, _, tag := c.index(addr)
	ln := &c.lines[li]
	ln.tag = tag
	ln.valid = true
	for i, w := range lineWords {
		ln.data[i] = w
		ln.parity[i] = parityOf(w)
	}
}

// update writes a word through the cache (write-through with
// write-allocate bypass: only lines already present are updated).
func (c *cache) update(addr, w uint32) {
	li, wi, tag := c.index(addr)
	ln := &c.lines[li]
	if ln.valid && ln.tag == tag {
		ln.data[wi] = w
		ln.parity[wi] = parityOf(w)
	}
}

// invalidateAll clears every line, as a reset does.
func (c *cache) invalidateAll() {
	for i := range c.lines {
		c.lines[i] = cacheLine{}
	}
	c.hits, c.misses = 0, 0
}

// Stats reports hit/miss counters since the last reset.
func (c *cache) stats() (hits, misses uint64) { return c.hits, c.misses }
