package sqldb

import (
	"strings"
	"testing"
)

func indexedTable(t *testing.T) *DB {
	t.Helper()
	db := Open()
	db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY, a INTEGER, s TEXT)`)
	for i := int64(0); i < 10; i++ {
		db.MustExec(`INSERT INTO t VALUES (?, ?, ?)`, Int(i), Int(i%3), Text("x"))
	}
	return db
}

func TestCreateIndexDDL(t *testing.T) {
	db := indexedTable(t)
	if _, err := db.Exec(`CREATE INDEX t_a ON t (a)`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT id FROM t WHERE a = ?`, Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("indexed lookup returned %d rows, want 3", len(res.Rows))
	}
	// Duplicate name errors unless IF NOT EXISTS.
	if _, err := db.Exec(`CREATE INDEX t_a ON t (a)`); err == nil {
		t.Error("duplicate index name accepted")
	}
	if _, err := db.Exec(`CREATE INDEX IF NOT EXISTS t_a ON t (a)`); err != nil {
		t.Errorf("IF NOT EXISTS errored: %v", err)
	}
}

func TestCreateIndexErrors(t *testing.T) {
	db := indexedTable(t)
	if _, err := db.Exec(`CREATE INDEX nope_ix ON nope (a)`); err == nil {
		t.Error("index on unknown table accepted")
	}
	if _, err := db.Exec(`CREATE INDEX t_bad ON t (missing)`); err == nil {
		t.Error("index on unknown column accepted")
	}
}

func TestCreateIndexParseErrors(t *testing.T) {
	for _, sql := range []string{
		`CREATE INDEX ON t (a)`,
		`CREATE INDEX ix ON t`,
		`CREATE INDEX ix ON t ()`,
		`CREATE INDEX ix t (a)`,
	} {
		if _, err := Parse(sql); err == nil {
			t.Errorf("parsed invalid DDL: %s", sql)
		}
	}
}

func TestIndexMaintainedAcrossMutation(t *testing.T) {
	db := indexedTable(t)
	db.MustExec(`CREATE INDEX t_a ON t (a)`)
	db.MustExec(`UPDATE t SET a = ? WHERE a = ?`, Int(7), Int(1))
	db.MustExec(`DELETE FROM t WHERE a = ?`, Int(2))
	count := func(v int64) int64 {
		r, err := db.Query(`SELECT COUNT(*) FROM t WHERE a = ?`, Int(v))
		if err != nil {
			t.Fatal(err)
		}
		return r.Rows[0][0].I
	}
	if got := count(7); got != 3 {
		t.Errorf("a=7 count %d, want 3", got)
	}
	if got := count(1); got != 0 {
		t.Errorf("a=1 count %d, want 0", got)
	}
	if got := count(2); got != 0 {
		t.Errorf("a=2 count %d, want 0", got)
	}
}

func TestIndexPersistsAcrossSaveLoad(t *testing.T) {
	db := indexedTable(t)
	db.MustExec(`CREATE INDEX t_a ON t (a)`)
	var buf writerBuffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := Open()
	if err := db2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	t2 := db2.tables["t"]
	if t2 == nil || !t2.hasIndexOn([]string{"a"}) {
		t.Fatal("index definition lost across save/load")
	}
	// The reloaded index must be populated, not just declared.
	ix := t2.indexOn([]string{"a"})
	if got := len(ix.lookup(map[string]Value{"a": Int(1)})); got != 3 {
		t.Errorf("reloaded index lookup returned %d rows, want 3", got)
	}
	// And rejected as duplicate when re-declared.
	if _, err := db2.Exec(`CREATE INDEX t_a ON t (a)`); err == nil {
		t.Error("duplicate index accepted after load")
	}
}

func TestFKIndexesAutoCreated(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE parent (id INTEGER PRIMARY KEY)`)
	db.MustExec(`CREATE TABLE child (
		cid INTEGER PRIMARY KEY,
		pid INTEGER,
		FOREIGN KEY (pid) REFERENCES parent (id)
	)`)
	c := db.tables["child"]
	if !c.hasIndexOn([]string{"pid"}) {
		t.Fatal("no automatic index on FK column")
	}
	found := false
	for _, ix := range c.Indexes {
		if strings.HasSuffix(ix.Name, "_auto") {
			found = true
		}
	}
	if !found {
		t.Error("automatic FK index not named *_auto")
	}
}

func TestIndexSelectionSkipsNonEquality(t *testing.T) {
	db := indexedTable(t)
	db.MustExec(`CREATE INDEX t_a ON t (a)`)
	// Range and OR predicates must not be routed through the index.
	r, err := db.Query(`SELECT COUNT(*) FROM t WHERE a > ?`, Int(0))
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 6 {
		t.Errorf("a > 0 count %d, want 6", r.Rows[0][0].I)
	}
	r, err = db.Query(`SELECT COUNT(*) FROM t WHERE a = ? OR a = ?`, Int(0), Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 7 {
		t.Errorf("a=0 OR a=1 count %d, want 7", r.Rows[0][0].I)
	}
}
