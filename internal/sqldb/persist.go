package sqldb

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// fileFormat is the persisted database image. Only exported DTO types go
// through gob, so the in-memory representation can evolve independently.
type fileFormat struct {
	Magic   string
	Version int
	Tables  []tableDTO
}

type tableDTO struct {
	Name    string
	Cols    []Column
	PKCols  []string
	FKs     []ForeignKey
	Indexes []indexDTO // definitions only; contents rebuild on load
	Rows    [][]Value
}

type indexDTO struct {
	Name string
	Cols []string
}

const (
	fileMagic   = "GOOFI-SQLDB"
	fileVersion = 1
)

// Save writes the whole database to w.
func (db *DB) Save(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ff := fileFormat{Magic: fileMagic, Version: fileVersion}
	for _, name := range db.order {
		t := db.tables[name]
		td := tableDTO{
			Name:   t.Name,
			Cols:   t.Cols,
			PKCols: t.PKCols,
			FKs:    t.FKs,
			Rows:   t.Rows,
		}
		for _, ix := range t.Indexes {
			td.Indexes = append(td.Indexes, indexDTO{Name: ix.Name, Cols: ix.Cols})
		}
		ff.Tables = append(ff.Tables, td)
	}
	if err := gob.NewEncoder(w).Encode(&ff); err != nil {
		return fmt.Errorf("sqldb: save: %w", err)
	}
	return nil
}

// Load reads a database image produced by Save, replacing all contents.
func (db *DB) Load(r io.Reader) error {
	var ff fileFormat
	if err := gob.NewDecoder(r).Decode(&ff); err != nil {
		return fmt.Errorf("sqldb: load: %w", err)
	}
	if ff.Magic != fileMagic {
		return fmt.Errorf("sqldb: load: bad magic %q", ff.Magic)
	}
	if ff.Version != fileVersion {
		return fmt.Errorf("sqldb: load: unsupported version %d", ff.Version)
	}
	tables := make(map[string]*Table, len(ff.Tables))
	var order []string
	for _, td := range ff.Tables {
		t := &Table{
			Name:   td.Name,
			Cols:   td.Cols,
			PKCols: td.PKCols,
			FKs:    td.FKs,
			Rows:   td.Rows,
		}
		for _, ixd := range td.Indexes {
			if err := t.addIndex(ixd.Name, ixd.Cols); err != nil {
				return fmt.Errorf("sqldb: load table %s: %w", td.Name, err)
			}
		}
		// Images from before secondary indexes existed carry no index
		// definitions; recreate the automatic FK indexes.
		if err := t.ensureFKIndexes(); err != nil {
			return fmt.Errorf("sqldb: load table %s: %w", td.Name, err)
		}
		if err := t.rebuildIndex(); err != nil {
			return fmt.Errorf("sqldb: load table %s: %w", td.Name, err)
		}
		tables[td.Name] = t
		order = append(order, td.Name)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.tables = tables
	db.order = order
	return nil
}

// SaveFile writes the database to a file, atomically via a temp file in
// the same directory.
func (db *DB) SaveFile(path string) error {
	tmp, err := os.CreateTemp(dirOf(path), ".sqldb-*")
	if err != nil {
		return fmt.Errorf("sqldb: save file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := db.Save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("sqldb: save file: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("sqldb: save file: %w", err)
	}
	return nil
}

// LoadFile reads a database image from a file.
func (db *DB) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("sqldb: load file: %w", err)
	}
	defer f.Close()
	return db.Load(f)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}
