package sqldb

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
)

// fileFormat is the persisted database image. Only exported DTO types go
// through gob, so the in-memory representation can evolve independently.
type fileFormat struct {
	Magic   string
	Version int
	// Epoch counts checkpoints. A WAL whose epoch record differs from
	// the snapshot's epoch predates (or postdates) the snapshot and is
	// never replayed onto it. Images written before WAL support decode
	// with Epoch 0, matching a fresh log.
	Epoch  uint64
	Tables []tableDTO
}

type tableDTO struct {
	Name    string
	Cols    []Column
	PKCols  []string
	FKs     []ForeignKey
	Indexes []indexDTO // definitions only; contents rebuild on load
	Rows    [][]Value
}

type indexDTO struct {
	Name string
	Cols []string
}

const (
	fileMagic   = "GOOFI-SQLDB"
	fileVersion = 1
)

// Save writes the whole database to w. This is the snapshot half of
// persistence only; with a WAL attached, use Checkpoint so the log is
// compacted in step with the snapshot's epoch.
func (db *DB) Save(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.saveLocked(w, db.epoch)
}

// saveLocked writes the snapshot with the given epoch. Callers hold
// db.mu (read or write).
func (db *DB) saveLocked(w io.Writer, epoch uint64) error {
	ff := fileFormat{Magic: fileMagic, Version: fileVersion, Epoch: epoch}
	for _, name := range db.order {
		t := db.tables[name]
		td := tableDTO{
			Name:   t.Name,
			Cols:   t.Cols,
			PKCols: t.PKCols,
			FKs:    t.FKs,
			Rows:   t.Rows,
		}
		for _, ix := range t.Indexes {
			td.Indexes = append(td.Indexes, indexDTO{Name: ix.Name, Cols: ix.Cols})
		}
		ff.Tables = append(ff.Tables, td)
	}
	if err := gob.NewEncoder(w).Encode(&ff); err != nil {
		return fmt.Errorf("sqldb: save: %w", err)
	}
	return nil
}

// Load reads a database image produced by Save, replacing all contents.
func (db *DB) Load(r io.Reader) error {
	var ff fileFormat
	if err := gob.NewDecoder(r).Decode(&ff); err != nil {
		return fmt.Errorf("sqldb: load: %w", err)
	}
	if ff.Magic != fileMagic {
		return fmt.Errorf("sqldb: load: bad magic %q", ff.Magic)
	}
	if ff.Version != fileVersion {
		return fmt.Errorf("sqldb: load: unsupported version %d", ff.Version)
	}
	tables := make(map[string]*Table, len(ff.Tables))
	var order []string
	for _, td := range ff.Tables {
		t := &Table{
			Name:   td.Name,
			Cols:   td.Cols,
			PKCols: td.PKCols,
			FKs:    td.FKs,
			Rows:   td.Rows,
		}
		for _, ixd := range td.Indexes {
			if err := t.addIndex(ixd.Name, ixd.Cols); err != nil {
				return fmt.Errorf("sqldb: load table %s: %w", td.Name, err)
			}
		}
		// Images from before secondary indexes existed carry no index
		// definitions; recreate the automatic FK indexes.
		if err := t.ensureFKIndexes(); err != nil {
			return fmt.Errorf("sqldb: load table %s: %w", td.Name, err)
		}
		if err := t.rebuildIndex(); err != nil {
			return fmt.Errorf("sqldb: load table %s: %w", td.Name, err)
		}
		tables[td.Name] = t
		order = append(order, td.Name)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.tables = tables
	db.order = order
	db.epoch = ff.Epoch
	return nil
}

// SaveFile writes the database to a file, atomically via a temp file in
// the same directory.
func (db *DB) SaveFile(path string) error {
	tmp, err := os.CreateTemp(dirOf(path), ".sqldb-*")
	if err != nil {
		return fmt.Errorf("sqldb: save file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := db.Save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("sqldb: save file: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("sqldb: save file: %w", err)
	}
	return nil
}

// LoadFile reads a database image from a file.
func (db *DB) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("sqldb: load file: %w", err)
	}
	defer f.Close()
	return db.Load(f)
}

// OpenAt opens (or creates) a durable database backed by a snapshot file
// at path and a write-ahead log at path+".wal". Recovery runs on open:
// the snapshot is loaded, then the log — if its epoch matches the
// snapshot's — is replayed on top of it, with any torn tail from an
// interrupted write truncated away. Every later write statement is
// appended to the log, so the database loses at most the records since
// the last durability barrier on a crash, instead of everything since
// the last full save.
func OpenAt(path string, policy SyncPolicy) (*DB, error) {
	db := Open()
	if _, err := os.Stat(path); err == nil {
		if err := db.LoadFile(path); err != nil {
			return nil, err
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("sqldb: open %s: %w", path, err)
	}
	f, err := os.OpenFile(WALPath(path), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sqldb: open wal: %w", err)
	}
	// Replay before attaching the WAL: replayed statements re-execute
	// through Exec and must not be logged a second time.
	applied, good, err := db.replayWAL(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("sqldb: truncate wal tail: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("sqldb: open wal: %w", err)
	}
	wal := &WAL{bw: bufio.NewWriterSize(f, 32<<10), f: f, policy: policy}
	if good == 0 {
		// Empty or stale log: start a fresh one for the current epoch.
		wal.writeFrame(encodeEpochPayload(nil, db.epoch))
		wal.syncLocked()
		if wal.err != nil {
			f.Close()
			return nil, wal.err
		}
	}
	db.mu.Lock()
	db.wal = wal
	db.snapPath = path
	// Statements replayed from the log are ahead of the snapshot, so the
	// database opens dirty and the next checkpoint folds them in.
	db.dirty = applied > 0
	db.mu.Unlock()
	return db, nil
}

// Checkpoint compacts the log into the snapshot: the full image is
// written atomically (temp file + fsync + rename) with the next epoch,
// then the log is reset to that epoch. A crash between the two steps is
// safe — the snapshot's epoch no longer matches the old log, so recovery
// loads the snapshot (which already contains every logged record) and
// discards the log.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal == nil || db.snapPath == "" {
		return fmt.Errorf("sqldb: checkpoint: database has no backing file (use OpenAt)")
	}
	next := db.epoch + 1
	tmp, err := os.CreateTemp(dirOf(db.snapPath), ".sqldb-*")
	if err != nil {
		return fmt.Errorf("sqldb: checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := db.saveLocked(tmp, next); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("sqldb: checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("sqldb: checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), db.snapPath); err != nil {
		return fmt.Errorf("sqldb: checkpoint: %w", err)
	}
	if err := db.wal.Reset(next); err != nil {
		return err
	}
	db.epoch = next
	db.dirty = false
	mCompactions.Inc()
	return nil
}

// Dirty reports whether write statements reached the WAL since the last
// Checkpoint (including statements replayed from the log on open). A
// clean database needs no compaction: its snapshot already holds
// everything in memory.
func (db *DB) Dirty() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.dirty
}

// Close flushes and closes the write-ahead log. In-memory databases
// (plain Open) close trivially.
func (db *DB) Close() error {
	db.mu.Lock()
	w := db.wal
	db.wal = nil
	db.mu.Unlock()
	if w == nil {
		return nil
	}
	return w.Close()
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}
