package sqldb

import "testing"

// fuzzSeeds is the seed corpus for the parser/lexer fuzzers: every
// statement shape the engine supports, drawn from the GOOFI schema (Fig
// 4), the campaign store's statements, the analysis queries and this
// package's own test suite, plus edge shapes (quoting, blobs, unary
// minus, aggregates, parameters) that have historically been the risky
// corners of hand-rolled recursive-descent parsers.
var fuzzSeeds = []string{
	// GOOFI schema (campaign.Schema) and analysis DDL.
	`CREATE TABLE IF NOT EXISTS TargetSystemData (
		targetName   TEXT PRIMARY KEY,
		testCardName TEXT NOT NULL,
		config       BLOB NOT NULL
	)`,
	`CREATE TABLE IF NOT EXISTS CampaignData (
		campaignName TEXT PRIMARY KEY,
		targetName   TEXT NOT NULL,
		testCardName TEXT,
		config       BLOB NOT NULL,
		FOREIGN KEY (targetName) REFERENCES TargetSystemData (targetName)
	)`,
	`CREATE TABLE IF NOT EXISTS LoggedSystemState (
		experimentName   TEXT PRIMARY KEY,
		parentExperiment TEXT,
		campaignName     TEXT NOT NULL,
		step             INTEGER NOT NULL,
		experimentData   BLOB NOT NULL,
		stateVector      BLOB NOT NULL,
		FOREIGN KEY (campaignName) REFERENCES CampaignData (campaignName)
	)`,
	`CREATE INDEX IF NOT EXISTS LoggedSystemStateByParent
		ON LoggedSystemState (parentExperiment)`,
	`CREATE TABLE t (a INTEGER, b REAL, c TEXT UNIQUE, d BLOB, PRIMARY KEY (a, c))`,
	`DROP TABLE IF EXISTS LoggedSystemState`,
	// Store statements.
	`INSERT INTO LoggedSystemState VALUES (?, ?, ?, ?, ?, ?)`,
	`INSERT INTO LoggedSystemState VALUES (?, ?, ?, ?, ?, ?), (?, ?, ?, ?, ?, ?)`,
	`UPDATE TargetSystemData SET testCardName = ?, config = ? WHERE targetName = ?`,
	`DELETE FROM LoggedSystemState WHERE campaignName = ?`,
	`SELECT config FROM CampaignData WHERE campaignName = ?`,
	`SELECT experimentName, parentExperiment, campaignName, step, experimentData, stateVector
		FROM LoggedSystemState WHERE campaignName = ? AND step = -1 ORDER BY experimentName`,
	`SELECT DISTINCT parentExperiment FROM LoggedSystemState WHERE campaignName = ? AND step >= 0`,
	`UPDATE CampaignCheckpoint SET planHash = ?, cursor = ? WHERE campaignName = ?`,
	// Aggregates, grouping, ordering, limits.
	`SELECT campaignName, COUNT(*), COUNT(DISTINCT step) FROM LoggedSystemState
		GROUP BY campaignName ORDER BY campaignName DESC LIMIT 10 OFFSET 2`,
	`SELECT MIN(step), MAX(step), AVG(step), SUM(step), TOTAL(step) FROM LoggedSystemState`,
	`SELECT COUNT(*) + 1, SUM(a) / COUNT(a) FROM t`,
	`SELECT * FROM t WHERE a IN (1, 2, 3) AND b BETWEEN -1.5 AND 2.5e3`,
	`SELECT a AS x, b y FROM t WHERE (a = 1 OR NOT b < 2) AND c IS NOT NULL`,
	`SELECT * FROM t WHERE c LIKE 'exp%' ORDER BY a ASC, b DESC`,
	// Literal and operator edges.
	`INSERT INTO t VALUES (-9223372036854775808, 1.5e-300, 'it''s', x'DEADBEEF')`,
	`INSERT INTO t (a, b) VALUES (1 + 2 * -3 % 4, 5.0 / 0.5)`,
	`SELECT 'unterminated`,
	`SELECT x'0`,
	`SELECT x'zz'`,
	`SELECT 1e`,
	`SELECT 1.2.3`,
	`SELECT ?`,
	`SELECT -?`,
	`SELECT ((((1))))`,
	`SELECT "double" FROM "quoted"`,
	"",
	"   \t\n  ",
	`;`,
	`SELECT`,
	`CREATE`,
	`CREATE TABLE`,
	`INSERT INTO`,
	`( ) , = < > <= >= <> != + - * / %`,
}

// FuzzParseSQL asserts the parser never panics: any input must produce a
// statement or an error, never a crash. (A fault injection tool ought to
// survive faults injected into its own SQL.)
func FuzzParseSQL(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		st, err := Parse(sql)
		if err == nil && st == nil {
			t.Fatalf("Parse(%q) returned neither statement nor error", sql)
		}
	})
}

// FuzzLexer drives the tokenizer alone, so lexical crashes are not
// masked by early parser errors.
func FuzzLexer(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		toks, err := lex(sql)
		if err == nil && len(toks) == 0 {
			t.Fatalf("lex(%q) returned no tokens and no error (missing EOF)", sql)
		}
	})
}
