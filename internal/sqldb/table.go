package sqldb

import (
	"fmt"
)

// Column is one column of a table schema.
type Column struct {
	Name    string
	Type    Kind
	NotNull bool
	Unique  bool
}

// ForeignKey is a resolved foreign key constraint.
type ForeignKey struct {
	Cols     []string
	RefTable string
	RefCols  []string
}

// Table holds a schema and its rows. Access is coordinated by DB.
type Table struct {
	Name    string
	Cols    []Column
	PKCols  []string
	FKs     []ForeignKey
	Indexes []*Index
	Rows    [][]Value
	pkIndex map[string]int // primary key tuple -> row index
	pkCols  []int          // cached PKCols positions
	fkCols  [][]int        // cached FK column positions, parallel to FKs
}

// colIndex returns the index of a column by name.
func (t *Table) colIndex(name string) (int, error) {
	for i, c := range t.Cols {
		if c.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("sqldb: table %s has no column %q", t.Name, name)
}

// colIndexes maps a list of names to indexes.
func (t *Table) colIndexes(names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		ci, err := t.colIndex(n)
		if err != nil {
			return nil, err
		}
		out[i] = ci
	}
	return out, nil
}

// pkColIdx returns the cached positions of the primary key columns.
func (t *Table) pkColIdx() []int {
	if t.pkCols == nil && len(t.PKCols) > 0 {
		idx, err := t.colIndexes(t.PKCols)
		if err != nil {
			return nil
		}
		t.pkCols = idx
	}
	return t.pkCols
}

// fkColIdx returns the cached positions of the i-th foreign key's columns.
func (t *Table) fkColIdx(i int) ([]int, error) {
	if t.fkCols == nil {
		t.fkCols = make([][]int, len(t.FKs))
	}
	if t.fkCols[i] == nil {
		idx, err := t.colIndexes(t.FKs[i].Cols)
		if err != nil {
			return nil, err
		}
		t.fkCols[i] = idx
	}
	return t.fkCols[i], nil
}

// pkKey extracts the primary key tuple of a row as an index key. Returns
// "" when the table has no primary key.
func (t *Table) pkKey(row []Value) string {
	if len(t.PKCols) == 0 {
		return ""
	}
	return rowKey(row, t.pkColIdx())
}

// rebuildIndex reconstructs the primary key index and every secondary
// index from the rows.
func (t *Table) rebuildIndex() error {
	if len(t.PKCols) == 0 {
		t.pkIndex = nil
	} else {
		t.pkIndex = make(map[string]int, len(t.Rows))
		for i, row := range t.Rows {
			k := t.pkKey(row)
			if _, dup := t.pkIndex[k]; dup {
				return fmt.Errorf("sqldb: duplicate primary key %s in table %s", k, t.Name)
			}
			t.pkIndex[k] = i
		}
	}
	for _, ix := range t.Indexes {
		ix.populate(t.Rows)
	}
	return nil
}

// indexInsert records a freshly appended row (at position ri) in every
// secondary index.
func (t *Table) indexInsert(ri int, row []Value) {
	for _, ix := range t.Indexes {
		ix.insert(ri, row)
	}
}

// indexUpdate re-keys row ri in every secondary index after an update.
func (t *Table) indexUpdate(ri int, old, next []Value) {
	for _, ix := range t.Indexes {
		ix.update(ri, old, next)
	}
}

// checkRow validates a row against column constraints (type, NOT NULL)
// and coerces values to the column types in place (callers pass freshly
// built rows). It does not check uniqueness or foreign keys; those need
// DB context.
func (t *Table) checkRow(row []Value) ([]Value, error) {
	if len(row) != len(t.Cols) {
		return nil, fmt.Errorf("sqldb: table %s has %d columns, got %d values",
			t.Name, len(t.Cols), len(row))
	}
	for i, v := range row {
		c := t.Cols[i]
		if v.IsNull() {
			if c.NotNull {
				return nil, fmt.Errorf("sqldb: column %s.%s is NOT NULL", t.Name, c.Name)
			}
			continue
		}
		if v.K != c.Type {
			cv, err := coerce(v, c.Type)
			if err != nil {
				return nil, fmt.Errorf("sqldb: column %s.%s: %w", t.Name, c.Name, err)
			}
			row[i] = cv
		}
	}
	return row, nil
}

// hasPKRow reports whether a row with the given key tuple values (in
// PKCols order) exists.
func (t *Table) hasPKRow(vals []Value) bool {
	if len(t.PKCols) == 0 {
		return false
	}
	_, ok := t.pkIndex[keyString(vals)]
	return ok
}

// findRows returns the values of the named columns for every row; used by
// foreign key checks against non-PK column sets.
func (t *Table) tupleSet(cols []string) (map[string]bool, error) {
	idx, err := t.colIndexes(cols)
	if err != nil {
		return nil, err
	}
	set := make(map[string]bool, len(t.Rows))
	for _, row := range t.Rows {
		vals := make([]Value, len(idx))
		for i, ci := range idx {
			vals[i] = row[ci]
		}
		set[keyString(vals)] = true
	}
	return set, nil
}
