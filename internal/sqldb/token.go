package sqldb

import (
	"fmt"
	"strings"
)

// tokKind classifies lexer tokens.
type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tKeyword
	tNumber
	tString // 'text'
	tBlob   // x'hex'
	tParam  // ?
	tSymbol // punctuation and operators
)

type token struct {
	kind tokKind
	text string // keywords upper-cased, identifiers as written
	pos  int
}

var keywords = map[string]bool{
	"CREATE": true, "TABLE": true, "DROP": true, "IF": true, "EXISTS": true,
	"INSERT": true, "INTO": true, "VALUES": true,
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "ASC": true, "DESC": true, "LIMIT": true, "OFFSET": true,
	"UPDATE": true, "SET": true, "DELETE": true,
	"PRIMARY": true, "KEY": true, "FOREIGN": true, "REFERENCES": true,
	"NOT": true, "NULL": true, "AND": true, "OR": true, "LIKE": true,
	"IS": true, "IN": true, "AS": true, "DISTINCT": true,
	"INTEGER": true, "INT": true, "REAL": true, "TEXT": true, "BLOB": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"UNIQUE": true, "INDEX": true, "ON": true,
}

// lex tokenizes a SQL statement.
func lex(sql string) ([]token, error) {
	var toks []token
	i := 0
	n := len(sql)
	for i < n {
		c := sql[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && sql[i+1] == '-':
			for i < n && sql[i] != '\n' {
				i++
			}
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if sql[i] == '\'' {
					if i+1 < n && sql[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(sql[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sqldb: unterminated string at offset %d", start)
			}
			toks = append(toks, token{tString, sb.String(), start})
		case (c == 'x' || c == 'X') && i+1 < n && sql[i+1] == '\'':
			start := i
			i += 2
			j := i
			for j < n && sql[j] != '\'' {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("sqldb: unterminated blob literal at offset %d", start)
			}
			toks = append(toks, token{tBlob, sql[i:j], start})
			i = j + 1
		case c >= '0' && c <= '9' || c == '.' && i+1 < n && sql[i+1] >= '0' && sql[i+1] <= '9':
			start := i
			for i < n && (sql[i] >= '0' && sql[i] <= '9' || sql[i] == '.' ||
				sql[i] == 'e' || sql[i] == 'E' ||
				((sql[i] == '+' || sql[i] == '-') && (sql[i-1] == 'e' || sql[i-1] == 'E'))) {
				i++
			}
			toks = append(toks, token{tNumber, sql[start:i], start})
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(sql[i]) {
				i++
			}
			word := sql[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{tKeyword, up, start})
			} else {
				toks = append(toks, token{tIdent, word, start})
			}
		case c == '?':
			toks = append(toks, token{tParam, "?", i})
			i++
		case c == '<' && i+1 < n && (sql[i+1] == '=' || sql[i+1] == '>'):
			toks = append(toks, token{tSymbol, sql[i : i+2], i})
			i += 2
		case c == '>' && i+1 < n && sql[i+1] == '=':
			toks = append(toks, token{tSymbol, ">=", i})
			i += 2
		case c == '!' && i+1 < n && sql[i+1] == '=':
			toks = append(toks, token{tSymbol, "!=", i})
			i += 2
		case strings.IndexByte("(),*=<>+-/%;", c) >= 0:
			toks = append(toks, token{tSymbol, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("sqldb: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tEOF, "", n})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
