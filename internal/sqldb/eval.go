package sqldb

import (
	"fmt"
	"strings"
)

// evalCtx supplies column values and statement parameters to expression
// evaluation.
type evalCtx struct {
	table *Table
	row   []Value
	args  []Value
}

func (c *evalCtx) colValue(name string) (Value, error) {
	if c.table == nil || c.row == nil {
		return Value{}, fmt.Errorf("sqldb: column %q referenced outside a row context", name)
	}
	ci, err := c.table.colIndex(name)
	if err != nil {
		return Value{}, err
	}
	return c.row[ci], nil
}

func (c *evalCtx) param(idx int) (Value, error) {
	if idx >= len(c.args) {
		return Value{}, fmt.Errorf("sqldb: statement has %d parameter(s), %d argument(s) given",
			idx+1, len(c.args))
	}
	return c.args[idx], nil
}

// eval evaluates an expression in the given context. Aggregate calls are
// rejected here; they are handled by the aggregate executor.
func eval(e Expr, c *evalCtx) (Value, error) {
	switch e := e.(type) {
	case *Lit:
		return e.V, nil
	case *Param:
		return c.param(e.Idx)
	case *ColRef:
		return c.colValue(e.Name)
	case *Unary:
		return evalUnary(e, c)
	case *Binary:
		return evalBinary(e, c)
	case *IsNull:
		v, err := eval(e.X, c)
		if err != nil {
			return Value{}, err
		}
		return Bool(v.IsNull() != e.Neg), nil
	case *InList:
		return evalIn(e, c)
	case *Call:
		return Value{}, fmt.Errorf("sqldb: aggregate %s used outside SELECT list", e.Fn)
	default:
		return Value{}, fmt.Errorf("sqldb: unknown expression node %T", e)
	}
}

func evalUnary(e *Unary, c *evalCtx) (Value, error) {
	v, err := eval(e.X, c)
	if err != nil {
		return Value{}, err
	}
	switch e.Op {
	case "NOT":
		if v.IsNull() {
			return Null(), nil
		}
		return Bool(!v.Truth()), nil
	case "-":
		switch v.K {
		case KNull:
			return Null(), nil
		case KInt:
			return Int(-v.I), nil
		case KReal:
			return Real(-v.R), nil
		default:
			return Value{}, fmt.Errorf("sqldb: cannot negate %s", v.K)
		}
	default:
		return Value{}, fmt.Errorf("sqldb: unknown unary operator %q", e.Op)
	}
}

func evalBinary(e *Binary, c *evalCtx) (Value, error) {
	switch e.Op {
	case "AND", "OR":
		l, err := eval(e.L, c)
		if err != nil {
			return Value{}, err
		}
		// Short-circuit with SQL three-valued logic approximated as:
		// NULL behaves as false.
		if e.Op == "AND" {
			if !l.Truth() {
				return Bool(false), nil
			}
			r, err := eval(e.R, c)
			if err != nil {
				return Value{}, err
			}
			return Bool(r.Truth()), nil
		}
		if l.Truth() {
			return Bool(true), nil
		}
		r, err := eval(e.R, c)
		if err != nil {
			return Value{}, err
		}
		return Bool(r.Truth()), nil
	}

	l, err := eval(e.L, c)
	if err != nil {
		return Value{}, err
	}
	r, err := eval(e.R, c)
	if err != nil {
		return Value{}, err
	}

	switch e.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return Bool(false), nil
		}
		cmp, err := Compare(l, r)
		if err != nil {
			return Value{}, err
		}
		var res bool
		switch e.Op {
		case "=":
			res = cmp == 0
		case "!=":
			res = cmp != 0
		case "<":
			res = cmp < 0
		case "<=":
			res = cmp <= 0
		case ">":
			res = cmp > 0
		case ">=":
			res = cmp >= 0
		}
		return Bool(res), nil
	case "LIKE":
		if l.IsNull() || r.IsNull() {
			return Bool(false), nil
		}
		ls, err := l.AsText()
		if err != nil {
			return Value{}, fmt.Errorf("sqldb: LIKE operand: %w", err)
		}
		rs, err := r.AsText()
		if err != nil {
			return Value{}, fmt.Errorf("sqldb: LIKE pattern: %w", err)
		}
		return Bool(likeMatch(ls, rs)), nil
	case "+", "-", "*", "/", "%":
		return arith(e.Op, l, r)
	default:
		return Value{}, fmt.Errorf("sqldb: unknown operator %q", e.Op)
	}
}

func arith(op string, l, r Value) (Value, error) {
	if l.IsNull() || r.IsNull() {
		return Null(), nil
	}
	if op == "+" && l.K == KText && r.K == KText {
		return Text(l.S + r.S), nil
	}
	if l.K == KInt && r.K == KInt {
		switch op {
		case "+":
			return Int(l.I + r.I), nil
		case "-":
			return Int(l.I - r.I), nil
		case "*":
			return Int(l.I * r.I), nil
		case "/":
			if r.I == 0 {
				return Value{}, fmt.Errorf("sqldb: division by zero")
			}
			return Int(l.I / r.I), nil
		case "%":
			if r.I == 0 {
				return Value{}, fmt.Errorf("sqldb: modulo by zero")
			}
			return Int(l.I % r.I), nil
		}
	}
	lf, err := l.AsReal()
	if err != nil {
		return Value{}, err
	}
	rf, err := r.AsReal()
	if err != nil {
		return Value{}, err
	}
	switch op {
	case "+":
		return Real(lf + rf), nil
	case "-":
		return Real(lf - rf), nil
	case "*":
		return Real(lf * rf), nil
	case "/":
		if rf == 0 {
			return Value{}, fmt.Errorf("sqldb: division by zero")
		}
		return Real(lf / rf), nil
	case "%":
		return Value{}, fmt.Errorf("sqldb: %% requires integer operands")
	}
	return Value{}, fmt.Errorf("sqldb: unknown arithmetic operator %q", op)
}

func evalIn(e *InList, c *evalCtx) (Value, error) {
	x, err := eval(e.X, c)
	if err != nil {
		return Value{}, err
	}
	if x.IsNull() {
		return Bool(false), nil
	}
	found := false
	for _, le := range e.List {
		v, err := eval(le, c)
		if err != nil {
			return Value{}, err
		}
		if Equal(x, v) {
			found = true
			break
		}
	}
	return Bool(found != e.Neg), nil
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single char),
// case-sensitive, via iterative backtracking.
func likeMatch(s, pattern string) bool {
	var si, pi int
	star, sStar := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			sStar = si
			pi++
		case star >= 0:
			pi = star + 1
			sStar++
			si = sStar
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// hasAggregate reports whether the expression tree contains an aggregate
// call.
func hasAggregate(e Expr) bool {
	switch e := e.(type) {
	case *Call:
		return true
	case *Unary:
		return hasAggregate(e.X)
	case *Binary:
		return hasAggregate(e.L) || hasAggregate(e.R)
	case *IsNull:
		return hasAggregate(e.X)
	case *InList:
		if hasAggregate(e.X) {
			return true
		}
		for _, le := range e.List {
			if hasAggregate(le) {
				return true
			}
		}
	}
	return false
}

// aggState accumulates one aggregate over a row group.
type aggState struct {
	fn       string
	distinct bool
	count    int64
	sumI     int64
	sumR     float64
	isReal   bool
	min, max Value
	seen     map[string]bool
}

func newAggState(fn string, distinct bool) *aggState {
	s := &aggState{fn: fn, distinct: distinct}
	if distinct {
		s.seen = make(map[string]bool)
	}
	return s
}

func (s *aggState) add(v Value) error {
	if v.IsNull() {
		return nil // SQL aggregates skip NULLs
	}
	if s.distinct {
		k := keyString([]Value{v})
		if s.seen[k] {
			return nil
		}
		s.seen[k] = true
	}
	s.count++
	switch s.fn {
	case "COUNT":
	case "SUM", "AVG":
		switch v.K {
		case KInt:
			s.sumI += v.I
			s.sumR += float64(v.I)
		case KReal:
			s.isReal = true
			s.sumR += v.R
		default:
			return fmt.Errorf("sqldb: %s over non-numeric %s", s.fn, v.K)
		}
	case "MIN", "MAX":
		if s.count == 1 {
			s.min, s.max = v, v
			return nil
		}
		if c, err := Compare(v, s.min); err != nil {
			return err
		} else if c < 0 {
			s.min = v
		}
		if c, err := Compare(v, s.max); err != nil {
			return err
		} else if c > 0 {
			s.max = v
		}
	default:
		return fmt.Errorf("sqldb: unknown aggregate %s", s.fn)
	}
	return nil
}

func (s *aggState) addStar() { s.count++ }

func (s *aggState) result() Value {
	switch s.fn {
	case "COUNT":
		return Int(s.count)
	case "SUM":
		if s.count == 0 {
			return Null()
		}
		if s.isReal {
			return Real(s.sumR)
		}
		return Int(s.sumI)
	case "AVG":
		if s.count == 0 {
			return Null()
		}
		return Real(s.sumR / float64(s.count))
	case "MIN":
		if s.count == 0 {
			return Null()
		}
		return s.min
	case "MAX":
		if s.count == 0 {
			return Null()
		}
		return s.max
	}
	return Null()
}

// exprName derives a display column name for an expression.
func exprName(e Expr) string {
	switch e := e.(type) {
	case *ColRef:
		return e.Name
	case *Call:
		if e.Star {
			return strings.ToLower(e.Fn) + "(*)"
		}
		return strings.ToLower(e.Fn) + "(" + exprName(e.Arg) + ")"
	case *Lit:
		return e.V.String()
	default:
		return "expr"
	}
}
