package sqldb

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// dumpDB renders every table's rows in insertion order as SQL literals,
// for byte-exact state comparison between an original database and its
// crash-recovered replay.
func dumpDB(t *testing.T, db *DB) string {
	t.Helper()
	var sb strings.Builder
	for _, name := range db.TableNames() {
		r, err := db.Query("SELECT * FROM " + name)
		if err != nil {
			t.Fatalf("dump %s: %v", name, err)
		}
		fmt.Fprintf(&sb, "-- %s (%s)\n", name, strings.Join(r.Cols, ","))
		for _, row := range r.Rows {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.String()
			}
			sb.WriteString(strings.Join(cells, "|") + "\n")
		}
	}
	return sb.String()
}

// walScript is a workload that exercises every logged statement kind —
// DDL, single- and multi-row INSERT, prepared-statement fast path,
// UPDATE, DELETE — over two FK-linked tables.
type walOp struct {
	sql  string
	args []Value
}

func walScript() []walOp {
	ops := []walOp{
		{sql: `CREATE TABLE parent (id INTEGER PRIMARY KEY, label TEXT NOT NULL)`},
		{sql: `CREATE TABLE child (
			name TEXT PRIMARY KEY, pid INTEGER NOT NULL, score REAL, payload BLOB,
			FOREIGN KEY (pid) REFERENCES parent (id))`},
		{sql: `CREATE INDEX childByPid ON child (pid)`},
	}
	for i := 0; i < 5; i++ {
		ops = append(ops, walOp{
			sql:  `INSERT INTO parent VALUES (?, ?)`,
			args: []Value{Int(int64(i)), Text(fmt.Sprintf("p%d", i))},
		})
	}
	ops = append(ops,
		walOp{sql: `INSERT INTO child VALUES ('a', 0, 1.5, x'00ff'), ('b', 1, NULL, NULL), ('c', 1, -2.25, x'')`},
		walOp{sql: `INSERT INTO child VALUES (?, ?, ?, ?)`,
			args: []Value{Text("d"), Int(3), Real(0.125), Blob([]byte{1, 2, 3})}},
		walOp{sql: `UPDATE child SET score = score * 2 WHERE pid = 1`},
		walOp{sql: `UPDATE parent SET label = ? WHERE id = ?`, args: []Value{Text("renamed"), Int(4)}},
		walOp{sql: `DELETE FROM child WHERE name = 'c'`},
		walOp{sql: `DELETE FROM parent WHERE id = 2`},
	)
	return ops
}

func applyScript(t *testing.T, db *DB, ops []walOp) {
	t.Helper()
	for _, op := range ops {
		if _, err := db.Exec(op.sql, op.args...); err != nil {
			t.Fatalf("exec %q: %v", op.sql, err)
		}
	}
}

func TestWALRoundTripAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "goofi.db")
	db, err := OpenAt(path, SyncBarrier)
	if err != nil {
		t.Fatal(err)
	}
	applyScript(t, db, walScript())
	want := dumpDB(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// No Checkpoint was taken: the snapshot file does not even exist and
	// the entire state must come back from WAL replay alone.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("snapshot unexpectedly exists (err=%v)", err)
	}
	db2, err := OpenAt(path, SyncBarrier)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := dumpDB(t, db2); got != want {
		t.Errorf("replayed state differs:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	if err := db2.CheckIntegrity(); err != nil {
		t.Error(err)
	}
}

func TestCheckpointCompactsWAL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "goofi.db")
	db, err := OpenAt(path, SyncBarrier)
	if err != nil {
		t.Fatal(err)
	}
	applyScript(t, db, walScript())
	want := dumpDB(t, db)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(WALPath(path))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > 32 {
		t.Errorf("WAL not compacted: %d bytes after checkpoint", fi.Size())
	}
	// Post-checkpoint writes land in the fresh log.
	if _, err := db.Exec(`INSERT INTO parent VALUES (9, 'late')`); err != nil {
		t.Fatal(err)
	}
	want2 := dumpDB(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenAt(path, SyncBarrier)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := dumpDB(t, db2); got != want2 {
		t.Errorf("state after checkpoint+log differs:\n--- want ---\n%s--- got ---\n%s", want2, got)
	}
	if want == want2 {
		t.Fatal("sanity: post-checkpoint insert did not change state")
	}
}

// TestStaleWALDiscardedByEpoch covers the crash window between writing
// the snapshot and resetting the log: a WAL whose epoch predates the
// snapshot must not be replayed on top of it (its records are already in
// the snapshot, and UPDATEs are not idempotent).
func TestStaleWALDiscardedByEpoch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "goofi.db")
	db, err := OpenAt(path, SyncBarrier)
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE TABLE acc (id INTEGER PRIMARY KEY, bal INTEGER NOT NULL)`)
	db.MustExec(`INSERT INTO acc VALUES (1, 100)`)
	db.MustExec(`UPDATE acc SET bal = bal + 10 WHERE id = 1`)

	// Preserve the pre-checkpoint (epoch 0) log, then checkpoint.
	stale, err := os.ReadFile(WALPath(path))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := dumpDB(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash: snapshot is the new epoch, log is the old one.
	if err := os.WriteFile(WALPath(path), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenAt(path, SyncBarrier)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := dumpDB(t, db2); got != want {
		t.Errorf("stale WAL replayed onto newer snapshot:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	r, err := db2.Query(`SELECT bal FROM acc WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 110 {
		t.Errorf("balance = %d, want 110 (non-idempotent UPDATE must not re-apply)", r.Rows[0][0].I)
	}
}

// frameBoundaries returns the byte offsets after each intact frame of a
// WAL image, starting after the epoch header.
func frameBoundaries(t *testing.T, img []byte) []int64 {
	t.Helper()
	r := bytes.NewReader(img)
	var bounds []int64
	off := int64(0)
	for {
		_, n, err := readFrame(r, nil)
		if err != nil {
			if err != io.EOF {
				t.Fatalf("unexpected frame error at %d: %v", off, err)
			}
			return bounds
		}
		off += n
		bounds = append(bounds, off)
	}
}

// TestCrashAtEveryRecordBoundary is the crash-injection harness of the
// issue: the WAL is cut at every record boundary (a crash exactly
// between appends) and at several offsets inside the following record (a
// torn write). Replaying each prefix must yield the state of executing
// exactly the surviving statements, and the database must pass a full
// integrity check — no partial row, no dangling foreign key.
func TestCrashAtEveryRecordBoundary(t *testing.T) {
	ops := walScript()

	// Record the full WAL image once. SyncAlways flushes the buffered
	// writer after every record, so buf always holds whole frames.
	var buf bytes.Buffer
	full := Open()
	full.AttachWAL(NewWAL(&buf, SyncAlways))
	for _, op := range ops {
		if _, err := full.Exec(op.sql, op.args...); err != nil {
			t.Fatalf("exec %q: %v", op.sql, err)
		}
	}
	img := buf.Bytes()
	bounds := frameBoundaries(t, img)
	if len(bounds) != len(ops)+1 { // +1 for the epoch header
		t.Fatalf("got %d frames, want %d", len(bounds), len(ops)+1)
	}

	// wantAt[k] is the dump after executing the first k statements.
	wantAt := make([]string, len(ops)+1)
	step := Open()
	wantAt[0] = dumpDB(t, step)
	for i, op := range ops {
		if _, err := step.Exec(op.sql, op.args...); err != nil {
			t.Fatal(err)
		}
		wantAt[i+1] = dumpDB(t, step)
	}

	for k, bound := range bounds {
		cuts := []int64{bound}
		if k+1 < len(bounds) {
			// Torn-write cuts inside the next frame: mid-header,
			// first payload byte, one byte short of complete.
			next := bounds[k+1]
			for _, d := range []int64{4, walFrameHeader + 1, next - bound - 1} {
				if c := bound + d; c > bound && c < next {
					cuts = append(cuts, c)
				}
			}
		}
		for _, cut := range cuts {
			db := Open()
			applied, err := db.ReplayWAL(bytes.NewReader(img[:cut]))
			if err != nil {
				t.Fatalf("cut %d: replay: %v", cut, err)
			}
			if applied != k {
				t.Errorf("cut %d: applied %d statements, want %d", cut, applied, k)
			}
			if err := db.CheckIntegrity(); err != nil {
				t.Errorf("cut %d: %v", cut, err)
			}
			if got := dumpDB(t, db); got != wantAt[k] {
				t.Errorf("cut %d: state differs from %d-statement prefix:\n--- want ---\n%s--- got ---\n%s",
					cut, k, wantAt[k], got)
			}
		}
	}
}

// TestOpenAtTruncatesTornTail checks recovery through the file path: a
// torn tail appended to the log is cut off on open, and the file ends at
// the last intact frame afterwards.
func TestOpenAtTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "goofi.db")
	db, err := OpenAt(path, SyncBarrier)
	if err != nil {
		t.Fatal(err)
	}
	applyScript(t, db, walScript())
	want := dumpDB(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	intact, err := os.ReadFile(WALPath(path))
	if err != nil {
		t.Fatal(err)
	}

	for _, tail := range [][]byte{
		{0x99},                             // lone garbage byte
		{0xAA, 0xBB, 0xCC, 0xDD, 0, 0, 0}, // partial header
		append(bytes.Repeat([]byte{0x55}, walFrameHeader), 1, 2, 3), // bogus full header + partial payload
	} {
		img := append(append([]byte(nil), intact...), tail...)
		if err := os.WriteFile(WALPath(path), img, 0o644); err != nil {
			t.Fatal(err)
		}
		db2, err := OpenAt(path, SyncBarrier)
		if err != nil {
			t.Fatalf("tail %x: %v", tail, err)
		}
		if got := dumpDB(t, db2); got != want {
			t.Errorf("tail %x: recovered state differs", tail)
		}
		if err := db2.CheckIntegrity(); err != nil {
			t.Errorf("tail %x: %v", tail, err)
		}
		if err := db2.Close(); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(WALPath(path))
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != int64(len(intact)) {
			t.Errorf("tail %x: wal is %d bytes after recovery, want %d (torn tail not truncated)",
				tail, fi.Size(), len(intact))
		}
	}
}

// failingWriter fails every write once the byte budget is spent — a
// faultfs-style stand-in for a full or dying disk.
type failingWriter struct {
	budget int
	failed bool
}

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.failed || w.budget < len(p) {
		w.failed = true
		return 0, fmt.Errorf("disk full")
	}
	w.budget -= len(p)
	return len(p), nil
}

func TestWALWriteErrorPoisonsLog(t *testing.T) {
	db := Open()
	db.AttachWAL(NewWAL(&failingWriter{budget: 256}, SyncAlways))
	db.MustExec(`CREATE TABLE kv (k TEXT PRIMARY KEY, v TEXT)`)
	var firstErr error
	for i := 0; i < 1000; i++ {
		_, err := db.Exec(`INSERT INTO kv VALUES (?, ?)`, Text(fmt.Sprintf("k%04d", i)), Text("v"))
		if err != nil {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		t.Fatal("writes kept succeeding past the writer's budget")
	}
	if !strings.Contains(firstErr.Error(), "wal") || !strings.Contains(firstErr.Error(), "disk full") {
		t.Errorf("error %q does not identify the WAL failure", firstErr)
	}
	// Poisoned: the same error comes back for every later write.
	if _, err := db.Exec(`INSERT INTO kv VALUES ('late', 'v')`); err == nil || err.Error() != firstErr.Error() {
		t.Errorf("poisoned log returned %v, want %v", err, firstErr)
	}
}

func TestReplayIgnoresFailedStatements(t *testing.T) {
	// A multi-row INSERT that fails midway keeps its earlier rows (the
	// engine's documented partial-application semantics). The WAL logs
	// the statement as executed; replay must reproduce the same partial
	// state, not abort.
	var buf bytes.Buffer
	db := Open()
	db.AttachWAL(NewWAL(&buf, SyncAlways))
	db.MustExec(`CREATE TABLE u (id INTEGER PRIMARY KEY)`)
	if _, err := db.Exec(`INSERT INTO u VALUES (1), (2), (1)`); err == nil {
		t.Fatal("duplicate-PK insert unexpectedly succeeded")
	}
	want := dumpDB(t, db)

	db2 := Open()
	if _, err := db2.ReplayWAL(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := dumpDB(t, db2); got != want {
		t.Errorf("replay of partially failed statement differs:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	if err := db2.CheckIntegrity(); err != nil {
		t.Error(err)
	}
}

func TestWALValueEncodingRoundTrip(t *testing.T) {
	args := []Value{
		Null(), Int(0), Int(-1), Int(1<<62 + 3), Real(3.5), Real(-0.0),
		Text(""), Text("it's a 'quote'\n\x00"), Blob(nil), Blob([]byte{0, 255, 7}),
	}
	payload := encodeStmtPayload(nil, "INSERT INTO t VALUES (?)", args)
	sql, got, err := decodeStmtPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if sql != "INSERT INTO t VALUES (?)" {
		t.Errorf("sql = %q", sql)
	}
	if len(got) != len(args) {
		t.Fatalf("decoded %d args, want %d", len(got), len(args))
	}
	for i := range args {
		a, b := args[i], got[i]
		if a.K != b.K || a.I != b.I || a.R != b.R || a.S != b.S || !bytes.Equal(a.B, b.B) {
			t.Errorf("arg %d: got %#v, want %#v", i, b, a)
		}
	}
}
