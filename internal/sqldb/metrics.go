package sqldb

import "goofi/internal/telemetry"

// Write-ahead-log and snapshot counters. writeFrame and syncLocked run
// under the WAL's own mutex; the adds are atomic anyway so the counters
// stay truthful if that ever changes.
var (
	mWALRecords = telemetry.NewCounter("goofi_sqldb_wal_records_total",
		"Frames appended to the write-ahead log (epoch and statement records).")
	mWALBytes = telemetry.NewCounter("goofi_sqldb_wal_bytes_total",
		"Bytes appended to the write-ahead log, including frame headers.")
	mWALBarriers = telemetry.NewCounter("goofi_sqldb_wal_barriers_total",
		"Durability barriers (flush + fsync) on the write-ahead log.")
	mCompactions = telemetry.NewCounter("goofi_sqldb_checkpoint_compactions_total",
		"Snapshot checkpoints that compacted the write-ahead log.")
)
