// Package sqldb is an embedded relational database engine with a SQL
// subset, used as GOOFI's campaign and results store. The paper stores all
// tool data in "a SQL compatible database" (three tables linked by foreign
// keys, Fig 4); this package provides that substrate with CREATE TABLE
// (PRIMARY KEY, FOREIGN KEY ... REFERENCES), INSERT, SELECT (WHERE,
// ORDER BY, LIMIT, aggregates, GROUP BY), UPDATE, DELETE, `?` parameters,
// referential-integrity enforcement, and file persistence.
package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind is the runtime type of a Value.
type Kind uint8

// Value kinds.
const (
	KNull Kind = iota
	KInt
	KReal
	KText
	KBlob
)

// String returns the SQL type name for the kind.
func (k Kind) String() string {
	switch k {
	case KNull:
		return "NULL"
	case KInt:
		return "INTEGER"
	case KReal:
		return "REAL"
	case KText:
		return "TEXT"
	case KBlob:
		return "BLOB"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is one SQL value. The zero value is NULL.
type Value struct {
	K Kind
	I int64
	R float64
	S string
	B []byte
}

// Null returns the SQL NULL value.
func Null() Value { return Value{} }

// Int returns an INTEGER value.
func Int(i int64) Value { return Value{K: KInt, I: i} }

// Real returns a REAL value.
func Real(r float64) Value { return Value{K: KReal, R: r} }

// Text returns a TEXT value.
func Text(s string) Value { return Value{K: KText, S: s} }

// Blob returns a BLOB value (the bytes are not copied).
func Blob(b []byte) Value { return Value{K: KBlob, B: b} }

// Bool returns an INTEGER 0/1 value, the SQL convention for booleans.
func Bool(b bool) Value {
	if b {
		return Int(1)
	}
	return Int(0)
}

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.K == KNull }

// Truth reports the SQL truthiness of a value: non-zero numbers are true;
// NULL and everything else is false.
func (v Value) Truth() bool {
	switch v.K {
	case KInt:
		return v.I != 0
	case KReal:
		return v.R != 0
	default:
		return false
	}
}

// AsInt converts numeric values to int64.
func (v Value) AsInt() (int64, error) {
	switch v.K {
	case KInt:
		return v.I, nil
	case KReal:
		return int64(v.R), nil
	default:
		return 0, fmt.Errorf("sqldb: %s is not numeric", v.K)
	}
}

// AsReal converts numeric values to float64.
func (v Value) AsReal() (float64, error) {
	switch v.K {
	case KInt:
		return float64(v.I), nil
	case KReal:
		return v.R, nil
	default:
		return 0, fmt.Errorf("sqldb: %s is not numeric", v.K)
	}
}

// AsText returns the value as a string (TEXT only).
func (v Value) AsText() (string, error) {
	if v.K != KText {
		return "", fmt.Errorf("sqldb: %s is not text", v.K)
	}
	return v.S, nil
}

// AsBlob returns the value as bytes (BLOB only).
func (v Value) AsBlob() ([]byte, error) {
	if v.K != KBlob {
		return nil, fmt.Errorf("sqldb: %s is not a blob", v.K)
	}
	return v.B, nil
}

// String renders the value as a SQL literal.
func (v Value) String() string {
	switch v.K {
	case KNull:
		return "NULL"
	case KInt:
		return fmt.Sprintf("%d", v.I)
	case KReal:
		return fmt.Sprintf("%g", v.R)
	case KText:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	case KBlob:
		return fmt.Sprintf("x'%x'", v.B)
	default:
		return "?"
	}
}

// Compare orders two non-NULL values: -1, 0 or +1. Integers and reals
// compare numerically across kinds; other cross-kind comparisons are
// errors. NULL never compares equal to anything (callers handle NULL
// three-valued logic before calling Compare).
func Compare(a, b Value) (int, error) {
	if a.IsNull() || b.IsNull() {
		return 0, fmt.Errorf("sqldb: cannot compare NULL")
	}
	if (a.K == KInt || a.K == KReal) && (b.K == KInt || b.K == KReal) {
		if a.K == KInt && b.K == KInt {
			return cmpInt(a.I, b.I), nil
		}
		af, _ := a.AsReal()
		bf, _ := b.AsReal()
		return cmpFloat(af, bf), nil
	}
	if a.K != b.K {
		return 0, fmt.Errorf("sqldb: cannot compare %s with %s", a.K, b.K)
	}
	switch a.K {
	case KText:
		return strings.Compare(a.S, b.S), nil
	case KBlob:
		return cmpBytes(a.B, b.B), nil
	default:
		return 0, fmt.Errorf("sqldb: cannot compare %s values", a.K)
	}
}

// Equal reports value equality (NULL equals nothing, not even NULL,
// following SQL semantics; use IsNull for NULL checks).
func Equal(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	c, err := Compare(a, b)
	return err == nil && c == 0
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return cmpInt(int64(len(a)), int64(len(b)))
}

// coerce adapts a value to a column type where lossless: integers widen to
// REAL, and NULL passes through. Everything else must match exactly.
func coerce(v Value, want Kind) (Value, error) {
	if v.IsNull() || v.K == want {
		return v, nil
	}
	if want == KReal && v.K == KInt {
		return Real(float64(v.I)), nil
	}
	if want == KInt && v.K == KReal && v.R == float64(int64(v.R)) {
		return Int(int64(v.R)), nil
	}
	return Value{}, fmt.Errorf("sqldb: cannot store %s value in %s column", v.K, want)
}

// appendValueKey appends a value's unique key encoding. Text and blob
// values are length-prefixed so raw bytes need no quoting.
func appendValueKey(buf []byte, v Value) []byte {
	// Normalise ints and reals so 1 and 1.0 collide, as SQL
	// uniqueness requires.
	switch v.K {
	case KReal:
		if v.R == float64(int64(v.R)) {
			buf = append(buf, 'i', ':')
			buf = strconv.AppendInt(buf, int64(v.R), 10)
		} else {
			buf = append(buf, 'r', ':')
			buf = strconv.AppendFloat(buf, v.R, 'g', -1, 64)
		}
	case KInt:
		buf = append(buf, 'i', ':')
		buf = strconv.AppendInt(buf, v.I, 10)
	case KText:
		buf = append(buf, 't', ':')
		buf = strconv.AppendInt(buf, int64(len(v.S)), 10)
		buf = append(buf, ':')
		buf = append(buf, v.S...)
	case KBlob:
		buf = append(buf, 'b', ':')
		buf = strconv.AppendInt(buf, int64(len(v.B)), 10)
		buf = append(buf, ':')
		buf = append(buf, v.B...)
	default:
		buf = append(buf, 'n')
	}
	return append(buf, ';')
}

// keyString encodes a value tuple as a unique map key for indexes.
func keyString(vals []Value) string {
	buf := make([]byte, 0, 48)
	for _, v := range vals {
		buf = appendValueKey(buf, v)
	}
	return string(buf)
}

// rowKey encodes the projection of a row onto the given column positions,
// without materialising the value tuple.
func rowKey(row []Value, colIdx []int) string {
	buf := make([]byte, 0, 48)
	for _, ci := range colIdx {
		buf = appendValueKey(buf, row[ci])
	}
	return string(buf)
}
