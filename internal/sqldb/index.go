package sqldb

import (
	"fmt"
	"sort"
)

// Index is a secondary hash index over one or more columns: key tuple →
// row positions. Indexes are created explicitly with CREATE INDEX and
// automatically for every FOREIGN KEY column set, so PK/FK lookups,
// referential-integrity checks and equality WHERE clauses resolve without
// scanning (the LoggedSystemState hot path).
type Index struct {
	Name   string
	Cols   []string
	colIdx []int
	rows   map[string][]int
}

// buildIndex resolves an index definition against a table and populates it
// from the current rows.
func (t *Table) buildIndex(name string, cols []string) (*Index, error) {
	colIdx, err := t.colIndexes(cols)
	if err != nil {
		return nil, err
	}
	idx := &Index{Name: name, Cols: cols, colIdx: colIdx}
	idx.populate(t.Rows)
	return idx, nil
}

func (ix *Index) populate(rows [][]Value) {
	ix.rows = make(map[string][]int, len(rows))
	for ri, row := range rows {
		if k, ok := ix.key(row); ok {
			ix.rows[k] = append(ix.rows[k], ri)
		}
	}
}

// key extracts the index key tuple of a row. Rows with a NULL component
// are not indexed (reported as !ok): SQL equality never matches NULL, so
// no equality lookup — WHERE selection, FK check or referencer scan — can
// ever need them, and skipping them keeps a mostly-NULL column (such as
// LoggedSystemState.parentExperiment) from piling every row into one
// bucket.
func (ix *Index) key(row []Value) (string, bool) {
	for _, ci := range ix.colIdx {
		if row[ci].IsNull() {
			return "", false
		}
	}
	return rowKey(row, ix.colIdx), true
}

func (ix *Index) insert(ri int, row []Value) {
	if k, ok := ix.key(row); ok {
		ix.rows[k] = append(ix.rows[k], ri)
	}
}

func (ix *Index) update(ri int, old, next []Value) {
	ok, okIn := ix.key(old)
	nk, nkIn := ix.key(next)
	if okIn == nkIn && ok == nk {
		return
	}
	if okIn {
		ix.rows[ok] = removeInt(ix.rows[ok], ri)
		if len(ix.rows[ok]) == 0 {
			delete(ix.rows, ok)
		}
	}
	if nkIn {
		ix.rows[nk] = append(ix.rows[nk], ri)
	}
}

func removeInt(s []int, v int) []int {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// covers reports whether every index column has an equality binding.
func (ix *Index) covers(eq map[string]Value) bool {
	for _, c := range ix.Cols {
		if _, ok := eq[c]; !ok {
			return false
		}
	}
	return true
}

// lookup returns the candidate rows for the bound key tuple.
func (ix *Index) lookup(eq map[string]Value) []int {
	vals := make([]Value, len(ix.Cols))
	for i, c := range ix.Cols {
		vals[i] = eq[c]
	}
	return ix.rows[keyString(vals)]
}

// addIndex attaches a populated index to the table. Index names are unique
// per table.
func (t *Table) addIndex(name string, cols []string) error {
	for _, ix := range t.Indexes {
		if ix.Name == name {
			return fmt.Errorf("sqldb: index %q already exists on table %s", name, t.Name)
		}
	}
	ix, err := t.buildIndex(name, cols)
	if err != nil {
		return err
	}
	t.Indexes = append(t.Indexes, ix)
	return nil
}

// hasIndexOn reports whether some index covers exactly the given column
// list (order-sensitive: indexes key on tuple order).
func (t *Table) hasIndexOn(cols []string) bool {
	for _, ix := range t.Indexes {
		if equalStrings(ix.Cols, cols) {
			return true
		}
	}
	return false
}

// indexOn returns the index whose columns are exactly cols, or nil.
func (t *Table) indexOn(cols []string) *Index {
	for _, ix := range t.Indexes {
		if equalStrings(ix.Cols, cols) {
			return ix
		}
	}
	return nil
}

// eqBindings walks the top-level AND conjunction of a WHERE clause and
// collects `column = constant` bindings usable for index selection. Only
// literals and parameters count as constants; a binding whose value kind
// cannot equal the column's values (NULL, or an incomparable kind) is
// dropped, leaving the residual predicate to row-level evaluation.
func eqBindings(t *Table, e Expr, args []Value, out map[string]Value) {
	b, ok := e.(*Binary)
	if !ok {
		return
	}
	switch b.Op {
	case "AND":
		eqBindings(t, b.L, args, out)
		eqBindings(t, b.R, args, out)
	case "=":
		col, val, ok := constEq(b, args)
		if !ok {
			return
		}
		ci, err := t.colIndex(col)
		if err != nil || val.IsNull() || !kindsComparable(t.Cols[ci].Type, val.K) {
			return
		}
		if _, dup := out[col]; !dup {
			out[col] = val
		}
	}
}

// constEq decomposes `col = const` (either operand order) into its column
// name and constant value.
func constEq(b *Binary, args []Value) (string, Value, bool) {
	if c, ok := b.L.(*ColRef); ok {
		if v, ok := constVal(b.R, args); ok {
			return c.Name, v, true
		}
	}
	if c, ok := b.R.(*ColRef); ok {
		if v, ok := constVal(b.L, args); ok {
			return c.Name, v, true
		}
	}
	return "", Value{}, false
}

func constVal(e Expr, args []Value) (Value, bool) {
	switch e := e.(type) {
	case *Lit:
		return e.V, true
	case *Param:
		if e.Idx < len(args) {
			return args[e.Idx], true
		}
	}
	return Value{}, false
}

// kindsComparable reports whether Compare can ever find values of the two
// kinds equal (numbers cross-compare; text and blob only with themselves).
func kindsComparable(a, b Kind) bool {
	num := func(k Kind) bool { return k == KInt || k == KReal }
	if num(a) && num(b) {
		return true
	}
	return a == b
}

// indexCandidates plans an equality-indexed scan for a WHERE clause. It
// returns the candidate row positions (ascending) and ok=true when the
// primary key or a secondary index covers the clause's equality bindings;
// the caller still evaluates the full WHERE on each candidate, so the
// result set equals a full scan's.
func (t *Table) indexCandidates(where Expr, args []Value) ([]int, bool) {
	if where == nil {
		return nil, false
	}
	eq := make(map[string]Value)
	eqBindings(t, where, args, eq)
	if len(eq) == 0 {
		return nil, false
	}
	// Primary key first: unique, at most one candidate.
	if len(t.PKCols) > 0 && t.pkIndex != nil {
		covered := true
		for _, c := range t.PKCols {
			if _, ok := eq[c]; !ok {
				covered = false
				break
			}
		}
		if covered {
			vals := make([]Value, len(t.PKCols))
			for i, c := range t.PKCols {
				vals[i] = eq[c]
			}
			if ri, ok := t.pkIndex[keyString(vals)]; ok {
				return []int{ri}, true
			}
			return nil, true
		}
	}
	for _, ix := range t.Indexes {
		if !ix.covers(eq) {
			continue
		}
		cand := ix.lookup(eq)
		out := make([]int, len(cand))
		copy(out, cand)
		sort.Ints(out)
		return out, true
	}
	return nil, false
}
