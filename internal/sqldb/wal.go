package sqldb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"
)

// SyncPolicy selects when the write-ahead log reaches stable storage.
type SyncPolicy uint8

const (
	// SyncBarrier buffers appends and fsyncs only at explicit barriers
	// (DB.Barrier, Checkpoint, Close). Records written since the last
	// barrier may be lost in a crash, but a completed barrier guarantees
	// everything before it. This is the default: the campaign layer
	// places barriers at its own checkpoints.
	SyncBarrier SyncPolicy = iota
	// SyncAlways flushes and fsyncs after every record.
	SyncAlways
	// SyncNever buffers appends and never fsyncs; barriers still flush
	// to the OS. Durability is left to the kernel (tests, benchmarks).
	SyncNever
)

// WAL record framing: every record is
//
//	uint32 LE payload length | uint32 LE CRC32-IEEE of payload | payload
//
// and the payload starts with a record-kind byte. The first record of a
// log is always an epoch record; replay treats any malformed, truncated
// or CRC-mismatched frame as the torn tail of an interrupted write and
// stops there.
const (
	walFrameHeader = 8
	// maxWALRecord bounds a frame's payload; a corrupt length field must
	// not trigger an arbitrarily large allocation.
	maxWALRecord = 64 << 20

	recEpoch byte = 0 // uvarint epoch; guards replay against a newer snapshot
	recStmt  byte = 1 // uvarint len + SQL, uvarint nargs, encoded args
)

// WAL is an append-only statement log. The database appends one record
// per write statement (under its own lock, so log order equals apply
// order); replaying the records onto the snapshot the log was opened
// against reproduces the exact database state, because statement
// execution is deterministic.
//
// The first write error poisons the log: every later Append returns it,
// so a campaign cannot silently keep running on a dead log.
type WAL struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	f      *os.File // non-nil when backed by a file; enables fsync and Reset
	policy SyncPolicy
	err    error
	buf    []byte // payload scratch, reused across appends
}

// NewWAL starts a fresh log on w (epoch 0 header included) with the
// given sync policy. When w is an *os.File, barriers fsync it. Logs that
// resume an existing file are opened by OpenAt instead.
func NewWAL(w io.Writer, policy SyncPolicy) *WAL {
	wal := &WAL{bw: bufio.NewWriterSize(w, 32<<10), policy: policy}
	if f, ok := w.(*os.File); ok {
		wal.f = f
	}
	wal.writeFrame(encodeEpochPayload(nil, 0))
	return wal
}

// Append logs one statement. Safe for concurrent use, though the
// database already serialises writers.
func (w *WAL) Append(sql string, args []Value) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	w.buf = encodeStmtPayload(w.buf[:0], sql, args)
	w.writeFrame(w.buf)
	if w.err == nil && w.policy == SyncAlways {
		w.syncLocked()
	}
	return w.err
}

// Sync is a durability barrier: it flushes buffered records and, for
// file-backed logs (unless SyncNever), fsyncs.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.syncLocked()
	return w.err
}

// Reset discards the log and starts a new one for the given epoch; the
// snapshot that made the old records redundant has already been written.
// Only file-backed logs can truncate; for others Reset just starts a new
// epoch in the stream.
func (w *WAL) Reset(epoch uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.f != nil {
		w.bw.Reset(w.f)
		if err := w.f.Truncate(0); err != nil {
			w.err = fmt.Errorf("sqldb: wal reset: %w", err)
			return w.err
		}
		if _, err := w.f.Seek(0, io.SeekStart); err != nil {
			w.err = fmt.Errorf("sqldb: wal reset: %w", err)
			return w.err
		}
	}
	w.writeFrame(encodeEpochPayload(nil, epoch))
	w.syncLocked()
	return w.err
}

// Close flushes, fsyncs and closes a file-backed log.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.syncLocked()
	if w.f != nil {
		if err := w.f.Close(); err != nil && w.err == nil {
			w.err = fmt.Errorf("sqldb: wal close: %w", err)
		}
		w.f = nil
	}
	return w.err
}

// Err returns the poisoning error, if any.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

func (w *WAL) writeFrame(payload []byte) {
	if w.err != nil {
		return
	}
	var hdr [walFrameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		w.err = fmt.Errorf("sqldb: wal append: %w", err)
		return
	}
	if _, err := w.bw.Write(payload); err != nil {
		w.err = fmt.Errorf("sqldb: wal append: %w", err)
		return
	}
	mWALRecords.Inc()
	mWALBytes.Add(uint64(walFrameHeader + len(payload)))
}

func (w *WAL) syncLocked() {
	if w.err != nil {
		return
	}
	mWALBarriers.Inc()
	if err := w.bw.Flush(); err != nil {
		w.err = fmt.Errorf("sqldb: wal flush: %w", err)
		return
	}
	if w.f != nil && w.policy != SyncNever {
		if err := w.f.Sync(); err != nil {
			w.err = fmt.Errorf("sqldb: wal sync: %w", err)
		}
	}
}

// encodeEpochPayload appends an epoch record payload.
func encodeEpochPayload(b []byte, epoch uint64) []byte {
	b = append(b, recEpoch)
	return binary.AppendUvarint(b, epoch)
}

// encodeStmtPayload appends a statement record payload: the SQL text and
// its parameter values. Values use the same kinds as the engine: a kind
// byte followed by varint (INTEGER), 8-byte LE float bits (REAL), or a
// uvarint-length-prefixed byte string (TEXT, BLOB); NULL is bare.
func encodeStmtPayload(b []byte, sql string, args []Value) []byte {
	b = append(b, recStmt)
	b = binary.AppendUvarint(b, uint64(len(sql)))
	b = append(b, sql...)
	b = binary.AppendUvarint(b, uint64(len(args)))
	for _, v := range args {
		b = append(b, byte(v.K))
		switch v.K {
		case KInt:
			b = binary.AppendVarint(b, v.I)
		case KReal:
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.R))
		case KText:
			b = binary.AppendUvarint(b, uint64(len(v.S)))
			b = append(b, v.S...)
		case KBlob:
			b = binary.AppendUvarint(b, uint64(len(v.B)))
			b = append(b, v.B...)
		}
	}
	return b
}

func decodeStmtPayload(p []byte) (sql string, args []Value, err error) {
	bad := func(what string) (string, []Value, error) {
		return "", nil, fmt.Errorf("sqldb: wal record: bad %s", what)
	}
	if len(p) == 0 || p[0] != recStmt {
		return bad("kind")
	}
	p = p[1:]
	n, sz := binary.Uvarint(p)
	if sz <= 0 || uint64(len(p)-sz) < n {
		return bad("sql length")
	}
	sql = string(p[sz : sz+int(n)])
	p = p[sz+int(n):]
	nargs, sz := binary.Uvarint(p)
	if sz <= 0 || nargs > uint64(len(p)) {
		return bad("arg count")
	}
	p = p[sz:]
	args = make([]Value, 0, nargs)
	for i := uint64(0); i < nargs; i++ {
		if len(p) == 0 {
			return bad("arg kind")
		}
		k := Kind(p[0])
		p = p[1:]
		switch k {
		case KNull:
			args = append(args, Null())
		case KInt:
			iv, sz := binary.Varint(p)
			if sz <= 0 {
				return bad("int arg")
			}
			p = p[sz:]
			args = append(args, Int(iv))
		case KReal:
			if len(p) < 8 {
				return bad("real arg")
			}
			args = append(args, Real(math.Float64frombits(binary.LittleEndian.Uint64(p))))
			p = p[8:]
		case KText, KBlob:
			n, sz := binary.Uvarint(p)
			if sz <= 0 || uint64(len(p)-sz) < n {
				return bad("bytes arg")
			}
			data := p[sz : sz+int(n)]
			p = p[sz+int(n):]
			if k == KText {
				args = append(args, Text(string(data)))
			} else {
				args = append(args, Blob(append([]byte(nil), data...)))
			}
		default:
			return bad("arg kind")
		}
	}
	if len(p) != 0 {
		return bad("trailing bytes")
	}
	return sql, args, nil
}

// readFrame reads one frame from r. A clean EOF at a frame boundary
// returns io.EOF; any truncation, oversize length or CRC mismatch
// returns errTornFrame — both end replay, silently truncating the tail.
func readFrame(r io.Reader, buf []byte) (payload []byte, frameLen int64, err error) {
	var hdr [walFrameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, errTornFrame
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxWALRecord {
		return nil, 0, errTornFrame
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, 0, errTornFrame
	}
	if crc32.ChecksumIEEE(buf) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, 0, errTornFrame
	}
	return buf, int64(walFrameHeader) + int64(n), nil
}

var errTornFrame = fmt.Errorf("sqldb: wal: torn or corrupt frame")

// replayWAL re-executes the statement records in r onto the database.
// It returns how many statements were applied and the byte offset of the
// last intact frame — the caller truncates the file there to drop a torn
// tail. A log whose epoch record does not match the database's epoch is
// stale (it predates the loaded snapshot, which already contains its
// effects) and is discarded wholesale (good == 0).
//
// Statement errors are ignored: records are appended after execution, so
// a logged statement that failed (or partially applied) at runtime fails
// (or partially applies) identically on replay — execution is
// deterministic, and replay must reproduce the original state, including
// the effects of statements that errored midway.
func (db *DB) replayWAL(r io.Reader) (applied int, good int64, err error) {
	br := bufio.NewReader(r)
	var buf []byte
	payload, frameLen, ferr := readFrame(br, buf)
	if ferr != nil {
		return 0, 0, nil // empty or unreadable header: start a fresh log
	}
	if len(payload) < 1 || payload[0] != recEpoch {
		return 0, 0, nil
	}
	epoch, sz := binary.Uvarint(payload[1:])
	if sz <= 0 || epoch != db.epoch {
		return 0, 0, nil // stale log from before the current snapshot
	}
	good = frameLen
	for {
		payload, frameLen, ferr = readFrame(br, buf)
		if ferr != nil {
			return applied, good, nil // clean EOF or torn tail
		}
		buf = payload[:0]
		sql, args, derr := decodeStmtPayload(payload)
		if derr != nil {
			return applied, good, nil // undecodable despite CRC: treat as tail
		}
		_, _ = db.Exec(sql, args...)
		applied++
		good += frameLen
	}
}

// ReplayWAL applies a WAL stream onto the database, for tests and
// recovery tooling; OpenAt performs replay automatically. It returns the
// number of statements applied. The stream's epoch record must match the
// database's current epoch or the stream is discarded (returns 0).
func (db *DB) ReplayWAL(r io.Reader) (int, error) {
	applied, _, err := db.replayWAL(r)
	return applied, err
}

// AttachWAL starts logging every write statement to w. Replay of a
// previously written log must happen before attaching, or the replayed
// statements would be logged again.
func (db *DB) AttachWAL(w *WAL) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.wal = w
}

// WALPath returns the write-ahead log path used for a database file.
func WALPath(path string) string { return path + ".wal" }

// Barrier is a durability barrier: everything logged so far reaches
// stable storage before it returns. Without an attached WAL it is a
// no-op, preserving the pure in-memory mode.
func (db *DB) Barrier() error {
	db.mu.RLock()
	w := db.wal
	db.mu.RUnlock()
	if w == nil {
		return nil
	}
	return w.Sync()
}

// logStmt appends a write statement to the WAL. Called with db.mu held,
// so the log order is exactly the apply order.
func (db *DB) logStmt(sql string, args []Value) error {
	if db.wal == nil {
		return nil
	}
	db.dirty = true
	return db.wal.Append(sql, args)
}
