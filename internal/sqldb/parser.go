package sqldb

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks   []token
	pos    int
	params int // number of ? placeholders seen
	sql    string
}

// Parse parses a single SQL statement.
func Parse(sql string) (Statement, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, sql: sql}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	// Optional trailing semicolon.
	p.acceptSym(";")
	if p.cur().kind != tEOF {
		return nil, p.errf("unexpected %q after statement", p.cur().text)
	}
	return st, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sqldb: parse error at offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) acceptKw(kw string) bool {
	if p.cur().kind == tKeyword && p.cur().text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %s, got %q", kw, p.cur().text)
	}
	return nil
}

func (p *parser) acceptSym(s string) bool {
	if p.cur().kind == tSymbol && p.cur().text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSym(s string) error {
	if !p.acceptSym(s) {
		return p.errf("expected %q, got %q", s, p.cur().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind != tIdent {
		return "", p.errf("expected identifier, got %q", t.text)
	}
	p.pos++
	return t.text, nil
}

func (p *parser) statement() (Statement, error) {
	t := p.cur()
	if t.kind != tKeyword {
		return nil, p.errf("expected statement keyword, got %q", t.text)
	}
	switch t.text {
	case "CREATE":
		return p.createTable()
	case "DROP":
		return p.dropTable()
	case "INSERT":
		return p.insert()
	case "SELECT":
		return p.selectStmt()
	case "UPDATE":
		return p.update()
	case "DELETE":
		return p.delete()
	default:
		return nil, p.errf("unsupported statement %s", t.text)
	}
}

func parseType(kw string) (Kind, bool) {
	switch kw {
	case "INTEGER", "INT":
		return KInt, true
	case "REAL":
		return KReal, true
	case "TEXT":
		return KText, true
	case "BLOB":
		return KBlob, true
	}
	return 0, false
}

func (p *parser) createTable() (Statement, error) {
	p.next() // CREATE
	if p.acceptKw("INDEX") {
		return p.createIndex()
	}
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	ct := &CreateTable{}
	if p.acceptKw("IF") {
		if err := p.expectKw("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		ct.IfNotExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ct.Name = name
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptKw("PRIMARY"):
			if err := p.expectKw("KEY"); err != nil {
				return nil, err
			}
			cols, err := p.parenIdentList()
			if err != nil {
				return nil, err
			}
			if ct.PrimaryKey != nil {
				return nil, p.errf("multiple PRIMARY KEY clauses")
			}
			ct.PrimaryKey = cols
		case p.acceptKw("FOREIGN"):
			if err := p.expectKw("KEY"); err != nil {
				return nil, err
			}
			cols, err := p.parenIdentList()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("REFERENCES"); err != nil {
				return nil, err
			}
			ref, err := p.ident()
			if err != nil {
				return nil, err
			}
			refCols, err := p.parenIdentList()
			if err != nil {
				return nil, err
			}
			ct.Foreign = append(ct.Foreign, ForeignKeyDef{Cols: cols, RefTable: ref, RefCols: refCols})
		default:
			col, err := p.columnDef()
			if err != nil {
				return nil, err
			}
			ct.Cols = append(ct.Cols, *col)
		}
		if p.acceptSym(",") {
			continue
		}
		break
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return ct, nil
}

func (p *parser) columnDef() (*ColumnDef, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind != tKeyword {
		return nil, p.errf("expected column type, got %q", t.text)
	}
	kind, ok := parseType(t.text)
	if !ok {
		return nil, p.errf("unknown column type %s", t.text)
	}
	p.pos++
	col := &ColumnDef{Name: name, Type: kind}
	for {
		switch {
		case p.acceptKw("PRIMARY"):
			if err := p.expectKw("KEY"); err != nil {
				return nil, err
			}
			col.PK = true
			col.NotNull = true
		case p.acceptKw("NOT"):
			if err := p.expectKw("NULL"); err != nil {
				return nil, err
			}
			col.NotNull = true
		case p.acceptKw("UNIQUE"):
			col.Unique = true
		default:
			return col, nil
		}
	}
}

func (p *parser) parenIdentList() ([]string, error) {
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
		if p.acceptSym(",") {
			continue
		}
		break
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return cols, nil
}

// createIndex parses the tail of CREATE INDEX [IF NOT EXISTS] name ON
// table (col, ...); the CREATE INDEX keywords are already consumed.
func (p *parser) createIndex() (Statement, error) {
	ci := &CreateIndex{}
	if p.acceptKw("IF") {
		if err := p.expectKw("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		ci.IfNotExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ci.Name = name
	if err := p.expectKw("ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	ci.Table = table
	cols, err := p.parenIdentList()
	if err != nil {
		return nil, err
	}
	ci.Cols = cols
	return ci, nil
}

func (p *parser) dropTable() (Statement, error) {
	p.next() // DROP
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	dt := &DropTable{}
	if p.acceptKw("IF") {
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		dt.IfExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	dt.Name = name
	return dt, nil
}

func (p *parser) insert() (Statement, error) {
	p.next() // INSERT
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: name}
	if p.cur().kind == tSymbol && p.cur().text == "(" {
		cols, err := p.parenIdentList()
		if err != nil {
			return nil, err
		}
		ins.Cols = cols
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.acceptSym(",") {
				continue
			}
			break
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if p.acceptSym(",") {
			continue
		}
		break
	}
	return ins, nil
}

func (p *parser) selectStmt() (Statement, error) {
	p.next() // SELECT
	sel := &Select{}
	if p.acceptKw("DISTINCT") {
		sel.Distinct = true
	}
	for {
		if p.acceptSym("*") {
			sel.Exprs = append(sel.Exprs, SelectExpr{Star: true})
		} else {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			se := SelectExpr{E: e}
			if p.acceptKw("AS") {
				alias, err := p.ident()
				if err != nil {
					return nil, err
				}
				se.Alias = alias
			} else if p.cur().kind == tIdent {
				se.Alias = p.next().text
			}
			sel.Exprs = append(sel.Exprs, se)
		}
		if p.acceptSym(",") {
			continue
		}
		break
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	sel.Table = name
	if p.acceptKw("WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, c)
			if p.acceptSym(",") {
				continue
			}
			break
		}
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Col: c}
			if p.acceptKw("DESC") {
				key.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, key)
			if p.acceptSym(",") {
				continue
			}
			break
		}
	}
	if p.acceptKw("LIMIT") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		sel.Limit = e
		if p.acceptKw("OFFSET") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			sel.Offset = e
		}
	}
	return sel, nil
}

func (p *parser) update() (Statement, error) {
	p.next() // UPDATE
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	up := &Update{Table: name}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym("="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		up.Set = append(up.Set, Assign{Col: col, E: e})
		if p.acceptSym(",") {
			continue
		}
		break
	}
	if p.acceptKw("WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		up.Where = w
	}
	return up, nil
}

func (p *parser) delete() (Statement, error) {
	p.next() // DELETE
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: name}
	if p.acceptKw("WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		del.Where = w
	}
	return del, nil
}

// Expression grammar, lowest to highest precedence:
//
//	expr    := and (OR and)*
//	and     := not (AND not)*
//	not     := NOT not | cmp
//	cmp     := add ((= | != | <> | < | <= | > | >=| LIKE) add
//	          | IS [NOT] NULL | [NOT] IN (list))?
//	add     := mul ((+ | -) mul)*
//	mul     := unary ((* | / | %) unary)*
//	unary   := - unary | primary
//	primary := literal | ? | ident | agg(...) | ( expr )
func (p *parser) expr() (Expr, error) {
	return p.orExpr()
}

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.acceptKw("NOT") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.cmpExpr()
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if p.acceptKw("IS") {
		neg := p.acceptKw("NOT")
		if err := p.expectKw("NULL"); err != nil {
			return nil, err
		}
		return &IsNull{X: l, Neg: neg}, nil
	}
	negIn := false
	if p.cur().kind == tKeyword && p.cur().text == "NOT" &&
		p.toks[p.pos+1].kind == tKeyword && p.toks[p.pos+1].text == "IN" {
		p.pos++ // NOT
		negIn = true
	}
	if p.acceptKw("IN") {
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.acceptSym(",") {
				continue
			}
			break
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return &InList{X: l, List: list, Neg: negIn}, nil
	}
	if p.acceptKw("LIKE") {
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: "LIKE", L: l, R: r}, nil
	}
	for _, op := range []string{"<=", ">=", "<>", "!=", "=", "<", ">"} {
		if p.acceptSym(op) {
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			if op == "<>" {
				op = "!="
			}
			return &Binary{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptSym("+"):
			op = "+"
		case p.acceptSym("-"):
			op = "-"
		default:
			return l, nil
		}
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptSym("*"):
			op = "*"
		case p.acceptSym("/"):
			op = "/"
		case p.acceptSym("%"):
			op = "%"
		default:
			return l, nil
		}
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

var aggregates = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.acceptSym("-") {
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tNumber:
		p.pos++
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return &Lit{V: Real(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", t.text)
		}
		return &Lit{V: Int(i)}, nil
	case tString:
		p.pos++
		return &Lit{V: Text(t.text)}, nil
	case tBlob:
		p.pos++
		b, err := hex.DecodeString(t.text)
		if err != nil {
			return nil, p.errf("bad blob literal %q", t.text)
		}
		return &Lit{V: Blob(b)}, nil
	case tParam:
		p.pos++
		e := &Param{Idx: p.params}
		p.params++
		return e, nil
	case tKeyword:
		if t.text == "NULL" {
			p.pos++
			return &Lit{V: Null()}, nil
		}
		if aggregates[t.text] {
			p.pos++
			if err := p.expectSym("("); err != nil {
				return nil, err
			}
			call := &Call{Fn: t.text}
			if p.acceptSym("*") {
				if t.text != "COUNT" {
					return nil, p.errf("%s(*) is not valid", t.text)
				}
				call.Star = true
			} else {
				if p.acceptKw("DISTINCT") {
					call.Distinct = true
				}
				arg, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Arg = arg
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		return nil, p.errf("unexpected keyword %s in expression", t.text)
	case tIdent:
		p.pos++
		return &ColRef{Name: t.text}, nil
	case tSymbol:
		if t.text == "(" {
			p.pos++
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected %q in expression", t.text)
}
