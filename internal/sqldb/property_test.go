package sqldb

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// Property: any row inserted with parameters round-trips exactly through
// a SELECT, for every value kind.
func TestPropertyInsertSelectRoundTrip(t *testing.T) {
	f := func(id int64, txt string, num int64, real float64, blob []byte) bool {
		db := Open()
		if _, err := db.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY, s TEXT, i INTEGER, r REAL, b BLOB)`); err != nil {
			return false
		}
		if _, err := db.Exec(`INSERT INTO t VALUES (?, ?, ?, ?, ?)`,
			Int(id), Text(txt), Int(num), Real(real), Blob(blob)); err != nil {
			return false
		}
		res, err := db.Query(`SELECT s, i, r, b FROM t WHERE id = ?`, Int(id))
		if err != nil || len(res.Rows) != 1 {
			return false
		}
		row := res.Rows[0]
		if row[0].S != txt || row[1].I != num {
			return false
		}
		if row[2].R != real && !(row[2].R != row[2].R && real != real) { // NaN-safe
			return false
		}
		if string(row[3].B) != string(blob) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: COUNT(*) equals the number of inserted rows minus deleted
// rows, under random interleavings of inserts and deletes.
func TestPropertyCountTracksInsertsAndDeletes(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := int(opsRaw)%60 + 1
		db := Open()
		db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY)`)
		live := make(map[int64]bool)
		next := int64(0)
		for i := 0; i < ops; i++ {
			if rng.Intn(3) > 0 || len(live) == 0 {
				if _, err := db.Exec(`INSERT INTO t VALUES (?)`, Int(next)); err != nil {
					return false
				}
				live[next] = true
				next++
			} else {
				var victim int64
				for k := range live {
					victim = k
					break
				}
				if _, err := db.Exec(`DELETE FROM t WHERE id = ?`, Int(victim)); err != nil {
					return false
				}
				delete(live, victim)
			}
		}
		res, err := db.Query(`SELECT COUNT(*) FROM t`)
		if err != nil {
			return false
		}
		return res.Rows[0][0].I == int64(len(live))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ORDER BY returns rows sorted, and LIMIT/OFFSET slice that
// order consistently.
func TestPropertyOrderByIsSorted(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%40 + 1
		db := Open()
		db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)`)
		for i := 0; i < n; i++ {
			db.MustExec(`INSERT INTO t VALUES (?, ?)`, Int(int64(i)), Int(rng.Int63n(100)))
		}
		res, err := db.Query(`SELECT v FROM t ORDER BY v`)
		if err != nil || len(res.Rows) != n {
			return false
		}
		for i := 1; i < n; i++ {
			if res.Rows[i-1][0].I > res.Rows[i][0].I {
				return false
			}
		}
		// LIMIT k OFFSET j equals the slice of the full ordering.
		k, j := rng.Intn(n)+1, rng.Intn(n)
		sliced, err := db.Query(`SELECT v FROM t ORDER BY v LIMIT ? OFFSET ?`,
			Int(int64(k)), Int(int64(j)))
		if err != nil {
			return false
		}
		want := res.Rows
		if j < len(want) {
			want = want[j:]
		} else {
			want = nil
		}
		if k < len(want) {
			want = want[:k]
		}
		if len(sliced.Rows) != len(want) {
			return false
		}
		for i := range want {
			if sliced.Rows[i][0].I != want[i][0].I {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SUM/MIN/MAX/AVG agree with host-side computation over random
// integer columns.
func TestPropertyAggregatesAgree(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%30 + 1
		db := Open()
		db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)`)
		var sum, minV, maxV int64
		for i := 0; i < n; i++ {
			v := rng.Int63n(2001) - 1000
			if i == 0 {
				minV, maxV = v, v
			}
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
			sum += v
			db.MustExec(`INSERT INTO t VALUES (?, ?)`, Int(int64(i)), Int(v))
		}
		res, err := db.Query(`SELECT SUM(v), MIN(v), MAX(v), AVG(v), COUNT(*) FROM t`)
		if err != nil {
			return false
		}
		row := res.Rows[0]
		wantAvg := float64(sum) / float64(n)
		return row[0].I == sum && row[1].I == minV && row[2].I == maxV &&
			abs(row[3].R-wantAvg) < 1e-9 && row[4].I == int64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Property: save/load round-trips arbitrary table contents, preserving
// row counts and primary key enforcement.
func TestPropertySaveLoadPreservesRows(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw) % 30
		db := Open()
		db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY, b BLOB)`)
		for i := 0; i < n; i++ {
			blob := make([]byte, rng.Intn(32))
			rng.Read(blob)
			db.MustExec(`INSERT INTO t VALUES (?, ?)`, Int(int64(i)), Blob(blob))
		}
		var buf writerBuffer
		if err := db.Save(&buf); err != nil {
			return false
		}
		db2 := Open()
		if err := db2.Load(&buf); err != nil {
			return false
		}
		res, err := db2.Query(`SELECT COUNT(*) FROM t`)
		if err != nil || res.Rows[0][0].I != int64(n) {
			return false
		}
		if n > 0 {
			if _, err := db2.Exec(`INSERT INTO t VALUES (0, NULL)`); err == nil {
				return false // duplicate PK must be rejected after load
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// writerBuffer is a minimal in-memory io.ReadWriter.
type writerBuffer struct {
	data []byte
	off  int
}

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}

func (w *writerBuffer) Read(p []byte) (int, error) {
	if w.off >= len(w.data) {
		return 0, fmt.Errorf("EOF")
	}
	n := copy(p, w.data[w.off:])
	w.off += n
	return n, nil
}

// Property: the lexer+parser never panic on arbitrary input; they either
// parse or return an error.
func TestPropertyParserNeverPanics(t *testing.T) {
	f := func(input string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Parse(input)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: every statement the engine accepts can be round-tripped via
// Exec without corrupting the table registry (names stay listable).
func TestPropertyTableRegistryConsistent(t *testing.T) {
	db := Open()
	names := []string{"alpha", "beta", "gamma", "delta"}
	for _, n := range names {
		db.MustExec(fmt.Sprintf(`CREATE TABLE %s (id INTEGER PRIMARY KEY)`, n))
	}
	db.MustExec(`DROP TABLE beta`)
	got := db.TableNames()
	want := []string{"alpha", "gamma", "delta"}
	if len(got) != len(want) {
		t.Fatalf("tables = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tables[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// valueKey renders a value for result comparison in the index properties.
func valueKey(v Value) string {
	switch v.K {
	case KNull:
		return "∅"
	case KInt:
		return fmt.Sprintf("i%d", v.I)
	case KReal:
		return fmt.Sprintf("r%v", v.R)
	case KText:
		return "t" + v.S
	default:
		return "b" + string(v.B)
	}
}

func rowsKey(rows [][]Value) []string {
	out := make([]string, len(rows))
	for i, row := range rows {
		s := ""
		for _, v := range row {
			s += valueKey(v) + "|"
		}
		out[i] = s
	}
	sort.Strings(out)
	return out
}

func sameRows(a, b [][]Value) bool {
	ka, kb := rowsKey(a), rowsKey(b)
	if len(ka) != len(kb) {
		return false
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// randIndexedDB builds a table with a PK, a secondary index, and random
// contents drawn from a small domain (so equality predicates hit many
// rows and NULLs appear).
func randIndexedDB(rng *rand.Rand, n int) *DB {
	db := Open()
	db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY, a INTEGER, s TEXT)`)
	db.MustExec(`CREATE INDEX t_a ON t (a)`)
	for i := 0; i < n; i++ {
		a := Null()
		if rng.Intn(5) > 0 {
			a = Int(rng.Int63n(4))
		}
		db.MustExec(`INSERT INTO t VALUES (?, ?, ?)`,
			Int(int64(i)), a, Text(fmt.Sprintf("s%d", rng.Intn(3))))
	}
	return db
}

// Property: index-backed SELECT returns exactly the rows a full scan
// returns, for equality predicates over PK, indexed, and unindexed
// columns — including predicates a full scan treats specially (NULL
// comparisons, kind mismatches).
func TestPropertyIndexSelectEqualsFullScan(t *testing.T) {
	queries := []struct {
		sql  string
		args func(rng *rand.Rand) []Value
	}{
		{`SELECT * FROM t WHERE id = ?`, func(rng *rand.Rand) []Value { return []Value{Int(rng.Int63n(40))} }},
		{`SELECT * FROM t WHERE a = ?`, func(rng *rand.Rand) []Value { return []Value{Int(rng.Int63n(5))} }},
		{`SELECT * FROM t WHERE a = ? AND s = ?`, func(rng *rand.Rand) []Value {
			return []Value{Int(rng.Int63n(5)), Text(fmt.Sprintf("s%d", rng.Intn(4)))}
		}},
		{`SELECT * FROM t WHERE s = ? AND id = ?`, func(rng *rand.Rand) []Value {
			return []Value{Text(fmt.Sprintf("s%d", rng.Intn(4))), Int(rng.Int63n(40))}
		}},
		{`SELECT * FROM t WHERE a = ?`, func(rng *rand.Rand) []Value { return []Value{Null()} }},
		{`SELECT * FROM t WHERE a = ?`, func(rng *rand.Rand) []Value { return []Value{Text("not-an-int")} }},
		{`SELECT id FROM t WHERE a = ? ORDER BY id`, func(rng *rand.Rand) []Value { return []Value{Int(rng.Int63n(4))} }},
	}
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randIndexedDB(rng, int(nRaw)%40+1)
		for _, q := range queries {
			args := q.args(rng)
			indexed, errIdx := db.Query(q.sql, args...)
			db.disableIndexSelect = true
			full, errFull := db.Query(q.sql, args...)
			db.disableIndexSelect = false
			if (errIdx == nil) != (errFull == nil) {
				t.Logf("error divergence: %s args=%v idx=%v full=%v", q.sql, args, errIdx, errFull)
				return false
			}
			if errIdx != nil {
				continue
			}
			if !sameRows(indexed.Rows, full.Rows) {
				t.Logf("divergence: %s args=%v indexed=%d full=%d",
					q.sql, args, len(indexed.Rows), len(full.Rows))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: a random interleaving of INSERT/UPDATE/DELETE statements with
// equality predicates leaves an indexed database and a full-scan-only
// database with identical contents — indexes stay consistent through
// row mutation and compaction.
func TestPropertyIndexMutationsMatchFullScan(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := int(opsRaw)%80 + 10
		indexed := randIndexedDB(rng, 10)
		full := Open()
		full.disableIndexSelect = true
		full.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY, a INTEGER, s TEXT)`)
		// Mirror the starting rows.
		start, err := indexed.Query(`SELECT * FROM t`)
		if err != nil {
			return false
		}
		for _, row := range start.Rows {
			full.MustExec(`INSERT INTO t VALUES (?, ?, ?)`, row[0], row[1], row[2])
		}
		next := int64(100)
		for i := 0; i < ops; i++ {
			var sql string
			var args []Value
			switch rng.Intn(3) {
			case 0:
				sql = `INSERT INTO t VALUES (?, ?, ?)`
				args = []Value{Int(next), Int(rng.Int63n(4)), Text(fmt.Sprintf("s%d", rng.Intn(3)))}
				next++
			case 1:
				sql = `UPDATE t SET a = ? WHERE a = ?`
				args = []Value{Int(rng.Int63n(4)), Int(rng.Int63n(4))}
			default:
				sql = `DELETE FROM t WHERE a = ? AND s = ?`
				args = []Value{Int(rng.Int63n(4)), Text(fmt.Sprintf("s%d", rng.Intn(3)))}
			}
			nIdx, errIdx := indexed.Exec(sql, args...)
			nFull, errFull := full.Exec(sql, args...)
			if (errIdx == nil) != (errFull == nil) || nIdx != nFull {
				t.Logf("op divergence: %s args=%v idx=(%d,%v) full=(%d,%v)",
					sql, args, nIdx, errIdx, nFull, errFull)
				return false
			}
		}
		a, err := indexed.Query(`SELECT * FROM t`)
		if err != nil {
			return false
		}
		b, err := full.Query(`SELECT * FROM t`)
		if err != nil {
			return false
		}
		return sameRows(a.Rows, b.Rows)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
