package sqldb

import (
	"fmt"
	"sort"
	"sync"
)

// DB is an in-memory relational database with optional file persistence.
// It is safe for concurrent use.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	order  []string // creation order, for stable persistence and listing

	stmtMu sync.RWMutex
	stmts  map[string]Statement // parsed-statement cache, keyed by SQL text

	// disableIndexSelect forces matchRows onto the full-scan path; used by
	// property tests to compare indexed and unindexed execution.
	disableIndexSelect bool

	// Durability (optional): when a WAL is attached, every write
	// statement is appended to it under mu, and Checkpoint compacts the
	// log into the snapshot at snapPath. epoch counts checkpoints; a
	// snapshot and its log carry matching epochs so a stale log is never
	// replayed onto a newer snapshot.
	wal      *WAL
	snapPath string
	epoch    uint64
	// dirty tracks whether statements were appended to the WAL since the
	// last checkpoint; a clean database's snapshot is already complete,
	// so idle compaction (e.g. the daemon's tenant manager) can skip it.
	dirty bool
}

// stmtCacheLimit bounds the parsed-statement cache. Campaign workloads
// reuse a small set of statements, so the cache is cleared, not evicted,
// when it fills.
const stmtCacheLimit = 512

// Open returns an empty database.
func Open() *DB {
	return &DB{tables: make(map[string]*Table), stmts: make(map[string]Statement)}
}

// parseCached parses a statement, memoizing the AST. Statements are
// immutable after parsing (execution never writes to the tree), so a
// cached AST can be shared across goroutines.
func (db *DB) parseCached(sql string) (Statement, error) {
	db.stmtMu.RLock()
	st, ok := db.stmts[sql]
	db.stmtMu.RUnlock()
	if ok {
		return st, nil
	}
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	db.stmtMu.Lock()
	if db.stmts == nil || len(db.stmts) >= stmtCacheLimit {
		db.stmts = make(map[string]Statement)
	}
	db.stmts[sql] = st
	db.stmtMu.Unlock()
	return st, nil
}

// Result is the outcome of a SELECT.
type Result struct {
	Cols []string
	Rows [][]Value
}

// ColIndex returns the index of a result column by name.
func (r *Result) ColIndex(name string) (int, error) {
	for i, c := range r.Cols {
		if c == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("sqldb: result has no column %q", name)
}

// TableNames lists the tables in creation order.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, len(db.order))
	copy(out, db.order)
	return out
}

// Schema returns a copy of a table's schema.
func (db *DB) Schema(name string) (cols []Column, pk []string, fks []ForeignKey, err error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, nil, nil, fmt.Errorf("sqldb: no table %q", name)
	}
	cols = append(cols, t.Cols...)
	pk = append(pk, t.PKCols...)
	fks = append(fks, t.FKs...)
	return cols, pk, fks, nil
}

// Exec runs a statement that does not return rows. It returns the number
// of rows affected (0 for DDL).
func (db *DB) Exec(sql string, args ...Value) (int64, error) {
	st, err := db.parseCached(sql)
	if err != nil {
		return 0, err
	}
	return db.execStmt(sql, st, args)
}

func (db *DB) execStmt(sql string, st Statement, args []Value) (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	var n int64
	var err error
	switch st := st.(type) {
	case *CreateTable:
		err = db.createTable(st)
	case *CreateIndex:
		err = db.createIndex(st)
	case *DropTable:
		err = db.dropTable(st)
	case *Insert:
		n, err = db.insert(st, args)
	case *Update:
		n, err = db.update(st, args)
	case *Delete:
		n, err = db.delete(st, args)
	case *Select:
		return 0, fmt.Errorf("sqldb: use Query for SELECT")
	default:
		return 0, fmt.Errorf("sqldb: unsupported statement %T", st)
	}
	// Log after execution, under db.mu, so log order equals apply order.
	// Failed statements are logged too: a mid-statement error can leave
	// partial effects, and deterministic re-execution reproduces exactly
	// those. The execution error stays the caller's primary error.
	if werr := db.logStmt(sql, args); werr != nil && err == nil {
		err = werr
	}
	return n, err
}

// Stmt is a prepared statement: parsed once, executable many times
// without the per-call cache lookup. The AST is immutable after parse, so
// a Stmt is safe for concurrent use.
type Stmt struct {
	db  *DB
	sql string
	st  Statement
	// fastTable/fastN describe a single-row INSERT whose values are
	// exactly the parameters ?0..?n-1 in order: the row can be built by
	// copying args, skipping expression evaluation entirely.
	fastTable string
	fastN     int
}

// fastInsertParams reports whether st is `INSERT INTO t VALUES (?0, ...,
// ?n-1)` — one row, no column list, every value the positional parameter
// matching its slot. Returns ("", 0) otherwise.
func fastInsertParams(st Statement) (string, int) {
	ins, ok := st.(*Insert)
	if !ok || len(ins.Cols) != 0 || len(ins.Rows) != 1 {
		return "", 0
	}
	for i, e := range ins.Rows[0] {
		p, ok := e.(*Param)
		if !ok || p.Idx != i {
			return "", 0
		}
	}
	return ins.Table, len(ins.Rows[0])
}

// Prepare parses a statement for repeated execution. This is the write
// half of the storage hot path: the campaign store prepares its
// LoggedSystemState INSERT once and replays it per experiment.
func (db *DB) Prepare(sql string) (*Stmt, error) {
	st, err := db.parseCached(sql)
	if err != nil {
		return nil, err
	}
	s := &Stmt{db: db, sql: sql, st: st}
	s.fastTable, s.fastN = fastInsertParams(st)
	return s, nil
}

// Exec runs the prepared statement with the given parameters.
func (s *Stmt) Exec(args ...Value) (int64, error) {
	// Fast path: a pure-parameter single-row INSERT copies args straight
	// into the row. Any shape mismatch falls back to the general path so
	// error messages stay identical.
	if s.fastN > 0 && len(args) == s.fastN {
		s.db.mu.Lock()
		t, ok := s.db.tables[s.fastTable]
		if ok && len(t.Cols) == s.fastN {
			row := make([]Value, s.fastN)
			copy(row, args)
			err := s.db.insertRow(t, row)
			if werr := s.db.logStmt(s.sql, args); werr != nil && err == nil {
				err = werr
			}
			s.db.mu.Unlock()
			if err != nil {
				return 0, err
			}
			return 1, nil
		}
		s.db.mu.Unlock()
	}
	return s.db.execStmt(s.sql, s.st, args)
}

// Query runs a prepared SELECT.
func (s *Stmt) Query(args ...Value) (*Result, error) {
	sel, ok := s.st.(*Select)
	if !ok {
		return nil, fmt.Errorf("sqldb: Query requires a SELECT statement")
	}
	s.db.mu.RLock()
	defer s.db.mu.RUnlock()
	return s.db.selectRows(sel, args)
}

// Query runs a SELECT and returns its result rows.
func (db *DB) Query(sql string, args ...Value) (*Result, error) {
	st, err := db.parseCached(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*Select)
	if !ok {
		return nil, fmt.Errorf("sqldb: Query requires a SELECT statement")
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.selectRows(sel, args)
}

// MustExec is Exec that panics on error; for tests and fixed DDL whose
// correctness is covered by tests.
func (db *DB) MustExec(sql string, args ...Value) {
	if _, err := db.Exec(sql, args...); err != nil {
		panic(err)
	}
}

func (db *DB) createTable(ct *CreateTable) error {
	if _, exists := db.tables[ct.Name]; exists {
		if ct.IfNotExists {
			return nil
		}
		return fmt.Errorf("sqldb: table %q already exists", ct.Name)
	}
	if len(ct.Cols) == 0 {
		return fmt.Errorf("sqldb: table %q has no columns", ct.Name)
	}
	t := &Table{Name: ct.Name}
	seen := make(map[string]bool)
	var pk []string
	for _, cd := range ct.Cols {
		if seen[cd.Name] {
			return fmt.Errorf("sqldb: duplicate column %q in table %q", cd.Name, ct.Name)
		}
		seen[cd.Name] = true
		t.Cols = append(t.Cols, Column{Name: cd.Name, Type: cd.Type, NotNull: cd.NotNull, Unique: cd.Unique})
		if cd.PK {
			pk = append(pk, cd.Name)
		}
	}
	if len(ct.PrimaryKey) > 0 {
		if len(pk) > 0 {
			return fmt.Errorf("sqldb: table %q has both column-level and table-level PRIMARY KEY", ct.Name)
		}
		pk = ct.PrimaryKey
	}
	t.PKCols = pk
	if _, err := t.colIndexes(pk); err != nil {
		return err
	}
	// PK columns are implicitly NOT NULL.
	for _, pc := range pk {
		ci, _ := t.colIndex(pc)
		t.Cols[ci].NotNull = true
	}
	for _, fk := range ct.Foreign {
		if len(fk.Cols) != len(fk.RefCols) {
			return fmt.Errorf("sqldb: foreign key arity mismatch in table %q", ct.Name)
		}
		if _, err := t.colIndexes(fk.Cols); err != nil {
			return err
		}
		ref, ok := db.tables[fk.RefTable]
		if !ok {
			return fmt.Errorf("sqldb: foreign key references unknown table %q", fk.RefTable)
		}
		if _, err := ref.colIndexes(fk.RefCols); err != nil {
			return err
		}
		t.FKs = append(t.FKs, ForeignKey{Cols: fk.Cols, RefTable: fk.RefTable, RefCols: fk.RefCols})
	}
	if err := t.rebuildIndex(); err != nil {
		return err
	}
	if err := t.ensureFKIndexes(); err != nil {
		return err
	}
	db.tables[ct.Name] = t
	db.order = append(db.order, ct.Name)
	return nil
}

// ensureFKIndexes creates an automatic secondary index for every foreign
// key column set, so fkCheck and referencers resolve by hash lookup. Sets
// already covered by the primary key or an existing index are skipped.
func (t *Table) ensureFKIndexes() error {
	for i, fk := range t.FKs {
		if equalStrings(fk.Cols, t.PKCols) || t.hasIndexOn(fk.Cols) {
			continue
		}
		name := fmt.Sprintf("%s_fk%d_auto", t.Name, i)
		if err := t.addIndex(name, fk.Cols); err != nil {
			return err
		}
	}
	return nil
}

func (db *DB) createIndex(ci *CreateIndex) error {
	t, ok := db.tables[ci.Table]
	if !ok {
		return fmt.Errorf("sqldb: no table %q", ci.Table)
	}
	for _, ix := range t.Indexes {
		if ix.Name == ci.Name {
			if ci.IfNotExists {
				return nil
			}
			return fmt.Errorf("sqldb: index %q already exists on table %s", ci.Name, ci.Table)
		}
	}
	return t.addIndex(ci.Name, ci.Cols)
}

func (db *DB) dropTable(dt *DropTable) error {
	if _, ok := db.tables[dt.Name]; !ok {
		if dt.IfExists {
			return nil
		}
		return fmt.Errorf("sqldb: no table %q", dt.Name)
	}
	for name, other := range db.tables {
		if name == dt.Name {
			continue
		}
		for _, fk := range other.FKs {
			if fk.RefTable == dt.Name {
				return fmt.Errorf("sqldb: cannot drop %q: referenced by %q", dt.Name, name)
			}
		}
	}
	delete(db.tables, dt.Name)
	for i, n := range db.order {
		if n == dt.Name {
			db.order = append(db.order[:i], db.order[i+1:]...)
			break
		}
	}
	return nil
}

// fkCheck verifies that a row's foreign key tuples exist in the referenced
// tables. NULL components skip the check (SQL MATCH SIMPLE).
func (db *DB) fkCheck(t *Table, row []Value) error {
	for fi := range t.FKs {
		fk := &t.FKs[fi]
		idx, err := t.fkColIdx(fi)
		if err != nil {
			return err
		}
		hasNull := false
		for _, ci := range idx {
			if row[ci].IsNull() {
				hasNull = true
				break
			}
		}
		if hasNull {
			continue
		}
		ref := db.tables[fk.RefTable]
		if ref == nil {
			return fmt.Errorf("sqldb: foreign key references missing table %q", fk.RefTable)
		}
		// The FK values in fk.Cols order correspond positionally to
		// fk.RefCols, so the same projection keys both sides.
		key := rowKey(row, idx)
		if equalStrings(fk.RefCols, ref.PKCols) {
			if _, ok := ref.pkIndex[key]; !ok {
				return fmt.Errorf("sqldb: foreign key violation: %s%v not in %s(%v)",
					t.Name, fk.Cols, fk.RefTable, fk.RefCols)
			}
			continue
		}
		if ix := ref.indexOn(fk.RefCols); ix != nil {
			if len(ix.rows[key]) == 0 {
				return fmt.Errorf("sqldb: foreign key violation: %s%v not in %s(%v)",
					t.Name, fk.Cols, fk.RefTable, fk.RefCols)
			}
			continue
		}
		set, err := ref.tupleSet(fk.RefCols)
		if err != nil {
			return err
		}
		if !set[key] {
			return fmt.Errorf("sqldb: foreign key violation: %s%v not in %s(%v)",
				t.Name, fk.Cols, fk.RefTable, fk.RefCols)
		}
	}
	return nil
}

// referencers returns an error if any row in another table references the
// given tuple of t's columns.
func (db *DB) referencers(t *Table, row []Value) error {
	for _, other := range db.tables {
		for _, fk := range other.FKs {
			if fk.RefTable != t.Name {
				continue
			}
			refIdx, err := t.colIndexes(fk.RefCols)
			if err != nil {
				return err
			}
			refVals := make([]Value, len(refIdx))
			refNull := false
			for i, ci := range refIdx {
				refVals[i] = row[ci]
				if refVals[i].IsNull() {
					refNull = true
				}
			}
			if refNull {
				// A NULL component never matches a referencing tuple
				// (MATCH SIMPLE), so nothing can reference this row.
				continue
			}
			key := keyString(refVals)
			if ix := other.indexOn(fk.Cols); ix != nil {
				if len(ix.rows[key]) > 0 {
					return fmt.Errorf("sqldb: row in %s is referenced by %s", t.Name, other.Name)
				}
				continue
			}
			colIdx, err := other.colIndexes(fk.Cols)
			if err != nil {
				return err
			}
			for _, orow := range other.Rows {
				vals := make([]Value, len(colIdx))
				skip := false
				for i, ci := range colIdx {
					vals[i] = orow[ci]
					if vals[i].IsNull() {
						skip = true
					}
				}
				if !skip && keyString(vals) == key {
					return fmt.Errorf("sqldb: row in %s is referenced by %s", t.Name, other.Name)
				}
			}
		}
	}
	return nil
}

// uniqueCheck verifies UNIQUE columns and PK uniqueness for a candidate
// row, ignoring the row at skipIdx (for updates). pkKey is the row's
// precomputed primary key tuple ("" when the table has no PK); passing it
// in lets insert/update reuse the key for the index maintenance that
// follows.
func (db *DB) uniqueCheck(t *Table, row []Value, pkKey string, skipIdx int) error {
	if len(t.PKCols) > 0 {
		if i, dup := t.pkIndex[pkKey]; dup && i != skipIdx {
			return fmt.Errorf("sqldb: duplicate primary key in table %s", t.Name)
		}
		// PK components must not be NULL.
		for _, ci := range t.pkColIdx() {
			if row[ci].IsNull() {
				return fmt.Errorf("sqldb: NULL in primary key of table %s", t.Name)
			}
		}
	}
	for ci, col := range t.Cols {
		if !col.Unique || row[ci].IsNull() {
			continue
		}
		for ri, other := range t.Rows {
			if ri == skipIdx {
				continue
			}
			if Equal(other[ci], row[ci]) {
				return fmt.Errorf("sqldb: duplicate value in unique column %s.%s", t.Name, col.Name)
			}
		}
	}
	return nil
}

func (db *DB) insert(ins *Insert, args []Value) (int64, error) {
	t, ok := db.tables[ins.Table]
	if !ok {
		return 0, fmt.Errorf("sqldb: no table %q", ins.Table)
	}
	colIdx := make([]int, 0, len(ins.Cols))
	if len(ins.Cols) > 0 {
		var err error
		colIdx, err = t.colIndexes(ins.Cols)
		if err != nil {
			return 0, err
		}
	}
	ctx := &evalCtx{args: args}
	var inserted int64
	for _, exprRow := range ins.Rows {
		row := make([]Value, len(t.Cols))
		if len(ins.Cols) == 0 {
			if len(exprRow) != len(t.Cols) {
				return inserted, fmt.Errorf("sqldb: table %s has %d columns, got %d values",
					t.Name, len(t.Cols), len(exprRow))
			}
			for i, e := range exprRow {
				v, err := eval(e, ctx)
				if err != nil {
					return inserted, err
				}
				row[i] = v
			}
		} else {
			if len(exprRow) != len(ins.Cols) {
				return inserted, fmt.Errorf("sqldb: %d columns named, %d values given",
					len(ins.Cols), len(exprRow))
			}
			for i, e := range exprRow {
				v, err := eval(e, ctx)
				if err != nil {
					return inserted, err
				}
				row[colIdx[i]] = v
			}
		}
		if err := db.insertRow(t, row); err != nil {
			return inserted, err
		}
		inserted++
	}
	return inserted, nil
}

// insertRow validates one assembled row and appends it with full index
// maintenance. Shared by the general INSERT path and the prepared-
// statement fast path.
func (db *DB) insertRow(t *Table, row []Value) error {
	row, err := t.checkRow(row)
	if err != nil {
		return err
	}
	key := t.pkKey(row)
	if err := db.uniqueCheck(t, row, key, -1); err != nil {
		return err
	}
	if err := db.fkCheck(t, row); err != nil {
		return err
	}
	t.Rows = append(t.Rows, row)
	if len(t.PKCols) > 0 {
		t.pkIndex[key] = len(t.Rows) - 1
	}
	t.indexInsert(len(t.Rows)-1, row)
	return nil
}

// matchRows returns the indexes of rows satisfying the WHERE clause.
// When the clause's equality bindings are covered by the primary key or a
// secondary index, only the index candidates are evaluated; the full WHERE
// still runs on each candidate, so results match a full scan.
func (db *DB) matchRows(t *Table, where Expr, args []Value) ([]int, error) {
	ctx := &evalCtx{table: t, args: args}
	if where != nil && !db.disableIndexSelect {
		if cand, ok := t.indexCandidates(where, args); ok {
			var out []int
			for _, ri := range cand {
				ctx.row = t.Rows[ri]
				v, err := eval(where, ctx)
				if err != nil {
					return nil, err
				}
				if v.Truth() {
					out = append(out, ri)
				}
			}
			return out, nil
		}
	}
	var out []int
	for i, row := range t.Rows {
		if where == nil {
			out = append(out, i)
			continue
		}
		ctx.row = row
		v, err := eval(where, ctx)
		if err != nil {
			return nil, err
		}
		if v.Truth() {
			out = append(out, i)
		}
	}
	return out, nil
}

func (db *DB) update(up *Update, args []Value) (int64, error) {
	t, ok := db.tables[up.Table]
	if !ok {
		return 0, fmt.Errorf("sqldb: no table %q", up.Table)
	}
	setIdx := make([]int, len(up.Set))
	for i, a := range up.Set {
		ci, err := t.colIndex(a.Col)
		if err != nil {
			return 0, err
		}
		setIdx[i] = ci
	}
	matched, err := db.matchRows(t, up.Where, args)
	if err != nil {
		return 0, err
	}
	ctx := &evalCtx{table: t, args: args}
	var updated int64
	for _, ri := range matched {
		old := t.Rows[ri]
		next := make([]Value, len(old))
		copy(next, old)
		ctx.row = old
		for i, a := range up.Set {
			v, err := eval(a.E, ctx)
			if err != nil {
				return updated, err
			}
			next[setIdx[i]] = v
		}
		next, err := t.checkRow(next)
		if err != nil {
			return updated, err
		}
		newKey := t.pkKey(next)
		if err := db.uniqueCheck(t, next, newKey, ri); err != nil {
			return updated, err
		}
		if err := db.fkCheck(t, next); err != nil {
			return updated, err
		}
		// If the PK tuple changes, no other table may reference the old
		// tuple (RESTRICT).
		oldKey := t.pkKey(old)
		if len(t.PKCols) > 0 && oldKey != newKey {
			if err := db.referencers(t, old); err != nil {
				return updated, err
			}
		}
		t.Rows[ri] = next
		// Maintain the PK index per row so uniqueness checks within this
		// statement (and any query after an early error return) see a
		// consistent index.
		if len(t.PKCols) > 0 && oldKey != newKey {
			delete(t.pkIndex, oldKey)
			t.pkIndex[newKey] = ri
		}
		t.indexUpdate(ri, old, next)
		updated++
	}
	return updated, nil
}

func (db *DB) delete(del *Delete, args []Value) (int64, error) {
	t, ok := db.tables[del.Table]
	if !ok {
		return 0, fmt.Errorf("sqldb: no table %q", del.Table)
	}
	matched, err := db.matchRows(t, del.Where, args)
	if err != nil {
		return 0, err
	}
	for _, ri := range matched {
		if err := db.referencers(t, t.Rows[ri]); err != nil {
			return 0, err
		}
	}
	drop := make(map[int]bool, len(matched))
	for _, ri := range matched {
		drop[ri] = true
	}
	var kept [][]Value
	for i, row := range t.Rows {
		if !drop[i] {
			kept = append(kept, row)
		}
	}
	t.Rows = kept
	if err := t.rebuildIndex(); err != nil {
		return 0, err
	}
	return int64(len(matched)), nil
}

func (db *DB) selectRows(sel *Select, args []Value) (*Result, error) {
	t, ok := db.tables[sel.Table]
	if !ok {
		return nil, fmt.Errorf("sqldb: no table %q", sel.Table)
	}
	matched, err := db.matchRows(t, sel.Where, args)
	if err != nil {
		return nil, err
	}

	aggregate := len(sel.GroupBy) > 0
	for _, se := range sel.Exprs {
		if !se.Star && hasAggregate(se.E) {
			aggregate = true
		}
	}

	var res *Result
	hidden := 0
	if aggregate {
		res, err = db.selectAggregate(sel, t, matched, args)
	} else {
		res, hidden, err = db.selectPlain(sel, t, matched, args)
	}
	if err != nil {
		return nil, err
	}

	if len(sel.OrderBy) > 0 {
		if err := orderResult(res, sel.OrderBy); err != nil {
			return nil, err
		}
	}
	if hidden > 0 {
		res.Cols = res.Cols[:len(res.Cols)-hidden]
		for i, row := range res.Rows {
			res.Rows[i] = row[:len(row)-hidden]
		}
	}
	if sel.Distinct {
		res.Rows = distinctRows(res.Rows)
	}
	if err := applyLimit(res, sel, args); err != nil {
		return nil, err
	}
	return res, nil
}

// selectPlain projects matched rows. ORDER BY may reference table columns
// that are not in the select list; those are appended as hidden trailing
// columns (stripped after sorting) — hidden reports how many.
func (db *DB) selectPlain(sel *Select, t *Table, matched []int, args []Value) (res *Result, hidden int, err error) {
	res = &Result{}
	// Column headers.
	for _, se := range sel.Exprs {
		if se.Star {
			for _, c := range t.Cols {
				res.Cols = append(res.Cols, c.Name)
			}
			continue
		}
		name := se.Alias
		if name == "" {
			name = exprName(se.E)
		}
		res.Cols = append(res.Cols, name)
	}
	// Hidden ORDER BY support columns.
	var hiddenIdx []int
	for _, k := range sel.OrderBy {
		if _, err := res.ColIndex(k.Col); err == nil {
			continue
		}
		ci, err := t.colIndex(k.Col)
		if err != nil {
			return nil, 0, fmt.Errorf("sqldb: ORDER BY %s: %w", k.Col, err)
		}
		res.Cols = append(res.Cols, k.Col)
		hiddenIdx = append(hiddenIdx, ci)
	}
	hidden = len(hiddenIdx)
	ctx := &evalCtx{table: t, args: args}
	for _, ri := range matched {
		ctx.row = t.Rows[ri]
		var out []Value
		for _, se := range sel.Exprs {
			if se.Star {
				out = append(out, t.Rows[ri]...)
				continue
			}
			v, err := eval(se.E, ctx)
			if err != nil {
				return nil, 0, err
			}
			out = append(out, v)
		}
		for _, ci := range hiddenIdx {
			out = append(out, t.Rows[ri][ci])
		}
		res.Rows = append(res.Rows, out)
	}
	return res, hidden, nil
}

func (db *DB) selectAggregate(sel *Select, t *Table, matched []int, args []Value) (*Result, error) {
	for _, se := range sel.Exprs {
		if se.Star {
			return nil, fmt.Errorf("sqldb: * cannot be mixed with aggregates")
		}
	}
	groupIdx, err := t.colIndexes(sel.GroupBy)
	if err != nil {
		return nil, err
	}
	// Partition matched rows into groups (single group when no GROUP BY).
	type group struct {
		key  string
		rows []int
	}
	var groups []*group
	byKey := make(map[string]*group)
	for _, ri := range matched {
		key := ""
		if len(groupIdx) > 0 {
			vals := make([]Value, len(groupIdx))
			for i, ci := range groupIdx {
				vals[i] = t.Rows[ri][ci]
			}
			key = keyString(vals)
		}
		g, ok := byKey[key]
		if !ok {
			g = &group{key: key}
			byKey[key] = g
			groups = append(groups, g)
		}
		g.rows = append(g.rows, ri)
	}
	if len(groupIdx) == 0 && len(groups) == 0 {
		groups = append(groups, &group{}) // aggregates over empty input yield one row
	}

	res := &Result{}
	for _, se := range sel.Exprs {
		name := se.Alias
		if name == "" {
			name = exprName(se.E)
		}
		res.Cols = append(res.Cols, name)
	}

	ctx := &evalCtx{table: t, args: args}
	for _, g := range groups {
		var out []Value
		for _, se := range sel.Exprs {
			v, err := evalAggExpr(se.E, t, g.rows, ctx)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

// evalAggExpr evaluates an expression over a row group: aggregate calls
// accumulate over the group; everything else evaluates against the first
// row (valid for GROUP BY columns, which are constant within a group).
func evalAggExpr(e Expr, t *Table, rows []int, ctx *evalCtx) (Value, error) {
	if call, ok := e.(*Call); ok {
		st := newAggState(call.Fn, call.Distinct)
		for _, ri := range rows {
			if call.Star {
				st.addStar()
				continue
			}
			ctx.row = t.Rows[ri]
			v, err := eval(call.Arg, ctx)
			if err != nil {
				return Value{}, err
			}
			if err := st.add(v); err != nil {
				return Value{}, err
			}
		}
		return st.result(), nil
	}
	if b, ok := e.(*Binary); ok && hasAggregate(e) {
		l, err := evalAggExpr(b.L, t, rows, ctx)
		if err != nil {
			return Value{}, err
		}
		r, err := evalAggExpr(b.R, t, rows, ctx)
		if err != nil {
			return Value{}, err
		}
		switch b.Op {
		case "+", "-", "*", "/", "%":
			return arith(b.Op, l, r)
		default:
			return Value{}, fmt.Errorf("sqldb: operator %q over aggregates is not supported", b.Op)
		}
	}
	if len(rows) == 0 {
		return Null(), nil
	}
	ctx.row = t.Rows[rows[0]]
	return eval(e, ctx)
}

func orderResult(res *Result, keys []OrderKey) error {
	idx := make([]int, len(keys))
	for i, k := range keys {
		ci, err := res.ColIndex(k.Col)
		if err != nil {
			return fmt.Errorf("sqldb: ORDER BY %s: column must appear in the select list", k.Col)
		}
		idx[i] = ci
	}
	var sortErr error
	sort.SliceStable(res.Rows, func(a, b int) bool {
		for i, ci := range idx {
			va, vb := res.Rows[a][ci], res.Rows[b][ci]
			// NULLs sort first.
			switch {
			case va.IsNull() && vb.IsNull():
				continue
			case va.IsNull():
				return !keys[i].Desc
			case vb.IsNull():
				return keys[i].Desc
			}
			c, err := Compare(va, vb)
			if err != nil {
				sortErr = err
				return false
			}
			if c == 0 {
				continue
			}
			if keys[i].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return sortErr
}

func distinctRows(rows [][]Value) [][]Value {
	seen := make(map[string]bool, len(rows))
	var out [][]Value
	for _, r := range rows {
		k := keyString(r)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}

func applyLimit(res *Result, sel *Select, args []Value) error {
	evalInt := func(e Expr) (int64, error) {
		v, err := eval(e, &evalCtx{args: args})
		if err != nil {
			return 0, err
		}
		return v.AsInt()
	}
	offset := int64(0)
	if sel.Offset != nil {
		var err error
		offset, err = evalInt(sel.Offset)
		if err != nil {
			return err
		}
		if offset < 0 {
			offset = 0
		}
	}
	if offset > int64(len(res.Rows)) {
		offset = int64(len(res.Rows))
	}
	res.Rows = res.Rows[offset:]
	if sel.Limit != nil {
		limit, err := evalInt(sel.Limit)
		if err != nil {
			return err
		}
		if limit >= 0 && limit < int64(len(res.Rows)) {
			res.Rows = res.Rows[:limit]
		}
	}
	return nil
}

// CheckIntegrity verifies the structural invariants of every table: row
// arity, column types, NOT NULL, primary-key uniqueness and index
// consistency, and foreign-key validity. Crash-recovery tests call it
// after WAL replay to assert that a torn write never surfaces as a
// half-applied row or a dangling reference.
func (db *DB) CheckIntegrity() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, name := range db.order {
		t := db.tables[name]
		for ri, row := range t.Rows {
			if len(row) != len(t.Cols) {
				return fmt.Errorf("sqldb: integrity: table %s row %d has %d values, want %d",
					name, ri, len(row), len(t.Cols))
			}
			for ci, col := range t.Cols {
				v := row[ci]
				if v.IsNull() {
					if col.NotNull {
						return fmt.Errorf("sqldb: integrity: NULL in NOT NULL column %s.%s (row %d)",
							name, col.Name, ri)
					}
					continue
				}
				if v.K != col.Type {
					return fmt.Errorf("sqldb: integrity: %s value in %s column %s.%s (row %d)",
						v.K, col.Type, name, col.Name, ri)
				}
			}
			if len(t.PKCols) > 0 {
				key := t.pkKey(row)
				got, ok := t.pkIndex[key]
				if !ok || got != ri {
					return fmt.Errorf("sqldb: integrity: table %s primary-key index inconsistent at row %d", name, ri)
				}
			}
			if err := db.fkCheck(t, row); err != nil {
				return fmt.Errorf("sqldb: integrity: %w", err)
			}
		}
		if len(t.PKCols) > 0 && len(t.pkIndex) != len(t.Rows) {
			return fmt.Errorf("sqldb: integrity: table %s has %d rows but %d primary-key entries",
				name, len(t.Rows), len(t.pkIndex))
		}
	}
	return nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
