package sqldb

import (
	"fmt"
	"sort"
	"sync"
)

// DB is an in-memory relational database with optional file persistence.
// It is safe for concurrent use.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	order  []string // creation order, for stable persistence and listing
}

// Open returns an empty database.
func Open() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// Result is the outcome of a SELECT.
type Result struct {
	Cols []string
	Rows [][]Value
}

// ColIndex returns the index of a result column by name.
func (r *Result) ColIndex(name string) (int, error) {
	for i, c := range r.Cols {
		if c == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("sqldb: result has no column %q", name)
}

// TableNames lists the tables in creation order.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, len(db.order))
	copy(out, db.order)
	return out
}

// Schema returns a copy of a table's schema.
func (db *DB) Schema(name string) (cols []Column, pk []string, fks []ForeignKey, err error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, nil, nil, fmt.Errorf("sqldb: no table %q", name)
	}
	cols = append(cols, t.Cols...)
	pk = append(pk, t.PKCols...)
	fks = append(fks, t.FKs...)
	return cols, pk, fks, nil
}

// Exec runs a statement that does not return rows. It returns the number
// of rows affected (0 for DDL).
func (db *DB) Exec(sql string, args ...Value) (int64, error) {
	st, err := Parse(sql)
	if err != nil {
		return 0, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	switch st := st.(type) {
	case *CreateTable:
		return 0, db.createTable(st)
	case *DropTable:
		return 0, db.dropTable(st)
	case *Insert:
		return db.insert(st, args)
	case *Update:
		return db.update(st, args)
	case *Delete:
		return db.delete(st, args)
	case *Select:
		return 0, fmt.Errorf("sqldb: use Query for SELECT")
	default:
		return 0, fmt.Errorf("sqldb: unsupported statement %T", st)
	}
}

// Query runs a SELECT and returns its result rows.
func (db *DB) Query(sql string, args ...Value) (*Result, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*Select)
	if !ok {
		return nil, fmt.Errorf("sqldb: Query requires a SELECT statement")
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.selectRows(sel, args)
}

// MustExec is Exec that panics on error; for tests and fixed DDL whose
// correctness is covered by tests.
func (db *DB) MustExec(sql string, args ...Value) {
	if _, err := db.Exec(sql, args...); err != nil {
		panic(err)
	}
}

func (db *DB) createTable(ct *CreateTable) error {
	if _, exists := db.tables[ct.Name]; exists {
		if ct.IfNotExists {
			return nil
		}
		return fmt.Errorf("sqldb: table %q already exists", ct.Name)
	}
	if len(ct.Cols) == 0 {
		return fmt.Errorf("sqldb: table %q has no columns", ct.Name)
	}
	t := &Table{Name: ct.Name}
	seen := make(map[string]bool)
	var pk []string
	for _, cd := range ct.Cols {
		if seen[cd.Name] {
			return fmt.Errorf("sqldb: duplicate column %q in table %q", cd.Name, ct.Name)
		}
		seen[cd.Name] = true
		t.Cols = append(t.Cols, Column{Name: cd.Name, Type: cd.Type, NotNull: cd.NotNull, Unique: cd.Unique})
		if cd.PK {
			pk = append(pk, cd.Name)
		}
	}
	if len(ct.PrimaryKey) > 0 {
		if len(pk) > 0 {
			return fmt.Errorf("sqldb: table %q has both column-level and table-level PRIMARY KEY", ct.Name)
		}
		pk = ct.PrimaryKey
	}
	t.PKCols = pk
	if _, err := t.colIndexes(pk); err != nil {
		return err
	}
	// PK columns are implicitly NOT NULL.
	for _, pc := range pk {
		ci, _ := t.colIndex(pc)
		t.Cols[ci].NotNull = true
	}
	for _, fk := range ct.Foreign {
		if len(fk.Cols) != len(fk.RefCols) {
			return fmt.Errorf("sqldb: foreign key arity mismatch in table %q", ct.Name)
		}
		if _, err := t.colIndexes(fk.Cols); err != nil {
			return err
		}
		ref, ok := db.tables[fk.RefTable]
		if !ok {
			return fmt.Errorf("sqldb: foreign key references unknown table %q", fk.RefTable)
		}
		if _, err := ref.colIndexes(fk.RefCols); err != nil {
			return err
		}
		t.FKs = append(t.FKs, ForeignKey{Cols: fk.Cols, RefTable: fk.RefTable, RefCols: fk.RefCols})
	}
	if err := t.rebuildIndex(); err != nil {
		return err
	}
	db.tables[ct.Name] = t
	db.order = append(db.order, ct.Name)
	return nil
}

func (db *DB) dropTable(dt *DropTable) error {
	if _, ok := db.tables[dt.Name]; !ok {
		if dt.IfExists {
			return nil
		}
		return fmt.Errorf("sqldb: no table %q", dt.Name)
	}
	for name, other := range db.tables {
		if name == dt.Name {
			continue
		}
		for _, fk := range other.FKs {
			if fk.RefTable == dt.Name {
				return fmt.Errorf("sqldb: cannot drop %q: referenced by %q", dt.Name, name)
			}
		}
	}
	delete(db.tables, dt.Name)
	for i, n := range db.order {
		if n == dt.Name {
			db.order = append(db.order[:i], db.order[i+1:]...)
			break
		}
	}
	return nil
}

// fkCheck verifies that a row's foreign key tuples exist in the referenced
// tables. NULL components skip the check (SQL MATCH SIMPLE).
func (db *DB) fkCheck(t *Table, row []Value) error {
	for _, fk := range t.FKs {
		idx, err := t.colIndexes(fk.Cols)
		if err != nil {
			return err
		}
		vals := make([]Value, len(idx))
		hasNull := false
		for i, ci := range idx {
			vals[i] = row[ci]
			if vals[i].IsNull() {
				hasNull = true
			}
		}
		if hasNull {
			continue
		}
		ref := db.tables[fk.RefTable]
		if ref == nil {
			return fmt.Errorf("sqldb: foreign key references missing table %q", fk.RefTable)
		}
		if equalStrings(fk.RefCols, ref.PKCols) {
			if !ref.hasPKRow(vals) {
				return fmt.Errorf("sqldb: foreign key violation: %s%v not in %s(%v)",
					t.Name, fk.Cols, fk.RefTable, fk.RefCols)
			}
			continue
		}
		set, err := ref.tupleSet(fk.RefCols)
		if err != nil {
			return err
		}
		if !set[keyString(vals)] {
			return fmt.Errorf("sqldb: foreign key violation: %s%v not in %s(%v)",
				t.Name, fk.Cols, fk.RefTable, fk.RefCols)
		}
	}
	return nil
}

// referencers returns an error if any row in another table references the
// given tuple of t's columns.
func (db *DB) referencers(t *Table, row []Value) error {
	for _, other := range db.tables {
		for _, fk := range other.FKs {
			if fk.RefTable != t.Name {
				continue
			}
			refIdx, err := t.colIndexes(fk.RefCols)
			if err != nil {
				return err
			}
			refVals := make([]Value, len(refIdx))
			for i, ci := range refIdx {
				refVals[i] = row[ci]
			}
			key := keyString(refVals)
			colIdx, err := other.colIndexes(fk.Cols)
			if err != nil {
				return err
			}
			for _, orow := range other.Rows {
				vals := make([]Value, len(colIdx))
				skip := false
				for i, ci := range colIdx {
					vals[i] = orow[ci]
					if vals[i].IsNull() {
						skip = true
					}
				}
				if !skip && keyString(vals) == key {
					return fmt.Errorf("sqldb: row in %s is referenced by %s", t.Name, other.Name)
				}
			}
		}
	}
	return nil
}

// uniqueCheck verifies UNIQUE columns and PK uniqueness for a candidate
// row, ignoring the row at skipIdx (for updates).
func (db *DB) uniqueCheck(t *Table, row []Value, skipIdx int) error {
	if len(t.PKCols) > 0 {
		key := t.pkKey(row)
		if i, dup := t.pkIndex[key]; dup && i != skipIdx {
			return fmt.Errorf("sqldb: duplicate primary key in table %s", t.Name)
		}
		// PK components must not be NULL.
		idx, _ := t.colIndexes(t.PKCols)
		for _, ci := range idx {
			if row[ci].IsNull() {
				return fmt.Errorf("sqldb: NULL in primary key of table %s", t.Name)
			}
		}
	}
	for ci, col := range t.Cols {
		if !col.Unique || row[ci].IsNull() {
			continue
		}
		for ri, other := range t.Rows {
			if ri == skipIdx {
				continue
			}
			if Equal(other[ci], row[ci]) {
				return fmt.Errorf("sqldb: duplicate value in unique column %s.%s", t.Name, col.Name)
			}
		}
	}
	return nil
}

func (db *DB) insert(ins *Insert, args []Value) (int64, error) {
	t, ok := db.tables[ins.Table]
	if !ok {
		return 0, fmt.Errorf("sqldb: no table %q", ins.Table)
	}
	colIdx := make([]int, 0, len(ins.Cols))
	if len(ins.Cols) > 0 {
		var err error
		colIdx, err = t.colIndexes(ins.Cols)
		if err != nil {
			return 0, err
		}
	}
	ctx := &evalCtx{args: args}
	var inserted int64
	for _, exprRow := range ins.Rows {
		row := make([]Value, len(t.Cols))
		if len(ins.Cols) == 0 {
			if len(exprRow) != len(t.Cols) {
				return inserted, fmt.Errorf("sqldb: table %s has %d columns, got %d values",
					t.Name, len(t.Cols), len(exprRow))
			}
			for i, e := range exprRow {
				v, err := eval(e, ctx)
				if err != nil {
					return inserted, err
				}
				row[i] = v
			}
		} else {
			if len(exprRow) != len(ins.Cols) {
				return inserted, fmt.Errorf("sqldb: %d columns named, %d values given",
					len(ins.Cols), len(exprRow))
			}
			for i, e := range exprRow {
				v, err := eval(e, ctx)
				if err != nil {
					return inserted, err
				}
				row[colIdx[i]] = v
			}
		}
		row, err := t.checkRow(row)
		if err != nil {
			return inserted, err
		}
		if err := db.uniqueCheck(t, row, -1); err != nil {
			return inserted, err
		}
		if err := db.fkCheck(t, row); err != nil {
			return inserted, err
		}
		t.Rows = append(t.Rows, row)
		if len(t.PKCols) > 0 {
			t.pkIndex[t.pkKey(row)] = len(t.Rows) - 1
		}
		inserted++
	}
	return inserted, nil
}

// matchRows returns the indexes of rows satisfying the WHERE clause.
func (db *DB) matchRows(t *Table, where Expr, args []Value) ([]int, error) {
	var out []int
	ctx := &evalCtx{table: t, args: args}
	for i, row := range t.Rows {
		if where == nil {
			out = append(out, i)
			continue
		}
		ctx.row = row
		v, err := eval(where, ctx)
		if err != nil {
			return nil, err
		}
		if v.Truth() {
			out = append(out, i)
		}
	}
	return out, nil
}

func (db *DB) update(up *Update, args []Value) (int64, error) {
	t, ok := db.tables[up.Table]
	if !ok {
		return 0, fmt.Errorf("sqldb: no table %q", up.Table)
	}
	setIdx := make([]int, len(up.Set))
	for i, a := range up.Set {
		ci, err := t.colIndex(a.Col)
		if err != nil {
			return 0, err
		}
		setIdx[i] = ci
	}
	matched, err := db.matchRows(t, up.Where, args)
	if err != nil {
		return 0, err
	}
	ctx := &evalCtx{table: t, args: args}
	var updated int64
	for _, ri := range matched {
		old := t.Rows[ri]
		next := make([]Value, len(old))
		copy(next, old)
		ctx.row = old
		for i, a := range up.Set {
			v, err := eval(a.E, ctx)
			if err != nil {
				return updated, err
			}
			next[setIdx[i]] = v
		}
		next, err := t.checkRow(next)
		if err != nil {
			return updated, err
		}
		if err := db.uniqueCheck(t, next, ri); err != nil {
			return updated, err
		}
		if err := db.fkCheck(t, next); err != nil {
			return updated, err
		}
		// If the PK tuple changes, no other table may reference the old
		// tuple (RESTRICT).
		oldKey, newKey := t.pkKey(old), t.pkKey(next)
		if len(t.PKCols) > 0 && oldKey != newKey {
			if err := db.referencers(t, old); err != nil {
				return updated, err
			}
		}
		t.Rows[ri] = next
		// Maintain the PK index per row so uniqueness checks within this
		// statement (and any query after an early error return) see a
		// consistent index.
		if len(t.PKCols) > 0 && oldKey != newKey {
			delete(t.pkIndex, oldKey)
			t.pkIndex[newKey] = ri
		}
		updated++
	}
	return updated, nil
}

func (db *DB) delete(del *Delete, args []Value) (int64, error) {
	t, ok := db.tables[del.Table]
	if !ok {
		return 0, fmt.Errorf("sqldb: no table %q", del.Table)
	}
	matched, err := db.matchRows(t, del.Where, args)
	if err != nil {
		return 0, err
	}
	for _, ri := range matched {
		if err := db.referencers(t, t.Rows[ri]); err != nil {
			return 0, err
		}
	}
	drop := make(map[int]bool, len(matched))
	for _, ri := range matched {
		drop[ri] = true
	}
	var kept [][]Value
	for i, row := range t.Rows {
		if !drop[i] {
			kept = append(kept, row)
		}
	}
	t.Rows = kept
	if err := t.rebuildIndex(); err != nil {
		return 0, err
	}
	return int64(len(matched)), nil
}

func (db *DB) selectRows(sel *Select, args []Value) (*Result, error) {
	t, ok := db.tables[sel.Table]
	if !ok {
		return nil, fmt.Errorf("sqldb: no table %q", sel.Table)
	}
	matched, err := db.matchRows(t, sel.Where, args)
	if err != nil {
		return nil, err
	}

	aggregate := len(sel.GroupBy) > 0
	for _, se := range sel.Exprs {
		if !se.Star && hasAggregate(se.E) {
			aggregate = true
		}
	}

	var res *Result
	hidden := 0
	if aggregate {
		res, err = db.selectAggregate(sel, t, matched, args)
	} else {
		res, hidden, err = db.selectPlain(sel, t, matched, args)
	}
	if err != nil {
		return nil, err
	}

	if len(sel.OrderBy) > 0 {
		if err := orderResult(res, sel.OrderBy); err != nil {
			return nil, err
		}
	}
	if hidden > 0 {
		res.Cols = res.Cols[:len(res.Cols)-hidden]
		for i, row := range res.Rows {
			res.Rows[i] = row[:len(row)-hidden]
		}
	}
	if sel.Distinct {
		res.Rows = distinctRows(res.Rows)
	}
	if err := applyLimit(res, sel, args); err != nil {
		return nil, err
	}
	return res, nil
}

// selectPlain projects matched rows. ORDER BY may reference table columns
// that are not in the select list; those are appended as hidden trailing
// columns (stripped after sorting) — hidden reports how many.
func (db *DB) selectPlain(sel *Select, t *Table, matched []int, args []Value) (res *Result, hidden int, err error) {
	res = &Result{}
	// Column headers.
	for _, se := range sel.Exprs {
		if se.Star {
			for _, c := range t.Cols {
				res.Cols = append(res.Cols, c.Name)
			}
			continue
		}
		name := se.Alias
		if name == "" {
			name = exprName(se.E)
		}
		res.Cols = append(res.Cols, name)
	}
	// Hidden ORDER BY support columns.
	var hiddenIdx []int
	for _, k := range sel.OrderBy {
		if _, err := res.ColIndex(k.Col); err == nil {
			continue
		}
		ci, err := t.colIndex(k.Col)
		if err != nil {
			return nil, 0, fmt.Errorf("sqldb: ORDER BY %s: %w", k.Col, err)
		}
		res.Cols = append(res.Cols, k.Col)
		hiddenIdx = append(hiddenIdx, ci)
	}
	hidden = len(hiddenIdx)
	ctx := &evalCtx{table: t, args: args}
	for _, ri := range matched {
		ctx.row = t.Rows[ri]
		var out []Value
		for _, se := range sel.Exprs {
			if se.Star {
				out = append(out, t.Rows[ri]...)
				continue
			}
			v, err := eval(se.E, ctx)
			if err != nil {
				return nil, 0, err
			}
			out = append(out, v)
		}
		for _, ci := range hiddenIdx {
			out = append(out, t.Rows[ri][ci])
		}
		res.Rows = append(res.Rows, out)
	}
	return res, hidden, nil
}

func (db *DB) selectAggregate(sel *Select, t *Table, matched []int, args []Value) (*Result, error) {
	for _, se := range sel.Exprs {
		if se.Star {
			return nil, fmt.Errorf("sqldb: * cannot be mixed with aggregates")
		}
	}
	groupIdx, err := t.colIndexes(sel.GroupBy)
	if err != nil {
		return nil, err
	}
	// Partition matched rows into groups (single group when no GROUP BY).
	type group struct {
		key  string
		rows []int
	}
	var groups []*group
	byKey := make(map[string]*group)
	for _, ri := range matched {
		key := ""
		if len(groupIdx) > 0 {
			vals := make([]Value, len(groupIdx))
			for i, ci := range groupIdx {
				vals[i] = t.Rows[ri][ci]
			}
			key = keyString(vals)
		}
		g, ok := byKey[key]
		if !ok {
			g = &group{key: key}
			byKey[key] = g
			groups = append(groups, g)
		}
		g.rows = append(g.rows, ri)
	}
	if len(groupIdx) == 0 && len(groups) == 0 {
		groups = append(groups, &group{}) // aggregates over empty input yield one row
	}

	res := &Result{}
	for _, se := range sel.Exprs {
		name := se.Alias
		if name == "" {
			name = exprName(se.E)
		}
		res.Cols = append(res.Cols, name)
	}

	ctx := &evalCtx{table: t, args: args}
	for _, g := range groups {
		var out []Value
		for _, se := range sel.Exprs {
			v, err := evalAggExpr(se.E, t, g.rows, ctx)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

// evalAggExpr evaluates an expression over a row group: aggregate calls
// accumulate over the group; everything else evaluates against the first
// row (valid for GROUP BY columns, which are constant within a group).
func evalAggExpr(e Expr, t *Table, rows []int, ctx *evalCtx) (Value, error) {
	if call, ok := e.(*Call); ok {
		st := newAggState(call.Fn, call.Distinct)
		for _, ri := range rows {
			if call.Star {
				st.addStar()
				continue
			}
			ctx.row = t.Rows[ri]
			v, err := eval(call.Arg, ctx)
			if err != nil {
				return Value{}, err
			}
			if err := st.add(v); err != nil {
				return Value{}, err
			}
		}
		return st.result(), nil
	}
	if b, ok := e.(*Binary); ok && hasAggregate(e) {
		l, err := evalAggExpr(b.L, t, rows, ctx)
		if err != nil {
			return Value{}, err
		}
		r, err := evalAggExpr(b.R, t, rows, ctx)
		if err != nil {
			return Value{}, err
		}
		switch b.Op {
		case "+", "-", "*", "/", "%":
			return arith(b.Op, l, r)
		default:
			return Value{}, fmt.Errorf("sqldb: operator %q over aggregates is not supported", b.Op)
		}
	}
	if len(rows) == 0 {
		return Null(), nil
	}
	ctx.row = t.Rows[rows[0]]
	return eval(e, ctx)
}

func orderResult(res *Result, keys []OrderKey) error {
	idx := make([]int, len(keys))
	for i, k := range keys {
		ci, err := res.ColIndex(k.Col)
		if err != nil {
			return fmt.Errorf("sqldb: ORDER BY %s: column must appear in the select list", k.Col)
		}
		idx[i] = ci
	}
	var sortErr error
	sort.SliceStable(res.Rows, func(a, b int) bool {
		for i, ci := range idx {
			va, vb := res.Rows[a][ci], res.Rows[b][ci]
			// NULLs sort first.
			switch {
			case va.IsNull() && vb.IsNull():
				continue
			case va.IsNull():
				return !keys[i].Desc
			case vb.IsNull():
				return keys[i].Desc
			}
			c, err := Compare(va, vb)
			if err != nil {
				sortErr = err
				return false
			}
			if c == 0 {
				continue
			}
			if keys[i].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return sortErr
}

func distinctRows(rows [][]Value) [][]Value {
	seen := make(map[string]bool, len(rows))
	var out [][]Value
	for _, r := range rows {
		k := keyString(r)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}

func applyLimit(res *Result, sel *Select, args []Value) error {
	evalInt := func(e Expr) (int64, error) {
		v, err := eval(e, &evalCtx{args: args})
		if err != nil {
			return 0, err
		}
		return v.AsInt()
	}
	offset := int64(0)
	if sel.Offset != nil {
		var err error
		offset, err = evalInt(sel.Offset)
		if err != nil {
			return err
		}
		if offset < 0 {
			offset = 0
		}
	}
	if offset > int64(len(res.Rows)) {
		offset = int64(len(res.Rows))
	}
	res.Rows = res.Rows[offset:]
	if sel.Limit != nil {
		limit, err := evalInt(sel.Limit)
		if err != nil {
			return err
		}
		if limit >= 0 && limit < int64(len(res.Rows)) {
			res.Rows = res.Rows[:limit]
		}
	}
	return nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
