package sqldb

// Statement is a parsed SQL statement.
type Statement interface{ stmt() }

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name    string
	Type    Kind
	NotNull bool
	PK      bool
	Unique  bool
}

// ForeignKeyDef is a FOREIGN KEY ... REFERENCES clause.
type ForeignKeyDef struct {
	Cols     []string
	RefTable string
	RefCols  []string
}

// CreateTable is CREATE TABLE.
type CreateTable struct {
	Name        string
	IfNotExists bool
	Cols        []ColumnDef
	PrimaryKey  []string
	Foreign     []ForeignKeyDef
}

// CreateIndex is CREATE INDEX ... ON table (cols).
type CreateIndex struct {
	Name        string
	IfNotExists bool
	Table       string
	Cols        []string
}

// DropTable is DROP TABLE.
type DropTable struct {
	Name     string
	IfExists bool
}

// Insert is INSERT INTO ... VALUES.
type Insert struct {
	Table string
	Cols  []string
	Rows  [][]Expr
}

// SelectExpr is one projected expression with an optional alias.
type SelectExpr struct {
	E     Expr
	Alias string
	Star  bool
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Col  string
	Desc bool
}

// Select is SELECT ... FROM.
type Select struct {
	Distinct bool
	Exprs    []SelectExpr
	Table    string
	Where    Expr
	GroupBy  []string
	OrderBy  []OrderKey
	Limit    Expr // nil when absent
	Offset   Expr // nil when absent
}

// Assign is one SET column = expr.
type Assign struct {
	Col string
	E   Expr
}

// Update is UPDATE ... SET ... WHERE.
type Update struct {
	Table string
	Set   []Assign
	Where Expr
}

// Delete is DELETE FROM ... WHERE.
type Delete struct {
	Table string
	Where Expr
}

func (*CreateTable) stmt() {}
func (*CreateIndex) stmt() {}
func (*DropTable) stmt()   {}
func (*Insert) stmt()      {}
func (*Select) stmt()      {}
func (*Update) stmt()      {}
func (*Delete) stmt()      {}

// Expr is a SQL expression node.
type Expr interface{ expr() }

// Lit is a literal value.
type Lit struct{ V Value }

// Param is a `?` placeholder, filled from the statement arguments in
// order of appearance.
type Param struct{ Idx int }

// ColRef references a column by name.
type ColRef struct{ Name string }

// Unary is NOT x or -x.
type Unary struct {
	Op string
	X  Expr
}

// Binary is a binary operation (AND, OR, comparisons, arithmetic, LIKE).
type Binary struct {
	Op   string
	L, R Expr
}

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	X   Expr
	Neg bool
}

// InList is x [NOT] IN (e1, e2, ...).
type InList struct {
	X    Expr
	List []Expr
	Neg  bool
}

// Call is an aggregate function call: COUNT(*), COUNT(x), SUM, AVG, MIN,
// MAX, optionally DISTINCT.
type Call struct {
	Fn       string
	Arg      Expr
	Star     bool
	Distinct bool
}

func (*Lit) expr()    {}
func (*Param) expr()  {}
func (*ColRef) expr() {}
func (*Unary) expr()  {}
func (*Binary) expr() {}
func (*IsNull) expr() {}
func (*InList) expr() {}
func (*Call) expr()   {}
