package sqldb

import (
	"bytes"
	"testing"
)

func testDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	mustExec(t, db, `CREATE TABLE targets (
		name TEXT PRIMARY KEY,
		chip TEXT NOT NULL,
		bits INTEGER
	)`)
	mustExec(t, db, `CREATE TABLE campaigns (
		id INTEGER PRIMARY KEY,
		name TEXT NOT NULL,
		target TEXT,
		faults INTEGER,
		rate REAL,
		FOREIGN KEY (target) REFERENCES targets (name)
	)`)
	return db
}

func mustExec(t *testing.T, db *DB, sql string, args ...Value) int64 {
	t.Helper()
	n, err := db.Exec(sql, args...)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return n
}

func mustQuery(t *testing.T, db *DB, sql string, args ...Value) *Result {
	t.Helper()
	r, err := db.Query(sql, args...)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return r
}

func seed(t *testing.T, db *DB) {
	t.Helper()
	mustExec(t, db, `INSERT INTO targets VALUES ('thor-rd', 'THOR-S', 5412)`)
	mustExec(t, db, `INSERT INTO targets VALUES ('board2', 'THOR-S', 5412)`)
	mustExec(t, db, `INSERT INTO campaigns VALUES
		(1, 'pid-scifi', 'thor-rd', 1000, 0.42),
		(2, 'sort-swifi', 'thor-rd', 500, 0.35),
		(3, 'idle', 'board2', 0, 0.0)`)
}

func TestCreateInsertSelect(t *testing.T) {
	db := testDB(t)
	seed(t, db)
	r := mustQuery(t, db, `SELECT name, faults FROM campaigns WHERE faults > 100 ORDER BY faults DESC`)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(r.Rows))
	}
	if r.Rows[0][0].S != "pid-scifi" || r.Rows[0][1].I != 1000 {
		t.Errorf("row 0 = %v", r.Rows[0])
	}
	if r.Rows[1][0].S != "sort-swifi" {
		t.Errorf("row 1 = %v", r.Rows[1])
	}
}

func TestSelectStar(t *testing.T) {
	db := testDB(t)
	seed(t, db)
	r := mustQuery(t, db, `SELECT * FROM targets ORDER BY name`)
	if len(r.Cols) != 3 || r.Cols[0] != "name" {
		t.Errorf("cols = %v", r.Cols)
	}
	if len(r.Rows) != 2 || r.Rows[0][0].S != "board2" {
		t.Errorf("rows = %v", r.Rows)
	}
}

func TestParams(t *testing.T) {
	db := testDB(t)
	seed(t, db)
	r := mustQuery(t, db, `SELECT id FROM campaigns WHERE target = ? AND faults >= ?`,
		Text("thor-rd"), Int(500))
	if len(r.Rows) != 2 {
		t.Errorf("rows = %d, want 2", len(r.Rows))
	}
	if _, err := db.Query(`SELECT id FROM campaigns WHERE target = ?`); err == nil {
		t.Error("missing parameter did not error")
	}
}

func TestPrimaryKeyUniqueness(t *testing.T) {
	db := testDB(t)
	seed(t, db)
	if _, err := db.Exec(`INSERT INTO targets VALUES ('thor-rd', 'dup', 1)`); err == nil {
		t.Error("duplicate PK accepted")
	}
	if _, err := db.Exec(`INSERT INTO campaigns VALUES (1, 'dup', NULL, 0, 0.0)`); err == nil {
		t.Error("duplicate integer PK accepted")
	}
}

func TestNotNull(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec(`INSERT INTO targets VALUES ('x', NULL, 1)`); err == nil {
		t.Error("NULL in NOT NULL column accepted")
	}
}

func TestForeignKeyEnforcement(t *testing.T) {
	db := testDB(t)
	seed(t, db)
	// Insert referencing a missing target.
	if _, err := db.Exec(`INSERT INTO campaigns VALUES (9, 'bad', 'ghost', 1, 0.1)`); err == nil {
		t.Error("FK violation on insert accepted")
	}
	// NULL FK is allowed (MATCH SIMPLE).
	mustExec(t, db, `INSERT INTO campaigns VALUES (10, 'detached', NULL, 1, 0.1)`)
	// Deleting a referenced parent is rejected.
	if _, err := db.Exec(`DELETE FROM targets WHERE name = 'thor-rd'`); err == nil {
		t.Error("delete of referenced row accepted")
	}
	// Deleting an unreferenced parent works once children are gone.
	mustExec(t, db, `DELETE FROM campaigns WHERE target = 'board2'`)
	if n := mustExec(t, db, `DELETE FROM targets WHERE name = 'board2'`); n != 1 {
		t.Errorf("deleted %d rows, want 1", n)
	}
	// Updating a child to reference a missing parent is rejected.
	if _, err := db.Exec(`UPDATE campaigns SET target = 'ghost' WHERE id = 1`); err == nil {
		t.Error("FK violation on update accepted")
	}
	// Changing a referenced PK is rejected.
	if _, err := db.Exec(`UPDATE targets SET name = 'renamed' WHERE name = 'thor-rd'`); err == nil {
		t.Error("PK change of referenced row accepted")
	}
}

func TestDropTable(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec(`DROP TABLE targets`); err == nil {
		t.Error("drop of FK-referenced table accepted")
	}
	mustExec(t, db, `DROP TABLE campaigns`)
	mustExec(t, db, `DROP TABLE targets`)
	if _, err := db.Exec(`DROP TABLE targets`); err == nil {
		t.Error("double drop accepted")
	}
	mustExec(t, db, `DROP TABLE IF EXISTS targets`)
	if got := db.TableNames(); len(got) != 0 {
		t.Errorf("tables = %v, want none", got)
	}
}

func TestCreateIfNotExists(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `CREATE TABLE IF NOT EXISTS targets (name TEXT PRIMARY KEY, chip TEXT, bits INTEGER)`)
	if _, err := db.Exec(`CREATE TABLE targets (x INTEGER)`); err == nil {
		t.Error("duplicate CREATE TABLE accepted")
	}
}

func TestUpdate(t *testing.T) {
	db := testDB(t)
	seed(t, db)
	n := mustExec(t, db, `UPDATE campaigns SET faults = faults + 10, rate = 0.5 WHERE target = 'thor-rd'`)
	if n != 2 {
		t.Fatalf("updated %d rows, want 2", n)
	}
	r := mustQuery(t, db, `SELECT faults FROM campaigns WHERE id = 1`)
	if r.Rows[0][0].I != 1010 {
		t.Errorf("faults = %d, want 1010", r.Rows[0][0].I)
	}
}

func TestUpdatePrimaryKeyMaintainsIndex(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)`)
	// Shift one PK; the old key must become free, the new one taken.
	mustExec(t, db, `UPDATE t SET id = 9 WHERE id = 1`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 99)`) // old key reusable
	if _, err := db.Exec(`INSERT INTO t VALUES (9, 0)`); err == nil {
		t.Error("new key not indexed")
	}
	// A multi-row update that would transiently collide is rejected and
	// must leave the index usable afterwards.
	if _, err := db.Exec(`UPDATE t SET id = 2 WHERE v >= 10`); err == nil {
		t.Error("colliding multi-row PK update accepted")
	}
	r := mustQuery(t, db, `SELECT COUNT(*) FROM t WHERE id = 9`)
	if r.Rows[0][0].I != 1 {
		t.Errorf("index inconsistent after failed update: %v", r.Rows)
	}
	// The table still accepts consistent operations.
	mustExec(t, db, `UPDATE t SET id = 100 WHERE id = 9`)
	if _, err := db.Exec(`INSERT INTO t VALUES (100, 0)`); err == nil {
		t.Error("stale index after successful update")
	}
}

func TestDeleteWithWhere(t *testing.T) {
	db := testDB(t)
	seed(t, db)
	n := mustExec(t, db, `DELETE FROM campaigns WHERE faults = 0`)
	if n != 1 {
		t.Fatalf("deleted %d, want 1", n)
	}
	r := mustQuery(t, db, `SELECT COUNT(*) FROM campaigns`)
	if r.Rows[0][0].I != 2 {
		t.Errorf("remaining = %d, want 2", r.Rows[0][0].I)
	}
}

func TestAggregates(t *testing.T) {
	db := testDB(t)
	seed(t, db)
	r := mustQuery(t, db, `SELECT COUNT(*), SUM(faults), MIN(faults), MAX(faults), AVG(rate) FROM campaigns`)
	row := r.Rows[0]
	if row[0].I != 3 || row[1].I != 1500 || row[2].I != 0 || row[3].I != 1000 {
		t.Errorf("aggregates = %v", row)
	}
	avg := row[4].R
	if avg < 0.25 || avg > 0.26 {
		t.Errorf("avg rate = %g, want ~0.2567", avg)
	}
}

func TestAggregatesEmptyInput(t *testing.T) {
	db := testDB(t)
	r := mustQuery(t, db, `SELECT COUNT(*), SUM(faults), MIN(faults) FROM campaigns`)
	row := r.Rows[0]
	if row[0].I != 0 {
		t.Errorf("count = %v", row[0])
	}
	if !row[1].IsNull() || !row[2].IsNull() {
		t.Errorf("sum/min over empty input = %v, %v, want NULLs", row[1], row[2])
	}
}

func TestGroupBy(t *testing.T) {
	db := testDB(t)
	seed(t, db)
	r := mustQuery(t, db, `SELECT target, COUNT(*) AS n, SUM(faults) AS total
		FROM campaigns GROUP BY target ORDER BY n DESC`)
	if len(r.Rows) != 2 {
		t.Fatalf("groups = %d, want 2", len(r.Rows))
	}
	if r.Rows[0][0].S != "thor-rd" || r.Rows[0][1].I != 2 || r.Rows[0][2].I != 1500 {
		t.Errorf("group 0 = %v", r.Rows[0])
	}
	if r.Rows[1][0].S != "board2" || r.Rows[1][1].I != 1 {
		t.Errorf("group 1 = %v", r.Rows[1])
	}
}

func TestCountDistinct(t *testing.T) {
	db := testDB(t)
	seed(t, db)
	r := mustQuery(t, db, `SELECT COUNT(DISTINCT target) FROM campaigns`)
	if r.Rows[0][0].I != 2 {
		t.Errorf("distinct targets = %d, want 2", r.Rows[0][0].I)
	}
}

func TestDistinctRows(t *testing.T) {
	db := testDB(t)
	seed(t, db)
	r := mustQuery(t, db, `SELECT DISTINCT target FROM campaigns`)
	if len(r.Rows) != 2 {
		t.Errorf("distinct rows = %d, want 2", len(r.Rows))
	}
}

func TestLikeOperator(t *testing.T) {
	db := testDB(t)
	seed(t, db)
	r := mustQuery(t, db, `SELECT name FROM campaigns WHERE name LIKE '%-scifi'`)
	if len(r.Rows) != 1 || r.Rows[0][0].S != "pid-scifi" {
		t.Errorf("LIKE result = %v", r.Rows)
	}
	r = mustQuery(t, db, `SELECT name FROM campaigns WHERE name LIKE '____'`)
	if len(r.Rows) != 1 || r.Rows[0][0].S != "idle" {
		t.Errorf("underscore LIKE = %v", r.Rows)
	}
}

func TestIsNullAndIn(t *testing.T) {
	db := testDB(t)
	seed(t, db)
	mustExec(t, db, `INSERT INTO campaigns VALUES (4, 'orphan', NULL, 7, 0.1)`)
	r := mustQuery(t, db, `SELECT id FROM campaigns WHERE target IS NULL`)
	if len(r.Rows) != 1 || r.Rows[0][0].I != 4 {
		t.Errorf("IS NULL = %v", r.Rows)
	}
	r = mustQuery(t, db, `SELECT id FROM campaigns WHERE target IS NOT NULL AND id IN (1, 3, 4)`)
	if len(r.Rows) != 2 {
		t.Errorf("IN = %v", r.Rows)
	}
	r = mustQuery(t, db, `SELECT id FROM campaigns WHERE id NOT IN (1, 2, 3)`)
	if len(r.Rows) != 1 || r.Rows[0][0].I != 4 {
		t.Errorf("NOT IN = %v", r.Rows)
	}
}

func TestLimitOffset(t *testing.T) {
	db := testDB(t)
	seed(t, db)
	r := mustQuery(t, db, `SELECT id FROM campaigns ORDER BY id LIMIT 2`)
	if len(r.Rows) != 2 || r.Rows[0][0].I != 1 {
		t.Errorf("LIMIT = %v", r.Rows)
	}
	r = mustQuery(t, db, `SELECT id FROM campaigns ORDER BY id LIMIT 2 OFFSET 2`)
	if len(r.Rows) != 1 || r.Rows[0][0].I != 3 {
		t.Errorf("OFFSET = %v", r.Rows)
	}
	r = mustQuery(t, db, `SELECT id FROM campaigns ORDER BY id LIMIT ? OFFSET ?`, Int(1), Int(1))
	if len(r.Rows) != 1 || r.Rows[0][0].I != 2 {
		t.Errorf("parameterised LIMIT = %v", r.Rows)
	}
}

func TestOrderByMultipleKeys(t *testing.T) {
	db := testDB(t)
	seed(t, db)
	mustExec(t, db, `INSERT INTO campaigns VALUES (5, 'extra', 'board2', 0, 0.9)`)
	r := mustQuery(t, db, `SELECT target, faults FROM campaigns WHERE target IS NOT NULL ORDER BY target ASC, faults DESC`)
	if r.Rows[0][0].S != "board2" {
		t.Errorf("first row = %v", r.Rows[0])
	}
	// Within thor-rd, faults descend.
	var thorFaults []int64
	for _, row := range r.Rows {
		if row[0].S == "thor-rd" {
			thorFaults = append(thorFaults, row[1].I)
		}
	}
	if len(thorFaults) != 2 || thorFaults[0] < thorFaults[1] {
		t.Errorf("thor-rd faults order = %v", thorFaults)
	}
}

func TestArithmeticInSelect(t *testing.T) {
	db := testDB(t)
	seed(t, db)
	r := mustQuery(t, db, `SELECT faults * 2 + 1 AS f2 FROM campaigns WHERE id = 1`)
	if r.Cols[0] != "f2" || r.Rows[0][0].I != 2001 {
		t.Errorf("computed column = %v %v", r.Cols, r.Rows)
	}
	r = mustQuery(t, db, `SELECT 100.0 * faults / 1000 FROM campaigns WHERE id = 2`)
	if r.Rows[0][0].R != 50.0 {
		t.Errorf("percent = %v", r.Rows[0][0])
	}
}

func TestBlobRoundTrip(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE states (id INTEGER PRIMARY KEY, vec BLOB)`)
	mustExec(t, db, `INSERT INTO states VALUES (1, x'deadbeef')`)
	mustExec(t, db, `INSERT INTO states VALUES (2, ?)`, Blob([]byte{1, 2, 3}))
	r := mustQuery(t, db, `SELECT vec FROM states ORDER BY id`)
	if !bytes.Equal(r.Rows[0][0].B, []byte{0xde, 0xad, 0xbe, 0xef}) {
		t.Errorf("blob literal = %x", r.Rows[0][0].B)
	}
	if !bytes.Equal(r.Rows[1][0].B, []byte{1, 2, 3}) {
		t.Errorf("blob param = %x", r.Rows[1][0].B)
	}
}

func TestInsertWithColumnList(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `INSERT INTO targets (name, chip) VALUES ('minimal', 'THOR-S')`)
	r := mustQuery(t, db, `SELECT bits FROM targets WHERE name = 'minimal'`)
	if !r.Rows[0][0].IsNull() {
		t.Errorf("unlisted column = %v, want NULL", r.Rows[0][0])
	}
}

func TestMultiRowInsert(t *testing.T) {
	db := testDB(t)
	n := mustExec(t, db, `INSERT INTO targets VALUES ('a', 'c1', 1), ('b', 'c2', 2)`)
	if n != 2 {
		t.Errorf("inserted %d, want 2", n)
	}
}

func TestTypeCoercion(t *testing.T) {
	db := testDB(t)
	seed(t, db)
	// Integer into REAL column widens.
	mustExec(t, db, `UPDATE campaigns SET rate = 1 WHERE id = 1`)
	r := mustQuery(t, db, `SELECT rate FROM campaigns WHERE id = 1`)
	if r.Rows[0][0].K != KReal || r.Rows[0][0].R != 1.0 {
		t.Errorf("coerced rate = %v", r.Rows[0][0])
	}
	// Text into INTEGER is rejected.
	if _, err := db.Exec(`UPDATE campaigns SET faults = 'many' WHERE id = 1`); err == nil {
		t.Error("text stored in integer column")
	}
}

func TestUniqueColumn(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE u (id INTEGER PRIMARY KEY, tag TEXT UNIQUE)`)
	mustExec(t, db, `INSERT INTO u VALUES (1, 'x'), (2, NULL), (3, NULL)`) // NULLs don't collide
	if _, err := db.Exec(`INSERT INTO u VALUES (4, 'x')`); err == nil {
		t.Error("duplicate unique value accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := testDB(t)
	seed(t, db)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := Open()
	if err := db2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	r := mustQuery(t, db2, `SELECT COUNT(*) FROM campaigns`)
	if r.Rows[0][0].I != 3 {
		t.Errorf("loaded campaigns = %d, want 3", r.Rows[0][0].I)
	}
	// FK constraints survive the round trip.
	if _, err := db2.Exec(`DELETE FROM targets WHERE name = 'thor-rd'`); err == nil {
		t.Error("FK not enforced after load")
	}
	// PK index survives.
	if _, err := db2.Exec(`INSERT INTO targets VALUES ('thor-rd', 'dup', 0)`); err == nil {
		t.Error("PK not enforced after load")
	}
}

func TestSaveLoadFile(t *testing.T) {
	db := testDB(t)
	seed(t, db)
	path := t.TempDir() + "/test.db"
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	db2 := Open()
	if err := db2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if got := db2.TableNames(); len(got) != 2 || got[0] != "targets" {
		t.Errorf("loaded tables = %v", got)
	}
	if err := db2.LoadFile(path + ".missing"); err == nil {
		t.Error("loading missing file did not error")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	db := Open()
	if err := db.Load(bytes.NewReader([]byte("not a database"))); err == nil {
		t.Error("garbage load accepted")
	}
}

func TestErrorsSurfaceCleanly(t *testing.T) {
	db := testDB(t)
	cases := []string{
		`SELECT nope FROM targets`,
		`SELECT * FROM ghost`,
		`INSERT INTO ghost VALUES (1)`,
		`INSERT INTO targets VALUES (1)`,
		`UPDATE ghost SET x = 1`,
		`DELETE FROM ghost`,
		`SELECT * FROM targets WHERE`,
		`CREATE TABLE bad (x WIBBLE)`,
		`SELECT * FROM targets ORDER BY ghostcol`,
		`SELECT SUM(*) FROM targets`,
		`SELECT name FROM targets WHERE name = `,
	}
	for _, sql := range cases {
		if _, err := db.Query(sql); err == nil {
			if _, err2 := db.Exec(sql); err2 == nil {
				t.Errorf("no error for %q", sql)
			}
		}
	}
}

func TestSchemaIntrospection(t *testing.T) {
	db := testDB(t)
	cols, pk, fks, err := db.Schema("campaigns")
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 5 || cols[0].Name != "id" {
		t.Errorf("cols = %v", cols)
	}
	if len(pk) != 1 || pk[0] != "id" {
		t.Errorf("pk = %v", pk)
	}
	if len(fks) != 1 || fks[0].RefTable != "targets" {
		t.Errorf("fks = %v", fks)
	}
	if _, _, _, err := db.Schema("ghost"); err == nil {
		t.Error("Schema(ghost) did not error")
	}
}

func TestValueStrings(t *testing.T) {
	for v, want := range map[string]string{
		Null().String():             "NULL",
		Int(-5).String():            "-5",
		Real(2.5).String():          "2.5",
		Text("o'brien").String():    "'o''brien'",
		Blob([]byte{0xab}).String(): "x'ab'",
	} {
		if v != want {
			t.Errorf("String() = %q, want %q", v, want)
		}
	}
}

func TestCompareCrossKind(t *testing.T) {
	if c, err := Compare(Int(1), Real(1.5)); err != nil || c != -1 {
		t.Errorf("Compare(1, 1.5) = %d, %v", c, err)
	}
	if _, err := Compare(Int(1), Text("x")); err == nil {
		t.Error("cross-kind compare accepted")
	}
	if _, err := Compare(Null(), Int(1)); err == nil {
		t.Error("NULL compare accepted")
	}
	if Equal(Null(), Null()) {
		t.Error("NULL = NULL must be false")
	}
}

func TestLikeMatcher(t *testing.T) {
	tests := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%lo", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h__lo", true}, // two single-char wildcards cover "el"
		{"hello", "h_lo", false}, // too short to cover "ell"
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "a%b%c", true},
		{"axbyc", "a%b%c", true},
		{"ac", "a%b%c", false},
	}
	for _, tt := range tests {
		if got := likeMatch(tt.s, tt.p); got != tt.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", tt.s, tt.p, got, tt.want)
		}
	}
}

func TestConcurrentReads(t *testing.T) {
	db := testDB(t)
	seed(t, db)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 100; j++ {
				if _, err := db.Query(`SELECT COUNT(*) FROM campaigns`); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
