package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// get fetches a path from the test server and returns status, content
// type, and body.
func get(t *testing.T, srv *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

// TestHandlerEndpoints drives the introspection mux through httptest:
// /metrics content type and payload, /healthz liveness, and the
// /progress JSON shape the README documents.
func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("goofi_srv_test_total", "test counter").Add(3)
	prog := NewProgress(2)
	prog.Start("demo", 50)
	prog.SetPhase("experiment")
	prog.AddDone(5)
	prog.BoardRunning(1, 6)
	srv := httptest.NewServer(Handler(reg, prog))
	defer srv.Close()

	code, ctype, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if ctype != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("/metrics content type = %q", ctype)
	}
	if !strings.Contains(body, "goofi_srv_test_total 3\n") {
		t.Errorf("/metrics body missing counter sample:\n%s", body)
	}

	code, _, body = get(t, srv, "/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, ctype, body = get(t, srv, "/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress status = %d", code)
	}
	if ctype != "application/json" {
		t.Errorf("/progress content type = %q", ctype)
	}
	var snap struct {
		Campaign         string  `json:"campaign"`
		Phase            string  `json:"phase"`
		Done             int64   `json:"done"`
		Total            int64   `json:"total"`
		Retried          int64   `json:"retried"`
		InvalidRuns      int64   `json:"invalid_runs"`
		Forwarded        int64   `json:"forwarded"`
		ElapsedSeconds   float64 `json:"elapsed_seconds"`
		RecordsPerSecond float64 `json:"records_per_second"`
		ETASeconds       float64 `json:"eta_seconds"`
		Boards           []struct {
			Board int    `json:"board"`
			State string `json:"state"`
			Seq   int64  `json:"seq"`
		} `json:"boards"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/progress is not the documented JSON shape: %v\n%s", err, body)
	}
	if snap.Campaign != "demo" || snap.Phase != "experiment" {
		t.Errorf("campaign/phase = %q/%q", snap.Campaign, snap.Phase)
	}
	if snap.Done != 5 || snap.Total != 50 {
		t.Errorf("done/total = %d/%d", snap.Done, snap.Total)
	}
	if len(snap.Boards) != 2 || snap.Boards[1].State != BoardRunning || snap.Boards[1].Seq != 6 {
		t.Errorf("boards = %+v", snap.Boards)
	}

	// pprof is mounted; its index must answer.
	code, _, _ = get(t, srv, "/debug/pprof/")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/ status = %d", code)
	}
}

// TestNewServer binds a real listener on a free port and serves the
// same mux — what `goofi run -telemetry-addr :0` does.
func TestNewServer(t *testing.T) {
	prog := NewProgress(1)
	srv, err := NewServer("127.0.0.1:0", NewRegistry(), prog)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Errorf("healthz = %d %q", resp.StatusCode, body)
	}
	if err := srv.Close(); err != nil {
		t.Error(err)
	}
}

// TestServerShutdownGraceful: with no requests in flight, Shutdown
// drains immediately, and the listener stops accepting.
func TestServerShutdownGraceful(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", NewRegistry(), NewProgress(1))
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown = %v", err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}

// TestServerShutdownTimeout: a connection stuck mid-request keeps
// Shutdown from draining; when the context expires the server falls
// back to a hard close instead of hanging the daemon forever.
func TestServerShutdownTimeout(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", NewRegistry(), NewProgress(1))
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A partial request pins the connection active.
	if _, err := conn.Write([]byte("GET /metrics HTTP/1.1\r\nHost: x\r\n")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = srv.Shutdown(ctx)
	if err == nil {
		t.Fatal("shutdown reported clean drain with a stuck connection")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("shutdown took %v, fallback close did not engage", elapsed)
	}
}
