package telemetry

import (
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exposition format byte-for-byte:
// HELP/TYPE headers, integer-rendered counters and gauges, cumulative
// histogram buckets ending in +Inf, and label-sorted counter families.
// A scrape-side parser regression shows up here before it shows up in a
// dashboard.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("goofi_test_events_total", "Events observed.")
	c.Add(42)
	g := r.NewGauge("goofi_test_queue_depth", "Experiments waiting.")
	g.Set(7)
	h := r.NewHistogram("goofi_test_latency_seconds", "Request latency.", []float64{0.01, 0.5})
	h.Observe(0.005)
	h.Observe(0.25)
	h.Observe(0.25)
	h.Observe(2)
	v := r.NewCounterVec("goofi_test_faults_total", "Faults by kind.", "kind")
	v.With("scan-read").Add(3)
	v.With("hang").Inc()

	const want = `# HELP goofi_test_events_total Events observed.
# TYPE goofi_test_events_total counter
goofi_test_events_total 42
# HELP goofi_test_queue_depth Experiments waiting.
# TYPE goofi_test_queue_depth gauge
goofi_test_queue_depth 7
# HELP goofi_test_latency_seconds Request latency.
# TYPE goofi_test_latency_seconds histogram
goofi_test_latency_seconds_bucket{le="0.01"} 1
goofi_test_latency_seconds_bucket{le="0.5"} 3
goofi_test_latency_seconds_bucket{le="+Inf"} 4
goofi_test_latency_seconds_sum 2.505
goofi_test_latency_seconds_count 4
# HELP goofi_test_faults_total Faults by kind.
# TYPE goofi_test_faults_total counter
goofi_test_faults_total{kind="hang"} 1
goofi_test_faults_total{kind="scan-read"} 3
`
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestFormatFloat pins the special values and the shortest round-trip
// rendering used for bucket bounds and sums.
func TestFormatFloat(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{0.00001, "1e-05"},
		{0.25, "0.25"},
		{1, "1"},
	} {
		if got := formatFloat(tc.in); got != tc.want {
			t.Errorf("formatFloat(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestEscapeHelp: backslashes and newlines must not break the
// line-oriented format.
func TestEscapeHelp(t *testing.T) {
	if got := escapeHelp("a\\b\nc"); got != `a\\b\nc` {
		t.Errorf("escapeHelp = %q", got)
	}
}
