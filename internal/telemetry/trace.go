package telemetry

import "sync"

// SpanRecord is one completed campaign phase interval: a named phase
// (plan, reference, experiment, analyze, ...), the board it ran on (-1
// when not board-bound), the experiment sequence number (-1 for
// campaign-level phases), the emulated-cycle window it covered, and its
// wall-clock cost. Spans are the bridge between live metrics and the
// paper's everything-in-the-database design: the runner drains them into
// the CampaignTelemetry table after the campaign finishes.
type SpanRecord struct {
	Phase      string
	Board      int
	Seq        int
	StartCycle uint64
	EndCycle   uint64
	WallNS     int64
}

// Tracer collects SpanRecords. Record is called off the per-cycle hot
// path — once per experiment and once per campaign phase — so a mutex
// and an append are cheap enough. A nil *Tracer is a valid no-op, which
// is how the telemetry-off configuration avoids all span work.
type Tracer struct {
	mu    sync.Mutex
	spans []SpanRecord
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Record appends one completed span. Safe on a nil receiver.
func (t *Tracer) Record(s SpanRecord) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Drain returns all recorded spans and resets the tracer. Safe on a nil
// receiver (returns nil).
func (t *Tracer) Drain() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.spans
	t.spans = nil
	return out
}

// Len reports how many spans are buffered. Safe on a nil receiver.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}
