package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in Prometheus text
// exposition format v0.0.4: a # HELP and # TYPE line per family, then
// one sample line per value. Histograms render cumulative _bucket
// series with an le label (+Inf last), then _sum and _count. Families
// render one line per label value, sorted, so output order is stable
// for a given set of observed labels.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	for _, m := range metrics {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			m.name, escapeHelp(m.help), m.name, m.kind); err != nil {
			return err
		}
		var err error
		switch {
		case m.counter != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.counter.Value())
		case m.gauge != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.gauge.Value())
		case m.hist != nil:
			err = writeHistogram(w, m.name, m.hist)
		case m.vec != nil:
			labels, vals := m.vec.snapshot()
			for i, l := range labels {
				if _, err = fmt.Fprintf(w, "%s{%s=%q} %d\n", m.name, m.vec.label, escapeLabel(l), vals[i]); err != nil {
					return err
				}
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, h *Histogram) error {
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(b), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	return err
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips, with NaN/Inf spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslash and newline per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes backslash, quote, and newline in a label value.
// %q in the caller already quotes, so only newlines need flattening
// beyond what Go's quoting provides; we keep the value printable.
func escapeLabel(s string) string {
	return strings.ReplaceAll(s, "\n", " ")
}
