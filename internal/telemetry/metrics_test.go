package telemetry

import (
	"strings"
	"sync"
	"testing"
)

// TestCounterGaugeHistogram covers the scalar instrument semantics.
func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.NewGauge("g", "g")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
	h := r.NewHistogram("h_seconds", "h", []float64{0.1, 1})
	for _, v := range []float64{0.05, 0.5, 5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 3 {
		t.Errorf("histogram count = %d, want 3", got)
	}
	if got := h.Sum(); got != 5.55 {
		t.Errorf("histogram sum = %v, want 5.55", got)
	}
}

// TestCounterVec checks child identity and label isolation.
func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("v_total", "v", "kind")
	a, b := v.With("a"), v.With("b")
	if a != v.With("a") {
		t.Error("With returned a different child for the same label value")
	}
	a.Add(2)
	b.Inc()
	if a.Value() != 2 || b.Value() != 1 {
		t.Errorf("children = %d, %d, want 2, 1", a.Value(), b.Value())
	}
}

// TestDuplicateRegistrationPanics: metric names are a global namespace;
// a collision is a programming error caught at init.
func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "first")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.NewCounter("dup_total", "second")
}

// TestRegistryConcurrent hammers every instrument kind from parallel
// writers while readers snapshot and render the registry; run under
// -race this proves the hot path is data-race free, and the final
// values prove no increment was lost.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("cc_total", "c")
	g := r.NewGauge("cg", "g")
	h := r.NewHistogram("ch_seconds", "h", DurationBuckets)
	v := r.NewCounterVec("cv_total", "v", "kind")

	const writers, perWriter = 8, 5000
	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	// Readers: exposition and snapshot race against the writers.
	for i := 0; i < 2; i++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
				snap := r.Snapshot()
				// Histogram count and sum must be mutually consistent
				// enough to both be present; values race, presence not.
				if _, ok := snap["ch_seconds_count"]; !ok {
					t.Error("snapshot missing ch_seconds_count")
					return
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			kind := string(rune('a' + w%4))
			child := v.With(kind)
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.001)
				child.Inc()
			}
		}(w)
	}
	// Readers race against live writes for the writers' whole lifetime,
	// then stop so the final values below are quiescent.
	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	if got := c.Value(); got != writers*perWriter {
		t.Errorf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := g.Value(); got != writers*perWriter {
		t.Errorf("gauge = %d, want %d", got, writers*perWriter)
	}
	if got := h.Count(); got != writers*perWriter {
		t.Errorf("histogram count = %d, want %d", got, writers*perWriter)
	}
	wantSum := float64(writers*perWriter) * 0.001
	if got := h.Sum(); got < wantSum*0.999 || got > wantSum*1.001 {
		t.Errorf("histogram sum = %v, want ~%v", got, wantSum)
	}
	var vecTotal uint64
	for _, kind := range []string{"a", "b", "c", "d"} {
		vecTotal += v.With(kind).Value()
	}
	if vecTotal != writers*perWriter {
		t.Errorf("vec total = %d, want %d", vecTotal, writers*perWriter)
	}
}

// TestNilSafety: the runner calls tracer and progress methods
// unconditionally; with telemetry off both are nil and every method
// must be a no-op.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	tr.Record(SpanRecord{Phase: "x"})
	if tr.Len() != 0 || tr.Drain() != nil {
		t.Error("nil tracer retained spans")
	}
	var p *Progress
	p.Start("c", 10)
	p.SetPhase("experiment")
	p.Done()
	p.AddDone(3)
	p.Retried()
	p.Invalid()
	p.Forwarded()
	p.BoardRunning(0, 1)
	p.BoardIdle(0)
	p.BoardQuarantined(0)
}

// TestTracerDrain: Drain returns the recorded spans in order and resets.
func TestTracerDrain(t *testing.T) {
	tr := NewTracer()
	tr.Record(SpanRecord{Phase: "plan"})
	tr.Record(SpanRecord{Phase: "experiment", Seq: 1})
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	spans := tr.Drain()
	if len(spans) != 2 || spans[0].Phase != "plan" || spans[1].Seq != 1 {
		t.Fatalf("Drain = %+v", spans)
	}
	if tr.Len() != 0 || len(tr.Drain()) != 0 {
		t.Error("Drain did not reset the tracer")
	}
}

// TestProgressSnapshot: the derived throughput and ETA fields follow
// from done/total and elapsed time.
func TestProgressSnapshot(t *testing.T) {
	p := NewProgress(2)
	p.Start("demo", 100)
	p.SetPhase("experiment")
	p.AddDone(9)
	p.Done()
	p.Retried()
	p.Invalid()
	p.Forwarded()
	p.BoardRunning(0, 10)
	p.BoardQuarantined(1)
	s := p.Snapshot()
	if s.Campaign != "demo" || s.Phase != "experiment" {
		t.Errorf("campaign/phase = %q/%q", s.Campaign, s.Phase)
	}
	if s.Done != 10 || s.Total != 100 {
		t.Errorf("done/total = %d/%d, want 10/100", s.Done, s.Total)
	}
	if s.Retried != 1 || s.InvalidRuns != 1 || s.Forwarded != 1 {
		t.Errorf("retried/invalid/forwarded = %d/%d/%d", s.Retried, s.InvalidRuns, s.Forwarded)
	}
	if s.ElapsedSeconds <= 0 || s.RecordsPerSecond <= 0 || s.ETASeconds <= 0 {
		t.Errorf("derived fields = %v %v %v, want all > 0",
			s.ElapsedSeconds, s.RecordsPerSecond, s.ETASeconds)
	}
	if len(s.Boards) != 2 {
		t.Fatalf("boards = %d, want 2", len(s.Boards))
	}
	if s.Boards[0].State != BoardRunning || s.Boards[0].Seq != 10 {
		t.Errorf("board 0 = %+v", s.Boards[0])
	}
	if s.Boards[1].State != BoardQuarantined {
		t.Errorf("board 1 = %+v", s.Boards[1])
	}
}
