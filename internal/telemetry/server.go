package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the campaign introspection endpoint: /metrics (Prometheus
// text exposition v0.0.4), /healthz, /progress (JSON snapshot), and the
// standard net/http/pprof handlers under /debug/pprof/. It binds its own
// mux so importing this package never touches http.DefaultServeMux.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Handler builds the introspection mux for a registry and progress
// tracker. Split out from NewServer so tests can drive it with httptest.
func Handler(reg *Registry, prog *Progress) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(prog.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// NewServer binds addr (":0" picks a free port) and serves the
// introspection endpoints until Close.
func NewServer(addr string, reg *Registry, prog *Progress) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln:  ln,
		srv: &http.Server{Handler: Handler(reg, prog), ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown stops the server gracefully: the listener closes immediately
// (no new scrapes) and in-flight requests are allowed to finish until
// ctx expires, at which point they are cut off like Close.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	if err != nil {
		// Draining timed out or the context was already cancelled: fall
		// back to the hard close so no handler outlives the daemon.
		_ = s.srv.Close()
	}
	return err
}

// Close stops the server immediately, dropping in-flight requests. Use
// Shutdown to drain them first.
func (s *Server) Close() error { return s.srv.Close() }
