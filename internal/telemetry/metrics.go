// Package telemetry is GOOFI's observability layer: a dependency-free
// metrics core (atomic counters, gauges, fixed-bucket histograms and
// single-label families), a span tracer for campaign phases, a live
// campaign progress tracker, and an HTTP introspection server exposing
// everything as Prometheus text (exposition format v0.0.4) plus a
// /progress JSON endpoint and net/http/pprof.
//
// Design constraints, in order:
//
//  1. Determinism: telemetry never touches experiment RNGs or record
//     bytes. Reading a wall clock and bumping atomics is allowed;
//     anything that could shift an experiment outcome is not. The
//     telemetry differential test (telemetry on vs off → byte-identical
//     LoggedSystemState) enforces this.
//  2. Hot-path cost: instrumentation on the experiment hot path is a
//     handful of atomic adds — no allocation, no locks, no formatting.
//     Snapshotting, label resolution and exposition rendering pay the
//     cost instead, on the scrape path.
//  3. No dependencies: the exposition format is hand-rolled; the only
//     imports are the standard library.
//
// Metric naming follows the Prometheus convention
// goofi_<subsystem>_<what>_<unit>: counters end in _total (with _ns_total
// for accumulated nanoseconds), gauges name a state, histograms name
// their unit (e.g. goofi_sqldb_insert_seconds).
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64, safe for concurrent use.
// The zero value is usable; registered counters come from NewCounter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable signed value, safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution. Buckets are cumulative upper
// bounds in ascending order; an implicit +Inf bucket catches the rest.
// Observe is allocation-free: a short linear scan plus three atomic adds.
// The sum is a float64 maintained with a compare-and-swap loop.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1, last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// newHistogram builds a histogram over the given ascending upper bounds.
func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not ascending at %d", i))
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DurationBuckets is the default latency layout (seconds): 10µs to 1s in
// roughly 1-2.5-5 steps, sized for the sqldb INSERT path.
var DurationBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3, 1,
}

// CounterVec is a family of counters distinguished by one label. With
// resolves (creating on first use) the child for a label value; hot paths
// resolve once and cache the child, so the map lookup and its lock stay
// off the experiment loop.
type CounterVec struct {
	name, help, label string

	mu       sync.Mutex
	children map[string]*Counter
}

// With returns the counter for the given label value.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[value]
	if !ok {
		c = &Counter{}
		v.children[value] = c
	}
	return c
}

// snapshot returns the label values (sorted) and their counts.
func (v *CounterVec) snapshot() ([]string, []uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	labels := make([]string, 0, len(v.children))
	for l := range v.children {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	vals := make([]uint64, len(labels))
	for i, l := range labels {
		vals[i] = v.children[l].Value()
	}
	return labels, vals
}

// metric is one registered family, of any type.
type metric struct {
	name, help string
	kind       string // "counter", "gauge", "histogram"
	counter    *Counter
	gauge      *Gauge
	hist       *Histogram
	vec        *CounterVec
}

// Registry holds registered metrics and renders them. Registration
// happens at package init time; reads and writes afterwards are
// concurrent-safe because the metric values themselves are atomic.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	names   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// Default is the process-wide registry that the instrumented GOOFI
// packages register into and the /metrics endpoint serves.
var Default = NewRegistry()

func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[m.name] {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", m.name))
	}
	r.names[m.name] = true
	r.metrics = append(r.metrics, m)
}

// NewCounter registers a counter in the registry.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, kind: "counter", counter: c})
	return c
}

// NewGauge registers a gauge in the registry.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, kind: "gauge", gauge: g})
	return g
}

// NewHistogram registers a fixed-bucket histogram in the registry.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(bounds)
	r.register(&metric{name: name, help: help, kind: "histogram", hist: h})
	return h
}

// NewCounterVec registers a single-label counter family in the registry.
func (r *Registry) NewCounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{name: name, help: help, label: label, children: make(map[string]*Counter)}
	r.register(&metric{name: name, help: help, kind: "counter", vec: v})
	return v
}

// NewCounter registers a counter in the Default registry.
func NewCounter(name, help string) *Counter { return Default.NewCounter(name, help) }

// NewGauge registers a gauge in the Default registry.
func NewGauge(name, help string) *Gauge { return Default.NewGauge(name, help) }

// NewHistogram registers a histogram in the Default registry.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	return Default.NewHistogram(name, help, bounds)
}

// NewCounterVec registers a counter family in the Default registry.
func NewCounterVec(name, help, label string) *CounterVec {
	return Default.NewCounterVec(name, help, label)
}

// Snapshot returns a point-in-time view of every scalar metric value,
// keyed by exposition name (families use name{label="value"}). Histogram
// entries expose _count and _sum. Each value is read atomically; the
// snapshot as a whole is not a global atomic cut, which is the standard
// Prometheus trade-off.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	out := make(map[string]float64)
	for _, m := range metrics {
		switch {
		case m.counter != nil:
			out[m.name] = float64(m.counter.Value())
		case m.gauge != nil:
			out[m.name] = float64(m.gauge.Value())
		case m.hist != nil:
			out[m.name+"_count"] = float64(m.hist.Count())
			out[m.name+"_sum"] = m.hist.Sum()
		case m.vec != nil:
			labels, vals := m.vec.snapshot()
			for i, l := range labels {
				out[fmt.Sprintf("%s{%s=%q}", m.name, m.vec.label, l)] = float64(vals[i])
			}
		}
	}
	return out
}
