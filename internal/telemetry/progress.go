package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Board states reported in a progress snapshot.
const (
	BoardIdle        = "idle"
	BoardRunning     = "running"
	BoardQuarantined = "quarantined"
)

// boardSlot is one board's live state: a state code and the sequence
// number it is working on. Both atomic so workers update without locks.
type boardSlot struct {
	state atomic.Int32 // 0 idle, 1 running, 2 quarantined
	seq   atomic.Int64
}

var boardStateNames = [...]string{BoardIdle, BoardRunning, BoardQuarantined}

// Progress is the live view of one running campaign: totals, per-board
// state, and enough timing to derive throughput and an ETA. All update
// paths are atomic stores/adds; only Snapshot allocates.
type Progress struct {
	mu       sync.Mutex
	campaign string
	phase    string
	start    time.Time

	total     atomic.Int64
	done      atomic.Int64
	retried   atomic.Int64
	invalid   atomic.Int64
	forwarded atomic.Int64

	boards []*boardSlot

	workersFn atomic.Value // func() []WorkerStatus
}

// NewProgress returns a tracker for a campaign with the given board
// count. The clock starts at Start, not construction.
func NewProgress(boards int) *Progress {
	p := &Progress{boards: make([]*boardSlot, boards)}
	for i := range p.boards {
		p.boards[i] = &boardSlot{}
	}
	return p
}

// Start stamps the campaign identity and total and begins the clock.
func (p *Progress) Start(campaign string, total int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.campaign = campaign
	p.start = time.Now()
	p.mu.Unlock()
	p.total.Store(int64(total))
}

// SetPhase records the current campaign phase. Safe on nil.
func (p *Progress) SetPhase(phase string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.phase = phase
	p.mu.Unlock()
}

// Done bumps the completed-experiment count. Safe on nil.
func (p *Progress) Done() {
	if p != nil {
		p.done.Add(1)
	}
}

// AddDone credits n already-completed experiments (a resumed campaign's
// durable prefix). Safe on nil.
func (p *Progress) AddDone(n int) {
	if p != nil {
		p.done.Add(int64(n))
	}
}

// Retried bumps the retry count. Safe on nil.
func (p *Progress) Retried() {
	if p != nil {
		p.retried.Add(1)
	}
}

// Invalid bumps the invalid-run count. Safe on nil.
func (p *Progress) Invalid() {
	if p != nil {
		p.invalid.Add(1)
	}
}

// Forwarded bumps the checkpoint-forwarded count. Safe on nil.
func (p *Progress) Forwarded() {
	if p != nil {
		p.forwarded.Add(1)
	}
}

// BoardRunning marks a board as executing the given experiment. Safe on
// nil and on out-of-range boards.
func (p *Progress) BoardRunning(board, seq int) { p.setBoard(board, 1, seq) }

// BoardIdle marks a board as idle. Safe on nil.
func (p *Progress) BoardIdle(board int) { p.setBoard(board, 0, -1) }

// BoardQuarantined marks a board as quarantined. Safe on nil.
func (p *Progress) BoardQuarantined(board int) { p.setBoard(board, 2, -1) }

func (p *Progress) setBoard(board int, state int32, seq int) {
	if p == nil || board < 0 || board >= len(p.boards) {
		return
	}
	p.boards[board].seq.Store(int64(seq))
	p.boards[board].state.Store(state)
}

// WorkerStatus is one shard worker's state in a snapshot: who it is,
// where it runs, and how stale its last heartbeat is. The shard layer
// fills these in via SetWorkersFn; telemetry only carries them.
type WorkerStatus struct {
	Name        string  `json:"name"`
	Host        string  `json:"host,omitempty"`
	Quarantined bool    `json:"quarantined"`
	Leases      int     `json:"leases"`
	Failures    int     `json:"failures"`
	LastBeatAge float64 `json:"last_beat_seconds"`
}

// SetWorkersFn installs a callback that materializes the worker fleet
// for snapshots (a sharded campaign's coordinator). Safe on nil.
func (p *Progress) SetWorkersFn(fn func() []WorkerStatus) {
	if p != nil && fn != nil {
		p.workersFn.Store(fn)
	}
}

// BoardStatus is one board's state in a snapshot.
type BoardStatus struct {
	Board int    `json:"board"`
	State string `json:"state"`
	Seq   int    `json:"seq"`
}

// ProgressSnapshot is the JSON shape served at /progress and rendered by
// the -progress stderr line.
type ProgressSnapshot struct {
	Campaign         string        `json:"campaign"`
	Phase            string        `json:"phase"`
	Done             int64         `json:"done"`
	Total            int64         `json:"total"`
	Retried          int64         `json:"retried"`
	InvalidRuns      int64         `json:"invalid_runs"`
	Forwarded        int64         `json:"forwarded"`
	ElapsedSeconds   float64       `json:"elapsed_seconds"`
	RecordsPerSecond float64       `json:"records_per_second"`
	ETASeconds       float64       `json:"eta_seconds"`
	Boards           []BoardStatus `json:"boards"`
	// Workers is the shard-worker fleet, present only for sharded
	// campaigns (populated through SetWorkersFn).
	Workers []WorkerStatus `json:"workers,omitempty"`
}

// Snapshot materializes the current state. ETA extrapolates linearly
// from throughput so far; it is 0 until at least one experiment is done.
// Safe on a nil receiver (returns the zero snapshot).
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	p.mu.Lock()
	campaign, phase, start := p.campaign, p.phase, p.start
	p.mu.Unlock()
	s := ProgressSnapshot{
		Campaign:    campaign,
		Phase:       phase,
		Done:        p.done.Load(),
		Total:       p.total.Load(),
		Retried:     p.retried.Load(),
		InvalidRuns: p.invalid.Load(),
		Forwarded:   p.forwarded.Load(),
	}
	if !start.IsZero() {
		s.ElapsedSeconds = time.Since(start).Seconds()
	}
	if s.ElapsedSeconds > 0 && s.Done > 0 {
		s.RecordsPerSecond = float64(s.Done) / s.ElapsedSeconds
		if left := s.Total - s.Done; left > 0 {
			s.ETASeconds = float64(left) / s.RecordsPerSecond
		}
	}
	s.Boards = make([]BoardStatus, len(p.boards))
	for i, b := range p.boards {
		st := b.state.Load()
		if st < 0 || int(st) >= len(boardStateNames) {
			st = 0
		}
		s.Boards[i] = BoardStatus{Board: i, State: boardStateNames[st], Seq: int(b.seq.Load())}
	}
	if fn, ok := p.workersFn.Load().(func() []WorkerStatus); ok {
		s.Workers = fn()
	}
	return s
}
